//! Property-based tests for the SWIM selection and accounting layers.

use proptest::prelude::*;
use swim_core::select::{build_ranking, mask_top_fraction, mask_top_k, Strategy};
use swim_tensor::Prng;

proptest! {
    /// Rankings are always permutations of 0..n.
    #[test]
    fn rankings_are_permutations(
        sens in proptest::collection::vec(0.0f32..10.0, 1..128),
        strategy_id in 0usize..3,
    ) {
        let mags: Vec<f32> = sens.iter().map(|&s| s * 0.5 + 0.1).collect();
        let strategy = Strategy::all()[strategy_id];
        let mut rng = Prng::seed_from_u64(7);
        let ranking = build_ranking(strategy, &sens, &mags, Some(&mut rng));
        let mut sorted = ranking.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..sens.len()).collect::<Vec<_>>());
    }

    /// SWIM rankings are non-increasing in sensitivity.
    #[test]
    fn swim_ranking_sorted(
        sens in proptest::collection::vec(0.0f32..10.0, 2..128),
    ) {
        let mags = vec![1.0f32; sens.len()];
        let ranking = build_ranking(Strategy::Swim, &sens, &mags, None);
        for w in ranking.windows(2) {
            prop_assert!(sens[w[0]] >= sens[w[1]]);
        }
    }

    /// The tie-break only reorders within equal-sensitivity groups: the
    /// multiset of sensitivities along the ranking is unchanged, and
    /// within a tie the magnitudes are non-increasing.
    #[test]
    fn tie_break_orders_within_groups(
        mags in proptest::collection::vec(0.0f32..1.0, 2..64),
    ) {
        // All-equal sensitivities: order must follow magnitudes.
        let sens = vec![1.0f32; mags.len()];
        let ranking = build_ranking(Strategy::Swim, &sens, &mags, None);
        for w in ranking.windows(2) {
            prop_assert!(mags[w[0]] >= mags[w[1]]);
        }
    }

    /// mask_top_fraction selects exactly round(n * fraction) weights and
    /// they are the ranking's prefix.
    #[test]
    fn mask_matches_prefix(
        n in 1usize..200,
        fraction in 0.0f64..1.0,
        seed in 0u64..100,
    ) {
        let sens: Vec<f32> = (0..n).map(|i| (i as f32 * 0.7).sin().abs()).collect();
        let mags: Vec<f32> = (0..n).map(|i| (i as f32 * 0.3).cos().abs()).collect();
        let mut rng = Prng::seed_from_u64(seed);
        let ranking = build_ranking(Strategy::Random, &sens, &mags, Some(&mut rng));
        let mask = mask_top_fraction(&ranking, fraction);
        let k = (n as f64 * fraction).round() as usize;
        prop_assert_eq!(mask.iter().filter(|&&m| m).count(), k);
        for &idx in &ranking[..k] {
            prop_assert!(mask[idx]);
        }
        for &idx in &ranking[k..] {
            prop_assert!(!mask[idx]);
        }
    }

    /// Nested budgets are monotone: the top-j selection is a subset of
    /// the top-k selection for j <= k (Algorithm 1's incremental property).
    #[test]
    fn selections_are_nested(n in 2usize..100, seed in 0u64..100) {
        let mut rng = Prng::seed_from_u64(seed);
        let sens: Vec<f32> = (0..n).map(|_| rng.uniform_f32()).collect();
        let mags: Vec<f32> = (0..n).map(|_| rng.uniform_f32()).collect();
        let ranking = build_ranking(Strategy::Swim, &sens, &mags, None);
        let j = n / 3;
        let k = 2 * n / 3;
        let small = mask_top_k(&ranking, j);
        let large = mask_top_k(&ranking, k);
        for i in 0..n {
            if small[i] {
                prop_assert!(large[i], "top-{j} not nested in top-{k}");
            }
        }
    }
}
