//! The allocation gate: a steady-state Monte Carlo sweep iteration must
//! perform **zero heap allocations**.
//!
//! A counting `#[global_allocator]` wraps the system allocator and
//! counts every `alloc`/`realloc` event. After a warm-up (which grows
//! the network clone, programming buffers, GEMM/im2col scratch, and the
//! activation arena to their steady-state sizes), further sweep
//! iterations — selection mask, device programming, weight load, and
//! arena-backed accuracy evaluation — must not touch the heap at all.
//!
//! Everything lives in ONE `#[test]` function: the default test harness
//! runs `#[test]`s on separate threads, and a second concurrently
//! running test would pollute the global allocation counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use swim_cim::DeviceConfig;
use swim_core::model::{EvalScratch, QuantizedModel};
use swim_core::montecarlo::{nwc_sweep, SweepConfig};
use swim_core::select::{mask_top_fraction_into, Strategy};
use swim_data::Dataset;
use swim_nn::layers::{
    ActQuant, BatchNorm2d, Conv2d, Flatten, Linear, MaxPool2d, Relu, Residual, Sequential,
};
use swim_nn::Network;
use swim_tensor::{Prng, Tensor};

/// System allocator wrapper counting allocation events (`alloc` and
/// `realloc`; frees are irrelevant to the gate).
struct CountingAllocator;

static ALLOC_EVENTS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static COUNTING: CountingAllocator = CountingAllocator;

fn alloc_events() -> u64 {
    ALLOC_EVENTS.load(Ordering::Relaxed)
}

/// A small model covering the layer kinds of the paper's networks:
/// conv, ReLU, activation quantization, max pooling, batch norm, a
/// residual block, flatten, and FC layers.
fn build_model() -> (QuantizedModel, Dataset) {
    let mut rng = Prng::seed_from_u64(77);
    let mut seq = Sequential::new();
    seq.push(Conv2d::new(1, 3, 3, 1, 1, &mut rng));
    seq.push(Relu::new());
    seq.push(ActQuant::unsigned(4));
    seq.push(MaxPool2d::new(2));
    seq.push(BatchNorm2d::new(3));
    let mut branch = Sequential::new();
    branch.push(Conv2d::new(3, 3, 3, 1, 1, &mut rng));
    seq.push(Residual::new(branch));
    seq.push(Flatten::new());
    seq.push(Linear::new(3 * 4 * 4, 8, &mut rng));
    seq.push(Relu::new());
    seq.push(Linear::new(8, 3, &mut rng));
    let net = Network::new("alloc-gate", seq);
    let model = QuantizedModel::new(net, 4, DeviceConfig::rram());
    let images = Tensor::randn(&[24, 1, 8, 8], &mut rng);
    let labels: Vec<usize> = (0..24).map(|i| i % 3).collect();
    let data = Dataset::new(images, labels, 3).unwrap();
    (model, data)
}

#[test]
fn steady_state_sweep_iterations_allocate_nothing() {
    let (model, data) = build_model();
    let ranking: Vec<usize> = (0..model.weight_count()).collect();
    let fractions = [0.0f64, 0.5, 1.0];
    let base = Prng::seed_from_u64(5);
    let mut scratch = EvalScratch::new(&model);

    // One full sweep iteration, exactly as `nwc_sweep` runs it per
    // Monte Carlo run: per fraction, build the mask, program the device
    // model into the scratch network, and score with the arena.
    let iteration = |scratch: &mut EvalScratch, run: u64| {
        let mut rng = base.fork(run);
        let mut acc_sum = 0.0;
        for &fraction in &fractions {
            mask_top_fraction_into(&ranking, fraction, &mut scratch.mask);
            scratch.program_and_load(&model, true, &mut rng);
            // Eval batch 16 on 24 images: the final partial batch
            // exercises the shrink-then-grow buffer reuse.
            acc_sum += scratch.accuracy(&data, 16);
        }
        acc_sum
    };

    // Warm-up: grow every buffer (arena, GEMM thread-local scratch,
    // im2col scratch, programming buffers) to steady-state size.
    let mut warm = 0.0;
    for run in 0..3 {
        warm += iteration(&mut scratch, run);
    }

    // The counter is process-global, so a stray allocation from another
    // runtime thread (lazy std init, the libtest harness) could land
    // inside the measured window. Such events are finite one-offs; a
    // genuine per-iteration leak would show up in *every* window. So:
    // take the minimum over a few windows — any window observing zero
    // proves the iteration itself is allocation-free, without making
    // the gate flaky.
    //
    // The gate runs once per SIMD backend the host supports: each
    // backend has its own kernel bodies and lane-remainder paths, and
    // any of them could plausibly stage through a fresh buffer.
    let mut measured = 0.0;
    let mut next_run = 2u64;
    for backend in swim_tensor::simd::available_backends() {
        swim_tensor::simd::with_backend(backend, || {
            // Re-warm under this backend before measuring.
            next_run += 1;
            warm += iteration(&mut scratch, next_run);
            let mut leaked = u64::MAX;
            for _attempt in 0..5u64 {
                let before = alloc_events();
                for _ in 0..10 {
                    next_run += 1;
                    measured += iteration(&mut scratch, next_run);
                }
                let after = alloc_events();
                leaked = leaked.min(after - before);
                if leaked == 0 {
                    break;
                }
            }
            assert_eq!(
                leaked, 0,
                "backend {backend}: steady-state sweep iterations performed {leaked} heap \
                 allocations (expected zero)"
            );
        })
        .expect("available backend");
    }
    // The accuracies are real numbers, not optimized away.
    assert!(warm > 0.0 && measured > 0.0);

    // Second gate: a full serial `nwc_sweep` call must allocate a
    // run-count-independent number of times — i.e. the per-run marginal
    // allocation count is exactly zero. (Sizes of the up-front
    // allocations differ with the run count; the number of allocation
    // events must not.)
    let sens = model.magnitudes();
    let mags = model.magnitudes();
    let sweep_cfg = |runs: usize| SweepConfig {
        fractions: vec![0.0, 0.5, 1.0],
        runs,
        threads: 1,
        eval_batch: 16,
        seed: 5,
        run_offset: 0,
        on_panic: swim_core::montecarlo::PanicPolicy::FailFast,
    };
    // Warm sweep (thread-locals, lazy statics).
    let _ = nwc_sweep(&model, &Strategy::Swim, &sens, &mags, &data, &sweep_cfg(2));

    // Same cross-thread-noise caveat as above: accept the first of a few
    // attempts where the two counts agree.
    let mut deltas = (0u64, 0u64);
    for _ in 0..5 {
        let c0 = alloc_events();
        let short = nwc_sweep(&model, &Strategy::Swim, &sens, &mags, &data, &sweep_cfg(4));
        let c1 = alloc_events();
        let long = nwc_sweep(&model, &Strategy::Swim, &sens, &mags, &data, &sweep_cfg(24));
        let c2 = alloc_events();
        assert_eq!(short.len(), 3);
        assert_eq!(long.len(), 3);
        deltas = (c1 - c0, c2 - c1);
        if deltas.0 == deltas.1 {
            break;
        }
    }
    assert_eq!(
        deltas.0, deltas.1,
        "per-run marginal allocations: 4-run sweep allocated {} times, 24-run sweep {} times",
        deltas.0, deltas.1
    );
}
