//! Algorithm 1: iterative selective write-verify.
//!
//! The paper's Alg. 1: program all weights, rank them by sensitivity,
//! then write-verify them in groups of `p` (5% of the weights by
//! default), re-reading the mapped network's accuracy after each group
//! and stopping as soon as the drop versus the reference accuracy is
//! within the budget `δA`. Reads are free; only write pulses count.

use crate::model::QuantizedModel;
use swim_data::Dataset;
use swim_nn::ActivationArena;
use swim_tensor::Prng;

/// Configuration for [`selective_write_verify`].
#[derive(Debug, Clone, Copy)]
pub struct Alg1Config {
    /// Programming granularity `p` as a fraction of the weights
    /// (paper: 0.05 — "setting p to be 5% of the total number of weights
    /// is sufficient").
    pub granularity: f64,
    /// Maximum acceptable accuracy drop `δA`, in accuracy fraction
    /// (e.g. `0.005` = half a percentage point).
    pub max_drop: f64,
    /// Evaluation batch size.
    pub batch: usize,
}

impl Default for Alg1Config {
    fn default() -> Self {
        Alg1Config { granularity: 0.05, max_drop: 0.005, batch: 256 }
    }
}

/// Outcome of one Algorithm 1 execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Alg1Outcome {
    /// Accuracy of the mapped network when the loop stopped.
    pub accuracy: f64,
    /// Normalized write cycles spent on write-verify.
    pub nwc: f64,
    /// Fraction of weights that were write-verified.
    pub verified_fraction: f64,
    /// Number of granularity groups processed.
    pub groups: usize,
    /// Whether the accuracy budget was met (false = ran out of weights).
    pub met_budget: bool,
}

/// Runs Algorithm 1 on a mapped model.
///
/// `ranking` is the most-important-first weight order (from
/// [`crate::select::build_ranking`]); `reference_accuracy` is `A`, the
/// clean model's accuracy; `eval` is the dataset `D` used for the
/// accuracy re-reads (the paper uses the training set).
///
/// # Panics
///
/// Panics if the ranking length differs from the model's weight count or
/// the config is out of range.
pub fn selective_write_verify(
    model: &mut QuantizedModel,
    ranking: &[usize],
    eval: &Dataset,
    reference_accuracy: f64,
    config: &Alg1Config,
    rng: &mut Prng,
) -> Alg1Outcome {
    let n = model.weight_count();
    assert_eq!(ranking.len(), n, "ranking length mismatch");
    assert!(config.granularity > 0.0 && config.granularity <= 1.0, "granularity must be in (0, 1]");
    assert!(config.max_drop >= 0.0, "max_drop must be non-negative");
    assert!(config.batch > 0, "batch must be positive");

    // NWC denominator on an independent stream.
    let denom = model.write_verify_all_cost(&mut rng.fork(u64::MAX)) as f64;

    // Step 2: program all weights (parallel bulk write; free per the
    // paper's NWC accounting).
    let (mut weights, _) = model.program_weights(None, rng);

    let group = ((n as f64 * config.granularity).round() as usize).max(1);
    let mut verify_pulses = 0u64;
    let mut verified = 0usize;
    let mut groups = 0usize;
    let mut met_budget = false;

    // NWC = 0 evaluation first: maybe no write-verify is needed at all.
    // One arena serves every per-group evaluation of this run.
    let mut arena = ActivationArena::new();
    model.network_mut().set_device_weights(&weights);
    let mut accuracy =
        model.network_mut().accuracy_with(eval.images(), eval.labels(), config.batch, &mut arena);
    if reference_accuracy - accuracy <= config.max_drop {
        met_budget = true;
    } else {
        let mut start = 0usize;
        while start < n {
            let end = (start + group).min(n);
            for &idx in &ranking[start..end] {
                let (value, pulses) = model.program_single(idx, true, rng);
                weights[idx] = value;
                verify_pulses += pulses;
            }
            verified += end - start;
            groups += 1;
            model.network_mut().set_device_weights(&weights);
            accuracy = model.network_mut().accuracy_with(
                eval.images(),
                eval.labels(),
                config.batch,
                &mut arena,
            );
            if reference_accuracy - accuracy <= config.max_drop {
                met_budget = true;
                break;
            }
            start = end;
        }
    }
    model.restore_clean();

    Alg1Outcome {
        accuracy,
        nwc: verify_pulses as f64 / denom,
        verified_fraction: verified as f64 / n as f64,
        groups,
        met_budget,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::select::{build_ranking, Strategy};
    use swim_cim::DeviceConfig;
    use swim_nn::layers::{Flatten, Linear, Relu, Sequential};
    use swim_nn::loss::SoftmaxCrossEntropy;
    use swim_nn::Network;
    use swim_tensor::Tensor;

    /// Small trained classifier over 2 blobs.
    fn trained() -> (QuantizedModel, Dataset) {
        let mut rng = Prng::seed_from_u64(20);
        let mut seq = Sequential::new();
        seq.push(Flatten::new());
        seq.push(Linear::new(8, 12, &mut rng));
        seq.push(Relu::new());
        seq.push(Linear::new(12, 2, &mut rng));
        let mut net = Network::new("t", seq);
        let n = 80;
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..n {
            let cls = i % 2;
            let c = if cls == 0 { -1.0f32 } else { 1.0 };
            for _ in 0..8 {
                xs.push(c + rng.normal_f32(0.0, 0.5));
            }
            ys.push(cls);
        }
        let images = Tensor::from_vec(xs, &[n, 1, 2, 4]).unwrap();
        let data = Dataset::new(images, ys, 2).unwrap();
        let cfg = swim_nn::train::TrainConfig {
            epochs: 12,
            batch_size: 16,
            lr: 0.1,
            ..Default::default()
        };
        swim_nn::train::fit(
            &mut net,
            &SoftmaxCrossEntropy::new(),
            data.images(),
            data.labels(),
            &cfg,
        );
        // High sigma so write-verify is actually needed.
        let model = QuantizedModel::new(net, 4, DeviceConfig::rram().with_sigma(0.5));
        (model, data)
    }

    #[test]
    fn loose_budget_stops_immediately() {
        let (mut model, data) = trained();
        let reference = model.clean_accuracy(&data, 64);
        let ranking: Vec<usize> = (0..model.weight_count()).collect();
        let cfg = Alg1Config { max_drop: 1.0, ..Default::default() };
        let mut rng = Prng::seed_from_u64(1);
        let out = selective_write_verify(&mut model, &ranking, &data, reference, &cfg, &mut rng);
        assert!(out.met_budget);
        assert_eq!(out.nwc, 0.0);
        assert_eq!(out.verified_fraction, 0.0);
    }

    #[test]
    fn tight_budget_verifies_more_than_loose() {
        let (mut model, data) = trained();
        let reference = model.clean_accuracy(&data, 64);
        let mut rng_sens = Prng::seed_from_u64(2);
        let _ = &mut rng_sens;
        let loss = SoftmaxCrossEntropy::new();
        let sens = model.sensitivities(&loss, &data, 40);
        let mags = model.magnitudes();
        let ranking = build_ranking(Strategy::Swim, &sens, &mags, None);

        let mut rng = Prng::seed_from_u64(3);
        let tight = selective_write_verify(
            &mut model,
            &ranking,
            &data,
            reference,
            &Alg1Config { max_drop: 0.0, granularity: 0.1, batch: 64 },
            &mut rng,
        );
        let mut rng = Prng::seed_from_u64(3);
        let loose = selective_write_verify(
            &mut model,
            &ranking,
            &data,
            reference,
            &Alg1Config { max_drop: 0.25, granularity: 0.1, batch: 64 },
            &mut rng,
        );
        assert!(tight.verified_fraction >= loose.verified_fraction);
        assert!(tight.nwc >= loose.nwc);
    }

    #[test]
    fn full_verification_recovers_reference() {
        let (mut model, data) = trained();
        let reference = model.clean_accuracy(&data, 64);
        let ranking: Vec<usize> = (0..model.weight_count()).collect();
        let mut rng = Prng::seed_from_u64(4);
        let out = selective_write_verify(
            &mut model,
            &ranking,
            &data,
            reference,
            &Alg1Config { max_drop: 0.0, granularity: 0.25, batch: 64 },
            &mut rng,
        );
        // Even if the budget was never met, verifying everything must end
        // within margin-level accuracy of the reference.
        assert!(
            out.accuracy >= reference - 0.05,
            "accuracy {} vs reference {reference}",
            out.accuracy
        );
        if !out.met_budget {
            assert_eq!(out.verified_fraction, 1.0);
            assert!((out.nwc - 1.0).abs() < 0.1, "nwc {}", out.nwc);
        }
    }

    #[test]
    fn model_weights_restored_after_run() {
        let (mut model, data) = trained();
        let before = model.clean_weights().to_vec();
        let reference = model.clean_accuracy(&data, 64);
        let ranking: Vec<usize> = (0..model.weight_count()).collect();
        let mut rng = Prng::seed_from_u64(5);
        selective_write_verify(
            &mut model,
            &ranking,
            &data,
            reference,
            &Alg1Config::default(),
            &mut rng,
        );
        assert_eq!(model.network_mut().device_weights(), before);
    }
}
