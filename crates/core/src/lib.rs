//! SWIM: selective write-verify for computing-in-memory neural
//! accelerators.
//!
//! This crate implements the paper's contribution ([Yan, Hu & Shi,
//! DAC 2022]) on top of the workspace substrates:
//!
//! 1. **Sensitivity analysis** ([`sensitivity`]) — the per-weight
//!    second-derivative metric (Eq. 5), computed by `swim-nn`'s
//!    single-pass recursion, with magnitude tie-breaking;
//! 2. **Selection strategies** ([`select`]) — SWIM's Hessian ranking and
//!    the paper's baselines (magnitude, random);
//! 3. **The mapped model** ([`model::QuantizedModel`]) — a trained
//!    network quantized and bound to the device programming model, able
//!    to produce noisy programmed instances with exact write-cycle
//!    accounting;
//! 4. **Algorithm 1** ([`algorithm`]) — iterative selective write-verify
//!    with programming granularity `p` and accuracy-drop budget `δA`;
//! 5. **In-situ training baseline** ([`insitu`]) — on-device SGD
//!    fine-tuning after mapping (paper ref \[13\]), counting one write per
//!    device per update;
//! 6. **Monte Carlo harness** ([`montecarlo`]) — deterministic parallel
//!    replication of the paper's 3,000-run statistics;
//! 7. **Reporting** ([`report`]) — the aligned text tables and CSV the
//!    experiment binaries emit.
//!
//! # Example: one SWIM pass end to end
//!
//! ```
//! use swim_core::model::QuantizedModel;
//! use swim_core::select::{Strategy, build_ranking, mask_top_fraction};
//! use swim_cim::DeviceConfig;
//! use swim_data::synthetic_mnist;
//! use swim_nn::loss::SoftmaxCrossEntropy;
//! use swim_nn::models::LeNetConfig;
//! use swim_tensor::Prng;
//!
//! // A (tiny, untrained — see examples/ for trained) model and data.
//! let net = LeNetConfig::default().build(0);
//! let data = synthetic_mnist(40, 0);
//! let mut model = QuantizedModel::new(net, 4, DeviceConfig::rram());
//!
//! // Rank by second derivative and write-verify the top 10%.
//! let loss = SoftmaxCrossEntropy::new();
//! let sens = model.sensitivities(&loss, &data, 20);
//! let ranking = build_ranking(Strategy::Swim, &sens, &model.magnitudes(), None);
//! let mask = mask_top_fraction(&ranking, 0.1);
//! let mut rng = Prng::seed_from_u64(1);
//! let (mut programmed, summary) = model.program_network(Some(&mask), &mut rng);
//! assert_eq!(summary.verified_weights as usize, mask.iter().filter(|&&m| m).count());
//! let _acc = programmed.accuracy(data.images(), data.labels(), 20);
//! ```
//!
//! [Yan, Hu & Shi, DAC 2022]: https://arxiv.org/abs/2202.08395

#![warn(missing_docs)]

pub mod algorithm;
pub mod insitu;
pub mod model;
pub mod montecarlo;
pub mod pool;
pub mod report;
pub mod select;
pub mod sensitivity;

pub use algorithm::{selective_write_verify, Alg1Config, Alg1Outcome};
pub use model::QuantizedModel;
pub use pool::{CancelToken, WorkerPool};
pub use select::{
    build_ranking, mask_top_fraction, registry, selector_by_name, SelectionInputs, Selector,
    Strategy,
};
