//! In-situ (on-device) training baseline — paper ref \[13\].
//!
//! After mapping, the network is fine-tuned directly on the accelerator:
//! each iteration runs forward/backpropagation *under the current noisy
//! weights* and applies the SGD update by re-programming the devices —
//! one write pulse per device per update, no verification. Write counts
//! accumulate into the same normalized-write-cycles currency as the
//! write-verify methods (§4.2: "the number of writes in each iteration
//! ... is equal to the number of weights that are selected for update").
//!
//! Because every write re-draws the programming noise, accuracy climbs
//! slowly and plateaus near the noise floor — the behaviour visible in
//! the paper's Table 1 and Fig. 2 — and only exceeds the write-verify
//! methods after tens of NWC (the paper reports full recovery at 32–155
//! NWC depending on the model).

use crate::model::QuantizedModel;
use swim_data::Dataset;
use swim_nn::loss::Loss;
use swim_nn::ActivationArena;
use swim_tensor::Prng;

/// Configuration for [`insitu_training`].
#[derive(Debug, Clone)]
pub struct InsituConfig {
    /// SGD learning rate for the on-device updates.
    pub lr: f32,
    /// Mini-batch size per iteration.
    pub batch_size: usize,
    /// Evaluation batch size.
    pub eval_batch: usize,
    /// NWC checkpoints at which accuracy is recorded (ascending).
    pub record_at: Vec<f64>,
}

impl Default for InsituConfig {
    fn default() -> Self {
        InsituConfig {
            lr: 0.01,
            batch_size: 32,
            eval_batch: 256,
            record_at: vec![0.0, 0.1, 0.3, 0.5, 0.7, 0.9, 1.0],
        }
    }
}

/// One recorded point of the in-situ training curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InsituPoint {
    /// Normalized write cycles consumed so far.
    pub nwc: f64,
    /// Accuracy at this point.
    pub accuracy: f64,
}

/// Runs the in-situ training baseline, recording accuracy at the NWC
/// checkpoints of `config.record_at`.
///
/// # Panics
///
/// Panics if the config is out of range or `record_at` is not ascending.
pub fn insitu_training(
    model: &mut QuantizedModel,
    loss: &dyn Loss,
    train: &Dataset,
    eval: &Dataset,
    config: &InsituConfig,
    rng: &mut Prng,
) -> Vec<InsituPoint> {
    assert!(config.lr > 0.0 && config.lr.is_finite(), "lr must be positive");
    assert!(config.batch_size > 0 && config.eval_batch > 0, "batch sizes must be positive");
    assert!(config.record_at.windows(2).all(|w| w[0] <= w[1]), "record_at must be ascending");
    assert!(!config.record_at.is_empty(), "record_at must not be empty");

    let n_weights = model.weight_count();
    let devices_per_weight = model.mapper().slicing().num_devices() as f64;
    let denom = model.write_verify_all_cost(&mut rng.fork(u64::MAX)) as f64;
    let writes_per_iter = n_weights as f64 * devices_per_weight;
    let nwc_per_iter = writes_per_iter / denom;

    // Initial mapping: bulk-program everything (NWC = 0 baseline).
    // One arena serves every accuracy evaluation of this run, so the
    // repeated checkpoint scoring reuses its activation buffers.
    let mut arena = ActivationArena::new();
    let (mut weights, _) = model.program_weights(None, rng);
    let sigmas = model.weight_value_sigmas();
    let limits = model.weight_value_limits();
    // The ideal (noise-free) weight state the training maintains; device
    // state is ideal + fresh programming noise after every write.
    let mut ideal: Vec<f32> = weights.clone();

    let mut points = Vec::with_capacity(config.record_at.len());
    let mut nwc = 0.0f64;
    let mut next_record = 0usize;

    // Record the NWC = 0 point(s).
    model.network_mut().set_device_weights(&weights);
    let mut accuracy = model.network_mut().accuracy_with(
        eval.images(),
        eval.labels(),
        config.eval_batch,
        &mut arena,
    );
    while next_record < config.record_at.len() && nwc >= config.record_at[next_record] {
        points.push(InsituPoint { nwc, accuracy });
        next_record += 1;
    }

    let n_train = train.len();
    let mut order: Vec<usize> = (0..n_train).collect();
    let mut cursor = n_train; // force reshuffle on first use

    while next_record < config.record_at.len() {
        // Next mini-batch (reshuffle each epoch).
        if cursor + config.batch_size > n_train {
            rng.shuffle(&mut order);
            cursor = 0;
        }
        let idx = &order[cursor..(cursor + config.batch_size).min(n_train)];
        cursor += config.batch_size;
        let batch = train.images().gather_axis0(idx);
        let targets: Vec<usize> = idx.iter().map(|&i| train.labels()[i]).collect();

        // Forward/backward under the *noisy* on-device weights.
        model.network_mut().set_device_weights(&weights);
        model.network_mut().zero_grads();
        model.network_mut().accumulate_gradients(loss, &batch, &targets);
        let grad = model.network_mut().device_gradient();

        // On-device update: new target = ideal - lr * grad (saturating at
        // device full-scale), then one noisy write per device.
        for i in 0..n_weights {
            let target = (ideal[i] - config.lr * grad[i]).clamp(-limits[i], limits[i]);
            ideal[i] = target;
            weights[i] = target + rng.normal_f32(0.0, sigmas[i]);
        }
        nwc += nwc_per_iter;

        // Record any checkpoints crossed by this iteration.
        if nwc >= config.record_at[next_record] {
            model.network_mut().set_device_weights(&weights);
            accuracy = model.network_mut().accuracy_with(
                eval.images(),
                eval.labels(),
                config.eval_batch,
                &mut arena,
            );
            while next_record < config.record_at.len() && nwc >= config.record_at[next_record] {
                points.push(InsituPoint { nwc, accuracy });
                next_record += 1;
            }
        }
    }
    model.restore_clean();
    points
}

#[cfg(test)]
mod tests {
    use super::*;
    use swim_cim::DeviceConfig;
    use swim_nn::layers::{Flatten, Linear, Relu, Sequential};
    use swim_nn::loss::SoftmaxCrossEntropy;
    use swim_nn::Network;
    use swim_tensor::Tensor;

    fn trained() -> (QuantizedModel, Dataset) {
        let mut rng = Prng::seed_from_u64(30);
        let mut seq = Sequential::new();
        seq.push(Flatten::new());
        seq.push(Linear::new(8, 12, &mut rng));
        seq.push(Relu::new());
        seq.push(Linear::new(12, 2, &mut rng));
        let mut net = Network::new("t", seq);
        let n = 80;
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..n {
            let cls = i % 2;
            let c = if cls == 0 { -1.0f32 } else { 1.0 };
            for _ in 0..8 {
                xs.push(c + rng.normal_f32(0.0, 0.5));
            }
            ys.push(cls);
        }
        let images = Tensor::from_vec(xs, &[n, 1, 2, 4]).unwrap();
        let data = Dataset::new(images, ys, 2).unwrap();
        let cfg = swim_nn::train::TrainConfig {
            epochs: 12,
            batch_size: 16,
            lr: 0.1,
            ..Default::default()
        };
        swim_nn::train::fit(
            &mut net,
            &SoftmaxCrossEntropy::new(),
            data.images(),
            data.labels(),
            &cfg,
        );
        let model = QuantizedModel::new(net, 4, DeviceConfig::rram().with_sigma(0.4));
        (model, data)
    }

    #[test]
    fn records_all_checkpoints_in_order() {
        let (mut model, data) = trained();
        let cfg =
            InsituConfig { record_at: vec![0.0, 0.2, 0.5], eval_batch: 64, ..Default::default() };
        let mut rng = Prng::seed_from_u64(1);
        let curve =
            insitu_training(&mut model, &SoftmaxCrossEntropy::new(), &data, &data, &cfg, &mut rng);
        assert_eq!(curve.len(), 3);
        assert!(curve.windows(2).all(|w| w[0].nwc <= w[1].nwc));
        assert!(curve[0].nwc == 0.0);
        assert!(curve.iter().all(|p| (0.0..=1.0).contains(&p.accuracy)));
    }

    #[test]
    fn training_improves_over_unverified_mapping() {
        let (mut model, data) = trained();
        let cfg =
            InsituConfig { lr: 0.05, record_at: vec![0.0, 3.0], eval_batch: 64, batch_size: 16 };
        let mut rng = Prng::seed_from_u64(2);
        let curve =
            insitu_training(&mut model, &SoftmaxCrossEntropy::new(), &data, &data, &cfg, &mut rng);
        // After 3 NWC (~30 iterations) accuracy should beat the noisy
        // NWC=0 mapping on this easy task.
        assert!(
            curve[1].accuracy >= curve[0].accuracy - 0.05,
            "insitu end {} vs start {}",
            curve[1].accuracy,
            curve[0].accuracy
        );
    }

    #[test]
    fn restores_clean_weights() {
        let (mut model, data) = trained();
        let before = model.clean_weights().to_vec();
        let cfg = InsituConfig { record_at: vec![0.0, 0.2], eval_batch: 64, ..Default::default() };
        let mut rng = Prng::seed_from_u64(3);
        insitu_training(&mut model, &SoftmaxCrossEntropy::new(), &data, &data, &cfg, &mut rng);
        assert_eq!(model.network_mut().device_weights(), before);
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn rejects_unsorted_checkpoints() {
        let (mut model, data) = trained();
        let cfg = InsituConfig { record_at: vec![0.5, 0.2], ..Default::default() };
        let mut rng = Prng::seed_from_u64(4);
        insitu_training(&mut model, &SoftmaxCrossEntropy::new(), &data, &data, &cfg, &mut rng);
    }
}
