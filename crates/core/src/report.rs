//! Text-table and CSV reporting for the experiment binaries.
//!
//! The regeneration binaries print their results in the same row/column
//! structure as the paper's tables and figures; this module provides the
//! aligned-text renderer and a CSV emitter (our own formatter — the
//! workspace deliberately avoids a serialization dependency for what is
//! a few dozen lines of formatting).

use swim_tensor::stats::Running;

/// `mean ± std` in the paper's Table 1 format (two decimals).
///
/// # Example
///
/// ```
/// use swim_core::report::fmt_mean_std;
/// use swim_tensor::stats::Running;
///
/// let mut acc = Running::new();
/// for x in [98.4, 98.6] {
///     acc.push(x);
/// }
/// assert_eq!(fmt_mean_std(&acc), "98.50 ± 0.10");
/// ```
pub fn fmt_mean_std(stats: &Running) -> String {
    format!("{:.2} ± {:.2}", stats.mean(), stats.std())
}

/// A simple aligned text table with optional CSV export.
///
/// # Example
///
/// ```
/// use swim_core::report::Table;
///
/// let mut t = Table::new("demo", &["method", "accuracy"]);
/// t.push_row(&["SWIM", "98.5"]);
/// let text = t.render();
/// assert!(text.contains("SWIM"));
/// assert!(t.to_csv().starts_with("method,accuracy"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn push_row(&mut self, cells: &[&str]) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row has {} cells, table has {} columns",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells.iter().map(|s| s.to_string()).collect());
    }

    /// Appends a row of owned strings.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn push_row_owned(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row has {} cells, table has {} columns",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// The column headers.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// The data rows.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders an aligned text table.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (c, cell) in row.iter().enumerate() {
                widths[c] = widths[c].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for c in 0..cols {
                if c > 0 {
                    line.push_str("  ");
                }
                let cell = &cells[c];
                line.push_str(cell);
                for _ in cell.chars().count()..widths[c] {
                    line.push(' ');
                }
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Renders RFC-4180-style CSV (quoting cells containing commas or
    /// quotes).
    pub fn to_csv(&self) -> String {
        fn esc(cell: &str) -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        }
        let mut out = String::new();
        out.push_str(&self.headers.iter().map(|h| esc(h)).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("t", &["a", "long_header"]);
        t.push_row(&["xxxxxx", "1"]);
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        // Header line and row line put column 2 at the same offset.
        let h = lines[1];
        let r = lines[3];
        assert_eq!(h.find("long_header").unwrap(), r.find('1').unwrap());
    }

    #[test]
    #[should_panic(expected = "cells")]
    fn row_width_checked() {
        let mut t = Table::new("t", &["a", "b"]);
        t.push_row(&["only-one"]);
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = Table::new("t", &["x"]);
        t.push_row(&["a,b"]);
        t.push_row(&["say \"hi\""]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn csv_quotes_comma_cells_and_preserves_plus_minus() {
        let mut t = Table::new("t", &["cell"]);
        t.push_row(&["98.50 ± 0.10"]);
        t.push_row(&["1,234"]);
        let csv = t.to_csv();
        // The ± sign needs no quoting and must survive byte-exact.
        assert!(csv.contains("98.50 ± 0.10\n"));
        assert!(!csv.contains("\"98.50"));
        // Comma cells are quoted so the row still has one column.
        assert!(csv.contains("\"1,234\""));
    }

    #[test]
    fn csv_quotes_newline_cells() {
        let mut t = Table::new("t", &["a", "b"]);
        t.push_row(&["line1\nline2", "plain"]);
        let csv = t.to_csv();
        assert!(csv.contains("\"line1\nline2\",plain"));
        // Exactly one header line + the (wrapped) data row's two lines.
        assert_eq!(csv.lines().count(), 3);
    }

    #[test]
    fn accessors_expose_structure() {
        let mut t = Table::new("title", &["h1", "h2"]);
        t.push_row(&["a", "b"]);
        assert_eq!(t.title(), "title");
        assert_eq!(t.headers(), &["h1".to_string(), "h2".to_string()]);
        assert_eq!(t.rows(), &[vec!["a".to_string(), "b".to_string()]]);
    }

    #[test]
    fn mean_std_format() {
        let mut r = Running::new();
        r.push(1.0);
        r.push(3.0);
        assert_eq!(fmt_mean_std(&r), "2.00 ± 1.00");
    }

    #[test]
    fn empty_table_renders_headers() {
        let t = Table::new("empty", &["h1", "h2"]);
        assert!(t.is_empty());
        assert!(t.render().contains("h1"));
    }
}
