//! Per-weight perturbation studies — the Fig. 1 correlation experiment.
//!
//! The paper motivates SWIM by showing (Fig. 1) that a weight's
//! *magnitude* barely predicts the accuracy drop its variation causes,
//! while its *second derivative* predicts it strongly (Pearson r ≈ 0.83).
//! [`correlation_study`] reproduces that experiment: perturb one weight
//! at a time with the device-variation Gaussian, Monte Carlo the accuracy
//! drop, and correlate the drops against both metrics.

use crate::model::QuantizedModel;
use swim_data::Dataset;
use swim_nn::ActivationArena;
use swim_tensor::stats::pearson;
use swim_tensor::Prng;

/// One weight's row in the correlation study.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeightImpact {
    /// Flat weight index.
    pub index: usize,
    /// `|w|` of the clean quantized weight.
    pub magnitude: f64,
    /// SWIM sensitivity (diagonal second derivative).
    pub sensitivity: f64,
    /// Mean accuracy drop (percentage points) over the Monte Carlo runs.
    pub accuracy_drop: f64,
}

/// Result of [`correlation_study`].
#[derive(Debug, Clone)]
pub struct CorrelationStudy {
    /// Per-weight rows (one per probed weight).
    pub impacts: Vec<WeightImpact>,
    /// Pearson correlation between magnitude and accuracy drop
    /// (paper Fig. 1a: weak).
    pub magnitude_correlation: f64,
    /// Pearson correlation between second derivative and accuracy drop
    /// (paper Fig. 1b: strong, ≈0.83).
    pub sensitivity_correlation: f64,
}

/// Configuration for the correlation study.
#[derive(Debug, Clone, Copy)]
pub struct CorrelationConfig {
    /// Number of weights to probe (sampled across the sensitivity
    /// range so both tails are represented).
    pub probes: usize,
    /// Monte Carlo runs per probed weight (paper: 100).
    pub runs: usize,
    /// Evaluation batch size.
    pub batch: usize,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for CorrelationConfig {
    fn default() -> Self {
        CorrelationConfig { probes: 150, runs: 30, batch: 128, seed: 0 }
    }
}

/// Runs the Fig. 1 experiment on a trained, quantized model.
///
/// For each probed weight: add `N(0, σ_w²)` (the Eq. 16 weight-value
/// sigma) to that weight only, evaluate accuracy on `eval`, repeat
/// `runs` times, and record the mean drop versus the clean accuracy.
///
/// Probes are stratified over the sensitivity ranking so the study spans
/// the full range rather than sampling the (dominant) low-sensitivity
/// mass.
///
/// # Panics
///
/// Panics if `probes`, `runs`, or `batch` is zero, or `probes` exceeds
/// the weight count.
pub fn correlation_study(
    model: &mut QuantizedModel,
    sensitivities: &[f32],
    eval: &Dataset,
    config: &CorrelationConfig,
) -> CorrelationStudy {
    assert!(config.probes > 0 && config.runs > 0 && config.batch > 0, "config must be positive");
    let n = model.weight_count();
    assert!(config.probes <= n, "cannot probe {} of {n} weights", config.probes);
    assert_eq!(sensitivities.len(), n, "sensitivity vector length mismatch");

    let clean_acc = model.clean_accuracy(eval, config.batch);
    let sigmas = model.weight_value_sigmas();
    let clean = model.clean_weights().to_vec();
    let mags = model.magnitudes();

    // Probe selection: half the probes cover the top of the sensitivity
    // ranking densely (where single-weight perturbations produce a
    // measurable accuracy signal), half stride across the remainder so
    // the low-sensitivity mass is represented. A uniform stride would
    // spend almost every probe on weights whose true accuracy impact is
    // below the Monte Carlo noise floor, washing the correlation out.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        sensitivities[b].partial_cmp(&sensitivities[a]).unwrap_or(std::cmp::Ordering::Equal)
    });
    let top = config.probes / 2;
    let rest = config.probes - top;
    let mut probes: Vec<usize> = order.iter().take(top).copied().collect();
    if rest > 0 && n > top {
        let stride = ((n - top) / rest).max(1);
        probes.extend(order[top..].iter().step_by(stride).take(rest).copied());
    }

    let mut rng = Prng::seed_from_u64(config.seed);
    let mut impacts = Vec::with_capacity(probes.len());
    // One arena serves the whole probe grid (probes x runs evaluations).
    let mut arena = ActivationArena::new();
    let mut weights = clean.clone();
    for &w_idx in &probes {
        let mut drop_acc = 0.0f64;
        for _ in 0..config.runs {
            weights[w_idx] = clean[w_idx] + rng.normal_f32(0.0, sigmas[w_idx]);
            model.network_mut().set_device_weights(&weights);
            let acc = model.network_mut().accuracy_with(
                eval.images(),
                eval.labels(),
                config.batch,
                &mut arena,
            );
            // Signed drop: clamping at zero would bias every
            // zero-impact weight upward by the Monte Carlo noise floor.
            drop_acc += clean_acc - acc;
        }
        weights[w_idx] = clean[w_idx];
        impacts.push(WeightImpact {
            index: w_idx,
            magnitude: mags[w_idx] as f64,
            sensitivity: sensitivities[w_idx] as f64,
            accuracy_drop: 100.0 * drop_acc / config.runs as f64,
        });
    }
    model.restore_clean();

    let drops: Vec<f64> = impacts.iter().map(|i| i.accuracy_drop).collect();
    let mags_v: Vec<f64> = impacts.iter().map(|i| i.magnitude).collect();
    let sens_v: Vec<f64> = impacts.iter().map(|i| i.sensitivity).collect();
    CorrelationStudy {
        magnitude_correlation: pearson(&mags_v, &drops),
        sensitivity_correlation: pearson(&sens_v, &drops),
        impacts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swim_cim::DeviceConfig;
    use swim_nn::layers::{Flatten, Linear, Relu, Sequential};
    use swim_nn::loss::SoftmaxCrossEntropy;
    use swim_nn::Network;
    use swim_tensor::Tensor;

    fn trained_toy() -> (QuantizedModel, Dataset) {
        let mut rng = Prng::seed_from_u64(10);
        let mut seq = Sequential::new();
        seq.push(Flatten::new());
        seq.push(Linear::new(8, 16, &mut rng));
        seq.push(Relu::new());
        seq.push(Linear::new(16, 2, &mut rng));
        let mut net = Network::new("toy", seq);

        // Learnable blobs in 8 dims.
        let n = 64;
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..n {
            let cls = i % 2;
            let c = if cls == 0 { -1.0f32 } else { 1.0 };
            for _ in 0..8 {
                xs.push(c + rng.normal_f32(0.0, 0.4));
            }
            ys.push(cls);
        }
        let images = Tensor::from_vec(xs, &[n, 1, 2, 4]).unwrap();
        let data = Dataset::new(images, ys, 2).unwrap();
        let cfg = swim_nn::train::TrainConfig {
            epochs: 10,
            batch_size: 16,
            lr: 0.1,
            ..Default::default()
        };
        swim_nn::train::fit(
            &mut net,
            &SoftmaxCrossEntropy::new(),
            data.images(),
            data.labels(),
            &cfg,
        );
        let model = QuantizedModel::new(net, 4, DeviceConfig::rram());
        (model, data)
    }

    #[test]
    fn study_produces_correlations_in_range() {
        let (mut model, data) = trained_toy();
        let sens = model.sensitivities(&SoftmaxCrossEntropy::new(), &data, 32);
        let cfg = CorrelationConfig { probes: 30, runs: 8, batch: 64, seed: 1 };
        let study = correlation_study(&mut model, &sens, &data, &cfg);
        assert_eq!(study.impacts.len(), 30);
        assert!((-1.0..=1.0).contains(&study.magnitude_correlation));
        assert!((-1.0..=1.0).contains(&study.sensitivity_correlation));
        // Drops are small signed percentages (noise can make them
        // slightly negative for zero-impact weights).
        assert!(study.impacts.iter().all(|i| i.accuracy_drop.abs() <= 100.0));
    }

    #[test]
    fn clean_weights_restored_after_study() {
        let (mut model, data) = trained_toy();
        let sens = model.sensitivities(&SoftmaxCrossEntropy::new(), &data, 32);
        let before = model.clean_weights().to_vec();
        let cfg = CorrelationConfig { probes: 10, runs: 3, batch: 64, seed: 2 };
        correlation_study(&mut model, &sens, &data, &cfg);
        assert_eq!(model.network_mut().device_weights(), before);
    }

    #[test]
    fn deterministic_given_seed() {
        let (mut model_a, data) = trained_toy();
        let sens = model_a.sensitivities(&SoftmaxCrossEntropy::new(), &data, 32);
        let cfg = CorrelationConfig { probes: 10, runs: 3, batch: 64, seed: 3 };
        let a = correlation_study(&mut model_a, &sens, &data, &cfg);
        let b = correlation_study(&mut model_a, &sens, &data, &cfg);
        assert_eq!(a.sensitivity_correlation, b.sensitivity_correlation);
    }
}
