//! Deterministic parallel Monte Carlo harness.
//!
//! The paper reports every number as mean ± std over 3,000 Monte Carlo
//! runs. This module parallelizes such replication across threads while
//! keeping results *independent of the schedule*: run `r` always draws
//! from the forked stream `base.fork(r)`, so `--threads 1` and
//! `--threads 32` produce bit-identical statistics.

use crate::model::QuantizedModel;
use crate::select::{build_ranking, mask_top_fraction, Strategy};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use swim_data::Dataset;
use swim_tensor::stats::Running;
use swim_tensor::Prng;

/// Runs `f(run_index, rng)` for `runs` independent runs across
/// `threads` worker threads, preserving result order.
///
/// # Panics
///
/// Panics if `threads` is zero (use 1 for serial execution).
pub fn parallel_map<T, F>(runs: usize, threads: usize, base: &Prng, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, Prng) -> T + Sync,
{
    assert!(threads > 0, "threads must be positive");
    let results: Mutex<Vec<Option<T>>> = Mutex::new((0..runs).map(|_| None).collect());
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads.min(runs.max(1)) {
            scope.spawn(|| loop {
                let r = next.fetch_add(1, Ordering::Relaxed);
                if r >= runs {
                    break;
                }
                let out = f(r, base.fork(r as u64));
                results.lock().expect("no panics while holding lock")[r] = Some(out);
            });
        }
    });
    results
        .into_inner()
        .expect("scope joined all threads")
        .into_iter()
        .map(|o| o.expect("every run index was processed"))
        .collect()
}

/// One point of an accuracy-vs-NWC sweep: statistics over all runs at a
/// target selection fraction.
#[derive(Debug, Clone, Copy)]
pub struct SweepPoint {
    /// Fraction of weights selected for write-verify.
    pub fraction: f64,
    /// Measured normalized write cycles (mean over runs).
    pub nwc: f64,
    /// Accuracy statistics over the Monte Carlo runs (in percent).
    pub accuracy: Running,
}

/// Configuration of an accuracy-vs-NWC sweep.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Selection fractions to evaluate (the paper's NWC grid).
    pub fractions: Vec<f64>,
    /// Monte Carlo runs (paper: 3,000).
    pub runs: usize,
    /// Worker threads.
    pub threads: usize,
    /// Evaluation batch size.
    pub eval_batch: usize,
    /// Base seed.
    pub seed: u64,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            fractions: vec![0.0, 0.1, 0.3, 0.5, 0.7, 0.9, 1.0],
            runs: 100,
            threads: num_threads(),
            eval_batch: 256,
            seed: 0,
        }
    }
}

/// Available parallelism, defaulting to 1 when undetectable.
pub fn num_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Sweeps accuracy versus NWC for one selection strategy.
///
/// For `Swim`/`Magnitude` the ranking is computed once (it is a
/// deterministic property of the trained model); for `Random` a fresh
/// ranking is drawn inside each run, exactly as the paper's baseline
/// re-selects randomly each time.
///
/// Returned accuracies are percentages (0–100) to match the paper's
/// tables.
///
/// # Panics
///
/// Panics if `sensitivities`/`magnitudes` lengths mismatch the model.
pub fn nwc_sweep(
    model: &QuantizedModel,
    strategy: Strategy,
    sensitivities: &[f32],
    magnitudes: &[f32],
    eval: &Dataset,
    config: &SweepConfig,
) -> Vec<SweepPoint> {
    assert_eq!(sensitivities.len(), model.weight_count(), "sensitivities length mismatch");
    assert_eq!(magnitudes.len(), model.weight_count(), "magnitudes length mismatch");
    for &f in &config.fractions {
        assert!((0.0..=1.0).contains(&f), "fraction {f} out of range");
    }

    let base = Prng::seed_from_u64(config.seed);
    let denom = model.write_verify_all_cost(&mut base.fork(u64::MAX)) as f64;
    let fixed_ranking = match strategy {
        Strategy::Random => None,
        s => Some(build_ranking(s, sensitivities, magnitudes, None)),
    };

    // Each run returns (accuracy %, measured NWC) per fraction.
    let per_run: Vec<Vec<(f64, f64)>> =
        parallel_map(config.runs, config.threads, &base, |_, mut rng| {
            let ranking = match &fixed_ranking {
                Some(r) => r.clone(),
                None => build_ranking(strategy, sensitivities, magnitudes, Some(&mut rng)),
            };
            let mut network = model.network_clone();
            config
                .fractions
                .iter()
                .map(|&fraction| {
                    let mask = mask_top_fraction(&ranking, fraction);
                    let (weights, summary) = model.program_weights(Some(&mask), &mut rng);
                    network.set_device_weights(&weights);
                    let acc =
                        network.accuracy(eval.images(), eval.labels(), config.eval_batch);
                    (100.0 * acc, summary.verify_pulses as f64 / denom)
                })
                .collect()
        });

    config
        .fractions
        .iter()
        .enumerate()
        .map(|(fi, &fraction)| {
            let mut accuracy = Running::new();
            let mut nwc = Running::new();
            for run in &per_run {
                accuracy.push(run[fi].0);
                nwc.push(run[fi].1);
            }
            SweepPoint { fraction, nwc: nwc.mean(), accuracy }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use swim_cim::DeviceConfig;
    use swim_nn::layers::{Flatten, Linear, Relu, Sequential};
    use swim_nn::loss::SoftmaxCrossEntropy;
    use swim_nn::Network;
    use swim_tensor::Tensor;

    #[test]
    fn parallel_map_is_schedule_independent() {
        let base = Prng::seed_from_u64(5);
        let serial = parallel_map(16, 1, &base, |r, mut rng| (r, rng.next_u64()));
        let parallel = parallel_map(16, 8, &base, |r, mut rng| (r, rng.next_u64()));
        assert_eq!(serial, parallel);
        // Results arrive in run order.
        for (i, (r, _)) in serial.iter().enumerate() {
            assert_eq!(i, *r);
        }
    }

    #[test]
    fn parallel_map_distinct_streams() {
        let base = Prng::seed_from_u64(6);
        let outs = parallel_map(8, 4, &base, |_, mut rng| rng.next_u64());
        let mut dedup = outs.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), outs.len());
    }

    fn trained() -> (QuantizedModel, Dataset) {
        let mut rng = Prng::seed_from_u64(40);
        let mut seq = Sequential::new();
        seq.push(Flatten::new());
        seq.push(Linear::new(8, 12, &mut rng));
        seq.push(Relu::new());
        seq.push(Linear::new(12, 2, &mut rng));
        let mut net = Network::new("t", seq);
        let n = 60;
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..n {
            let cls = i % 2;
            let c = if cls == 0 { -1.0f32 } else { 1.0 };
            for _ in 0..8 {
                xs.push(c + rng.normal_f32(0.0, 0.5));
            }
            ys.push(cls);
        }
        let images = Tensor::from_vec(xs, &[n, 1, 2, 4]).unwrap();
        let data = Dataset::new(images, ys, 2).unwrap();
        let cfg = swim_nn::train::TrainConfig {
            epochs: 10,
            batch_size: 16,
            lr: 0.1,
            ..Default::default()
        };
        swim_nn::train::fit(&mut net, &SoftmaxCrossEntropy::new(), data.images(), data.labels(), &cfg);
        let model = QuantizedModel::new(net, 4, DeviceConfig::rram().with_sigma(0.4));
        (model, data)
    }

    #[test]
    fn sweep_monotone_nwc_and_deterministic() {
        let (mut model, data) = trained();
        let sens = model.sensitivities(&SoftmaxCrossEntropy::new(), &data, 32);
        let mags = model.magnitudes();
        let cfg = SweepConfig {
            fractions: vec![0.0, 0.5, 1.0],
            runs: 8,
            threads: 4,
            eval_batch: 64,
            seed: 7,
        };
        let sweep = nwc_sweep(&model, Strategy::Swim, &sens, &mags, &data, &cfg);
        assert_eq!(sweep.len(), 3);
        assert!(sweep[0].nwc < 1e-9);
        assert!(sweep[1].nwc > 0.3 && sweep[1].nwc < 0.7);
        assert!((sweep[2].nwc - 1.0).abs() < 0.1);
        // Full verification should be at least as accurate as none.
        assert!(sweep[2].accuracy.mean() >= sweep[0].accuracy.mean() - 2.0);

        let again = nwc_sweep(&model, Strategy::Swim, &sens, &mags, &data, &cfg);
        assert_eq!(sweep[1].accuracy.mean(), again[1].accuracy.mean());
    }

    #[test]
    fn random_strategy_varies_across_runs_but_not_seeds() {
        let (mut model, data) = trained();
        let sens = model.sensitivities(&SoftmaxCrossEntropy::new(), &data, 32);
        let mags = model.magnitudes();
        let cfg = SweepConfig {
            fractions: vec![0.5],
            runs: 6,
            threads: 2,
            eval_batch: 64,
            seed: 8,
        };
        let a = nwc_sweep(&model, Strategy::Random, &sens, &mags, &data, &cfg);
        let b = nwc_sweep(&model, Strategy::Random, &sens, &mags, &data, &cfg);
        assert_eq!(a[0].accuracy.mean(), b[0].accuracy.mean());
        assert!(a[0].accuracy.std() >= 0.0);
    }
}
