//! Deterministic parallel Monte Carlo harness.
//!
//! The paper reports every number as mean ± std over 3,000 Monte Carlo
//! runs. This module parallelizes such replication across threads while
//! keeping results *independent of the schedule*: run `r` always draws
//! from the forked stream `base.fork(r)`, so `--threads 1` and
//! `--threads 32` produce bit-identical statistics.

use crate::model::{EvalScratch, QuantizedModel};
use crate::select::{mask_top_fraction_into, SelectionInputs, Selector};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Mutex};
use swim_data::Dataset;
use swim_tensor::stats::Running;
use swim_tensor::Prng;

/// Runs `f(run_index, rng)` for `runs` independent runs across
/// `threads` worker threads, preserving result order.
///
/// Workers pull *chunks* of the result vector from a queue and write
/// into their disjoint slices directly — there is no shared lock on the
/// results, so replication throughput scales with cores. Run `r` always
/// draws from `base.fork(r)`, so the output is bit-identical for every
/// `threads` setting.
///
/// `runs == 0` returns an empty vector without spawning any workers.
///
/// # Panics
///
/// Panics if `threads` is zero (use 1 for serial execution), or if `f`
/// panics for some run — in that case the panic is propagated with the
/// offending run index and the worker's panic message.
pub fn parallel_map<T, F>(runs: usize, threads: usize, base: &Prng, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, Prng) -> T + Sync,
{
    parallel_map_with(runs, threads, base, || (), |(), r, rng| f(r, rng))
}

/// [`parallel_map`] with per-worker scratch state.
///
/// `init` runs once on each worker thread (and once total on the serial
/// path); the resulting state is passed `&mut` to every run that worker
/// executes. This is how the sweep harness reuses one cloned network and
/// one set of programming buffers across a worker's whole share of the
/// Monte Carlo budget instead of reallocating per run.
///
/// The schedule-independence contract is unchanged — run `r` still draws
/// only from `base.fork(r)` — but it now also requires `f` to be
/// *state-oblivious*: the value returned for run `r` must not depend on
/// what previous runs left in the scratch (e.g. every buffer `f` reads
/// is fully overwritten first). Under that condition results are
/// bit-identical for every `threads` value.
///
/// # Panics
///
/// Panics if `threads` is zero, or if `f` panics for some run — the
/// panic is propagated with the offending run index.
pub fn parallel_map_with<T, S, I, F>(
    runs: usize,
    threads: usize,
    base: &Prng,
    init: I,
    f: F,
) -> Vec<T>
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, Prng) -> T + Sync,
{
    assert!(threads > 0, "threads must be positive");
    if runs == 0 {
        return Vec::new();
    }
    let workers = threads.min(runs);
    if workers == 1 {
        let mut state = init();
        return (0..runs)
            .map(|r| {
                std::panic::catch_unwind(AssertUnwindSafe(|| f(&mut state, r, base.fork(r as u64))))
                    .unwrap_or_else(|payload| {
                        panic!("parallel_map: run {r} panicked: {}", panic_detail(payload.as_ref()))
                    })
            })
            .collect();
    }

    let mut slots: Vec<Option<T>> = (0..runs).map(|_| None).collect();
    // Chunks several times smaller than a fair share keep the queue
    // balancing uneven run times without lock traffic per run.
    let chunk = (runs / (workers * 4)).max(1);
    let first_panic: Mutex<Option<(usize, Box<dyn std::any::Any + Send>)>> = Mutex::new(None);
    let abort = AtomicBool::new(false);

    let (tx, rx) = mpsc::channel();
    for (ci, slice) in slots.chunks_mut(chunk).enumerate() {
        tx.send((ci * chunk, slice)).expect("receiver alive");
    }
    drop(tx);
    let queue = Mutex::new(rx);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut state = init();
                loop {
                    if abort.load(Ordering::Relaxed) {
                        break;
                    }
                    let next = queue.lock().unwrap_or_else(|poisoned| poisoned.into_inner()).recv();
                    let Ok((start, slice)) = next else { break };
                    for (offset, slot) in slice.iter_mut().enumerate() {
                        let r = start + offset;
                        match std::panic::catch_unwind(AssertUnwindSafe(|| {
                            f(&mut state, r, base.fork(r as u64))
                        })) {
                            Ok(value) => *slot = Some(value),
                            Err(payload) => {
                                let mut guard = first_panic
                                    .lock()
                                    .unwrap_or_else(|poisoned| poisoned.into_inner());
                                // Keep the lowest run index for a stable message.
                                match &*guard {
                                    Some((held, _)) if *held <= r => {}
                                    _ => *guard = Some((r, payload)),
                                }
                                abort.store(true, Ordering::Relaxed);
                                return;
                            }
                        }
                    }
                }
            });
        }
    });

    // The receiver still holds borrows of `slots` chunks that were never
    // claimed (abort path); drop it before consuming the results.
    drop(queue);

    if let Some((r, payload)) =
        first_panic.into_inner().unwrap_or_else(|poisoned| poisoned.into_inner())
    {
        panic!("parallel_map: run {r} panicked: {}", panic_detail(payload.as_ref()));
    }
    slots.into_iter().map(|slot| slot.expect("every run index was processed")).collect()
}

/// [`parallel_map_with`] writing results into a caller-provided flat
/// row-major matrix instead of returning per-run values.
///
/// Run `r` receives the mutable row `out[r·row_len .. (r+1)·row_len]`
/// and must fully overwrite it. This is the zero-allocation variant of
/// the harness: the caller allocates the matrix once, so a run adds no
/// per-run heap traffic (provided `f` itself is allocation-free — which
/// the sweep closure is, see `tests/alloc_free.rs`). The
/// schedule-independence contract is unchanged: run `r` draws only from
/// `base.fork(r)`, so the matrix contents are bit-identical for every
/// `threads` value.
///
/// # Panics
///
/// Panics if `threads` or `row_len` is zero, if
/// `out.len() != runs · row_len`, or if `f` panics for some run — the
/// panic is propagated with the offending run index.
pub fn parallel_fill_rows<P, S, I, F>(
    runs: usize,
    row_len: usize,
    threads: usize,
    base: &Prng,
    out: &mut [P],
    init: I,
    f: F,
) where
    P: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, Prng, &mut [P]) + Sync,
{
    let faults = parallel_fill_rows_isolated(
        runs,
        row_len,
        threads,
        base,
        0,
        PanicPolicy::FailFast,
        out,
        init,
        f,
    );
    debug_assert!(faults.is_empty(), "fail-fast never returns faults");
}

/// What the harness does when one Monte Carlo run panics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PanicPolicy {
    /// Propagate the first panic with its run index, aborting the sweep
    /// (the historical behavior, and the default).
    #[default]
    FailFast,
    /// Record the fault and keep sweeping; statistics then cover the
    /// surviving runs only and the faults are reported alongside them.
    Isolate,
}

impl PanicPolicy {
    /// Stable spec key (`[montecarlo] on_panic`).
    pub fn key(self) -> &'static str {
        match self {
            PanicPolicy::FailFast => "fail-fast",
            PanicPolicy::Isolate => "isolate",
        }
    }

    /// Parses a spec key back into a policy.
    pub fn parse(name: &str) -> Option<PanicPolicy> {
        match name {
            "fail-fast" => Some(PanicPolicy::FailFast),
            "isolate" => Some(PanicPolicy::Isolate),
            _ => None,
        }
    }
}

/// One Monte Carlo run that panicked under [`PanicPolicy::Isolate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunFault {
    /// Global run index — the PRNG fork stream id, so the failure can be
    /// replayed in isolation regardless of sharding or thread count.
    pub run: usize,
    /// Rendered panic payload.
    pub message: String,
}

/// [`parallel_fill_rows`] with a global run offset and a panic policy.
///
/// Local run `r` (row `r` of `out`) draws from
/// `base.fork(run_offset + r)` — the stream the same global run would
/// use in an unsharded sweep — so a seed-range shard fills exactly the
/// rows `run_offset .. run_offset + runs` of the full matrix,
/// bit-identically.
///
/// Under [`PanicPolicy::Isolate`] a panicking run is recorded (global
/// index plus rendered payload) instead of aborting; its row keeps
/// whatever the caller prefilled. The returned faults are sorted by run
/// index. The happy path allocates nothing for the fault machinery, so
/// the zero-allocation contract of [`parallel_fill_rows`] is preserved.
///
/// # Panics
///
/// As [`parallel_fill_rows`]; under [`PanicPolicy::FailFast`] a
/// panicking run is propagated with its global index and message.
#[allow(clippy::too_many_arguments)]
pub fn parallel_fill_rows_isolated<P, S, I, F>(
    runs: usize,
    row_len: usize,
    threads: usize,
    base: &Prng,
    run_offset: usize,
    policy: PanicPolicy,
    out: &mut [P],
    init: I,
    f: F,
) -> Vec<RunFault>
where
    P: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, Prng, &mut [P]) + Sync,
{
    assert!(threads > 0, "threads must be positive");
    assert!(row_len > 0, "row_len must be positive");
    assert_eq!(out.len(), runs * row_len, "output matrix size mismatch");
    if runs == 0 {
        return Vec::new();
    }
    let workers = threads.min(runs);
    if workers == 1 {
        let mut faults = Vec::new();
        let mut state = init();
        for (local, row) in out.chunks_mut(row_len).enumerate() {
            let r = run_offset + local;
            match std::panic::catch_unwind(AssertUnwindSafe(|| {
                f(&mut state, r, base.fork(r as u64), row)
            })) {
                Ok(()) => {}
                Err(payload) => {
                    let message = panic_detail(payload.as_ref());
                    match policy {
                        PanicPolicy::FailFast => {
                            panic!("parallel_fill_rows: run {r} panicked: {message}")
                        }
                        PanicPolicy::Isolate => faults.push(RunFault { run: r, message }),
                    }
                }
            }
        }
        return faults;
    }

    // Chunks several times smaller than a fair share keep the queue
    // balancing uneven run times without lock traffic per run. Chunk
    // boundaries stay on whole rows.
    let chunk_rows = (runs / (workers * 4)).max(1);
    let collected: Mutex<Vec<RunFault>> = Mutex::new(Vec::new());
    let abort = AtomicBool::new(false);

    let (tx, rx) = mpsc::channel();
    for (ci, slice) in out.chunks_mut(chunk_rows * row_len).enumerate() {
        tx.send((ci * chunk_rows, slice)).expect("receiver alive");
    }
    drop(tx);
    let queue = Mutex::new(rx);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut state = init();
                loop {
                    if abort.load(Ordering::Relaxed) {
                        break;
                    }
                    let next = queue.lock().unwrap_or_else(|poisoned| poisoned.into_inner()).recv();
                    let Ok((start_row, slice)) = next else { break };
                    for (offset, row) in slice.chunks_mut(row_len).enumerate() {
                        let r = run_offset + start_row + offset;
                        match std::panic::catch_unwind(AssertUnwindSafe(|| {
                            f(&mut state, r, base.fork(r as u64), row)
                        })) {
                            Ok(()) => {}
                            Err(payload) => {
                                let message = panic_detail(payload.as_ref());
                                collected
                                    .lock()
                                    .unwrap_or_else(|poisoned| poisoned.into_inner())
                                    .push(RunFault { run: r, message });
                                if policy == PanicPolicy::FailFast {
                                    abort.store(true, Ordering::Relaxed);
                                    return;
                                }
                            }
                        }
                    }
                }
            });
        }
    });

    drop(queue);

    let mut faults = collected.into_inner().unwrap_or_else(|poisoned| poisoned.into_inner());
    faults.sort_by_key(|f| f.run);
    if policy == PanicPolicy::FailFast {
        if let Some(first) = faults.first() {
            panic!("parallel_fill_rows: run {} panicked: {}", first.run, first.message);
        }
    }
    faults
}

/// Renders a caught panic payload for the rethrown message.
fn panic_detail(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_string())
}

/// One point of an accuracy-vs-NWC sweep: statistics over all runs at a
/// target selection fraction.
#[derive(Debug, Clone, Copy)]
pub struct SweepPoint {
    /// Fraction of weights selected for write-verify.
    pub fraction: f64,
    /// Measured normalized write cycles (mean over runs).
    pub nwc: f64,
    /// Accuracy statistics over the Monte Carlo runs (in percent).
    pub accuracy: Running,
    /// Worst single run's accuracy (percent) — the tail-risk floor the
    /// mean hides.
    pub accuracy_min: f64,
    /// 5th-percentile accuracy over the runs (percent, linear
    /// interpolation between sorted ranks).
    pub accuracy_p05: f64,
}

/// Linear-interpolated quantile of an ascending-sorted sample, `q` in
/// `[0, 1]` (0 gives the minimum, 1 the maximum).
///
/// # Panics
///
/// Panics if `sorted` is empty or `q` is out of range.
pub fn percentile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of an empty sample");
    assert!((0.0..=1.0).contains(&q), "quantile {q} out of range");
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    sorted[lo] + (sorted[hi] - sorted[lo]) * (pos - lo as f64)
}

/// Configuration of an accuracy-vs-NWC sweep.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Selection fractions to evaluate (the paper's NWC grid).
    pub fractions: Vec<f64>,
    /// Monte Carlo runs (paper: 3,000).
    pub runs: usize,
    /// Worker threads.
    pub threads: usize,
    /// Evaluation batch size.
    pub eval_batch: usize,
    /// Base seed.
    pub seed: u64,
    /// Global index of the first run: local run `r` draws from
    /// `base.fork(run_offset + r)`. Non-zero for seed-range shards, which
    /// therefore reproduce exactly the rows `run_offset .. run_offset +
    /// runs` of the unsharded sweep's matrix.
    pub run_offset: usize,
    /// What happens when one Monte Carlo run panics.
    pub on_panic: PanicPolicy,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            fractions: vec![0.0, 0.1, 0.3, 0.5, 0.7, 0.9, 1.0],
            runs: 100,
            threads: num_threads(),
            eval_batch: 256,
            seed: 0,
            run_offset: 0,
            on_panic: PanicPolicy::FailFast,
        }
    }
}

/// Available parallelism, defaulting to 1 when undetectable.
pub fn num_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Sweeps accuracy versus NWC for one selection strategy.
///
/// For deterministic selectors the ranking is computed once (it is a
/// property of the trained model); for stochastic selectors
/// ([`Selector::is_stochastic`], e.g. the random baseline) a fresh
/// ranking is drawn inside each run, exactly as the paper's baseline
/// re-selects randomly each time.
///
/// The legacy [`crate::select::Strategy`] enum implements [`Selector`],
/// so existing call sites pass `&Strategy::Swim` etc.
///
/// Returned accuracies are percentages (0–100) to match the paper's
/// tables.
///
/// # Panics
///
/// Panics if `sensitivities`/`magnitudes` lengths mismatch the model.
pub fn nwc_sweep(
    model: &QuantizedModel,
    selector: &dyn Selector,
    sensitivities: &[f32],
    magnitudes: &[f32],
    eval: &Dataset,
    config: &SweepConfig,
) -> Vec<SweepPoint> {
    nwc_sweep_outcome(model, selector, sensitivities, magnitudes, eval, config).points
}

/// The complete result of one sweep: the aggregated curve, the raw
/// per-run matrix it was aggregated from, and any isolated faults.
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// Aggregated statistics per fraction (what [`nwc_sweep`] returns).
    pub points: Vec<SweepPoint>,
    /// Row-major `runs × fractions` matrix of `(accuracy %, measured
    /// NWC)` exactly as each run produced it — the mergeable form: rows
    /// from different seed-range shards concatenate into the unsharded
    /// matrix. Faulted rows stay `(0.0, 0.0)`.
    pub raw: Vec<(f64, f64)>,
    /// Runs that panicked under [`PanicPolicy::Isolate`] (global
    /// indices, sorted). Empty under fail-fast.
    pub faults: Vec<RunFault>,
}

/// [`nwc_sweep`] returning the raw per-run matrix and isolated faults
/// alongside the aggregated points — the building block for seed-range
/// sharding and `swim merge`.
pub fn nwc_sweep_outcome(
    model: &QuantizedModel,
    selector: &dyn Selector,
    sensitivities: &[f32],
    magnitudes: &[f32],
    eval: &Dataset,
    config: &SweepConfig,
) -> SweepOutcome {
    assert_eq!(sensitivities.len(), model.weight_count(), "sensitivities length mismatch");
    assert_eq!(magnitudes.len(), model.weight_count(), "magnitudes length mismatch");
    for &f in &config.fractions {
        assert!((0.0..=1.0).contains(&f), "fraction {f} out of range");
    }

    if config.fractions.is_empty() {
        return SweepOutcome { points: Vec::new(), raw: Vec::new(), faults: Vec::new() };
    }

    let base = Prng::seed_from_u64(config.seed);
    let denom = model.write_verify_all_cost(&mut base.fork(u64::MAX)) as f64;
    let spans = model.param_spans();
    let inputs = SelectionInputs::with_spans(sensitivities, magnitudes, &spans);
    let fixed_ranking =
        if selector.is_stochastic() { None } else { Some(selector.rank(&inputs, None)) };

    // Each run fills its (accuracy %, measured NWC)-per-fraction row of
    // one preallocated matrix. Workers reuse one EvalScratch (network
    // clone, programming buffers, ranking buffer, activation arena) for
    // their whole share of the runs; every buffer is fully overwritten
    // per run, so the reuse is invisible in the statistics — and a
    // steady-state run performs zero heap allocations (see
    // `tests/alloc_free.rs`).
    let nf = config.fractions.len();
    let mut per_run = vec![(0.0f64, 0.0f64); config.runs * nf];
    let faults = parallel_fill_rows_isolated(
        config.runs,
        nf,
        config.threads,
        &base,
        config.run_offset,
        config.on_panic,
        &mut per_run,
        || EvalScratch::new(model),
        |scratch, _, mut rng, row| {
            let EvalScratch { network, mask, codes, weights, ranking, arena } = scratch;
            let order: &[usize] = match &fixed_ranking {
                Some(r) => r,
                None => {
                    selector.rank_into(&inputs, Some(&mut rng), ranking);
                    ranking
                }
            };
            for (slot, &fraction) in row.iter_mut().zip(&config.fractions) {
                mask_top_fraction_into(order, fraction, mask);
                let summary = model.program_weights_into(Some(&mask[..]), &mut rng, codes, weights);
                network.set_device_weights(weights);
                let acc =
                    network.accuracy_with(eval.images(), eval.labels(), config.eval_batch, arena);
                *slot = (100.0 * acc, summary.verify_pulses as f64 / denom);
            }
        },
    );

    // Local indices of faulted rows, for the aggregation to skip. Empty
    // on the happy path (an empty Vec never allocates, so the alloc_free
    // gate is unaffected); faults arrive sorted by global run index.
    let skip: Vec<usize> = faults.iter().map(|f| f.run - config.run_offset).collect();
    let points = aggregate_sweep_rows(&config.fractions, &per_run, &skip);
    SweepOutcome { points, raw: per_run, faults }
}

/// Aggregates a row-major `runs × fractions` raw matrix into
/// [`SweepPoint`]s, pushing surviving rows in row order — exactly the
/// accumulation the sweep itself performs, so re-aggregating the
/// concatenated raw matrices of a complete shard partition is
/// bit-identical to the unsharded sweep. `skip_rows` lists faulted row
/// indices to leave out, sorted ascending.
pub fn aggregate_sweep_rows(
    fractions: &[f64],
    raw: &[(f64, f64)],
    skip_rows: &[usize],
) -> Vec<SweepPoint> {
    let nf = fractions.len();
    if nf == 0 {
        return Vec::new();
    }
    assert_eq!(raw.len() % nf, 0, "raw matrix is not whole rows");
    let runs = raw.len() / nf;
    // One sort buffer for the tail statistics, allocated once per sweep
    // (never per run — the alloc_free gate requires the allocation-event
    // count to be independent of the run count; `sort_unstable_by` does
    // not allocate).
    let mut sorted = Vec::with_capacity(runs);
    let mut points = Vec::with_capacity(nf);
    for (fi, &fraction) in fractions.iter().enumerate() {
        let mut accuracy = Running::new();
        let mut nwc = Running::new();
        sorted.clear();
        for (ri, run) in raw.chunks_exact(nf).enumerate() {
            if skip_rows.binary_search(&ri).is_ok() {
                continue;
            }
            accuracy.push(run[fi].0);
            nwc.push(run[fi].1);
            sorted.push(run[fi].0);
        }
        sorted.sort_unstable_by(f64::total_cmp);
        let (accuracy_min, accuracy_p05) = if sorted.is_empty() {
            (0.0, 0.0)
        } else {
            (sorted[0], percentile_sorted(&sorted, 0.05))
        };
        points.push(SweepPoint { fraction, nwc: nwc.mean(), accuracy, accuracy_min, accuracy_p05 });
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::select::Strategy;
    use swim_cim::DeviceConfig;
    use swim_nn::layers::{Flatten, Linear, Relu, Sequential};
    use swim_nn::loss::SoftmaxCrossEntropy;
    use swim_nn::Network;
    use swim_tensor::Tensor;

    #[test]
    fn parallel_map_is_schedule_independent() {
        let base = Prng::seed_from_u64(5);
        let serial = parallel_map(16, 1, &base, |r, mut rng| (r, rng.next_u64()));
        let parallel = parallel_map(16, 8, &base, |r, mut rng| (r, rng.next_u64()));
        assert_eq!(serial, parallel);
        // Results arrive in run order.
        for (i, (r, _)) in serial.iter().enumerate() {
            assert_eq!(i, *r);
        }
    }

    #[test]
    fn parallel_map_zero_runs_returns_empty() {
        let base = Prng::seed_from_u64(1);
        let out: Vec<u64> = parallel_map(0, 1, &base, |_, mut rng| rng.next_u64());
        assert!(out.is_empty());
        // Must not spawn a worker (and certainly not panic) when there
        // are more threads than runs.
        let out: Vec<u64> = parallel_map(0, 8, &base, |_, mut rng| rng.next_u64());
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "run 3 panicked: boom at 3")]
    fn parallel_map_propagates_panic_with_run_index() {
        let base = Prng::seed_from_u64(2);
        let _ = parallel_map(8, 4, &base, |r, _| {
            if r == 3 {
                panic!("boom at {r}");
            }
            r
        });
    }

    #[test]
    #[should_panic(expected = "parallel_map: run 5 panicked: worker exploded")]
    fn parallel_map_propagates_panic_serially_too() {
        let base = Prng::seed_from_u64(3);
        let _ = parallel_map(8, 1, &base, |r, _| {
            assert!(r != 5, "worker exploded");
            r
        });
    }

    #[test]
    fn parallel_map_more_threads_than_runs() {
        let base = Prng::seed_from_u64(4);
        let serial: Vec<u64> = parallel_map(3, 1, &base, |_, mut rng| rng.next_u64());
        let wide: Vec<u64> = parallel_map(3, 64, &base, |_, mut rng| rng.next_u64());
        assert_eq!(serial, wide);
    }

    #[test]
    fn parallel_map_with_reuses_worker_state() {
        use std::sync::atomic::AtomicUsize;
        let base = Prng::seed_from_u64(7);
        let inits = AtomicUsize::new(0);
        let out = parallel_map_with(
            32,
            4,
            &base,
            || {
                inits.fetch_add(1, Ordering::Relaxed);
                Vec::<u8>::with_capacity(64)
            },
            |buf, r, _| {
                // State must be fully overwritten by a well-behaved f.
                buf.clear();
                buf.extend_from_slice(&(r as u64).to_le_bytes());
                buf.len()
            },
        );
        assert_eq!(out, vec![8; 32]);
        // One init per worker, not per run.
        assert!(inits.load(Ordering::Relaxed) <= 4, "{} inits", inits.load(Ordering::Relaxed));

        // And the serial path initializes exactly once.
        inits.store(0, Ordering::Relaxed);
        let _ =
            parallel_map_with(5, 1, &base, || inits.fetch_add(1, Ordering::Relaxed), |_, r, _| r);
        assert_eq!(inits.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn parallel_map_distinct_streams() {
        let base = Prng::seed_from_u64(6);
        let outs = parallel_map(8, 4, &base, |_, mut rng| rng.next_u64());
        let mut dedup = outs.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), outs.len());
    }

    fn trained() -> (QuantizedModel, Dataset) {
        let mut rng = Prng::seed_from_u64(40);
        let mut seq = Sequential::new();
        seq.push(Flatten::new());
        seq.push(Linear::new(8, 12, &mut rng));
        seq.push(Relu::new());
        seq.push(Linear::new(12, 2, &mut rng));
        let mut net = Network::new("t", seq);
        let n = 60;
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..n {
            let cls = i % 2;
            let c = if cls == 0 { -1.0f32 } else { 1.0 };
            for _ in 0..8 {
                xs.push(c + rng.normal_f32(0.0, 0.5));
            }
            ys.push(cls);
        }
        let images = Tensor::from_vec(xs, &[n, 1, 2, 4]).unwrap();
        let data = Dataset::new(images, ys, 2).unwrap();
        let cfg = swim_nn::train::TrainConfig {
            epochs: 10,
            batch_size: 16,
            lr: 0.1,
            ..Default::default()
        };
        swim_nn::train::fit(
            &mut net,
            &SoftmaxCrossEntropy::new(),
            data.images(),
            data.labels(),
            &cfg,
        );
        let model = QuantizedModel::new(net, 4, DeviceConfig::rram().with_sigma(0.4));
        (model, data)
    }

    #[test]
    fn sweep_monotone_nwc_and_deterministic() {
        let (mut model, data) = trained();
        let sens = model.sensitivities(&SoftmaxCrossEntropy::new(), &data, 32);
        let mags = model.magnitudes();
        let cfg = SweepConfig {
            fractions: vec![0.0, 0.5, 1.0],
            runs: 8,
            threads: 4,
            eval_batch: 64,
            seed: 7,
            ..Default::default()
        };
        let sweep = nwc_sweep(&model, &Strategy::Swim, &sens, &mags, &data, &cfg);
        assert_eq!(sweep.len(), 3);
        assert!(sweep[0].nwc < 1e-9);
        assert!(sweep[1].nwc > 0.3 && sweep[1].nwc < 0.7);
        assert!((sweep[2].nwc - 1.0).abs() < 0.1);
        // Full verification should be at least as accurate as none.
        assert!(sweep[2].accuracy.mean() >= sweep[0].accuracy.mean() - 2.0);

        let again = nwc_sweep(&model, &Strategy::Swim, &sens, &mags, &data, &cfg);
        assert_eq!(sweep[1].accuracy.mean(), again[1].accuracy.mean());
    }

    /// The acceptance contract for per-worker scratch reuse: every
    /// statistic of the sweep is bit-identical for every thread count
    /// (workers reuse networks/buffers across different run subsets, so
    /// any state leak between runs would break this).
    #[test]
    fn sweep_bit_identical_across_thread_counts() {
        let (mut model, data) = trained();
        let sens = model.sensitivities(&SoftmaxCrossEntropy::new(), &data, 32);
        let mags = model.magnitudes();
        for strategy in [Strategy::Swim, Strategy::Random] {
            let mut curves = Vec::new();
            for threads in [1usize, 4] {
                let cfg = SweepConfig {
                    fractions: vec![0.0, 0.3, 1.0],
                    runs: 9,
                    threads,
                    eval_batch: 32,
                    seed: 11,
                    ..Default::default()
                };
                curves.push(nwc_sweep(&model, &strategy, &sens, &mags, &data, &cfg));
            }
            for (a, b) in curves[0].iter().zip(&curves[1]) {
                assert_eq!(a.accuracy.mean(), b.accuracy.mean(), "{strategy:?}");
                assert_eq!(a.accuracy.std(), b.accuracy.std(), "{strategy:?}");
                assert_eq!(a.nwc, b.nwc, "{strategy:?}");
            }
        }
    }

    /// The arena-backed, buffer-reusing sweep must be bit-identical to a
    /// naive clone-per-run harness built only from the original
    /// allocating APIs (`program_network` + fresh-path `accuracy`) —
    /// this pins the whole allocation-free refactor to the pre-arena
    /// semantics.
    #[test]
    fn sweep_matches_naive_reference_harness() {
        let (mut model, data) = trained();
        let sens = model.sensitivities(&SoftmaxCrossEntropy::new(), &data, 32);
        let mags = model.magnitudes();
        let cfg = SweepConfig {
            fractions: vec![0.0, 0.4, 1.0],
            runs: 6,
            threads: 2,
            eval_batch: 32,
            seed: 13,
            ..Default::default()
        };
        let sweep = nwc_sweep(&model, &Strategy::Swim, &sens, &mags, &data, &cfg);

        let base = Prng::seed_from_u64(cfg.seed);
        let denom = model.write_verify_all_cost(&mut base.fork(u64::MAX)) as f64;
        let spans = model.param_spans();
        let inputs = crate::select::SelectionInputs::with_spans(&sens, &mags, &spans);
        let ranking = Strategy::Swim.rank(&inputs, None);
        let mut per_run: Vec<Vec<(f64, f64)>> = Vec::new();
        for r in 0..cfg.runs {
            let mut rng = base.fork(r as u64);
            let mut row = Vec::new();
            for &fraction in &cfg.fractions {
                let mask = crate::select::mask_top_fraction(&ranking, fraction);
                let (mut network, summary) = model.program_network(Some(&mask), &mut rng);
                let acc = network.accuracy(data.images(), data.labels(), cfg.eval_batch);
                row.push((100.0 * acc, summary.verify_pulses as f64 / denom));
            }
            per_run.push(row);
        }
        for (fi, point) in sweep.iter().enumerate() {
            let mut accuracy = Running::new();
            let mut nwc = Running::new();
            for run in &per_run {
                accuracy.push(run[fi].0);
                nwc.push(run[fi].1);
            }
            assert_eq!(point.accuracy.mean(), accuracy.mean(), "fraction {}", point.fraction);
            assert_eq!(point.accuracy.std(), accuracy.std(), "fraction {}", point.fraction);
            assert_eq!(point.nwc, nwc.mean(), "fraction {}", point.fraction);
            // Tail statistics agree with a by-hand sort of the raw runs.
            let mut accs: Vec<f64> = per_run.iter().map(|run| run[fi].0).collect();
            accs.sort_unstable_by(f64::total_cmp);
            assert_eq!(point.accuracy_min, accs[0], "fraction {}", point.fraction);
            assert_eq!(
                point.accuracy_p05,
                percentile_sorted(&accs, 0.05),
                "fraction {}",
                point.fraction
            );
        }
    }

    #[test]
    fn percentile_interpolates_between_sorted_ranks() {
        let s = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile_sorted(&s, 0.0), 1.0);
        assert_eq!(percentile_sorted(&s, 1.0), 5.0);
        assert_eq!(percentile_sorted(&s, 0.5), 3.0);
        assert!((percentile_sorted(&s, 0.05) - 1.2).abs() < 1e-12);
        assert_eq!(percentile_sorted(&[7.0], 0.05), 7.0);
    }

    #[test]
    fn sweep_tail_stats_bound_the_mean() {
        let (mut model, data) = trained();
        let sens = model.sensitivities(&SoftmaxCrossEntropy::new(), &data, 32);
        let mags = model.magnitudes();
        let cfg = SweepConfig {
            fractions: vec![0.0, 0.5, 1.0],
            runs: 10,
            threads: 2,
            eval_batch: 64,
            seed: 17,
            ..Default::default()
        };
        for point in nwc_sweep(&model, &Strategy::Swim, &sens, &mags, &data, &cfg) {
            assert!(point.accuracy_min <= point.accuracy_p05 + 1e-12, "{point:?}");
            assert!(point.accuracy_p05 <= point.accuracy.mean() + 1e-9, "{point:?}");
            assert!(point.accuracy_min >= 0.0 && point.accuracy_p05 <= 100.0, "{point:?}");
        }
    }

    #[test]
    fn parallel_fill_rows_matches_parallel_map() {
        let base = Prng::seed_from_u64(21);
        let mapped: Vec<[u64; 2]> =
            parallel_map(10, 4, &base, |r, mut rng| [r as u64, rng.next_u64()]);
        let mut filled = vec![0u64; 20];
        parallel_fill_rows(
            10,
            2,
            4,
            &base,
            &mut filled,
            || (),
            |(), r, mut rng, row| {
                row[0] = r as u64;
                row[1] = rng.next_u64();
            },
        );
        for (r, row) in mapped.iter().enumerate() {
            assert_eq!(&filled[2 * r..2 * r + 2], &row[..]);
        }
        // And the serial path agrees with the threaded one.
        let mut serial = vec![0u64; 20];
        parallel_fill_rows(
            10,
            2,
            1,
            &base,
            &mut serial,
            || (),
            |(), r, mut rng, row| {
                row[0] = r as u64;
                row[1] = rng.next_u64();
            },
        );
        assert_eq!(serial, filled);
    }

    #[test]
    #[should_panic(expected = "parallel_fill_rows: run 4 panicked: fill boom")]
    fn parallel_fill_rows_propagates_panic() {
        let base = Prng::seed_from_u64(22);
        let mut out = vec![0u8; 8];
        parallel_fill_rows(
            8,
            1,
            4,
            &base,
            &mut out,
            || (),
            |(), r, _, _| {
                assert!(r != 4, "fill boom");
            },
        );
    }

    /// A seed-range shard fills exactly the matching rows of the full
    /// matrix, and re-aggregating the concatenated shard matrices is
    /// bit-identical to the unsharded sweep — the `swim merge` contract
    /// at the core level.
    #[test]
    fn sharded_outcome_concatenates_to_the_unsharded_sweep() {
        let (mut model, data) = trained();
        let sens = model.sensitivities(&SoftmaxCrossEntropy::new(), &data, 32);
        let mags = model.magnitudes();
        let full_cfg = SweepConfig {
            fractions: vec![0.0, 0.5, 1.0],
            runs: 7,
            threads: 2,
            eval_batch: 64,
            seed: 23,
            ..Default::default()
        };
        for strategy in [Strategy::Swim, Strategy::Random] {
            let full = nwc_sweep_outcome(&model, &strategy, &sens, &mags, &data, &full_cfg);
            assert_eq!(full.raw.len(), 7 * 3);
            assert!(full.faults.is_empty());

            let mut merged_raw = Vec::new();
            for (run_offset, runs) in [(0usize, 3usize), (3, 4)] {
                let cfg = SweepConfig { runs, run_offset, ..full_cfg.clone() };
                let shard = nwc_sweep_outcome(&model, &strategy, &sens, &mags, &data, &cfg);
                assert_eq!(shard.raw.len(), runs * 3);
                merged_raw.extend_from_slice(&shard.raw);
            }
            assert_eq!(merged_raw, full.raw, "{strategy:?}");

            let merged = aggregate_sweep_rows(&full_cfg.fractions, &merged_raw, &[]);
            for (a, b) in merged.iter().zip(&full.points) {
                assert_eq!(a.accuracy.mean(), b.accuracy.mean(), "{strategy:?}");
                assert_eq!(a.accuracy.std(), b.accuracy.std(), "{strategy:?}");
                assert_eq!(a.nwc, b.nwc, "{strategy:?}");
                assert_eq!(a.accuracy_min, b.accuracy_min, "{strategy:?}");
                assert_eq!(a.accuracy_p05, b.accuracy_p05, "{strategy:?}");
            }
        }
    }

    #[test]
    fn fill_rows_offset_reproduces_the_matching_rows() {
        let base = Prng::seed_from_u64(31);
        let fill = |runs: usize, offset: usize| {
            let mut out = vec![0u64; runs * 2];
            let faults = parallel_fill_rows_isolated(
                runs,
                2,
                3,
                &base,
                offset,
                PanicPolicy::FailFast,
                &mut out,
                || (),
                |(), r, mut rng, row| {
                    row[0] = r as u64;
                    row[1] = rng.next_u64();
                },
            );
            assert!(faults.is_empty());
            out
        };
        let full = fill(10, 0);
        let shard = fill(4, 3);
        assert_eq!(&shard[..], &full[6..14]);
    }

    #[test]
    fn isolate_records_faults_and_fills_surviving_rows() {
        let base = Prng::seed_from_u64(32);
        for threads in [1usize, 4] {
            let mut out = vec![0.0f64; 8];
            let faults = parallel_fill_rows_isolated(
                8,
                1,
                threads,
                &base,
                10,
                PanicPolicy::Isolate,
                &mut out,
                || (),
                |(), r, _, row| {
                    if r == 12 || r == 15 {
                        panic!("poisoned run {r}");
                    }
                    row[0] = r as f64;
                },
            );
            assert_eq!(
                faults,
                vec![
                    RunFault { run: 12, message: "poisoned run 12".to_string() },
                    RunFault { run: 15, message: "poisoned run 15".to_string() },
                ],
                "threads = {threads}"
            );
            for (local, &value) in out.iter().enumerate() {
                let global = 10 + local;
                if global == 12 || global == 15 {
                    assert_eq!(value, 0.0, "faulted row must keep the prefill");
                } else {
                    assert_eq!(value, global as f64, "threads = {threads}");
                }
            }
        }
    }

    #[test]
    fn aggregate_skips_faulted_rows() {
        let fractions = [0.0, 1.0];
        // Three runs of two fractions; run 1 is faulted and contributes
        // nothing.
        let raw = vec![(10.0, 0.0), (20.0, 1.0), (0.0, 0.0), (0.0, 0.0), (30.0, 0.0), (40.0, 1.0)];
        let points = aggregate_sweep_rows(&fractions, &raw, &[1]);
        let mut expect = Running::new();
        expect.push(10.0);
        expect.push(30.0);
        assert_eq!(points[0].accuracy.mean(), expect.mean());
        assert_eq!(points[0].accuracy.std(), expect.std());
        assert_eq!(points[0].accuracy.count(), 2);
        assert_eq!(points[0].accuracy_min, 10.0);
        assert_eq!(points[1].accuracy_min, 20.0);
        assert_eq!(points[1].nwc, 1.0);
    }

    #[test]
    fn panic_policy_keys_round_trip() {
        for policy in [PanicPolicy::FailFast, PanicPolicy::Isolate] {
            assert_eq!(PanicPolicy::parse(policy.key()), Some(policy));
        }
        assert_eq!(PanicPolicy::parse("explode"), None);
        assert_eq!(PanicPolicy::default(), PanicPolicy::FailFast);
    }

    #[test]
    fn random_strategy_varies_across_runs_but_not_seeds() {
        let (mut model, data) = trained();
        let sens = model.sensitivities(&SoftmaxCrossEntropy::new(), &data, 32);
        let mags = model.magnitudes();
        let cfg = SweepConfig {
            fractions: vec![0.5],
            runs: 6,
            threads: 2,
            eval_batch: 64,
            seed: 8,
            ..Default::default()
        };
        let a = nwc_sweep(&model, &Strategy::Random, &sens, &mags, &data, &cfg);
        let b = nwc_sweep(&model, &Strategy::Random, &sens, &mags, &data, &cfg);
        assert_eq!(a[0].accuracy.mean(), b[0].accuracy.mean());
        assert!(a[0].accuracy.std() >= 0.0);
    }
}
