//! A persistent shared worker pool and a cooperative cancellation
//! token — the execution substrate of the experiment service.
//!
//! The one-shot CLI spins up scoped threads per sweep
//! ([`crate::montecarlo::parallel_map`]); a long-running service cannot
//! afford a thread spawn-and-join cycle per request, and wants the
//! blocks of *many* concurrent jobs multiplexed over one fixed set of
//! workers. [`WorkerPool`] is that set: `n` named threads draining one
//! shared FIFO of boxed tasks. Tasks are `'static` closures; callers
//! share state with them through `Arc`.
//!
//! A panicking task is contained: the worker catches the unwind,
//! reports it on stderr, and keeps draining the queue, so one poisoned
//! job cannot take the service down (the same isolation stance as
//! `on_panic = "isolate"` in the Monte Carlo harness).
//!
//! [`CancelToken`] is the cooperative half: cheap to clone, checked by
//! long-running work at natural boundaries (the service checks it
//! between `(model, sigma)` blocks — the same seams the checkpoint
//! journal uses).
//!
//! # Example
//!
//! ```
//! use std::sync::atomic::{AtomicUsize, Ordering};
//! use std::sync::Arc;
//! use swim_core::pool::WorkerPool;
//!
//! let pool = WorkerPool::new(2);
//! let done = Arc::new(AtomicUsize::new(0));
//! for _ in 0..8 {
//!     let done = Arc::clone(&done);
//!     pool.spawn(move || {
//!         done.fetch_add(1, Ordering::SeqCst);
//!     });
//! }
//! drop(pool); // joins the workers; all queued tasks have run
//! assert_eq!(done.load(Ordering::SeqCst), 8);
//! ```

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// A queued unit of work.
type Task = Box<dyn FnOnce() + Send + 'static>;

/// A fixed set of persistent worker threads draining one shared FIFO.
///
/// Dropping the pool closes the queue and joins every worker, so all
/// tasks spawned before the drop are guaranteed to have finished (or
/// panicked in isolation) when `drop` returns.
pub struct WorkerPool {
    sender: Option<Sender<Task>>,
    workers: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `workers` threads (at least one) named `swim-worker-{i}`.
    pub fn new(workers: usize) -> WorkerPool {
        let workers = workers.max(1);
        let (sender, receiver) = channel::<Task>();
        let receiver = Arc::new(Mutex::new(receiver));
        let handles = (0..workers)
            .map(|i| {
                let receiver = Arc::clone(&receiver);
                std::thread::Builder::new()
                    .name(format!("swim-worker-{i}"))
                    .spawn(move || worker_loop(&receiver))
                    .expect("spawn worker thread")
            })
            .collect();
        WorkerPool { sender: Some(sender), workers: handles }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Enqueues a task. Tasks run in FIFO order per worker pick-up;
    /// there is no priority or stealing — fairness comes from blocks
    /// being comparably sized.
    pub fn spawn(&self, task: impl FnOnce() + Send + 'static) {
        self.sender
            .as_ref()
            .expect("pool sender lives until drop")
            .send(Box::new(task))
            .expect("workers live until the sender is dropped");
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the channel lets each worker drain the queue and exit.
        drop(self.sender.take());
        for handle in self.workers.drain(..) {
            // A worker never panics itself (tasks unwind inside
            // catch_unwind), so join only fails if the thread was
            // externally killed; nothing useful to do then.
            let _ = handle.join();
        }
    }
}

/// One worker: pull tasks until the queue closes, containing panics.
fn worker_loop(receiver: &Mutex<Receiver<Task>>) {
    loop {
        // Hold the lock only while receiving, never while running.
        let task = match receiver.lock() {
            Ok(rx) => rx.recv(),
            Err(_) => return, // a poisoned lock means a peer died mid-recv
        };
        match task {
            Ok(task) => {
                if catch_unwind(AssertUnwindSafe(task)).is_err() {
                    eprintln!(
                        "[pool] task panicked on {}; worker continues",
                        std::thread::current().name().unwrap_or("worker")
                    );
                }
            }
            Err(_) => return, // queue closed: pool is shutting down
        }
    }
}

/// A cooperative cancellation flag shared between a controller and the
/// work it may want to stop.
///
/// Cancellation is one-way and sticky: once [`CancelToken::cancel`] has
/// been called every clone observes [`CancelToken::is_cancelled`] as
/// `true` forever. Work is expected to poll at its natural boundaries;
/// nothing is interrupted pre-emptively.
///
/// # Example
///
/// ```
/// use swim_core::pool::CancelToken;
///
/// let token = CancelToken::new();
/// let observer = token.clone();
/// assert!(!observer.is_cancelled());
/// token.cancel();
/// assert!(observer.is_cancelled());
/// ```
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Flips the token; idempotent.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    /// Whether [`CancelToken::cancel`] has been called on any clone.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::mpsc;

    #[test]
    fn runs_all_tasks_across_workers() {
        let pool = WorkerPool::new(4);
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..64 {
            let done = Arc::clone(&done);
            pool.spawn(move || {
                done.fetch_add(1, Ordering::SeqCst);
            });
        }
        drop(pool);
        assert_eq!(done.load(Ordering::SeqCst), 64);
    }

    #[test]
    fn zero_workers_rounds_up_to_one() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.workers(), 1);
        let (tx, rx) = mpsc::channel();
        pool.spawn(move || tx.send(7usize).unwrap());
        assert_eq!(rx.recv().unwrap(), 7);
    }

    #[test]
    fn panicking_task_does_not_kill_the_worker() {
        let pool = WorkerPool::new(1);
        let done = Arc::new(AtomicUsize::new(0));
        pool.spawn(|| panic!("task boom"));
        let after = Arc::clone(&done);
        pool.spawn(move || {
            after.fetch_add(1, Ordering::SeqCst);
        });
        drop(pool);
        assert_eq!(done.load(Ordering::SeqCst), 1, "worker must survive the panic");
    }

    #[test]
    fn tasks_spawned_from_tasks_complete_before_drop() {
        let pool = Arc::new(WorkerPool::new(2));
        let done = Arc::new(AtomicUsize::new(0));
        let (tx, rx) = mpsc::channel();
        {
            let done = Arc::clone(&done);
            let tx = tx.clone();
            pool.spawn(move || {
                done.fetch_add(1, Ordering::SeqCst);
                tx.send(()).unwrap();
            });
        }
        rx.recv().unwrap();
        assert_eq!(done.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn cancel_token_is_sticky_and_shared() {
        let token = CancelToken::new();
        let clone = token.clone();
        assert!(!clone.is_cancelled());
        token.cancel();
        token.cancel(); // idempotent
        assert!(clone.is_cancelled());
        assert!(token.is_cancelled());
    }
}
