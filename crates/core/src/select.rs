//! Weight-selection strategies for selective write-verify.
//!
//! The extension point is the [`Selector`] trait: a selector turns the
//! per-weight statistics in [`SelectionInputs`] into a
//! most-important-first ranking of flat weight indices. The paper's
//! method and its baselines are provided as unit structs
//! ([`SwimSelector`], [`MagnitudeSelector`], [`RandomSelector`]) along
//! with two variants the trait unlocks ([`SwimNoTieBreakSelector`],
//! [`LayerBalancedSelector`]); [`registry`] lists every built-in and
//! [`selector_by_name`] resolves the names used by experiment specs and
//! the `swim` CLI.
//!
//! The original closed [`Strategy`] enum is kept as a thin compatibility
//! shim over the trait for existing call sites.

use std::cmp::Ordering;
use swim_tensor::Prng;

/// Per-weight statistics a [`Selector`] may consult.
///
/// All slices are parallel over the model's flat device-weight order.
/// `spans` describes the parameter-tensor boundaries as `(offset, len)`
/// pairs (one per device-weight tensor, in mapping order); selectors
/// that do not reason about layers may ignore it, and it may be empty
/// when the caller has no layer structure to offer.
#[derive(Debug, Clone, Copy)]
pub struct SelectionInputs<'a> {
    /// Second-derivative sensitivity per weight (paper Eq. 5).
    pub sensitivities: &'a [f32],
    /// Absolute weight value per weight.
    pub magnitudes: &'a [f32],
    /// Parameter-tensor spans as `(offset, len)`; may be empty.
    pub spans: &'a [(usize, usize)],
}

impl<'a> SelectionInputs<'a> {
    /// Builds inputs without layer structure.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn new(sensitivities: &'a [f32], magnitudes: &'a [f32]) -> Self {
        Self::with_spans(sensitivities, magnitudes, &[])
    }

    /// Builds inputs with parameter-tensor spans.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths or the spans do not
    /// tile `0..len` contiguously (unless empty).
    pub fn with_spans(
        sensitivities: &'a [f32],
        magnitudes: &'a [f32],
        spans: &'a [(usize, usize)],
    ) -> Self {
        assert_eq!(
            sensitivities.len(),
            magnitudes.len(),
            "sensitivity and magnitude vectors must be parallel"
        );
        let mut expect = 0usize;
        for &(offset, len) in spans {
            assert_eq!(offset, expect, "spans must tile the weight range contiguously");
            expect += len;
        }
        if !spans.is_empty() {
            assert_eq!(expect, sensitivities.len(), "spans must cover every weight");
        }
        SelectionInputs { sensitivities, magnitudes, spans }
    }

    /// Number of weights.
    pub fn len(&self) -> usize {
        self.sensitivities.len()
    }

    /// Whether there are no weights.
    pub fn is_empty(&self) -> bool {
        self.sensitivities.is_empty()
    }
}

/// A pluggable weight-selection strategy.
///
/// Implementations must be deterministic functions of
/// (`inputs`, `rng`): the Monte Carlo harness relies on re-ranking with
/// an equally-seeded RNG producing the identical order.
pub trait Selector: Send + Sync {
    /// Display name used in tables and results documents.
    fn name(&self) -> &str;

    /// Registry key: lowercase, hyphenated, stable (used by specs and
    /// the CLI). Defaults to the lowercased display name.
    fn key(&self) -> String {
        self.name().to_lowercase()
    }

    /// One-line description for `swim list`.
    fn describe(&self) -> &str {
        ""
    }

    /// Whether the ranking must be re-drawn per Monte Carlo run (true
    /// for randomized selectors). Deterministic selectors are ranked
    /// once per sweep.
    fn is_stochastic(&self) -> bool {
        false
    }

    /// Builds the most-important-first ranking of flat weight indices.
    ///
    /// `rng` is `Some` for stochastic selectors inside Monte Carlo runs;
    /// deterministic selectors are called with `None`.
    ///
    /// # Panics
    ///
    /// May panic if the selector requires an RNG and none is given.
    fn rank(&self, inputs: &SelectionInputs, rng: Option<&mut Prng>) -> Vec<usize>;

    /// [`Selector::rank`] into a caller-owned buffer (cleared and
    /// refilled), so stochastic selectors can re-rank inside every Monte
    /// Carlo run without allocating.
    ///
    /// The default delegates to `rank` (one allocation per call);
    /// selectors on the hot path override it. The produced order must be
    /// identical to `rank`'s.
    fn rank_into(&self, inputs: &SelectionInputs, rng: Option<&mut Prng>, out: &mut Vec<usize>) {
        out.clear();
        out.extend_from_slice(&self.rank(inputs, rng));
    }
}

/// Descending order by `key`, ties broken descending by `tie`.
fn sort_desc_with_tie(idx: &mut [usize], key: &[f32], tie: &[f32]) {
    idx.sort_by(|&a, &b| match key[b].partial_cmp(&key[a]).unwrap_or(Ordering::Equal) {
        Ordering::Equal => tie[b].partial_cmp(&tie[a]).unwrap_or(Ordering::Equal),
        other => other,
    });
}

/// SWIM (paper §3.2): descending second derivative, magnitude tie-break.
#[derive(Debug, Clone, Copy, Default)]
pub struct SwimSelector;

impl Selector for SwimSelector {
    fn name(&self) -> &str {
        "SWIM"
    }

    fn describe(&self) -> &str {
        "second-derivative ranking with |w| tie-break (paper §3.2)"
    }

    fn rank(&self, inputs: &SelectionInputs, _rng: Option<&mut Prng>) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..inputs.len()).collect();
        sort_desc_with_tie(&mut idx, inputs.sensitivities, inputs.magnitudes);
        idx
    }
}

/// Baseline: descending absolute weight value.
#[derive(Debug, Clone, Copy, Default)]
pub struct MagnitudeSelector;

impl Selector for MagnitudeSelector {
    fn name(&self) -> &str {
        "Magnitude"
    }

    fn describe(&self) -> &str {
        "descending |w| baseline"
    }

    fn rank(&self, inputs: &SelectionInputs, _rng: Option<&mut Prng>) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..inputs.len()).collect();
        idx.sort_by(|&a, &b| {
            inputs.magnitudes[b].partial_cmp(&inputs.magnitudes[a]).unwrap_or(Ordering::Equal)
        });
        idx
    }
}

/// Baseline: uniformly random order, fresh per Monte Carlo run.
#[derive(Debug, Clone, Copy, Default)]
pub struct RandomSelector;

impl Selector for RandomSelector {
    fn name(&self) -> &str {
        "Random"
    }

    fn describe(&self) -> &str {
        "uniformly random order, re-drawn per Monte Carlo run"
    }

    fn is_stochastic(&self) -> bool {
        true
    }

    fn rank(&self, inputs: &SelectionInputs, rng: Option<&mut Prng>) -> Vec<usize> {
        let mut idx = Vec::new();
        self.rank_into(inputs, rng, &mut idx);
        idx
    }

    fn rank_into(&self, inputs: &SelectionInputs, rng: Option<&mut Prng>, out: &mut Vec<usize>) {
        let rng = rng.expect("Random selector requires an RNG");
        out.clear();
        out.extend(0..inputs.len());
        rng.shuffle(out);
    }
}

/// SWIM without the magnitude tie-break: pure second-derivative order,
/// ties left in index order (the ablation the paper motivates in §3.2).
#[derive(Debug, Clone, Copy, Default)]
pub struct SwimNoTieBreakSelector;

impl Selector for SwimNoTieBreakSelector {
    fn name(&self) -> &str {
        "SWIM (no tie-break)"
    }

    fn key(&self) -> String {
        "swim-no-tiebreak".into()
    }

    fn describe(&self) -> &str {
        "second-derivative ranking only; ties stay in index order"
    }

    fn rank(&self, inputs: &SelectionInputs, _rng: Option<&mut Prng>) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..inputs.len()).collect();
        // Stable sort: equal sensitivities keep ascending index order.
        idx.sort_by(|&a, &b| {
            inputs.sensitivities[b].partial_cmp(&inputs.sensitivities[a]).unwrap_or(Ordering::Equal)
        });
        idx
    }
}

/// Layer-balanced SWIM: every parameter tensor contributes to the
/// verified set in proportion to its size.
///
/// Weights are ranked within their own tensor by the SWIM criterion and
/// then merged by within-layer rank *fraction*, so the top `f` of the
/// global ranking contains (approximately) the top `f` of every layer.
/// This guards small but critical tensors (a first conv, a final
/// classifier) from being crowded out by one large layer's sensitivity
/// scale. Without span information it degenerates to plain SWIM.
#[derive(Debug, Clone, Copy, Default)]
pub struct LayerBalancedSelector;

impl Selector for LayerBalancedSelector {
    fn name(&self) -> &str {
        "LayerBalanced"
    }

    fn key(&self) -> String {
        "layer-balanced".into()
    }

    fn describe(&self) -> &str {
        "per-layer SWIM ranking merged proportionally across layers"
    }

    fn rank(&self, inputs: &SelectionInputs, rng: Option<&mut Prng>) -> Vec<usize> {
        if inputs.spans.is_empty() {
            return SwimSelector.rank(inputs, rng);
        }
        // Within-layer rank fraction per weight: position / layer length.
        let mut frac = vec![0.0f64; inputs.len()];
        let mut scratch: Vec<usize> = Vec::new();
        for &(offset, len) in inputs.spans {
            scratch.clear();
            scratch.extend(offset..offset + len);
            sort_desc_with_tie(&mut scratch, inputs.sensitivities, inputs.magnitudes);
            for (pos, &w) in scratch.iter().enumerate() {
                frac[w] = (pos as f64 + 0.5) / len as f64;
            }
        }
        let mut idx: Vec<usize> = (0..inputs.len()).collect();
        idx.sort_by(|&a, &b| match frac[a].partial_cmp(&frac[b]).unwrap_or(Ordering::Equal) {
            Ordering::Equal => inputs.sensitivities[b]
                .partial_cmp(&inputs.sensitivities[a])
                .unwrap_or(Ordering::Equal),
            other => other,
        });
        idx
    }
}

/// Every built-in selector, in presentation order (the paper's trio
/// first, then the variants the trait unlocks).
pub fn registry() -> Vec<Box<dyn Selector>> {
    vec![
        Box::new(SwimSelector),
        Box::new(MagnitudeSelector),
        Box::new(RandomSelector),
        Box::new(SwimNoTieBreakSelector),
        Box::new(LayerBalancedSelector),
    ]
}

/// The paper's three-method comparison set, in Table 1 row order.
pub fn default_selectors() -> Vec<Box<dyn Selector>> {
    vec![Box::new(SwimSelector), Box::new(MagnitudeSelector), Box::new(RandomSelector)]
}

/// Resolves a selector by registry key or display name
/// (case-insensitive). Returns `None` for unknown names.
///
/// # Example
///
/// ```
/// use swim_core::select::selector_by_name;
///
/// assert_eq!(selector_by_name("swim").unwrap().name(), "SWIM");
/// assert_eq!(selector_by_name("Random").unwrap().name(), "Random");
/// assert!(selector_by_name("gradient-descent").is_none());
/// ```
pub fn selector_by_name(name: &str) -> Option<Box<dyn Selector>> {
    let want = name.to_lowercase();
    registry().into_iter().find(|s| s.key() == want || s.name().to_lowercase() == want)
}

/// Which metric orders the weights for write-verify (paper §4.2).
///
/// Compatibility shim over the [`Selector`] trait: each variant maps to
/// the corresponding built-in selector, and [`build_ranking`] delegates
/// to [`Selector::rank`]. New code (and anything configurable by name)
/// should use the trait and [`registry`] directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// SWIM: descending second derivative, magnitude tie-break (§3.2).
    Swim,
    /// Baseline: descending absolute weight value.
    Magnitude,
    /// Baseline: uniformly random order (fresh per Monte Carlo run).
    Random,
}

impl Strategy {
    /// All strategies, in the paper's presentation order.
    pub fn all() -> [Strategy; 3] {
        [Strategy::Swim, Strategy::Magnitude, Strategy::Random]
    }

    /// Display name used in tables.
    pub fn name(&self) -> &'static str {
        match self {
            Strategy::Swim => "SWIM",
            Strategy::Magnitude => "Magnitude",
            Strategy::Random => "Random",
        }
    }

    /// The equivalent trait object.
    pub fn selector(&self) -> Box<dyn Selector> {
        match self {
            Strategy::Swim => Box::new(SwimSelector),
            Strategy::Magnitude => Box::new(MagnitudeSelector),
            Strategy::Random => Box::new(RandomSelector),
        }
    }
}

impl Selector for Strategy {
    fn name(&self) -> &str {
        Strategy::name(self)
    }

    fn is_stochastic(&self) -> bool {
        matches!(self, Strategy::Random)
    }

    fn rank(&self, inputs: &SelectionInputs, rng: Option<&mut Prng>) -> Vec<usize> {
        match self {
            Strategy::Swim => SwimSelector.rank(inputs, rng),
            Strategy::Magnitude => MagnitudeSelector.rank(inputs, rng),
            Strategy::Random => RandomSelector.rank(inputs, rng),
        }
    }

    fn rank_into(&self, inputs: &SelectionInputs, rng: Option<&mut Prng>, out: &mut Vec<usize>) {
        match self {
            Strategy::Swim => SwimSelector.rank_into(inputs, rng, out),
            Strategy::Magnitude => MagnitudeSelector.rank_into(inputs, rng, out),
            Strategy::Random => RandomSelector.rank_into(inputs, rng, out),
        }
    }
}

/// Builds a ranking (most-important-first weight indices) for a strategy.
///
/// Compatibility wrapper over [`Selector::rank`]:
///
/// * `Swim` sorts by `sensitivities` descending, breaking ties by
///   `magnitudes` descending ("when two weights have the same second
///   derivative, we use their magnitudes as the tie-breaker", §3.2);
/// * `Magnitude` sorts by `magnitudes` descending;
/// * `Random` shuffles uniformly — it requires `rng` and panics without
///   one.
///
/// # Panics
///
/// Panics if the slices have different lengths, or `Random` is requested
/// without an RNG.
///
/// # Example
///
/// ```
/// use swim_core::select::{build_ranking, Strategy};
///
/// let sens = vec![0.1, 0.9, 0.1];
/// let mags = vec![0.5, 0.1, 0.8];
/// let r = build_ranking(Strategy::Swim, &sens, &mags, None);
/// assert_eq!(r, vec![1, 2, 0]); // highest sensitivity, then |w| tie-break
/// ```
pub fn build_ranking(
    strategy: Strategy,
    sensitivities: &[f32],
    magnitudes: &[f32],
    rng: Option<&mut Prng>,
) -> Vec<usize> {
    strategy.rank(&SelectionInputs::new(sensitivities, magnitudes), rng)
}

/// Converts the top `fraction` of a ranking into a boolean selection
/// mask over flat weight indices.
///
/// # Panics
///
/// Panics if `fraction` is outside `[0, 1]`.
///
/// # Example
///
/// ```
/// use swim_core::select::mask_top_fraction;
///
/// let ranking = vec![2, 0, 1];
/// let mask = mask_top_fraction(&ranking, 1.0 / 3.0);
/// assert_eq!(mask, vec![false, false, true]);
/// ```
pub fn mask_top_fraction(ranking: &[usize], fraction: f64) -> Vec<bool> {
    let mut mask = Vec::new();
    mask_top_fraction_into(ranking, fraction, &mut mask);
    mask
}

/// [`mask_top_fraction`] into a caller-owned buffer (cleared and
/// refilled; capacity reused). The Monte Carlo harness calls this once
/// per (run, fraction) with a per-worker buffer.
///
/// # Panics
///
/// Panics if `fraction` is outside `[0, 1]`.
pub fn mask_top_fraction_into(ranking: &[usize], fraction: f64, mask: &mut Vec<bool>) {
    assert!((0.0..=1.0).contains(&fraction), "fraction must be in [0, 1]");
    let k = (ranking.len() as f64 * fraction).round() as usize;
    mask_top_k_into(ranking, k, mask);
}

/// Converts the top `k` entries of a ranking into a selection mask.
///
/// # Panics
///
/// Panics if `k > ranking.len()`.
pub fn mask_top_k(ranking: &[usize], k: usize) -> Vec<bool> {
    let mut mask = Vec::new();
    mask_top_k_into(ranking, k, &mut mask);
    mask
}

/// [`mask_top_k`] into a caller-owned buffer.
///
/// # Panics
///
/// Panics if `k > ranking.len()`.
pub fn mask_top_k_into(ranking: &[usize], k: usize, mask: &mut Vec<bool>) {
    assert!(k <= ranking.len(), "k {k} exceeds ranking length {}", ranking.len());
    mask.clear();
    mask.resize(ranking.len(), false);
    for &i in &ranking[..k] {
        mask[i] = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn swim_sorts_by_sensitivity() {
        let sens = vec![0.5, 2.0, 1.0];
        let mags = vec![1.0, 1.0, 1.0];
        assert_eq!(build_ranking(Strategy::Swim, &sens, &mags, None), vec![1, 2, 0]);
    }

    #[test]
    fn swim_tie_breaks_by_magnitude() {
        let sens = vec![1.0, 1.0, 1.0];
        let mags = vec![0.2, 0.9, 0.5];
        assert_eq!(build_ranking(Strategy::Swim, &sens, &mags, None), vec![1, 2, 0]);
    }

    #[test]
    fn magnitude_ignores_sensitivity() {
        let sens = vec![9.0, 0.0, 5.0];
        let mags = vec![0.1, 0.9, 0.5];
        assert_eq!(build_ranking(Strategy::Magnitude, &sens, &mags, None), vec![1, 2, 0]);
    }

    #[test]
    fn random_is_permutation_and_seed_dependent() {
        let sens = vec![0.0; 100];
        let mags = vec![0.0; 100];
        let mut rng_a = Prng::seed_from_u64(1);
        let a = build_ranking(Strategy::Random, &sens, &mags, Some(&mut rng_a));
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        let mut rng_b = Prng::seed_from_u64(2);
        let b = build_ranking(Strategy::Random, &sens, &mags, Some(&mut rng_b));
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "requires an RNG")]
    fn random_without_rng_panics() {
        build_ranking(Strategy::Random, &[0.0], &[0.0], None);
    }

    #[test]
    fn mask_fraction_boundaries() {
        let ranking = vec![3, 1, 0, 2];
        assert_eq!(mask_top_fraction(&ranking, 0.0), vec![false; 4]);
        assert_eq!(mask_top_fraction(&ranking, 1.0), vec![true; 4]);
        let half = mask_top_fraction(&ranking, 0.5);
        assert_eq!(half, vec![false, true, false, true]);
    }

    #[test]
    fn mask_counts() {
        let ranking: Vec<usize> = (0..10).collect();
        for k in 0..=10 {
            let mask = mask_top_k(&ranking, k);
            assert_eq!(mask.iter().filter(|&&m| m).count(), k);
        }
    }

    #[test]
    fn strategy_names() {
        assert_eq!(Strategy::Swim.name(), "SWIM");
        assert_eq!(Strategy::all().len(), 3);
    }

    #[test]
    fn registry_has_at_least_five_unique_selectors() {
        let sels = registry();
        assert!(sels.len() >= 5, "registry has {} selectors", sels.len());
        let mut keys: Vec<String> = sels.iter().map(|s| s.key()).collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), sels.len(), "duplicate registry keys");
        for key in ["swim", "magnitude", "random", "swim-no-tiebreak", "layer-balanced"] {
            assert!(selector_by_name(key).is_some(), "missing selector {key}");
        }
    }

    #[test]
    fn selector_lookup_is_case_insensitive_by_display_name() {
        assert_eq!(selector_by_name("MAGNITUDE").unwrap().name(), "Magnitude");
        assert_eq!(selector_by_name("SWIM (no tie-break)").unwrap().key(), "swim-no-tiebreak");
        assert!(selector_by_name("nope").is_none());
    }

    #[test]
    fn strategy_matches_trait_impls() {
        let sens: Vec<f32> = (0..40).map(|i| ((i * 7) % 13) as f32).collect();
        let mags: Vec<f32> = (0..40).map(|i| ((i * 5) % 11) as f32).collect();
        let inputs = SelectionInputs::new(&sens, &mags);
        for strategy in Strategy::all() {
            if strategy == Strategy::Random {
                let mut a = Prng::seed_from_u64(3);
                let mut b = Prng::seed_from_u64(3);
                assert_eq!(
                    build_ranking(strategy, &sens, &mags, Some(&mut a)),
                    strategy.selector().rank(&inputs, Some(&mut b))
                );
            } else {
                assert_eq!(
                    build_ranking(strategy, &sens, &mags, None),
                    strategy.selector().rank(&inputs, None)
                );
            }
        }
    }

    #[test]
    fn no_tiebreak_matches_zeroed_magnitudes() {
        // The ablation binary used to emulate "no tie-break" by zeroing
        // the magnitude vector; the dedicated selector must reproduce
        // that ranking exactly.
        let sens = vec![1.0f32, 3.0, 1.0, 3.0, 0.5];
        let zeros = vec![0.0f32; sens.len()];
        let mags = vec![9.0f32, 1.0, 2.0, 3.0, 4.0];
        let legacy = build_ranking(Strategy::Swim, &sens, &zeros, None);
        let inputs = SelectionInputs::new(&sens, &mags);
        assert_eq!(SwimNoTieBreakSelector.rank(&inputs, None), legacy);
    }

    #[test]
    fn layer_balanced_selects_proportionally() {
        // Two layers: a large one with huge sensitivities and a small
        // one with tiny sensitivities. Global SWIM would fill the top
        // ranks with the large layer only; the balanced selector keeps
        // the per-layer share equal at every prefix.
        let mut sens = vec![100.0f32; 80];
        sens.extend(vec![0.1f32; 20]);
        let mags = vec![1.0f32; 100];
        let spans = [(0usize, 80usize), (80, 20)];
        let inputs = SelectionInputs::with_spans(&sens, &mags, &spans);
        let ranking = LayerBalancedSelector.rank(&inputs, None);
        let mut seen = [false; 100];
        let top: Vec<usize> = ranking[..20].to_vec();
        for &w in &top {
            seen[w] = true;
        }
        let small_layer_hits = (80..100).filter(|&w| seen[w]).count();
        // Top 20% globally should contain ~20% of the small layer (4 of
        // 20 weights), not zero.
        assert!(
            (3..=5).contains(&small_layer_hits),
            "small layer got {small_layer_hits} of the top 20"
        );
        // Still a permutation.
        let mut sorted = ranking.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn layer_balanced_without_spans_is_swim() {
        let sens = vec![0.5f32, 2.0, 1.0];
        let mags = vec![1.0f32, 1.0, 1.0];
        let inputs = SelectionInputs::new(&sens, &mags);
        assert_eq!(LayerBalancedSelector.rank(&inputs, None), SwimSelector.rank(&inputs, None));
    }

    #[test]
    #[should_panic(expected = "tile the weight range")]
    fn inputs_reject_gapped_spans() {
        let sens = vec![0.0f32; 10];
        let mags = vec![0.0f32; 10];
        let spans = [(0usize, 4usize), (6, 4)];
        let _ = SelectionInputs::with_spans(&sens, &mags, &spans);
    }
}
