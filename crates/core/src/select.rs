//! Weight-selection strategies for selective write-verify.

use swim_tensor::Prng;

/// Which metric orders the weights for write-verify (paper §4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// SWIM: descending second derivative, magnitude tie-break (§3.2).
    Swim,
    /// Baseline: descending absolute weight value.
    Magnitude,
    /// Baseline: uniformly random order (fresh per Monte Carlo run).
    Random,
}

impl Strategy {
    /// All strategies, in the paper's presentation order.
    pub fn all() -> [Strategy; 3] {
        [Strategy::Swim, Strategy::Magnitude, Strategy::Random]
    }

    /// Display name used in tables.
    pub fn name(&self) -> &'static str {
        match self {
            Strategy::Swim => "SWIM",
            Strategy::Magnitude => "Magnitude",
            Strategy::Random => "Random",
        }
    }
}

/// Builds a ranking (most-important-first weight indices) for a strategy.
///
/// * `Swim` sorts by `sensitivities` descending, breaking ties by
///   `magnitudes` descending ("when two weights have the same second
///   derivative, we use their magnitudes as the tie-breaker", §3.2);
/// * `Magnitude` sorts by `magnitudes` descending;
/// * `Random` shuffles uniformly — it requires `rng` and panics without
///   one.
///
/// # Panics
///
/// Panics if the slices have different lengths, or `Random` is requested
/// without an RNG.
///
/// # Example
///
/// ```
/// use swim_core::select::{build_ranking, Strategy};
///
/// let sens = vec![0.1, 0.9, 0.1];
/// let mags = vec![0.5, 0.1, 0.8];
/// let r = build_ranking(Strategy::Swim, &sens, &mags, None);
/// assert_eq!(r, vec![1, 2, 0]); // highest sensitivity, then |w| tie-break
/// ```
pub fn build_ranking(
    strategy: Strategy,
    sensitivities: &[f32],
    magnitudes: &[f32],
    rng: Option<&mut Prng>,
) -> Vec<usize> {
    assert_eq!(
        sensitivities.len(),
        magnitudes.len(),
        "sensitivity and magnitude vectors must be parallel"
    );
    let n = sensitivities.len();
    let mut idx: Vec<usize> = (0..n).collect();
    match strategy {
        Strategy::Swim => {
            idx.sort_by(|&a, &b| {
                match sensitivities[b]
                    .partial_cmp(&sensitivities[a])
                    .unwrap_or(std::cmp::Ordering::Equal)
                {
                    std::cmp::Ordering::Equal => magnitudes[b]
                        .partial_cmp(&magnitudes[a])
                        .unwrap_or(std::cmp::Ordering::Equal),
                    other => other,
                }
            });
        }
        Strategy::Magnitude => {
            idx.sort_by(|&a, &b| {
                magnitudes[b].partial_cmp(&magnitudes[a]).unwrap_or(std::cmp::Ordering::Equal)
            });
        }
        Strategy::Random => {
            let rng = rng.expect("Random strategy requires an RNG");
            rng.shuffle(&mut idx);
        }
    }
    idx
}

/// Converts the top `fraction` of a ranking into a boolean selection
/// mask over flat weight indices.
///
/// # Panics
///
/// Panics if `fraction` is outside `[0, 1]`.
///
/// # Example
///
/// ```
/// use swim_core::select::mask_top_fraction;
///
/// let ranking = vec![2, 0, 1];
/// let mask = mask_top_fraction(&ranking, 1.0 / 3.0);
/// assert_eq!(mask, vec![false, false, true]);
/// ```
pub fn mask_top_fraction(ranking: &[usize], fraction: f64) -> Vec<bool> {
    let mut mask = Vec::new();
    mask_top_fraction_into(ranking, fraction, &mut mask);
    mask
}

/// [`mask_top_fraction`] into a caller-owned buffer (cleared and
/// refilled; capacity reused). The Monte Carlo harness calls this once
/// per (run, fraction) with a per-worker buffer.
///
/// # Panics
///
/// Panics if `fraction` is outside `[0, 1]`.
pub fn mask_top_fraction_into(ranking: &[usize], fraction: f64, mask: &mut Vec<bool>) {
    assert!((0.0..=1.0).contains(&fraction), "fraction must be in [0, 1]");
    let k = (ranking.len() as f64 * fraction).round() as usize;
    mask_top_k_into(ranking, k, mask);
}

/// Converts the top `k` entries of a ranking into a selection mask.
///
/// # Panics
///
/// Panics if `k > ranking.len()`.
pub fn mask_top_k(ranking: &[usize], k: usize) -> Vec<bool> {
    let mut mask = Vec::new();
    mask_top_k_into(ranking, k, &mut mask);
    mask
}

/// [`mask_top_k`] into a caller-owned buffer.
///
/// # Panics
///
/// Panics if `k > ranking.len()`.
pub fn mask_top_k_into(ranking: &[usize], k: usize, mask: &mut Vec<bool>) {
    assert!(k <= ranking.len(), "k {k} exceeds ranking length {}", ranking.len());
    mask.clear();
    mask.resize(ranking.len(), false);
    for &i in &ranking[..k] {
        mask[i] = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn swim_sorts_by_sensitivity() {
        let sens = vec![0.5, 2.0, 1.0];
        let mags = vec![1.0, 1.0, 1.0];
        assert_eq!(build_ranking(Strategy::Swim, &sens, &mags, None), vec![1, 2, 0]);
    }

    #[test]
    fn swim_tie_breaks_by_magnitude() {
        let sens = vec![1.0, 1.0, 1.0];
        let mags = vec![0.2, 0.9, 0.5];
        assert_eq!(build_ranking(Strategy::Swim, &sens, &mags, None), vec![1, 2, 0]);
    }

    #[test]
    fn magnitude_ignores_sensitivity() {
        let sens = vec![9.0, 0.0, 5.0];
        let mags = vec![0.1, 0.9, 0.5];
        assert_eq!(build_ranking(Strategy::Magnitude, &sens, &mags, None), vec![1, 2, 0]);
    }

    #[test]
    fn random_is_permutation_and_seed_dependent() {
        let sens = vec![0.0; 100];
        let mags = vec![0.0; 100];
        let mut rng_a = Prng::seed_from_u64(1);
        let a = build_ranking(Strategy::Random, &sens, &mags, Some(&mut rng_a));
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        let mut rng_b = Prng::seed_from_u64(2);
        let b = build_ranking(Strategy::Random, &sens, &mags, Some(&mut rng_b));
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "requires an RNG")]
    fn random_without_rng_panics() {
        build_ranking(Strategy::Random, &[0.0], &[0.0], None);
    }

    #[test]
    fn mask_fraction_boundaries() {
        let ranking = vec![3, 1, 0, 2];
        assert_eq!(mask_top_fraction(&ranking, 0.0), vec![false; 4]);
        assert_eq!(mask_top_fraction(&ranking, 1.0), vec![true; 4]);
        let half = mask_top_fraction(&ranking, 0.5);
        assert_eq!(half, vec![false, true, false, true]);
    }

    #[test]
    fn mask_counts() {
        let ranking: Vec<usize> = (0..10).collect();
        for k in 0..=10 {
            let mask = mask_top_k(&ranking, k);
            assert_eq!(mask.iter().filter(|&&m| m).count(), k);
        }
    }

    #[test]
    fn strategy_names() {
        assert_eq!(Strategy::Swim.name(), "SWIM");
        assert_eq!(Strategy::all().len(), 3);
    }
}
