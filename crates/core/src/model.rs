//! A trained network bound to the device programming model.

use std::sync::Arc;

use swim_cim::device::DeviceConfig;
use swim_cim::mapping::{ProgramSummary, WeightMapper};
use swim_cim::model::{default_device_model, DeviceModel};
use swim_data::Dataset;
use swim_nn::loss::Loss;
use swim_nn::{ActivationArena, Network, ParamKind};
use swim_quant::QuantParams;
use swim_tensor::Prng;

/// One device-mapped parameter's slot in the flat weight vector.
#[derive(Debug, Clone, Copy)]
struct Slot {
    offset: usize,
    len: usize,
    scale: f32,
}

/// A quantized, device-bound model: the unit the SWIM pipeline operates
/// on.
///
/// Construction quantizes every device-mapped weight tensor (per-tensor
/// max-abs scale, sign-magnitude codes at `weight_bits`) and *bakes the
/// quantized values back into the network*, so the held network is
/// exactly the model that will be programmed — its accuracy is the
/// paper's "accuracy without device variation" reference.
///
/// All programming operations work on the flat weight coordinate system
/// of [`Network::device_weights`].
#[derive(Debug, Clone)]
pub struct QuantizedModel {
    network: Network,
    slots: Vec<Slot>,
    codes: Vec<i32>,
    clean_weights: Vec<f32>,
    mapper: WeightMapper,
}

impl QuantizedModel {
    /// Quantizes `network`'s device-mapped weights to `weight_bits` and
    /// binds them to `device`.
    ///
    /// # Panics
    ///
    /// Panics if the bit widths are inconsistent with the device's
    /// `K`-bit resolution (see [`swim_quant::DeviceSlicing::new`]).
    pub fn new(network: Network, weight_bits: u32, device: DeviceConfig) -> Self {
        Self::with_model(network, weight_bits, device, default_device_model())
    }

    /// Like [`QuantizedModel::new`], but programming through an explicit
    /// [`DeviceModel`] from the zoo instead of the default RRAM Gaussian
    /// reference.
    ///
    /// # Panics
    ///
    /// Panics if the bit widths are inconsistent with the device's
    /// `K`-bit resolution (see [`swim_quant::DeviceSlicing::new`]).
    pub fn with_model(
        mut network: Network,
        weight_bits: u32,
        device: DeviceConfig,
        model: Arc<dyn DeviceModel>,
    ) -> Self {
        let mapper = WeightMapper::with_model(weight_bits, device, model);
        let mut slots = Vec::new();
        let mut codes = Vec::new();
        let mut offset = 0usize;
        network.visit_params(&mut |p| {
            if p.kind == ParamKind::DeviceWeight {
                let params = QuantParams::from_tensor(&p.value, weight_bits);
                let scale = params.scale();
                for v in p.value.data_mut().iter_mut() {
                    let code = params.quantize(*v);
                    codes.push(code);
                    *v = params.dequantize(code);
                }
                slots.push(Slot { offset, len: p.value.len(), scale });
                offset += p.value.len();
            }
        });
        let clean_weights = network.device_weights();
        QuantizedModel { network, slots, codes, clean_weights, mapper }
    }

    /// Number of device-mapped weights.
    pub fn weight_count(&self) -> usize {
        self.codes.len()
    }

    /// The device/bit configuration in use.
    pub fn mapper(&self) -> &WeightMapper {
        &self.mapper
    }

    /// The clean (quantized, noise-free) flat weights.
    pub fn clean_weights(&self) -> &[f32] {
        &self.clean_weights
    }

    /// The signed quantization codes, flat.
    pub fn codes(&self) -> &[i32] {
        &self.codes
    }

    /// Parameter-tensor spans over the flat weight order, as
    /// `(offset, len)` pairs — one per device-weight tensor, in mapping
    /// order. Layer-aware selectors consume this via
    /// [`crate::select::SelectionInputs`].
    pub fn param_spans(&self) -> Vec<(usize, usize)> {
        self.slots.iter().map(|s| (s.offset, s.len)).collect()
    }

    /// Mutable access to the clean network (weights are the quantized
    /// values).
    pub fn network_mut(&mut self) -> &mut Network {
        &mut self.network
    }

    /// Deep copy of the clean network — one per Monte Carlo worker
    /// thread.
    pub fn network_clone(&self) -> Network {
        self.network.clone()
    }

    /// Accuracy of the clean quantized model — the paper's "accuracy
    /// without the impact of device variation".
    pub fn clean_accuracy(&mut self, data: &Dataset, batch: usize) -> f64 {
        self.network.accuracy(data.images(), data.labels(), batch)
    }

    /// Per-weight std of a single uncorrected write, in *weight value*
    /// units (Eq. 16 scaled by each tensor's quantization scale).
    pub fn weight_value_sigmas(&self) -> Vec<f32> {
        let code_sigma = self.mapper.weight_code_sigma();
        let mut out = vec![0.0f32; self.codes.len()];
        for slot in &self.slots {
            let sigma = (code_sigma as f32) * slot.scale;
            for v in &mut out[slot.offset..slot.offset + slot.len] {
                *v = sigma;
            }
        }
        out
    }

    /// Converts noisy device codes back to weight values, into a reused
    /// buffer.
    fn codes_to_weights_into(&self, noisy_codes: &[f64], weights: &mut Vec<f32>) {
        weights.clear();
        weights.resize(noisy_codes.len(), 0.0);
        for slot in &self.slots {
            for i in slot.offset..slot.offset + slot.len {
                weights[i] = noisy_codes[i] as f32 * slot.scale;
            }
        }
    }

    /// Programs the model onto devices and returns a network instance
    /// carrying the noisy weights, plus the pulse accounting.
    ///
    /// `selection[i] == true` write-verifies flat weight `i`; `None`
    /// programs everything without verification (the paper's NWC = 0
    /// case).
    pub fn program_network(
        &self,
        selection: Option<&[bool]>,
        rng: &mut Prng,
    ) -> (Network, ProgramSummary) {
        let (weights, summary) = self.program_weights(selection, rng);
        let mut network = self.network.clone();
        network.set_device_weights(&weights);
        (network, summary)
    }

    /// Programs and returns just the flat noisy weights (cheaper when the
    /// caller manages its own network instance).
    pub fn program_weights(
        &self,
        selection: Option<&[bool]>,
        rng: &mut Prng,
    ) -> (Vec<f32>, ProgramSummary) {
        let mut codes = Vec::new();
        let mut weights = Vec::new();
        let summary = self.program_weights_into(selection, rng, &mut codes, &mut weights);
        (weights, summary)
    }

    /// [`QuantizedModel::program_weights`] into caller-owned buffers —
    /// the allocation-free unit of every Monte Carlo run.
    ///
    /// `codes` receives the noisy device codes, `weights` the converted
    /// weight values; both are cleared and refilled, reusing capacity.
    /// Draws from `rng` in exactly the same order as `program_weights`,
    /// so statistics are unchanged by buffer reuse.
    ///
    /// # Panics
    ///
    /// Panics if `selection` is provided with the wrong length.
    pub fn program_weights_into(
        &self,
        selection: Option<&[bool]>,
        rng: &mut Prng,
        codes: &mut Vec<f64>,
        weights: &mut Vec<f32>,
    ) -> ProgramSummary {
        if let Some(sel) = selection {
            assert_eq!(sel.len(), self.codes.len(), "selection mask length mismatch");
        }
        let summary = self.mapper.program_into(&self.codes, selection, rng, codes);
        self.codes_to_weights_into(codes, weights);
        summary
    }

    /// Programs a single flat weight, returning its noisy value (in
    /// weight units) and the pulses spent — the unit operation of
    /// Algorithm 1's incremental loop.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn program_single(&self, index: usize, verify: bool, rng: &mut Prng) -> (f32, u64) {
        let slot = self
            .slots
            .iter()
            .find(|s| index >= s.offset && index < s.offset + s.len)
            .unwrap_or_else(|| panic!("weight index {index} out of range"));
        let (code_value, pulses) = self.mapper.program_weight(self.codes[index], verify, rng);
        (code_value as f32 * slot.scale, pulses)
    }

    /// Maximum representable `|w|` per weight (device full-scale times
    /// the slot's quantization scale) — the saturation bound for on-device
    /// updates.
    pub fn weight_value_limits(&self) -> Vec<f32> {
        let max_code = ((1u32 << self.mapper.slicing().weight_bits()) - 1) as f32;
        let mut out = vec![0.0f32; self.codes.len()];
        for slot in &self.slots {
            let lim = max_code * slot.scale;
            for v in &mut out[slot.offset..slot.offset + slot.len] {
                *v = lim;
            }
        }
        out
    }

    /// Pulses to write-verify *all* weights: the NWC = 1.0 denominator.
    ///
    /// Uses a dedicated RNG stream so the estimate never perturbs
    /// experiment noise draws; for ≥10⁴ weights the run-to-run spread is
    /// well under 1%.
    pub fn write_verify_all_cost(&self, rng: &mut Prng) -> u64 {
        self.mapper.write_verify_all_cost(&self.codes, rng)
    }

    /// SWIM sensitivities: the diagonal second derivative of the loss for
    /// every device-mapped weight, accumulated over `data` in batches of
    /// `batch` (paper §3.3 — one forward + one backward pass per batch).
    pub fn sensitivities(&mut self, loss: &dyn Loss, data: &Dataset, batch: usize) -> Vec<f32> {
        assert!(batch > 0, "batch must be positive");
        self.network.zero_hess();
        let n = data.len();
        let mut start = 0usize;
        while start < n {
            let end = (start + batch).min(n);
            let images = data.images().slice_axis0(start, end);
            let targets = &data.labels()[start..end];
            self.network.accumulate_hessian(loss, &images, targets);
            start = end;
        }
        self.network.device_hessian()
    }

    /// Weight magnitudes `|w|` (the magnitude baseline's metric and
    /// SWIM's tie-breaker).
    pub fn magnitudes(&self) -> Vec<f32> {
        self.clean_weights.iter().map(|&w| w.abs()).collect()
    }

    /// Restores the clean quantized weights into the held network (undo a
    /// perturbation applied via [`QuantizedModel::network_mut`]).
    pub fn restore_clean(&mut self) {
        let weights = self.clean_weights.clone();
        self.network.set_device_weights(&weights);
    }
}

/// Per-worker evaluation state for Monte Carlo replication: one network
/// clone plus the programming buffers and the activation arena, reused
/// for every run the worker executes.
///
/// Before this existed, `nwc_sweep` cloned the full network and
/// allocated fresh code/weight/mask vectors for *every run* — with 3,000
/// runs that dominated the harness. A worker now pays the clone once;
/// each run overwrites every device weight via
/// [`swim_nn::Network::set_device_weights`], so no state leaks between
/// runs and statistics are bit-identical to the clone-per-run harness
/// for every thread count. With the [`ActivationArena`] added to the
/// scratch, a steady-state run performs **zero heap allocations**: the
/// network clone, mask/code/weight buffers, the selector's ranking
/// buffer, GEMM and im2col scratch, and every forward activation are all
/// reused (enforced by `tests/alloc_free.rs`).
#[derive(Debug, Clone)]
pub struct EvalScratch {
    /// The worker's network instance (device weights rewritten per run).
    pub network: Network,
    /// Selection-mask buffer (one entry per flat weight).
    pub mask: Vec<bool>,
    /// Noisy device-code buffer.
    pub codes: Vec<f64>,
    /// Programmed-weight buffer.
    pub weights: Vec<f32>,
    /// Ranking buffer for stochastic selectors (re-ranked per run).
    pub ranking: Vec<usize>,
    /// Recycled activation buffers for the forward passes.
    pub arena: ActivationArena,
}

impl EvalScratch {
    /// Clones the model's clean network and sizes the buffers.
    pub fn new(model: &QuantizedModel) -> Self {
        let n = model.weight_count();
        EvalScratch {
            network: model.network_clone(),
            mask: Vec::with_capacity(n),
            codes: Vec::with_capacity(n),
            weights: Vec::with_capacity(n),
            ranking: Vec::new(),
            arena: ActivationArena::new(),
        }
    }

    /// Programs the model with the scratch's mask (all weights when
    /// `use_mask` is false) and loads the noisy weights into the
    /// scratch network. Returns the pulse accounting.
    pub fn program_and_load(
        &mut self,
        model: &QuantizedModel,
        use_mask: bool,
        rng: &mut Prng,
    ) -> ProgramSummary {
        let selection = if use_mask { Some(&self.mask[..]) } else { None };
        let summary =
            model.program_weights_into(selection, rng, &mut self.codes, &mut self.weights);
        self.network.set_device_weights(&self.weights);
        summary
    }

    /// Scores the currently-loaded network on `eval`, drawing every
    /// activation from the scratch's arena (bit-identical to
    /// [`swim_nn::Network::accuracy`], allocation-free once warm).
    pub fn accuracy(&mut self, eval: &Dataset, batch: usize) -> f64 {
        self.network.accuracy_with(eval.images(), eval.labels(), batch, &mut self.arena)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swim_nn::layers::{Linear, Relu, Sequential};
    use swim_nn::loss::SoftmaxCrossEntropy;
    use swim_tensor::Tensor;

    fn tiny_model() -> QuantizedModel {
        let mut rng = Prng::seed_from_u64(1);
        let mut seq = Sequential::new();
        seq.push(Linear::new(4, 8, &mut rng));
        seq.push(Relu::new());
        seq.push(Linear::new(8, 3, &mut rng));
        let net = Network::new("tiny", seq);
        QuantizedModel::new(net, 4, DeviceConfig::rram())
    }

    /// Tiny rank-4-input model (Flatten first, as real models have) plus
    /// a matching dataset.
    fn tiny_flat_model_and_data() -> (QuantizedModel, Dataset) {
        let mut rng = Prng::seed_from_u64(2);
        let mut seq = Sequential::new();
        seq.push(swim_nn::layers::Flatten::new());
        seq.push(Linear::new(4, 8, &mut rng));
        seq.push(Relu::new());
        seq.push(Linear::new(8, 3, &mut rng));
        let net = Network::new("tiny4", seq);
        let model = QuantizedModel::new(net, 4, DeviceConfig::rram());
        let images = Tensor::randn(&[12, 1, 2, 2], &mut rng);
        let data = Dataset::new(images, (0..12).map(|i| i % 3).collect(), 3).unwrap();
        (model, data)
    }

    #[test]
    fn quantization_bakes_codes_into_network() {
        let mut model = tiny_model();
        let weights = model.network_mut().device_weights();
        // Every weight must be an exact multiple of its slot scale.
        for slot in model.slots.clone() {
            for (i, &w) in weights.iter().enumerate().skip(slot.offset).take(slot.len) {
                let k = w / slot.scale;
                assert!((k - k.round()).abs() < 1e-4, "w[{i}] not on grid");
            }
        }
        assert_eq!(model.weight_count(), 4 * 8 + 8 * 3);
    }

    #[test]
    fn program_unverified_perturbs_all() {
        let model = tiny_model();
        let mut rng = Prng::seed_from_u64(3);
        let (weights, summary) = model.program_weights(None, &mut rng);
        assert_eq!(summary.verified_weights, 0);
        assert_eq!(summary.total_weights, model.weight_count() as u64);
        let moved = weights
            .iter()
            .zip(model.clean_weights())
            .filter(|(a, b)| (*a - *b).abs() > 1e-9)
            .count();
        assert!(moved > model.weight_count() / 2);
    }

    #[test]
    fn verified_weights_are_near_clean() {
        let model = tiny_model();
        let mut rng = Prng::seed_from_u64(4);
        let mask = vec![true; model.weight_count()];
        let (weights, summary) = model.program_weights(Some(&mask), &mut rng);
        assert_eq!(summary.verified_weights, model.weight_count() as u64);
        for (i, (&w, &c)) in weights.iter().zip(model.clean_weights()).enumerate() {
            let slot = model.slots.iter().find(|s| i >= s.offset && i < s.offset + s.len).unwrap();
            let margin = model.mapper.config().level_margin() as f32 * slot.scale;
            assert!((w - c).abs() <= margin + 1e-6, "w[{i}] {w} vs {c}");
        }
    }

    #[test]
    fn selective_mask_splits_cost() {
        let model = tiny_model();
        let mut rng = Prng::seed_from_u64(5);
        let n = model.weight_count();
        let mask: Vec<bool> = (0..n).map(|i| i % 4 == 0).collect();
        let (_, summary) = model.program_weights(Some(&mask), &mut rng);
        assert_eq!(summary.verified_weights as usize, n.div_ceil(4));
        assert!(summary.verify_pulses > 0);
        assert!(summary.bulk_pulses > 0);
    }

    #[test]
    fn restore_clean_undoes_perturbation() {
        let mut model = tiny_model();
        let clean = model.clean_weights().to_vec();
        let noisy: Vec<f32> = clean.iter().map(|&w| w + 0.5).collect();
        model.network_mut().set_device_weights(&noisy);
        model.restore_clean();
        assert_eq!(model.network_mut().device_weights(), clean);
    }

    #[test]
    fn sigma_vector_positive_and_uniform_within_slot() {
        let model = tiny_model();
        let sigmas = model.weight_value_sigmas();
        assert_eq!(sigmas.len(), model.weight_count());
        assert!(sigmas.iter().all(|&s| s > 0.0));
        // Within one slot, all sigmas equal.
        let s0 = model.slots[0];
        let first = sigmas[s0.offset];
        assert!(sigmas[s0.offset..s0.offset + s0.len].iter().all(|&s| s == first));
    }

    #[test]
    fn write_verify_all_cost_near_ten_per_device() {
        let model = tiny_model();
        let mut rng = Prng::seed_from_u64(6);
        let cost = model.write_verify_all_cost(&mut rng) as f64;
        let per = cost / model.weight_count() as f64;
        assert!((6.0..16.0).contains(&per), "per-weight cost {per}");
    }

    #[test]
    fn sensitivities_nonnegative_and_sized() {
        let (mut model, data) = tiny_flat_model_and_data();
        let loss = SoftmaxCrossEntropy::new();
        let sens = model.sensitivities(&loss, &data, 6);
        assert_eq!(sens.len(), model.weight_count());
        assert!(sens.iter().all(|&h| h >= 0.0));
        assert!(sens.iter().any(|&h| h > 0.0));
        // Batched accumulation is deterministic.
        let again = model.sensitivities(&loss, &data, 6);
        assert_eq!(sens, again);
    }

    #[test]
    fn clean_accuracy_uses_quantized_weights() {
        let (mut model, data) = tiny_flat_model_and_data();
        let acc = model.clean_accuracy(&data, 6);
        assert!((0.0..=1.0).contains(&acc));
    }

    #[test]
    fn magnitudes_match_clean_weights() {
        let model = tiny_model();
        let mags = model.magnitudes();
        assert_eq!(mags.len(), model.weight_count());
        for (&m, &w) in mags.iter().zip(model.clean_weights()) {
            assert_eq!(m, w.abs());
        }
    }
}
