//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment has no network access and no crates.io registry,
//! so the workspace vendors the *subset* of proptest's API that its test
//! suites actually use: the [`proptest!`] macro, [`Strategy`] for numeric
//! ranges / tuples / mapped strategies, [`collection::vec`], `any::<bool>()`,
//! and the `prop_assert*` / `prop_assume!` macros.
//!
//! Semantics differ from real proptest in two deliberate ways:
//!
//! 1. **Deterministic generation.** Inputs are drawn from a fixed-seed
//!    xorshift stream keyed by the test name, so failures reproduce
//!    without a persistence file.
//! 2. **No shrinking.** A failing case panics with the assertion message;
//!    the deterministic stream makes the failing input re-derivable.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Result of one generated test case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Why a generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!` — try another input.
    Reject,
    /// An assertion failed; the message is reported in the panic.
    Fail(String),
}

impl TestCaseError {
    /// Constructs a failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

/// Per-suite configuration (mirrors the fields the workspace uses).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Configuration running `cases` successful cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Deterministic generator used to sample strategies.
pub mod test_runner {
    /// xorshift64* stream; quality is ample for test-input generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the stream; a zero seed is remapped to a fixed constant.
        pub fn seed_from(seed: u64) -> Self {
            TestRng { state: if seed == 0 { 0x9E37_79B9_7F4A_7C15 } else { seed } }
        }

        /// Seeds deterministically from a test name.
        pub fn for_test(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            Self::seed_from(h)
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }

        /// Uniform in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }

        /// Uniform integer below `n` (`n > 0`).
        pub fn below(&mut self, n: u64) -> u64 {
            self.next_u64() % n
        }
    }
}

use test_runner::TestRng;

/// A source of random test inputs.
///
/// Unlike real proptest there is no value tree or shrinking: a strategy
/// is just a deterministic sampler.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value from the strategy.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo + 1) as u64;
                (lo + rng.below(span) as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(i32, i64, u32, u64, usize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}
float_range_strategy!(f32, f64);

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
    }
}

/// Strategy producing any value of a type (only the types the workspace
/// needs).
pub trait Arbitrary: Sized {
    /// The strategy `any::<Self>()` returns.
    type Strategy: Strategy<Value = Self>;
    /// Builds that strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Uniform `bool` strategy.
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;
    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;
    fn arbitrary() -> AnyBool {
        AnyBool
    }
}

/// `any::<T>()` — the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Something usable as a vector-length specification.
    pub trait SizeSpec {
        /// Draws a concrete length.
        fn sample_len(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeSpec for usize {
        fn sample_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeSpec for Range<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty length range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    /// Strategy for vectors of values drawn from `element`.
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    /// `vec(element, len)` — a `Vec` whose length is drawn from `len`.
    pub fn vec<S: Strategy, L: SizeSpec>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    impl<S: Strategy, L: SizeSpec> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.sample_len(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The names test files import with `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, proptest, Arbitrary, ProptestConfig,
        Strategy, TestCaseError, TestCaseResult,
    };
}

/// Declares a block of property tests.
///
/// Each `#[test] fn name(pat in strategy, ...) { body }` item becomes a
/// normal test that runs the body for `cases` deterministic inputs
/// (default 64, overridable with a leading
/// `#![proptest_config(ProptestConfig::with_cases(n))]`).
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_items!{ cases = ($cfg).cases ; $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_items!{ cases = $crate::ProptestConfig::default().cases ; $($rest)* }
    };
}

/// Internal item-by-item expansion of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( cases = $cases:expr ; ) => {};
    ( cases = $cases:expr ;
      $(#[$meta:meta])*
      fn $name:ident( $( $arg:pat_param in $strat:expr ),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cases = ($cases) as usize;
            let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            let mut passed = 0usize;
            let mut attempts = 0usize;
            while passed < cases && attempts < cases * 20 {
                attempts += 1;
                $( let $arg = $crate::Strategy::sample(&($strat), &mut rng); )+
                let outcome = (|| -> $crate::TestCaseResult {
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                })();
                match outcome {
                    Ok(()) => passed += 1,
                    Err($crate::TestCaseError::Reject) => continue,
                    Err($crate::TestCaseError::Fail(msg)) => {
                        panic!("proptest case {} failed: {}", attempts, msg)
                    }
                }
            }
            assert!(
                passed >= cases.min(1),
                "proptest {}: all {} generated cases were rejected by prop_assume!",
                stringify!($name),
                attempts
            );
        }
        $crate::__proptest_items!{ cases = $cases ; $($rest)* }
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}` ({:?} vs {:?})",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
}

/// Discards the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::test_runner::TestRng::for_test("bounds");
        for _ in 0..1000 {
            let v = (1usize..=8).sample(&mut rng);
            assert!((1..=8).contains(&v));
            let f = (-2.0f32..3.0).sample(&mut rng);
            assert!((-2.0..3.0).contains(&f));
            let i = (-15i32..=15).sample(&mut rng);
            assert!((-15..=15).contains(&i));
        }
    }

    #[test]
    fn vec_strategy_respects_len() {
        let mut rng = crate::test_runner::TestRng::for_test("vec");
        let s = crate::collection::vec(0.0f64..1.0, 3..10);
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            assert!((3..10).contains(&v.len()));
        }
        let exact = crate::collection::vec(0u64..5, 4usize);
        assert_eq!(exact.sample(&mut rng).len(), 4);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_generates_and_rejects(a in 0u64..100, flip in any::<bool>()) {
            prop_assume!(a != 7);
            prop_assert!(a < 100);
            prop_assert_eq!(flip, flip);
        }
    }

    proptest! {
        #[test]
        fn tuple_and_flat_map_compose(p in (1usize..=4, 1usize..=4).prop_flat_map(|(r, c)| {
            crate::collection::vec(0.0f32..1.0, r * c).prop_map(move |v| (r, c, v))
        })) {
            let (r, c, v) = p;
            prop_assert_eq!(v.len(), r * c);
        }
    }
}
