//! Property-based tests for the device programming model.

use proptest::prelude::*;
use swim_cim::device::DeviceConfig;
use swim_cim::mapping::WeightMapper;
use swim_cim::writeverify::{program_once, write_verify};
use swim_tensor::Prng;

proptest! {
    /// Write-verify always lands within the margin (the loop's defining
    /// invariant), for any target and reasonable sigma.
    #[test]
    fn write_verify_within_margin(
        target in 0.0f64..15.0,
        sigma in 0.01f64..0.3,
        seed in 0u64..500,
    ) {
        let cfg = DeviceConfig::rram().with_sigma(sigma);
        let mut rng = Prng::seed_from_u64(seed);
        let o = write_verify(target, &cfg, &mut rng);
        prop_assert!((o.value - target).abs() <= cfg.level_margin() + 1e-12);
        prop_assert!(o.pulses >= 1);
    }

    /// A single unverified program is exactly one pulse.
    #[test]
    fn program_once_is_one_pulse(target in 0.0f64..15.0, seed in 0u64..500) {
        let cfg = DeviceConfig::rram();
        let mut rng = Prng::seed_from_u64(seed);
        prop_assert_eq!(program_once(target, &cfg, &mut rng).pulses, 1);
    }

    /// Programming a weight preserves its sign, verified or not.
    #[test]
    fn mapper_preserves_sign(code in -15i32..=15, verify in any::<bool>(), seed in 0u64..300) {
        prop_assume!(code != 0);
        let m = WeightMapper::new(4, DeviceConfig::rram());
        let mut rng = Prng::seed_from_u64(seed);
        let (value, _) = m.program_weight(code, verify, &mut rng);
        // Noise can flip very small magnitudes; verified writes cannot.
        if verify {
            prop_assert_eq!(value.signum() as i32, code.signum());
        }
    }

    /// The verified reconstruction error of a multi-device weight is
    /// bounded by margin × Σ 2^{iK}.
    #[test]
    fn sliced_verify_error_bounded(code in 0i32..=255, seed in 0u64..300) {
        let m = WeightMapper::new(8, DeviceConfig::rram());
        let mut rng = Prng::seed_from_u64(seed);
        let (value, _) = m.program_weight(code, true, &mut rng);
        let bound = m.config().level_margin() * (1.0 + 16.0);
        prop_assert!((value - code as f64).abs() <= bound + 1e-9);
    }

    /// Pulse accounting is exact: totals equal the sum over weights.
    #[test]
    fn pulse_accounting_consistent(seed in 0u64..100, n in 1usize..100) {
        let m = WeightMapper::new(4, DeviceConfig::rram());
        let codes: Vec<i32> = (0..n).map(|i| (i % 16) as i32).collect();
        let sel: Vec<bool> = (0..n).map(|i| i % 3 == 0).collect();

        let mut rng_a = Prng::seed_from_u64(seed);
        let (_, summary) = m.program(&codes, Some(&sel), &mut rng_a);

        let mut rng_b = Prng::seed_from_u64(seed);
        let mut verify_pulses = 0u64;
        let mut bulk_pulses = 0u64;
        for (i, &c) in codes.iter().enumerate() {
            let (_, p) = m.program_weight(c, sel[i], &mut rng_b);
            if sel[i] {
                verify_pulses += p;
            } else {
                bulk_pulses += p;
            }
        }
        prop_assert_eq!(summary.verify_pulses, verify_pulses);
        prop_assert_eq!(summary.bulk_pulses, bulk_pulses);
        prop_assert_eq!(summary.verified_weights as usize, sel.iter().filter(|&&s| s).count());
    }

    /// Zero sigma: programming is exact and costs exactly one pulse per
    /// device regardless of verification.
    #[test]
    fn zero_sigma_exact(code in -255i32..=255, verify in any::<bool>(), seed in 0u64..50) {
        let m = WeightMapper::new(8, DeviceConfig::rram().with_sigma(0.0));
        let mut rng = Prng::seed_from_u64(seed);
        let (value, pulses) = m.program_weight(code, verify, &mut rng);
        prop_assert_eq!(value, code as f64);
        prop_assert_eq!(pulses, 2); // two devices for 8-bit weights
    }
}
