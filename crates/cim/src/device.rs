//! NVM device model configuration.

use std::fmt;

/// Emerging-memory technology presets.
///
/// The paper's model is technology-agnostic (a value-independent Gaussian
/// on each programmed level); the presets differ only in their nominal
/// variation σ, chosen to reflect the relative maturity the paper
/// discusses ("certain emerging technologies may lead to higher
/// variations especially before they become mature", §4.3). They are
/// illustrative defaults, not measured silicon data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceTech {
    /// Resistive RAM — the paper's typical case, σ = 0.1.
    Rram,
    /// Ferroelectric FET — fast read, modest variation, σ = 0.1.
    Fefet,
    /// Phase-change memory — higher programming stochasticity, σ = 0.15.
    Pcm,
}

impl DeviceTech {
    /// Every preset, in presentation order.
    pub fn all() -> [DeviceTech; 3] {
        [DeviceTech::Rram, DeviceTech::Fefet, DeviceTech::Pcm]
    }

    /// Stable lowercase key used by experiment specs and the CLI.
    pub fn key(&self) -> &'static str {
        match self {
            DeviceTech::Rram => "rram",
            DeviceTech::Fefet => "fefet",
            DeviceTech::Pcm => "pcm",
        }
    }

    /// Parses a technology name (case-insensitive; accepts the spec key
    /// or the display name). Returns `None` for unknown names.
    ///
    /// # Example
    ///
    /// ```
    /// use swim_cim::device::DeviceTech;
    ///
    /// assert_eq!(DeviceTech::parse("rram"), Some(DeviceTech::Rram));
    /// assert_eq!(DeviceTech::parse("FeFET"), Some(DeviceTech::Fefet));
    /// assert_eq!(DeviceTech::parse("dram"), None);
    /// ```
    pub fn parse(name: &str) -> Option<DeviceTech> {
        let lower = name.to_lowercase();
        DeviceTech::all().into_iter().find(|t| t.key() == lower)
    }
}

impl fmt::Display for DeviceTech {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DeviceTech::Rram => "RRAM",
            DeviceTech::Fefet => "FeFET",
            DeviceTech::Pcm => "PCM",
        };
        f.write_str(s)
    }
}

/// Parameters of the device programming model (paper §4.1).
///
/// Units: device conductances are expressed in integer *level* units of a
/// `K`-bit device (levels `0 ..= 2^K − 1`), matching Eq. 15. `sigma`,
/// `verify_margin`, and `pulse_step` are **fractions of the device's
/// full-scale range** `2^K − 1` — the convention under which the paper's
/// numbers are mutually consistent: write-verify with margin 0.06 leaves
/// a residual deviation of ≈3% of full scale, matching ref \[8\]'s "weight
/// deviation … less than 3%", and σ = 0.1 produces the multi-percent
/// accuracy drops of Table 1/Fig. 2. Use [`DeviceConfig::level_sigma`]
/// etc. for the values converted to level units.
///
/// # Example
///
/// ```
/// use swim_cim::device::DeviceConfig;
///
/// let cfg = DeviceConfig::rram();
/// assert_eq!(cfg.sigma, 0.1);
/// assert_eq!(cfg.verify_margin, 0.06);
/// let high_var = cfg.with_sigma(0.2); // the paper's σ sweep
/// assert_eq!(high_var.sigma, 0.2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceConfig {
    /// Std of the programming noise per write, in level units
    /// (paper: 0.1 typical, swept to 0.15 / 0.2 in Table 1).
    pub sigma: f64,
    /// Write-verify acceptance margin: iterate until
    /// `|g − g_desired| ≤ margin` (paper: 0.06).
    pub verify_margin: f64,
    /// Conductance change achievable per programming pulse; each
    /// correction of size `e` costs `ceil(|e| / pulse_step)` pulses.
    /// Calibrated so write-verify averages ≈10 pulses/weight at σ = 0.1
    /// (paper §4.1 after ref \[8\]).
    pub pulse_step: f64,
    /// Safety bound on verify iterations (the stochastic loop terminates
    /// with probability 1, but a bound keeps worst-case time finite).
    pub max_verify_iters: u32,
    /// Bits per device (`K`; paper uses 4).
    pub device_bits: u32,
}

impl DeviceConfig {
    /// RRAM preset: the paper's typical configuration.
    pub fn rram() -> Self {
        DeviceConfig {
            sigma: 0.1,
            verify_margin: 0.06,
            pulse_step: 0.018,
            max_verify_iters: 100,
            device_bits: 4,
        }
    }

    /// FeFET preset (fast, low-energy writes; same nominal variation).
    pub fn fefet() -> Self {
        DeviceConfig { sigma: 0.1, ..Self::rram() }
    }

    /// PCM preset (higher programming stochasticity).
    pub fn pcm() -> Self {
        DeviceConfig { sigma: 0.15, ..Self::rram() }
    }

    /// Preset lookup by technology.
    pub fn for_tech(tech: DeviceTech) -> Self {
        match tech {
            DeviceTech::Rram => Self::rram(),
            DeviceTech::Fefet => Self::fefet(),
            DeviceTech::Pcm => Self::pcm(),
        }
    }

    /// Returns a copy with a different variation level (builder style) —
    /// used by the paper's σ ∈ {0.1, 0.15, 0.2} sweep.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative or not finite.
    pub fn with_sigma(mut self, sigma: f64) -> Self {
        assert!(sigma.is_finite() && sigma >= 0.0, "sigma must be non-negative");
        self.sigma = sigma;
        self
    }

    /// Returns a copy with a different device bit width.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is zero or above 8.
    pub fn with_device_bits(mut self, bits: u32) -> Self {
        assert!((1..=8).contains(&bits), "device bits must be in 1..=8");
        self.device_bits = bits;
        self
    }

    /// Device full-scale range in level units: `2^K − 1`.
    pub fn full_scale(&self) -> f64 {
        ((1u32 << self.device_bits) - 1) as f64
    }

    /// Programming-noise std in level units: `sigma × (2^K − 1)`.
    pub fn level_sigma(&self) -> f64 {
        self.sigma * self.full_scale()
    }

    /// Write-verify margin in level units.
    pub fn level_margin(&self) -> f64 {
        self.verify_margin * self.full_scale()
    }

    /// Pulse quantum in level units.
    pub fn level_pulse_step(&self) -> f64 {
        self.pulse_step * self.full_scale()
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if any field is out of its documented range. Called by the
    /// programming entry points.
    pub fn validate(&self) {
        assert!(self.sigma.is_finite() && self.sigma >= 0.0, "sigma must be non-negative");
        assert!(
            self.verify_margin.is_finite() && self.verify_margin > 0.0,
            "verify_margin must be positive"
        );
        assert!(
            self.pulse_step.is_finite() && self.pulse_step > 0.0,
            "pulse_step must be positive"
        );
        assert!(self.max_verify_iters > 0, "max_verify_iters must be positive");
        assert!((1..=8).contains(&self.device_bits), "device bits must be in 1..=8");
    }
}

impl Default for DeviceConfig {
    fn default() -> Self {
        Self::rram()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_valid() {
        for tech in [DeviceTech::Rram, DeviceTech::Fefet, DeviceTech::Pcm] {
            DeviceConfig::for_tech(tech).validate();
        }
    }

    #[test]
    fn sigma_sweep_builder() {
        let cfg = DeviceConfig::rram().with_sigma(0.2);
        assert_eq!(cfg.sigma, 0.2);
        assert_eq!(cfg.verify_margin, DeviceConfig::rram().verify_margin);
    }

    #[test]
    fn pcm_noisier_than_rram() {
        assert!(DeviceConfig::pcm().sigma > DeviceConfig::rram().sigma);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_sigma() {
        DeviceConfig::rram().with_sigma(-0.1);
    }

    #[test]
    fn display_names() {
        assert_eq!(DeviceTech::Rram.to_string(), "RRAM");
        assert_eq!(DeviceTech::Fefet.to_string(), "FeFET");
        assert_eq!(DeviceTech::Pcm.to_string(), "PCM");
    }

    #[test]
    fn tech_keys_round_trip() {
        for tech in DeviceTech::all() {
            assert_eq!(DeviceTech::parse(tech.key()), Some(tech));
            // Display names parse too (case-insensitively).
            assert_eq!(DeviceTech::parse(&tech.to_string()), Some(tech));
        }
        assert_eq!(DeviceTech::parse("sram"), None);
    }
}
