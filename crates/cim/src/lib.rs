//! Non-volatile computing-in-memory (nvCiM) substrate.
//!
//! The SWIM paper evaluates against a simulated nvCiM accelerator whose
//! devices suffer temporal programming variation: every write lands at
//! `N(g_desired, σ²)` with σ independent of the value (paper §4.1,
//! Eq. 16, after ref \[2\]). This crate is that accelerator substrate:
//!
//! * [`device::DeviceConfig`] — variation level σ, write-verify margin,
//!   pulse quantum, and `K`-bit device resolution, with RRAM / FeFET /
//!   PCM presets;
//! * [`writeverify`] — single-device programming with and without the
//!   iterative write-verify loop, counting every programming pulse
//!   (the paper's programming-time unit);
//! * [`mapping::WeightMapper`] — programs whole quantized weight tensors
//!   through bit-slicing ([`swim_quant::DeviceSlicing`]), returning noisy
//!   weights plus exact pulse counts — the bridge between the neural
//!   network world and the device world;
//! * [`crossbar`] — a crossbar tile model (differential columns for
//!   signed weights, optional ADC quantization) performing matrix-vector
//!   multiplication in the "analog" domain.
//!
//! # Calibration against the paper
//!
//! With the default `sigma = 0.1`, `margin = 0.06`, `pulse_step = 0.018`
//! the write-verify loop measures ≈10 average pulses per weight and a
//! residual error std ≈ 0.034 — matching the paper's "average of 10
//! cycles over all the weights and a weight variation distribution with
//! σ = 0.03 after write-verify" (§4.1, after ref \[8\]). See the
//! `calibration` experiment binary and the tests in [`writeverify`].
//!
//! # Example
//!
//! ```
//! use swim_cim::device::DeviceConfig;
//! use swim_cim::writeverify::{program_once, write_verify};
//! use swim_tensor::Prng;
//!
//! let cfg = DeviceConfig::rram();
//! let mut rng = Prng::seed_from_u64(1);
//! let raw = program_once(7.0, &cfg, &mut rng);
//! let verified = write_verify(7.0, &cfg, &mut rng);
//! assert!((verified.value - 7.0).abs() <= cfg.level_margin());
//! assert!(verified.pulses >= raw.pulses);
//! ```

#![warn(missing_docs)]

pub mod cost;
pub mod crossbar;
pub mod device;
pub mod drift;
pub mod mapping;
pub mod model;
pub mod tiles;
pub mod variation;
pub mod writeverify;

pub use cost::{CostEstimate, CostModel};
pub use crossbar::{Crossbar, CrossbarConfig};
pub use device::{DeviceConfig, DeviceTech};
pub use drift::DriftModel;
pub use mapping::{ProgramSummary, WeightMapper};
pub use model::{
    default_device_model, device_model_by_name, device_model_keys, device_model_registry,
    DeviceModel, DriftingModel, MramStochastic, RramGaussian, SramVt, DEFAULT_DEVICE_MODEL,
};
pub use tiles::TiledMatrix;
pub use variation::CorrelatedVariation;
pub use writeverify::{program_once, write_verify, ProgramOutcome};
