//! Crossbar array tile: analog matrix–vector multiplication.
//!
//! A crossbar stores a weight matrix as device conductances at the
//! crosspoints of word lines and bit lines (paper §2.1): input
//! activations are applied as voltages on the rows, and each column's
//! current is the dot product of the inputs with that column's
//! conductances. Signed weights use *differential* column pairs
//! (`G⁺ − G⁻`); the column current is digitized by an ADC of configurable
//! resolution.
//!
//! The SWIM experiments perturb weights in the network's own value domain
//! (mathematically identical, per Eq. 16); this tile model exists so the
//! substrate is a usable CiM library in its own right, and is
//! cross-checked against the weight-domain model in the tests.

use crate::device::DeviceConfig;
use crate::mapping::{ProgramSummary, WeightMapper};
use swim_quant::QuantizedTensor;
use swim_tensor::{Prng, Tensor};

/// Crossbar tile configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrossbarConfig {
    /// Device model.
    pub device: DeviceConfig,
    /// Weight magnitude bits (`M`).
    pub weight_bits: u32,
    /// ADC resolution in bits; `None` keeps column outputs analog
    /// (float) — useful for isolating programming-noise effects.
    pub adc_bits: Option<u32>,
}

impl Default for CrossbarConfig {
    fn default() -> Self {
        CrossbarConfig { device: DeviceConfig::rram(), weight_bits: 4, adc_bits: None }
    }
}

/// A programmed crossbar tile holding an `[rows_out, cols_in]` weight
/// matrix as differential conductance pairs.
///
/// # Example
///
/// ```
/// use swim_cim::crossbar::{Crossbar, CrossbarConfig};
/// use swim_quant::QuantizedTensor;
/// use swim_tensor::{Prng, Tensor};
///
/// let w = Tensor::from_vec(vec![0.5, -0.5, 1.0, 0.0], &[2, 2])?;
/// let q = QuantizedTensor::quantize(&w, 4);
/// let mut rng = Prng::seed_from_u64(0);
/// let cfg = CrossbarConfig::default();
/// let (xbar, _) = Crossbar::program(&q, &cfg, None, &mut rng);
/// let y = xbar.matvec(&Tensor::from_vec(vec![1.0, 1.0], &[2])?);
/// // y ~ W x up to quantization + programming noise.
/// assert!((y.data()[0] - 0.0).abs() < 1.0);
/// # Ok::<(), swim_tensor::TensorError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Crossbar {
    /// Effective signed conductance per crosspoint (G⁺ − G⁻), in weight
    /// units (codes × scale).
    weights: Vec<f32>,
    rows_out: usize,
    cols_in: usize,
    config: CrossbarConfig,
}

impl Crossbar {
    /// Programs a quantized `[out, in]` weight matrix onto a tile.
    ///
    /// `selection` optionally write-verifies a subset of the weights
    /// (flat row-major indices), exactly as in the selective write-verify
    /// experiments.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2 or the selection mask length
    /// mismatches.
    pub fn program(
        weights: &QuantizedTensor,
        config: &CrossbarConfig,
        selection: Option<&[bool]>,
        rng: &mut Prng,
    ) -> (Crossbar, ProgramSummary) {
        assert_eq!(weights.shape().len(), 2, "crossbar expects a rank-2 weight matrix");
        let mapper = WeightMapper::new(config.weight_bits, config.device);
        let (noisy_codes, summary) = mapper.program(weights.codes(), selection, rng);
        let scale = weights.params().scale();
        let values: Vec<f32> = noisy_codes.iter().map(|&c| c as f32 * scale).collect();
        (
            Crossbar {
                weights: values,
                rows_out: weights.shape()[0],
                cols_in: weights.shape()[1],
                config: *config,
            },
            summary,
        )
    }

    /// Output dimension (number of differential column pairs).
    pub fn rows_out(&self) -> usize {
        self.rows_out
    }

    /// Input dimension (number of word lines).
    pub fn cols_in(&self) -> usize {
        self.cols_in
    }

    /// The effective programmed weights (after noise), row-major.
    pub fn effective_weights(&self) -> &[f32] {
        &self.weights
    }

    /// Analog matrix–vector product `y = W_programmed · x`, with optional
    /// ADC quantization of each column output.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not rank 1 of length `cols_in`.
    pub fn matvec(&self, x: &Tensor) -> Tensor {
        assert_eq!(x.rank(), 1, "crossbar input must be rank 1");
        assert_eq!(
            x.shape()[0],
            self.cols_in,
            "crossbar expected input length {}, got {}",
            self.cols_in,
            x.shape()[0]
        );
        let xd = x.data();
        let mut out = vec![0.0f32; self.rows_out];
        for (r, o) in out.iter_mut().enumerate() {
            let row = &self.weights[r * self.cols_in..(r + 1) * self.cols_in];
            let mut acc = 0.0f64;
            for (&w, &v) in row.iter().zip(xd) {
                acc += w as f64 * v as f64;
            }
            *o = acc as f32;
        }
        let mut y = Tensor::from_vec(out, &[self.rows_out]).expect("sized output");
        if let Some(bits) = self.config.adc_bits {
            y = swim_quant::fake_quant(&y, bits);
        }
        y
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_matrix(rng: &mut Prng, m: usize, n: usize) -> Tensor {
        Tensor::randn(&[m, n], rng)
    }

    #[test]
    fn noiseless_crossbar_matches_gemm() {
        let mut rng = Prng::seed_from_u64(1);
        let w = random_matrix(&mut rng, 6, 5);
        let q = QuantizedTensor::quantize(&w, 8);
        let cfg = CrossbarConfig {
            device: DeviceConfig::rram().with_sigma(0.0),
            weight_bits: 8,
            adc_bits: None,
        };
        let (xbar, _) = Crossbar::program(&q, &cfg, None, &mut rng);
        let x = Tensor::randn(&[5], &mut rng);
        let y = xbar.matvec(&x);
        let expected = swim_tensor::linalg::matvec(&q.dequantize(), &x);
        assert!(y.allclose(&expected, 1e-4));
    }

    #[test]
    fn write_verified_tile_is_more_accurate() {
        let mut rng = Prng::seed_from_u64(2);
        let w = random_matrix(&mut rng, 8, 8);
        let q = QuantizedTensor::quantize(&w, 4);
        let cfg = CrossbarConfig::default();
        let all = vec![true; 64];
        let ideal = q.dequantize();

        let mut err_raw = 0.0f64;
        let mut err_wv = 0.0f64;
        for trial in 0..20 {
            let mut rng_a = Prng::seed_from_u64(100 + trial);
            let mut rng_b = Prng::seed_from_u64(100 + trial);
            let (raw, _) = Crossbar::program(&q, &cfg, None, &mut rng_a);
            let (wv, _) = Crossbar::program(&q, &cfg, Some(&all), &mut rng_b);
            for i in 0..64 {
                err_raw += (raw.effective_weights()[i] - ideal.data()[i]).powi(2) as f64;
                err_wv += (wv.effective_weights()[i] - ideal.data()[i]).powi(2) as f64;
            }
        }
        assert!(err_wv < err_raw * 0.5, "wv {err_wv} raw {err_raw}");
    }

    #[test]
    fn adc_quantizes_outputs() {
        let mut rng = Prng::seed_from_u64(3);
        let w = random_matrix(&mut rng, 4, 4);
        let q = QuantizedTensor::quantize(&w, 6);
        let cfg = CrossbarConfig {
            device: DeviceConfig::rram().with_sigma(0.0),
            weight_bits: 6,
            adc_bits: Some(3),
        };
        let (xbar, _) = Crossbar::program(&q, &cfg, None, &mut rng);
        let y = xbar.matvec(&Tensor::ones(&[4]));
        // 3-bit symmetric grid: at most 15 distinct values.
        let max = y.data().iter().fold(0.0f32, |a, &b| a.max(b.abs()));
        let step = max / 7.0;
        for &v in y.data() {
            let k = (v / step).round();
            assert!((v - k * step).abs() < 1e-5, "{v} not on ADC grid");
        }
    }

    #[test]
    fn summary_counts_all_weights() {
        let mut rng = Prng::seed_from_u64(4);
        let w = random_matrix(&mut rng, 3, 4);
        let q = QuantizedTensor::quantize(&w, 4);
        let (_, summary) = Crossbar::program(&q, &CrossbarConfig::default(), None, &mut rng);
        assert_eq!(summary.total_weights, 12);
        assert_eq!(summary.verified_weights, 0);
    }

    #[test]
    #[should_panic(expected = "input length")]
    fn matvec_checks_input_size() {
        let mut rng = Prng::seed_from_u64(5);
        let w = random_matrix(&mut rng, 2, 3);
        let q = QuantizedTensor::quantize(&w, 4);
        let (xbar, _) = Crossbar::program(&q, &CrossbarConfig::default(), None, &mut rng);
        xbar.matvec(&Tensor::zeros(&[5]));
    }
}
