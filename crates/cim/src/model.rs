//! The device-model zoo: pluggable programming-noise models behind one
//! trait.
//!
//! The paper's experiments use a single RRAM-flavored Gaussian variation
//! model, but the SWIM method itself is device-agnostic. [`DeviceModel`]
//! abstracts *how one device level is programmed* — both the single
//! uncorrected attempt and the write-verify loop — so the same selection
//! machinery, pulse accounting, and Monte Carlo harness can sweep over
//! different memory technologies. Models are registered by name
//! ([`device_model_registry`] / [`device_model_by_name`]), mirroring the
//! selector registry in `swim-core`, and an experiment spec addresses
//! them through the `[device].model` key.
//!
//! The reference model, [`RramGaussian`], delegates to the free
//! functions in [`crate::writeverify`] and is **bit-identical** to the
//! pre-trait code path: same RNG draws, in the same order.

use std::sync::Arc;

use crate::device::DeviceConfig;
use crate::drift::DriftModel;
use crate::writeverify::{program_once, write_verify, ProgramOutcome};
use swim_tensor::simd;
use swim_tensor::Prng;

/// A pluggable device programming-noise model.
///
/// Implementations must be deterministic functions of
/// (`target`, `cfg`, `rng`): the Monte Carlo harness replays equally
/// seeded RNG streams and relies on identical outcomes. Every random
/// decision must come from `rng`, and the number and order of draws per
/// call must not depend on anything but the arguments.
pub trait DeviceModel: Send + Sync {
    /// Display name used in tables and results documents.
    fn name(&self) -> &str;

    /// Registry key: lowercase, hyphenated, stable (used by specs and
    /// the CLI). Defaults to the lowercased display name.
    fn key(&self) -> String {
        self.name().to_lowercase()
    }

    /// One-line description for `swim list` and the docs.
    fn describe(&self) -> &str {
        ""
    }

    /// One uncorrected programming attempt of a device level.
    ///
    /// `target` is in level units (`0..=cfg.full_scale()`); the returned
    /// conductance is whatever the device actually holds afterwards.
    fn program_once(&self, target: f64, cfg: &DeviceConfig, rng: &mut Prng) -> ProgramOutcome;

    /// The program-and-verify loop: re-program until the read-back value
    /// sits within `cfg.level_margin()` of `target` (or the iteration
    /// budget runs out), accounting every pulse.
    fn write_verify(&self, target: f64, cfg: &DeviceConfig, rng: &mut Prng) -> ProgramOutcome;

    /// Programs a batch of device levels without verification, appending
    /// one conductance per target to `values` and returning the total
    /// pulse count.
    ///
    /// Must be **bit-identical** to calling [`program_once`] once per
    /// target in order, including RNG stream consumption — the default
    /// implementation does exactly that. Models whose single-shot noise
    /// is a pure `target + sigma·z` transform may override it to draw
    /// the unit normals first and apply the affine map through the SIMD
    /// layer (see [`RramGaussian`]).
    ///
    /// [`program_once`]: DeviceModel::program_once
    fn program_once_bulk(
        &self,
        targets: &[f64],
        cfg: &DeviceConfig,
        rng: &mut Prng,
        values: &mut Vec<f64>,
    ) -> u64 {
        let mut pulses = 0u64;
        for &target in targets {
            let outcome = self.program_once(target, cfg, rng);
            values.push(outcome.value);
            pulses += outcome.pulses;
        }
        pulses
    }
}

/// The reference model: level-proportional Gaussian programming noise
/// with the paper's iterative write-verify loop (§4.1).
///
/// Delegates to [`crate::writeverify::program_once`] /
/// [`crate::writeverify::write_verify`] — the exact pre-registry code
/// path, bit for bit.
#[derive(Debug, Clone, Copy, Default)]
pub struct RramGaussian;

impl DeviceModel for RramGaussian {
    fn name(&self) -> &str {
        "RRAM Gaussian"
    }

    fn key(&self) -> String {
        "rram-gaussian".into()
    }

    fn describe(&self) -> &str {
        "level-proportional Gaussian noise + iterative write-verify (paper §4.1 reference)"
    }

    fn program_once(&self, target: f64, cfg: &DeviceConfig, rng: &mut Prng) -> ProgramOutcome {
        program_once(target, cfg, rng)
    }

    fn write_verify(&self, target: f64, cfg: &DeviceConfig, rng: &mut Prng) -> ProgramOutcome {
        write_verify(target, cfg, rng)
    }

    fn program_once_bulk(
        &self,
        targets: &[f64],
        cfg: &DeviceConfig,
        rng: &mut Prng,
        values: &mut Vec<f64>,
    ) -> u64 {
        cfg.validate();
        // `normal(target, sigma)` is exactly `target + sigma * z` with
        // `z = normal(0, 1)`, so drawing the unit normals first (same
        // stream, same order) and applying the affine map through the
        // SIMD layer stays bit-identical to the per-device path.
        let start = values.len();
        values.extend(targets.iter().map(|_| rng.normal(0.0, 1.0)));
        simd::scale_add_f64(targets, cfg.level_sigma(), &mut values[start..]);
        targets.len() as u64
    }
}

/// MRAM (MTJ-style) parameterization: stochastic switching.
///
/// Magnetic tunnel junctions switch thermally: most write attempts land
/// tightly around the target (Gaussian with `sigma_scale ×` the
/// configured level sigma), but with probability [`write_error_rate`]
/// an attempt fails to switch cleanly and the device is left at a
/// uniformly random level. Write-verify catches those outliers, so the
/// verified tail behaves like RRAM while the *unverified* tail is much
/// heavier — exactly the regime where tail-risk statistics diverge from
/// the mean.
///
/// [`write_error_rate`]: MramStochastic::write_error_rate
#[derive(Debug, Clone, Copy)]
pub struct MramStochastic {
    /// Probability that one write attempt fails to switch and lands at
    /// a uniformly random level.
    pub write_error_rate: f64,
    /// Successful-attempt noise std as a multiple of
    /// `cfg.level_sigma()`.
    pub sigma_scale: f64,
}

impl Default for MramStochastic {
    fn default() -> Self {
        MramStochastic { write_error_rate: 0.05, sigma_scale: 0.6 }
    }
}

impl MramStochastic {
    /// One write attempt: tight Gaussian, or a uniform outlier on a
    /// switching failure. Always draws the normal first and the failure
    /// uniform second so the draw count per attempt is fixed (2).
    fn attempt(&self, target: f64, cfg: &DeviceConfig, rng: &mut Prng) -> f64 {
        let clean = rng.normal(target, self.sigma_scale * cfg.level_sigma());
        if rng.uniform() < self.write_error_rate {
            rng.uniform_range(0.0, cfg.full_scale())
        } else {
            clean
        }
    }
}

impl DeviceModel for MramStochastic {
    fn name(&self) -> &str {
        "MRAM Stochastic"
    }

    fn key(&self) -> String {
        "mram-stochastic".into()
    }

    fn describe(&self) -> &str {
        "MTJ-style writes: tight Gaussian plus a random-level switching-failure tail"
    }

    fn program_once(&self, target: f64, cfg: &DeviceConfig, rng: &mut Prng) -> ProgramOutcome {
        cfg.validate();
        ProgramOutcome { value: self.attempt(target, cfg, rng), pulses: 1 }
    }

    fn write_verify(&self, target: f64, cfg: &DeviceConfig, rng: &mut Prng) -> ProgramOutcome {
        cfg.validate();
        let margin = cfg.level_margin();
        let step = cfg.level_pulse_step();
        let mut value = self.attempt(target, cfg, rng);
        let mut pulses = 1u64;
        for _ in 0..cfg.max_verify_iters {
            let err = value - target;
            if err.abs() <= margin {
                break;
            }
            pulses += ((err.abs() / step).ceil()).max(1.0) as u64;
            value = self.attempt(target, cfg, rng);
        }
        ProgramOutcome { value, pulses }
    }
}

/// SRAM-class parameterization: static threshold-voltage mismatch.
///
/// A compute-SRAM bit-cell's error is dominated by a mismatch offset
/// frozen in at fabrication rather than by write stochasticity, so
/// re-writing the same value draws the *same* offset again. What a
/// verify loop can do is trim: each correction step cancels the
/// measured error but lands with a small residual trim noise
/// ([`trim_noise`] × the configured level sigma). Convergence is
/// therefore fast (typically one correction) and the verified residual
/// is much tighter than RRAM's.
///
/// [`trim_noise`]: SramVt::trim_noise
#[derive(Debug, Clone, Copy)]
pub struct SramVt {
    /// Residual noise of one trim step as a multiple of
    /// `cfg.level_sigma()`.
    pub trim_noise: f64,
}

impl Default for SramVt {
    fn default() -> Self {
        SramVt { trim_noise: 0.25 }
    }
}

impl DeviceModel for SramVt {
    fn name(&self) -> &str {
        "SRAM Vt"
    }

    fn key(&self) -> String {
        "sram-vt".into()
    }

    fn describe(&self) -> &str {
        "static threshold-voltage mismatch, trimmed by noisy correction steps under verify"
    }

    fn program_once(&self, target: f64, cfg: &DeviceConfig, rng: &mut Prng) -> ProgramOutcome {
        cfg.validate();
        ProgramOutcome { value: rng.normal(target, cfg.level_sigma()), pulses: 1 }
    }

    fn write_verify(&self, target: f64, cfg: &DeviceConfig, rng: &mut Prng) -> ProgramOutcome {
        cfg.validate();
        let margin = cfg.level_margin();
        let step = cfg.level_pulse_step();
        let mut value = rng.normal(target, cfg.level_sigma());
        let mut pulses = 1u64;
        for _ in 0..cfg.max_verify_iters {
            let err = value - target;
            if err.abs() <= margin {
                break;
            }
            pulses += ((err.abs() / step).ceil()).max(1.0) as u64;
            // Trim: cancel the measured error, keep the trim residual.
            value = target + rng.normal(0.0, self.trim_noise * cfg.level_sigma());
        }
        ProgramOutcome { value, pulses }
    }
}

/// Conductance drift over time, composable with any base model.
///
/// The base model programs (and verifies) the device at `t ≈ t0`; the
/// wrapper then ages every device to read-out time [`time`] with a
/// per-device drift exponent drawn from [`DriftModel`], so verified
/// devices drift exactly like unverified ones — write-verify cannot buy
/// back retention loss. Each call adds exactly one extra RNG draw after
/// the base model's draws.
///
/// [`time`]: DriftingModel::time
#[derive(Clone)]
pub struct DriftingModel {
    base: Arc<dyn DeviceModel>,
    drift: DriftModel,
    /// Read-out time in seconds (must exceed `drift.t0`).
    pub time: f64,
    name: String,
    key: String,
    describe: String,
}

impl DriftingModel {
    /// Wraps `base` with `drift` aging evaluated at `time` seconds.
    ///
    /// # Panics
    ///
    /// Panics if `time <= 0`.
    pub fn new(base: Arc<dyn DeviceModel>, drift: DriftModel, time: f64) -> Self {
        assert!(time > 0.0, "drift read-out time must be positive");
        let name = format!("{} + drift", base.name());
        let key = format!("{}-drift", base.key());
        let describe = format!("{} aged to t = {time:.0} s", base.name());
        DriftingModel { base, drift, time, name, key, describe }
    }

    /// Overrides the generated name/key/describe (used by the registry
    /// presets).
    pub fn named(mut self, name: &str, key: &str, describe: &str) -> Self {
        self.name = name.to_string();
        self.key = key.to_string();
        self.describe = describe.to_string();
        self
    }

    /// The wrapped base model.
    pub fn base(&self) -> &Arc<dyn DeviceModel> {
        &self.base
    }

    /// The drift parameterization in use.
    pub fn drift(&self) -> DriftModel {
        self.drift
    }

    fn age(&self, outcome: ProgramOutcome, rng: &mut Prng) -> ProgramOutcome {
        let nu = self.drift.sample_exponent(rng);
        ProgramOutcome {
            value: outcome.value * (self.time / self.drift.t0).powf(-nu),
            pulses: outcome.pulses,
        }
    }
}

impl DeviceModel for DriftingModel {
    fn name(&self) -> &str {
        &self.name
    }

    fn key(&self) -> String {
        self.key.clone()
    }

    fn describe(&self) -> &str {
        &self.describe
    }

    fn program_once(&self, target: f64, cfg: &DeviceConfig, rng: &mut Prng) -> ProgramOutcome {
        let outcome = self.base.program_once(target, cfg, rng);
        self.age(outcome, rng)
    }

    fn write_verify(&self, target: f64, cfg: &DeviceConfig, rng: &mut Prng) -> ProgramOutcome {
        let outcome = self.base.write_verify(target, cfg, rng);
        self.age(outcome, rng)
    }
}

/// The default model key (`rram-gaussian`), programmed by every call
/// site that predates the registry.
pub const DEFAULT_DEVICE_MODEL: &str = "rram-gaussian";

/// The default device model: the bit-identical RRAM Gaussian reference.
pub fn default_device_model() -> Arc<dyn DeviceModel> {
    Arc::new(RramGaussian)
}

/// Every built-in device model, in presentation order (the reference
/// model first, then the material zoo, then the drift compositions).
pub fn device_model_registry() -> Vec<Arc<dyn DeviceModel>> {
    vec![
        Arc::new(RramGaussian),
        Arc::new(MramStochastic::default()),
        Arc::new(SramVt::default()),
        Arc::new(DriftingModel::new(Arc::new(RramGaussian), DriftModel::rram(), 1e4).named(
            "RRAM + drift",
            "rram-drift",
            "Gaussian programming with RRAM-grade conductance drift at t = 10^4 s",
        )),
        Arc::new(DriftingModel::new(Arc::new(RramGaussian), DriftModel::pcm(), 1e4).named(
            "PCM + drift",
            "pcm-drift",
            "Gaussian programming with PCM-grade conductance drift at t = 10^4 s",
        )),
    ]
}

/// Resolves a device model by registry key or display name
/// (case-insensitive). Returns `None` for unknown names.
///
/// # Example
///
/// ```
/// use swim_cim::model::device_model_by_name;
///
/// assert_eq!(device_model_by_name("rram-gaussian").unwrap().name(), "RRAM Gaussian");
/// assert_eq!(device_model_by_name("MRAM Stochastic").unwrap().key(), "mram-stochastic");
/// assert!(device_model_by_name("flux-capacitor").is_none());
/// ```
pub fn device_model_by_name(name: &str) -> Option<Arc<dyn DeviceModel>> {
    let want = name.to_lowercase();
    device_model_registry().into_iter().find(|m| m.key() == want || m.name().to_lowercase() == want)
}

/// The registry keys, in presentation order (for error messages and
/// `swim list`).
pub fn device_model_keys() -> Vec<String> {
    device_model_registry().iter().map(|m| m.key()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rram_gaussian_is_bit_identical_to_free_functions() {
        let cfg = DeviceConfig::rram();
        let model = RramGaussian;
        for target in [0.0f64, 3.0, 7.5, 15.0] {
            let mut a = Prng::seed_from_u64(42);
            let mut b = Prng::seed_from_u64(42);
            assert_eq!(
                model.program_once(target, &cfg, &mut a),
                program_once(target, &cfg, &mut b)
            );
            assert_eq!(
                model.write_verify(target, &cfg, &mut a),
                write_verify(target, &cfg, &mut b)
            );
            // And the RNG streams stayed in lockstep.
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn bulk_programming_is_bit_identical_to_per_device() {
        let cfg = DeviceConfig::rram();
        let mut targets = Vec::new();
        let mut rng = Prng::seed_from_u64(31);
        for _ in 0..257 {
            targets.push(rng.uniform_range(0.0, cfg.full_scale()));
        }
        for model in device_model_registry() {
            for len in [0usize, 1, 7, 64, 257] {
                let mut a = Prng::seed_from_u64(13);
                let mut b = Prng::seed_from_u64(13);
                let mut values = Vec::new();
                let pulses = model.program_once_bulk(&targets[..len], &cfg, &mut a, &mut values);
                let mut ref_pulses = 0u64;
                for (&target, &got) in targets[..len].iter().zip(&values) {
                    let outcome = model.program_once(target, &cfg, &mut b);
                    assert_eq!(got.to_bits(), outcome.value.to_bits(), "{} len {len}", model.key());
                    ref_pulses += outcome.pulses;
                }
                assert_eq!(values.len(), len);
                assert_eq!(pulses, ref_pulses, "{} len {len}", model.key());
                // And the RNG streams stayed in lockstep.
                assert_eq!(a.next_u64(), b.next_u64(), "{} len {len}", model.key());
            }
        }
    }

    #[test]
    fn registry_keys_round_trip_and_are_unique() {
        let models = device_model_registry();
        assert!(models.len() >= 4, "registry has {} models", models.len());
        let mut keys: Vec<String> = models.iter().map(|m| m.key()).collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), models.len(), "duplicate registry keys");
        for model in &models {
            // Key and display name both resolve back to the same model.
            let by_key = device_model_by_name(&model.key()).unwrap();
            assert_eq!(by_key.key(), model.key());
            let by_name = device_model_by_name(model.name()).unwrap();
            assert_eq!(by_name.key(), model.key());
            assert!(!model.describe().is_empty(), "{} has no description", model.key());
        }
        assert!(device_model_by_name("no-such-model").is_none());
    }

    #[test]
    fn default_model_is_the_reference() {
        assert_eq!(default_device_model().key(), DEFAULT_DEVICE_MODEL);
        assert_eq!(device_model_registry()[0].key(), DEFAULT_DEVICE_MODEL);
    }

    #[test]
    fn every_model_verifies_into_margin() {
        let cfg = DeviceConfig::rram();
        for model in device_model_registry() {
            // Drift models age the device *after* verification, so the
            // margin contract applies to the pre-drift models only.
            let drifts = model.key().contains("drift");
            let mut rng = Prng::seed_from_u64(7);
            for target in [0.0f64, 5.0, 15.0] {
                let out = model.write_verify(target, &cfg, &mut rng);
                assert!(out.pulses >= 1, "{}: no pulses", model.key());
                if !drifts {
                    assert!(
                        (out.value - target).abs() <= cfg.level_margin() + 1e-12,
                        "{}: target {target} -> {}",
                        model.key(),
                        out.value
                    );
                }
            }
        }
    }

    #[test]
    fn mram_unverified_tail_is_heavier_than_verified() {
        let cfg = DeviceConfig::rram();
        let model = MramStochastic::default();
        let mut rng = Prng::seed_from_u64(9);
        let n = 4000;
        let target = 8.0;
        let worst_once = (0..n)
            .map(|_| (model.program_once(target, &cfg, &mut rng).value - target).abs())
            .fold(0.0f64, f64::max);
        let worst_verified = (0..n)
            .map(|_| (model.write_verify(target, &cfg, &mut rng).value - target).abs())
            .fold(0.0f64, f64::max);
        // Switching failures land anywhere on the scale; verify caps the
        // error at the margin.
        assert!(worst_once > 1.0, "worst unverified error {worst_once}");
        assert!(worst_verified <= cfg.level_margin() + 1e-12);
    }

    #[test]
    fn sram_converges_faster_than_rram() {
        let cfg = DeviceConfig::rram();
        let mut rng_a = Prng::seed_from_u64(3);
        let mut rng_b = Prng::seed_from_u64(3);
        let n = 2000;
        let target = 10.0;
        let sram: u64 =
            (0..n).map(|_| SramVt::default().write_verify(target, &cfg, &mut rng_a).pulses).sum();
        let rram: u64 =
            (0..n).map(|_| RramGaussian.write_verify(target, &cfg, &mut rng_b).pulses).sum();
        assert!(sram < rram, "sram {sram} pulses vs rram {rram}");
    }

    #[test]
    fn drift_wrapper_composes_and_shrinks_conductance() {
        let base = Arc::new(RramGaussian);
        let aged = DriftingModel::new(base, DriftModel::pcm(), 1e6);
        let cfg = DeviceConfig::rram();
        let mut rng = Prng::seed_from_u64(11);
        let n = 1000;
        let target = 12.0;
        let mean: f64 =
            (0..n).map(|_| aged.write_verify(target, &cfg, &mut rng).value).sum::<f64>() / n as f64;
        // PCM nu ≈ 0.05 over 6 decades: clearly below target, above zero.
        assert!(mean < target - cfg.level_margin(), "aged mean {mean}");
        assert!(mean > 0.5 * target, "aged mean {mean} collapsed");
        // Determinism: same seed, same outcome.
        let a = aged.write_verify(target, &cfg, &mut Prng::seed_from_u64(4));
        let b = aged.write_verify(target, &cfg, &mut Prng::seed_from_u64(4));
        assert_eq!(a, b);
    }
}
