//! Single-device programming: write-without-verify and write-verify.
//!
//! The model follows paper §4.1: every program operation lands at
//! `N(target, σ²)`. Write-verify then *reads* the device (reads are
//! essentially free relative to writes, §3.1), compares against the
//! desired value, and re-programs the difference until within the margin.
//! Each correction of magnitude `e` is a train of `⌈e / pulse_step⌉`
//! bounded-amplitude pulses — the two-step SET/RESET pulse behaviour of
//! the multilevel write-verify scheme in the paper's ref \[8\] — and every
//! pulse counts toward programming time.

use crate::device::DeviceConfig;
use swim_tensor::stats::Running;
use swim_tensor::Prng;

/// Result of programming one device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProgramOutcome {
    /// Conductance actually left on the device, in level units.
    pub value: f64,
    /// Total programming pulses spent.
    pub pulses: u64,
}

/// Programs a device once, without verification (the parallel bulk-write
/// used for unselected weights; 1 pulse).
pub fn program_once(target: f64, cfg: &DeviceConfig, rng: &mut Prng) -> ProgramOutcome {
    cfg.validate();
    ProgramOutcome { value: rng.normal(target, cfg.level_sigma()), pulses: 1 }
}

/// Programs a device with the iterative write-verify loop.
///
/// Loop: program (noisy), read (free), and if `|g − target| > margin`
/// re-program the difference with a pulse train of
/// `⌈|g − target| / pulse_step⌉` pulses. Terminates when the value is
/// within the margin or `max_verify_iters` is reached (the value is then
/// still the best achieved).
///
/// The returned [`ProgramOutcome::value`] is guaranteed within the margin
/// except in the (astronomically unlikely, bounded) iteration-cap case.
pub fn write_verify(target: f64, cfg: &DeviceConfig, rng: &mut Prng) -> ProgramOutcome {
    cfg.validate();
    // Initial bulk program: one pulse.
    let sigma = cfg.level_sigma();
    let margin = cfg.level_margin();
    let step = cfg.level_pulse_step();
    let mut value = rng.normal(target, sigma);
    let mut pulses = 1u64;
    for _ in 0..cfg.max_verify_iters {
        let err = value - target;
        if err.abs() <= margin {
            break;
        }
        // Correction pulse train: bounded-amplitude pulses, each with its
        // own stochastic landing; modelled as re-programming the
        // difference and costing ceil(|err|/pulse_step) pulses.
        let train = (err.abs() / step).ceil().max(1.0) as u64;
        pulses += train;
        value = rng.normal(target, sigma);
    }
    ProgramOutcome { value, pulses }
}

/// Monte Carlo statistics of the write-verify loop (used by the §4.1
/// calibration experiment and tests).
///
/// Error statistics are reported as *fractions of device full scale* so
/// they compare directly against the paper's numbers (raw σ = 0.1,
/// post-write-verify σ ≈ 0.03).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WriteVerifyStats {
    /// Mean pulses per write-verified device.
    pub avg_pulses: f64,
    /// Std of the residual error after write-verify, relative to full
    /// scale.
    pub residual_std: f64,
    /// Std of the error without write-verify, relative to full scale
    /// (should be ≈ σ).
    pub raw_std: f64,
    /// Fraction of devices that needed no correction at all.
    pub first_try_rate: f64,
}

/// Measures [`WriteVerifyStats`] over `samples` devices with random
/// targets in `[0, 2^K − 1]`.
///
/// # Panics
///
/// Panics if `samples` is zero.
pub fn measure_stats(cfg: &DeviceConfig, samples: usize, rng: &mut Prng) -> WriteVerifyStats {
    assert!(samples > 0, "samples must be positive");
    cfg.validate();
    let levels = (1u32 << cfg.device_bits) - 1;
    let mut pulses = Running::new();
    let mut residual = Running::new();
    let mut raw = Running::new();
    let mut first_try = 0usize;
    for _ in 0..samples {
        let target = rng.below(levels as usize + 1) as f64;
        let outcome = write_verify(target, cfg, rng);
        pulses.push(outcome.pulses as f64);
        residual.push(outcome.value - target);
        if outcome.pulses == 1 {
            first_try += 1;
        }
        raw.push(program_once(target, cfg, rng).value - target);
    }
    let fs = cfg.full_scale();
    WriteVerifyStats {
        avg_pulses: pulses.mean(),
        residual_std: residual.std() / fs,
        raw_std: raw.std() / fs,
        first_try_rate: first_try as f64 / samples as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_verify_lands_within_margin() {
        let cfg = DeviceConfig::rram();
        let mut rng = Prng::seed_from_u64(1);
        for target in [0.0, 3.0, 7.5, 15.0] {
            for _ in 0..100 {
                let o = write_verify(target, &cfg, &mut rng);
                assert!(
                    (o.value - target).abs() <= cfg.level_margin(),
                    "target {target} landed at {}",
                    o.value
                );
                assert!(o.pulses >= 1);
            }
        }
    }

    #[test]
    fn zero_sigma_is_exact_single_pulse() {
        let cfg = DeviceConfig::rram().with_sigma(0.0);
        let mut rng = Prng::seed_from_u64(2);
        let o = write_verify(9.0, &cfg, &mut rng);
        assert_eq!(o.value, 9.0);
        assert_eq!(o.pulses, 1);
    }

    #[test]
    fn calibration_matches_paper_section_4_1() {
        // Paper: ~10 average cycles per weight and residual sigma ~0.03
        // after write-verify, at sigma = 0.1.
        let cfg = DeviceConfig::rram();
        let mut rng = Prng::seed_from_u64(3);
        let stats = measure_stats(&cfg, 40_000, &mut rng);
        assert!(
            (8.0..12.0).contains(&stats.avg_pulses),
            "avg pulses {} outside the paper's ~10",
            stats.avg_pulses
        );
        assert!(
            (0.025..0.040).contains(&stats.residual_std),
            "residual std {} outside the paper's ~0.03",
            stats.residual_std
        );
        assert!((stats.raw_std - 0.1).abs() < 0.005, "raw std {}", stats.raw_std);
    }

    #[test]
    fn higher_sigma_costs_more_pulses() {
        let mut rng = Prng::seed_from_u64(4);
        let lo = measure_stats(&DeviceConfig::rram().with_sigma(0.1), 5_000, &mut rng);
        let hi = measure_stats(&DeviceConfig::rram().with_sigma(0.2), 5_000, &mut rng);
        assert!(hi.avg_pulses > lo.avg_pulses);
    }

    #[test]
    fn first_try_rate_matches_gaussian_mass() {
        // P(|N(0, 0.1^2)| <= 0.06) = erf(0.6/sqrt(2)) ~ 0.4515
        let cfg = DeviceConfig::rram();
        let mut rng = Prng::seed_from_u64(5);
        let stats = measure_stats(&cfg, 50_000, &mut rng);
        assert!(
            (stats.first_try_rate - 0.4515).abs() < 0.02,
            "first-try rate {}",
            stats.first_try_rate
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = DeviceConfig::rram();
        let a = write_verify(5.0, &cfg, &mut Prng::seed_from_u64(6));
        let b = write_verify(5.0, &cfg, &mut Prng::seed_from_u64(6));
        assert_eq!(a, b);
    }

    #[test]
    fn iteration_cap_terminates() {
        // Pathological config: margin far below sigma would loop for a
        // long time; the cap must bound it.
        let cfg = DeviceConfig {
            sigma: 1.0,
            verify_margin: 1e-6,
            pulse_step: 0.01,
            max_verify_iters: 5,
            device_bits: 4,
        };
        let mut rng = Prng::seed_from_u64(7);
        let o = write_verify(3.0, &cfg, &mut rng);
        assert!(o.pulses < 5_000);
    }
}
