//! Correlated (spatial) variation — the extension the paper sketches.
//!
//! §2.1: "Spatial variations result from fabrication defects and have
//! both local and global correlations … The proposed framework can also
//! be extended to other sources of variations with modification." This
//! module provides that extension: a three-component noise model
//!
//! ```text
//! Δg_i = global + local[region(i)] + iid_i
//! ```
//!
//! with one chip-wide offset, one offset per contiguous *region* of
//! devices (modelling per-tile/per-column process gradients), and the
//! temporal i.i.d. term of the base model. The sum remains Gaussian per
//! device, so the SWIM pipeline runs unchanged on top; what changes is
//! the error *correlation*, which write-verify (applied per device)
//! still corrects — making SWIM's selection equally applicable.

use swim_tensor::Prng;

/// Parameters of the correlated variation model, each a standard
/// deviation as a fraction of device full scale (matching
/// [`crate::device::DeviceConfig`] conventions).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorrelatedVariation {
    /// Chip-wide (global) offset std.
    pub global_sigma: f64,
    /// Per-region offset std (fabrication gradients).
    pub local_sigma: f64,
    /// Per-device i.i.d. std (the base temporal model).
    pub device_sigma: f64,
    /// Devices per correlated region (e.g. one crossbar tile's worth).
    pub region_size: usize,
}

impl CorrelatedVariation {
    /// A spatial profile with mild global and local components on top of
    /// the paper's temporal σ.
    pub fn with_defaults(device_sigma: f64) -> Self {
        CorrelatedVariation {
            global_sigma: 0.25 * device_sigma,
            local_sigma: 0.5 * device_sigma,
            device_sigma,
            region_size: 128 * 128,
        }
    }

    /// Total per-device noise variance (fractions of full scale).
    pub fn total_variance(&self) -> f64 {
        self.global_sigma.powi(2) + self.local_sigma.powi(2) + self.device_sigma.powi(2)
    }

    /// Samples a noise vector for `n` devices (fractions of full scale):
    /// one global draw, one draw per `region_size` block, and an i.i.d.
    /// draw per device.
    ///
    /// # Panics
    ///
    /// Panics if `region_size` is zero.
    pub fn sample(&self, n: usize, rng: &mut Prng) -> Vec<f64> {
        assert!(self.region_size > 0, "region_size must be positive");
        let global = rng.normal(0.0, self.global_sigma);
        let regions = n.div_ceil(self.region_size);
        let locals: Vec<f64> = (0..regions).map(|_| rng.normal(0.0, self.local_sigma)).collect();
        (0..n)
            .map(|i| global + locals[i / self.region_size] + rng.normal(0.0, self.device_sigma))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swim_tensor::stats::{pearson, Running};

    fn model() -> CorrelatedVariation {
        CorrelatedVariation {
            global_sigma: 0.05,
            local_sigma: 0.08,
            device_sigma: 0.1,
            region_size: 100,
        }
    }

    #[test]
    fn variance_decomposition() {
        let m = model();
        // Across many independent chips, per-device variance must equal
        // the sum of the three component variances.
        let mut acc = Running::new();
        let mut rng = Prng::seed_from_u64(1);
        for _ in 0..2000 {
            let v = m.sample(50, &mut rng);
            for x in v {
                acc.push(x);
            }
        }
        let expected = m.total_variance();
        assert!(
            (acc.variance() - expected).abs() < 0.05 * expected,
            "variance {} vs {expected}",
            acc.variance()
        );
    }

    #[test]
    fn within_region_correlation_exceeds_across() {
        let m = model();
        let mut rng = Prng::seed_from_u64(2);
        // Sample many chips; check device 0 correlates more with device 1
        // (same region) than with device 150 (different region).
        let mut d0 = Vec::new();
        let mut d1 = Vec::new();
        let mut d150 = Vec::new();
        for _ in 0..3000 {
            let v = m.sample(200, &mut rng);
            d0.push(v[0]);
            d1.push(v[1]);
            d150.push(v[150]);
        }
        let same = pearson(&d0, &d1);
        let cross = pearson(&d0, &d150);
        // Theoretical: same = (g²+l²)/total ≈ 0.47 ; cross = g²/total ≈ 0.13.
        assert!(same > cross + 0.15, "same {same} cross {cross}");
        assert!(same > 0.3, "same-region correlation too weak: {same}");
    }

    #[test]
    fn zero_components_reduce_to_iid() {
        let m = CorrelatedVariation {
            global_sigma: 0.0,
            local_sigma: 0.0,
            device_sigma: 0.1,
            region_size: 10,
        };
        let mut rng = Prng::seed_from_u64(3);
        let mut d0 = Vec::new();
        let mut d1 = Vec::new();
        for _ in 0..3000 {
            let v = m.sample(10, &mut rng);
            d0.push(v[0]);
            d1.push(v[1]);
        }
        assert!(pearson(&d0, &d1).abs() < 0.08);
    }

    #[test]
    fn defaults_scale_with_device_sigma() {
        let m = CorrelatedVariation::with_defaults(0.1);
        assert!(m.total_variance() > 0.01);
        assert_eq!(m.device_sigma, 0.1);
        let larger = CorrelatedVariation::with_defaults(0.2);
        assert!(larger.total_variance() > m.total_variance());
    }

    #[test]
    fn sample_length_and_determinism() {
        let m = model();
        let a = m.sample(257, &mut Prng::seed_from_u64(4));
        let b = m.sample(257, &mut Prng::seed_from_u64(4));
        assert_eq!(a.len(), 257);
        assert_eq!(a, b);
    }
}
