//! Tiled crossbar arrays: mapping large layers across fixed-size tiles.
//!
//! Real nvCiM accelerators (ISAAC, the paper's ref \[7\]) bound crossbar
//! dimensions (64–256 word/bit lines) by analog non-idealities, so a
//! weight matrix larger than one tile is partitioned across a grid of
//! tiles whose partial sums are accumulated digitally. [`TiledMatrix`]
//! implements that partitioning on top of [`crate::crossbar::Crossbar`],
//! preserving exact pulse accounting across tiles.

use crate::crossbar::{Crossbar, CrossbarConfig};
use crate::mapping::ProgramSummary;
use swim_quant::{QuantParams, QuantizedTensor};
use swim_tensor::{Prng, Tensor};

/// A weight matrix programmed across a grid of fixed-size crossbar tiles.
///
/// # Example
///
/// ```
/// use swim_cim::tiles::TiledMatrix;
/// use swim_cim::crossbar::CrossbarConfig;
/// use swim_cim::device::DeviceConfig;
/// use swim_quant::QuantizedTensor;
/// use swim_tensor::{Prng, Tensor};
///
/// let mut rng = Prng::seed_from_u64(0);
/// let w = Tensor::randn(&[10, 12], &mut rng);
/// let q = QuantizedTensor::quantize(&w, 4);
/// let cfg = CrossbarConfig {
///     device: DeviceConfig::rram().with_sigma(0.0),
///     ..CrossbarConfig::default()
/// };
/// let (tiled, _) = TiledMatrix::program(&q, &cfg, 4, None, &mut rng);
/// assert_eq!(tiled.grid(), (3, 3)); // ceil(10/4) x ceil(12/4)
/// let x = Tensor::randn(&[12], &mut rng);
/// let y = tiled.matvec(&x);
/// let dense = swim_tensor::linalg::matvec(&q.dequantize(), &x);
/// assert!(y.allclose(&dense, 1e-3));
/// ```
#[derive(Debug, Clone)]
pub struct TiledMatrix {
    tiles: Vec<Crossbar>, // row-major over the tile grid
    tile_rows: usize,
    tile_cols: usize,
    tile_size: usize,
    rows_out: usize,
    cols_in: usize,
}

impl TiledMatrix {
    /// Programs a quantized `[out, in]` matrix across square tiles of
    /// side `tile_size`.
    ///
    /// `selection` (flat row-major over the whole matrix) write-verifies
    /// the chosen weights, exactly as in the untiled path.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2, `tile_size` is zero, or the
    /// selection mask length mismatches.
    pub fn program(
        weights: &QuantizedTensor,
        config: &CrossbarConfig,
        tile_size: usize,
        selection: Option<&[bool]>,
        rng: &mut Prng,
    ) -> (TiledMatrix, ProgramSummary) {
        assert_eq!(weights.shape().len(), 2, "tiled matrix expects rank-2 weights");
        assert!(tile_size > 0, "tile_size must be positive");
        let (rows_out, cols_in) = (weights.shape()[0], weights.shape()[1]);
        if let Some(sel) = selection {
            assert_eq!(sel.len(), rows_out * cols_in, "selection mask length mismatch");
        }
        let tile_rows = rows_out.div_ceil(tile_size);
        let tile_cols = cols_in.div_ceil(tile_size);
        let mut tiles = Vec::with_capacity(tile_rows * tile_cols);
        let mut summary = ProgramSummary::default();

        for tr in 0..tile_rows {
            for tc in 0..tile_cols {
                let r0 = tr * tile_size;
                let c0 = tc * tile_size;
                let r1 = (r0 + tile_size).min(rows_out);
                let c1 = (c0 + tile_size).min(cols_in);
                // Extract the sub-block of codes (kept on the parent's
                // quantization scale so tiles compose exactly).
                let mut codes = Vec::with_capacity((r1 - r0) * (c1 - c0));
                let mut sel_block = selection.map(|_| Vec::with_capacity((r1 - r0) * (c1 - c0)));
                for r in r0..r1 {
                    for c in c0..c1 {
                        codes.push(weights.codes()[r * cols_in + c]);
                        if let (Some(out), Some(sel)) = (sel_block.as_mut(), selection) {
                            out.push(sel[r * cols_in + c]);
                        }
                    }
                }
                let values: Vec<f32> =
                    codes.iter().map(|&c| weights.params().dequantize(c)).collect();
                let block = Tensor::from_vec(values, &[r1 - r0, c1 - c0]).expect("sized block");
                let qblock = QuantizedTensor::quantize_with(
                    &block,
                    QuantParams::new(weights.params().bits(), weights.params().scale()),
                );
                let (tile, s) = Crossbar::program(&qblock, config, sel_block.as_deref(), rng);
                summary.merge(&s);
                tiles.push(tile);
            }
        }
        (TiledMatrix { tiles, tile_rows, tile_cols, tile_size, rows_out, cols_in }, summary)
    }

    /// The tile grid dimensions `(rows, cols)`.
    pub fn grid(&self) -> (usize, usize) {
        (self.tile_rows, self.tile_cols)
    }

    /// Number of tiles.
    pub fn num_tiles(&self) -> usize {
        self.tiles.len()
    }

    /// Output dimension.
    pub fn rows_out(&self) -> usize {
        self.rows_out
    }

    /// Input dimension.
    pub fn cols_in(&self) -> usize {
        self.cols_in
    }

    /// Matrix–vector product: each tile computes its partial sum in the
    /// analog domain; partials are accumulated digitally (f32).
    ///
    /// # Panics
    ///
    /// Panics if `x` is not rank 1 of length `cols_in`.
    pub fn matvec(&self, x: &Tensor) -> Tensor {
        assert_eq!(x.rank(), 1, "tiled matvec input must be rank 1");
        assert_eq!(
            x.shape()[0],
            self.cols_in,
            "tiled matvec expected input length {}, got {}",
            self.cols_in,
            x.shape()[0]
        );
        let mut out = vec![0.0f32; self.rows_out];
        for tr in 0..self.tile_rows {
            let r0 = tr * self.tile_size;
            for tc in 0..self.tile_cols {
                let c0 = tc * self.tile_size;
                let tile = &self.tiles[tr * self.tile_cols + tc];
                let x_block = x.slice_axis0(c0, c0 + tile.cols_in());
                let partial = tile.matvec(&x_block);
                for (i, &v) in partial.data().iter().enumerate() {
                    out[r0 + i] += v;
                }
            }
        }
        Tensor::from_vec(out, &[self.rows_out]).expect("sized output")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceConfig;

    fn noiseless() -> CrossbarConfig {
        CrossbarConfig {
            device: DeviceConfig::rram().with_sigma(0.0),
            weight_bits: 6,
            adc_bits: None,
        }
    }

    #[test]
    fn tiling_matches_dense_noiseless() {
        let mut rng = Prng::seed_from_u64(1);
        for (m, n, t) in [(8, 8, 4), (10, 12, 4), (5, 9, 3), (7, 7, 16)] {
            let w = Tensor::randn(&[m, n], &mut rng);
            let q = QuantizedTensor::quantize(&w, 6);
            let (tiled, _) = TiledMatrix::program(&q, &noiseless(), t, None, &mut rng);
            let x = Tensor::randn(&[n], &mut rng);
            let dense = swim_tensor::linalg::matvec(&q.dequantize(), &x);
            assert!(tiled.matvec(&x).allclose(&dense, 1e-3), "mismatch for {m}x{n} tiles of {t}");
        }
    }

    #[test]
    fn grid_geometry() {
        let mut rng = Prng::seed_from_u64(2);
        let w = Tensor::randn(&[100, 130], &mut rng);
        let q = QuantizedTensor::quantize(&w, 4);
        let cfg = CrossbarConfig { weight_bits: 4, ..noiseless() };
        let (tiled, _) = TiledMatrix::program(&q, &cfg, 64, None, &mut rng);
        assert_eq!(tiled.grid(), (2, 3));
        assert_eq!(tiled.num_tiles(), 6);
    }

    #[test]
    fn pulse_accounting_spans_tiles() {
        let mut rng = Prng::seed_from_u64(3);
        let w = Tensor::randn(&[6, 6], &mut rng);
        let q = QuantizedTensor::quantize(&w, 4);
        let cfg = CrossbarConfig { weight_bits: 4, device: DeviceConfig::rram(), adc_bits: None };
        let sel: Vec<bool> = (0..36).map(|i| i % 2 == 0).collect();
        let (_, summary) = TiledMatrix::program(&q, &cfg, 3, Some(&sel), &mut rng);
        assert_eq!(summary.total_weights, 36);
        assert_eq!(summary.verified_weights, 18);
        assert_eq!(summary.bulk_pulses, 18); // 1 device per 4-bit weight
    }

    #[test]
    fn selection_mask_respects_tile_offsets() {
        // Verify only the top-left quadrant: after programming, those
        // weights must be near-exact, the rest noisy.
        let mut rng = Prng::seed_from_u64(4);
        let w = Tensor::randn(&[8, 8], &mut rng);
        let q = QuantizedTensor::quantize(&w, 4);
        let cfg = CrossbarConfig {
            weight_bits: 4,
            device: DeviceConfig::rram().with_sigma(0.2),
            adc_bits: None,
        };
        let sel: Vec<bool> = (0..64).map(|i| (i / 8) < 4 && (i % 8) < 4).collect();
        let (tiled, _) = TiledMatrix::program(&q, &cfg, 4, Some(&sel), &mut rng);
        // Probe with basis vectors: column j of the effective matrix.
        let ideal = q.dequantize();
        let margin = cfg.device.level_margin() as f32 * q.params().scale();
        for j in 0..4 {
            let mut e = Tensor::zeros(&[8]);
            e.data_mut()[j] = 1.0;
            let col = tiled.matvec(&e);
            for i in 0..4 {
                let err = (col.data()[i] - ideal[[i, j]]).abs();
                assert!(err <= margin + 1e-5, "verified w[{i},{j}] err {err}");
            }
        }
    }
}
