//! Conductance drift (retention) — a further variation source.
//!
//! PCM (and to a lesser degree RRAM) conductances decay after
//! programming following the empirical power law
//! `g(t) = g(t₀) · (t/t₀)^(−ν)` with a device-to-device random drift
//! exponent ν. The paper scopes itself to programming-time temporal
//! variation but notes the framework "can also be extended to other
//! sources of variations" (§2.1); this module provides that extension
//! for the retention axis, letting experiments ask how long a
//! write-verified mapping *stays* accurate and when re-programming is
//! warranted.

use swim_tensor::Prng;

/// Power-law drift model with normally distributed per-device exponents.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftModel {
    /// Mean drift exponent ν (PCM literature: ~0.03–0.1; RRAM ≈ 0.005).
    pub nu_mean: f64,
    /// Device-to-device std of the exponent.
    pub nu_std: f64,
    /// Normalization time t₀ (seconds) at which the programmed value is
    /// exact.
    pub t0: f64,
}

impl DriftModel {
    /// A PCM-like preset (pronounced drift).
    pub fn pcm() -> Self {
        DriftModel { nu_mean: 0.05, nu_std: 0.015, t0: 1.0 }
    }

    /// An RRAM-like preset (mild drift).
    pub fn rram() -> Self {
        DriftModel { nu_mean: 0.005, nu_std: 0.002, t0: 1.0 }
    }

    /// A FeFET-like preset: polarization retention loss sits between
    /// RRAM's near-stability and PCM's pronounced structural relaxation,
    /// with a wider device-to-device spread than RRAM (depolarization
    /// fields vary strongly with the ferroelectric domain configuration).
    pub fn fefet() -> Self {
        DriftModel { nu_mean: 0.02, nu_std: 0.008, t0: 1.0 }
    }

    /// The drift preset for a device technology, so every
    /// [`DeviceTech`](crate::device::DeviceTech) has a usable retention
    /// model.
    pub fn for_tech(tech: crate::device::DeviceTech) -> Self {
        use crate::device::DeviceTech;
        match tech {
            DeviceTech::Rram => DriftModel::rram(),
            DeviceTech::Fefet => DriftModel::fefet(),
            DeviceTech::Pcm => DriftModel::pcm(),
        }
    }

    /// Samples one device's drift exponent (clamped at 0: conductance
    /// does not spontaneously increase in this model).
    pub fn sample_exponent(&self, rng: &mut Prng) -> f64 {
        rng.normal(self.nu_mean, self.nu_std).max(0.0)
    }

    /// Value of a device programmed to `g0` at `t0`, observed at time
    /// `t` seconds, with the given exponent.
    ///
    /// # Panics
    ///
    /// Panics if `t` or `t0` is not positive.
    pub fn decay(&self, g0: f64, nu: f64, t: f64) -> f64 {
        assert!(t > 0.0 && self.t0 > 0.0, "times must be positive");
        g0 * (t / self.t0).powf(-nu)
    }

    /// Applies drift to a whole conductance vector at time `t`, sampling
    /// a fresh exponent per device.
    pub fn apply(&self, conductances: &mut [f64], t: f64, rng: &mut Prng) {
        for g in conductances.iter_mut() {
            let nu = self.sample_exponent(rng);
            *g = self.decay(*g, nu, t);
        }
    }

    /// Mean multiplicative decay factor at time `t` (first-order: using
    /// the mean exponent).
    pub fn mean_factor(&self, t: f64) -> f64 {
        (t / self.t0).powf(-self.nu_mean)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_drift_at_t0() {
        let m = DriftModel::pcm();
        assert_eq!(m.decay(7.0, 0.05, m.t0), 7.0);
    }

    #[test]
    fn conductance_decays_monotonically() {
        let m = DriftModel::pcm();
        let g1 = m.decay(10.0, 0.05, 10.0);
        let g2 = m.decay(10.0, 0.05, 1000.0);
        let g3 = m.decay(10.0, 0.05, 100_000.0);
        assert!(10.0 > g1 && g1 > g2 && g2 > g3);
        assert!(g3 > 0.0);
    }

    #[test]
    fn pcm_drifts_faster_than_rram() {
        let t = 86_400.0; // one day
        assert!(DriftModel::pcm().mean_factor(t) < DriftModel::rram().mean_factor(t));
    }

    #[test]
    fn every_tech_has_a_usable_drift_preset() {
        let t = 86_400.0; // one day
        for tech in crate::device::DeviceTech::all() {
            let m = DriftModel::for_tech(tech);
            assert!(m.nu_mean > 0.0 && m.nu_std > 0.0 && m.t0 > 0.0, "{tech}: {m:?}");
            // Usable: decays, but does not annihilate the conductance.
            let factor = m.mean_factor(t);
            assert!(factor < 1.0 && factor > 0.1, "{tech}: day factor {factor}");
        }
        // FeFET sits between the RRAM and PCM presets.
        let day = |m: DriftModel| m.mean_factor(t);
        assert!(day(DriftModel::pcm()) < day(DriftModel::fefet()));
        assert!(day(DriftModel::fefet()) < day(DriftModel::rram()));
    }

    #[test]
    fn apply_shifts_population_down() {
        let m = DriftModel::pcm();
        let mut rng = Prng::seed_from_u64(1);
        let mut g = vec![8.0f64; 10_000];
        m.apply(&mut g, 3600.0, &mut rng);
        let mean = g.iter().sum::<f64>() / g.len() as f64;
        let expected = 8.0 * m.mean_factor(3600.0);
        // Jensen gap is small at these exponents.
        assert!((mean - expected).abs() < 0.05 * expected, "mean {mean} vs {expected}");
        assert!(g.iter().all(|&v| v > 0.0 && v <= 8.0));
    }

    #[test]
    fn exponents_never_negative() {
        let m = DriftModel { nu_mean: 0.0, nu_std: 0.05, t0: 1.0 };
        let mut rng = Prng::seed_from_u64(2);
        for _ in 0..1000 {
            assert!(m.sample_exponent(&mut rng) >= 0.0);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let m = DriftModel::pcm();
        let mut a = vec![5.0f64; 16];
        let mut b = vec![5.0f64; 16];
        m.apply(&mut a, 100.0, &mut Prng::seed_from_u64(3));
        m.apply(&mut b, 100.0, &mut Prng::seed_from_u64(3));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_nonpositive_time() {
        DriftModel::pcm().decay(1.0, 0.05, 0.0);
    }
}
