//! Programming whole weight tensors onto devices.
//!
//! [`WeightMapper`] is the bridge between the network world (quantized
//! signed weight codes) and the device world (K-bit conductance levels):
//! each code's magnitude is bit-sliced ([`DeviceSlicing`], Eqs. 14–15),
//! every slice is programmed — with or without write-verify per a
//! selection mask — and the (noisy) weight code is reconstructed. Pulse
//! counts are accumulated exactly, which is what the paper's
//! *normalized write cycles* metric is computed from.

use std::cell::RefCell;
use std::fmt;
use std::sync::Arc;

use crate::device::DeviceConfig;
use crate::model::{default_device_model, DeviceModel};
use swim_quant::DeviceSlicing;
use swim_tensor::Prng;

/// Unverified weights are programmed in runs of at most this many weights
/// through [`DeviceModel::program_once_bulk`], so the SIMD-friendly batch
/// stays small enough to live in cache.
const BULK_RUN_WEIGHTS: usize = 256;

thread_local! {
    /// Reused (slice-level targets, programmed conductances) staging
    /// buffers for the bulk programming path — per worker thread, so the
    /// Monte Carlo harness stays allocation-free in steady state.
    static BULK_BUFFERS: RefCell<(Vec<f64>, Vec<f64>)> =
        const { RefCell::new((Vec::new(), Vec::new())) };
}

/// Aggregate result of programming a weight tensor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ProgramSummary {
    /// Pulses spent on write-verified weights.
    pub verify_pulses: u64,
    /// Pulses spent on plain (unverified) programming.
    ///
    /// The paper treats the initial bulk write as free (it happens in
    /// parallel, NWC = 0 means "no write-verify"); the count is reported
    /// separately so callers can choose either accounting.
    pub bulk_pulses: u64,
    /// Number of weights that were write-verified.
    pub verified_weights: u64,
    /// Total number of weights programmed.
    pub total_weights: u64,
}

impl ProgramSummary {
    /// Merges another summary into this one.
    pub fn merge(&mut self, other: &ProgramSummary) {
        self.verify_pulses += other.verify_pulses;
        self.bulk_pulses += other.bulk_pulses;
        self.verified_weights += other.verified_weights;
        self.total_weights += other.total_weights;
    }
}

/// Programs quantized weight codes onto bit-sliced NVM devices.
///
/// # Example
///
/// ```
/// use swim_cim::device::DeviceConfig;
/// use swim_cim::mapping::WeightMapper;
/// use swim_tensor::Prng;
///
/// let mapper = WeightMapper::new(4, DeviceConfig::rram());
/// let codes = vec![3, -7, 0, 15];
/// let mut rng = Prng::seed_from_u64(1);
/// // Write-verify only the second weight.
/// let (noisy, summary) = mapper.program(&codes, Some(&[false, true, false, false]), &mut rng);
/// assert_eq!(noisy.len(), 4);
/// assert_eq!(summary.verified_weights, 1);
/// assert!((noisy[1] - -7.0).abs() <= mapper.config().level_margin());
/// ```
#[derive(Clone)]
pub struct WeightMapper {
    slicing: DeviceSlicing,
    config: DeviceConfig,
    model: Arc<dyn DeviceModel>,
}

impl fmt::Debug for WeightMapper {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WeightMapper")
            .field("slicing", &self.slicing)
            .field("config", &self.config)
            .field("model", &self.model.key())
            .finish()
    }
}

impl PartialEq for WeightMapper {
    fn eq(&self, other: &Self) -> bool {
        self.slicing == other.slicing
            && self.config == other.config
            && self.model.key() == other.model.key()
    }
}

impl WeightMapper {
    /// Creates a mapper for `weight_bits`-bit magnitudes on devices of
    /// `config.device_bits` bits, programming through the default
    /// (bit-identical RRAM Gaussian) device model.
    ///
    /// # Panics
    ///
    /// Panics if the bit widths are inconsistent (see
    /// [`DeviceSlicing::new`]).
    pub fn new(weight_bits: u32, config: DeviceConfig) -> Self {
        Self::with_model(weight_bits, config, default_device_model())
    }

    /// Creates a mapper programming through an explicit
    /// [`DeviceModel`] from the zoo.
    ///
    /// # Panics
    ///
    /// Panics if the bit widths are inconsistent (see
    /// [`DeviceSlicing::new`]).
    pub fn with_model(weight_bits: u32, config: DeviceConfig, model: Arc<dyn DeviceModel>) -> Self {
        config.validate();
        WeightMapper { slicing: DeviceSlicing::new(weight_bits, config.device_bits), config, model }
    }

    /// The bit-slicing in use.
    pub fn slicing(&self) -> DeviceSlicing {
        self.slicing
    }

    /// The device configuration in use.
    pub fn config(&self) -> &DeviceConfig {
        &self.config
    }

    /// The device model programming every slice.
    pub fn model(&self) -> &Arc<dyn DeviceModel> {
        &self.model
    }

    /// Effective std of the weight-code error for a *single uncorrected
    /// write*, in weight-code units: `σ·(2^K−1)·√(Σ_i 2^{2iK})` (Eq. 16
    /// with σ expressed as a fraction of device full scale).
    pub fn weight_code_sigma(&self) -> f64 {
        self.config.level_sigma() * self.slicing.std_amplification()
    }

    /// Programs one signed weight code; returns the reconstructed noisy
    /// code and the pulses spent.
    ///
    /// Runs allocation-free: device levels are sliced and the noisy code
    /// reconstructed on the fly (same per-device order and summation
    /// order as `slice` + `reconstruct`, so results are bit-identical to
    /// the collect-then-reconstruct formulation) — this is the innermost
    /// loop of every Monte Carlo run.
    pub fn program_weight(&self, code: i32, verify: bool, rng: &mut Prng) -> (f64, u64) {
        let magnitude = self.checked_magnitude(code);
        let sign = if code < 0 { -1.0 } else { 1.0 };
        let mut pulses = 0u64;
        let mut reconstructed = 0.0f64;
        for i in 0..self.slicing.num_devices() {
            let level = self.slicing.slice_level(magnitude, i);
            let outcome = if verify {
                self.model.write_verify(level as f64, &self.config, rng)
            } else {
                self.model.program_once(level as f64, &self.config, rng)
            };
            pulses += outcome.pulses;
            reconstructed += outcome.value * self.slicing.significance(i);
        }
        (sign * reconstructed, pulses)
    }

    /// Programs a slice of signed weight codes.
    ///
    /// `selection[i] == true` write-verifies weight `i`; `None` programs
    /// everything without verification. Returns the noisy codes and the
    /// pulse accounting.
    ///
    /// # Panics
    ///
    /// Panics if `selection` is provided with a different length than
    /// `codes`.
    pub fn program(
        &self,
        codes: &[i32],
        selection: Option<&[bool]>,
        rng: &mut Prng,
    ) -> (Vec<f64>, ProgramSummary) {
        let mut noisy = Vec::new();
        let summary = self.program_into(codes, selection, rng, &mut noisy);
        (noisy, summary)
    }

    /// [`WeightMapper::program`] into a caller-owned buffer.
    ///
    /// `out` is cleared and refilled, reusing its capacity — the Monte
    /// Carlo harness calls this once per run with a per-worker buffer, so
    /// steady-state programming performs no heap allocation. Draws from
    /// `rng` in exactly the same order as `program`.
    ///
    /// # Panics
    ///
    /// Panics if `selection` is provided with a different length than
    /// `codes`.
    pub fn program_into(
        &self,
        codes: &[i32],
        selection: Option<&[bool]>,
        rng: &mut Prng,
        out: &mut Vec<f64>,
    ) -> ProgramSummary {
        if let Some(sel) = selection {
            assert_eq!(sel.len(), codes.len(), "selection mask length mismatch");
        }
        let mut summary =
            ProgramSummary { total_weights: codes.len() as u64, ..Default::default() };
        out.clear();
        out.reserve(codes.len());
        // Maximal runs of unverified weights go through the model's bulk
        // path (bit-identical to weight-at-a-time programming, same RNG
        // stream); each verified weight flushes the pending run first so
        // draw order is preserved exactly.
        BULK_BUFFERS.with(|buffers| {
            let (targets, values) = &mut *buffers.borrow_mut();
            let mut run_start = 0usize;
            for (i, &code) in codes.iter().enumerate() {
                if selection.map(|s| s[i]).unwrap_or(false) {
                    self.flush_bulk_run(
                        &codes[run_start..i],
                        targets,
                        values,
                        rng,
                        out,
                        &mut summary,
                    );
                    run_start = i + 1;
                    let (value, pulses) = self.program_weight(code, true, rng);
                    summary.verify_pulses += pulses;
                    summary.verified_weights += 1;
                    out.push(value);
                } else if i + 1 - run_start == BULK_RUN_WEIGHTS {
                    self.flush_bulk_run(
                        &codes[run_start..=i],
                        targets,
                        values,
                        rng,
                        out,
                        &mut summary,
                    );
                    run_start = i + 1;
                }
            }
            self.flush_bulk_run(&codes[run_start..], targets, values, rng, out, &mut summary);
        });
        summary
    }

    /// Programs one run of unverified weights through the model's bulk
    /// path: slice levels are laid out weight-major/device-minor (the
    /// exact order the per-weight loop would draw in), and each weight is
    /// reconstructed with the same per-device summation order as
    /// [`WeightMapper::program_weight`].
    fn flush_bulk_run(
        &self,
        codes: &[i32],
        targets: &mut Vec<f64>,
        values: &mut Vec<f64>,
        rng: &mut Prng,
        out: &mut Vec<f64>,
        summary: &mut ProgramSummary,
    ) {
        if codes.is_empty() {
            return;
        }
        let devices = self.slicing.num_devices();
        targets.clear();
        for &code in codes {
            let magnitude = self.checked_magnitude(code);
            for d in 0..devices {
                targets.push(self.slicing.slice_level(magnitude, d) as f64);
            }
        }
        values.clear();
        summary.bulk_pulses += self.model.program_once_bulk(targets, &self.config, rng, values);
        for (w, &code) in codes.iter().enumerate() {
            let sign = if code < 0 { -1.0 } else { 1.0 };
            let mut reconstructed = 0.0f64;
            for d in 0..devices {
                reconstructed += values[w * devices + d] * self.slicing.significance(d);
            }
            out.push(sign * reconstructed);
        }
    }

    fn checked_magnitude(&self, code: i32) -> u32 {
        let max_code = (1i64 << self.slicing.weight_bits()) - 1;
        assert!(
            (code as i64).abs() <= max_code,
            "code {code} does not fit in {} bits",
            self.slicing.weight_bits()
        );
        code.unsigned_abs()
    }

    /// Pulses needed to write-verify *all* `codes` — the NWC = 1.0
    /// denominator. Simulated exactly with its own RNG stream so the
    /// denominator does not perturb the experiment's noise draws.
    pub fn write_verify_all_cost(&self, codes: &[i32], rng: &mut Prng) -> u64 {
        let all = vec![true; codes.len()];
        let (_, summary) = self.program(codes, Some(&all), rng);
        summary.verify_pulses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mapper() -> WeightMapper {
        WeightMapper::new(4, DeviceConfig::rram())
    }

    #[test]
    fn verified_weights_land_within_margin() {
        let m = mapper();
        let mut rng = Prng::seed_from_u64(1);
        for code in [-15i32, -3, 0, 7, 15] {
            let (value, pulses) = m.program_weight(code, true, &mut rng);
            assert!(
                (value - code as f64).abs() <= m.config().level_margin() + 1e-12,
                "code {code} -> {value}"
            );
            assert!(pulses >= 1);
        }
    }

    #[test]
    fn unverified_error_has_eq16_sigma() {
        // 8-bit weights on 4-bit devices: sigma_w = sigma * sqrt(1+2^8).
        let m = WeightMapper::new(8, DeviceConfig::rram());
        let mut rng = Prng::seed_from_u64(2);
        let n = 40_000;
        let codes = vec![100i32; n];
        let (noisy, summary) = m.program(&codes, None, &mut rng);
        let mean: f64 = noisy.iter().map(|&v| v - 100.0).sum::<f64>() / n as f64;
        let var: f64 = noisy.iter().map(|&v| (v - 100.0 - mean).powi(2)).sum::<f64>() / n as f64;
        let expected = m.weight_code_sigma();
        assert!(
            (var.sqrt() - expected).abs() < 0.05 * expected,
            "std {} vs {expected}",
            var.sqrt()
        );
        // Two devices per weight, one pulse each.
        assert_eq!(summary.bulk_pulses, 2 * n as u64);
    }

    #[test]
    fn sign_is_preserved() {
        let m = mapper();
        let mut rng = Prng::seed_from_u64(3);
        let (pos, _) = m.program_weight(9, true, &mut rng);
        let (neg, _) = m.program_weight(-9, true, &mut rng);
        assert!(pos > 0.0);
        assert!(neg < 0.0);
    }

    #[test]
    fn selection_mask_controls_cost() {
        let m = mapper();
        let mut rng = Prng::seed_from_u64(4);
        let codes: Vec<i32> = (0..1000).map(|i| i % 16).collect();
        let half: Vec<bool> = (0..1000).map(|i| i < 500).collect();
        let (_, s) = m.program(&codes, Some(&half), &mut rng);
        assert_eq!(s.verified_weights, 500);
        assert_eq!(s.total_weights, 1000);
        assert_eq!(s.bulk_pulses, 500); // 1 device per 4-bit weight
        assert!(s.verify_pulses > s.bulk_pulses); // verify costs ~10x
    }

    #[test]
    fn write_verify_all_cost_scales_linearly() {
        let m = mapper();
        let mut rng = Prng::seed_from_u64(5);
        let codes: Vec<i32> = (0..20_000).map(|i| i % 16).collect();
        let c_full = m.write_verify_all_cost(&codes, &mut rng) as f64;
        let c_half = m.write_verify_all_cost(&codes[..10_000], &mut rng) as f64;
        let ratio = c_full / c_half;
        assert!((ratio - 2.0).abs() < 0.15, "ratio {ratio}");
        // And the per-weight cost sits at the paper's ~10 cycles.
        let per_weight = c_full / 20_000.0;
        assert!((8.0..12.0).contains(&per_weight), "per-weight cost {per_weight}");
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn rejects_oversized_code() {
        let m = mapper();
        m.program_weight(16, false, &mut Prng::seed_from_u64(6));
    }

    #[test]
    fn program_into_matches_program_and_reuses_buffer() {
        let m = mapper();
        let codes: Vec<i32> = (0..500).map(|i| (i % 31) - 15).collect();
        let sel: Vec<bool> = (0..500).map(|i| i % 3 == 0).collect();
        let (fresh, s1) = m.program(&codes, Some(&sel), &mut Prng::seed_from_u64(9));
        let mut buf = vec![99.0f64; 1000]; // stale, oversized
        let s2 = m.program_into(&codes, Some(&sel), &mut Prng::seed_from_u64(9), &mut buf);
        assert_eq!(fresh, buf);
        assert_eq!(s1, s2);
    }

    #[test]
    fn bulk_runs_are_bit_identical_to_the_per_weight_loop() {
        // Lengths straddle the BULK_RUN_WEIGHTS cap; the mixed selection
        // forces mid-stream flushes.
        let m = mapper();
        for (len, sel) in [
            (0usize, None),
            (1, None),
            (300, None),
            (700, None),
            (700, Some((0..700).map(|i| i % 7 == 0).collect::<Vec<bool>>())),
        ] {
            let codes: Vec<i32> = (0..len as i32).map(|i| (i % 31) - 15).collect();
            let mut bulk_rng = Prng::seed_from_u64(77);
            let mut ref_rng = Prng::seed_from_u64(77);
            let mut bulk = Vec::new();
            let summary = m.program_into(&codes, sel.as_deref(), &mut bulk_rng, &mut bulk);
            let mut reference = Vec::new();
            let mut ref_summary =
                ProgramSummary { total_weights: codes.len() as u64, ..Default::default() };
            for (i, &code) in codes.iter().enumerate() {
                let verify = sel.as_deref().map(|s| s[i]).unwrap_or(false);
                let (value, pulses) = m.program_weight(code, verify, &mut ref_rng);
                if verify {
                    ref_summary.verify_pulses += pulses;
                    ref_summary.verified_weights += 1;
                } else {
                    ref_summary.bulk_pulses += pulses;
                }
                reference.push(value);
            }
            for (a, b) in bulk.iter().zip(&reference) {
                assert_eq!(a.to_bits(), b.to_bits(), "len {len}");
            }
            assert_eq!(bulk.len(), reference.len(), "len {len}");
            assert_eq!(summary, ref_summary, "len {len}");
            assert_eq!(bulk_rng.next_u64(), ref_rng.next_u64(), "len {len}: stream diverged");
        }
    }

    #[test]
    fn default_model_matches_explicit_rram_gaussian() {
        let codes: Vec<i32> = (0..200).map(|i| (i % 31) - 15).collect();
        let sel: Vec<bool> = (0..200).map(|i| i % 2 == 0).collect();
        let a = mapper();
        let b =
            WeightMapper::with_model(4, DeviceConfig::rram(), Arc::new(crate::model::RramGaussian));
        assert_eq!(a, b);
        let (va, sa) = a.program(&codes, Some(&sel), &mut Prng::seed_from_u64(21));
        let (vb, sb) = b.program(&codes, Some(&sel), &mut Prng::seed_from_u64(21));
        assert_eq!(va, vb);
        assert_eq!(sa, sb);
    }

    #[test]
    fn model_choice_changes_programming() {
        let codes: Vec<i32> = (0..200).map(|i| i % 16).collect();
        let rram = mapper();
        let mram = WeightMapper::with_model(
            4,
            DeviceConfig::rram(),
            Arc::new(crate::model::MramStochastic::default()),
        );
        assert_ne!(rram, mram);
        let (va, _) = rram.program(&codes, None, &mut Prng::seed_from_u64(22));
        let (vb, _) = mram.program(&codes, None, &mut Prng::seed_from_u64(22));
        assert_ne!(va, vb);
    }

    #[test]
    fn summary_merge_adds() {
        let mut a = ProgramSummary {
            verify_pulses: 10,
            bulk_pulses: 5,
            verified_weights: 2,
            total_weights: 7,
        };
        a.merge(&ProgramSummary {
            verify_pulses: 1,
            bulk_pulses: 2,
            verified_weights: 3,
            total_weights: 4,
        });
        assert_eq!(a.verify_pulses, 11);
        assert_eq!(a.bulk_pulses, 7);
        assert_eq!(a.verified_weights, 5);
        assert_eq!(a.total_weights, 11);
    }
}
