//! Wall-clock and energy cost of programming.
//!
//! The paper's motivation is *programming time*: "Programming even a
//! ResNet-18 for CIFAR-10 to an nvCiM platform can take more than one
//! week" (§1, after ref \[8\]), because write-verify is performed
//! individually per weight while plain writes happen in parallel. This
//! model converts the exact pulse counts produced by
//! [`crate::mapping::WeightMapper`] into seconds and joules, so
//! experiment outputs can report the quantity the paper actually argues
//! about.

use crate::mapping::ProgramSummary;
use std::fmt;

/// Per-operation timing/energy parameters.
///
/// The default `effective_pulse_time` is calibrated against the paper's
/// week-scale claim: ResNet-18 (1.12×10⁷ weights) at ~10 write-verify
/// cycles each is ≈1.1×10⁸ serial pulses; "more than one week"
/// (>6×10⁵ s) then implies ≳5 ms per verify-loop pulse (device pulse +
/// addressing + verify read + settling). Plain bulk writes are performed
/// in parallel across a crossbar row, amortizing their effective time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Effective serial time per write-verify pulse, seconds.
    pub effective_pulse_time: f64,
    /// Energy per programming pulse, joules.
    pub pulse_energy: f64,
    /// Parallelism factor for bulk (unverified) writes — how many devices
    /// program simultaneously.
    pub bulk_parallelism: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel { effective_pulse_time: 5e-3, pulse_energy: 10e-12, bulk_parallelism: 128.0 }
    }
}

/// A programming cost estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostEstimate {
    /// Wall-clock programming time, seconds.
    pub seconds: f64,
    /// Total programming energy, joules.
    pub joules: f64,
}

impl CostEstimate {
    /// Formats the duration with a human-scale unit.
    pub fn human_time(&self) -> String {
        let s = self.seconds;
        if s < 60.0 {
            format!("{s:.1} s")
        } else if s < 3600.0 {
            format!("{:.1} min", s / 60.0)
        } else if s < 86_400.0 {
            format!("{:.1} h", s / 3600.0)
        } else {
            format!("{:.1} days", s / 86_400.0)
        }
    }
}

impl fmt::Display for CostEstimate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} / {:.2e} J", self.human_time(), self.joules)
    }
}

impl CostModel {
    /// Estimates the cost of a programming run from its pulse summary.
    ///
    /// Verify-loop pulses are serial; bulk pulses are divided by the
    /// parallelism factor.
    pub fn estimate(&self, summary: &ProgramSummary) -> CostEstimate {
        let serial = summary.verify_pulses as f64 * self.effective_pulse_time;
        let parallel =
            summary.bulk_pulses as f64 * self.effective_pulse_time / self.bulk_parallelism.max(1.0);
        let joules = (summary.verify_pulses + summary.bulk_pulses) as f64 * self.pulse_energy;
        CostEstimate { seconds: serial + parallel, joules }
    }

    /// Estimated time to write-verify `weights` weights at `cycles`
    /// average pulses each (the paper's back-of-envelope form).
    pub fn full_write_verify_time(&self, weights: u64, cycles: f64) -> CostEstimate {
        let pulses = weights as f64 * cycles;
        CostEstimate {
            seconds: pulses * self.effective_pulse_time,
            joules: pulses * self.pulse_energy,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resnet18_full_write_verify_is_week_scale() {
        // The paper's §1 claim: ResNet-18 (1.12e7 weights) "more than one
        // week" with full write-verify.
        let cost = CostModel::default().full_write_verify_time(11_200_000, 10.0);
        let days = cost.seconds / 86_400.0;
        assert!((5.0..10.0).contains(&days), "expected ~1 week, got {days:.1} days");
        assert!(cost.human_time().contains("days"));
    }

    #[test]
    fn selective_write_verify_scales_down_linearly() {
        let model = CostModel::default();
        let full = ProgramSummary {
            verify_pulses: 1_000_000,
            bulk_pulses: 0,
            verified_weights: 100_000,
            total_weights: 100_000,
        };
        let tenth = ProgramSummary {
            verify_pulses: 100_000,
            bulk_pulses: 90_000,
            verified_weights: 10_000,
            total_weights: 100_000,
        };
        let t_full = model.estimate(&full).seconds;
        let t_tenth = model.estimate(&tenth).seconds;
        // The 10x pulse reduction dominates; bulk writes are ~free.
        assert!(t_tenth < 0.11 * t_full, "{t_tenth} vs {t_full}");
    }

    #[test]
    fn bulk_writes_amortized_by_parallelism() {
        let model = CostModel::default();
        let bulk_only = ProgramSummary {
            verify_pulses: 0,
            bulk_pulses: 128_000,
            verified_weights: 0,
            total_weights: 128_000,
        };
        let est = model.estimate(&bulk_only);
        // 128k pulses / 128 parallel = 1000 serial slots.
        assert!((est.seconds - 1000.0 * model.effective_pulse_time).abs() < 1e-9);
    }

    #[test]
    fn energy_counts_every_pulse() {
        let model = CostModel { pulse_energy: 2.0, ..Default::default() };
        let s = ProgramSummary {
            verify_pulses: 3,
            bulk_pulses: 4,
            verified_weights: 1,
            total_weights: 2,
        };
        assert_eq!(model.estimate(&s).joules, 14.0);
    }

    #[test]
    fn human_time_units() {
        let mk = |seconds| CostEstimate { seconds, joules: 0.0 };
        assert!(mk(5.0).human_time().ends_with(" s"));
        assert!(mk(120.0).human_time().ends_with(" min"));
        assert!(mk(7200.0).human_time().ends_with(" h"));
        assert!(mk(200_000.0).human_time().ends_with(" days"));
    }
}
