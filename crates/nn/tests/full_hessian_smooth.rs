//! Validation of the *full* Eq. 9 second-order rule through smooth
//! activations: unlike ReLU (where `g'' = 0` collapses Eq. 9 to Eq. 10),
//! tanh/sigmoid need the curvature term `g''·∂f/∂P`, which
//! `Network::accumulate_hessian_full` supplies by running a first-order
//! backward pass before the second-order one.

use swim_nn::finite_diff::hessian_diag_fd;
use swim_nn::layers::{Linear, Sequential, Smooth, SmoothActivation};
use swim_nn::loss::L2Loss;
use swim_nn::network::Network;
use swim_tensor::stats::pearson;
use swim_tensor::{Prng, Tensor};

/// 1-wide tanh chain: single path per weight, so the recursion with the
/// curvature term must match finite differences *exactly* (up to FD
/// error) — and the Gauss-Newton variant must NOT, proving the term
/// matters.
#[test]
fn tanh_chain_needs_curvature_term() {
    let mut rng = Prng::seed_from_u64(1);
    let build = |rng: &mut Prng| {
        let mut seq = Sequential::new();
        seq.push(Linear::new(1, 1, rng));
        seq.push(SmoothActivation::new(Smooth::Tanh));
        seq.push(Linear::new(1, 1, rng));
        Network::new("chain", seq)
    };
    let mut net = build(&mut rng);
    // Operate away from the origin so tanh'' is materially nonzero.
    let scaled: Vec<f32> = net.device_weights().iter().map(|&w| w * 3.0 + 0.5).collect();
    net.set_device_weights(&scaled);

    let x = Tensor::from_vec(vec![0.9, -0.4, 1.3], &[3, 1]).unwrap();
    let y = vec![0usize, 0, 0];
    let loss = L2Loss::new();

    let fd = hessian_diag_fd(&mut net, &loss, &x, &y, 5e-3);

    // Full rule.
    net.zero_hess();
    net.zero_grads();
    net.accumulate_hessian_full(&loss, &x, &y);
    let full = net.device_hessian();

    // Gauss-Newton (no backward first => no cached gradient).
    let mut gn_net = net.clone();
    gn_net.zero_hess();
    // A fresh forward clears the smooth activations' cached gradients.
    gn_net.accumulate_hessian(&loss, &x, &y);
    let gn = gn_net.device_hessian();

    let mut full_err = 0.0f64;
    let mut gn_err = 0.0f64;
    for i in 0..fd.len() {
        full_err += (full[i] as f64 - fd[i]).abs();
        gn_err += (gn[i] as f64 - fd[i]).abs();
    }
    // The full rule tracks FD tightly on a single-path chain...
    assert!(
        full_err < 0.05 * (1.0 + fd.iter().map(|v| v.abs()).sum::<f64>()),
        "full-rule error too large: {full_err} (fd {fd:?}, full {full:?})"
    );
    // ...and strictly better than Gauss-Newton, which drops g''.
    assert!(full_err < gn_err, "curvature term did not help: full {full_err} vs GN {gn_err}");
}

/// On a wider tanh MLP the diagonal recursion is approximate, but with
/// the curvature term it must still rank weights consistently with the
/// finite-difference truth.
#[test]
fn tanh_mlp_full_rule_correlates_with_fd() {
    let mut rng = Prng::seed_from_u64(2);
    let mut seq = Sequential::new();
    seq.push(Linear::new(4, 6, &mut rng));
    seq.push(SmoothActivation::new(Smooth::Tanh));
    seq.push(Linear::new(6, 2, &mut rng));
    let mut net = Network::new("mlp", seq);
    let x = Tensor::randn(&[6, 4], &mut rng);
    let y = vec![0usize, 1, 0, 1, 0, 1];
    let loss = L2Loss::new();

    net.zero_hess();
    net.zero_grads();
    net.accumulate_hessian_full(&loss, &x, &y);
    let full: Vec<f64> = net.device_hessian().iter().map(|&v| v as f64).collect();
    let fd = hessian_diag_fd(&mut net, &loss, &x, &y, 1e-2);

    let r = pearson(&full, &fd);
    assert!(r > 0.8, "pearson {r}");
}

/// Sigmoid path: the same chain exactness property.
#[test]
fn sigmoid_chain_matches_fd() {
    let mut rng = Prng::seed_from_u64(3);
    let mut seq = Sequential::new();
    seq.push(Linear::new(1, 1, &mut rng));
    seq.push(SmoothActivation::new(Smooth::Sigmoid));
    seq.push(Linear::new(1, 1, &mut rng));
    let mut net = Network::new("chain", seq);
    let scaled: Vec<f32> = net.device_weights().iter().map(|&w| w * 2.0 + 1.0).collect();
    net.set_device_weights(&scaled);

    let x = Tensor::from_vec(vec![0.5, -1.0], &[2, 1]).unwrap();
    let y = vec![0usize, 0];
    let loss = L2Loss::new();

    let fd = hessian_diag_fd(&mut net, &loss, &x, &y, 5e-3);
    net.zero_hess();
    net.zero_grads();
    net.accumulate_hessian_full(&loss, &x, &y);
    let full = net.device_hessian();
    for i in 0..fd.len() {
        assert!(
            (full[i] as f64 - fd[i]).abs() < 2e-2 * (1.0 + fd[i].abs()),
            "w[{i}]: full {} fd {}",
            full[i],
            fd[i]
        );
    }
}

/// For a pure-ReLU network, the full rule and the Gauss-Newton rule give
/// identical Hessian diagonals (g'' = 0): accumulate_hessian_full is a
/// safe default.
#[test]
fn full_rule_equals_plain_on_relu_nets() {
    let mut rng = Prng::seed_from_u64(4);
    let mut seq = Sequential::new();
    seq.push(Linear::new(3, 5, &mut rng));
    seq.push(swim_nn::layers::Relu::new());
    seq.push(Linear::new(5, 2, &mut rng));
    let mut net = Network::new("relu", seq);
    let x = Tensor::randn(&[4, 3], &mut rng);
    let y = vec![0usize, 1, 0, 1];
    let loss = L2Loss::new();

    net.zero_hess();
    net.accumulate_hessian(&loss, &x, &y);
    let plain = net.device_hessian();

    net.zero_hess();
    net.zero_grads();
    net.accumulate_hessian_full(&loss, &x, &y);
    let full = net.device_hessian();
    assert_eq!(plain, full);
}
