//! Bit-identity of the arena-backed forward path.
//!
//! The hard invariant of the activation arena is that
//! `Layer::forward_into` produces *bit-identical* outputs to the
//! fresh-allocation `Layer::forward` — for every built-in layer type, in
//! both `Mode::Train` and `Mode::Eval` — and that the backward passes
//! after an arena forward see exactly the cached activations they would
//! have seen after a fresh forward (same input gradients, same parameter
//! gradient/Hessian accumulators).

use swim_nn::arena::ActivationArena;
use swim_nn::layer::{Layer, Mode};
use swim_nn::layers::{
    ActQuant, AvgPool2d, BatchNorm2d, Conv2d, Flatten, GlobalAvgPool, Linear, MaxPool2d, Relu,
    Residual, Sequential, Smooth, SmoothActivation,
};
use swim_nn::network::Network;
use swim_tensor::{Prng, Tensor};

/// Collects every parameter's gradient and Hessian accumulator.
fn param_state(layer: &mut dyn Layer) -> Vec<(Vec<f32>, Vec<f32>)> {
    let mut out = Vec::new();
    layer.visit_params(&mut |p| out.push((p.grad.data().to_vec(), p.hess.data().to_vec())));
    out
}

/// Drives `fresh` through the allocating path and an identical clone
/// through the arena path — three forward passes (so the arena is warm
/// and reused), then backward and second-order backward — asserting
/// bit-identical outputs, input derivatives, and parameter accumulators
/// at every step.
fn assert_bit_identical(fresh: &mut dyn Layer, input: &Tensor, mode: Mode, label: &str) {
    let mut arena_copy = fresh.clone_layer();
    let mut arena = ActivationArena::new();

    for pass in 0..3 {
        let y_fresh = fresh.forward(input, mode);
        let y_arena = arena_copy.forward_into(input, mode, &mut arena);
        assert_eq!(y_fresh.shape(), y_arena.shape(), "{label}: shape, pass {pass}");
        assert_eq!(y_fresh.data(), y_arena.data(), "{label}: forward, pass {pass}");
        arena.recycle(y_arena);
    }

    // Backward passes after the (third) forward must see the same cached
    // activations on both sides.
    let mut rng = Prng::seed_from_u64(0xBAC4);
    let shape = fresh.forward(input, mode).shape().to_vec();
    let y_arena = arena_copy.forward_into(input, mode, &mut arena);
    arena.recycle(y_arena);
    let upstream = Tensor::randn(&shape, &mut rng);

    let g_fresh = fresh.backward(&upstream);
    let g_arena = arena_copy.backward(&upstream);
    assert_eq!(g_fresh.data(), g_arena.data(), "{label}: backward");

    let h_fresh = fresh.second_backward(&upstream);
    let h_arena = arena_copy.second_backward(&upstream);
    assert_eq!(h_fresh.data(), h_arena.data(), "{label}: second_backward");

    let fresh_params = param_state(fresh);
    let arena_params = param_state(arena_copy.as_mut());
    assert_eq!(fresh_params, arena_params, "{label}: parameter grad/hess");
}

fn both_modes(mut layer: Box<dyn Layer>, input: &Tensor, label: &str) {
    for mode in [Mode::Train, Mode::Eval] {
        assert_bit_identical(layer.as_mut(), input, mode, &format!("{label}/{mode:?}"));
    }
}

#[test]
fn linear_is_bit_identical() {
    let mut rng = Prng::seed_from_u64(1);
    let layer = Linear::new(5, 7, &mut rng);
    let x = Tensor::randn(&[4, 5], &mut rng);
    both_modes(Box::new(layer), &x, "Linear");
}

#[test]
fn conv2d_is_bit_identical() {
    let mut rng = Prng::seed_from_u64(2);
    for &(cin, cout, k, s, p, h, w) in
        &[(2usize, 3usize, 3usize, 1usize, 1usize, 6usize, 6usize), (1, 2, 3, 2, 0, 7, 5)]
    {
        let layer = Conv2d::new(cin, cout, k, s, p, &mut rng);
        let x = Tensor::randn(&[3, cin, h, w], &mut rng);
        both_modes(Box::new(layer), &x, &format!("Conv2d(k{k},s{s},p{p})"));
    }
}

#[test]
fn relu_is_bit_identical() {
    let mut rng = Prng::seed_from_u64(3);
    let x = Tensor::randn(&[4, 9], &mut rng);
    both_modes(Box::new(Relu::new()), &x, "ReLU");
}

#[test]
fn smooth_activations_are_bit_identical() {
    let mut rng = Prng::seed_from_u64(4);
    let x = Tensor::randn(&[3, 6], &mut rng);
    both_modes(Box::new(SmoothActivation::new(Smooth::Tanh)), &x, "Tanh");
    both_modes(Box::new(SmoothActivation::new(Smooth::Sigmoid)), &x, "Sigmoid");
}

#[test]
fn pools_are_bit_identical() {
    let mut rng = Prng::seed_from_u64(5);
    let x = Tensor::randn(&[2, 3, 6, 6], &mut rng);
    both_modes(Box::new(MaxPool2d::new(2)), &x, "MaxPool2d");
    both_modes(Box::new(AvgPool2d::new(3)), &x, "AvgPool2d");
    both_modes(Box::new(GlobalAvgPool::new()), &x, "GlobalAvgPool");
}

#[test]
fn batchnorm_is_bit_identical() {
    // Train mode also advances the running statistics on both copies —
    // they must stay in lockstep across the repeated passes.
    let mut rng = Prng::seed_from_u64(6);
    let x = Tensor::from_fn(&[4, 3, 4, 4], |_| rng.normal_f32(1.5, 2.0));
    both_modes(Box::new(BatchNorm2d::new(3)), &x, "BatchNorm2d");
}

#[test]
fn flatten_and_actquant_are_bit_identical() {
    let mut rng = Prng::seed_from_u64(7);
    let x = Tensor::randn(&[3, 2, 4, 4], &mut rng);
    both_modes(Box::new(Flatten::new()), &x, "Flatten");
    let flat = Tensor::randn(&[3, 10], &mut rng);
    both_modes(Box::new(ActQuant::new(4)), &flat, "ActQuant/signed");
    both_modes(Box::new(ActQuant::unsigned(4)), &flat, "ActQuant/unsigned");
}

#[test]
fn residual_blocks_are_bit_identical() {
    let mut rng = Prng::seed_from_u64(8);
    let x = Tensor::randn(&[2, 3, 4, 4], &mut rng);

    let mut main = Sequential::new();
    main.push(Conv2d::new(3, 3, 3, 1, 1, &mut rng));
    both_modes(Box::new(Residual::new(main)), &x, "Residual/identity");

    let mut main = Sequential::new();
    main.push(Conv2d::new(3, 4, 3, 1, 1, &mut rng));
    let mut shortcut = Sequential::new();
    shortcut.push(Conv2d::new(3, 4, 1, 1, 0, &mut rng));
    both_modes(Box::new(Residual::with_shortcut(main, shortcut)), &x, "Residual/projection");
}

#[test]
fn sequential_stack_is_bit_identical() {
    let mut rng = Prng::seed_from_u64(9);
    let mut seq = Sequential::new();
    seq.push(Conv2d::new(1, 3, 3, 1, 1, &mut rng));
    seq.push(Relu::new());
    seq.push(ActQuant::unsigned(4));
    seq.push(MaxPool2d::new(2));
    seq.push(BatchNorm2d::new(3));
    seq.push(Flatten::new());
    seq.push(Linear::new(3 * 4 * 4, 6, &mut rng));
    seq.push(SmoothActivation::new(Smooth::Tanh));
    seq.push(Linear::new(6, 3, &mut rng));
    let x = Tensor::randn(&[5, 1, 8, 8], &mut rng);
    both_modes(Box::new(seq), &x, "Sequential/lenet-ish");
}

#[test]
fn empty_sequential_copies_input() {
    let mut seq = Sequential::new();
    let mut arena = ActivationArena::new();
    let x = Tensor::from_vec(vec![1.0, -2.0, 3.0], &[3]).unwrap();
    let y = seq.forward_into(&x, Mode::Eval, &mut arena);
    assert_eq!(y, x);
}

#[test]
fn sequential_chain_settles_into_ping_pong() {
    // After recycling the final output, a purely sequential network
    // parks exactly two buffers in the arena — the double-buffer pair —
    // and repeated passes neither grow nor shrink the pool.
    let mut rng = Prng::seed_from_u64(10);
    let mut seq = Sequential::new();
    seq.push(Linear::new(8, 16, &mut rng));
    seq.push(Relu::new());
    seq.push(Linear::new(16, 16, &mut rng));
    seq.push(Relu::new());
    seq.push(Linear::new(16, 4, &mut rng));
    let x = Tensor::randn(&[6, 8], &mut rng);
    let mut arena = ActivationArena::new();
    for _ in 0..4 {
        let y = seq.forward_into(&x, Mode::Eval, &mut arena);
        arena.recycle(y);
        assert_eq!(arena.pooled(), 2, "sequential chain should double-buffer");
    }
}

#[test]
fn network_accuracy_with_matches_accuracy() {
    let mut rng = Prng::seed_from_u64(11);
    let mut seq = Sequential::new();
    seq.push(Flatten::new());
    seq.push(Linear::new(12, 10, &mut rng));
    seq.push(Relu::new());
    seq.push(Linear::new(10, 3, &mut rng));
    let mut net = Network::new("acc", seq);
    let images = Tensor::randn(&[23, 1, 3, 4], &mut rng);
    let labels: Vec<usize> = (0..23).map(|i| i % 3).collect();
    let mut arena = ActivationArena::new();
    // Uneven final batch exercises the shrinking batch buffer.
    for batch in [4usize, 7, 23, 64] {
        let fresh = net.accuracy(&images, &labels, batch);
        let pooled = net.accuracy_with(&images, &labels, batch, &mut arena);
        assert_eq!(fresh, pooled, "batch {batch}");
    }
}

#[test]
fn default_shim_keeps_exotic_layers_working() {
    /// A layer that does not implement `forward_into`.
    #[derive(Clone)]
    struct Doubler;
    impl Layer for Doubler {
        fn forward(&mut self, input: &Tensor, _mode: Mode) -> Tensor {
            input.map(|x| 2.0 * x)
        }
        fn backward(&mut self, grad_output: &Tensor) -> Tensor {
            grad_output.map(|g| 2.0 * g)
        }
        fn second_backward(&mut self, hess_output: &Tensor) -> Tensor {
            hess_output.map(|h| 4.0 * h)
        }
        fn visit_params(&mut self, _visitor: &mut dyn FnMut(&mut swim_nn::Param)) {}
        fn describe(&self) -> String {
            "Doubler".into()
        }
        fn clone_layer(&self) -> Box<dyn Layer> {
            Box::new(self.clone())
        }
    }

    let mut rng = Prng::seed_from_u64(12);
    let x = Tensor::randn(&[2, 5], &mut rng);
    both_modes(Box::new(Doubler), &x, "Doubler(shim)");

    // And inside a Sequential arena pass, the shim output flows through.
    let mut seq = Sequential::new();
    seq.push(Doubler);
    seq.push(Relu::new());
    let mut arena = ActivationArena::new();
    let via_arena = seq.forward_into(&x, Mode::Eval, &mut arena);
    let fresh = seq.forward(&x, Mode::Eval);
    assert_eq!(via_arena.data(), fresh.data());
}
