//! Validation of the single-pass second-derivative recursion (paper §3.3)
//! against the finite-difference oracle (paper Eq. 6).
//!
//! The recursion is *exact* for the last linear layer and for networks
//! where each output depends on a weight through a single path; upstream
//! of mixing layers it drops cross-path curvature (the same diagonal
//! approximation the paper makes, validated empirically by its Fig. 1b).
//! The tests here check each regime.

use swim_nn::finite_diff::hessian_diag_fd;
use swim_nn::layers::{Conv2d, Flatten, Linear, MaxPool2d, Relu, Sequential};
use swim_nn::loss::{L2Loss, SoftmaxCrossEntropy};
use swim_nn::network::Network;
use swim_tensor::stats::{pearson, spearman};
use swim_tensor::{Prng, Tensor};

/// Chain of 1-wide linear layers: one path per weight, so the recursion
/// must agree with finite differences through arbitrary depth.
#[test]
fn exact_on_single_path_chain() {
    let mut rng = Prng::seed_from_u64(1);
    let mut seq = Sequential::new();
    for _ in 0..4 {
        seq.push(Linear::new(1, 1, &mut rng));
    }
    let mut net = Network::new("chain", seq);
    let x = Tensor::from_vec(vec![0.7, -0.3, 1.2], &[3, 1]).unwrap();
    let y = vec![0usize, 0, 0];
    let loss = L2Loss::new();

    net.zero_hess();
    net.accumulate_hessian(&loss, &x, &y);
    let fast = net.device_hessian();
    let fd = hessian_diag_fd(&mut net, &loss, &x, &y, 1e-2);
    for (i, (&a, &f)) in fast.iter().zip(&fd).enumerate() {
        assert!((a as f64 - f).abs() < 1e-2 * (1.0 + f.abs()), "w[{i}]: fast {a} fd {f}");
    }
}

/// Last-layer exactness on an MLP with softmax cross-entropy: the Eq. 8
/// update uses the exact Hessian seed of Eq. 11.
#[test]
fn exact_on_last_layer_with_cross_entropy() {
    let mut rng = Prng::seed_from_u64(2);
    let mut seq = Sequential::new();
    seq.push(Linear::new(4, 6, &mut rng));
    seq.push(Relu::new());
    seq.push(Linear::new(6, 3, &mut rng));
    let mut net = Network::new("mlp", seq);
    let x = Tensor::randn(&[5, 4], &mut rng);
    let y = vec![0usize, 1, 2, 0, 1];
    let loss = SoftmaxCrossEntropy::new();

    net.zero_hess();
    net.accumulate_hessian(&loss, &x, &y);
    let fast = net.device_hessian();
    let fd = hessian_diag_fd(&mut net, &loss, &x, &y, 2e-2);

    let n = fast.len();
    let last = 6 * 3;
    for i in (n - last)..n {
        let a = fast[i] as f64;
        let f = fd[i];
        assert!((a - f).abs() < 3e-2 * (1.0 + f.abs()), "w[{i}]: fast {a} fd {f}");
    }
}

/// Whole-network agreement in *ranking* on a **trained** model: the
/// recursion drops the softmax Hessian's off-diagonal `−p_j·p_j'` terms
/// and cross-path curvature, an approximation the paper justifies for
/// networks "trained to convergence" (where predictions are peaked and
/// those terms shrink). On a trained MLP the fast sensitivities must
/// correlate strongly with the finite-difference truth, mirroring
/// Fig. 1b's r = 0.83. (On an untrained random net the correlation is
/// near zero — also asserted, because it documents *why* the trained
/// assumption matters.)
#[test]
fn strong_rank_correlation_after_training() {
    let mut rng = Prng::seed_from_u64(3);
    let mut seq = Sequential::new();
    seq.push(Linear::new(6, 10, &mut rng));
    seq.push(Relu::new());
    seq.push(Linear::new(10, 4, &mut rng));
    let mut net = Network::new("mlp", seq);

    // Separable synthetic task: class centroids at random corners.
    let n = 48;
    let mut xs = Vec::new();
    let mut y = Vec::new();
    for i in 0..n {
        let cls = i % 4;
        for d in 0..6 {
            let center = if (cls >> (d % 2)) & 1 == 1 { 1.5 } else { -1.5 };
            xs.push(center as f32 + rng.normal_f32(0.0, 0.3));
        }
        y.push(cls);
    }
    let x = Tensor::from_vec(xs, &[n, 6]).unwrap();
    let loss = SoftmaxCrossEntropy::new();

    // Train to good-but-not-saturated convergence: at extreme convergence
    // the true curvature drops below f32 finite-difference resolution and
    // the comparison becomes vacuous.
    let cfg =
        swim_nn::train::TrainConfig { epochs: 8, batch_size: 16, lr: 0.05, ..Default::default() };
    swim_nn::train::fit(&mut net, &loss, &x, &y, &cfg);
    assert!(net.accuracy(&x, &y, 16) > 0.9, "training substrate failed");

    net.zero_hess();
    net.accumulate_hessian(&loss, &x, &y);
    let fast: Vec<f64> = net.device_hessian().iter().map(|&v| v as f64).collect();
    let fd = hessian_diag_fd(&mut net, &loss, &x, &y, 2e-2);

    let r = pearson(&fast, &fd);
    let rho = spearman(&fast, &fd);
    assert!(r > 0.8, "pearson {r}");
    assert!(rho > 0.6, "spearman {rho}");
}

/// Convolutional network: ranking must survive im2col lowering, pooling
/// routing, and the flatten boundary.
#[test]
fn conv_network_rank_correlation() {
    let mut rng = Prng::seed_from_u64(4);
    let mut seq = Sequential::new();
    seq.push(Conv2d::new(1, 3, 3, 1, 1, &mut rng));
    seq.push(Relu::new());
    seq.push(MaxPool2d::new(2));
    seq.push(Flatten::new());
    seq.push(Linear::new(3 * 4 * 4, 3, &mut rng));
    let mut net = Network::new("cnn", seq);
    let x = Tensor::randn(&[6, 1, 8, 8], &mut rng);
    let y: Vec<usize> = (0..6).map(|i| i % 3).collect();
    let loss = SoftmaxCrossEntropy::new();

    net.zero_hess();
    net.accumulate_hessian(&loss, &x, &y);
    let fast: Vec<f64> = net.device_hessian().iter().map(|&v| v as f64).collect();
    let fd = hessian_diag_fd(&mut net, &loss, &x, &y, 3e-2);

    let rho = spearman(&fast, &fd);
    assert!(rho > 0.7, "spearman {rho}");
    // All sensitivities are non-negative by construction.
    assert!(fast.iter().all(|&v| v >= 0.0));
}

/// The second-order pass must cost about the same as a gradient pass
/// (the paper's efficiency claim): verify it runs in the same ballpark by
/// checking both complete on a mid-sized model without issue, and the
/// Hessian accumulators differ from gradient accumulators.
#[test]
fn second_pass_distinct_from_gradient_pass() {
    let mut rng = Prng::seed_from_u64(5);
    let mut seq = Sequential::new();
    seq.push(Linear::new(8, 16, &mut rng));
    seq.push(Relu::new());
    seq.push(Linear::new(16, 5, &mut rng));
    let mut net = Network::new("m", seq);
    let x = Tensor::randn(&[10, 8], &mut rng);
    let y: Vec<usize> = (0..10).map(|i| i % 5).collect();
    let loss = SoftmaxCrossEntropy::new();

    net.zero_grads();
    net.zero_hess();
    net.accumulate_gradients(&loss, &x, &y);
    net.accumulate_hessian(&loss, &x, &y);
    let g = net.device_gradient();
    let h = net.device_hessian();
    // Gradients can be negative; Hessian diagonals cannot.
    assert!(g.iter().any(|&v| v < 0.0));
    assert!(h.iter().all(|&v| v >= 0.0));
    // And they are genuinely different signals.
    let gd: Vec<f64> = g.iter().map(|&v| v as f64).collect();
    let hd: Vec<f64> = h.iter().map(|&v| v as f64).collect();
    assert!(pearson(&gd, &hd).abs() < 0.99);
}

/// Accumulation across batches equals one big batch (up to reduction
/// scaling): sensitivities can be estimated streaming over the dataset.
#[test]
fn hessian_accumulates_over_batches() {
    let mut rng = Prng::seed_from_u64(6);
    let build = |rng: &mut Prng| {
        let mut seq = Sequential::new();
        seq.push(Linear::new(3, 4, rng));
        seq.push(Relu::new());
        seq.push(Linear::new(4, 2, rng));
        Network::new("m", seq)
    };
    let mut net = build(&mut rng);
    let weights = net.device_weights();
    let x = Tensor::randn(&[8, 3], &mut rng);
    let y: Vec<usize> = (0..8).map(|i| i % 2).collect();
    let loss = SoftmaxCrossEntropy::new();

    // One pass over the full batch.
    net.zero_hess();
    net.accumulate_hessian(&loss, &x, &y);
    let whole = net.device_hessian();

    // Two half batches (each mean-reduced over 4): sum * 0.5 = whole.
    let mut net2 = build(&mut Prng::seed_from_u64(6));
    net2.set_device_weights(&weights);
    net2.zero_hess();
    net2.accumulate_hessian(&loss, &x.slice_axis0(0, 4), &y[..4]);
    net2.accumulate_hessian(&loss, &x.slice_axis0(4, 8), &y[4..]);
    let halves = net2.device_hessian();

    for (i, (&w, &h)) in whole.iter().zip(&halves).enumerate() {
        assert!((w - 0.5 * h).abs() < 1e-4 * (1.0 + w.abs()), "w[{i}]: whole {w} halves {h}");
    }
}
