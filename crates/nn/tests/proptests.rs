//! Property-based tests for layer backward-pass correctness.
//!
//! Each property checks a structural invariant that must hold for *any*
//! input: gradients match finite differences, second derivatives are
//! non-negative where mathematics requires it, and passes are pure
//! functions of (weights, input).

use proptest::prelude::*;
use swim_nn::layers::{
    AvgPool2d, BatchNorm2d, Conv2d, Flatten, Linear, MaxPool2d, Relu, Sequential, Smooth,
    SmoothActivation,
};
use swim_nn::loss::{L2Loss, Loss, SoftmaxCrossEntropy};
use swim_nn::{Layer, Mode, Network};
use swim_tensor::{Prng, Tensor};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Linear-layer gradients agree with finite differences for random
    /// shapes, weights, and inputs.
    #[test]
    fn linear_gradcheck(seed in 0u64..500) {
        let mut rng = Prng::seed_from_u64(seed);
        let n_in = 2 + (seed % 4) as usize;
        let n_out = 2 + (seed % 3) as usize;
        let batch = 1 + (seed % 4) as usize;
        let mut fc = Linear::new(n_in, n_out, &mut rng);
        let x = Tensor::randn(&[batch, n_in], &mut rng);
        fc.forward(&x, Mode::Train);
        let dx = fc.backward(&Tensor::ones(&[batch, n_out]));

        let eps = 1e-2f32;
        for i in 0..(batch * n_in) {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let fp = fc.forward(&xp, Mode::Train).sum();
            let fm = fc.forward(&xm, Mode::Train).sum();
            let fd = (fp - fm) / (2.0 * eps as f64);
            prop_assert!((dx.data()[i] as f64 - fd).abs() < 1e-2 * (1.0 + fd.abs()));
        }
    }

    /// ReLU first- and second-order masks agree for any input.
    #[test]
    fn relu_masks_agree(values in proptest::collection::vec(-3.0f32..3.0, 1..64)) {
        let mut relu = Relu::new();
        let x = Tensor::from_vec(values.clone(), &[values.len()]).expect("sized");
        relu.forward(&x, Mode::Train);
        let g = relu.backward(&Tensor::ones(&[values.len()]));
        let h = relu.second_backward(&Tensor::ones(&[values.len()]));
        prop_assert_eq!(g.data(), h.data());
        for (i, &v) in values.iter().enumerate() {
            prop_assert_eq!(g.data()[i], if v > 0.0 { 1.0 } else { 0.0 });
        }
    }

    /// MaxPool routes exactly the upstream mass it receives (gradient
    /// mass conservation).
    #[test]
    fn maxpool_conserves_mass(seed in 0u64..200) {
        let mut rng = Prng::seed_from_u64(seed);
        let mut pool = MaxPool2d::new(2);
        let x = Tensor::randn(&[2, 3, 4, 4], &mut rng);
        pool.forward(&x, Mode::Train);
        let up = Tensor::randn(&[2, 3, 2, 2], &mut rng);
        let down = pool.backward(&up);
        prop_assert!((down.sum() - up.sum()).abs() < 1e-3);
    }

    /// AvgPool conserves gradient mass too (each window redistributes
    /// its upstream value).
    #[test]
    fn avgpool_conserves_mass(seed in 0u64..200) {
        let mut rng = Prng::seed_from_u64(seed);
        let mut pool = AvgPool2d::new(2);
        let x = Tensor::randn(&[1, 2, 4, 4], &mut rng);
        pool.forward(&x, Mode::Train);
        let up = Tensor::randn(&[1, 2, 2, 2], &mut rng);
        let down = pool.backward(&up);
        prop_assert!((down.sum() - up.sum()).abs() < 1e-3);
    }

    /// Second derivatives of device weights are non-negative for convex
    /// losses through any ReLU CNN (every term in Eq. 8/10 is a square
    /// times a non-negative seed).
    #[test]
    fn hessian_diag_nonnegative(seed in 0u64..100) {
        let mut rng = Prng::seed_from_u64(seed);
        let mut seq = Sequential::new();
        seq.push(Conv2d::new(1, 2, 3, 1, 1, &mut rng));
        seq.push(Relu::new());
        seq.push(MaxPool2d::new(2));
        seq.push(Flatten::new());
        seq.push(Linear::new(2 * 3 * 3, 3, &mut rng));
        let mut net = Network::new("p", seq);
        let x = Tensor::randn(&[3, 1, 6, 6], &mut rng);
        let y = vec![0usize, 1, 2];
        let loss: &dyn Loss = if seed % 2 == 0 {
            &SoftmaxCrossEntropy
        } else {
            &L2Loss
        };
        net.zero_hess();
        net.accumulate_hessian(loss, &x, &y);
        for h in net.device_hessian() {
            prop_assert!(h >= 0.0, "negative diagonal {h}");
        }
    }

    /// Forward passes are pure: same weights + same input => same output,
    /// repeatedly (caches must not leak state into results).
    #[test]
    fn forward_is_pure(seed in 0u64..200) {
        let mut rng = Prng::seed_from_u64(seed);
        let mut seq = Sequential::new();
        seq.push(Conv2d::new(2, 3, 3, 1, 1, &mut rng));
        seq.push(BatchNorm2d::new(3));
        seq.push(Relu::new());
        seq.push(Flatten::new());
        seq.push(Linear::new(3 * 16, 2, &mut rng));
        let mut net = Network::new("pure", seq);
        let x = Tensor::randn(&[2, 2, 4, 4], &mut rng);
        let y1 = net.forward(&x, Mode::Eval);
        let y2 = net.forward(&x, Mode::Eval);
        prop_assert_eq!(y1, y2);
    }

    /// Smooth activations: derivative identities hold on random inputs.
    #[test]
    fn smooth_derivative_identities(v in -3.0f32..3.0) {
        // tanh' = 1 - tanh²  (checked by finite difference)
        let mut t = SmoothActivation::new(Smooth::Tanh);
        let x = Tensor::from_vec(vec![v], &[1]).expect("sized");
        t.forward(&x, Mode::Train);
        let g = t.backward(&Tensor::ones(&[1]));
        let eps = 1e-3f32;
        let fd = ((v + eps).tanh() - (v - eps).tanh()) / (2.0 * eps);
        prop_assert!((g.data()[0] - fd).abs() < 1e-3);

        let mut s = SmoothActivation::new(Smooth::Sigmoid);
        s.forward(&x, Mode::Train);
        let g = s.backward(&Tensor::ones(&[1]));
        let sig = |x: f32| 1.0 / (1.0 + (-x).exp());
        let fd = (sig(v + eps) - sig(v - eps)) / (2.0 * eps);
        prop_assert!((g.data()[0] - fd).abs() < 1e-3);
    }

    /// Cloned networks evolve independently (no shared parameter
    /// storage through the clone).
    #[test]
    fn clones_are_independent(seed in 0u64..100) {
        let mut rng = Prng::seed_from_u64(seed);
        let mut seq = Sequential::new();
        seq.push(Linear::new(3, 3, &mut rng));
        let mut a = Network::new("a", seq);
        let mut b = a.clone();
        let wa = a.device_weights();
        let mut shifted = wa.clone();
        for w in &mut shifted {
            *w += 1.0;
        }
        b.set_device_weights(&shifted);
        prop_assert_eq!(a.device_weights(), wa);
    }
}
