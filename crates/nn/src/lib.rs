//! Neural network layers, models and first/second-order backpropagation.
//!
//! This crate is the training-and-inference substrate of the SWIM
//! reproduction (the role PyTorch plays in the paper), plus the paper's
//! actual algorithmic kernel: a **single-pass second-derivative
//! backpropagation** (§3.3) that produces the diagonal of the loss Hessian
//! for every weight — SWIM's write-verify sensitivity metric — at roughly
//! the cost of one gradient pass.
//!
//! * [`layer::Layer`] — forward / backward / `second_backward` contract;
//! * [`layers`] — Linear, Conv2d, ReLU, pooling, BatchNorm2d, residual
//!   blocks, activation quantization;
//! * [`loss`] — softmax cross-entropy (Hessian seed `p(1−p)`, Eq. 11) and
//!   L2 loss (seed 2);
//! * [`network::Network`] — a whole model: prediction, accuracy, gradient
//!   and Hessian-diagonal computation, flat views of device-mapped weights;
//! * [`models`] — LeNet, ConvNet (VGG-style), and ResNet-18 builders
//!   matching the paper's three evaluation networks;
//! * [`optim`] / [`train`] — SGD with momentum and a small training loop;
//! * [`finite_diff`] — the O(2n·forward) finite-difference Hessian of
//!   Eq. 6, used to validate the fast recursion in tests.
//!
//! # Example: sensitivity of a tiny classifier
//!
//! ```
//! use swim_nn::layers::{Linear, Relu, Sequential};
//! use swim_nn::loss::SoftmaxCrossEntropy;
//! use swim_nn::network::Network;
//! use swim_tensor::{Prng, Tensor};
//!
//! let mut rng = Prng::seed_from_u64(1);
//! let mut seq = Sequential::new();
//! seq.push(Linear::new(4, 8, &mut rng));
//! seq.push(Relu::new());
//! seq.push(Linear::new(8, 3, &mut rng));
//! let mut net = Network::new("mlp", seq);
//!
//! let x = Tensor::randn(&[16, 4], &mut rng);
//! let y: Vec<usize> = (0..16).map(|i| i % 3).collect();
//! net.accumulate_hessian(&SoftmaxCrossEntropy::new(), &x, &y);
//! let sens = net.device_hessian();
//! assert_eq!(sens.len(), net.device_weight_count());
//! assert!(sens.iter().all(|&h| h >= 0.0));
//! ```

#![warn(missing_docs)]

pub mod arena;
pub mod finite_diff;
pub mod layer;
pub mod layers;
pub mod loss;
pub mod models;
pub mod network;
pub mod optim;
pub mod optim_adam;
pub mod param;
pub mod schedule;
pub mod train;

pub use arena::ActivationArena;
pub use layer::{Layer, Mode};
pub use network::Network;
pub use param::{Param, ParamKind};
