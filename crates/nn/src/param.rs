//! Trainable parameters with gradient and diagonal-Hessian buffers.

use swim_tensor::Tensor;

/// What role a parameter plays in the accelerator mapping.
///
/// SWIM only write-verifies weights that physically live on NVM crossbars.
/// Convolution and fully connected weight matrices are mapped to devices;
/// biases and batch-norm affine parameters are computed by the digital
/// periphery and are therefore never candidates for write-verify (they are
/// also excluded from the paper's weight counts).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ParamKind {
    /// A weight matrix/kernel mapped onto crossbar devices.
    DeviceWeight,
    /// A digitally stored parameter (bias, batch-norm scale/shift).
    Digital,
}

/// One trainable tensor together with its first- and second-order
/// derivative accumulators.
///
/// `grad` accumulates `∂f/∂θ` during [`crate::layer::Layer::backward`];
/// `hess` accumulates the diagonal second derivative `∂²f/∂θ²` during
/// [`crate::layer::Layer::second_backward`] — the quantity SWIM ranks
/// weights by (paper Eq. 5).
///
/// # Example
///
/// ```
/// use swim_nn::param::{Param, ParamKind};
/// use swim_tensor::Tensor;
///
/// let mut p = Param::new("fc.weight", Tensor::zeros(&[4, 3]), ParamKind::DeviceWeight);
/// assert_eq!(p.grad.len(), 12);
/// p.grad.add_scalar(1.0);
/// p.zero_grad();
/// assert_eq!(p.grad.sum(), 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct Param {
    /// Human-readable, dot-separated name (e.g. `"conv1.weight"`).
    pub name: String,
    /// Current value.
    pub value: Tensor,
    /// First-order gradient accumulator, same shape as `value`.
    pub grad: Tensor,
    /// Diagonal second-derivative accumulator, same shape as `value`.
    pub hess: Tensor,
    /// Whether this parameter is mapped to crossbar devices.
    pub kind: ParamKind,
}

impl Param {
    /// Creates a parameter with zeroed derivative buffers.
    pub fn new(name: impl Into<String>, value: Tensor, kind: ParamKind) -> Self {
        let shape = value.shape().to_vec();
        Param {
            name: name.into(),
            grad: Tensor::zeros(&shape),
            hess: Tensor::zeros(&shape),
            value,
            kind,
        }
    }

    /// Number of scalar elements.
    pub fn len(&self) -> usize {
        self.value.len()
    }

    /// Whether the parameter is empty.
    pub fn is_empty(&self) -> bool {
        self.value.is_empty()
    }

    /// Whether this parameter is mapped to crossbar devices.
    pub fn is_device_mapped(&self) -> bool {
        self.kind == ParamKind::DeviceWeight
    }

    /// Clears the gradient accumulator.
    pub fn zero_grad(&mut self) {
        self.grad.fill(0.0);
    }

    /// Clears the second-derivative accumulator.
    pub fn zero_hess(&mut self) {
        self.hess.fill(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_match_value_shape() {
        let p = Param::new("w", Tensor::zeros(&[2, 3, 4]), ParamKind::DeviceWeight);
        assert_eq!(p.grad.shape(), &[2, 3, 4]);
        assert_eq!(p.hess.shape(), &[2, 3, 4]);
        assert_eq!(p.len(), 24);
    }

    #[test]
    fn kind_flags() {
        let w = Param::new("w", Tensor::zeros(&[1]), ParamKind::DeviceWeight);
        let b = Param::new("b", Tensor::zeros(&[1]), ParamKind::Digital);
        assert!(w.is_device_mapped());
        assert!(!b.is_device_mapped());
    }

    #[test]
    fn zeroing_clears_accumulators() {
        let mut p = Param::new("w", Tensor::ones(&[3]), ParamKind::Digital);
        p.grad.add_scalar(2.0);
        p.hess.add_scalar(3.0);
        p.zero_grad();
        p.zero_hess();
        assert_eq!(p.grad.sum(), 0.0);
        assert_eq!(p.hess.sum(), 0.0);
        assert_eq!(p.value.sum(), 3.0);
    }
}
