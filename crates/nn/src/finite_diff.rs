//! Finite-difference Hessian diagonal (paper Eq. 6) — the slow oracle.
//!
//! The paper motivates its single-pass recursion by noting that the
//! straightforward estimate
//!
//! ```text
//! ∂²f/∂w² ≈ (f(w + Δ) − 2 f(w) + f(w − Δ)) / Δ²
//! ```
//!
//! needs *two extra forward passes per weight* — two million passes for a
//! million-weight model. We implement it anyway: it is the ground truth
//! that the fast `second_backward` recursion is validated against in the
//! test suite, and the `second_derivative` criterion bench quantifies the
//! speedup the paper claims.

use crate::loss::Loss;
use crate::network::Network;
use swim_tensor::Tensor;

/// Central-difference estimate of `∂²f/∂w²` for every *device-mapped*
/// weight.
///
/// Cost: `2·n_weights + 1` forward passes. Use small networks only.
///
/// # Panics
///
/// Panics if `delta` is not finite and positive.
pub fn hessian_diag_fd(
    network: &mut Network,
    loss: &dyn Loss,
    input: &Tensor,
    targets: &[usize],
    delta: f32,
) -> Vec<f64> {
    assert!(delta.is_finite() && delta > 0.0, "delta must be positive");
    let weights = network.device_weights();
    let f0 = network.evaluate_loss(loss, input, targets, input.shape()[0].max(1));
    let mut out = Vec::with_capacity(weights.len());
    let mut perturbed = weights.clone();
    for i in 0..weights.len() {
        perturbed[i] = weights[i] + delta;
        network.set_device_weights(&perturbed);
        let fp = network.evaluate_loss(loss, input, targets, input.shape()[0].max(1));
        perturbed[i] = weights[i] - delta;
        network.set_device_weights(&perturbed);
        let fm = network.evaluate_loss(loss, input, targets, input.shape()[0].max(1));
        perturbed[i] = weights[i];
        out.push((fp - 2.0 * f0 + fm) / (delta as f64 * delta as f64));
    }
    network.set_device_weights(&weights);
    out
}

/// Central-difference gradient for every device-mapped weight (first
/// order), used by gradient-checking tests.
///
/// # Panics
///
/// Panics if `delta` is not finite and positive.
pub fn gradient_fd(
    network: &mut Network,
    loss: &dyn Loss,
    input: &Tensor,
    targets: &[usize],
    delta: f32,
) -> Vec<f64> {
    assert!(delta.is_finite() && delta > 0.0, "delta must be positive");
    let weights = network.device_weights();
    let mut out = Vec::with_capacity(weights.len());
    let mut perturbed = weights.clone();
    for i in 0..weights.len() {
        perturbed[i] = weights[i] + delta;
        network.set_device_weights(&perturbed);
        let fp = network.evaluate_loss(loss, input, targets, input.shape()[0].max(1));
        perturbed[i] = weights[i] - delta;
        network.set_device_weights(&perturbed);
        let fm = network.evaluate_loss(loss, input, targets, input.shape()[0].max(1));
        perturbed[i] = weights[i];
        out.push((fp - fm) / (2.0 * delta as f64));
    }
    network.set_device_weights(&weights);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Linear, Relu, Sequential};
    use crate::loss::{L2Loss, SoftmaxCrossEntropy};
    use swim_tensor::Prng;

    fn small_net(rng: &mut Prng) -> Network {
        let mut seq = Sequential::new();
        seq.push(Linear::new(3, 5, rng));
        seq.push(Relu::new());
        seq.push(Linear::new(5, 2, rng));
        Network::new("small", seq)
    }

    #[test]
    fn fd_gradient_matches_backprop() {
        let mut rng = Prng::seed_from_u64(1);
        let mut net = small_net(&mut rng);
        let x = Tensor::randn(&[6, 3], &mut rng);
        let y = vec![0, 1, 0, 1, 0, 1];
        let loss = SoftmaxCrossEntropy::new();
        net.zero_grads();
        net.accumulate_gradients(&loss, &x, &y);
        let analytic = net.device_gradient();
        let fd = gradient_fd(&mut net, &loss, &x, &y, 1e-2);
        for (i, (&a, &f)) in analytic.iter().zip(&fd).enumerate() {
            assert!((a as f64 - f).abs() < 1e-2 * (1.0 + f.abs()), "w[{i}]: analytic {a} fd {f}");
        }
    }

    /// For the *last* linear layer the paper's recursion is exact (no
    /// upstream chain-rule approximation), so FD and second_backward must
    /// agree tightly there.
    #[test]
    fn fd_hessian_matches_second_backward_on_last_layer() {
        let mut rng = Prng::seed_from_u64(2);
        let mut net = small_net(&mut rng);
        let x = Tensor::randn(&[4, 3], &mut rng);
        let y = vec![0, 1, 1, 0];
        let loss = L2Loss::new();
        net.zero_hess();
        net.accumulate_hessian(&loss, &x, &y);
        let analytic = net.device_hessian();
        let fd = hessian_diag_fd(&mut net, &loss, &x, &y, 5e-2);
        // Last layer weights are the final 5*2 = 10 entries of the flat
        // vector.
        let n = analytic.len();
        for i in (n - 10)..n {
            let a = analytic[i] as f64;
            let f = fd[i];
            assert!((a - f).abs() < 2e-2 * (1.0 + f.abs()), "w[{i}]: analytic {a} fd {f}");
        }
    }

    #[test]
    fn restores_weights_after_probing() {
        let mut rng = Prng::seed_from_u64(3);
        let mut net = small_net(&mut rng);
        let x = Tensor::randn(&[4, 3], &mut rng);
        let y = vec![0, 1, 1, 0];
        let before = net.device_weights();
        hessian_diag_fd(&mut net, &SoftmaxCrossEntropy::new(), &x, &y, 1e-2);
        assert_eq!(net.device_weights(), before);
    }
}
