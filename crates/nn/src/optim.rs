//! Optimizers.

use crate::network::Network;
use swim_tensor::Tensor;

/// Stochastic gradient descent with classical momentum and L2 weight
/// decay.
///
/// Training from scratch is substrate for the paper (its models are
/// "trained to converge on GPU before mapping"); the same optimizer also
/// powers the in-situ training baseline, where each `step` corresponds to
/// a round of on-device weight-update write pulses.
///
/// # Example
///
/// ```
/// use swim_nn::layers::{Linear, Sequential};
/// use swim_nn::network::Network;
/// use swim_nn::optim::Sgd;
/// use swim_nn::loss::{Loss, SoftmaxCrossEntropy};
/// use swim_tensor::{Prng, Tensor};
///
/// let mut rng = Prng::seed_from_u64(0);
/// let mut seq = Sequential::new();
/// seq.push(Linear::new(2, 2, &mut rng));
/// let mut net = Network::new("m", seq);
/// let mut sgd = Sgd::new(0.1).momentum(0.9);
/// let x = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2])?;
/// let before = net.evaluate_loss(&SoftmaxCrossEntropy::new(), &x, &[0, 1], 2);
/// for _ in 0..20 {
///     net.zero_grads();
///     net.accumulate_gradients(&SoftmaxCrossEntropy::new(), &x, &[0, 1]);
///     sgd.step(&mut net);
/// }
/// let after = net.evaluate_loss(&SoftmaxCrossEntropy::new(), &x, &[0, 1], 2);
/// assert!(after < before);
/// # Ok::<(), swim_tensor::TensorError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    weight_decay: f32,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// Creates plain SGD with the given learning rate.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not finite and positive.
    pub fn new(lr: f32) -> Self {
        assert!(lr.is_finite() && lr > 0.0, "learning rate must be positive");
        Sgd { lr, momentum: 0.0, weight_decay: 0.0, velocity: Vec::new() }
    }

    /// Sets the momentum coefficient (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `m` is outside `[0, 1)`.
    pub fn momentum(mut self, m: f32) -> Self {
        assert!((0.0..1.0).contains(&m), "momentum must be in [0, 1)");
        self.momentum = m;
        self
    }

    /// Sets the L2 weight-decay coefficient (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `wd` is negative.
    pub fn weight_decay(mut self, wd: f32) -> Self {
        assert!(wd >= 0.0, "weight decay must be non-negative");
        self.weight_decay = wd;
        self
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Updates the learning rate (e.g. for a decay schedule).
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not finite and positive.
    pub fn set_lr(&mut self, lr: f32) {
        assert!(lr.is_finite() && lr > 0.0, "learning rate must be positive");
        self.lr = lr;
    }

    /// Applies one update from the accumulated gradients.
    ///
    /// Velocity buffers are allocated lazily on first use and keyed by
    /// parameter visit order, so an optimizer must not be shared across
    /// networks with different architectures.
    ///
    /// # Panics
    ///
    /// Panics if the network's parameter count changed since the first
    /// step.
    pub fn step(&mut self, network: &mut Network) {
        let lr = self.lr;
        let momentum = self.momentum;
        let wd = self.weight_decay;
        let velocity = &mut self.velocity;
        let mut idx = 0usize;
        network.visit_params(&mut |p| {
            if velocity.len() == idx {
                velocity.push(Tensor::zeros(p.value.shape()));
            }
            let v = &mut velocity[idx];
            assert_eq!(
                v.shape(),
                p.value.shape(),
                "parameter {} changed shape; optimizer state is stale",
                p.name
            );
            // v = momentum * v - lr * (grad + wd * w)
            v.scale(momentum);
            v.axpy(-lr, &p.grad);
            if wd > 0.0 {
                v.axpy(-lr * wd, &p.value);
            }
            p.value.add_assign_t(v);
            idx += 1;
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Linear, Relu, Sequential};
    use crate::loss::SoftmaxCrossEntropy;
    use swim_tensor::Prng;

    fn toy_problem() -> (Network, Tensor, Vec<usize>) {
        let mut rng = Prng::seed_from_u64(11);
        let mut seq = Sequential::new();
        seq.push(Linear::new(2, 8, &mut rng));
        seq.push(Relu::new());
        seq.push(Linear::new(8, 2, &mut rng));
        let net = Network::new("toy", seq);
        // Linearly separable blobs.
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..32 {
            let cls = i % 2;
            let cx = if cls == 0 { -1.0 } else { 1.0 };
            xs.push(cx + rng.normal_f32(0.0, 0.2));
            xs.push(cx + rng.normal_f32(0.0, 0.2));
            ys.push(cls);
        }
        let x = Tensor::from_vec(xs, &[32, 2]).unwrap();
        (net, x, ys)
    }

    #[test]
    fn sgd_descends() {
        let (mut net, x, y) = toy_problem();
        let loss = SoftmaxCrossEntropy::new();
        let before = net.evaluate_loss(&loss, &x, &y, 32);
        let mut sgd = Sgd::new(0.5);
        for _ in 0..30 {
            net.zero_grads();
            net.accumulate_gradients(&loss, &x, &y);
            sgd.step(&mut net);
        }
        let after = net.evaluate_loss(&loss, &x, &y, 32);
        assert!(after < before * 0.5, "{before} -> {after}");
        assert!(net.accuracy(&x, &y, 32) > 0.9);
    }

    #[test]
    fn momentum_accelerates() {
        let (mut net_a, x, y) = toy_problem();
        let mut net_b = net_a.clone();
        let loss = SoftmaxCrossEntropy::new();
        let mut plain = Sgd::new(0.05);
        let mut heavy = Sgd::new(0.05).momentum(0.9);
        for _ in 0..20 {
            net_a.zero_grads();
            net_a.accumulate_gradients(&loss, &x, &y);
            plain.step(&mut net_a);
            net_b.zero_grads();
            net_b.accumulate_gradients(&loss, &x, &y);
            heavy.step(&mut net_b);
        }
        let la = net_a.evaluate_loss(&loss, &x, &y, 32);
        let lb = net_b.evaluate_loss(&loss, &x, &y, 32);
        assert!(lb < la, "momentum {lb} should beat plain {la}");
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        let (mut net, x, y) = toy_problem();
        let loss = SoftmaxCrossEntropy::new();
        let norm_before: f64 = net.device_weights().iter().map(|&w| (w as f64).powi(2)).sum();
        let mut sgd = Sgd::new(0.01).weight_decay(10.0);
        for _ in 0..10 {
            net.zero_grads();
            net.accumulate_gradients(&loss, &x, &y);
            sgd.step(&mut net);
        }
        let norm_after: f64 = net.device_weights().iter().map(|&w| (w as f64).powi(2)).sum();
        assert!(norm_after < norm_before);
    }

    #[test]
    #[should_panic(expected = "learning rate")]
    fn rejects_bad_lr() {
        Sgd::new(-0.1);
    }
}
