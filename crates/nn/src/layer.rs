//! The layer abstraction: forward, backward, and second-order backward.

use crate::arena::ActivationArena;
use crate::param::Param;
use swim_tensor::Tensor;

/// Whether a forward pass is part of training or inference.
///
/// Affects layers with mode-dependent behaviour (batch normalization uses
/// batch statistics when training and running statistics when evaluating).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Mode {
    /// Training: batch statistics, QAT fake quantization active.
    Train,
    /// Inference / sensitivity analysis: frozen statistics.
    #[default]
    Eval,
}

/// A differentiable network layer with first- and second-order
/// backpropagation.
///
/// The second-order pass is the heart of the SWIM reproduction: the paper
/// (§3.3) observes that the diagonal of the loss Hessian can be obtained by
/// a backward recursion structurally identical to gradient
/// backpropagation, where each layer pushes `∂²f/∂output²` to
/// `∂²f/∂input²` and accumulates `∂²f/∂θ²` for its parameters:
///
/// * FC / conv (Eq. 8): `h_W = h_O · P²`, `h_P = W² · h_O`;
/// * ReLU (Eq. 10): multiply by the active-input indicator;
/// * max pooling: route to the argmax; skip connections: sum branches.
///
/// # Contract
///
/// `backward`/`second_backward` must be called after a `forward` on the
/// same input batch (layers cache activations). Both *accumulate* into
/// `Param::grad` / `Param::hess` so sensitivities can be averaged over
/// multiple batches; call [`Layer::zero_grads`] / [`Layer::zero_hess`]
/// between optimizer steps.
///
/// Layers are `Send + Sync` (they own plain tensor data) so whole
/// networks can be shared immutably across Monte Carlo worker threads
/// and cloned into them.
pub trait Layer: Send + Sync {
    /// Computes the layer output for a batch.
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor;

    /// [`Layer::forward`] with the output written into a buffer recycled
    /// from `arena` — the allocation-free forward path.
    ///
    /// The returned tensor's storage came from the arena; the caller
    /// recycles it ([`ActivationArena::recycle`]) once consumed so later
    /// layers (and later forward passes) reuse it. Results must be
    /// bit-identical to [`Layer::forward`]; backward passes see the same
    /// cached activations either way.
    ///
    /// The default implementation falls back to the fresh-allocation
    /// `forward`, so exotic layers stay correct without implementing the
    /// arena path (they just keep allocating). Every built-in layer
    /// overrides it.
    fn forward_into(&mut self, input: &Tensor, mode: Mode, arena: &mut ActivationArena) -> Tensor {
        let _ = arena;
        self.forward(input, mode)
    }

    /// Pushes the loss gradient from output to input, accumulating
    /// parameter gradients.
    ///
    /// # Panics
    ///
    /// Implementations may panic if called before `forward`.
    fn backward(&mut self, grad_output: &Tensor) -> Tensor;

    /// Pushes the diagonal second derivative of the loss from output to
    /// input, accumulating parameter second derivatives (paper Eqs. 8–10).
    ///
    /// # Panics
    ///
    /// Implementations may panic if called before `forward`.
    fn second_backward(&mut self, hess_output: &Tensor) -> Tensor;

    /// Visits every trainable parameter of this layer (and sub-layers).
    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Param));

    /// Short human-readable description (e.g. `"Linear(400->120)"`).
    fn describe(&self) -> String;

    /// Deep-copies the layer (parameters, buffers, caches).
    ///
    /// Monte Carlo evaluation perturbs many independent copies of a
    /// network in parallel; this is the object-safe clone hook that makes
    /// `Box<dyn Layer>` (and therefore whole networks) cloneable.
    fn clone_layer(&self) -> Box<dyn Layer>;

    /// Zeroes all gradient accumulators.
    fn zero_grads(&mut self) {
        self.visit_params(&mut |p| p.zero_grad());
    }

    /// Zeroes all second-derivative accumulators.
    fn zero_hess(&mut self) {
        self.visit_params(&mut |p| p.zero_hess());
    }

    /// Total number of trainable scalars.
    fn num_params(&mut self) -> usize {
        let mut n = 0;
        self.visit_params(&mut |p| n += p.len());
        n
    }
}

impl Clone for Box<dyn Layer> {
    fn clone(&self) -> Self {
        self.clone_layer()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::ParamKind;

    /// Minimal layer for exercising the provided trait methods.
    #[derive(Clone)]
    struct Affine {
        p: Param,
    }

    impl Layer for Affine {
        fn forward(&mut self, input: &Tensor, _mode: Mode) -> Tensor {
            input.map(|x| x + self.p.value.data()[0])
        }
        fn backward(&mut self, grad_output: &Tensor) -> Tensor {
            self.p.grad.data_mut()[0] += grad_output.sum() as f32;
            grad_output.clone()
        }
        fn second_backward(&mut self, hess_output: &Tensor) -> Tensor {
            self.p.hess.data_mut()[0] += hess_output.sum() as f32;
            hess_output.clone()
        }
        fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Param)) {
            visitor(&mut self.p);
        }
        fn describe(&self) -> String {
            "Affine".into()
        }
        fn clone_layer(&self) -> Box<dyn Layer> {
            Box::new(self.clone())
        }
    }

    #[test]
    fn provided_methods_work() {
        let mut layer = Affine { p: Param::new("shift", Tensor::ones(&[1]), ParamKind::Digital) };
        assert_eq!(layer.num_params(), 1);
        let x = Tensor::zeros(&[2, 2]);
        let y = layer.forward(&x, Mode::Eval);
        assert_eq!(y.sum(), 4.0);
        layer.backward(&Tensor::ones(&[2, 2]));
        layer.second_backward(&Tensor::ones(&[2, 2]));
        let mut grad = 0.0;
        let mut hess = 0.0;
        layer.visit_params(&mut |p| {
            grad = p.grad.data()[0];
            hess = p.hess.data()[0];
        });
        assert_eq!(grad, 4.0);
        assert_eq!(hess, 4.0);
        layer.zero_grads();
        layer.zero_hess();
        layer.visit_params(&mut |p| {
            assert_eq!(p.grad.sum(), 0.0);
            assert_eq!(p.hess.sum(), 0.0);
        });
    }
}
