//! Loss functions with first- and second-derivative seeds.
//!
//! The second-order backward recursion starts from `∂²f/∂O²` at the
//! network output (paper §3.3): for L2 loss the seed is the constant 2;
//! for softmax cross-entropy it is `p_j (1 − p_j)` (Eq. 11). Both are
//! divided by the batch size because losses are mean-reduced.

use swim_tensor::Tensor;

/// A classification loss over logits `[N, classes]` and integer targets.
pub trait Loss {
    /// Mean loss over the batch.
    ///
    /// # Panics
    ///
    /// Implementations panic if `targets.len()` differs from the batch
    /// size or a target is out of range.
    fn forward(&self, logits: &Tensor, targets: &[usize]) -> f64;

    /// Gradient of the mean loss with respect to the logits.
    fn backward(&self, logits: &Tensor, targets: &[usize]) -> Tensor;

    /// Diagonal second derivative of the mean loss with respect to the
    /// logits — the seed of the SWIM sensitivity recursion.
    fn second_backward(&self, logits: &Tensor, targets: &[usize]) -> Tensor;

    /// Short human-readable name.
    fn name(&self) -> &'static str;
}

fn check_targets(logits: &Tensor, targets: &[usize]) -> (usize, usize) {
    assert_eq!(logits.rank(), 2, "loss expects [N, classes] logits");
    let (n, c) = (logits.shape()[0], logits.shape()[1]);
    assert_eq!(targets.len(), n, "target count {} != batch size {n}", targets.len());
    for &t in targets {
        assert!(t < c, "target {t} out of range for {c} classes");
    }
    (n, c)
}

/// Row-wise numerically stable softmax.
fn softmax(logits: &Tensor) -> Tensor {
    let (n, c) = (logits.shape()[0], logits.shape()[1]);
    let mut out = logits.clone();
    let od = out.data_mut();
    for row in 0..n {
        let r = &mut od[row * c..(row + 1) * c];
        let max = r.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        for v in r.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        for v in r.iter_mut() {
            *v /= sum;
        }
    }
    out
}

/// Softmax followed by cross-entropy, the paper's classification loss.
///
/// # Example
///
/// ```
/// use swim_nn::loss::{Loss, SoftmaxCrossEntropy};
/// use swim_tensor::Tensor;
///
/// let loss = SoftmaxCrossEntropy::new();
/// let logits = Tensor::from_vec(vec![10.0, -10.0], &[1, 2])?;
/// // Confident & correct: loss near zero.
/// assert!(loss.forward(&logits, &[0]) < 1e-6);
/// # Ok::<(), swim_tensor::TensorError>(())
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct SoftmaxCrossEntropy;

impl SoftmaxCrossEntropy {
    /// Creates the loss.
    pub fn new() -> Self {
        SoftmaxCrossEntropy
    }
}

impl Loss for SoftmaxCrossEntropy {
    fn forward(&self, logits: &Tensor, targets: &[usize]) -> f64 {
        let (n, c) = check_targets(logits, targets);
        let p = softmax(logits);
        let mut acc = 0.0f64;
        for (row, &t) in targets.iter().enumerate() {
            let prob = p.data()[row * c + t].max(1e-12);
            acc -= (prob as f64).ln();
        }
        acc / n as f64
    }

    fn backward(&self, logits: &Tensor, targets: &[usize]) -> Tensor {
        let (n, c) = check_targets(logits, targets);
        let mut g = softmax(logits);
        let gd = g.data_mut();
        let inv_n = 1.0 / n as f32;
        for (row, &t) in targets.iter().enumerate() {
            gd[row * c + t] -= 1.0;
        }
        for v in gd.iter_mut() {
            *v *= inv_n;
        }
        g
    }

    fn second_backward(&self, logits: &Tensor, targets: &[usize]) -> Tensor {
        let (n, _) = check_targets(logits, targets);
        // Eq. 11: h_O = p (1 - p), mean-reduced.
        let mut h = softmax(logits);
        let inv_n = 1.0 / n as f32;
        h.map_inplace(|p| p * (1.0 - p) * inv_n);
        h
    }

    fn name(&self) -> &'static str {
        "softmax-cross-entropy"
    }
}

/// Mean squared error against one-hot targets (the paper's "L2 loss").
#[derive(Debug, Clone, Copy, Default)]
pub struct L2Loss;

impl L2Loss {
    /// Creates the loss.
    pub fn new() -> Self {
        L2Loss
    }
}

impl Loss for L2Loss {
    fn forward(&self, logits: &Tensor, targets: &[usize]) -> f64 {
        let (n, c) = check_targets(logits, targets);
        let mut acc = 0.0f64;
        for (row, &target) in targets.iter().enumerate().take(n) {
            for j in 0..c {
                let y = if target == j { 1.0 } else { 0.0 };
                let d = logits.data()[row * c + j] as f64 - y;
                acc += d * d;
            }
        }
        acc / n as f64
    }

    fn backward(&self, logits: &Tensor, targets: &[usize]) -> Tensor {
        let (n, c) = check_targets(logits, targets);
        let inv_n = 1.0 / n as f32;
        let mut g = logits.clone();
        let gd = g.data_mut();
        for (row, &t) in targets.iter().enumerate() {
            gd[row * c + t] -= 1.0;
        }
        for v in gd.iter_mut() {
            *v *= 2.0 * inv_n;
        }
        g
    }

    fn second_backward(&self, logits: &Tensor, targets: &[usize]) -> Tensor {
        let (n, _) = check_targets(logits, targets);
        // Paper §3.3: for L2 loss, ∂²f/∂O² = 2 (mean-reduced).
        Tensor::full(logits.shape(), 2.0 / n as f32)
    }

    fn name(&self) -> &'static str {
        "l2"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swim_tensor::Prng;

    fn fd_grad(loss: &dyn Loss, logits: &Tensor, targets: &[usize], i: usize) -> f64 {
        let eps = 1e-3f32;
        let mut lp = logits.clone();
        lp.data_mut()[i] += eps;
        let mut lm = logits.clone();
        lm.data_mut()[i] -= eps;
        (loss.forward(&lp, targets) - loss.forward(&lm, targets)) / (2.0 * eps as f64)
    }

    fn fd_hess(loss: &dyn Loss, logits: &Tensor, targets: &[usize], i: usize) -> f64 {
        let eps = 1e-2f32;
        let mut lp = logits.clone();
        lp.data_mut()[i] += eps;
        let mut lm = logits.clone();
        lm.data_mut()[i] -= eps;
        let f0 = loss.forward(logits, targets);
        (loss.forward(&lp, targets) - 2.0 * f0 + loss.forward(&lm, targets))
            / (eps as f64 * eps as f64)
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut rng = Prng::seed_from_u64(1);
        let logits = Tensor::randn(&[4, 7], &mut rng);
        let p = softmax(&logits);
        for row in 0..4 {
            let s: f32 = p.data()[row * 7..(row + 1) * 7].iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn ce_gradient_matches_finite_difference() {
        let mut rng = Prng::seed_from_u64(2);
        let logits = Tensor::randn(&[3, 5], &mut rng);
        let targets = [0usize, 3, 4];
        let loss = SoftmaxCrossEntropy::new();
        let g = loss.backward(&logits, &targets);
        for &i in &[0usize, 4, 7, 12, 14] {
            let fd = fd_grad(&loss, &logits, &targets, i);
            let an = g.data()[i] as f64;
            assert!((fd - an).abs() < 1e-3, "i={i} fd={fd} an={an}");
        }
    }

    #[test]
    fn ce_hessian_matches_finite_difference() {
        let mut rng = Prng::seed_from_u64(3);
        let logits = Tensor::randn(&[2, 4], &mut rng);
        let targets = [1usize, 2];
        let loss = SoftmaxCrossEntropy::new();
        let h = loss.second_backward(&logits, &targets);
        for i in 0..8 {
            let fd = fd_hess(&loss, &logits, &targets, i);
            let an = h.data()[i] as f64;
            assert!((fd - an).abs() < 5e-3, "i={i} fd={fd} an={an}");
        }
    }

    #[test]
    fn ce_hessian_is_nonnegative() {
        let mut rng = Prng::seed_from_u64(4);
        let logits = Tensor::randn(&[8, 10], &mut rng);
        let targets: Vec<usize> = (0..8).map(|i| i % 10).collect();
        let h = SoftmaxCrossEntropy::new().second_backward(&logits, &targets);
        assert!(h.data().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn l2_gradient_matches_finite_difference() {
        let mut rng = Prng::seed_from_u64(5);
        let logits = Tensor::randn(&[2, 3], &mut rng);
        let targets = [0usize, 2];
        let loss = L2Loss::new();
        let g = loss.backward(&logits, &targets);
        for i in 0..6 {
            let fd = fd_grad(&loss, &logits, &targets, i);
            let an = g.data()[i] as f64;
            assert!((fd - an).abs() < 1e-3, "i={i} fd={fd} an={an}");
        }
    }

    #[test]
    fn l2_hessian_is_constant_two_over_n() {
        let logits = Tensor::zeros(&[4, 3]);
        let h = L2Loss::new().second_backward(&logits, &[0, 1, 2, 0]);
        for &v in h.data() {
            assert!((v - 0.5).abs() < 1e-7); // 2/4
        }
    }

    #[test]
    fn perfect_prediction_low_ce() {
        let logits = Tensor::from_vec(vec![20.0, 0.0, 0.0, 0.0, 20.0, 0.0], &[2, 3]).unwrap();
        let l = SoftmaxCrossEntropy::new().forward(&logits, &[0, 1]);
        assert!(l < 1e-6);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_target() {
        let logits = Tensor::zeros(&[1, 3]);
        SoftmaxCrossEntropy::new().forward(&logits, &[3]);
    }
}
