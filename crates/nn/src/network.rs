//! A complete model: layers plus whole-network operations.

use crate::arena::ActivationArena;
use crate::layer::{Layer, Mode};
use crate::layers::Sequential;
use crate::loss::Loss;
use crate::param::Param;
use swim_tensor::Tensor;

/// A named network with whole-model forward/backward, metric, and
/// flat-weight plumbing.
///
/// The flat views ([`Network::device_weights`],
/// [`Network::device_hessian`], [`Network::set_device_weights`]) expose
/// every *device-mapped* weight (conv/FC matrices, not biases or
/// batch-norm parameters) as a single `Vec<f32>` in deterministic layer
/// order. That flat index space is the coordinate system the whole SWIM
/// pipeline works in: sensitivities are ranked in it, the device
/// programming model perturbs it, and write-verify selections are masks
/// over it.
///
/// # Example
///
/// ```
/// use swim_nn::layers::{Linear, Sequential};
/// use swim_nn::network::Network;
/// use swim_tensor::Prng;
///
/// let mut rng = Prng::seed_from_u64(0);
/// let mut seq = Sequential::new();
/// seq.push(Linear::new(4, 2, &mut rng));
/// let mut net = Network::new("tiny", seq);
/// assert_eq!(net.device_weight_count(), 8);
/// assert_eq!(net.num_params(), 10); // + 2 bias
/// ```
#[derive(Clone)]
pub struct Network {
    name: String,
    root: Sequential,
}

impl std::fmt::Debug for Network {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Network({})", self.name)
    }
}

impl Network {
    /// Wraps a layer stack into a named network.
    pub fn new(name: impl Into<String>, root: Sequential) -> Self {
        Network { name: name.into(), root }
    }

    /// The network's name (e.g. `"lenet"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Human-readable architecture summary.
    pub fn describe(&self) -> String {
        format!("{}: {}", self.name, self.root.describe())
    }

    // ------------------------------------------------------------- passes

    /// Forward pass on a batch.
    pub fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        self.root.forward(input, mode)
    }

    /// Forward pass with activations drawn from `arena` — the
    /// allocation-free path ([`crate::layer::Layer::forward_into`]).
    /// Recycle the returned tensor into the arena once consumed.
    pub fn forward_with(
        &mut self,
        input: &Tensor,
        mode: Mode,
        arena: &mut ActivationArena,
    ) -> Tensor {
        self.root.forward_into(input, mode, arena)
    }

    /// First-order backward pass (after a forward on the same batch).
    pub fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        self.root.backward(grad_output)
    }

    /// Second-order backward pass (after a forward on the same batch).
    pub fn second_backward(&mut self, hess_output: &Tensor) -> Tensor {
        self.root.second_backward(hess_output)
    }

    /// Runs forward + backward for `loss`, accumulating parameter
    /// gradients. Returns the batch loss.
    pub fn accumulate_gradients(
        &mut self,
        loss: &dyn Loss,
        input: &Tensor,
        targets: &[usize],
    ) -> f64 {
        let logits = self.forward(input, Mode::Train);
        let l = loss.forward(&logits, targets);
        let g = loss.backward(&logits, targets);
        self.backward(&g);
        l
    }

    /// Runs forward + second-order backward for `loss`, accumulating the
    /// per-parameter Hessian diagonal (paper §3.3: "only second derivative
    /// computation is done only once"). Returns the batch loss.
    ///
    /// The forward runs in [`Mode::Eval`]: sensitivities are a property of
    /// the *trained, frozen* network.
    pub fn accumulate_hessian(
        &mut self,
        loss: &dyn Loss,
        input: &Tensor,
        targets: &[usize],
    ) -> f64 {
        let logits = self.forward(input, Mode::Eval);
        let l = loss.forward(&logits, targets);
        let h = loss.second_backward(&logits, targets);
        self.second_backward(&h);
        l
    }

    /// Like [`Network::accumulate_hessian`], but runs a first-order
    /// backward pass before the second-order pass so smooth activations
    /// (tanh, sigmoid) can include the full Eq. 9 curvature term
    /// `g''·∂f/∂P`. Parameter gradients are accumulated as a side effect.
    ///
    /// For pure-ReLU networks this produces the same Hessian diagonal as
    /// [`Network::accumulate_hessian`] (the `g''` term is identically
    /// zero).
    pub fn accumulate_hessian_full(
        &mut self,
        loss: &dyn Loss,
        input: &Tensor,
        targets: &[usize],
    ) -> f64 {
        let logits = self.forward(input, Mode::Eval);
        let l = loss.forward(&logits, targets);
        let g = loss.backward(&logits, targets);
        self.backward(&g);
        let h = loss.second_backward(&logits, targets);
        self.second_backward(&h);
        l
    }

    // ------------------------------------------------------------- params

    /// Visits every parameter in deterministic layer order.
    pub fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Param)) {
        self.root.visit_params(visitor);
    }

    /// Zeroes all gradient accumulators.
    pub fn zero_grads(&mut self) {
        self.root.zero_grads();
    }

    /// Zeroes all Hessian-diagonal accumulators.
    pub fn zero_hess(&mut self) {
        self.root.zero_hess();
    }

    /// Total trainable scalars (device-mapped and digital).
    pub fn num_params(&mut self) -> usize {
        self.root.num_params()
    }

    /// Number of device-mapped weights (the paper's "total number of
    /// weights" — conv/FC matrices only).
    pub fn device_weight_count(&mut self) -> usize {
        let mut n = 0;
        self.visit_params(&mut |p| {
            if p.is_device_mapped() {
                n += p.len();
            }
        });
        n
    }

    /// Flattens all device-mapped weights into one vector (deterministic
    /// layer order).
    pub fn device_weights(&mut self) -> Vec<f32> {
        let mut out = Vec::new();
        self.visit_params(&mut |p| {
            if p.is_device_mapped() {
                out.extend_from_slice(p.value.data());
            }
        });
        out
    }

    /// Writes a flat weight vector back into the device-mapped parameters.
    ///
    /// # Panics
    ///
    /// Panics if `weights.len()` differs from
    /// [`Network::device_weight_count`].
    pub fn set_device_weights(&mut self, weights: &[f32]) {
        let mut offset = 0usize;
        self.visit_params(&mut |p| {
            if p.is_device_mapped() {
                let n = p.len();
                assert!(
                    offset + n <= weights.len(),
                    "flat weight vector too short: need at least {}",
                    offset + n
                );
                p.value.data_mut().copy_from_slice(&weights[offset..offset + n]);
                offset += n;
            }
        });
        assert_eq!(
            offset,
            weights.len(),
            "flat weight vector length {} does not match device weight count {offset}",
            weights.len()
        );
    }

    /// Flattens the accumulated Hessian diagonal of device-mapped weights.
    pub fn device_hessian(&mut self) -> Vec<f32> {
        let mut out = Vec::new();
        self.visit_params(&mut |p| {
            if p.is_device_mapped() {
                out.extend_from_slice(p.hess.data());
            }
        });
        out
    }

    /// Flattens the accumulated gradient of device-mapped weights.
    pub fn device_gradient(&mut self) -> Vec<f32> {
        let mut out = Vec::new();
        self.visit_params(&mut |p| {
            if p.is_device_mapped() {
                out.extend_from_slice(p.grad.data());
            }
        });
        out
    }

    // ------------------------------------------------------------- metrics

    /// Class predictions (row argmax of the logits).
    pub fn predict(&mut self, input: &Tensor) -> Vec<usize> {
        self.forward(input, Mode::Eval).argmax_rows()
    }

    /// Classification accuracy in `[0, 1]`, evaluated in mini-batches.
    ///
    /// # Panics
    ///
    /// Panics if `labels.len()` differs from the first dimension of
    /// `images`, or `batch_size` is zero.
    pub fn accuracy(&mut self, images: &Tensor, labels: &[usize], batch_size: usize) -> f64 {
        assert!(batch_size > 0, "batch_size must be positive");
        let n = images.shape()[0];
        assert_eq!(labels.len(), n, "label count {} != image count {n}", labels.len());
        if n == 0 {
            return 0.0;
        }
        let mut correct = 0usize;
        let mut start = 0usize;
        while start < n {
            let end = (start + batch_size).min(n);
            let batch = images.slice_axis0(start, end);
            let preds = self.predict(&batch);
            correct += preds.iter().zip(&labels[start..end]).filter(|(p, t)| p == t).count();
            start = end;
        }
        correct as f64 / n as f64
    }

    /// [`Network::accuracy`] with every working buffer (batch slice,
    /// activations) recycled through `arena` — the Monte Carlo eval
    /// loop's zero-allocation scoring path. Results are bit-identical to
    /// [`Network::accuracy`].
    ///
    /// # Panics
    ///
    /// Panics if `labels.len()` differs from the first dimension of
    /// `images`, or `batch_size` is zero.
    pub fn accuracy_with(
        &mut self,
        images: &Tensor,
        labels: &[usize],
        batch_size: usize,
        arena: &mut ActivationArena,
    ) -> f64 {
        assert!(batch_size > 0, "batch_size must be positive");
        let n = images.shape()[0];
        assert_eq!(labels.len(), n, "label count {} != image count {n}", labels.len());
        if n == 0 {
            return 0.0;
        }
        let mut correct = 0usize;
        let mut start = 0usize;
        let mut batch = arena.grab();
        while start < n {
            let end = (start + batch_size).min(n);
            images.slice_axis0_into(start, end, &mut batch);
            let logits = self.forward_with(&batch, Mode::Eval, arena);
            // Row argmax compared against the label in place — exactly
            // `Tensor::argmax_rows` (first maximum wins) without the
            // per-batch index vector.
            let cols = logits.shape()[1];
            assert!(cols > 0, "argmax requires at least one column");
            for (r, &label) in labels[start..end].iter().enumerate() {
                let row = &logits.data()[r * cols..(r + 1) * cols];
                let mut best = 0;
                for (i, &x) in row.iter().enumerate() {
                    if x > row[best] {
                        best = i;
                    }
                }
                if best == label {
                    correct += 1;
                }
            }
            arena.recycle(logits);
            start = end;
        }
        arena.recycle(batch);
        correct as f64 / n as f64
    }

    /// Mean loss over a dataset, evaluated in mini-batches without
    /// touching gradients.
    pub fn evaluate_loss(
        &mut self,
        loss: &dyn Loss,
        images: &Tensor,
        labels: &[usize],
        batch_size: usize,
    ) -> f64 {
        assert!(batch_size > 0, "batch_size must be positive");
        let n = images.shape()[0];
        assert_eq!(labels.len(), n, "label count {} != image count {n}", labels.len());
        if n == 0 {
            return 0.0;
        }
        let mut acc = 0.0f64;
        let mut start = 0usize;
        while start < n {
            let end = (start + batch_size).min(n);
            let batch = images.slice_axis0(start, end);
            let logits = self.forward(&batch, Mode::Eval);
            acc += loss.forward(&logits, &labels[start..end]) * (end - start) as f64;
            start = end;
        }
        acc / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Linear, Relu};
    use crate::loss::SoftmaxCrossEntropy;
    use swim_tensor::Prng;

    fn mlp(rng: &mut Prng) -> Network {
        let mut seq = Sequential::new();
        seq.push(Linear::new(4, 6, rng));
        seq.push(Relu::new());
        seq.push(Linear::new(6, 3, rng));
        Network::new("mlp", seq)
    }

    #[test]
    fn flat_weight_round_trip() {
        let mut rng = Prng::seed_from_u64(1);
        let mut net = mlp(&mut rng);
        let w = net.device_weights();
        assert_eq!(w.len(), 4 * 6 + 6 * 3);
        let mut w2 = w.clone();
        for v in &mut w2 {
            *v += 1.0;
        }
        net.set_device_weights(&w2);
        assert_eq!(net.device_weights(), w2);
        net.set_device_weights(&w);
        assert_eq!(net.device_weights(), w);
    }

    #[test]
    #[should_panic(expected = "flat weight vector")]
    fn set_weights_length_checked() {
        let mut rng = Prng::seed_from_u64(2);
        let mut net = mlp(&mut rng);
        net.set_device_weights(&[0.0; 3]);
    }

    #[test]
    fn clone_is_independent() {
        let mut rng = Prng::seed_from_u64(3);
        let mut net = mlp(&mut rng);
        let mut copy = net.clone();
        let w = net.device_weights();
        let mut w2 = w.clone();
        w2[0] += 5.0;
        copy.set_device_weights(&w2);
        assert_eq!(net.device_weights(), w);
        assert_ne!(copy.device_weights()[0], w[0]);
    }

    #[test]
    fn gradient_accumulation_changes_loss() {
        let mut rng = Prng::seed_from_u64(4);
        let mut net = mlp(&mut rng);
        let x = Tensor::randn(&[8, 4], &mut rng);
        let y: Vec<usize> = (0..8).map(|i| i % 3).collect();
        let loss = SoftmaxCrossEntropy::new();
        net.zero_grads();
        let l = net.accumulate_gradients(&loss, &x, &y);
        assert!(l > 0.0);
        // Gradient descent step by hand should reduce loss.
        let mut grads = Vec::new();
        net.visit_params(&mut |p| grads.push(p.grad.clone()));
        let mut i = 0;
        net.visit_params(&mut |p| {
            p.value.axpy(-0.5, &grads[i]);
            i += 1;
        });
        let l2 = net.evaluate_loss(&loss, &x, &y, 8);
        assert!(l2 < l, "loss {l} -> {l2}");
    }

    #[test]
    fn hessian_accumulation_nonnegative() {
        let mut rng = Prng::seed_from_u64(5);
        let mut net = mlp(&mut rng);
        let x = Tensor::randn(&[8, 4], &mut rng);
        let y: Vec<usize> = (0..8).map(|i| i % 3).collect();
        net.zero_hess();
        net.accumulate_hessian(&SoftmaxCrossEntropy::new(), &x, &y);
        let h = net.device_hessian();
        assert_eq!(h.len(), net.device_weight_count());
        assert!(h.iter().all(|&v| v >= 0.0));
        assert!(h.iter().any(|&v| v > 0.0));
    }

    #[test]
    fn accuracy_bounds() {
        let mut rng = Prng::seed_from_u64(6);
        let mut net = mlp(&mut rng);
        let x = Tensor::randn(&[10, 4], &mut rng);
        let y: Vec<usize> = (0..10).map(|i| i % 3).collect();
        let acc = net.accuracy(&x, &y, 4);
        assert!((0.0..=1.0).contains(&acc));
    }

    #[test]
    fn accuracy_on_empty_dataset_is_zero() {
        let mut rng = Prng::seed_from_u64(7);
        let mut net = mlp(&mut rng);
        let x = Tensor::zeros(&[0, 4]);
        assert_eq!(net.accuracy(&x, &[], 4), 0.0);
    }
}
