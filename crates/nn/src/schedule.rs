//! Learning-rate schedules.
//!
//! The training loop in [`crate::train`] uses a simple per-epoch decay;
//! these schedules provide the step and cosine policies commonly used to
//! train the paper's larger models (ConvNet, ResNet-18) to convergence.

/// A learning-rate schedule: maps an epoch index to a multiplier on the
/// base learning rate.
pub trait LrSchedule {
    /// Multiplier applied to the base learning rate at `epoch`
    /// (0-based).
    fn factor(&self, epoch: usize) -> f32;

    /// Convenience: the absolute learning rate at `epoch`.
    fn lr_at(&self, base_lr: f32, epoch: usize) -> f32 {
        base_lr * self.factor(epoch)
    }
}

/// Constant learning rate.
#[derive(Debug, Clone, Copy, Default)]
pub struct Constant;

impl LrSchedule for Constant {
    fn factor(&self, _epoch: usize) -> f32 {
        1.0
    }
}

/// Multiply by `gamma` every `step_size` epochs (PyTorch `StepLR`).
///
/// # Example
///
/// ```
/// use swim_nn::schedule::{LrSchedule, StepDecay};
///
/// let s = StepDecay::new(10, 0.1);
/// assert_eq!(s.factor(0), 1.0);
/// assert_eq!(s.factor(10), 0.1);
/// assert!((s.factor(25) - 0.01).abs() < 1e-7);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct StepDecay {
    step_size: usize,
    gamma: f32,
}

impl StepDecay {
    /// Creates a step schedule.
    ///
    /// # Panics
    ///
    /// Panics if `step_size` is zero or `gamma` is not in `(0, 1]`.
    pub fn new(step_size: usize, gamma: f32) -> Self {
        assert!(step_size > 0, "step_size must be positive");
        assert!(gamma > 0.0 && gamma <= 1.0, "gamma must be in (0, 1]");
        StepDecay { step_size, gamma }
    }
}

impl LrSchedule for StepDecay {
    fn factor(&self, epoch: usize) -> f32 {
        self.gamma.powi((epoch / self.step_size) as i32)
    }
}

/// Cosine annealing from 1 to `min_factor` over `total_epochs`.
///
/// # Example
///
/// ```
/// use swim_nn::schedule::{CosineAnnealing, LrSchedule};
///
/// let s = CosineAnnealing::new(100, 0.0);
/// assert!((s.factor(0) - 1.0).abs() < 1e-6);
/// assert!((s.factor(50) - 0.5).abs() < 1e-6);
/// assert!(s.factor(100) < 1e-6);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct CosineAnnealing {
    total_epochs: usize,
    min_factor: f32,
}

impl CosineAnnealing {
    /// Creates a cosine schedule.
    ///
    /// # Panics
    ///
    /// Panics if `total_epochs` is zero or `min_factor` is outside
    /// `[0, 1]`.
    pub fn new(total_epochs: usize, min_factor: f32) -> Self {
        assert!(total_epochs > 0, "total_epochs must be positive");
        assert!((0.0..=1.0).contains(&min_factor), "min_factor must be in [0, 1]");
        CosineAnnealing { total_epochs, min_factor }
    }
}

impl LrSchedule for CosineAnnealing {
    fn factor(&self, epoch: usize) -> f32 {
        let t = (epoch.min(self.total_epochs) as f32) / self.total_epochs as f32;
        let cos = 0.5 * (1.0 + (std::f32::consts::PI * t).cos());
        self.min_factor + (1.0 - self.min_factor) * cos
    }
}

/// Linear warmup wrapped around another schedule: the factor ramps
/// 0 → 1 over `warmup_epochs`, then delegates.
#[derive(Debug, Clone, Copy)]
pub struct Warmup<S> {
    warmup_epochs: usize,
    inner: S,
}

impl<S: LrSchedule> Warmup<S> {
    /// Wraps `inner` with `warmup_epochs` of linear ramp.
    pub fn new(warmup_epochs: usize, inner: S) -> Self {
        Warmup { warmup_epochs, inner }
    }
}

impl<S: LrSchedule> LrSchedule for Warmup<S> {
    fn factor(&self, epoch: usize) -> f32 {
        if epoch < self.warmup_epochs {
            (epoch + 1) as f32 / self.warmup_epochs as f32
        } else {
            self.inner.factor(epoch - self.warmup_epochs)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_one() {
        for e in [0, 5, 100] {
            assert_eq!(Constant.factor(e), 1.0);
        }
    }

    #[test]
    fn step_decay_plateaus() {
        let s = StepDecay::new(3, 0.5);
        assert_eq!(s.factor(0), s.factor(2));
        assert_eq!(s.factor(3), 0.5);
        assert_eq!(s.factor(6), 0.25);
    }

    #[test]
    fn cosine_is_monotone_decreasing() {
        let s = CosineAnnealing::new(20, 0.1);
        for e in 0..20 {
            assert!(s.factor(e) >= s.factor(e + 1) - 1e-7);
        }
        // Clamps past the horizon.
        assert!((s.factor(25) - 0.1).abs() < 1e-6);
    }

    #[test]
    fn warmup_ramps_then_delegates() {
        let s = Warmup::new(4, StepDecay::new(10, 0.1));
        assert_eq!(s.factor(0), 0.25);
        assert_eq!(s.factor(3), 1.0);
        assert_eq!(s.factor(4), 1.0); // inner epoch 0
        assert_eq!(s.factor(14), 0.1); // inner epoch 10
    }

    #[test]
    fn lr_at_multiplies_base() {
        let s = StepDecay::new(1, 0.5);
        assert_eq!(s.lr_at(0.2, 1), 0.1);
    }

    #[test]
    #[should_panic(expected = "gamma")]
    fn rejects_bad_gamma() {
        StepDecay::new(1, 1.5);
    }
}
