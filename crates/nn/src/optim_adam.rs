//! Adam optimizer.

use crate::network::Network;
use swim_tensor::Tensor;

/// Adam (adaptive moment estimation) optimizer.
///
/// The SGD in [`crate::optim::Sgd`] matches the paper's training setup;
/// Adam is provided because the wider substrate (training ConvNet /
/// ResNet-18 substitutes from scratch on small synthetic datasets)
/// benefits from its robustness to learning-rate choice.
///
/// # Example
///
/// ```
/// use swim_nn::layers::{Linear, Sequential};
/// use swim_nn::network::Network;
/// use swim_nn::optim_adam::Adam;
/// use swim_nn::loss::{Loss, SoftmaxCrossEntropy};
/// use swim_tensor::{Prng, Tensor};
///
/// let mut rng = Prng::seed_from_u64(0);
/// let mut seq = Sequential::new();
/// seq.push(Linear::new(2, 2, &mut rng));
/// let mut net = Network::new("m", seq);
/// let mut adam = Adam::new(0.05);
/// let x = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2])?;
/// let loss = SoftmaxCrossEntropy::new();
/// let before = net.evaluate_loss(&loss, &x, &[0, 1], 2);
/// for _ in 0..30 {
///     net.zero_grads();
///     net.accumulate_gradients(&loss, &x, &[0, 1]);
///     adam.step(&mut net);
/// }
/// assert!(net.evaluate_loss(&loss, &x, &[0, 1], 2) < before);
/// # Ok::<(), swim_tensor::TensorError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    step_count: u64,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Creates Adam with the given learning rate and the standard
    /// moment coefficients (β₁ = 0.9, β₂ = 0.999, ε = 1e-8).
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not finite and positive.
    pub fn new(lr: f32) -> Self {
        assert!(lr.is_finite() && lr > 0.0, "learning rate must be positive");
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            step_count: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Sets decoupled weight decay (AdamW style), builder form.
    ///
    /// # Panics
    ///
    /// Panics if `wd` is negative.
    pub fn weight_decay(mut self, wd: f32) -> Self {
        assert!(wd >= 0.0, "weight decay must be non-negative");
        self.weight_decay = wd;
        self
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Applies one update from the accumulated gradients.
    ///
    /// # Panics
    ///
    /// Panics if the network's parameter shapes changed since the first
    /// step.
    pub fn step(&mut self, network: &mut Network) {
        self.step_count += 1;
        let t = self.step_count as f32;
        let bias1 = 1.0 - self.beta1.powf(t);
        let bias2 = 1.0 - self.beta2.powf(t);
        let (lr, b1, b2, eps, wd) = (self.lr, self.beta1, self.beta2, self.eps, self.weight_decay);
        let (ms, vs) = (&mut self.m, &mut self.v);
        let mut idx = 0usize;
        network.visit_params(&mut |p| {
            if ms.len() == idx {
                ms.push(Tensor::zeros(p.value.shape()));
                vs.push(Tensor::zeros(p.value.shape()));
            }
            let m = &mut ms[idx];
            let v = &mut vs[idx];
            assert_eq!(
                m.shape(),
                p.value.shape(),
                "parameter {} changed shape; optimizer state is stale",
                p.name
            );
            let md = m.data_mut();
            let vd = v.data_mut();
            let wdata = p.value.data_mut();
            let gdata = p.grad.data();
            for i in 0..wdata.len() {
                let g = gdata[i];
                md[i] = b1 * md[i] + (1.0 - b1) * g;
                vd[i] = b2 * vd[i] + (1.0 - b2) * g * g;
                let m_hat = md[i] / bias1;
                let v_hat = vd[i] / bias2;
                wdata[i] -= lr * (m_hat / (v_hat.sqrt() + eps) + wd * wdata[i]);
            }
            idx += 1;
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Linear, Relu, Sequential};
    use crate::loss::SoftmaxCrossEntropy;
    use swim_tensor::Prng;

    fn toy() -> (Network, Tensor, Vec<usize>) {
        let mut rng = Prng::seed_from_u64(77);
        let mut seq = Sequential::new();
        seq.push(Linear::new(2, 8, &mut rng));
        seq.push(Relu::new());
        seq.push(Linear::new(8, 2, &mut rng));
        let net = Network::new("toy", seq);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..32 {
            let cls = i % 2;
            let c = if cls == 0 { -1.0f32 } else { 1.0 };
            xs.push(c + rng.normal_f32(0.0, 0.2));
            xs.push(-c + rng.normal_f32(0.0, 0.2));
            ys.push(cls);
        }
        (net, Tensor::from_vec(xs, &[32, 2]).unwrap(), ys)
    }

    #[test]
    fn adam_descends() {
        let (mut net, x, y) = toy();
        let loss = SoftmaxCrossEntropy::new();
        let before = net.evaluate_loss(&loss, &x, &y, 32);
        let mut adam = Adam::new(0.05);
        for _ in 0..40 {
            net.zero_grads();
            net.accumulate_gradients(&loss, &x, &y);
            adam.step(&mut net);
        }
        let after = net.evaluate_loss(&loss, &x, &y, 32);
        assert!(after < before * 0.5, "{before} -> {after}");
    }

    #[test]
    fn adam_tolerates_large_lr_better_than_sgd() {
        // With lr = 1.0, SGD diverges on this problem while Adam's
        // normalized steps keep training stable.
        let (mut net_sgd, x, y) = toy();
        let mut net_adam = net_sgd.clone();
        let loss = SoftmaxCrossEntropy::new();
        let mut sgd = crate::optim::Sgd::new(1.0);
        let mut adam = Adam::new(1.0);
        for _ in 0..25 {
            net_sgd.zero_grads();
            net_sgd.accumulate_gradients(&loss, &x, &y);
            sgd.step(&mut net_sgd);
            net_adam.zero_grads();
            net_adam.accumulate_gradients(&loss, &x, &y);
            adam.step(&mut net_adam);
        }
        let l_sgd = net_sgd.evaluate_loss(&loss, &x, &y, 32);
        let l_adam = net_adam.evaluate_loss(&loss, &x, &y, 32);
        assert!(l_adam.is_finite());
        assert!(l_adam < l_sgd || !l_sgd.is_finite(), "adam {l_adam} sgd {l_sgd}");
    }

    #[test]
    fn weight_decay_shrinks_unused_weights() {
        let (mut net, x, y) = toy();
        let loss = SoftmaxCrossEntropy::new();
        let norm_before: f64 = net.device_weights().iter().map(|&w| (w as f64).powi(2)).sum();
        let mut adam = Adam::new(0.001).weight_decay(0.5);
        for _ in 0..30 {
            net.zero_grads();
            net.accumulate_gradients(&loss, &x, &y);
            adam.step(&mut net);
        }
        let norm_after: f64 = net.device_weights().iter().map(|&w| (w as f64).powi(2)).sum();
        assert!(norm_after < norm_before);
    }

    #[test]
    #[should_panic(expected = "learning rate")]
    fn rejects_bad_lr() {
        Adam::new(0.0);
    }
}
