//! LeNet for 28×28 grayscale images (the paper's MNIST model).

use crate::layers::{ActQuant, Conv2d, Flatten, Linear, MaxPool2d, Relu, Sequential};
use crate::network::Network;
use swim_tensor::Prng;

/// Configuration for [`LeNet`](build).
///
/// The default reproduces the paper's MNIST network: ~1.0×10⁵
/// device-mapped weights (the paper reports 1.05×10⁵) with 4-bit
/// activation quantization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeNetConfig {
    /// Number of output classes.
    pub num_classes: usize,
    /// Activation quantization bit width (`None` disables fake quant).
    pub act_bits: Option<u32>,
    /// Width of the first fully connected layer.
    pub fc1_width: usize,
}

impl Default for LeNetConfig {
    fn default() -> Self {
        LeNetConfig { num_classes: 10, act_bits: Some(4), fc1_width: 200 }
    }
}

impl LeNetConfig {
    /// The paper's setting (4-bit weights and activations, 10 classes).
    pub fn paper() -> Self {
        Self::default()
    }

    /// Builds the network with deterministic initialization.
    pub fn build(&self, seed: u64) -> Network {
        build(self, seed)
    }
}

/// Builds a LeNet:
/// `conv(1→6,k5,p2) → pool → conv(6→16,k5) → pool → fc → fc → fc`.
///
/// # Example
///
/// ```
/// use swim_nn::models::LeNetConfig;
///
/// let mut net = LeNetConfig::default().build(42);
/// // ~100k device weights, close to the paper's 1.05e5.
/// let n = net.device_weight_count();
/// assert!(n > 90_000 && n < 115_000, "{n}");
/// ```
pub fn build(config: &LeNetConfig, seed: u64) -> Network {
    assert!(config.num_classes > 0, "num_classes must be positive");
    assert!(config.fc1_width > 0, "fc1_width must be positive");
    let mut rng = Prng::seed_from_u64(seed);
    let mut seq = Sequential::new();

    seq.push(Conv2d::new(1, 6, 5, 1, 2, &mut rng)); // 28x28 -> 28x28
    seq.push(Relu::new());
    if let Some(bits) = config.act_bits {
        seq.push(ActQuant::unsigned(bits));
    }
    seq.push(MaxPool2d::new(2)); // -> 14x14

    seq.push(Conv2d::new(6, 16, 5, 1, 0, &mut rng)); // -> 10x10
    seq.push(Relu::new());
    if let Some(bits) = config.act_bits {
        seq.push(ActQuant::unsigned(bits));
    }
    seq.push(MaxPool2d::new(2)); // -> 5x5

    seq.push(Flatten::new()); // 16*5*5 = 400
    seq.push(Linear::new(400, config.fc1_width, &mut rng));
    seq.push(Relu::new());
    if let Some(bits) = config.act_bits {
        seq.push(ActQuant::unsigned(bits));
    }
    seq.push(Linear::new(config.fc1_width, 84, &mut rng));
    seq.push(Relu::new());
    if let Some(bits) = config.act_bits {
        seq.push(ActQuant::unsigned(bits));
    }
    seq.push(Linear::new(84, config.num_classes, &mut rng));

    Network::new("lenet", seq)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::Mode;
    use swim_tensor::Tensor;

    #[test]
    fn forward_shape() {
        let mut net = LeNetConfig::default().build(0);
        let x = Tensor::zeros(&[2, 1, 28, 28]);
        let y = net.forward(&x, Mode::Eval);
        assert_eq!(y.shape(), &[2, 10]);
    }

    #[test]
    fn weight_count_near_paper() {
        let mut net = LeNetConfig::paper().build(0);
        let n = net.device_weight_count();
        // conv 150+2400, fc 80000+16800+840 = 100190
        assert_eq!(n, 150 + 2400 + 400 * 200 + 200 * 84 + 84 * 10);
    }

    #[test]
    fn deterministic_init() {
        let mut a = LeNetConfig::default().build(5);
        let mut b = LeNetConfig::default().build(5);
        assert_eq!(a.device_weights(), b.device_weights());
        let mut c = LeNetConfig::default().build(6);
        assert_ne!(a.device_weights(), c.device_weights());
    }

    #[test]
    fn quantization_is_optional() {
        let cfg = LeNetConfig { act_bits: None, ..Default::default() };
        let mut net = cfg.build(1);
        assert!(!net.describe().contains("ActQuant"));
        let mut q = LeNetConfig::default().build(1);
        assert!(q.describe().contains("ActQuant"));
        // Same weight count either way.
        assert_eq!(net.device_weight_count(), q.device_weight_count());
    }
}
