//! ResNet-18 (basic blocks) for 32×32 and 64×64 inputs.

use crate::layers::{
    ActQuant, BatchNorm2d, Conv2d, GlobalAvgPool, Linear, MaxPool2d, Relu, Residual, Sequential,
};
use crate::network::Network;
use swim_tensor::Prng;

/// Input stem variant.
///
/// Both of the paper's ResNet-18 experiments use small images, so the
/// ImageNet 7×7/stride-2 stem is replaced by the common small-image
/// variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResNetStem {
    /// 3×3 stride-1 convolution, no pooling — for 32×32 (CIFAR-10).
    Cifar,
    /// 3×3 stride-1 convolution followed by 2×2 max pooling — for 64×64
    /// (Tiny ImageNet), bringing the spatial size back to 32×32.
    TinyImageNet,
}

/// Configuration for [`ResNet-18`](build).
///
/// At `width_factor = 1.0` and 10 classes the network has ≈1.11×10⁷
/// device-mapped weights, matching the paper's 1.12×10⁷. Batch-norm
/// parameters are digital (not write-verify candidates).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResNet18Config {
    /// Number of output classes.
    pub num_classes: usize,
    /// Activation quantization bit width (`None` disables fake quant).
    pub act_bits: Option<u32>,
    /// Multiplier on all channel widths.
    pub width_factor: f32,
    /// Input stem variant.
    pub stem: ResNetStem,
}

impl Default for ResNet18Config {
    fn default() -> Self {
        ResNet18Config {
            num_classes: 10,
            act_bits: Some(6),
            width_factor: 1.0,
            stem: ResNetStem::Cifar,
        }
    }
}

impl ResNet18Config {
    /// The paper's CIFAR-10 setting.
    pub fn paper_cifar() -> Self {
        Self::default()
    }

    /// The paper's Tiny-ImageNet setting (200 classes, 64×64 inputs).
    pub fn paper_tiny_imagenet() -> Self {
        ResNet18Config { num_classes: 200, stem: ResNetStem::TinyImageNet, ..Self::default() }
    }

    /// A reduced-width configuration sized for CPU experiments.
    pub fn reduced(width_factor: f32) -> Self {
        ResNet18Config { width_factor, ..Self::default() }
    }

    /// Builds the network with deterministic initialization.
    pub fn build(&self, seed: u64) -> Network {
        build(self, seed)
    }

    fn scaled(&self, base: usize) -> usize {
        ((base as f32 * self.width_factor).round() as usize).max(4)
    }
}

fn conv_bn(
    seq: &mut Sequential,
    cin: usize,
    cout: usize,
    kernel: usize,
    stride: usize,
    padding: usize,
    rng: &mut Prng,
) {
    seq.push(Conv2d::new(cin, cout, kernel, stride, padding, rng));
    seq.push(BatchNorm2d::new(cout));
}

/// One basic block: `conv-bn-relu-conv-bn` with identity or 1×1
/// projection shortcut, wrapped in a [`Residual`] (post-add ReLU).
fn basic_block(
    cin: usize,
    cout: usize,
    stride: usize,
    act_bits: Option<u32>,
    rng: &mut Prng,
) -> Residual {
    let mut main = Sequential::new();
    conv_bn(&mut main, cin, cout, 3, stride, 1, rng);
    main.push(Relu::new());
    if let Some(bits) = act_bits {
        main.push(ActQuant::unsigned(bits));
    }
    conv_bn(&mut main, cout, cout, 3, 1, 1, rng);

    if stride != 1 || cin != cout {
        let mut shortcut = Sequential::new();
        conv_bn(&mut shortcut, cin, cout, 1, stride, 0, rng);
        Residual::with_shortcut(main, shortcut)
    } else {
        Residual::new(main)
    }
}

/// Builds a ResNet-18: stem, four stages of two basic blocks
/// (widths 64/128/256/512 × `width_factor`), global average pooling, and
/// a linear classifier.
///
/// # Example
///
/// ```
/// use swim_nn::models::{ResNet18Config, ResNetStem};
///
/// let cfg = ResNet18Config::reduced(0.25);
/// let mut net = cfg.build(1);
/// assert!(net.device_weight_count() > 100_000);
/// ```
pub fn build(config: &ResNet18Config, seed: u64) -> Network {
    assert!(config.num_classes > 0, "num_classes must be positive");
    assert!(
        config.width_factor > 0.0 && config.width_factor.is_finite(),
        "width_factor must be positive"
    );
    let mut rng = Prng::seed_from_u64(seed);
    let widths = [config.scaled(64), config.scaled(128), config.scaled(256), config.scaled(512)];

    let mut seq = Sequential::new();
    // Stem.
    conv_bn(&mut seq, 3, widths[0], 3, 1, 1, &mut rng);
    seq.push(Relu::new());
    if let Some(bits) = config.act_bits {
        seq.push(ActQuant::unsigned(bits));
    }
    if config.stem == ResNetStem::TinyImageNet {
        seq.push(MaxPool2d::new(2)); // 64 -> 32
    }

    // Stages: two blocks each; stages 2-4 downsample at their first block.
    let mut cin = widths[0];
    for (stage, &cout) in widths.iter().enumerate() {
        let stride = if stage == 0 { 1 } else { 2 };
        seq.push(basic_block(cin, cout, stride, config.act_bits, &mut rng));
        seq.push(basic_block(cout, cout, 1, config.act_bits, &mut rng));
        cin = cout;
    }

    seq.push(GlobalAvgPool::new());
    seq.push(Linear::new(widths[3], config.num_classes, &mut rng));

    let name = match config.stem {
        ResNetStem::Cifar => "resnet18-cifar",
        ResNetStem::TinyImageNet => "resnet18-tiny",
    };
    Network::new(name, seq)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::Mode;
    use swim_tensor::Tensor;

    #[test]
    fn cifar_forward_shape() {
        let mut net = ResNet18Config::reduced(0.125).build(0);
        let x = Tensor::zeros(&[2, 3, 32, 32]);
        assert_eq!(net.forward(&x, Mode::Eval).shape(), &[2, 10]);
    }

    #[test]
    fn tiny_imagenet_forward_shape() {
        let cfg = ResNet18Config {
            num_classes: 20,
            stem: ResNetStem::TinyImageNet,
            width_factor: 0.125,
            ..Default::default()
        };
        let mut net = cfg.build(0);
        let x = Tensor::zeros(&[1, 3, 64, 64]);
        assert_eq!(net.forward(&x, Mode::Eval).shape(), &[1, 20]);
    }

    #[test]
    fn full_width_weight_count_matches_paper() {
        let mut net = ResNet18Config::paper_cifar().build(0);
        let n = net.device_weight_count();
        // The paper reports 1.12e7 for its CIFAR ResNet-18.
        assert!(
            (10_900_000..11_400_000).contains(&n),
            "device weights {n} not within expected ResNet-18 range"
        );
    }

    #[test]
    fn backward_through_residuals() {
        let mut net = ResNet18Config::reduced(0.0625).build(1);
        let mut rng = Prng::seed_from_u64(9);
        let x = Tensor::randn(&[2, 3, 32, 32], &mut rng);
        let y = net.forward(&x, Mode::Train);
        let g = net.backward(&Tensor::ones(y.shape()));
        assert_eq!(g.shape(), x.shape());
        let y2 = net.forward(&x, Mode::Eval);
        let h = net.second_backward(&Tensor::ones(y2.shape()));
        assert_eq!(h.shape(), x.shape());
        assert!(h.data().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn bn_params_not_device_mapped() {
        let mut net = ResNet18Config::reduced(0.0625).build(1);
        let mut digital = 0usize;
        let mut device = 0usize;
        net.visit_params(&mut |p| {
            if p.is_device_mapped() {
                device += p.len();
            } else {
                digital += p.len();
            }
        });
        assert!(device > 0 && digital > 0);
        assert_eq!(device + digital, net.num_params());
    }
}
