//! The paper's three evaluation models.
//!
//! | Paper model | Dataset | Builder | Device weights (full width) |
//! |-------------|---------|---------|------------------------------|
//! | LeNet       | MNIST   | [`LeNetConfig`] | ≈1.0×10⁵ (paper: 1.05×10⁵) |
//! | ConvNet \[6\] | CIFAR-10 | [`ConvNetConfig`] | ≈5.4×10⁶ (paper: 6.4×10⁶) |
//! | ResNet-18 \[3\] | CIFAR-10 / Tiny ImageNet | [`ResNet18Config`] | ≈1.11×10⁷ (paper: 1.12×10⁷) |
//!
//! Every config exposes `width_factor`-style scaling so the experiment
//! harness can run the same architectures at CPU-friendly sizes; the
//! `paper()` constructors give the full-size networks.

mod convnet;
mod lenet;
mod resnet;

pub use convnet::{build as build_convnet, ConvNetConfig};
pub use lenet::{build as build_lenet, LeNetConfig};
pub use resnet::{build as build_resnet18, ResNet18Config, ResNetStem};
