//! ConvNet (VGG-style, after DNN+NeuroSim) for 32×32 RGB images.

use crate::layers::{ActQuant, Conv2d, Flatten, Linear, MaxPool2d, Relu, Sequential};
use crate::network::Network;
use swim_tensor::Prng;

/// Configuration for the CIFAR-10 [`ConvNet`](build).
///
/// The architecture follows the 8-layer VGG-style CNN used by
/// DNN+NeuroSim (paper ref \[6\]): three conv-conv-pool stages followed by
/// two fully connected layers. At `width_factor = 1.0` it has ≈5.4×10⁶
/// device-mapped weights (the paper reports 6.4×10⁶ for its NeuroSim
/// ConvNet; the difference is the FC head width, documented in
/// DESIGN.md). `width_factor` scales every channel/hidden width so the
/// figure-regeneration benches can run at CPU-friendly sizes while
/// exercising the identical architecture.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConvNetConfig {
    /// Number of output classes.
    pub num_classes: usize,
    /// Activation quantization bit width (`None` disables fake quant).
    pub act_bits: Option<u32>,
    /// Multiplier on all channel and hidden widths.
    pub width_factor: f32,
}

impl Default for ConvNetConfig {
    fn default() -> Self {
        ConvNetConfig { num_classes: 10, act_bits: Some(6), width_factor: 1.0 }
    }
}

impl ConvNetConfig {
    /// The paper's setting (6-bit quantization, full width).
    pub fn paper() -> Self {
        Self::default()
    }

    /// A reduced-width configuration sized for CPU experiments.
    pub fn reduced(width_factor: f32) -> Self {
        ConvNetConfig { width_factor, ..Self::default() }
    }

    /// Builds the network with deterministic initialization.
    pub fn build(&self, seed: u64) -> Network {
        build(self, seed)
    }

    fn scaled(&self, base: usize) -> usize {
        ((base as f32 * self.width_factor).round() as usize).max(4)
    }
}

/// Builds the ConvNet:
/// `[conv-conv-pool] ×3 → fc(→1024·w) → fc(→classes)` on 32×32 inputs.
///
/// # Example
///
/// ```
/// use swim_nn::models::ConvNetConfig;
///
/// let mut net = ConvNetConfig::reduced(0.125).build(7);
/// assert!(net.device_weight_count() > 10_000);
/// ```
pub fn build(config: &ConvNetConfig, seed: u64) -> Network {
    assert!(config.num_classes > 0, "num_classes must be positive");
    assert!(
        config.width_factor > 0.0 && config.width_factor.is_finite(),
        "width_factor must be positive"
    );
    let mut rng = Prng::seed_from_u64(seed);
    let c1 = config.scaled(64);
    let c2 = config.scaled(128);
    let c3 = config.scaled(256);
    let fc = config.scaled(1024);

    let mut seq = Sequential::new();
    let conv_block = |seq: &mut Sequential, cin: usize, cout: usize, rng: &mut Prng| {
        seq.push(Conv2d::new(cin, cout, 3, 1, 1, rng));
        seq.push(Relu::new());
        if let Some(bits) = config.act_bits {
            seq.push(ActQuant::unsigned(bits));
        }
    };

    conv_block(&mut seq, 3, c1, &mut rng);
    conv_block(&mut seq, c1, c1, &mut rng);
    seq.push(MaxPool2d::new(2)); // 32 -> 16
    conv_block(&mut seq, c1, c2, &mut rng);
    conv_block(&mut seq, c2, c2, &mut rng);
    seq.push(MaxPool2d::new(2)); // 16 -> 8
    conv_block(&mut seq, c2, c3, &mut rng);
    conv_block(&mut seq, c3, c3, &mut rng);
    seq.push(MaxPool2d::new(2)); // 8 -> 4

    seq.push(Flatten::new()); // c3 * 16
    seq.push(Linear::new(c3 * 16, fc, &mut rng));
    seq.push(Relu::new());
    if let Some(bits) = config.act_bits {
        seq.push(ActQuant::unsigned(bits));
    }
    seq.push(Linear::new(fc, config.num_classes, &mut rng));

    Network::new("convnet", seq)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::Mode;
    use swim_tensor::Tensor;

    #[test]
    fn forward_shape_reduced() {
        let mut net = ConvNetConfig::reduced(0.125).build(0);
        let x = Tensor::zeros(&[2, 3, 32, 32]);
        assert_eq!(net.forward(&x, Mode::Eval).shape(), &[2, 10]);
    }

    #[test]
    fn full_width_weight_count() {
        let mut net = ConvNetConfig::paper().build(0);
        let n = net.device_weight_count();
        // conv: 1728 + 36864 + 73728 + 147456 + 294912 + 589824 = 1144512
        // fc: 4096*1024 + 1024*10 = 4204544
        assert_eq!(n, 1_144_512 + 4_204_544);
    }

    #[test]
    fn width_factor_scales_params() {
        let mut small = ConvNetConfig::reduced(0.25).build(0);
        let mut large = ConvNetConfig::reduced(0.5).build(0);
        assert!(large.device_weight_count() > 3 * small.device_weight_count());
    }

    #[test]
    fn deterministic_build() {
        let mut a = ConvNetConfig::reduced(0.25).build(3);
        let mut b = ConvNetConfig::reduced(0.25).build(3);
        assert_eq!(a.device_weights(), b.device_weights());
    }

    #[test]
    #[should_panic(expected = "width_factor")]
    fn rejects_zero_width() {
        ConvNetConfig { width_factor: 0.0, ..Default::default() }.build(0);
    }
}
