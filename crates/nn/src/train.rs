//! Mini-batch training loop.

use crate::loss::Loss;
use crate::network::Network;
use crate::optim::Sgd;
use swim_tensor::{Prng, Tensor};

/// Configuration for [`fit`].
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Initial learning rate.
    pub lr: f32,
    /// Momentum coefficient.
    pub momentum: f32,
    /// L2 weight decay.
    pub weight_decay: f32,
    /// Multiplicative learning-rate decay applied after each epoch.
    pub lr_decay: f32,
    /// Shuffle seed (shuffling is deterministic given this seed).
    pub seed: u64,
    /// Print one progress line per epoch when `true`.
    pub verbose: bool,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 10,
            batch_size: 32,
            lr: 0.1,
            momentum: 0.9,
            weight_decay: 1e-4,
            lr_decay: 0.95,
            seed: 0,
            verbose: false,
        }
    }
}

/// Per-epoch training history.
#[derive(Debug, Clone, Default)]
pub struct TrainHistory {
    /// Mean training loss of each epoch.
    pub losses: Vec<f64>,
}

impl TrainHistory {
    /// Final epoch's mean loss, or `NaN` if no epoch ran.
    pub fn final_loss(&self) -> f64 {
        self.losses.last().copied().unwrap_or(f64::NAN)
    }
}

/// Trains `network` with SGD on `(images, labels)`.
///
/// This is the "train to convergence before mapping" substrate step of
/// the paper's pipeline (§4.2). Shuffling, and therefore the entire run,
/// is deterministic given `config.seed`.
///
/// # Panics
///
/// Panics if `labels.len()` differs from the number of images, or the
/// config contains non-positive `epochs`/`batch_size`.
pub fn fit(
    network: &mut Network,
    loss: &dyn Loss,
    images: &Tensor,
    labels: &[usize],
    config: &TrainConfig,
) -> TrainHistory {
    let n = images.shape()[0];
    assert_eq!(labels.len(), n, "label count {} != image count {n}", labels.len());
    assert!(config.epochs > 0, "epochs must be positive");
    assert!(config.batch_size > 0, "batch_size must be positive");

    let mut rng = Prng::seed_from_u64(config.seed);
    let mut sgd = Sgd::new(config.lr).momentum(config.momentum).weight_decay(config.weight_decay);
    let mut order: Vec<usize> = (0..n).collect();
    let mut history = TrainHistory::default();

    for epoch in 0..config.epochs {
        rng.shuffle(&mut order);
        let mut epoch_loss = 0.0f64;
        let mut batches = 0usize;
        let mut start = 0usize;
        while start < n {
            let end = (start + config.batch_size).min(n);
            let idx = &order[start..end];
            let batch = images.gather_axis0(idx);
            let targets: Vec<usize> = idx.iter().map(|&i| labels[i]).collect();
            network.zero_grads();
            epoch_loss += network.accumulate_gradients(loss, &batch, &targets);
            sgd.step(network);
            batches += 1;
            start = end;
        }
        let mean_loss = epoch_loss / batches.max(1) as f64;
        history.losses.push(mean_loss);
        if config.verbose {
            println!(
                "epoch {:>3}/{}: loss {:.4} (lr {:.4})",
                epoch + 1,
                config.epochs,
                mean_loss,
                sgd.lr()
            );
        }
        let next_lr = sgd.lr() * config.lr_decay;
        if next_lr > 0.0 {
            sgd.set_lr(next_lr);
        }
    }
    history
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Linear, Relu, Sequential};
    use crate::loss::SoftmaxCrossEntropy;

    #[test]
    fn fit_learns_separable_data() {
        let mut rng = Prng::seed_from_u64(42);
        let mut seq = Sequential::new();
        seq.push(Linear::new(2, 16, &mut rng));
        seq.push(Relu::new());
        seq.push(Linear::new(16, 2, &mut rng));
        let mut net = Network::new("toy", seq);

        let n = 64;
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..n {
            let cls = i % 2;
            let c = if cls == 0 { -1.0f32 } else { 1.0 };
            xs.push(c + rng.normal_f32(0.0, 0.3));
            xs.push(-c + rng.normal_f32(0.0, 0.3));
            ys.push(cls);
        }
        let x = Tensor::from_vec(xs, &[n, 2]).unwrap();
        let cfg = TrainConfig { epochs: 15, batch_size: 16, lr: 0.2, ..Default::default() };
        let hist = fit(&mut net, &SoftmaxCrossEntropy::new(), &x, &ys, &cfg);
        assert_eq!(hist.losses.len(), 15);
        assert!(hist.final_loss() < hist.losses[0]);
        assert!(net.accuracy(&x, &ys, 32) > 0.95);
    }

    #[test]
    fn training_is_deterministic() {
        let build = || {
            let mut rng = Prng::seed_from_u64(7);
            let mut seq = Sequential::new();
            seq.push(Linear::new(3, 4, &mut rng));
            seq.push(Relu::new());
            seq.push(Linear::new(4, 2, &mut rng));
            Network::new("d", seq)
        };
        let mut rng = Prng::seed_from_u64(8);
        let x = Tensor::randn(&[20, 3], &mut rng);
        let y: Vec<usize> = (0..20).map(|i| i % 2).collect();
        let cfg = TrainConfig { epochs: 3, batch_size: 8, ..Default::default() };
        let mut a = build();
        let mut b = build();
        let ha = fit(&mut a, &SoftmaxCrossEntropy::new(), &x, &y, &cfg);
        let hb = fit(&mut b, &SoftmaxCrossEntropy::new(), &x, &y, &cfg);
        assert_eq!(ha.losses, hb.losses);
        assert_eq!(a.device_weights(), b.device_weights());
    }
}
