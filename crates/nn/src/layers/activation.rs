//! Smooth activations (Tanh, Sigmoid) with the *full* second-order rule.
//!
//! The paper's Eq. 9 keeps a curvature term that vanishes for ReLU:
//!
//! ```text
//! ∂²f/∂I² = g'(I)² · ∂²f/∂P²  −  g''(I) · ∂f/∂I-side-term
//! ```
//!
//! in the standard chain-rule form for `P = g(I)`:
//! `h_I = g'(I)²·h_P + g''(I)·(∂f/∂P)`. For ReLU `g'' = 0` and the rule
//! collapses to the indicator (Eq. 10); these layers implement the
//! general form, which requires the first-order gradient `∂f/∂P` — so
//! [`Layer::backward`] must run before [`Layer::second_backward`] for the
//! curvature term to be included (the
//! [`crate::network::Network::accumulate_hessian_full`] helper does
//! this). Without a cached gradient the layers fall back to the
//! Gauss–Newton form (`g''` term dropped), which is also what the paper's
//! ReLU-only experiments use.

use crate::arena::ActivationArena;
use crate::layer::{Layer, Mode};
use crate::param::Param;
use swim_tensor::Tensor;

/// Which smooth nonlinearity a [`SmoothActivation`] applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Smooth {
    /// `tanh(x)`; `g' = 1 − g²`, `g'' = −2·g·g'`.
    Tanh,
    /// `1/(1+e^{−x})`; `g' = g(1−g)`, `g'' = g'(1−2g)`.
    Sigmoid,
}

/// Tanh or sigmoid activation with exact second-order backpropagation.
///
/// # Example
///
/// ```
/// use swim_nn::layers::{Smooth, SmoothActivation};
/// use swim_nn::layer::{Layer, Mode};
/// use swim_tensor::Tensor;
///
/// let mut act = SmoothActivation::new(Smooth::Tanh);
/// let y = act.forward(&Tensor::from_vec(vec![0.0, 100.0], &[2])?, Mode::Eval);
/// assert!(y.data()[0].abs() < 1e-7);
/// assert!((y.data()[1] - 1.0).abs() < 1e-6);
/// # Ok::<(), swim_tensor::TensorError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SmoothActivation {
    kind: Smooth,
    /// Cached activation output `g(I)` from the last forward.
    output: Option<Tensor>,
    /// Cached upstream gradient `∂f/∂P` from the last backward.
    grad_output: Option<Tensor>,
}

impl SmoothActivation {
    /// Creates the activation layer.
    pub fn new(kind: Smooth) -> Self {
        SmoothActivation { kind, output: None, grad_output: None }
    }

    /// The nonlinearity in use.
    pub fn kind(&self) -> Smooth {
        self.kind
    }

    fn apply(&self, x: f32) -> f32 {
        match self.kind {
            Smooth::Tanh => x.tanh(),
            Smooth::Sigmoid => 1.0 / (1.0 + (-x).exp()),
        }
    }

    /// First derivative expressed through the cached output `g`.
    fn derivative(&self, g: f32) -> f32 {
        match self.kind {
            Smooth::Tanh => 1.0 - g * g,
            Smooth::Sigmoid => g * (1.0 - g),
        }
    }

    /// Second derivative expressed through the cached output `g`.
    fn second_derivative(&self, g: f32) -> f32 {
        match self.kind {
            Smooth::Tanh => -2.0 * g * (1.0 - g * g),
            Smooth::Sigmoid => g * (1.0 - g) * (1.0 - 2.0 * g),
        }
    }

    /// The shared forward body: `out` is completely overwritten and the
    /// cached output copy reuses its previous allocation.
    fn forward_out(&mut self, input: &Tensor, out: &mut Tensor) {
        out.copy_from(input);
        out.map_inplace(|x| self.apply(x));
        match &mut self.output {
            Some(cached) => cached.copy_from(out),
            slot => *slot = Some(out.clone()),
        }
        self.grad_output = None; // stale gradients must not leak
    }
}

impl Layer for SmoothActivation {
    fn forward(&mut self, input: &Tensor, _mode: Mode) -> Tensor {
        let mut out = Tensor::zeros(&[0]);
        self.forward_out(input, &mut out);
        out
    }

    fn forward_into(&mut self, input: &Tensor, _mode: Mode, arena: &mut ActivationArena) -> Tensor {
        let mut out = arena.grab();
        self.forward_out(input, &mut out);
        out
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let out = self.output.as_ref().expect("backward called before forward");
        assert_eq!(out.len(), grad_output.len(), "gradient does not match cached forward");
        self.grad_output = Some(grad_output.clone());
        grad_output.zip_map(out, |dy, g| dy * self.derivative(g))
    }

    fn second_backward(&mut self, hess_output: &Tensor) -> Tensor {
        let out = self.output.as_ref().expect("second_backward called before forward");
        assert_eq!(out.len(), hess_output.len(), "hessian does not match cached forward");
        // Gauss–Newton part: g'(I)² · h_P.
        let mut h = hess_output.zip_map(out, |hp, g| {
            let d = self.derivative(g);
            hp * d * d
        });
        // Full Eq. 9 curvature part, if a first-order pass ran.
        if let Some(grad) = &self.grad_output {
            let correction = grad.zip_map(out, |dy, g| dy * self.second_derivative(g));
            h.add_assign_t(&correction);
        }
        h
    }

    fn visit_params(&mut self, _visitor: &mut dyn FnMut(&mut Param)) {}

    fn describe(&self) -> String {
        match self.kind {
            Smooth::Tanh => "Tanh".into(),
            Smooth::Sigmoid => "Sigmoid".into(),
        }
    }

    fn clone_layer(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn act(kind: Smooth) -> SmoothActivation {
        SmoothActivation::new(kind)
    }

    #[test]
    fn forward_values() {
        let mut t = act(Smooth::Tanh);
        let y = t.forward(&Tensor::from_vec(vec![0.0, 1.0], &[2]).unwrap(), Mode::Eval);
        assert!((y.data()[1] - 1.0f32.tanh()).abs() < 1e-6);

        let mut s = act(Smooth::Sigmoid);
        let y = s.forward(&Tensor::from_vec(vec![0.0], &[1]).unwrap(), Mode::Eval);
        assert!((y.data()[0] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn backward_matches_finite_difference() {
        for kind in [Smooth::Tanh, Smooth::Sigmoid] {
            let mut layer = act(kind);
            let x = Tensor::from_vec(vec![-1.2, -0.3, 0.4, 2.0], &[4]).unwrap();
            layer.forward(&x, Mode::Train);
            let g = layer.backward(&Tensor::ones(&[4]));
            let eps = 1e-3f32;
            for i in 0..4 {
                let mut xp = x.clone();
                xp.data_mut()[i] += eps;
                let mut xm = x.clone();
                xm.data_mut()[i] -= eps;
                let mut lp = act(kind);
                let mut lm = act(kind);
                let fp = lp.forward(&xp, Mode::Train).sum();
                let fm = lm.forward(&xm, Mode::Train).sum();
                let fd = ((fp - fm) / (2.0 * eps as f64)) as f32;
                assert!((g.data()[i] - fd).abs() < 1e-3, "{kind:?} i={i}");
            }
        }
    }

    /// d²(sum g(x))/dx² via the layer equals analytic g''(x): the g''
    /// correction term must be present when backward ran first.
    #[test]
    fn second_backward_includes_curvature_term() {
        for kind in [Smooth::Tanh, Smooth::Sigmoid] {
            let mut layer = act(kind);
            let x = Tensor::from_vec(vec![-0.8, 0.1, 0.9], &[3]).unwrap();
            let out = layer.forward(&x, Mode::Train);
            // Loss = sum of outputs: dL/dP = 1, d²L/dP² = 0.
            layer.backward(&Tensor::ones(&[3]));
            let h = layer.second_backward(&Tensor::zeros(&[3]));
            for i in 0..3 {
                let g = out.data()[i];
                let expected = layer.second_derivative(g);
                assert!(
                    (h.data()[i] - expected).abs() < 1e-5,
                    "{kind:?} i={i}: {} vs {expected}",
                    h.data()[i]
                );
            }
        }
    }

    /// Without a preceding backward, the layer falls back to the
    /// Gauss-Newton form (g'' term dropped).
    #[test]
    fn gauss_newton_fallback_without_backward() {
        let mut layer = act(Smooth::Tanh);
        let x = Tensor::from_vec(vec![0.5], &[1]).unwrap();
        let out = layer.forward(&x, Mode::Train);
        let h = layer.second_backward(&Tensor::ones(&[1]));
        let d = layer.derivative(out.data()[0]);
        assert!((h.data()[0] - d * d).abs() < 1e-6);
    }

    #[test]
    fn forward_invalidates_stale_gradient() {
        let mut layer = act(Smooth::Sigmoid);
        let x = Tensor::from_vec(vec![0.3], &[1]).unwrap();
        layer.forward(&x, Mode::Train);
        layer.backward(&Tensor::ones(&[1]));
        // New forward: the old grad must not contaminate the next
        // second_backward.
        let out = layer.forward(&x, Mode::Train);
        let h = layer.second_backward(&Tensor::ones(&[1]));
        let d = layer.derivative(out.data()[0]);
        assert!((h.data()[0] - d * d).abs() < 1e-6);
    }

    #[test]
    fn full_hessian_matches_finite_difference_through_chain() {
        // Chain: x -> tanh -> sum. d²L/dx² = g''(x) exactly (single path).
        let mut layer = act(Smooth::Tanh);
        let x = Tensor::from_vec(vec![-1.5, -0.2, 0.7, 1.8], &[4]).unwrap();
        layer.forward(&x, Mode::Train);
        layer.backward(&Tensor::ones(&[4]));
        let h = layer.second_backward(&Tensor::zeros(&[4]));
        let eps = 1e-2f32;
        for i in 0..4 {
            let f = |v: f32| -> f64 {
                let mut xx = x.clone();
                xx.data_mut()[i] = v;
                let mut l = act(Smooth::Tanh);
                l.forward(&xx, Mode::Train).sum()
            };
            let x0 = x.data()[i];
            let fd = (f(x0 + eps) - 2.0 * f(x0) + f(x0 - eps)) / (eps as f64 * eps as f64);
            assert!((h.data()[i] as f64 - fd).abs() < 1e-2, "i={i}: {} vs {fd}", h.data()[i]);
        }
    }
}
