//! ReLU activation.

use crate::arena::ActivationArena;
use crate::layer::{Layer, Mode};
use crate::param::Param;
use swim_tensor::simd;
use swim_tensor::Tensor;

/// Rectified linear unit, `y = max(x, 0)`.
///
/// First- and second-order backward both multiply by the active-input
/// indicator: with ReLU, `g'(x)² = 1[x > 0]` and `g'' = 0`, which is why
/// the paper's Eq. 9 collapses to Eq. 10 — the second derivative is routed
/// exactly like the gradient.
#[derive(Debug, Clone, Default)]
pub struct Relu {
    mask: Option<Vec<bool>>,
}

impl Relu {
    /// Creates a ReLU layer.
    pub fn new() -> Self {
        Relu::default()
    }

    fn mask(&self) -> &[bool] {
        self.mask.as_deref().expect("backward called before forward")
    }

    /// The shared forward body: `out` is completely overwritten and the
    /// active-input mask buffer is refilled in place (no allocation once
    /// both have grown to the activation size).
    fn forward_out(&mut self, input: &Tensor, out: &mut Tensor) {
        let mask = self.mask.get_or_insert_with(Vec::new);
        mask.clear();
        out.copy_from(input);
        simd::relu_forward_inplace(out.data_mut(), mask);
    }
}

impl Layer for Relu {
    fn forward(&mut self, input: &Tensor, _mode: Mode) -> Tensor {
        let mut out = Tensor::zeros(&[0]);
        self.forward_out(input, &mut out);
        out
    }

    fn forward_into(&mut self, input: &Tensor, _mode: Mode, arena: &mut ActivationArena) -> Tensor {
        let mut out = arena.grab();
        self.forward_out(input, &mut out);
        out
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let mask = self.mask();
        assert_eq!(mask.len(), grad_output.len(), "gradient does not match cached input");
        let mut out = grad_output.clone();
        simd::relu_apply_mask(out.data_mut(), mask);
        out
    }

    fn second_backward(&mut self, hess_output: &Tensor) -> Tensor {
        let mask = self.mask();
        assert_eq!(mask.len(), hess_output.len(), "hessian does not match cached input");
        let mut out = hess_output.clone();
        simd::relu_apply_mask(out.data_mut(), mask);
        out
    }

    fn visit_params(&mut self, _visitor: &mut dyn FnMut(&mut Param)) {}

    fn describe(&self) -> String {
        "ReLU".into()
    }

    fn clone_layer(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_clamps_negatives() {
        let mut relu = Relu::new();
        let x = Tensor::from_vec(vec![-1.0, 0.0, 2.0], &[3]).unwrap();
        let y = relu.forward(&x, Mode::Eval);
        assert_eq!(y.data(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn backward_masks_inactive() {
        let mut relu = Relu::new();
        let x = Tensor::from_vec(vec![-1.0, 3.0], &[2]).unwrap();
        relu.forward(&x, Mode::Train);
        let g = relu.backward(&Tensor::ones(&[2]));
        assert_eq!(g.data(), &[0.0, 1.0]);
    }

    #[test]
    fn second_backward_same_mask_as_first() {
        let mut relu = Relu::new();
        let x = Tensor::from_vec(vec![-2.0, 0.0, 0.5, 7.0], &[4]).unwrap();
        relu.forward(&x, Mode::Train);
        let g = relu.backward(&Tensor::ones(&[4]));
        let h = relu.second_backward(&Tensor::ones(&[4]));
        assert_eq!(g.data(), h.data());
    }

    #[test]
    fn zero_input_is_inactive() {
        // The boundary x = 0 contributes no derivative (subgradient 0).
        let mut relu = Relu::new();
        relu.forward(&Tensor::zeros(&[1]), Mode::Train);
        assert_eq!(relu.backward(&Tensor::ones(&[1])).data(), &[0.0]);
    }

    #[test]
    fn no_params() {
        let mut relu = Relu::new();
        assert_eq!(relu.num_params(), 0);
    }
}
