//! 2-D batch normalization.

use crate::arena::ActivationArena;
use crate::layer::{Layer, Mode};
use crate::param::{Param, ParamKind};
use swim_tensor::simd;
use swim_tensor::Tensor;

/// Per-channel batch normalization over `[N, C, H, W]` activations.
///
/// Training mode normalizes with batch statistics and updates running
/// estimates; evaluation mode uses the frozen running statistics, making
/// the layer an affine map `y = γ·(x − μ)/√(σ² + ε) + β`.
///
/// The second-order backward treats the layer in its evaluation (affine)
/// form — exactly how the paper handles it, since sensitivities are
/// computed on a *trained* network: "batch normalization layers can be
/// cast in the same form as FC layers" (§3.3), giving
/// `h_x = (γ/√(σ²+ε))² · h_y`. γ and β live in the digital periphery and
/// are not device-mapped.
#[derive(Debug, Clone)]
pub struct BatchNorm2d {
    gamma: Param,
    beta: Param,
    running_mean: Vec<f32>,
    running_var: Vec<f32>,
    momentum: f32,
    eps: f32,
    channels: usize,
    /// Cached per-forward state: (input, normalized x̂, batch mean, batch var).
    cache: Option<BnCache>,
    /// Reused per-channel statistics scratch (batch stats when training,
    /// a copy of the running stats when evaluating).
    batch_mean: Vec<f32>,
    batch_var: Vec<f32>,
}

#[derive(Debug, Clone)]
struct BnCache {
    x_hat: Tensor,
    inv_std: Vec<f32>,
    mode: Mode,
}

impl BatchNorm2d {
    /// Creates a batch-norm layer over `channels` feature maps.
    ///
    /// # Panics
    ///
    /// Panics if `channels` is zero.
    pub fn new(channels: usize) -> Self {
        assert!(channels > 0, "channels must be positive");
        BatchNorm2d {
            gamma: Param::new("gamma", Tensor::ones(&[channels]), ParamKind::Digital),
            beta: Param::new("beta", Tensor::zeros(&[channels]), ParamKind::Digital),
            running_mean: vec![0.0; channels],
            running_var: vec![1.0; channels],
            momentum: 0.1,
            eps: 1e-5,
            channels,
            cache: None,
            batch_mean: Vec::new(),
            batch_var: Vec::new(),
        }
    }

    /// Channel count this layer normalizes.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// The running mean estimates (one per channel).
    pub fn running_mean(&self) -> &[f32] {
        &self.running_mean
    }

    /// The running variance estimates (one per channel).
    pub fn running_var(&self) -> &[f32] {
        &self.running_var
    }

    /// The shared forward body: `out` is completely overwritten; the
    /// statistics scratch and the x̂/inv_std cache reuse their previous
    /// allocations, so the evaluation path allocates nothing once warm.
    fn forward_out(&mut self, input: &Tensor, mode: Mode, out: &mut Tensor) {
        assert_eq!(input.rank(), 4, "BatchNorm2d expects [N, C, H, W] input");
        assert_eq!(
            input.shape()[1],
            self.channels,
            "BatchNorm2d expected {} channels, got {}",
            self.channels,
            input.shape()[1]
        );
        let (n, c, h, w) = (input.shape()[0], input.shape()[1], input.shape()[2], input.shape()[3]);
        let plane = h * w;
        let count = (n * plane) as f32;

        self.batch_mean.clear();
        self.batch_var.clear();
        match mode {
            Mode::Train => {
                self.batch_mean.resize(c, 0.0);
                self.batch_var.resize(c, 0.0);
                let id = input.data();
                for (ch, slot) in self.batch_mean.iter_mut().enumerate() {
                    let mut acc = 0.0f64;
                    for item in 0..n {
                        let base = (item * c + ch) * plane;
                        for &v in &id[base..base + plane] {
                            acc += v as f64;
                        }
                    }
                    *slot = (acc / count as f64) as f32;
                }
                for (ch, slot) in self.batch_var.iter_mut().enumerate() {
                    let m = self.batch_mean[ch] as f64;
                    let mut acc = 0.0f64;
                    for item in 0..n {
                        let base = (item * c + ch) * plane;
                        for &v in &id[base..base + plane] {
                            let d = v as f64 - m;
                            acc += d * d;
                        }
                    }
                    *slot = (acc / count as f64) as f32;
                }
                for ch in 0..c {
                    self.running_mean[ch] = (1.0 - self.momentum) * self.running_mean[ch]
                        + self.momentum * self.batch_mean[ch];
                    self.running_var[ch] = (1.0 - self.momentum) * self.running_var[ch]
                        + self.momentum * self.batch_var[ch];
                }
            }
            Mode::Eval => {
                self.batch_mean.extend_from_slice(&self.running_mean);
                self.batch_var.extend_from_slice(&self.running_var);
            }
        }

        let eps = self.eps;
        let cache = self.cache.get_or_insert_with(|| BnCache {
            x_hat: Tensor::zeros(&[0]),
            inv_std: Vec::new(),
            mode,
        });
        cache.mode = mode;
        cache.inv_std.clear();
        cache.inv_std.extend(self.batch_var.iter().map(|&v| 1.0 / (v + eps).sqrt()));
        cache.x_hat.reset_zeroed(input.shape());
        out.reset_zeroed(input.shape());
        {
            let id = input.data();
            let xh = cache.x_hat.data_mut();
            let od = out.data_mut();
            let g = self.gamma.value.data();
            let b = self.beta.value.data();
            for item in 0..n {
                for ch in 0..c {
                    let base = (item * c + ch) * plane;
                    let (m, is) = (self.batch_mean[ch], cache.inv_std[ch]);
                    simd::batchnorm_normalize(
                        &id[base..base + plane],
                        m,
                        is,
                        g[ch],
                        b[ch],
                        &mut xh[base..base + plane],
                        &mut od[base..base + plane],
                    );
                }
            }
        }
    }
}

impl Layer for BatchNorm2d {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        let mut out = Tensor::zeros(&[0]);
        self.forward_out(input, mode, &mut out);
        out
    }

    fn forward_into(&mut self, input: &Tensor, mode: Mode, arena: &mut ActivationArena) -> Tensor {
        let mut out = arena.grab();
        self.forward_out(input, mode, &mut out);
        out
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let cache = self.cache.as_ref().expect("backward called before forward");
        let shape = cache.x_hat.shape().to_vec();
        let (n, c, h, w) = (shape[0], shape[1], shape[2], shape[3]);
        let plane = h * w;
        let count = (n * plane) as f32;
        assert_eq!(grad_output.shape(), &shape[..], "gradient does not match cached forward");

        let xh = cache.x_hat.data();
        let gd = grad_output.data();
        let gamma = self.gamma.value.data();

        // Parameter gradients.
        let mut dgamma = vec![0.0f32; c];
        let mut dbeta = vec![0.0f32; c];
        for item in 0..n {
            for ch in 0..c {
                let base = (item * c + ch) * plane;
                for p in 0..plane {
                    dgamma[ch] += gd[base + p] * xh[base + p];
                    dbeta[ch] += gd[base + p];
                }
            }
        }
        for ch in 0..c {
            self.gamma.grad.data_mut()[ch] += dgamma[ch];
            self.beta.grad.data_mut()[ch] += dbeta[ch];
        }

        let mut grad_input = Tensor::zeros(&shape);
        let gi = grad_input.data_mut();
        match cache.mode {
            Mode::Train => {
                // Full batch-statistics backward:
                // dx = γ·inv_std/N · (N·dy − Σdy − x̂·Σ(dy·x̂))
                for ch in 0..c {
                    let coeff = gamma[ch] * cache.inv_std[ch] / count;
                    for item in 0..n {
                        let base = (item * c + ch) * plane;
                        for p in 0..plane {
                            gi[base + p] = coeff
                                * (count * gd[base + p] - dbeta[ch] - xh[base + p] * dgamma[ch]);
                        }
                    }
                }
            }
            Mode::Eval => {
                // Affine backward: dx = γ·inv_std·dy
                for (ch, (&g, &inv)) in gamma.iter().zip(&cache.inv_std).enumerate() {
                    let coeff = g * inv;
                    for item in 0..n {
                        let base = (item * c + ch) * plane;
                        for p in 0..plane {
                            gi[base + p] = coeff * gd[base + p];
                        }
                    }
                }
            }
        }
        grad_input
    }

    fn second_backward(&mut self, hess_output: &Tensor) -> Tensor {
        let cache = self.cache.as_ref().expect("backward called before forward");
        let shape = cache.x_hat.shape().to_vec();
        let (n, c, h, w) = (shape[0], shape[1], shape[2], shape[3]);
        let plane = h * w;
        assert_eq!(hess_output.shape(), &shape[..], "hessian does not match cached forward");

        let xh = cache.x_hat.data();
        let hd = hess_output.data();
        let gamma = self.gamma.value.data();

        // Affine-form second derivatives (frozen statistics):
        // h_γ[c] += Σ x̂² h_y ; h_β[c] += Σ h_y ; h_x = (γ·inv_std)² h_y.
        let mut hgamma = vec![0.0f32; c];
        let mut hbeta = vec![0.0f32; c];
        let mut hess_input = Tensor::zeros(&shape);
        let hi = hess_input.data_mut();
        for ch in 0..c {
            let coeff = gamma[ch] * cache.inv_std[ch];
            let coeff_sq = coeff * coeff;
            for item in 0..n {
                let base = (item * c + ch) * plane;
                for p in 0..plane {
                    let hv = hd[base + p];
                    hgamma[ch] += hv * xh[base + p] * xh[base + p];
                    hbeta[ch] += hv;
                    hi[base + p] = coeff_sq * hv;
                }
            }
        }
        for ch in 0..c {
            self.gamma.hess.data_mut()[ch] += hgamma[ch];
            self.beta.hess.data_mut()[ch] += hbeta[ch];
        }
        hess_input
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Param)) {
        visitor(&mut self.gamma);
        visitor(&mut self.beta);
    }

    fn describe(&self) -> String {
        format!("BatchNorm2d({})", self.channels)
    }

    fn clone_layer(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swim_tensor::Prng;

    #[test]
    fn train_forward_normalizes() {
        let mut bn = BatchNorm2d::new(2);
        let mut rng = Prng::seed_from_u64(5);
        let x = Tensor::from_fn(&[4, 2, 3, 3], |_| rng.normal_f32(3.0, 2.0));
        let y = bn.forward(&x, Mode::Train);
        // Per-channel output should be ~zero-mean unit-variance.
        let (n, c, plane) = (4, 2, 9);
        for ch in 0..c {
            let mut acc = 0.0f64;
            let mut sq = 0.0f64;
            for item in 0..n {
                let base = (item * c + ch) * plane;
                for p in 0..plane {
                    let v = y.data()[base + p] as f64;
                    acc += v;
                    sq += v * v;
                }
            }
            let cnt = (n * plane) as f64;
            let mean = acc / cnt;
            let var = sq / cnt - mean * mean;
            assert!(mean.abs() < 1e-5, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-3, "var {var}");
        }
    }

    #[test]
    fn eval_uses_running_stats() {
        let mut bn = BatchNorm2d::new(1);
        bn.running_mean[0] = 2.0;
        bn.running_var[0] = 4.0;
        let x = Tensor::from_vec(vec![6.0], &[1, 1, 1, 1]).unwrap();
        let y = bn.forward(&x, Mode::Eval);
        // (6-2)/2 = 2
        assert!((y.data()[0] - 2.0).abs() < 1e-4);
    }

    #[test]
    fn train_backward_gradcheck() {
        let mut bn = BatchNorm2d::new(2);
        let mut rng = Prng::seed_from_u64(6);
        let x = Tensor::randn(&[3, 2, 2, 2], &mut rng);
        // Use a quadratic loss L = 0.5 Σ y² so dL/dy = y.
        let y = bn.forward(&x, Mode::Train);
        let dx = bn.backward(&y);
        let eps = 1e-2f32;
        for &i in &[0usize, 5, 13, 20] {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut bn_p = BatchNorm2d::new(2);
            let yp = bn_p.forward(&xp, Mode::Train);
            let lp: f64 = 0.5 * yp.norm_sq();
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let mut bn_m = BatchNorm2d::new(2);
            let ym = bn_m.forward(&xm, Mode::Train);
            let lm: f64 = 0.5 * ym.norm_sq();
            let fd = (lp - lm) / (2.0 * eps as f64);
            let an = dx.data()[i] as f64;
            assert!((fd - an).abs() < 2e-2 * (1.0 + an.abs()), "x[{i}]: fd {fd} an {an}");
        }
    }

    #[test]
    fn eval_second_backward_is_affine_scaling() {
        let mut bn = BatchNorm2d::new(1);
        bn.running_var[0] = 3.0;
        bn.gamma.value.data_mut()[0] = 2.0;
        let x = Tensor::ones(&[1, 1, 2, 2]);
        bn.forward(&x, Mode::Eval);
        let h = Tensor::ones(&[1, 1, 2, 2]);
        let hx = bn.second_backward(&h);
        let inv_std = 1.0 / (3.0f32 + 1e-5).sqrt();
        let expect = (2.0 * inv_std) * (2.0 * inv_std);
        for &v in hx.data() {
            assert!((v - expect).abs() < 1e-5);
        }
    }

    #[test]
    fn params_are_digital() {
        let mut bn = BatchNorm2d::new(3);
        bn.visit_params(&mut |p| assert!(!p.is_device_mapped()));
        assert_eq!(bn.num_params(), 6);
    }

    #[test]
    fn running_stats_update_toward_batch() {
        let mut bn = BatchNorm2d::new(1);
        let x = Tensor::full(&[2, 1, 2, 2], 10.0);
        bn.forward(&x, Mode::Train);
        assert!(bn.running_mean()[0] > 0.5); // moved from 0 toward 10
        assert!(bn.running_var()[0] < 1.0); // moved from 1 toward 0
    }
}
