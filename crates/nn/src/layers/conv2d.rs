//! 2-D convolution layer, lowered to GEMM via im2col.

use crate::arena::ActivationArena;
use crate::layer::{Layer, Mode};
use crate::param::{Param, ParamKind};
use swim_tensor::conv::{col2im_accumulate, im2col_batch_into, ConvGeometry};
use swim_tensor::linalg::{matmul_at_into, matmul_bt_into, matmul_into};
use swim_tensor::{tune, Prng, Tensor};

/// Default cap, in `f32` elements, on the batched im2col scratch of one
/// layer (re-exported from the tuning layer; override per run via
/// [`tune::KernelTuning::im2col_cap_elems`]).
///
/// A whole batch is lowered through a single `[N·outH·outW, C·k²]` patch
/// matrix when it fits; larger batches are processed in item chunks so
/// the scratch stays within ~16 MiB however wide the model is. The chunk
/// split is invisible in the results: every pass is bit-identical for
/// any chunk size (each item's rows are computed independently, and the
/// parameter-gradient accumulation is per-item either way) — which is
/// exactly why the chunk is safe to autotune per shape under
/// `tune.mode = on`.
pub const IM2COL_CAP_ELEMS: usize = tune::DEFAULT_IM2COL_CAP_ELEMS;

/// Reusable lowering buffers owned by one `Conv2d` layer.
///
/// Cloning a layer (one network clone per Monte Carlo worker) must not
/// duplicate scratch contents, so `Clone` yields empty buffers that grow
/// back on first use.
#[derive(Debug, Default)]
struct ConvScratch {
    /// Batched im2col patches `[chunk·spatial, CK²]`.
    cols: Vec<f32>,
    /// Large GEMM output: forward `[F, chunk·spatial]`, backward passes
    /// `[chunk·spatial, CK²]` (the column-space gradient).
    gemm: Vec<f32>,
    /// Output-gradient chunk transposed to `[chunk·spatial, F]`.
    delta: Vec<f32>,
    /// One item's weight-gradient tile `[F, CK²]`.
    wtile: Vec<f32>,
}

impl Clone for ConvScratch {
    fn clone(&self) -> Self {
        ConvScratch::default()
    }
}

/// 2-D convolution `[N, C, H, W] -> [N, F, H', W']`.
///
/// The convolution is computed as `im2col(x) · Wᵀ`, which "casts it in
/// the same form as FC layers" — exactly the reduction the paper's §3.3
/// uses so that the FC second-order rules (Eq. 8/10) apply unchanged to
/// convolutions. The lowering is *batched*: up to `IM2COL_CAP_ELEMS`
/// (~16 MiB) worth of images are unrolled into one patch matrix so a whole batch
/// becomes a single large GEMM (big enough for the threaded row-panel
/// path to engage), with all intermediate buffers reused across calls
/// from a per-layer scratch. The backward passes recompute the im2col
/// matrix instead of caching it, trading a little compute for a large
/// memory saving on wide models.
///
/// # Example
///
/// ```
/// use swim_nn::layers::Conv2d;
/// use swim_nn::layer::{Layer, Mode};
/// use swim_tensor::{Prng, Tensor};
///
/// let mut rng = Prng::seed_from_u64(0);
/// let mut conv = Conv2d::new(3, 8, 3, 1, 1, &mut rng);
/// let x = Tensor::zeros(&[2, 3, 16, 16]);
/// let y = conv.forward(&x, Mode::Eval);
/// assert_eq!(y.shape(), &[2, 8, 16, 16]);
/// ```
#[derive(Debug, Clone)]
pub struct Conv2d {
    weight: Param,
    bias: Param,
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    stride: usize,
    padding: usize,
    cached_input: Option<Tensor>,
    scratch: ConvScratch,
}

impl Conv2d {
    /// Creates a convolution with Kaiming-normal initialization (suited to
    /// the ReLU networks of the paper) and zero bias.
    ///
    /// # Panics
    ///
    /// Panics if any of channel counts, kernel, or stride are zero.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        rng: &mut Prng,
    ) -> Self {
        assert!(in_channels > 0 && out_channels > 0, "channel counts must be positive");
        assert!(kernel > 0 && stride > 0, "kernel and stride must be positive");
        let fan_in = (in_channels * kernel * kernel) as f32;
        let std = (2.0 / fan_in).sqrt();
        let weight = Tensor::from_fn(&[out_channels, in_channels, kernel, kernel], |_| {
            rng.normal_f32(0.0, std)
        });
        Conv2d {
            weight: Param::new("weight", weight, ParamKind::DeviceWeight),
            bias: Param::new("bias", Tensor::zeros(&[out_channels]), ParamKind::Digital),
            in_channels,
            out_channels,
            kernel,
            stride,
            padding,
            cached_input: None,
            scratch: ConvScratch::default(),
        }
    }

    fn geometry(&self, h: usize, w: usize) -> ConvGeometry {
        ConvGeometry {
            in_channels: self.in_channels,
            in_h: h,
            in_w: w,
            kernel_h: self.kernel,
            kernel_w: self.kernel,
            stride: self.stride,
            padding: self.padding,
        }
    }

    fn weight_matrix(&self, f: impl Fn(f32) -> f32) -> Tensor {
        let cols = self.in_channels * self.kernel * self.kernel;
        self.weight.value.map(f).reshaped(&[self.out_channels, cols])
    }

    /// Immutable access to the weight parameter (tests, inspection).
    pub fn weight(&self) -> &Param {
        &self.weight
    }

    /// Items per lowering chunk for a given output spatial size: as many
    /// as fit the installed im2col scratch cap
    /// ([`tune::im2col_cap_elems`], default [`IM2COL_CAP_ELEMS`]), at
    /// least one.
    ///
    /// Sized by the *largest* per-item buffer — the `CK²`-wide patch
    /// matrix or the `F`-wide GEMM/delta buffers — so a channel-expanding
    /// layer (`F ≫ CK²`, e.g. a wide 1×1 conv) cannot blow past the cap
    /// through the output-side scratch.
    fn chunk_items(&self, spatial: usize, n: usize) -> usize {
        let widest = (self.in_channels * self.kernel * self.kernel).max(self.out_channels);
        let per_item = spatial * widest;
        (tune::im2col_cap_elems() / per_item.max(1)).clamp(1, n.max(1))
    }

    /// Forward pass with an explicit chunk size (`chunk = 1` is the
    /// per-image lowering; results are bit-identical for every value).
    /// `out` is completely overwritten — the shared body of both the
    /// fresh-allocation and the arena forward paths.
    fn forward_impl(&mut self, input: &Tensor, chunk: usize, out: &mut Tensor) {
        let (n, h, w) = (input.shape()[0], input.shape()[2], input.shape()[3]);
        let geom = self.geometry(h, w);
        assert!(geom.is_valid(), "kernel does not fit input {geom:?}");
        let (oh, ow) = (geom.out_h(), geom.out_w());
        let spatial = oh * ow;
        let ck2 = geom.col_cols();
        let nf = self.out_channels;
        let image_len = self.in_channels * h * w;
        out.reset_zeroed(&[n, nf, oh, ow]);

        let mut i0 = 0;
        while i0 < n {
            let i1 = (i0 + chunk).min(n);
            let items = i1 - i0;
            let rows = items * spatial;
            im2col_batch_into(
                &input.data()[i0 * image_len..i1 * image_len],
                items,
                &geom,
                &mut self.scratch.cols,
            );
            // One GEMM for the whole chunk: W · colsᵀ = [F, items·spatial].
            // (Equivalent to the per-item `cols · Wᵀ` with the same
            // k-accumulation order, but the output comes back in
            // [F, item, spatial] layout, so writing NCHW output is all
            // contiguous row copies instead of a scalar transpose.)
            // The [F, C, k, k] weight tensor is already the [F, CK²]
            // matrix in row-major order, so no reshaped copy is needed.
            self.scratch.gemm.resize(nf * rows, 0.0);
            matmul_bt_into(
                self.weight.value.data(),
                &self.scratch.cols,
                nf,
                ck2,
                rows,
                &mut self.scratch.gemm,
            );
            let od = out.data_mut();
            let bias = self.bias.value.data();
            for (f, yrow) in self.scratch.gemm.chunks_exact(rows).enumerate() {
                for it in 0..items {
                    let dst = &mut od[((i0 + it) * nf + f) * spatial..][..spatial];
                    let src = &yrow[it * spatial..(it + 1) * spatial];
                    for (d, &s) in dst.iter_mut().zip(src) {
                        *d = s + bias[f];
                    }
                }
            }
            i0 = i1;
        }
        // Cache the activation for the backward passes, reusing the
        // previous cache's capacity even when the batch shape changes —
        // on the eval loop (including its shorter final batch) this is a
        // copy, not an allocation. (Caching must happen in Eval mode
        // too: the sensitivity pass forwards in `Mode::Eval` and then
        // runs `second_backward`.)
        match &mut self.cached_input {
            Some(cached) => cached.copy_from(input),
            slot => *slot = Some(input.clone()),
        }
    }

    /// Validates the input and runs [`Conv2d::forward_impl`] at the
    /// cap-derived chunk size — or, under `tune.mode = on`, at the
    /// shape-keyed autotuned chunk (the candidates only move work
    /// between identical per-item computations, so every choice is
    /// bit-identical; see [`tune::resolve_custom`]).
    fn forward_out(&mut self, input: &Tensor, out: &mut Tensor) {
        assert_eq!(input.rank(), 4, "Conv2d expects [N, C, H, W] input");
        assert_eq!(
            input.shape()[1],
            self.in_channels,
            "Conv2d expected {} input channels, got {}",
            self.in_channels,
            input.shape()[1]
        );
        let geom = self.geometry(input.shape()[2], input.shape()[3]);
        let n = input.shape()[0];
        let spatial = geom.out_h() * geom.out_w();
        let default_chunk = self.chunk_items(spatial, n);
        let chunk = if tune::mode() == tune::TuneMode::On && n > 1 {
            let widest = (self.in_channels * self.kernel * self.kernel).max(self.out_channels);
            let mut candidates =
                vec![default_chunk, 1, (default_chunk / 2).max(1), (default_chunk * 2).min(n), n];
            candidates.retain(|&c| c >= 1 && c <= n);
            candidates.sort_unstable();
            candidates.dedup();
            let mut bench_out = Tensor::zeros(&[0]);
            tune::resolve_custom(
                "im2col",
                [spatial, widest, n, 0],
                default_chunk,
                &candidates,
                |c| self.forward_impl(input, c, &mut bench_out),
            )
        } else {
            default_chunk
        };
        self.forward_impl(input, chunk, out);
    }

    /// Shared chunked backward pass. `square` selects the second-order
    /// variant: patches and weights are squared (Eq. 8/10) and the
    /// results accumulate into `hess` instead of `grad`.
    fn backward_impl(&mut self, grad_output: &Tensor, chunk: usize, square: bool) -> Tensor {
        // Take (not clone) the cached activation; restored before
        // returning so backward can run again after this pass.
        let input = self.cached_input.take().expect("backward called before forward");
        let (n, h, w) = (input.shape()[0], input.shape()[2], input.shape()[3]);
        let geom = self.geometry(h, w);
        let spatial = geom.out_h() * geom.out_w();
        let ck2 = geom.col_cols();
        let nf = self.out_channels;
        let image_len = self.in_channels * h * w;
        let wmat = if square { self.weight_matrix(|v| v * v) } else { self.weight_matrix(|v| v) };
        let mut grad_input = Tensor::zeros(input.shape());
        let mut wgrad = vec![0.0f32; nf * ck2];
        let mut bgrad = vec![0.0f32; nf];
        let gd = grad_output.data();

        let mut i0 = 0;
        while i0 < n {
            let i1 = (i0 + chunk).min(n);
            let items = i1 - i0;
            let rows = items * spatial;
            im2col_batch_into(
                &input.data()[i0 * image_len..i1 * image_len],
                items,
                &geom,
                &mut self.scratch.cols,
            );
            if square {
                for v in &mut self.scratch.cols {
                    *v = *v * *v;
                }
            }
            // Transpose the chunk's output gradient [item, F, spatial]
            // into δ = [item·spatial, F] with strided copies, folding the
            // bias gradient along the way.
            self.scratch.delta.resize(rows * nf, 0.0);
            for it in 0..items {
                for f in 0..nf {
                    let src = &gd[((i0 + it) * nf + f) * spatial..][..spatial];
                    let mut idx = it * spatial * nf + f;
                    for &v in src {
                        self.scratch.delta[idx] = v;
                        idx += nf;
                    }
                    let mut acc = bgrad[f];
                    for &v in src {
                        acc += v;
                    }
                    bgrad[f] = acc;
                }
            }
            // dW accumulates per item (δᵢᵀ · colsᵢ), preserving the
            // per-image summation order bit for bit.
            self.scratch.wtile.resize(nf * ck2, 0.0);
            for it in 0..items {
                let drows = &self.scratch.delta[it * spatial * nf..][..spatial * nf];
                let crows = &self.scratch.cols[it * spatial * ck2..][..spatial * ck2];
                matmul_at_into(drows, crows, nf, spatial, ck2, &mut self.scratch.wtile);
                for (g, &v) in wgrad.iter_mut().zip(&self.scratch.wtile) {
                    *g += v;
                }
            }
            // dX: one GEMM for the whole chunk (δ · W, row-independent),
            // then a per-item col2im scatter straight into grad_input.
            self.scratch.gemm.resize(rows * ck2, 0.0);
            matmul_into(&self.scratch.delta, wmat.data(), rows, nf, ck2, &mut self.scratch.gemm);
            let gi = grad_input.data_mut();
            for it in 0..items {
                col2im_accumulate(
                    &self.scratch.gemm[it * spatial * ck2..][..spatial * ck2],
                    &geom,
                    &mut gi[(i0 + it) * image_len..][..image_len],
                );
            }
            i0 = i1;
        }

        let target = if square { &mut self.weight.hess } else { &mut self.weight.grad };
        for (g, &v) in target.data_mut().iter_mut().zip(&wgrad) {
            *g += v;
        }
        let btarget = if square { &mut self.bias.hess } else { &mut self.bias.grad };
        for (g, &v) in btarget.data_mut().iter_mut().zip(&bgrad) {
            *g += v;
        }
        self.cached_input = Some(input);
        grad_input
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, input: &Tensor, _mode: Mode) -> Tensor {
        let mut out = Tensor::zeros(&[0]);
        self.forward_out(input, &mut out);
        out
    }

    fn forward_into(&mut self, input: &Tensor, _mode: Mode, arena: &mut ActivationArena) -> Tensor {
        let mut out = arena.grab();
        self.forward_out(input, &mut out);
        out
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let input = self.cached_input.as_ref().expect("backward called before forward");
        let geom = self.geometry(input.shape()[2], input.shape()[3]);
        let chunk = self.chunk_items(geom.out_h() * geom.out_w(), input.shape()[0]);
        self.backward_impl(grad_output, chunk, false)
    }

    fn second_backward(&mut self, hess_output: &Tensor) -> Tensor {
        let input = self.cached_input.as_ref().expect("backward called before forward");
        let geom = self.geometry(input.shape()[2], input.shape()[3]);
        let chunk = self.chunk_items(geom.out_h() * geom.out_w(), input.shape()[0]);
        self.backward_impl(hess_output, chunk, true)
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Param)) {
        visitor(&mut self.weight);
        visitor(&mut self.bias);
    }

    fn describe(&self) -> String {
        format!(
            "Conv2d({}->{}, k{}, s{}, p{})",
            self.in_channels, self.out_channels, self.kernel, self.stride, self.padding
        )
    }

    fn clone_layer(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_shape_and_bias() {
        let mut rng = Prng::seed_from_u64(3);
        let mut conv = Conv2d::new(1, 2, 3, 1, 0, &mut rng);
        conv.weight.value.fill(0.0);
        conv.bias.value = Tensor::from_vec(vec![1.0, -1.0], &[2]).unwrap();
        let x = Tensor::zeros(&[1, 1, 5, 5]);
        let y = conv.forward(&x, Mode::Eval);
        assert_eq!(y.shape(), &[1, 2, 3, 3]);
        assert_eq!(y.at(&[0, 0, 0, 0]), 1.0);
        assert_eq!(y.at(&[0, 1, 2, 2]), -1.0);
    }

    #[test]
    fn identity_kernel_passes_through() {
        let mut rng = Prng::seed_from_u64(4);
        let mut conv = Conv2d::new(1, 1, 1, 1, 0, &mut rng);
        conv.weight.value.fill(1.0);
        let x = Tensor::from_fn(&[1, 1, 3, 3], |i| i as f32);
        let y = conv.forward(&x, Mode::Eval);
        assert!(y.allclose(&x, 1e-6));
    }

    #[test]
    fn gradcheck_weights_and_input() {
        // Finite-difference check of the analytic backward pass.
        let mut rng = Prng::seed_from_u64(5);
        let mut conv = Conv2d::new(2, 3, 3, 1, 1, &mut rng);
        let x = Tensor::randn(&[2, 2, 4, 4], &mut rng);
        // Loss: sum of outputs (so dL/dy = 1 everywhere).
        let y = conv.forward(&x, Mode::Train);
        let ones = Tensor::ones(y.shape());
        let dx = conv.backward(&ones);

        let eps = 1e-2f32;
        // Check a few weight coordinates.
        for &i in &[0usize, 7, 20, 53] {
            let orig = conv.weight.value.data()[i];
            conv.weight.value.data_mut()[i] = orig + eps;
            let lp = conv.forward(&x, Mode::Train).sum();
            conv.weight.value.data_mut()[i] = orig - eps;
            let lm = conv.forward(&x, Mode::Train).sum();
            conv.weight.value.data_mut()[i] = orig;
            let fd = (lp - lm) / (2.0 * eps as f64);
            let an = conv.weight.grad.data()[i] as f64;
            assert!((fd - an).abs() < 1e-2 * (1.0 + an.abs()), "w[{i}]: fd {fd} an {an}");
        }
        // Check a few input coordinates.
        for &i in &[0usize, 13, 31] {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let lp = conv.forward(&xp, Mode::Train).sum();
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let lm = conv.forward(&xm, Mode::Train).sum();
            let fd = (lp - lm) / (2.0 * eps as f64);
            let an = dx.data()[i] as f64;
            assert!((fd - an).abs() < 1e-2 * (1.0 + an.abs()), "x[{i}]: fd {fd} an {an}");
        }
    }

    #[test]
    fn second_backward_is_nonnegative_for_nonneg_seed() {
        let mut rng = Prng::seed_from_u64(6);
        let mut conv = Conv2d::new(1, 2, 3, 1, 1, &mut rng);
        let x = Tensor::randn(&[1, 1, 5, 5], &mut rng);
        let y = conv.forward(&x, Mode::Train);
        let h = Tensor::ones(y.shape());
        let hx = conv.second_backward(&h);
        assert!(conv.weight.hess.data().iter().all(|&v| v >= 0.0));
        assert!(hx.data().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn stride_two_shapes() {
        let mut rng = Prng::seed_from_u64(7);
        let mut conv = Conv2d::new(4, 8, 3, 2, 1, &mut rng);
        let x = Tensor::zeros(&[1, 4, 8, 8]);
        assert_eq!(conv.forward(&x, Mode::Eval).shape(), &[1, 8, 4, 4]);
    }

    #[test]
    fn param_count() {
        let mut rng = Prng::seed_from_u64(8);
        let mut conv = Conv2d::new(3, 16, 3, 1, 1, &mut rng);
        // 16*3*3*3 weights + 16 biases
        assert_eq!(conv.num_params(), 16 * 27 + 16);
    }

    /// Replicates the pre-batching per-image implementation (one im2col
    /// and one GEMM per item, scalar scatter loops) as an independent
    /// semantic reference. Returns `(y, dx, dw, db)` for a sum-style
    /// upstream gradient `g`.
    #[allow(clippy::needless_range_loop)]
    fn per_image_reference(
        conv: &Conv2d,
        x: &Tensor,
        g: &Tensor,
    ) -> (Tensor, Tensor, Tensor, Vec<f32>) {
        use swim_tensor::conv::{col2im, im2col};
        use swim_tensor::linalg::{matmul, matmul_at, matmul_bt};
        let (n, h, w) = (x.shape()[0], x.shape()[2], x.shape()[3]);
        let geom = conv.geometry(h, w);
        let (oh, ow) = (geom.out_h(), geom.out_w());
        let spatial = oh * ow;
        let (nf, ck2) = (conv.out_channels, geom.col_cols());
        let wmat = conv.weight_matrix(|v| v);
        let mut y = Tensor::zeros(&[n, nf, oh, ow]);
        let mut dx = Tensor::zeros(x.shape());
        let mut dw = Tensor::zeros(&[nf, ck2]);
        let mut db = vec![0.0f32; nf];
        for item in 0..n {
            let image = x.slice_axis0(item, item + 1).reshaped(&[conv.in_channels, h, w]);
            let cols = im2col(&image, &geom);
            let yi = matmul_bt(&cols, &wmat); // [spatial, F]
            let od = y.data_mut();
            let base = item * nf * spatial;
            for s in 0..spatial {
                for f in 0..nf {
                    od[base + f * spatial + s] = yi.data()[s * nf + f] + conv.bias.value.data()[f];
                }
            }
            let mut delta = Tensor::zeros(&[spatial, nf]);
            let dd = delta.data_mut();
            for f in 0..nf {
                for s in 0..spatial {
                    let v = g.data()[base + f * spatial + s];
                    dd[s * nf + f] = v;
                    db[f] += v;
                }
            }
            dw.add_assign_t(&matmul_at(&delta, &cols));
            let dimg = col2im(&matmul(&delta, &wmat), &geom);
            let ibase = item * conv.in_channels * h * w;
            let gi = dx.data_mut();
            for (dst, &src) in
                gi[ibase..ibase + conv.in_channels * h * w].iter_mut().zip(dimg.data())
            {
                *dst += src;
            }
        }
        (y, dx, dw, db)
    }

    /// The batched lowering must be bit-identical to the per-image path
    /// (chunk size 1) *and* to the pre-batching reference algorithm,
    /// across stride/padding edge cases — forward and backward.
    #[test]
    fn batched_lowering_bit_identical_to_per_image() {
        let mut rng = Prng::seed_from_u64(31);
        // (cin, cout, kernel, stride, padding, h, w)
        for &(cin, cout, k, s, p, h, w) in &[
            (1usize, 2usize, 3usize, 1usize, 0usize, 5usize, 5usize),
            (3, 4, 3, 2, 1, 7, 6),
            (2, 3, 3, 1, 2, 4, 4), // padding wider than half the kernel
            (1, 2, 5, 1, 2, 2, 3), // kernel larger than the image
            (2, 2, 1, 3, 0, 7, 7), // 1x1 kernel, large stride
        ] {
            let mut conv = Conv2d::new(cin, cout, k, s, p, &mut rng);
            let x = Tensor::randn(&[3, cin, h, w], &mut rng);
            let y = conv.forward(&x, Mode::Train);
            let g = Tensor::randn(y.shape(), &mut rng);

            let mut per_image = conv.clone();
            let mut y1 = Tensor::zeros(&[0]);
            per_image.forward_impl(&x, 1, &mut y1);
            assert_eq!(y.data(), y1.data(), "forward cin={cin} k={k} s={s} p={p}");

            let (yr, dxr, dwr, dbr) = per_image_reference(&conv, &x, &g);
            assert_eq!(y.data(), yr.data(), "reference forward k={k} s={s} p={p}");

            let dx = conv.backward(&g);
            let dx1 = per_image.backward_impl(&g, 1, false);
            assert_eq!(dx.data(), dx1.data(), "dx chunked k={k} s={s} p={p}");
            assert_eq!(dx.data(), dxr.data(), "dx reference k={k} s={s} p={p}");
            assert_eq!(
                conv.weight.grad.data(),
                per_image.weight.grad.data(),
                "dw chunked k={k} s={s} p={p}"
            );
            assert_eq!(conv.weight.grad.data(), dwr.data(), "dw reference k={k} s={s} p={p}");
            assert_eq!(conv.bias.grad.data(), per_image.bias.grad.data());
            assert_eq!(conv.bias.grad.data(), &dbr[..], "db reference k={k} s={s} p={p}");

            // Second-order pass: chunked vs per-image.
            let hx = conv.second_backward(&g);
            let hx1 = per_image.backward_impl(&g, 1, true);
            assert_eq!(hx.data(), hx1.data(), "hx k={k} s={s} p={p}");
            assert_eq!(conv.weight.hess.data(), per_image.weight.hess.data());
            assert_eq!(conv.bias.hess.data(), per_image.bias.hess.data());
        }
    }

    /// Scratch buffers must not leak state across differently-shaped
    /// calls (shrinking batch, then growing again).
    #[test]
    fn scratch_reuse_across_shapes_is_clean() {
        let mut rng = Prng::seed_from_u64(32);
        let mut conv = Conv2d::new(2, 3, 3, 1, 1, &mut rng);
        let big = Tensor::randn(&[4, 2, 6, 6], &mut rng);
        let small = Tensor::randn(&[1, 2, 6, 6], &mut rng);
        let via_warm = {
            conv.forward(&big, Mode::Eval);
            conv.forward(&small, Mode::Eval)
        };
        let via_cold = conv.clone_layer().forward(&small, Mode::Eval);
        assert_eq!(via_warm.data(), via_cold.data());
        // And cloning a used layer must not drag its scratch along.
        assert!(conv.scratch.cols.capacity() > 0);
        assert_eq!(conv.clone().scratch.cols.capacity(), 0);
    }
}
