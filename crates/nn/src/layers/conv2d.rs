//! 2-D convolution layer, lowered to GEMM via im2col.

use crate::layer::{Layer, Mode};
use crate::param::{Param, ParamKind};
use swim_tensor::conv::{col2im, im2col, ConvGeometry};
use swim_tensor::linalg::{matmul, matmul_at, matmul_bt};
use swim_tensor::{Prng, Tensor};

/// 2-D convolution `[N, C, H, W] -> [N, F, H', W']`.
///
/// The convolution is computed one batch item at a time as
/// `im2col(x) · Wᵀ`, which "casts it in the same form as FC layers" —
/// exactly the reduction the paper's §3.3 uses so that the FC second-order
/// rules (Eq. 8/10) apply unchanged to convolutions. The backward passes
/// recompute the im2col matrix instead of caching it, trading a little
/// compute for a large memory saving on wide models.
///
/// # Example
///
/// ```
/// use swim_nn::layers::Conv2d;
/// use swim_nn::layer::{Layer, Mode};
/// use swim_tensor::{Prng, Tensor};
///
/// let mut rng = Prng::seed_from_u64(0);
/// let mut conv = Conv2d::new(3, 8, 3, 1, 1, &mut rng);
/// let x = Tensor::zeros(&[2, 3, 16, 16]);
/// let y = conv.forward(&x, Mode::Eval);
/// assert_eq!(y.shape(), &[2, 8, 16, 16]);
/// ```
#[derive(Debug, Clone)]
pub struct Conv2d {
    weight: Param,
    bias: Param,
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    stride: usize,
    padding: usize,
    cached_input: Option<Tensor>,
}

impl Conv2d {
    /// Creates a convolution with Kaiming-normal initialization (suited to
    /// the ReLU networks of the paper) and zero bias.
    ///
    /// # Panics
    ///
    /// Panics if any of channel counts, kernel, or stride are zero.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        rng: &mut Prng,
    ) -> Self {
        assert!(in_channels > 0 && out_channels > 0, "channel counts must be positive");
        assert!(kernel > 0 && stride > 0, "kernel and stride must be positive");
        let fan_in = (in_channels * kernel * kernel) as f32;
        let std = (2.0 / fan_in).sqrt();
        let weight = Tensor::from_fn(&[out_channels, in_channels, kernel, kernel], |_| {
            rng.normal_f32(0.0, std)
        });
        Conv2d {
            weight: Param::new("weight", weight, ParamKind::DeviceWeight),
            bias: Param::new("bias", Tensor::zeros(&[out_channels]), ParamKind::Digital),
            in_channels,
            out_channels,
            kernel,
            stride,
            padding,
            cached_input: None,
        }
    }

    fn geometry(&self, h: usize, w: usize) -> ConvGeometry {
        ConvGeometry {
            in_channels: self.in_channels,
            in_h: h,
            in_w: w,
            kernel_h: self.kernel,
            kernel_w: self.kernel,
            stride: self.stride,
            padding: self.padding,
        }
    }

    fn weight_matrix(&self, f: impl Fn(f32) -> f32) -> Tensor {
        let cols = self.in_channels * self.kernel * self.kernel;
        self.weight.value.map(f).reshaped(&[self.out_channels, cols])
    }

    fn cached(&self) -> &Tensor {
        self.cached_input.as_ref().expect("backward called before forward")
    }

    /// Immutable access to the weight parameter (tests, inspection).
    pub fn weight(&self) -> &Param {
        &self.weight
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, input: &Tensor, _mode: Mode) -> Tensor {
        assert_eq!(input.rank(), 4, "Conv2d expects [N, C, H, W] input");
        assert_eq!(
            input.shape()[1],
            self.in_channels,
            "Conv2d expected {} input channels, got {}",
            self.in_channels,
            input.shape()[1]
        );
        let (n, _, h, w) = (input.shape()[0], input.shape()[1], input.shape()[2], input.shape()[3]);
        let geom = self.geometry(h, w);
        assert!(geom.is_valid(), "kernel does not fit input {geom:?}");
        let (oh, ow) = (geom.out_h(), geom.out_w());
        let wmat = self.weight_matrix(|v| v); // [F, CK²]
        let mut out = Tensor::zeros(&[n, self.out_channels, oh, ow]);
        let spatial = oh * ow;
        for item in 0..n {
            let image = input.slice_axis0(item, item + 1).reshaped(&[self.in_channels, h, w]);
            let cols = im2col(&image, &geom); // [spatial, CK²]
            let y = matmul_bt(&cols, &wmat); // [spatial, F]
            let od = out.data_mut();
            let base = item * self.out_channels * spatial;
            let yd = y.data();
            let bias = self.bias.value.data();
            for s in 0..spatial {
                for f in 0..self.out_channels {
                    od[base + f * spatial + s] = yd[s * self.out_channels + f] + bias[f];
                }
            }
        }
        self.cached_input = Some(input.clone());
        out
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let input = self.cached().clone();
        let (n, _, h, w) = (input.shape()[0], input.shape()[1], input.shape()[2], input.shape()[3]);
        let geom = self.geometry(h, w);
        let (oh, ow) = (geom.out_h(), geom.out_w());
        let spatial = oh * ow;
        let ck2 = self.in_channels * self.kernel * self.kernel;
        let wmat = self.weight_matrix(|v| v);
        let mut grad_input = Tensor::zeros(input.shape());
        let mut wgrad = Tensor::zeros(&[self.out_channels, ck2]);
        let mut bgrad = vec![0.0f32; self.out_channels];

        for item in 0..n {
            let image = input.slice_axis0(item, item + 1).reshaped(&[self.in_channels, h, w]);
            let cols = im2col(&image, &geom);
            // delta for this item in [spatial, F] layout.
            let gd = grad_output.data();
            let base = item * self.out_channels * spatial;
            let mut delta = Tensor::zeros(&[spatial, self.out_channels]);
            let dd = delta.data_mut();
            for f in 0..self.out_channels {
                for s in 0..spatial {
                    let v = gd[base + f * spatial + s];
                    dd[s * self.out_channels + f] = v;
                    bgrad[f] += v;
                }
            }
            // dW += δᵀ · cols  ([F, spatial]·[spatial, CK²])
            wgrad.add_assign_t(&matmul_at(&delta, &cols));
            // dX_item = col2im(δ · W)
            let dcols = matmul(&delta, &wmat); // [spatial, CK²]
            let dimg = col2im(&dcols, &geom);
            let gi = grad_input.data_mut();
            let ibase = item * self.in_channels * h * w;
            for (dst, &src) in
                gi[ibase..ibase + self.in_channels * h * w].iter_mut().zip(dimg.data())
            {
                *dst += src;
            }
        }
        self.weight.grad.add_assign_t(&wgrad.reshaped(&[
            self.out_channels,
            self.in_channels,
            self.kernel,
            self.kernel,
        ]));
        for (g, &v) in self.bias.grad.data_mut().iter_mut().zip(&bgrad) {
            *g += v;
        }
        grad_input
    }

    fn second_backward(&mut self, hess_output: &Tensor) -> Tensor {
        let input = self.cached().clone();
        let (n, _, h, w) = (input.shape()[0], input.shape()[1], input.shape()[2], input.shape()[3]);
        let geom = self.geometry(h, w);
        let (oh, ow) = (geom.out_h(), geom.out_w());
        let spatial = oh * ow;
        let ck2 = self.in_channels * self.kernel * self.kernel;
        let wmat_sq = self.weight_matrix(|v| v * v);
        let mut hess_input = Tensor::zeros(input.shape());
        let mut whess = Tensor::zeros(&[self.out_channels, ck2]);
        let mut bhess = vec![0.0f32; self.out_channels];

        for item in 0..n {
            let image = input.slice_axis0(item, item + 1).reshaped(&[self.in_channels, h, w]);
            let cols_sq = im2col(&image, &geom).map(|v| v * v);
            let hd = hess_output.data();
            let base = item * self.out_channels * spatial;
            let mut hdelta = Tensor::zeros(&[spatial, self.out_channels]);
            let dd = hdelta.data_mut();
            for f in 0..self.out_channels {
                for s in 0..spatial {
                    let v = hd[base + f * spatial + s];
                    dd[s * self.out_channels + f] = v;
                    bhess[f] += v;
                }
            }
            // Eq. 8 through im2col: h_W += h_δᵀ · cols²
            whess.add_assign_t(&matmul_at(&hdelta, &cols_sq));
            // Eq. 10: h_X = col2im(h_δ · W²)
            let hcols = matmul(&hdelta, &wmat_sq);
            let himg = col2im(&hcols, &geom);
            let gi = hess_input.data_mut();
            let ibase = item * self.in_channels * h * w;
            for (dst, &src) in
                gi[ibase..ibase + self.in_channels * h * w].iter_mut().zip(himg.data())
            {
                *dst += src;
            }
        }
        self.weight.hess.add_assign_t(&whess.reshaped(&[
            self.out_channels,
            self.in_channels,
            self.kernel,
            self.kernel,
        ]));
        for (g, &v) in self.bias.hess.data_mut().iter_mut().zip(&bhess) {
            *g += v;
        }
        hess_input
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Param)) {
        visitor(&mut self.weight);
        visitor(&mut self.bias);
    }

    fn describe(&self) -> String {
        format!(
            "Conv2d({}->{}, k{}, s{}, p{})",
            self.in_channels, self.out_channels, self.kernel, self.stride, self.padding
        )
    }

    fn clone_layer(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_shape_and_bias() {
        let mut rng = Prng::seed_from_u64(3);
        let mut conv = Conv2d::new(1, 2, 3, 1, 0, &mut rng);
        conv.weight.value.fill(0.0);
        conv.bias.value = Tensor::from_vec(vec![1.0, -1.0], &[2]).unwrap();
        let x = Tensor::zeros(&[1, 1, 5, 5]);
        let y = conv.forward(&x, Mode::Eval);
        assert_eq!(y.shape(), &[1, 2, 3, 3]);
        assert_eq!(y.at(&[0, 0, 0, 0]), 1.0);
        assert_eq!(y.at(&[0, 1, 2, 2]), -1.0);
    }

    #[test]
    fn identity_kernel_passes_through() {
        let mut rng = Prng::seed_from_u64(4);
        let mut conv = Conv2d::new(1, 1, 1, 1, 0, &mut rng);
        conv.weight.value.fill(1.0);
        let x = Tensor::from_fn(&[1, 1, 3, 3], |i| i as f32);
        let y = conv.forward(&x, Mode::Eval);
        assert!(y.allclose(&x, 1e-6));
    }

    #[test]
    fn gradcheck_weights_and_input() {
        // Finite-difference check of the analytic backward pass.
        let mut rng = Prng::seed_from_u64(5);
        let mut conv = Conv2d::new(2, 3, 3, 1, 1, &mut rng);
        let x = Tensor::randn(&[2, 2, 4, 4], &mut rng);
        // Loss: sum of outputs (so dL/dy = 1 everywhere).
        let y = conv.forward(&x, Mode::Train);
        let ones = Tensor::ones(y.shape());
        let dx = conv.backward(&ones);

        let eps = 1e-2f32;
        // Check a few weight coordinates.
        for &i in &[0usize, 7, 20, 53] {
            let orig = conv.weight.value.data()[i];
            conv.weight.value.data_mut()[i] = orig + eps;
            let lp = conv.forward(&x, Mode::Train).sum();
            conv.weight.value.data_mut()[i] = orig - eps;
            let lm = conv.forward(&x, Mode::Train).sum();
            conv.weight.value.data_mut()[i] = orig;
            let fd = (lp - lm) / (2.0 * eps as f64);
            let an = conv.weight.grad.data()[i] as f64;
            assert!((fd - an).abs() < 1e-2 * (1.0 + an.abs()), "w[{i}]: fd {fd} an {an}");
        }
        // Check a few input coordinates.
        for &i in &[0usize, 13, 31] {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let lp = conv.forward(&xp, Mode::Train).sum();
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let lm = conv.forward(&xm, Mode::Train).sum();
            let fd = (lp - lm) / (2.0 * eps as f64);
            let an = dx.data()[i] as f64;
            assert!((fd - an).abs() < 1e-2 * (1.0 + an.abs()), "x[{i}]: fd {fd} an {an}");
        }
    }

    #[test]
    fn second_backward_is_nonnegative_for_nonneg_seed() {
        let mut rng = Prng::seed_from_u64(6);
        let mut conv = Conv2d::new(1, 2, 3, 1, 1, &mut rng);
        let x = Tensor::randn(&[1, 1, 5, 5], &mut rng);
        let y = conv.forward(&x, Mode::Train);
        let h = Tensor::ones(y.shape());
        let hx = conv.second_backward(&h);
        assert!(conv.weight.hess.data().iter().all(|&v| v >= 0.0));
        assert!(hx.data().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn stride_two_shapes() {
        let mut rng = Prng::seed_from_u64(7);
        let mut conv = Conv2d::new(4, 8, 3, 2, 1, &mut rng);
        let x = Tensor::zeros(&[1, 4, 8, 8]);
        assert_eq!(conv.forward(&x, Mode::Eval).shape(), &[1, 8, 4, 4]);
    }

    #[test]
    fn param_count() {
        let mut rng = Prng::seed_from_u64(8);
        let mut conv = Conv2d::new(3, 16, 3, 1, 1, &mut rng);
        // 16*3*3*3 weights + 16 biases
        assert_eq!(conv.num_params(), 16 * 27 + 16);
    }
}
