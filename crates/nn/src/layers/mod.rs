//! Layer implementations.
//!
//! Every layer provides forward, first-order backward, and the paper's
//! second-order backward (diagonal Hessian recursion, §3.3). See
//! [`crate::layer::Layer`] for the contract.

mod activation;
mod actquant;
mod batchnorm;
mod conv2d;
mod flatten;
mod linear;
mod pool;
mod relu;
mod residual;
mod sequential;

/// Caches an input shape in an `Option<Vec<usize>>` slot, reusing the
/// previous cache's allocation (shared by the shape-remembering layers:
/// pooling, flatten).
fn remember_shape(slot: &mut Option<Vec<usize>>, shape: &[usize]) {
    let cached = slot.get_or_insert_with(Vec::new);
    cached.clear();
    cached.extend_from_slice(shape);
}

pub use activation::{Smooth, SmoothActivation};
pub use actquant::ActQuant;
pub use batchnorm::BatchNorm2d;
pub use conv2d::{Conv2d, IM2COL_CAP_ELEMS};
pub use flatten::Flatten;
pub use linear::Linear;
pub use pool::{AvgPool2d, GlobalAvgPool, MaxPool2d};
pub use relu::Relu;
pub use residual::Residual;
pub use sequential::Sequential;
