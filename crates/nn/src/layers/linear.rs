//! Fully connected layer.

use crate::arena::ActivationArena;
use crate::layer::{Layer, Mode};
use crate::param::{Param, ParamKind};
use swim_tensor::linalg::{matmul, matmul_at, matmul_bt_into};
use swim_tensor::{Prng, Tensor};

/// Fully connected layer `Y = X · Wᵀ + b`.
///
/// * `X`: `[N, in]` batch of inputs,
/// * `W`: `[out, in]` weight matrix (device-mapped),
/// * `b`: `[out]` bias (digital).
///
/// The second-order backward implements paper Eq. 8 and the weight part of
/// Eq. 10: `h_W[j,i] += Σ_batch h_O[n,j] · X[n,i]²` and
/// `h_X[n,i] = Σ_j W[j,i]² h_O[n,j]`.
///
/// # Example
///
/// ```
/// use swim_nn::layers::Linear;
/// use swim_nn::layer::{Layer, Mode};
/// use swim_tensor::{Prng, Tensor};
///
/// let mut rng = Prng::seed_from_u64(0);
/// let mut fc = Linear::new(3, 2, &mut rng);
/// let x = Tensor::ones(&[4, 3]);
/// let y = fc.forward(&x, Mode::Eval);
/// assert_eq!(y.shape(), &[4, 2]);
/// ```
#[derive(Debug, Clone)]
pub struct Linear {
    weight: Param,
    bias: Param,
    in_features: usize,
    out_features: usize,
    cached_input: Option<Tensor>,
}

impl Linear {
    /// Creates a layer with Kaiming-uniform weight initialization and zero
    /// bias.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(in_features: usize, out_features: usize, rng: &mut Prng) -> Self {
        assert!(in_features > 0 && out_features > 0, "dimensions must be positive");
        let bound = (1.0 / in_features as f32).sqrt();
        let weight = Tensor::rand_uniform(&[out_features, in_features], -bound, bound, rng);
        Linear {
            weight: Param::new("weight", weight, ParamKind::DeviceWeight),
            bias: Param::new("bias", Tensor::zeros(&[out_features]), ParamKind::Digital),
            in_features,
            out_features,
            cached_input: None,
        }
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// Immutable access to the weight parameter (tests, inspection).
    pub fn weight(&self) -> &Param {
        &self.weight
    }

    fn cached(&self) -> &Tensor {
        self.cached_input.as_ref().expect("backward called before forward")
    }

    /// The shared forward body: `out` is completely overwritten. Both
    /// the fresh-allocation and the arena path run exactly this, so
    /// their results are bit-identical by construction.
    fn forward_out(&mut self, input: &Tensor, out: &mut Tensor) {
        assert_eq!(input.rank(), 2, "Linear expects [N, in] input");
        assert_eq!(
            input.shape()[1],
            self.in_features,
            "Linear expected {} input features, got {}",
            self.in_features,
            input.shape()[1]
        );
        let n = input.shape()[0];
        out.reset_zeroed(&[n, self.out_features]);
        // y = X · Wᵀ through the fused variant: one packed transpose
        // inside the kernel instead of materializing a Tensor here.
        matmul_bt_into(
            input.data(),
            self.weight.value.data(),
            n,
            self.in_features,
            self.out_features,
            out.data_mut(),
        );
        let bias = self.bias.value.data();
        let od = out.data_mut();
        for row in 0..n {
            for (j, &b) in bias.iter().enumerate() {
                od[row * self.out_features + j] += b;
            }
        }
        // Cache the activation for the backward passes, reusing the
        // previous cache's buffer when possible — on the fixed-batch
        // eval loop this is a copy, not an allocation.
        match &mut self.cached_input {
            Some(cached) => cached.copy_from(input),
            slot => *slot = Some(input.clone()),
        }
    }
}

impl Layer for Linear {
    fn forward(&mut self, input: &Tensor, _mode: Mode) -> Tensor {
        let mut out = Tensor::zeros(&[0]);
        self.forward_out(input, &mut out);
        out
    }

    fn forward_into(&mut self, input: &Tensor, _mode: Mode, arena: &mut ActivationArena) -> Tensor {
        let mut out = arena.grab();
        self.forward_out(input, &mut out);
        out
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let x = self.cached().clone();
        // dW[j,i] += Σ_n δ[n,j] x[n,i]  ==  δᵀ · X
        self.weight.grad.add_assign_t(&matmul_at(grad_output, &x));
        self.bias.grad.add_assign_t(&grad_output.sum_axis0());
        // dX = δ · W
        matmul(grad_output, &self.weight.value)
    }

    fn second_backward(&mut self, hess_output: &Tensor) -> Tensor {
        let x = self.cached();
        let x_sq = x.map(|v| v * v);
        // Eq. 8: h_W[j,i] += Σ_n h_O[n,j] · x[n,i]²
        self.weight.hess.add_assign_t(&matmul_at(hess_output, &x_sq));
        self.bias.hess.add_assign_t(&hess_output.sum_axis0());
        // Eq. 10 (linear part): h_X[n,i] = Σ_j W[j,i]² h_O[n,j]
        let w_sq = self.weight.value.map(|v| v * v);
        matmul(hess_output, &w_sq)
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Param)) {
        visitor(&mut self.weight);
        visitor(&mut self.bias);
    }

    fn describe(&self) -> String {
        format!("Linear({}->{})", self.in_features, self.out_features)
    }

    fn clone_layer(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_linear() -> Linear {
        let mut rng = Prng::seed_from_u64(1);
        let mut fc = Linear::new(2, 2, &mut rng);
        fc.weight.value = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        fc.bias.value = Tensor::from_vec(vec![0.5, -0.5], &[2]).unwrap();
        fc
    }

    #[test]
    fn forward_matches_manual() {
        let mut fc = simple_linear();
        let x = Tensor::from_vec(vec![1.0, 1.0], &[1, 2]).unwrap();
        let y = fc.forward(&x, Mode::Eval);
        // y0 = 1*1 + 2*1 + 0.5 = 3.5 ; y1 = 3 + 4 - 0.5 = 6.5
        assert_eq!(y.data(), &[3.5, 6.5]);
    }

    #[test]
    fn backward_gradients_match_manual() {
        let mut fc = simple_linear();
        let x = Tensor::from_vec(vec![2.0, 3.0], &[1, 2]).unwrap();
        fc.forward(&x, Mode::Train);
        let delta = Tensor::from_vec(vec![1.0, 10.0], &[1, 2]).unwrap();
        let dx = fc.backward(&delta);
        // dW = δᵀ x = [[2,3],[20,30]]
        assert_eq!(fc.weight.grad.data(), &[2.0, 3.0, 20.0, 30.0]);
        assert_eq!(fc.bias.grad.data(), &[1.0, 10.0]);
        // dX = δ W = [1*1+10*3, 1*2+10*4] = [31, 42]
        assert_eq!(dx.data(), &[31.0, 42.0]);
    }

    #[test]
    fn second_backward_squares_everything() {
        let mut fc = simple_linear();
        let x = Tensor::from_vec(vec![2.0, 3.0], &[1, 2]).unwrap();
        fc.forward(&x, Mode::Train);
        let h = Tensor::from_vec(vec![1.0, 2.0], &[1, 2]).unwrap();
        let hx = fc.second_backward(&h);
        // h_W[j,i] = h[j] * x[i]^2 -> [[4,9],[8,18]]
        assert_eq!(fc.weight.hess.data(), &[4.0, 9.0, 8.0, 18.0]);
        // h_X[i] = Σ_j W[j,i]^2 h[j] -> [1*1 + 9*2, 4*1 + 16*2] = [19, 36]
        assert_eq!(hx.data(), &[19.0, 36.0]);
    }

    #[test]
    fn gradients_accumulate_across_batches() {
        let mut fc = simple_linear();
        let x = Tensor::ones(&[1, 2]);
        let g = Tensor::ones(&[1, 2]);
        fc.forward(&x, Mode::Train);
        fc.backward(&g);
        fc.forward(&x, Mode::Train);
        fc.backward(&g);
        assert_eq!(fc.weight.grad.data(), &[2.0, 2.0, 2.0, 2.0]);
        fc.zero_grads();
        assert_eq!(fc.weight.grad.sum(), 0.0);
    }

    #[test]
    fn batch_forward_shape() {
        let mut rng = Prng::seed_from_u64(2);
        let mut fc = Linear::new(5, 7, &mut rng);
        let x = Tensor::zeros(&[13, 5]);
        assert_eq!(fc.forward(&x, Mode::Eval).shape(), &[13, 7]);
    }

    #[test]
    #[should_panic(expected = "input features")]
    fn rejects_wrong_width() {
        let mut rng = Prng::seed_from_u64(2);
        let mut fc = Linear::new(5, 7, &mut rng);
        fc.forward(&Tensor::zeros(&[1, 4]), Mode::Eval);
    }

    #[test]
    fn weight_is_device_mapped_bias_is_not() {
        let mut fc = simple_linear();
        let mut kinds = vec![];
        fc.visit_params(&mut |p| kinds.push((p.name.clone(), p.is_device_mapped())));
        assert_eq!(kinds[0], ("weight".to_string(), true));
        assert_eq!(kinds[1], ("bias".to_string(), false));
    }
}
