//! Flatten layer: `[N, ...] -> [N, prod(...)]`.

use super::remember_shape;
use crate::arena::ActivationArena;
use crate::layer::{Layer, Mode};
use crate::param::Param;
use swim_tensor::Tensor;

/// Reshapes each batch item to a vector, preserving the batch dimension.
///
/// Pure data movement: both backward passes reshape their argument back to
/// the cached input shape.
#[derive(Debug, Clone, Default)]
pub struct Flatten {
    input_shape: Option<Vec<usize>>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Flatten::default()
    }

    fn unflatten(&self, upstream: &Tensor) -> Tensor {
        let shape = self.input_shape.as_ref().expect("backward called before forward");
        upstream.clone().reshaped(shape)
    }
}

impl Layer for Flatten {
    fn forward(&mut self, input: &Tensor, _mode: Mode) -> Tensor {
        assert!(input.rank() >= 1, "Flatten expects a batched input");
        let n = input.shape()[0];
        let inner: usize = input.shape()[1..].iter().product();
        remember_shape(&mut self.input_shape, input.shape());
        input.clone().reshaped(&[n, inner])
    }

    fn forward_into(&mut self, input: &Tensor, _mode: Mode, arena: &mut ActivationArena) -> Tensor {
        assert!(input.rank() >= 1, "Flatten expects a batched input");
        let n = input.shape()[0];
        let inner: usize = input.shape()[1..].iter().product();
        remember_shape(&mut self.input_shape, input.shape());
        let mut out = arena.take(&[n, inner]);
        out.data_mut().copy_from_slice(input.data());
        out
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        self.unflatten(grad_output)
    }

    fn second_backward(&mut self, hess_output: &Tensor) -> Tensor {
        self.unflatten(hess_output)
    }

    fn visit_params(&mut self, _visitor: &mut dyn FnMut(&mut Param)) {}

    fn describe(&self) -> String {
        "Flatten".into()
    }

    fn clone_layer(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let mut fl = Flatten::new();
        let x = Tensor::from_fn(&[2, 3, 4, 5], |i| i as f32);
        let y = fl.forward(&x, Mode::Eval);
        assert_eq!(y.shape(), &[2, 60]);
        let g = fl.backward(&y);
        assert_eq!(g.shape(), &[2, 3, 4, 5]);
        assert_eq!(g, x);
    }

    #[test]
    fn no_params() {
        assert_eq!(Flatten::new().num_params(), 0);
    }
}
