//! Pooling layers: max, average, and global average.

use super::remember_shape;
use crate::arena::ActivationArena;
use crate::layer::{Layer, Mode};
use crate::param::Param;
use swim_tensor::Tensor;

/// 2-D max pooling with a square window and equal stride.
///
/// The backward passes route derivatives to the argmax of each window; per
/// the paper (§3.3), "the backpropagation process of max pooling layers
/// cancels derivatives of the deactivated inputs", identically for first
/// and second order.
#[derive(Debug, Clone)]
pub struct MaxPool2d {
    window: usize,
    /// For each output element, the flat input index that won the max.
    argmax: Option<Vec<usize>>,
    input_shape: Option<Vec<usize>>,
}

impl MaxPool2d {
    /// Creates a max-pool layer with `window × window` cells and stride
    /// equal to the window.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "window must be positive");
        MaxPool2d { window, argmax: None, input_shape: None }
    }

    fn route(&self, upstream: &Tensor) -> Tensor {
        let argmax = self.argmax.as_ref().expect("backward called before forward");
        let shape = self.input_shape.as_ref().expect("backward called before forward");
        assert_eq!(upstream.len(), argmax.len(), "upstream does not match cached forward");
        let mut out = Tensor::zeros(shape);
        let od = out.data_mut();
        for (&idx, &v) in argmax.iter().zip(upstream.data()) {
            od[idx] += v;
        }
        out
    }

    /// The shared forward body: `out` is completely overwritten and the
    /// argmax/shape caches reuse their previous allocations.
    fn forward_out(&mut self, input: &Tensor, out: &mut Tensor) {
        assert_eq!(input.rank(), 4, "MaxPool2d expects [N, C, H, W] input");
        let (n, c, h, w) = (input.shape()[0], input.shape()[1], input.shape()[2], input.shape()[3]);
        let k = self.window;
        assert!(h >= k && w >= k, "window {k} larger than input {h}x{w}");
        let (oh, ow) = (h / k, w / k);
        out.reset_zeroed(&[n, c, oh, ow]);
        let argmax = self.argmax.get_or_insert_with(Vec::new);
        argmax.clear();
        argmax.resize(n * c * oh * ow, 0);
        let id = input.data();
        let od = out.data_mut();
        let mut o = 0usize;
        for item in 0..n {
            for ch in 0..c {
                let plane = (item * c + ch) * h * w;
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut best_idx = plane + (oy * k) * w + ox * k;
                        let mut best = id[best_idx];
                        for ky in 0..k {
                            for kx in 0..k {
                                let idx = plane + (oy * k + ky) * w + (ox * k + kx);
                                if id[idx] > best {
                                    best = id[idx];
                                    best_idx = idx;
                                }
                            }
                        }
                        od[o] = best;
                        argmax[o] = best_idx;
                        o += 1;
                    }
                }
            }
        }
        remember_shape(&mut self.input_shape, input.shape());
    }
}

impl Layer for MaxPool2d {
    fn forward(&mut self, input: &Tensor, _mode: Mode) -> Tensor {
        let mut out = Tensor::zeros(&[0]);
        self.forward_out(input, &mut out);
        out
    }

    fn forward_into(&mut self, input: &Tensor, _mode: Mode, arena: &mut ActivationArena) -> Tensor {
        let mut out = arena.grab();
        self.forward_out(input, &mut out);
        out
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        self.route(grad_output)
    }

    fn second_backward(&mut self, hess_output: &Tensor) -> Tensor {
        self.route(hess_output)
    }

    fn visit_params(&mut self, _visitor: &mut dyn FnMut(&mut Param)) {}

    fn describe(&self) -> String {
        format!("MaxPool2d({0}x{0})", self.window)
    }
    fn clone_layer(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

/// 2-D average pooling with a square window and equal stride.
///
/// First-order backward spreads `1/k²` of the gradient to each window
/// element; second-order spreads `1/k⁴` (the squared linear coefficient),
/// following the same FC-layer reduction as the paper's Eq. 8/10.
#[derive(Debug, Clone)]
pub struct AvgPool2d {
    window: usize,
    input_shape: Option<Vec<usize>>,
}

impl AvgPool2d {
    /// Creates an average-pool layer with `window × window` cells and
    /// stride equal to the window.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "window must be positive");
        AvgPool2d { window, input_shape: None }
    }

    fn spread(&self, upstream: &Tensor, coeff: f32) -> Tensor {
        let shape = self.input_shape.as_ref().expect("backward called before forward");
        let (n, c, h, w) = (shape[0], shape[1], shape[2], shape[3]);
        let k = self.window;
        let (oh, ow) = (h / k, w / k);
        assert_eq!(upstream.len(), n * c * oh * ow, "upstream does not match cached forward");
        let mut out = Tensor::zeros(shape);
        let od = out.data_mut();
        let ud = upstream.data();
        let mut u = 0usize;
        for item in 0..n {
            for ch in 0..c {
                let plane = (item * c + ch) * h * w;
                for oy in 0..oh {
                    for ox in 0..ow {
                        let v = ud[u] * coeff;
                        u += 1;
                        for ky in 0..k {
                            for kx in 0..k {
                                od[plane + (oy * k + ky) * w + (ox * k + kx)] += v;
                            }
                        }
                    }
                }
            }
        }
        out
    }

    /// The shared forward body: `out` is completely overwritten.
    fn forward_out(&mut self, input: &Tensor, out: &mut Tensor) {
        assert_eq!(input.rank(), 4, "AvgPool2d expects [N, C, H, W] input");
        let (n, c, h, w) = (input.shape()[0], input.shape()[1], input.shape()[2], input.shape()[3]);
        let k = self.window;
        assert!(h >= k && w >= k, "window {k} larger than input {h}x{w}");
        let (oh, ow) = (h / k, w / k);
        let inv = 1.0 / (k * k) as f32;
        out.reset_zeroed(&[n, c, oh, ow]);
        let id = input.data();
        let od = out.data_mut();
        let mut o = 0usize;
        for item in 0..n {
            for ch in 0..c {
                let plane = (item * c + ch) * h * w;
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = 0.0f32;
                        for ky in 0..k {
                            for kx in 0..k {
                                acc += id[plane + (oy * k + ky) * w + (ox * k + kx)];
                            }
                        }
                        od[o] = acc * inv;
                        o += 1;
                    }
                }
            }
        }
        remember_shape(&mut self.input_shape, input.shape());
    }
}

impl Layer for AvgPool2d {
    fn forward(&mut self, input: &Tensor, _mode: Mode) -> Tensor {
        let mut out = Tensor::zeros(&[0]);
        self.forward_out(input, &mut out);
        out
    }

    fn forward_into(&mut self, input: &Tensor, _mode: Mode, arena: &mut ActivationArena) -> Tensor {
        let mut out = arena.grab();
        self.forward_out(input, &mut out);
        out
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let k2 = (self.window * self.window) as f32;
        self.spread(grad_output, 1.0 / k2)
    }

    fn second_backward(&mut self, hess_output: &Tensor) -> Tensor {
        let k2 = (self.window * self.window) as f32;
        self.spread(hess_output, 1.0 / (k2 * k2))
    }

    fn visit_params(&mut self, _visitor: &mut dyn FnMut(&mut Param)) {}

    fn describe(&self) -> String {
        format!("AvgPool2d({0}x{0})", self.window)
    }
    fn clone_layer(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

/// Global average pooling `[N, C, H, W] -> [N, C]`.
///
/// Equivalent to [`AvgPool2d`] with the window equal to the full feature
/// map followed by a flatten; used by ResNet heads.
#[derive(Debug, Clone, Default)]
pub struct GlobalAvgPool {
    input_shape: Option<Vec<usize>>,
}

impl GlobalAvgPool {
    /// Creates a global average pooling layer.
    pub fn new() -> Self {
        GlobalAvgPool::default()
    }

    fn spread(&self, upstream: &Tensor, square: bool) -> Tensor {
        let shape = self.input_shape.as_ref().expect("backward called before forward");
        let (n, c, h, w) = (shape[0], shape[1], shape[2], shape[3]);
        assert_eq!(upstream.len(), n * c, "upstream does not match cached forward");
        let lin = 1.0 / (h * w) as f32;
        let coeff = if square { lin * lin } else { lin };
        let mut out = Tensor::zeros(shape);
        let od = out.data_mut();
        for item in 0..n {
            for ch in 0..c {
                let v = upstream.data()[item * c + ch] * coeff;
                let plane = (item * c + ch) * h * w;
                for p in &mut od[plane..plane + h * w] {
                    *p += v;
                }
            }
        }
        out
    }

    /// The shared forward body: `out` is completely overwritten.
    fn forward_out(&mut self, input: &Tensor, out: &mut Tensor) {
        assert_eq!(input.rank(), 4, "GlobalAvgPool expects [N, C, H, W] input");
        let (n, c, h, w) = (input.shape()[0], input.shape()[1], input.shape()[2], input.shape()[3]);
        let inv = 1.0 / (h * w) as f32;
        out.reset_zeroed(&[n, c]);
        let od = out.data_mut();
        let id = input.data();
        for item in 0..n {
            for ch in 0..c {
                let plane = (item * c + ch) * h * w;
                od[item * c + ch] = id[plane..plane + h * w].iter().sum::<f32>() * inv;
            }
        }
        remember_shape(&mut self.input_shape, input.shape());
    }
}

impl Layer for GlobalAvgPool {
    fn forward(&mut self, input: &Tensor, _mode: Mode) -> Tensor {
        let mut out = Tensor::zeros(&[0]);
        self.forward_out(input, &mut out);
        out
    }

    fn forward_into(&mut self, input: &Tensor, _mode: Mode, arena: &mut ActivationArena) -> Tensor {
        let mut out = arena.grab();
        self.forward_out(input, &mut out);
        out
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        self.spread(grad_output, false)
    }

    fn second_backward(&mut self, hess_output: &Tensor) -> Tensor {
        self.spread(hess_output, true)
    }

    fn visit_params(&mut self, _visitor: &mut dyn FnMut(&mut Param)) {}

    fn describe(&self) -> String {
        "GlobalAvgPool".into()
    }
    fn clone_layer(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maxpool_picks_maximum() {
        let mut pool = MaxPool2d::new(2);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, -1.0, -2.0, -3.0, -4.0], &[1, 2, 2, 2])
            .unwrap();
        let y = pool.forward(&x, Mode::Eval);
        assert_eq!(y.shape(), &[1, 2, 1, 1]);
        assert_eq!(y.data(), &[4.0, -1.0]);
    }

    #[test]
    fn maxpool_routes_gradient_to_argmax() {
        let mut pool = MaxPool2d::new(2);
        let x = Tensor::from_vec(vec![1.0, 5.0, 2.0, 3.0], &[1, 1, 2, 2]).unwrap();
        pool.forward(&x, Mode::Train);
        let g = pool.backward(&Tensor::from_vec(vec![7.0], &[1, 1, 1, 1]).unwrap());
        assert_eq!(g.data(), &[0.0, 7.0, 0.0, 0.0]);
        // Second-order routing is identical.
        let h = pool.second_backward(&Tensor::from_vec(vec![9.0], &[1, 1, 1, 1]).unwrap());
        assert_eq!(h.data(), &[0.0, 9.0, 0.0, 0.0]);
    }

    #[test]
    fn avgpool_averages() {
        let mut pool = AvgPool2d::new(2);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 6.0], &[1, 1, 2, 2]).unwrap();
        let y = pool.forward(&x, Mode::Eval);
        assert_eq!(y.data(), &[3.0]);
    }

    #[test]
    fn avgpool_backward_coefficients() {
        let mut pool = AvgPool2d::new(2);
        let x = Tensor::zeros(&[1, 1, 2, 2]);
        pool.forward(&x, Mode::Train);
        let g = pool.backward(&Tensor::from_vec(vec![4.0], &[1, 1, 1, 1]).unwrap());
        assert_eq!(g.data(), &[1.0, 1.0, 1.0, 1.0]); // 4 * 1/4
        let h = pool.second_backward(&Tensor::from_vec(vec![16.0], &[1, 1, 1, 1]).unwrap());
        assert_eq!(h.data(), &[1.0, 1.0, 1.0, 1.0]); // 16 * 1/16
    }

    #[test]
    fn global_avg_pool_shapes() {
        let mut pool = GlobalAvgPool::new();
        let x = Tensor::ones(&[2, 3, 4, 4]);
        let y = pool.forward(&x, Mode::Eval);
        assert_eq!(y.shape(), &[2, 3]);
        assert!(y.allclose(&Tensor::ones(&[2, 3]), 1e-6));
        let g = pool.backward(&Tensor::ones(&[2, 3]));
        assert!((g.data()[0] - 1.0 / 16.0).abs() < 1e-7);
        let h = pool.second_backward(&Tensor::ones(&[2, 3]));
        assert!((h.data()[0] - 1.0 / 256.0).abs() < 1e-9);
    }

    #[test]
    fn odd_sizes_truncate() {
        let mut pool = MaxPool2d::new(2);
        let x = Tensor::zeros(&[1, 1, 5, 5]);
        assert_eq!(pool.forward(&x, Mode::Eval).shape(), &[1, 1, 2, 2]);
    }
}
