//! Sequential composition of layers.

use crate::arena::ActivationArena;
use crate::layer::{Layer, Mode};
use crate::param::Param;
use swim_tensor::Tensor;

/// Runs layers in order; the backward passes run them in reverse.
///
/// `Sequential` is itself a [`Layer`], so it nests (residual branches are
/// `Sequential`s inside a [`crate::layers::Residual`] inside the network's
/// top-level `Sequential`).
///
/// # Example
///
/// ```
/// use swim_nn::layers::{Sequential, Relu};
/// use swim_nn::layer::{Layer, Mode};
/// use swim_tensor::Tensor;
///
/// let mut seq = Sequential::new();
/// seq.push(Relu::new());
/// let y = seq.forward(&Tensor::from_vec(vec![-1.0, 2.0], &[2])?, Mode::Eval);
/// assert_eq!(y.data(), &[0.0, 2.0]);
/// # Ok::<(), swim_tensor::TensorError>(())
/// ```
#[derive(Clone, Default)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl Sequential {
    /// Creates an empty sequence (the identity function).
    pub fn new() -> Self {
        Sequential { layers: Vec::new() }
    }

    /// Appends a layer.
    pub fn push(&mut self, layer: impl Layer + 'static) {
        self.layers.push(Box::new(layer));
    }

    /// Appends a boxed layer.
    pub fn push_boxed(&mut self, layer: Box<dyn Layer>) {
        self.layers.push(layer);
    }

    /// Number of direct child layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the sequence is empty (identity).
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }
}

impl std::fmt::Debug for Sequential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Sequential[{} layers]", self.layers.len())
    }
}

impl Layer for Sequential {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x, mode);
        }
        x
    }

    fn forward_into(&mut self, input: &Tensor, mode: Mode, arena: &mut ActivationArena) -> Tensor {
        // The ping/pong loop: each layer's output comes from the arena
        // and its input buffer goes straight back, so a sequential chain
        // cycles two buffers however deep it is.
        let Some((first, rest)) = self.layers.split_first_mut() else {
            let mut out = arena.grab();
            out.copy_from(input);
            return out;
        };
        let mut x = first.forward_into(input, mode, arena);
        for layer in rest {
            let y = layer.forward_into(&x, mode, arena);
            arena.recycle(x);
            x = y;
        }
        x
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let mut g = grad_output.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g);
        }
        g
    }

    fn second_backward(&mut self, hess_output: &Tensor) -> Tensor {
        let mut h = hess_output.clone();
        for layer in self.layers.iter_mut().rev() {
            h = layer.second_backward(&h);
        }
        h
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Param)) {
        for layer in &mut self.layers {
            layer.visit_params(visitor);
        }
    }

    fn describe(&self) -> String {
        let inner: Vec<String> = self.layers.iter().map(|l| l.describe()).collect();
        format!("Sequential[{}]", inner.join(", "))
    }
    fn clone_layer(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Linear, Relu};
    use swim_tensor::Prng;

    #[test]
    fn empty_is_identity() {
        let mut seq = Sequential::new();
        let x = Tensor::from_vec(vec![1.0, -2.0], &[2]).unwrap();
        assert_eq!(seq.forward(&x, Mode::Eval), x);
        assert_eq!(seq.backward(&x), x);
        assert_eq!(seq.second_backward(&x), x);
    }

    #[test]
    fn composes_forward_and_backward() {
        let mut rng = Prng::seed_from_u64(1);
        let mut seq = Sequential::new();
        seq.push(Linear::new(3, 4, &mut rng));
        seq.push(Relu::new());
        seq.push(Linear::new(4, 2, &mut rng));
        let x = Tensor::randn(&[5, 3], &mut rng);
        let y = seq.forward(&x, Mode::Train);
        assert_eq!(y.shape(), &[5, 2]);
        let g = seq.backward(&Tensor::ones(&[5, 2]));
        assert_eq!(g.shape(), &[5, 3]);
        let h = seq.second_backward(&Tensor::ones(&[5, 2]));
        assert_eq!(h.shape(), &[5, 3]);
        assert!(h.data().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn visits_all_params() {
        let mut rng = Prng::seed_from_u64(2);
        let mut seq = Sequential::new();
        seq.push(Linear::new(3, 4, &mut rng));
        seq.push(Linear::new(4, 2, &mut rng));
        assert_eq!(seq.num_params(), (3 * 4 + 4) + (4 * 2 + 2));
    }

    #[test]
    fn describe_lists_children() {
        let mut rng = Prng::seed_from_u64(3);
        let mut seq = Sequential::new();
        seq.push(Linear::new(2, 2, &mut rng));
        seq.push(Relu::new());
        let d = seq.describe();
        assert!(d.contains("Linear(2->2)"));
        assert!(d.contains("ReLU"));
    }
}
