//! Activation fake-quantization layer.

use crate::arena::ActivationArena;
use crate::layer::{Layer, Mode};
use crate::param::Param;
use swim_tensor::Tensor;

/// Quantizes activations to `bits` on the forward pass; gradients and
/// second derivatives pass through unchanged (straight-through estimator).
///
/// The paper's models are "quantized to the proper data precision"
/// (4-bit for MNIST, 6-bit for CIFAR/Tiny-ImageNet, §4.2–4.5) — on the
/// accelerator this models the finite ADC/DAC resolution at layer
/// boundaries. Placed after ReLU the quantization grid is unsigned;
/// elsewhere it is symmetric signed.
#[derive(Debug, Clone)]
pub struct ActQuant {
    bits: u32,
    unsigned: bool,
}

impl ActQuant {
    /// Creates a signed activation quantizer.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is zero or above 16.
    pub fn new(bits: u32) -> Self {
        assert!((1..=16).contains(&bits), "bits must be in 1..=16");
        ActQuant { bits, unsigned: false }
    }

    /// Creates an unsigned quantizer for post-ReLU activations.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is zero or above 16.
    pub fn unsigned(bits: u32) -> Self {
        assert!((1..=16).contains(&bits), "bits must be in 1..=16");
        ActQuant { bits, unsigned: true }
    }

    /// Bit width of the quantization grid.
    pub fn bits(&self) -> u32 {
        self.bits
    }
}

impl Layer for ActQuant {
    fn forward(&mut self, input: &Tensor, _mode: Mode) -> Tensor {
        if self.unsigned {
            swim_quant::fake_quant_unsigned(input, self.bits)
        } else {
            swim_quant::fake_quant(input, self.bits)
        }
    }

    fn forward_into(&mut self, input: &Tensor, _mode: Mode, arena: &mut ActivationArena) -> Tensor {
        let mut out = arena.grab();
        if self.unsigned {
            swim_quant::fake_quant_unsigned_into(input, self.bits, &mut out);
        } else {
            swim_quant::fake_quant_into(input, self.bits, &mut out);
        }
        out
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        // Straight-through estimator.
        grad_output.clone()
    }

    fn second_backward(&mut self, hess_output: &Tensor) -> Tensor {
        hess_output.clone()
    }

    fn visit_params(&mut self, _visitor: &mut dyn FnMut(&mut Param)) {}

    fn describe(&self) -> String {
        format!(
            "ActQuant({}-bit, {})",
            self.bits,
            if self.unsigned { "unsigned" } else { "signed" }
        )
    }

    fn clone_layer(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swim_tensor::Prng;

    #[test]
    fn forward_snaps_to_grid() {
        let mut q = ActQuant::unsigned(2); // grid {0, 1/3, 2/3, 1} * max
        let x = Tensor::from_vec(vec![0.0, 0.4, 0.9, 1.2], &[4]).unwrap();
        let y = q.forward(&x, Mode::Eval);
        let step = 1.2 / 3.0;
        for &v in y.data() {
            let k = (v / step).round();
            assert!((v - k * step).abs() < 1e-6);
        }
    }

    #[test]
    fn straight_through_gradients() {
        let mut q = ActQuant::new(4);
        let mut rng = Prng::seed_from_u64(2);
        let x = Tensor::randn(&[8], &mut rng);
        q.forward(&x, Mode::Train);
        let g = Tensor::randn(&[8], &mut rng);
        assert_eq!(q.backward(&g), g);
        assert_eq!(q.second_backward(&g), g);
    }

    #[test]
    fn higher_bits_smaller_error() {
        let mut rng = Prng::seed_from_u64(3);
        let x = Tensor::randn(&[256], &mut rng);
        let e = |bits| {
            let mut q = ActQuant::new(bits);
            let y = q.forward(&x, Mode::Eval);
            (&y - &x).norm_sq()
        };
        assert!(e(6) < e(3));
    }
}
