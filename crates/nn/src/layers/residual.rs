//! Residual block with skip connection.

use crate::arena::ActivationArena;
use crate::layer::{Layer, Mode};
use crate::layers::{Relu, Sequential};
use crate::param::Param;
use swim_tensor::Tensor;

/// `y = ReLU(main(x) + shortcut(x))` — the ResNet basic-block skeleton.
///
/// An empty `shortcut` is the identity. During both backward passes the
/// derivative arriving from the output is pushed through *both* branches
/// and the input contributions are summed — per the paper: "for ResNet and
/// other models with skip connections ... the second derivatives of
/// different branches are summed up" (§3.3).
#[derive(Debug, Clone)]
pub struct Residual {
    main: Sequential,
    shortcut: Sequential,
    relu: Relu,
}

impl Residual {
    /// Creates a residual block with an identity shortcut.
    pub fn new(main: Sequential) -> Self {
        Residual { main, shortcut: Sequential::new(), relu: Relu::new() }
    }

    /// Creates a residual block with a projection shortcut (used when the
    /// main branch changes shape, e.g. stride-2 stage transitions).
    pub fn with_shortcut(main: Sequential, shortcut: Sequential) -> Self {
        Residual { main, shortcut, relu: Relu::new() }
    }
}

impl Layer for Residual {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        let main_out = self.main.forward(input, mode);
        let short_out = self.shortcut.forward(input, mode);
        assert_eq!(
            main_out.shape(),
            short_out.shape(),
            "residual branch shapes diverge: {:?} vs {:?}",
            main_out.shape(),
            short_out.shape()
        );
        self.relu.forward(&(&main_out + &short_out), mode)
    }

    fn forward_into(&mut self, input: &Tensor, mode: Mode, arena: &mut ActivationArena) -> Tensor {
        // Both branches draw from the arena; the branch sum happens in
        // place in the main branch's buffer, so the block holds at most
        // one extra buffer beyond the sequential ping/pong pair.
        let mut main_out = self.main.forward_into(input, mode, arena);
        let short_out = self.shortcut.forward_into(input, mode, arena);
        assert_eq!(
            main_out.shape(),
            short_out.shape(),
            "residual branch shapes diverge: {:?} vs {:?}",
            main_out.shape(),
            short_out.shape()
        );
        main_out.add_assign_t(&short_out);
        arena.recycle(short_out);
        let out = self.relu.forward_into(&main_out, mode, arena);
        arena.recycle(main_out);
        out
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let g = self.relu.backward(grad_output);
        let g_main = self.main.backward(&g);
        let g_short = self.shortcut.backward(&g);
        &g_main + &g_short
    }

    fn second_backward(&mut self, hess_output: &Tensor) -> Tensor {
        let h = self.relu.second_backward(hess_output);
        let h_main = self.main.second_backward(&h);
        let h_short = self.shortcut.second_backward(&h);
        // Branch second derivatives sum (paper §3.3).
        &h_main + &h_short
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Param)) {
        self.main.visit_params(visitor);
        self.shortcut.visit_params(visitor);
    }

    fn describe(&self) -> String {
        if self.shortcut.is_empty() {
            format!("Residual[{}]", self.main.describe())
        } else {
            format!("Residual[{} || {}]", self.main.describe(), self.shortcut.describe())
        }
    }

    fn clone_layer(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::Linear;
    use swim_tensor::Prng;

    #[test]
    fn identity_shortcut_doubles_zero_main() {
        // main = Linear with zero weights -> y = relu(x)
        let mut rng = Prng::seed_from_u64(1);
        let mut fc = Linear::new(3, 3, &mut rng);
        fc.visit_params(&mut |p| p.value.fill(0.0));
        let mut main = Sequential::new();
        main.push(fc);
        let mut block = Residual::new(main);
        let x = Tensor::from_vec(vec![1.0, -2.0, 3.0], &[1, 3]).unwrap();
        let y = block.forward(&x, Mode::Eval);
        assert_eq!(y.data(), &[1.0, 0.0, 3.0]);
    }

    #[test]
    fn backward_sums_branches() {
        // Both branches identity-like: grad should double.
        let mut rng = Prng::seed_from_u64(2);
        let mut id_main = Linear::new(2, 2, &mut rng);
        id_main.visit_params(&mut |p| {
            if p.name == "weight" {
                p.value = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2]).unwrap();
            } else {
                p.value.fill(0.0);
            }
        });
        let mut id_short = Linear::new(2, 2, &mut rng);
        id_short.visit_params(&mut |p| {
            if p.name == "weight" {
                p.value = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2]).unwrap();
            } else {
                p.value.fill(0.0);
            }
        });
        let mut main = Sequential::new();
        main.push(id_main);
        let mut short = Sequential::new();
        short.push(id_short);
        let mut block = Residual::with_shortcut(main, short);
        let x = Tensor::from_vec(vec![1.0, 2.0], &[1, 2]).unwrap();
        let y = block.forward(&x, Mode::Train);
        assert_eq!(y.data(), &[2.0, 4.0]); // x + x, relu positive
        let g = block.backward(&Tensor::ones(&[1, 2]));
        assert_eq!(g.data(), &[2.0, 2.0]); // both branches contribute 1

        let h = block.second_backward(&Tensor::ones(&[1, 2]));
        assert_eq!(h.data(), &[2.0, 2.0]); // 1² per branch, summed
    }

    #[test]
    fn relu_gates_block_output() {
        let mut rng = Prng::seed_from_u64(3);
        let mut fc = Linear::new(1, 1, &mut rng);
        fc.visit_params(&mut |p| p.value.fill(0.0));
        let mut main = Sequential::new();
        main.push(fc);
        let mut block = Residual::new(main);
        let x = Tensor::from_vec(vec![-5.0], &[1, 1]).unwrap();
        let y = block.forward(&x, Mode::Train);
        assert_eq!(y.data(), &[0.0]);
        // Output was gated off: no gradient flows.
        let g = block.backward(&Tensor::ones(&[1, 1]));
        assert_eq!(g.data(), &[0.0]);
    }

    #[test]
    fn params_from_both_branches() {
        let mut rng = Prng::seed_from_u64(4);
        let mut main = Sequential::new();
        main.push(Linear::new(2, 2, &mut rng));
        let mut short = Sequential::new();
        short.push(Linear::new(2, 2, &mut rng));
        let mut block = Residual::with_shortcut(main, short);
        assert_eq!(block.num_params(), 2 * (2 * 2 + 2));
    }
}
