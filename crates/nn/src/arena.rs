//! Recycled activation buffers for the allocation-free forward path.

use swim_tensor::Tensor;

/// A pool of recycled activation tensors backing
/// [`Layer::forward_into`](crate::layer::Layer::forward_into).
///
/// Every [`crate::layer::Layer::forward_into`] call grabs a buffer from
/// the arena for its output and the caller recycles the layer's *input*
/// buffer as soon as the next layer has consumed it. Buffers are handed
/// out LIFO, so a plain sequential network settles into exactly two
/// tensors playing ping (current input) and pong (current output),
/// swapped every layer — the classic double-buffered activation scheme.
/// Branching layers ([`crate::layers::Residual`]) briefly hold a third
/// buffer for the second branch; the pool grows to the high-water mark
/// of simultaneously-live activations on first use and is reused
/// unchanged for every later forward pass.
///
/// Buffers are resized in place ([`Tensor::reset_zeroed`]), so once the
/// pool has seen the widest activation of a network, a steady-state
/// forward pass performs **zero heap allocations**. Results are
/// bit-identical to the fresh-allocation [`crate::layer::Layer::forward`]
/// path: both run the same compute kernels over identically-zeroed
/// output buffers.
///
/// # Example
///
/// ```
/// use swim_nn::arena::ActivationArena;
/// use swim_nn::layer::{Layer, Mode};
/// use swim_nn::layers::Relu;
/// use swim_tensor::Tensor;
///
/// let mut arena = ActivationArena::new();
/// let mut relu = Relu::new();
/// let x = Tensor::from_vec(vec![-1.0, 2.0], &[2])?;
/// let y = relu.forward_into(&x, Mode::Eval, &mut arena);
/// assert_eq!(y.data(), &[0.0, 2.0]);
/// arena.recycle(y); // hand the buffer back for the next call
/// assert_eq!(arena.pooled(), 1);
/// # Ok::<(), swim_tensor::TensorError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct ActivationArena {
    free: Vec<Tensor>,
}

impl ActivationArena {
    /// Creates an empty arena; buffers are allocated lazily on first use.
    pub fn new() -> Self {
        ActivationArena::default()
    }

    /// Hands out a buffer of unspecified shape and contents (the most
    /// recently recycled one, or a fresh empty tensor on a cold pool).
    ///
    /// Layer implementations call [`Tensor::reset_zeroed`] on it before
    /// writing, which reuses the buffer's capacity.
    pub fn grab(&mut self) -> Tensor {
        self.free.pop().unwrap_or_else(|| Tensor::zeros(&[0]))
    }

    /// Hands out a buffer already reset to `Tensor::zeros(dims)`.
    pub fn take(&mut self, dims: &[usize]) -> Tensor {
        let mut t = self.grab();
        t.reset_zeroed(dims);
        t
    }

    /// Returns a buffer to the pool for reuse by a later grab.
    pub fn recycle(&mut self, tensor: Tensor) {
        self.free.push(tensor);
    }

    /// Number of buffers currently parked in the pool (a sequential
    /// network settles at two — the ping/pong pair).
    pub fn pooled(&self) -> usize {
        self.free.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grab_recycle_round_trip_reuses_capacity() {
        let mut arena = ActivationArena::new();
        let mut t = arena.take(&[4, 4]);
        assert_eq!(t.shape(), &[4, 4]);
        assert!(t.data().iter().all(|&v| v == 0.0));
        t.fill(7.0);
        let cap_marker = t.data().as_ptr();
        arena.recycle(t);
        assert_eq!(arena.pooled(), 1);
        // Same or smaller shape: the identical buffer comes back, zeroed.
        let t2 = arena.take(&[2, 3]);
        assert_eq!(arena.pooled(), 0);
        assert_eq!(t2.shape(), &[2, 3]);
        assert!(t2.data().iter().all(|&v| v == 0.0));
        assert_eq!(t2.data().as_ptr(), cap_marker);
    }

    #[test]
    fn lifo_order_gives_ping_pong() {
        let mut arena = ActivationArena::new();
        let a = arena.take(&[1]);
        let b = arena.take(&[2]);
        let a_ptr = a.data().as_ptr();
        arena.recycle(a);
        arena.recycle(b);
        // b (most recent) first, then a.
        let _b = arena.grab();
        let a2 = arena.grab();
        assert_eq!(a2.data().as_ptr(), a_ptr);
    }

    #[test]
    fn cold_pool_hands_out_empty_tensors() {
        let mut arena = ActivationArena::new();
        assert_eq!(arena.pooled(), 0);
        assert_eq!(arena.grab().len(), 0);
    }
}
