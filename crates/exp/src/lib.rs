//! Declarative experiment descriptions for the SWIM reproduction.
//!
//! This crate turns "which experiment am I running" into data: an
//! [`spec::ExperimentSpec`] bundles scenario, device model, training
//! budget, selection strategy, sweep grid, and Monte Carlo budget into
//! one validated struct that
//!
//! * parses from a hand-rolled TOML subset or JSON ([`value`]) with
//!   `Default`-based completion and unknown-key rejection,
//! * writes back out losslessly (spec files and results documents are
//!   diffable artifacts),
//! * derives every per-stage config view the engine crates consume
//!   (`SweepConfig`, `Alg1Config`, `InsituConfig`, `DeviceConfig`), and
//! * ships presets replicating each paper artifact ([`presets`]).
//!
//! The `swim` CLI in `swim-bench` is the main consumer: `swim run
//! spec.toml`, `swim preset table1 --set runs=25`, `swim list`.
//!
//! # Example
//!
//! ```
//! use swim_exp::presets::preset;
//! use swim_exp::spec::ExperimentSpec;
//!
//! let spec = preset("table1", false).unwrap();
//! assert_eq!(spec.device.sigmas, vec![0.1, 0.15, 0.2]);
//!
//! // Specs are data: write, edit, re-parse.
//! let text = spec.to_toml();
//! let same = ExperimentSpec::parse_str(&text).unwrap();
//! assert_eq!(spec, same);
//! ```

#![warn(missing_docs)]

pub mod presets;
pub mod spec;
pub mod value;

pub use presets::{preset, preset_infos};
pub use spec::{ExperimentKind, ExperimentSpec, ScenarioKind, SpecError};
pub use value::Value;
