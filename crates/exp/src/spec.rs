//! The declarative experiment description: one validated struct holding
//! scenario, device, training budget, selection strategy, sweep grid,
//! and Monte Carlo budget.
//!
//! An [`ExperimentSpec`] is what the `swim` CLI runs, what preset
//! definitions produce, and what the JSON results document echoes. It
//! parses from the TOML subset (or JSON) of [`crate::value`], writes
//! back out losslessly, rejects unknown keys, and derives the per-stage
//! config views (`SweepConfig`, `Alg1Config`, `InsituConfig`,
//! `DeviceConfig`) that the engine crates consume.

use crate::value::{parse_json, parse_loose, parse_toml, Reader, Value};
use swim_cim::device::{DeviceConfig, DeviceTech};
use swim_cim::model::{device_model_by_name, device_model_keys, DEFAULT_DEVICE_MODEL};
use swim_core::algorithm::Alg1Config;
use swim_core::insitu::InsituConfig;
use swim_core::montecarlo::{PanicPolicy, SweepConfig};
use swim_core::select::{selector_by_name, Selector};

/// A spec parsing/validation error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError(pub String);

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "spec error: {}", self.0)
    }
}

impl std::error::Error for SpecError {}

impl From<String> for SpecError {
    fn from(msg: String) -> Self {
        SpecError(msg)
    }
}

fn err(msg: impl Into<String>) -> SpecError {
    SpecError(msg.into())
}

/// Which paper artifact (presentation + computation shape) a spec
/// describes. `Sweep` is the generic accuracy-vs-NWC comparison; the
/// others add the framing of the corresponding paper artifact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExperimentKind {
    /// Generic multi-method accuracy-vs-NWC sweep.
    Sweep,
    /// Table 1: per-sigma method tables plus the §4.3 speed-up summaries.
    Table1,
    /// Fig. 2 panel: single-device sweep with the paper's shape checks.
    Fig2,
    /// Fig. 1: single-weight perturbation correlation study.
    Fig1,
    /// §4.1 device-model calibration statistics.
    Calibration,
    /// Granularity / tie-break / calibration-set ablations.
    Ablation,
}

impl ExperimentKind {
    /// Every kind, with its stable spec key.
    pub fn all() -> [ExperimentKind; 6] {
        [
            ExperimentKind::Sweep,
            ExperimentKind::Table1,
            ExperimentKind::Fig2,
            ExperimentKind::Fig1,
            ExperimentKind::Calibration,
            ExperimentKind::Ablation,
        ]
    }

    /// Stable key used in spec files.
    pub fn key(&self) -> &'static str {
        match self {
            ExperimentKind::Sweep => "sweep",
            ExperimentKind::Table1 => "table1",
            ExperimentKind::Fig2 => "fig2",
            ExperimentKind::Fig1 => "fig1",
            ExperimentKind::Calibration => "calibration",
            ExperimentKind::Ablation => "ablation",
        }
    }

    /// Parses a kind key.
    pub fn parse(name: &str) -> Option<ExperimentKind> {
        ExperimentKind::all().into_iter().find(|k| k.key() == name)
    }
}

/// Which model/dataset pairing to prepare.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScenarioKind {
    /// LeNet on the MNIST substitute (paper §4.3; 4-bit).
    LenetMnist,
    /// ConvNet on the CIFAR-10 substitute (paper §4.4; 6-bit).
    ConvnetCifar,
    /// ResNet-18 on the CIFAR-10 substitute (paper §4.4; 6-bit).
    Resnet18Cifar,
    /// ResNet-18 on the Tiny-ImageNet substitute (paper §4.5; 6-bit).
    Resnet18Tiny,
}

impl ScenarioKind {
    /// Every scenario, with its stable spec key.
    pub fn all() -> [ScenarioKind; 4] {
        [
            ScenarioKind::LenetMnist,
            ScenarioKind::ConvnetCifar,
            ScenarioKind::Resnet18Cifar,
            ScenarioKind::Resnet18Tiny,
        ]
    }

    /// Stable key used in spec files.
    pub fn key(&self) -> &'static str {
        match self {
            ScenarioKind::LenetMnist => "lenet-mnist",
            ScenarioKind::ConvnetCifar => "convnet-cifar",
            ScenarioKind::Resnet18Cifar => "resnet18-cifar",
            ScenarioKind::Resnet18Tiny => "resnet18-tiny",
        }
    }

    /// Parses a scenario key.
    pub fn parse(name: &str) -> Option<ScenarioKind> {
        ScenarioKind::all().into_iter().find(|s| s.key() == name)
    }
}

/// `[scenario]`: the model/dataset pairing.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Which architecture/dataset pair.
    pub model: ScenarioKind,
    /// Channel-width multiplier (1.0 = paper scale).
    pub width: f32,
    /// Class count (only meaningful for the Tiny-ImageNet scenario).
    pub classes: usize,
}

impl Default for ScenarioSpec {
    fn default() -> Self {
        ScenarioSpec { model: ScenarioKind::LenetMnist, width: 1.0, classes: 10 }
    }
}

/// `[device]`: technology preset, variation grid, and overrides.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceSpec {
    /// Technology preset supplying the non-sigma defaults.
    pub tech: DeviceTech,
    /// Device models to run, by registry key (`swim list` prints them;
    /// see [`swim_cim::model::device_model_registry`]). Grid kinds
    /// (`sweep`, `table1`) cross every model with every sigma; the
    /// single-run kinds require exactly one entry. Must be non-empty.
    pub models: Vec<String>,
    /// Variation levels to run (Table 1 sweeps several; most artifacts
    /// use one). Must be non-empty.
    pub sigmas: Vec<f64>,
    /// Optional override of the preset's verify margin.
    pub verify_margin: Option<f64>,
    /// Optional override of the preset's pulse step.
    pub pulse_step: Option<f64>,
    /// Optional override of the preset's verify-iteration bound.
    pub max_verify_iters: Option<u32>,
    /// Optional override of the preset's device bit width.
    pub device_bits: Option<u32>,
}

impl Default for DeviceSpec {
    fn default() -> Self {
        DeviceSpec {
            tech: DeviceTech::Rram,
            models: vec![DEFAULT_DEVICE_MODEL.to_string()],
            sigmas: vec![0.1],
            verify_margin: None,
            pulse_step: None,
            max_verify_iters: None,
            device_bits: None,
        }
    }
}

impl DeviceSpec {
    /// Resolves the spec at one variation level into the engine's
    /// [`DeviceConfig`].
    pub fn config_at(&self, sigma: f64) -> DeviceConfig {
        let mut cfg = DeviceConfig::for_tech(self.tech).with_sigma(sigma);
        if let Some(m) = self.verify_margin {
            cfg.verify_margin = m;
        }
        if let Some(p) = self.pulse_step {
            cfg.pulse_step = p;
        }
        if let Some(i) = self.max_verify_iters {
            cfg.max_verify_iters = i;
        }
        if let Some(b) = self.device_bits {
            cfg = cfg.with_device_bits(b);
        }
        cfg
    }

    /// One [`DeviceConfig`] per entry of the sigma grid.
    pub fn configs(&self) -> Vec<DeviceConfig> {
        self.sigmas.iter().map(|&s| self.config_at(s)).collect()
    }

    /// Builds the spec describing an existing [`DeviceConfig`] — the
    /// inverse of [`DeviceSpec::config_at`], so device settings round-trip
    /// through spec files.
    pub fn from_config(cfg: &DeviceConfig) -> DeviceSpec {
        // Prefer a bare preset reference when one matches exactly.
        for tech in DeviceTech::all() {
            if DeviceConfig::for_tech(tech).with_sigma(cfg.sigma) == *cfg {
                return DeviceSpec { tech, sigmas: vec![cfg.sigma], ..Default::default() };
            }
        }
        DeviceSpec {
            tech: DeviceTech::Rram,
            sigmas: vec![cfg.sigma],
            verify_margin: Some(cfg.verify_margin),
            pulse_step: Some(cfg.pulse_step),
            max_verify_iters: Some(cfg.max_verify_iters),
            device_bits: Some(cfg.device_bits),
            ..Default::default()
        }
    }
}

/// `[training]`: the budget used to train the scenario's network.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainingSpec {
    /// Total samples generated (split 80/20 train/test).
    pub samples: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Learning rate.
    pub lr: f32,
    /// Mini-batch size.
    pub batch: usize,
}

impl Default for TrainingSpec {
    fn default() -> Self {
        TrainingSpec { samples: 2500, epochs: 6, lr: 0.05, batch: 32 }
    }
}

/// `[selection]`: which selectors compete, and whether the in-situ
/// baseline rides along.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectionSpec {
    /// Selector registry keys, in table row order.
    pub methods: Vec<String>,
    /// Whether to run the in-situ training baseline.
    pub insitu: bool,
}

impl Default for SelectionSpec {
    fn default() -> Self {
        SelectionSpec {
            methods: vec!["swim".into(), "magnitude".into(), "random".into()],
            insitu: true,
        }
    }
}

impl SelectionSpec {
    /// Resolves the method names into selector instances.
    ///
    /// # Panics
    ///
    /// Panics if a name is unknown — call after validation.
    pub fn selectors(&self) -> Vec<Box<dyn Selector>> {
        self.methods
            .iter()
            .map(|name| {
                selector_by_name(name).unwrap_or_else(|| panic!("unknown selector `{name}`"))
            })
            .collect()
    }
}

/// `[sweep]`: the write-verified-fraction grid (≈ NWC grid).
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSpec {
    /// Selection fractions to evaluate.
    pub fractions: Vec<f64>,
}

impl Default for SweepSpec {
    fn default() -> Self {
        SweepSpec { fractions: vec![0.0, 0.1, 0.3, 0.5, 0.7, 0.9, 1.0] }
    }
}

/// `[montecarlo]`: replication budget.
#[derive(Debug, Clone, PartialEq)]
pub struct MonteCarloSpec {
    /// Monte Carlo runs per method/point (paper: 3000).
    pub runs: usize,
    /// Worker threads; 0 = all cores.
    pub threads: usize,
    /// Evaluation batch size.
    pub eval_batch: usize,
    /// What happens when one run panics: `"fail-fast"` aborts the sweep
    /// with the run index (the default), `"isolate"` records the fault
    /// in the results document and keeps sweeping.
    pub on_panic: PanicPolicy,
}

impl Default for MonteCarloSpec {
    fn default() -> Self {
        MonteCarloSpec { runs: 25, threads: 0, eval_batch: 256, on_panic: PanicPolicy::FailFast }
    }
}

/// `[run]`: execution partitioning. Unlike every other section this is
/// not part of the experiment's mathematical identity — two shards of
/// one experiment differ only here, and `swim merge` strips it.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RunSpec {
    /// Deterministic seed-range shard `(index, count)`, written as
    /// `"i/n"` in spec files. Shard `i` of `n` covers the global Monte
    /// Carlo runs `[i·runs/n, (i+1)·runs/n)`; because run `r` always
    /// draws from the forked stream `r`, the shards of a complete
    /// partition reproduce exactly the runs of the unsharded sweep.
    /// `None` runs everything.
    pub shard: Option<(usize, usize)>,
    /// SIMD backend to pin the run to (`scalar`, `avx2`, `avx512`,
    /// `neon`). `None` uses the ambient dispatch (the `SWIM_SIMD`
    /// environment override, else runtime feature detection). The
    /// backend actually used is recorded in the results document's
    /// top-level `simd` field either way.
    pub simd: Option<String>,
}

/// `[tune]`: kernel-tuning policy. Like `[run]` this is not part of the
/// experiment's mathematical identity: tuning is timing-only by
/// contract (every candidate config changes speed, never bytes), so two
/// runs differing only here produce byte-identical results apart from
/// wall time and the `tuning` provenance section. Spec values take the
/// highest precedence (spec > CLI flags > environment > on-disk cache >
/// autotune > built-in default); unset keys fall through to the next
/// layer. `None`/`0` knobs mean "auto" exactly like the
/// [`swim_tensor::tune::KernelTuning`] they resolve into.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TuneSpec {
    /// Autotune mode (`"off"` or `"on"`). `None` defers to the
    /// `SWIM_TUNE` environment override, else off.
    pub mode: Option<String>,
    /// Pinned GEMM block width (beats cache and autotuner).
    pub gemm_block: Option<usize>,
    /// Pinned GEMM threading threshold in multiplies.
    pub gemm_min_flops: Option<usize>,
    /// Pinned im2col scratch cap in `f32` elements.
    pub im2col_cap: Option<usize>,
}

impl TuneSpec {
    /// Whether every key is unset (the section is then not echoed).
    pub fn is_default(&self) -> bool {
        *self == TuneSpec::default()
    }
}

/// Parses the `"i/n"` shard form.
fn parse_shard(text: &str) -> Result<(usize, usize), SpecError> {
    let invalid = || err(format!("`run.shard` must be \"i/n\" with 0 <= i < n (got `{text}`)"));
    let (i, n) = text.split_once('/').ok_or_else(invalid)?;
    let index: usize = i.trim().parse().map_err(|_| invalid())?;
    let count: usize = n.trim().parse().map_err(|_| invalid())?;
    if count == 0 || index >= count {
        return Err(invalid());
    }
    Ok((index, count))
}

/// `[insitu]`: on-device training baseline hyper-parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct InsituSpec {
    /// SGD learning rate for the on-device updates.
    pub lr: f32,
    /// Mini-batch size per iteration.
    pub batch: usize,
}

impl Default for InsituSpec {
    fn default() -> Self {
        InsituSpec { lr: 0.005, batch: 32 }
    }
}

/// `[correlation]`: Fig. 1 study shape.
#[derive(Debug, Clone, PartialEq)]
pub struct CorrelationSpec {
    /// Weights to probe.
    pub probes: usize,
    /// Monte Carlo runs per probed weight.
    pub runs: usize,
}

impl Default for CorrelationSpec {
    fn default() -> Self {
        CorrelationSpec { probes: 150, runs: 30 }
    }
}

/// `[calibration]`: §4.1 device statistics sample size.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibrationSpec {
    /// Devices sampled per configuration.
    pub devices: usize,
}

impl Default for CalibrationSpec {
    fn default() -> Self {
        CalibrationSpec { devices: 100_000 }
    }
}

/// `[ablation]`: grids for the three ablation studies.
#[derive(Debug, Clone, PartialEq)]
pub struct AblationSpec {
    /// Algorithm 1 programming granularities `p`.
    pub granularities: Vec<f64>,
    /// Algorithm 1 accuracy-drop budget `δA` (fraction).
    pub max_drop: f64,
    /// Fractions for the tie-break comparison sweep.
    pub tiebreak_fractions: Vec<f64>,
    /// Calibration-set size fractions for the sensitivity-data ablation.
    pub calibration_fractions: Vec<f64>,
}

impl Default for AblationSpec {
    fn default() -> Self {
        AblationSpec {
            granularities: vec![0.01, 0.05, 0.10, 0.25],
            max_drop: 0.005,
            tiebreak_fractions: vec![0.05, 0.1, 0.3],
            calibration_fractions: vec![0.02, 0.1, 0.5, 1.0],
        }
    }
}

/// The complete declarative experiment description.
///
/// Partial documents are completed from [`Default`]: a spec file only
/// needs the keys it wants to change.
///
/// # Example
///
/// ```
/// use swim_exp::spec::ExperimentSpec;
///
/// let spec = ExperimentSpec::parse_str(
///     "name = \"mini\"\n[montecarlo]\nruns = 3\n",
/// ).unwrap();
/// assert_eq!(spec.name, "mini");
/// assert_eq!(spec.montecarlo.runs, 3);
/// assert_eq!(spec.training.epochs, 6); // defaulted
/// let text = spec.to_toml();
/// assert_eq!(ExperimentSpec::parse_str(&text).unwrap(), spec);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentSpec {
    /// Display name (used in output headers and the results document).
    pub name: String,
    /// Artifact kind (presentation + computation shape).
    pub kind: ExperimentKind,
    /// Paper note printed alongside Fig. 2-style output.
    pub note: String,
    /// Base RNG seed for data, training, and Monte Carlo.
    pub seed: u64,
    /// Model/dataset pairing.
    pub scenario: ScenarioSpec,
    /// Device model and variation grid.
    pub device: DeviceSpec,
    /// Training budget.
    pub training: TrainingSpec,
    /// Competing selectors and baselines.
    pub selection: SelectionSpec,
    /// NWC grid.
    pub sweep: SweepSpec,
    /// Monte Carlo budget.
    pub montecarlo: MonteCarloSpec,
    /// In-situ baseline hyper-parameters.
    pub insitu: InsituSpec,
    /// Fig. 1 study shape.
    pub correlation: CorrelationSpec,
    /// Calibration sample size.
    pub calibration: CalibrationSpec,
    /// Ablation grids.
    pub ablation: AblationSpec,
    /// Execution partitioning (seed-range sharding).
    pub run: RunSpec,
    /// Kernel-tuning policy (timing-only; see [`TuneSpec`]).
    pub tune: TuneSpec,
}

impl Default for ExperimentSpec {
    fn default() -> Self {
        ExperimentSpec {
            name: "custom".into(),
            kind: ExperimentKind::Sweep,
            note: String::new(),
            seed: 1,
            scenario: ScenarioSpec::default(),
            device: DeviceSpec::default(),
            training: TrainingSpec::default(),
            selection: SelectionSpec::default(),
            sweep: SweepSpec::default(),
            montecarlo: MonteCarloSpec::default(),
            insitu: InsituSpec::default(),
            correlation: CorrelationSpec::default(),
            calibration: CalibrationSpec::default(),
            ablation: AblationSpec::default(),
            run: RunSpec::default(),
            tune: TuneSpec::default(),
        }
    }
}

// ------------------------------------------------------------- reading

impl ExperimentSpec {
    /// Parses a spec document, auto-detecting JSON (`{`-led) vs the
    /// TOML subset, completing missing keys from [`Default`], rejecting
    /// unknown keys, and validating ranges.
    pub fn parse_str(text: &str) -> Result<Self, SpecError> {
        let root = if text.trim_start().starts_with('{') {
            parse_json(text).map_err(err)?
        } else {
            parse_toml(text).map_err(err)?
        };
        Self::from_value(&root)
    }

    /// Builds a spec from a parsed [`Value`] tree (the `spec` object of
    /// a results document, for instance).
    pub fn from_value(root: &Value) -> Result<Self, SpecError> {
        let defaults = ExperimentSpec::default();
        let mut r = Reader::new("", root)?;

        let name = r.string_or("name", &defaults.name)?;
        let kind_key = r.string_or("kind", defaults.kind.key())?;
        let kind = ExperimentKind::parse(&kind_key)
            .ok_or_else(|| err(format!("unknown kind `{kind_key}`")))?;
        let note = r.string_or("note", &defaults.note)?;
        let seed = r.u64_or("seed", defaults.seed)?;

        let scenario = match r.take("scenario") {
            None => defaults.scenario.clone(),
            Some(v) => {
                let d = &defaults.scenario;
                let mut s = Reader::new("scenario", v)?;
                let model_key = s.string_or("model", d.model.key())?;
                let model = ScenarioKind::parse(&model_key)
                    .ok_or_else(|| err(format!("unknown scenario model `{model_key}`")))?;
                let out = ScenarioSpec {
                    model,
                    width: s.f32_or("width", d.width)?,
                    classes: s.usize_or("classes", d.classes)?,
                };
                s.finish()?;
                out
            }
        };

        let device = match r.take("device") {
            None => defaults.device.clone(),
            Some(v) => {
                let d = &defaults.device;
                let mut s = Reader::new("device", v)?;
                let tech_key = s.string_or("tech", d.tech.key())?;
                let tech = DeviceTech::parse(&tech_key)
                    .ok_or_else(|| err(format!("unknown device tech `{tech_key}`")))?;
                // `model` accepts a single name or a grid of names.
                let models = match s.take("model") {
                    None => d.models.clone(),
                    Some(Value::Str(m)) => vec![m.clone()],
                    Some(Value::Array(items)) => {
                        let mut out = Vec::new();
                        for (i, item) in items.iter().enumerate() {
                            match item {
                                Value::Str(m) => out.push(m.clone()),
                                _ => {
                                    return Err(err(format!(
                                        "`device.model[{i}]` must be a string"
                                    )))
                                }
                            }
                        }
                        out
                    }
                    Some(_) => {
                        return Err(err("`device.model` must be a string or array of strings"))
                    }
                };
                let default_sigmas = [DeviceConfig::for_tech(tech).sigma];
                let out = DeviceSpec {
                    tech,
                    models,
                    sigmas: s.f64_list_or("sigmas", &default_sigmas)?,
                    verify_margin: s.f64_opt("verify_margin")?,
                    pulse_step: s.f64_opt("pulse_step")?,
                    max_verify_iters: s.u32_opt("max_verify_iters")?,
                    device_bits: s.u32_opt("device_bits")?,
                };
                s.finish()?;
                out
            }
        };

        let training = match r.take("training") {
            None => defaults.training.clone(),
            Some(v) => {
                let d = &defaults.training;
                let mut s = Reader::new("training", v)?;
                let out = TrainingSpec {
                    samples: s.usize_or("samples", d.samples)?,
                    epochs: s.usize_or("epochs", d.epochs)?,
                    lr: s.f32_or("lr", d.lr)?,
                    batch: s.usize_or("batch", d.batch)?,
                };
                s.finish()?;
                out
            }
        };

        let selection = match r.take("selection") {
            None => defaults.selection.clone(),
            Some(v) => {
                let d = &defaults.selection;
                let mut s = Reader::new("selection", v)?;
                let out = SelectionSpec {
                    methods: s.string_list_or("methods", &d.methods)?,
                    insitu: s.bool_or("insitu", d.insitu)?,
                };
                s.finish()?;
                out
            }
        };

        let sweep = match r.take("sweep") {
            None => defaults.sweep.clone(),
            Some(v) => {
                let d = &defaults.sweep;
                let mut s = Reader::new("sweep", v)?;
                let out = SweepSpec { fractions: s.f64_list_or("fractions", &d.fractions)? };
                s.finish()?;
                out
            }
        };

        let montecarlo = match r.take("montecarlo") {
            None => defaults.montecarlo.clone(),
            Some(v) => {
                let d = &defaults.montecarlo;
                let mut s = Reader::new("montecarlo", v)?;
                let on_panic_key = s.string_or("on_panic", d.on_panic.key())?;
                let on_panic = PanicPolicy::parse(&on_panic_key).ok_or_else(|| {
                    err(format!(
                        "`montecarlo.on_panic` must be \"fail-fast\" or \"isolate\" \
                         (got `{on_panic_key}`)"
                    ))
                })?;
                let out = MonteCarloSpec {
                    runs: s.usize_or("runs", d.runs)?,
                    threads: s.usize_or("threads", d.threads)?,
                    eval_batch: s.usize_or("eval_batch", d.eval_batch)?,
                    on_panic,
                };
                s.finish()?;
                out
            }
        };

        let run = match r.take("run") {
            None => defaults.run,
            Some(v) => {
                let mut s = Reader::new("run", v)?;
                let shard = match s.take("shard") {
                    None => None,
                    Some(Value::Str(text)) => Some(parse_shard(text)?),
                    Some(_) => {
                        return Err(err("`run.shard` must be a string like \"0/4\""));
                    }
                };
                let simd = match s.take("simd") {
                    None => None,
                    Some(Value::Str(text)) => Some(text.clone()),
                    Some(_) => {
                        return Err(err("`run.simd` must be a string like \"scalar\""));
                    }
                };
                s.finish()?;
                RunSpec { shard, simd }
            }
        };

        let tune = match r.take("tune") {
            None => defaults.tune.clone(),
            Some(v) => {
                let mut s = Reader::new("tune", v)?;
                let mode = match s.take("mode") {
                    None => None,
                    Some(Value::Str(text)) => Some(text.clone()),
                    Some(_) => {
                        return Err(err("`tune.mode` must be a string (\"off\" or \"on\")"));
                    }
                };
                let out = TuneSpec {
                    mode,
                    gemm_block: s.usize_opt("gemm_block")?,
                    gemm_min_flops: s.usize_opt("gemm_min_flops")?,
                    im2col_cap: s.usize_opt("im2col_cap")?,
                };
                s.finish()?;
                out
            }
        };

        let insitu = match r.take("insitu") {
            None => defaults.insitu.clone(),
            Some(v) => {
                let d = &defaults.insitu;
                let mut s = Reader::new("insitu", v)?;
                let out =
                    InsituSpec { lr: s.f32_or("lr", d.lr)?, batch: s.usize_or("batch", d.batch)? };
                s.finish()?;
                out
            }
        };

        let correlation = match r.take("correlation") {
            None => defaults.correlation.clone(),
            Some(v) => {
                let d = &defaults.correlation;
                let mut s = Reader::new("correlation", v)?;
                let out = CorrelationSpec {
                    probes: s.usize_or("probes", d.probes)?,
                    runs: s.usize_or("runs", d.runs)?,
                };
                s.finish()?;
                out
            }
        };

        let calibration = match r.take("calibration") {
            None => defaults.calibration.clone(),
            Some(v) => {
                let d = &defaults.calibration;
                let mut s = Reader::new("calibration", v)?;
                let out = CalibrationSpec { devices: s.usize_or("devices", d.devices)? };
                s.finish()?;
                out
            }
        };

        let ablation = match r.take("ablation") {
            None => defaults.ablation.clone(),
            Some(v) => {
                let d = &defaults.ablation;
                let mut s = Reader::new("ablation", v)?;
                let out = AblationSpec {
                    granularities: s.f64_list_or("granularities", &d.granularities)?,
                    max_drop: s.f64_or("max_drop", d.max_drop)?,
                    tiebreak_fractions: s
                        .f64_list_or("tiebreak_fractions", &d.tiebreak_fractions)?,
                    calibration_fractions: s
                        .f64_list_or("calibration_fractions", &d.calibration_fractions)?,
                };
                s.finish()?;
                out
            }
        };

        r.finish()?;

        let spec = ExperimentSpec {
            name,
            kind,
            note,
            seed,
            scenario,
            device,
            training,
            selection,
            sweep,
            montecarlo,
            insitu,
            correlation,
            calibration,
            ablation,
            run,
            tune,
        };
        spec.validate()?;
        Ok(spec)
    }

    /// Checks every field's documented range; returns the first
    /// violation.
    pub fn validate(&self) -> Result<(), SpecError> {
        if self.name.is_empty() {
            return Err(err("`name` must not be empty"));
        }
        if !(0.0..=16.0).contains(&self.scenario.width) || self.scenario.width <= 0.0 {
            return Err(err("`scenario.width` must be in (0, 16]"));
        }
        if self.scenario.classes == 0 {
            return Err(err("`scenario.classes` must be positive"));
        }
        if self.device.sigmas.is_empty() {
            return Err(err("`device.sigmas` must not be empty"));
        }
        if self.device.models.is_empty() {
            return Err(err("`device.model` must not be empty"));
        }
        for name in &self.device.models {
            if device_model_by_name(name).is_none() {
                return Err(err(format!(
                    "`device.model`: unknown device model `{name}` (valid: {})",
                    device_model_keys().join(", ")
                )));
            }
        }
        // Only the grid kinds fan out over a device-model grid; the
        // single-run artifacts must not echo models they did not run.
        if !matches!(self.kind, ExperimentKind::Sweep | ExperimentKind::Table1)
            && self.device.models.len() != 1
        {
            return Err(err(format!(
                "kind `{}` runs a single device model; `device.model` has {} entries \
                 (use kind = \"sweep\" or \"table1\" for a model grid)",
                self.kind.key(),
                self.device.models.len()
            )));
        }
        // The calibration kind measures the reference write-verify loop
        // directly; its spec echo must not claim another device model.
        if self.kind == ExperimentKind::Calibration
            && self.device.models != [DEFAULT_DEVICE_MODEL.to_string()]
        {
            return Err(err(format!(
                "kind `calibration` measures the reference model; `device.model` must be \
                 `{DEFAULT_DEVICE_MODEL}`"
            )));
        }
        // These artifacts run exactly one variation level; a silently
        // ignored grid would make the results document's spec echo lie
        // about what ran.
        if matches!(
            self.kind,
            ExperimentKind::Fig2 | ExperimentKind::Fig1 | ExperimentKind::Ablation
        ) && self.device.sigmas.len() != 1
        {
            return Err(err(format!(
                "kind `{}` runs a single variation level; `device.sigmas` has {} entries \
                 (use kind = \"sweep\" or \"table1\" for a sigma grid)",
                self.kind.key(),
                self.device.sigmas.len()
            )));
        }
        for &s in &self.device.sigmas {
            if !s.is_finite() || s < 0.0 {
                return Err(err(format!("`device.sigmas` entry {s} must be non-negative")));
            }
        }
        // Field overrides go through DeviceConfig::validate.
        for cfg in self.configs_dry_run() {
            cfg.validate();
        }
        if self.training.samples < 10 {
            return Err(err("`training.samples` must be at least 10"));
        }
        if self.training.epochs == 0 || self.training.batch == 0 {
            return Err(err("`training.epochs` and `training.batch` must be positive"));
        }
        if !(self.training.lr > 0.0 && self.training.lr.is_finite()) {
            return Err(err("`training.lr` must be positive"));
        }
        if self.selection.methods.is_empty() {
            return Err(err("`selection.methods` must not be empty"));
        }
        for name in &self.selection.methods {
            if selector_by_name(name).is_none() {
                return Err(err(format!(
                    "`selection.methods`: unknown selector `{name}` (see `swim list`)"
                )));
            }
        }
        if self.sweep.fractions.is_empty() {
            return Err(err("`sweep.fractions` must not be empty"));
        }
        for &f in &self.sweep.fractions {
            if !(0.0..=1.0).contains(&f) {
                return Err(err(format!("`sweep.fractions` entry {f} must be in [0, 1]")));
            }
        }
        if self.montecarlo.runs == 0 {
            return Err(err("`montecarlo.runs` must be positive"));
        }
        if self.montecarlo.eval_batch == 0 {
            return Err(err("`montecarlo.eval_batch` must be positive"));
        }
        if !(self.insitu.lr > 0.0 && self.insitu.lr.is_finite()) || self.insitu.batch == 0 {
            return Err(err("`insitu.lr` and `insitu.batch` must be positive"));
        }
        if self.correlation.probes == 0 || self.correlation.runs == 0 {
            return Err(err("`correlation.probes` and `correlation.runs` must be positive"));
        }
        if self.calibration.devices == 0 {
            return Err(err("`calibration.devices` must be positive"));
        }
        if let Some((index, count)) = self.run.shard {
            // parse_shard guarantees index < count for parsed specs;
            // re-check for programmatic construction.
            if count == 0 || index >= count {
                return Err(err(format!(
                    "`run.shard` index {index} out of range for {count} shards"
                )));
            }
            if !matches!(
                self.kind,
                ExperimentKind::Sweep | ExperimentKind::Table1 | ExperimentKind::Fig2
            ) {
                return Err(err(format!(
                    "`run.shard` applies only to the Monte Carlo sweep kinds \
                     (sweep, table1, fig2), not `{}`",
                    self.kind.key()
                )));
            }
            if count > self.montecarlo.runs {
                return Err(err(format!(
                    "`run.shard`: {count} shards over {} Monte Carlo runs would leave \
                     empty shards",
                    self.montecarlo.runs
                )));
            }
        }
        if let Some(simd) = &self.run.simd {
            if swim_tensor::simd::Backend::parse(simd).is_none() {
                return Err(err(format!(
                    "`run.simd` must be one of scalar, avx2, avx512, neon (got `{simd}`)"
                )));
            }
        }
        if let Some(mode) = &self.tune.mode {
            if swim_tensor::tune::TuneMode::parse(mode).is_none() {
                return Err(err(format!("`tune.mode` must be \"off\" or \"on\" (got `{mode}`)")));
            }
        }
        for &p in &self.ablation.granularities {
            if !(p > 0.0 && p <= 1.0) {
                return Err(err(format!("`ablation.granularities` entry {p} must be in (0, 1]")));
            }
        }
        if self.ablation.max_drop < 0.0 {
            return Err(err("`ablation.max_drop` must be non-negative"));
        }
        for &f in
            self.ablation.tiebreak_fractions.iter().chain(&self.ablation.calibration_fractions)
        {
            if !(0.0..=1.0).contains(&f) {
                return Err(err(format!("ablation fraction {f} must be in [0, 1]")));
            }
        }
        Ok(())
    }

    /// Device configs without panicking on preset validation (used
    /// inside [`ExperimentSpec::validate`] before ranges are known good).
    fn configs_dry_run(&self) -> Vec<DeviceConfig> {
        self.device.configs()
    }

    // ------------------------------------------------------- views

    /// Worker-thread count with `0` resolved to all cores.
    pub fn threads(&self) -> usize {
        if self.montecarlo.threads == 0 {
            swim_core::montecarlo::num_threads()
        } else {
            self.montecarlo.threads
        }
    }

    /// The contiguous global Monte Carlo run range this spec covers:
    /// `[i·runs/n, (i+1)·runs/n)` for shard `i` of `n`, the full
    /// `[0, runs)` when unsharded. The ranges of a complete shard
    /// partition tile `[0, runs)` exactly.
    pub fn shard_run_range(&self) -> (usize, usize) {
        let runs = self.montecarlo.runs;
        match self.run.shard {
            None => (0, runs),
            Some((i, n)) => (i * runs / n, (i + 1) * runs / n),
        }
    }

    /// The [`SweepConfig`] view of this spec. For a sharded spec the
    /// config covers only the shard's run range, with `run_offset`
    /// preserving the global PRNG streams.
    pub fn sweep_config(&self) -> SweepConfig {
        let (start, end) = self.shard_run_range();
        SweepConfig {
            fractions: self.sweep.fractions.clone(),
            runs: end - start,
            threads: self.threads(),
            eval_batch: self.montecarlo.eval_batch,
            seed: self.seed,
            run_offset: start,
            on_panic: self.montecarlo.on_panic,
        }
    }

    /// The [`InsituConfig`] view of this spec (checkpoints on the sweep
    /// grid).
    pub fn insitu_config(&self) -> InsituConfig {
        InsituConfig {
            lr: self.insitu.lr,
            batch_size: self.insitu.batch,
            eval_batch: self.montecarlo.eval_batch,
            record_at: self.sweep.fractions.clone(),
        }
    }

    /// The [`Alg1Config`] view of this spec at one programming
    /// granularity.
    pub fn alg1_config_at(&self, granularity: f64) -> Alg1Config {
        Alg1Config {
            granularity,
            max_drop: self.ablation.max_drop,
            batch: self.montecarlo.eval_batch,
        }
    }

    // ----------------------------------------------------- writing

    /// Renders the complete spec (every field explicit) as a [`Value`]
    /// tree.
    ///
    /// `f32` fields are written with their shortest `f32` decimal form
    /// (not the widened `f64` bits), so `lr = 0.05` stays `0.05` in the
    /// written document.
    pub fn to_value(&self) -> Value {
        let mut root = Value::table();
        root.set("name", Value::Str(self.name.clone()));
        root.set("kind", Value::Str(self.kind.key().into()));
        if !self.note.is_empty() {
            root.set("note", Value::Str(self.note.clone()));
        }
        root.set("seed", Value::Int(self.seed as i64));

        let mut scenario = Value::table();
        scenario.set("model", Value::Str(self.scenario.model.key().into()));
        scenario.set("width", f32_value(self.scenario.width));
        scenario.set("classes", Value::Int(self.scenario.classes as i64));
        root.set("scenario", scenario);

        let mut device = Value::table();
        device.set("tech", Value::Str(self.device.tech.key().into()));
        device.set(
            "model",
            Value::Array(self.device.models.iter().map(|m| Value::Str(m.clone())).collect()),
        );
        device.set(
            "sigmas",
            Value::Array(self.device.sigmas.iter().map(|&s| Value::Float(s)).collect()),
        );
        if let Some(m) = self.device.verify_margin {
            device.set("verify_margin", Value::Float(m));
        }
        if let Some(p) = self.device.pulse_step {
            device.set("pulse_step", Value::Float(p));
        }
        if let Some(i) = self.device.max_verify_iters {
            device.set("max_verify_iters", Value::Int(i as i64));
        }
        if let Some(b) = self.device.device_bits {
            device.set("device_bits", Value::Int(b as i64));
        }
        root.set("device", device);

        let mut training = Value::table();
        training.set("samples", Value::Int(self.training.samples as i64));
        training.set("epochs", Value::Int(self.training.epochs as i64));
        training.set("lr", f32_value(self.training.lr));
        training.set("batch", Value::Int(self.training.batch as i64));
        root.set("training", training);

        let mut selection = Value::table();
        selection.set(
            "methods",
            Value::Array(self.selection.methods.iter().map(|m| Value::Str(m.clone())).collect()),
        );
        selection.set("insitu", Value::Bool(self.selection.insitu));
        root.set("selection", selection);

        let mut sweep = Value::table();
        sweep.set(
            "fractions",
            Value::Array(self.sweep.fractions.iter().map(|&f| Value::Float(f)).collect()),
        );
        root.set("sweep", sweep);

        let mut montecarlo = Value::table();
        montecarlo.set("runs", Value::Int(self.montecarlo.runs as i64));
        montecarlo.set("threads", Value::Int(self.montecarlo.threads as i64));
        montecarlo.set("eval_batch", Value::Int(self.montecarlo.eval_batch as i64));
        montecarlo.set("on_panic", Value::Str(self.montecarlo.on_panic.key().into()));
        root.set("montecarlo", montecarlo);

        // `[run]` describes how this execution is partitioned, not what
        // the experiment is; it is only written when one of its keys is
        // set, so default spec echoes stay byte-identical across merges.
        if self.run.shard.is_some() || self.run.simd.is_some() {
            let mut run = Value::table();
            if let Some((i, n)) = self.run.shard {
                run.set("shard", Value::Str(format!("{i}/{n}")));
            }
            if let Some(simd) = &self.run.simd {
                run.set("simd", Value::Str(simd.clone()));
            }
            root.set("run", run);
        }

        // `[tune]` is likewise only written when a key is set, so
        // default spec echoes (and their fingerprints) stay
        // byte-identical to pre-tuning documents.
        if !self.tune.is_default() {
            let mut tune = Value::table();
            if let Some(mode) = &self.tune.mode {
                tune.set("mode", Value::Str(mode.clone()));
            }
            if let Some(b) = self.tune.gemm_block {
                tune.set("gemm_block", Value::Int(b as i64));
            }
            if let Some(f) = self.tune.gemm_min_flops {
                tune.set("gemm_min_flops", Value::Int(f as i64));
            }
            if let Some(c) = self.tune.im2col_cap {
                tune.set("im2col_cap", Value::Int(c as i64));
            }
            root.set("tune", tune);
        }

        let mut insitu = Value::table();
        insitu.set("lr", f32_value(self.insitu.lr));
        insitu.set("batch", Value::Int(self.insitu.batch as i64));
        root.set("insitu", insitu);

        let mut correlation = Value::table();
        correlation.set("probes", Value::Int(self.correlation.probes as i64));
        correlation.set("runs", Value::Int(self.correlation.runs as i64));
        root.set("correlation", correlation);

        let mut calibration = Value::table();
        calibration.set("devices", Value::Int(self.calibration.devices as i64));
        root.set("calibration", calibration);

        let mut ablation = Value::table();
        ablation.set(
            "granularities",
            Value::Array(self.ablation.granularities.iter().map(|&p| Value::Float(p)).collect()),
        );
        ablation.set("max_drop", Value::Float(self.ablation.max_drop));
        ablation.set(
            "tiebreak_fractions",
            Value::Array(
                self.ablation.tiebreak_fractions.iter().map(|&f| Value::Float(f)).collect(),
            ),
        );
        ablation.set(
            "calibration_fractions",
            Value::Array(
                self.ablation.calibration_fractions.iter().map(|&f| Value::Float(f)).collect(),
            ),
        );
        root.set("ablation", ablation);
        root
    }

    /// Renders the spec as a TOML document.
    pub fn to_toml(&self) -> String {
        self.to_value().to_toml()
    }

    /// Renders the spec as a JSON document.
    pub fn to_json(&self) -> String {
        self.to_value().to_json()
    }

    // ------------------------------------------------- fingerprint

    /// The canonical *preparation prefix* of this spec for one
    /// `(device model, sigma)` block: exactly the inputs that determine
    /// the trained, quantized, device-bound model — scenario, training
    /// budget, seed, the resolved device configuration at `sigma`, and
    /// the device-model name. Everything downstream (selection methods,
    /// sweep grid, Monte Carlo budget, sharding) is deliberately
    /// excluded: two specs that differ only there share preparation
    /// work, which is what the service's prepared-model cache exploits.
    ///
    /// The prefix is a [`Value`] tree with a fixed key order, so its
    /// JSON form is canonical: equal preparation inputs ⇒ byte-equal
    /// JSON ⇒ equal [`ExperimentSpec::prep_fingerprint`].
    pub fn prep_prefix(&self, device_model: &str, sigma: f64) -> Value {
        let mut root = Value::table();
        root.set("seed", Value::Int(self.seed as i64));
        // Training runs through the GEMM kernels, whose accumulation
        // order differs per SIMD backend — a prepared model is only
        // reusable under the backend that built it.
        root.set("simd", Value::Str(swim_tensor::simd::backend().name().into()));
        // Tuning is timing-only — a tuned preparation is byte-identical
        // to a default one — but a non-default `[tune]` section is still
        // folded in so a cache hit's provenance states the policy the
        // model was actually prepared under. Default specs write
        // nothing, keeping pre-tuning fingerprints stable.
        if let Some(mode) = &self.tune.mode {
            root.set("tune_mode", Value::Str(mode.clone()));
        }

        let mut scenario = Value::table();
        scenario.set("model", Value::Str(self.scenario.model.key().into()));
        scenario.set("width", f32_value(self.scenario.width));
        scenario.set("classes", Value::Int(self.scenario.classes as i64));
        root.set("scenario", scenario);

        let mut training = Value::table();
        training.set("samples", Value::Int(self.training.samples as i64));
        training.set("epochs", Value::Int(self.training.epochs as i64));
        training.set("lr", f32_value(self.training.lr));
        training.set("batch", Value::Int(self.training.batch as i64));
        root.set("training", training);

        // Serialize the *resolved* DeviceConfig (via the round-tripping
        // DeviceSpec::from_config), not the raw spec fields: two specs
        // whose overrides resolve to the same device land on the same
        // prefix, and preset-equivalent overrides collapse to the preset.
        let resolved = DeviceSpec::from_config(&self.device.config_at(sigma));
        let mut device = Value::table();
        device.set("model", Value::Str(device_model.into()));
        device.set("tech", Value::Str(resolved.tech.key().into()));
        device.set("sigma", Value::Float(sigma));
        if let Some(m) = resolved.verify_margin {
            device.set("verify_margin", Value::Float(m));
        }
        if let Some(p) = resolved.pulse_step {
            device.set("pulse_step", Value::Float(p));
        }
        if let Some(i) = resolved.max_verify_iters {
            device.set("max_verify_iters", Value::Int(i as i64));
        }
        if let Some(b) = resolved.device_bits {
            device.set("device_bits", Value::Int(b as i64));
        }
        root.set("device", device);
        root
    }

    /// FNV-1a hash of the canonical JSON of
    /// [`ExperimentSpec::prep_prefix`], as a fixed-width hex string —
    /// the prepared-model cache key, also echoed in job provenance so a
    /// cache hit is attributable.
    pub fn prep_fingerprint(&self, device_model: &str, sigma: f64) -> String {
        let json = self.prep_prefix(device_model, sigma).to_json();
        format!("{:016x}", fnv1a_64(json.as_bytes()))
    }

    /// Applies a `--set key=value` override on top of this spec.
    ///
    /// Bare keys resolve through a shorthand table (`runs` →
    /// `montecarlo.runs`); dotted keys address the spec tree directly.
    /// The value grammar is the loose CLI form of
    /// [`crate::value::parse_loose`].
    pub fn apply_set(&mut self, assignment: &str) -> Result<(), SpecError> {
        let (key, raw) = assignment
            .split_once('=')
            .ok_or_else(|| err(format!("`--set {assignment}`: expected key=value")))?;
        let path = resolve_set_path(self.kind, key.trim());
        let mut value = parse_loose(raw);
        // Grid shorthands accept a scalar for a one-point grid.
        if matches!(
            path.as_str(),
            "device.sigmas"
                | "device.model"
                | "sweep.fractions"
                | "selection.methods"
                | "ablation.granularities"
        ) && !matches!(value, Value::Array(_))
        {
            value = Value::Array(vec![value]);
        }
        let mut root = self.to_value();
        root.set_path(&path, value).map_err(err)?;
        *self = Self::from_value(&root)?;
        Ok(())
    }
}

/// Writes an `f32` with its shortest decimal representation so the
/// document shows `0.05`, not the widened `f64` bits.
fn f32_value(v: f32) -> Value {
    Value::Float(v.to_string().parse().expect("f32 display is a valid f64"))
}

/// 64-bit FNV-1a — tiny, dependency-free, and stable across platforms;
/// collision resistance at cache-key scale is ample.
fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Maps a bare `--set` / CLI flag name onto its spec path. Dotted names
/// pass through unchanged.
pub fn resolve_set_path(kind: ExperimentKind, key: &str) -> String {
    let bare = match key {
        // Fig. 1 spends its `runs` budget inside the correlation study.
        "runs" if kind == ExperimentKind::Fig1 => "correlation.runs",
        "runs" => "montecarlo.runs",
        "threads" => "montecarlo.threads",
        "eval-batch" | "eval_batch" => "montecarlo.eval_batch",
        "samples" if kind == ExperimentKind::Calibration => "calibration.devices",
        "samples" => "training.samples",
        "epochs" => "training.epochs",
        "lr" => "training.lr",
        "batch" => "training.batch",
        "sigma" | "sigmas" => "device.sigmas",
        "tech" => "device.tech",
        // `model` alone stays the scenario model (the historical flag);
        // the device-model grid gets its own shorthand.
        "device-model" | "device_model" => "device.model",
        "width" => "scenario.width",
        "classes" => "scenario.classes",
        "model" => "scenario.model",
        "fractions" => "sweep.fractions",
        "methods" => "selection.methods",
        "insitu" => "selection.insitu",
        "probes" => "correlation.probes",
        "seed" => "seed",
        "name" => "name",
        "note" => "note",
        "shard" => "run.shard",
        "simd" => "run.simd",
        "tune" => "tune.mode",
        "on-panic" | "on_panic" => "montecarlo.on_panic",
        other => other,
    };
    bare.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        ExperimentSpec::default().validate().unwrap();
    }

    #[test]
    fn partial_spec_completes_from_defaults() {
        let spec = ExperimentSpec::parse_str("[device]\nsigmas = [0.2]\n").unwrap();
        assert_eq!(spec.device.sigmas, vec![0.2]);
        assert_eq!(spec.training.samples, 2500);
        assert_eq!(spec.selection.methods.len(), 3);
    }

    #[test]
    fn unknown_keys_rejected_with_path() {
        let e = ExperimentSpec::parse_str("bogus = 1\n").unwrap_err();
        assert!(e.0.contains("unknown key `bogus`"), "{e}");
        let e = ExperimentSpec::parse_str("[training]\nsample = 10\n").unwrap_err();
        assert!(e.0.contains("unknown key `training.sample`"), "{e}");
        let e = ExperimentSpec::parse_str("[device]\ntech = \"dram\"\n").unwrap_err();
        assert!(e.0.contains("unknown device tech"), "{e}");
        let e = ExperimentSpec::parse_str("[selection]\nmethods = [\"swimm\"]\n").unwrap_err();
        assert!(e.0.contains("unknown selector"), "{e}");
    }

    #[test]
    fn parse_write_parse_round_trip() {
        let text = "name = \"rt\"\nkind = \"table1\"\nseed = 9\n\
                    [scenario]\nmodel = \"convnet-cifar\"\nwidth = 0.25\n\
                    [device]\ntech = \"pcm\"\nsigmas = [0.1, 0.2]\nverify_margin = 0.05\n\
                    [montecarlo]\nruns = 7\n";
        let spec = ExperimentSpec::parse_str(text).unwrap();
        let written = spec.to_toml();
        let again = ExperimentSpec::parse_str(&written).unwrap();
        assert_eq!(spec, again);
        // And through JSON.
        let json = spec.to_json();
        let via_json = ExperimentSpec::parse_str(&json).unwrap();
        assert_eq!(spec, via_json);
    }

    #[test]
    fn device_config_round_trip() {
        for tech in DeviceTech::all() {
            for sigma in [0.1, 0.15, 0.2] {
                let cfg = DeviceConfig::for_tech(tech).with_sigma(sigma);
                let spec = DeviceSpec::from_config(&cfg);
                assert_eq!(spec.config_at(sigma), cfg);
            }
        }
        // A custom config survives via explicit overrides.
        let mut custom = DeviceConfig::rram();
        custom.pulse_step = 0.04;
        custom.device_bits = 5;
        let spec = DeviceSpec::from_config(&custom);
        assert_eq!(spec.config_at(custom.sigma), custom);
    }

    #[test]
    fn views_inherit_budget_and_seed() {
        let spec = ExperimentSpec::parse_str(
            "seed = 11\n[sweep]\nfractions = [0.0, 0.5]\n[montecarlo]\nruns = 4\nthreads = 2\n",
        )
        .unwrap();
        let sweep = spec.sweep_config();
        assert_eq!(sweep.runs, 4);
        assert_eq!(sweep.threads, 2);
        assert_eq!(sweep.seed, 11);
        assert_eq!(sweep.fractions, vec![0.0, 0.5]);
        let insitu = spec.insitu_config();
        assert_eq!(insitu.record_at, vec![0.0, 0.5]);
        let alg1 = spec.alg1_config_at(0.05);
        assert_eq!(alg1.granularity, 0.05);
        assert_eq!(alg1.batch, 256);
    }

    #[test]
    fn apply_set_shorthands_and_paths() {
        let mut spec = ExperimentSpec::default();
        spec.apply_set("runs=40").unwrap();
        assert_eq!(spec.montecarlo.runs, 40);
        spec.apply_set("sigma=0.15").unwrap();
        assert_eq!(spec.device.sigmas, vec![0.15]);
        spec.apply_set("sigmas=0.1,0.2").unwrap();
        assert_eq!(spec.device.sigmas, vec![0.1, 0.2]);
        spec.apply_set("training.lr=0.02").unwrap();
        assert!((spec.training.lr - 0.02).abs() < 1e-6);
        spec.apply_set("methods=swim,layer-balanced").unwrap();
        assert_eq!(spec.selection.methods, vec!["swim", "layer-balanced"]);
        assert!(spec.apply_set("runs").is_err());
        assert!(spec.apply_set("bogus.key=1").is_err());
        assert!(spec.apply_set("runs=0").is_err(), "validation still applies");
    }

    #[test]
    fn device_model_accepts_string_or_grid() {
        let spec = ExperimentSpec::parse_str("[device]\nmodel = \"mram-stochastic\"\n").unwrap();
        assert_eq!(spec.device.models, vec!["mram-stochastic"]);
        let spec = ExperimentSpec::parse_str(
            "[device]\nmodel = [\"rram-gaussian\", \"sram-vt\"]\nsigmas = [0.1, 0.2]\n",
        )
        .unwrap();
        assert_eq!(spec.device.models, vec!["rram-gaussian", "sram-vt"]);
        // Defaulted specs carry the reference model.
        assert_eq!(ExperimentSpec::default().device.models, vec![DEFAULT_DEVICE_MODEL]);
        // Round trip: written spec re-parses to the same models.
        let again = ExperimentSpec::parse_str(&spec.to_toml()).unwrap();
        assert_eq!(again, spec);
    }

    #[test]
    fn unknown_device_model_error_names_path_and_valid_models() {
        let e = ExperimentSpec::parse_str("[device]\nmodel = \"flux-capacitor\"\n").unwrap_err();
        assert!(e.0.contains("`device.model`"), "{e}");
        assert!(e.0.contains("flux-capacitor"), "{e}");
        for key in device_model_keys() {
            assert!(e.0.contains(&key), "error must list `{key}`: {e}");
        }
        let e = ExperimentSpec::parse_str("[device]\nmodel = [1]\n").unwrap_err();
        assert!(e.0.contains("device.model[0]"), "{e}");
    }

    #[test]
    fn single_run_kinds_reject_model_grids() {
        for kind in ["fig2", "fig1", "ablation", "calibration"] {
            let text = format!(
                "kind = \"{kind}\"\n[device]\nmodel = [\"rram-gaussian\", \"mram-stochastic\"]\n"
            );
            let e = ExperimentSpec::parse_str(&text).unwrap_err();
            assert!(e.0.contains("single device model"), "{kind}: {e}");
        }
        // Grid kinds accept it.
        let spec = ExperimentSpec::parse_str(
            "kind = \"table1\"\n[device]\nmodel = [\"rram-gaussian\", \"mram-stochastic\"]\n",
        )
        .unwrap();
        assert_eq!(spec.device.models.len(), 2);
        // Calibration pins the reference model even as a single entry.
        let e =
            ExperimentSpec::parse_str("kind = \"calibration\"\n[device]\nmodel = \"sram-vt\"\n")
                .unwrap_err();
        assert!(e.0.contains("reference model"), "{e}");
    }

    #[test]
    fn device_model_shorthand_applies() {
        let mut spec = ExperimentSpec::default();
        spec.apply_set("device-model=sram-vt").unwrap();
        assert_eq!(spec.device.models, vec!["sram-vt"]);
        spec.apply_set("device_model=rram-gaussian,mram-stochastic").unwrap();
        assert_eq!(spec.device.models, vec!["rram-gaussian", "mram-stochastic"]);
        // Bare `model` still addresses the scenario (historical flag).
        spec.apply_set("model=convnet-cifar").unwrap();
        assert_eq!(spec.scenario.model, ScenarioKind::ConvnetCifar);
        // Unknown models are caught on re-validation.
        assert!(spec.apply_set("device-model=bogus").is_err());
    }

    #[test]
    fn fig1_runs_shorthand_targets_correlation() {
        let mut spec = ExperimentSpec { kind: ExperimentKind::Fig1, ..Default::default() };
        spec.apply_set("runs=12").unwrap();
        assert_eq!(spec.correlation.runs, 12);
        assert_eq!(spec.montecarlo.runs, ExperimentSpec::default().montecarlo.runs);
    }

    #[test]
    fn validation_catches_ranges() {
        let mut spec = ExperimentSpec::default();
        spec.sweep.fractions = vec![1.5];
        assert!(spec.validate().is_err());
        let mut spec = ExperimentSpec::default();
        spec.selection.methods.clear();
        assert!(spec.validate().is_err());
        let mut spec = ExperimentSpec::default();
        spec.device.sigmas.clear();
        assert!(spec.validate().is_err());
    }

    #[test]
    fn shard_parses_validates_and_round_trips() {
        let spec =
            ExperimentSpec::parse_str("[run]\nshard = \"1/3\"\n[montecarlo]\nruns = 10\n").unwrap();
        assert_eq!(spec.run.shard, Some((1, 3)));
        assert_eq!(spec.shard_run_range(), (3, 6));
        let again = ExperimentSpec::parse_str(&spec.to_toml()).unwrap();
        assert_eq!(again, spec);
        // Unsharded specs do not write a [run] section at all.
        assert!(!ExperimentSpec::default().to_toml().contains("[run]"));
        // Bad forms.
        for bad in ["3/3", "2", "a/b", "1/0", "-1/2"] {
            let text = format!("[run]\nshard = \"{bad}\"\n");
            assert!(ExperimentSpec::parse_str(&text).is_err(), "{bad}");
        }
        // Only the Monte Carlo sweep kinds shard.
        let e = ExperimentSpec::parse_str("kind = \"fig1\"\n[run]\nshard = \"0/2\"\n").unwrap_err();
        assert!(e.0.contains("run.shard"), "{e}");
        // More shards than runs would leave empty shards.
        let e = ExperimentSpec::parse_str("[run]\nshard = \"0/30\"\n[montecarlo]\nruns = 10\n")
            .unwrap_err();
        assert!(e.0.contains("empty shards"), "{e}");
    }

    #[test]
    fn simd_parses_validates_and_round_trips() {
        let spec = ExperimentSpec::parse_str("[run]\nsimd = \"scalar\"\n").unwrap();
        assert_eq!(spec.run.simd.as_deref(), Some("scalar"));
        let again = ExperimentSpec::parse_str(&spec.to_toml()).unwrap();
        assert_eq!(again, spec);
        // Every backend name is accepted by validation — pinning a
        // backend the host lacks fails at run time, not parse time, so
        // one spec file works across heterogeneous machines.
        for name in ["scalar", "avx2", "avx512", "neon"] {
            let text = format!("[run]\nsimd = \"{name}\"\n");
            assert!(ExperimentSpec::parse_str(&text).is_ok(), "{name}");
        }
        let e = ExperimentSpec::parse_str("[run]\nsimd = \"sse9\"\n").unwrap_err();
        assert!(e.0.contains("run.simd"), "{e}");
        let e = ExperimentSpec::parse_str("[run]\nsimd = 2\n").unwrap_err();
        assert!(e.0.contains("run.simd"), "{e}");
        // The shorthand resolves to the dotted path.
        let mut spec = ExperimentSpec::default();
        spec.apply_set("simd=avx2").unwrap();
        assert_eq!(spec.run.simd.as_deref(), Some("avx2"));
        assert!(spec.to_toml().contains("[run]"));
        // Unset means "whatever the process detects" and writes nothing.
        assert!(!ExperimentSpec::default().to_toml().contains("simd"));
    }

    #[test]
    fn tune_parses_validates_and_round_trips() {
        let spec = ExperimentSpec::parse_str("[tune]\nmode = \"on\"\ngemm_block = 256\n").unwrap();
        assert_eq!(spec.tune.mode.as_deref(), Some("on"));
        assert_eq!(spec.tune.gemm_block, Some(256));
        let again = ExperimentSpec::parse_str(&spec.to_toml()).unwrap();
        assert_eq!(again, spec);
        // Default specs do not echo a [tune] section at all — written
        // documents stay byte-identical to pre-tuning ones.
        assert!(!ExperimentSpec::default().to_toml().contains("[tune]"));
        // Bad values are rejected with the dotted path.
        let e = ExperimentSpec::parse_str("[tune]\nmode = \"fast\"\n").unwrap_err();
        assert!(e.0.contains("tune.mode"), "{e}");
        let e = ExperimentSpec::parse_str("[tune]\nmode = 2\n").unwrap_err();
        assert!(e.0.contains("tune.mode"), "{e}");
        let e = ExperimentSpec::parse_str("[tune]\ngemm_block = -3\n").unwrap_err();
        assert!(e.0.contains("tune.gemm_block"), "{e}");
        let e = ExperimentSpec::parse_str("[tune]\nblock = 1\n").unwrap_err();
        assert!(e.0.contains("unknown key `tune.block`"), "{e}");
        // The bare `tune` shorthand addresses the mode.
        let mut spec = ExperimentSpec::default();
        spec.apply_set("tune=on").unwrap();
        assert_eq!(spec.tune.mode.as_deref(), Some("on"));
        assert!(spec.apply_set("tune=sometimes").is_err());
    }

    #[test]
    fn tune_mode_moves_prep_fingerprint_only_when_set() {
        let base = ExperimentSpec::default();
        let fp = base.prep_fingerprint("rram-gaussian", 0.1);
        // Timing-only knobs without a mode stay on the base fingerprint
        // path only when the whole section is default; an explicit mode
        // separates the cache entry for provenance attribution.
        let mut tuned = base.clone();
        tuned.apply_set("tune=on").unwrap();
        assert_ne!(tuned.prep_fingerprint("rram-gaussian", 0.1), fp);
        let mut off = base.clone();
        off.apply_set("tune=off").unwrap();
        assert_ne!(off.prep_fingerprint("rram-gaussian", 0.1), fp, "explicit off is a pin");
    }

    #[test]
    fn shard_ranges_tile_the_run_budget() {
        for runs in [1usize, 7, 25, 100] {
            for n in 1..=runs.min(9) {
                let mut start = 0;
                for i in 0..n {
                    let spec = ExperimentSpec {
                        run: RunSpec { shard: Some((i, n)), ..Default::default() },
                        montecarlo: MonteCarloSpec { runs, ..Default::default() },
                        ..Default::default()
                    };
                    let (s, e) = spec.shard_run_range();
                    assert_eq!(s, start, "runs={runs} shard {i}/{n}");
                    assert!(e >= s);
                    start = e;
                }
                assert_eq!(start, runs, "shards must tile [0, {runs})");
            }
        }
    }

    #[test]
    fn shard_and_on_panic_shorthands_apply() {
        let mut spec = ExperimentSpec::default();
        spec.apply_set("shard=1/2").unwrap();
        assert_eq!(spec.run.shard, Some((1, 2)));
        spec.apply_set("on-panic=isolate").unwrap();
        assert_eq!(spec.montecarlo.on_panic, PanicPolicy::Isolate);
        assert!(spec.apply_set("on_panic=explode").is_err());
        // Both settings survive later overrides (write → re-read).
        spec.apply_set("runs=40").unwrap();
        assert_eq!(spec.run.shard, Some((1, 2)));
        assert_eq!(spec.montecarlo.on_panic, PanicPolicy::Isolate);
    }

    #[test]
    fn sharded_sweep_config_offsets_runs() {
        let spec = ExperimentSpec::parse_str(
            "seed = 5\n[run]\nshard = \"1/2\"\n[montecarlo]\nruns = 25\n",
        )
        .unwrap();
        let cfg = spec.sweep_config();
        assert_eq!((cfg.run_offset, cfg.runs), (12, 13));
        assert_eq!(cfg.on_panic, PanicPolicy::FailFast);
        // The unsharded view covers everything from offset zero.
        let cfg = ExperimentSpec::default().sweep_config();
        assert_eq!((cfg.run_offset, cfg.runs), (0, 25));
    }

    #[test]
    fn prep_fingerprint_ignores_the_sweep_suffix() {
        let base = ExperimentSpec::default();
        let fp = base.prep_fingerprint("rram-gaussian", 0.1);
        assert_eq!(fp.len(), 16, "fixed-width hex");

        // Changing only post-preparation fields keeps the fingerprint.
        let mut suffix = base.clone();
        suffix.apply_set("runs=7").unwrap();
        suffix.apply_set("fractions=0.0,0.5").unwrap();
        suffix.apply_set("methods=magnitude").unwrap();
        suffix.apply_set("name=renamed").unwrap();
        assert_eq!(suffix.prep_fingerprint("rram-gaussian", 0.1), fp);

        // Changing any preparation input moves it.
        let mut seed = base.clone();
        seed.apply_set("seed=2").unwrap();
        assert_ne!(seed.prep_fingerprint("rram-gaussian", 0.1), fp);
        let mut train = base.clone();
        train.apply_set("epochs=3").unwrap();
        assert_ne!(train.prep_fingerprint("rram-gaussian", 0.1), fp);
        assert_ne!(base.prep_fingerprint("rram-gaussian", 0.2), fp, "sigma is in the prefix");
        assert_ne!(base.prep_fingerprint("sram-vt", 0.1), fp, "device model is in the prefix");
    }

    #[test]
    fn prep_fingerprint_collapses_preset_equivalent_overrides() {
        // Spelling the RRAM preset out as explicit overrides must land
        // on the preset's own fingerprint: the resolved DeviceConfig is
        // what is hashed, not the spec's surface syntax.
        let preset = ExperimentSpec::default();
        let cfg = preset.device.config_at(0.1);
        let mut explicit = ExperimentSpec::default();
        explicit.device.verify_margin = Some(cfg.verify_margin);
        explicit.device.pulse_step = Some(cfg.pulse_step);
        explicit.device.max_verify_iters = Some(cfg.max_verify_iters);
        explicit.device.device_bits = Some(cfg.device_bits);
        assert_eq!(
            explicit.prep_fingerprint("rram-gaussian", 0.1),
            preset.prep_fingerprint("rram-gaussian", 0.1)
        );
    }

    #[test]
    fn selectors_resolve_after_validation() {
        let spec = ExperimentSpec::parse_str(
            "[selection]\nmethods = [\"swim\", \"swim-no-tiebreak\", \"layer-balanced\"]\n",
        )
        .unwrap();
        let sels = spec.selection.selectors();
        assert_eq!(sels.len(), 3);
        assert_eq!(sels[1].name(), "SWIM (no tie-break)");
    }
}
