//! Presets replicating each paper artifact.
//!
//! Every regeneration binary's default configuration exists here as a
//! named [`ExperimentSpec`]; `swim preset <name>` and the thin binary
//! wrappers both resolve through this table, so the CLI path and the
//! classic `cargo run --bin table1` path run the identical experiment.
//!
//! The `quick` variant of each preset is the binary's `--quick`
//! smoke-test shape (fewer runs/samples/epochs, single sigma).

use crate::spec::{
    CorrelationSpec, ExperimentKind, ExperimentSpec, ScenarioKind, ScenarioSpec, TrainingSpec,
};

/// Name and summary of one preset (for `swim list`).
#[derive(Debug, Clone, Copy)]
pub struct PresetInfo {
    /// Preset name (`swim preset <name>`).
    pub name: &'static str,
    /// One-line description.
    pub summary: &'static str,
}

/// Every preset, in the paper's presentation order.
pub fn preset_infos() -> Vec<PresetInfo> {
    vec![
        PresetInfo {
            name: "fig1",
            summary: "Fig. 1a/1b — accuracy drop vs magnitude / second derivative",
        },
        PresetInfo {
            name: "table1",
            summary: "Table 1 — LeNet, sigma in {0.1, 0.15, 0.2}, 4 methods x NWC grid",
        },
        PresetInfo { name: "fig2a", summary: "Fig. 2a — ConvNet / CIFAR-10-substitute sweep" },
        PresetInfo { name: "fig2b", summary: "Fig. 2b — ResNet-18 / CIFAR-10-substitute sweep" },
        PresetInfo {
            name: "fig2c",
            summary: "Fig. 2c — ResNet-18 / Tiny-ImageNet-substitute sweep",
        },
        PresetInfo {
            name: "calibration",
            summary: "§4.1 — write-verify cycle/residual statistics",
        },
        PresetInfo {
            name: "ablation",
            summary: "granularity p sweep + tie-break + calibration-set ablations",
        },
    ]
}

/// Builds a preset spec by name (`quick` = the binary's `--quick`
/// smoke shape). Returns `None` for unknown names.
pub fn preset(name: &str, quick: bool) -> Option<ExperimentSpec> {
    let spec = match name {
        "table1" => {
            let mut spec = ExperimentSpec {
                name: "table1".into(),
                kind: ExperimentKind::Table1,
                seed: 1,
                ..Default::default()
            };
            spec.device.sigmas = vec![0.1, 0.15, 0.2];
            spec.montecarlo.runs = 25;
            if quick {
                spec.device.sigmas = vec![0.15];
                spec.montecarlo.runs = 5;
                spec.training.samples = 600;
                spec.training.epochs = 2;
            }
            spec
        }
        "fig2a" | "fig2b" | "fig2c" => {
            let (display, scenario, samples, note) = match name {
                "fig2a" => (
                    "Fig. 2a",
                    ScenarioSpec { model: ScenarioKind::ConvnetCifar, width: 0.25, classes: 10 },
                    2000,
                    "all methods except SWIM drop >10% at NWC = 0.1; SWIM stays within 2.5% \
                     and has the smallest std",
                ),
                "fig2b" => (
                    "Fig. 2b",
                    ScenarioSpec { model: ScenarioKind::Resnet18Cifar, width: 0.25, classes: 10 },
                    2000,
                    "SWIM keeps the accuracy drop below 0.5% using only 10% of the write \
                     cycles; the other methods drop more than 2%",
                ),
                _ => (
                    "Fig. 2c",
                    ScenarioSpec { model: ScenarioKind::Resnet18Tiny, width: 0.25, classes: 40 },
                    1600,
                    "hardest task: all methods drop more than on CIFAR-10, but SWIM stays \
                     within 3% of full write-verify at NWC = 0.1, fewest of all methods",
                ),
            };
            let mut spec = ExperimentSpec {
                name: display.into(),
                kind: ExperimentKind::Fig2,
                note: note.into(),
                seed: 1,
                scenario,
                // Deeper nets need a gentler rate than LeNet's 0.05
                // default.
                training: TrainingSpec { samples, epochs: 5, lr: 0.01, batch: 32 },
                ..Default::default()
            };
            spec.montecarlo.runs = 15;
            if quick {
                spec.montecarlo.runs = 4;
                spec.training.samples = 400;
                spec.training.epochs = 1;
            }
            spec
        }
        "fig1" => {
            let mut spec = ExperimentSpec {
                name: "fig1".into(),
                kind: ExperimentKind::Fig1,
                seed: 1,
                correlation: CorrelationSpec { probes: 150, runs: 30 },
                ..Default::default()
            };
            if quick {
                spec.correlation = CorrelationSpec { probes: 30, runs: 8 };
                spec.training.samples = 600;
                spec.training.epochs = 2;
            }
            spec
        }
        "calibration" => {
            let mut spec = ExperimentSpec {
                name: "calibration".into(),
                kind: ExperimentKind::Calibration,
                seed: 0,
                ..Default::default()
            };
            // The paper's §4.1 sigma sweep, before the per-tech preset
            // rows.
            spec.device.sigmas = vec![0.1, 0.15, 0.2];
            spec
        }
        "ablation" => {
            let mut spec = ExperimentSpec {
                name: "ablation".into(),
                kind: ExperimentKind::Ablation,
                seed: 1,
                ..Default::default()
            };
            spec.device.sigmas = vec![0.15];
            spec.training.samples = 1500;
            spec.training.epochs = 5;
            spec.montecarlo.runs = 10;
            if quick {
                spec.montecarlo.runs = 3;
                spec.training.samples = 500;
                spec.training.epochs = 2;
            }
            spec
        }
        _ => return None,
    };
    debug_assert!(spec.validate().is_ok(), "preset {name} must validate");
    Some(spec)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_listed_preset_builds_and_validates() {
        for info in preset_infos() {
            for quick in [false, true] {
                let spec = preset(info.name, quick)
                    .unwrap_or_else(|| panic!("preset {} missing", info.name));
                spec.validate().unwrap();
                // And survives the parse→write→parse loop.
                let text = spec.to_toml();
                let again = ExperimentSpec::parse_str(&text).unwrap();
                assert_eq!(spec, again, "preset {} round-trip", info.name);
            }
        }
        assert!(preset("nope", false).is_none());
    }

    #[test]
    fn table1_matches_binary_defaults() {
        let spec = preset("table1", false).unwrap();
        assert_eq!(spec.device.sigmas, vec![0.1, 0.15, 0.2]);
        assert_eq!(spec.montecarlo.runs, 25);
        assert_eq!(spec.training.samples, 2500);
        assert_eq!(spec.training.epochs, 6);
        assert_eq!(spec.seed, 1);
        let quick = preset("table1", true).unwrap();
        assert_eq!(quick.device.sigmas, vec![0.15]);
        assert_eq!(quick.montecarlo.runs, 5);
        assert_eq!(quick.training.samples, 600);
        assert_eq!(quick.training.epochs, 2);
    }

    #[test]
    fn fig2_presets_match_binary_defaults() {
        let spec = preset("fig2a", false).unwrap();
        assert_eq!(spec.training.lr, 0.01);
        assert_eq!(spec.montecarlo.runs, 15);
        assert_eq!(spec.device.sigmas, vec![0.1]);
        assert_eq!(spec.scenario.width, 0.25);
        let c = preset("fig2c", false).unwrap();
        assert_eq!(c.scenario.classes, 40);
        assert_eq!(c.training.samples, 1600);
    }
}
