//! A small self-describing value tree with hand-rolled TOML-subset and
//! JSON parsers/writers.
//!
//! The workspace deliberately carries no serialization dependency; the
//! experiment-spec format needs only scalars, arrays, and one-or-two
//! levels of tables, which this module covers in a few hundred lines.
//! Tables preserve insertion order so written documents are stable and
//! diffable.
//!
//! Supported TOML subset: `key = value` pairs, single- or dotted-level
//! `[section]` headers, `#` comments, quoted strings with the common
//! escapes, booleans, integers, floats, and (possibly multi-line)
//! arrays. Supported JSON subset: everything except `null`.

use std::fmt::Write as _;

/// A dynamically-typed configuration/result value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A string.
    Str(String),
    /// A 64-bit signed integer.
    Int(i64),
    /// A 64-bit float.
    Float(f64),
    /// A boolean.
    Bool(bool),
    /// An ordered list.
    Array(Vec<Value>),
    /// An insertion-ordered key→value table.
    Table(Vec<(String, Value)>),
}

impl Value {
    /// An empty table.
    pub fn table() -> Value {
        Value::Table(Vec::new())
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload, if this is an integer.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The numeric payload as `f64` (integers coerce).
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The entry list, if this is a table.
    pub fn as_table(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Table(t) => Some(t),
            _ => None,
        }
    }

    /// Looks up a key in a table value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_table()?.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Inserts or replaces `key` in a table value.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not a table.
    pub fn set(&mut self, key: &str, value: Value) {
        let Value::Table(entries) = self else { panic!("Value::set on non-table") };
        match entries.iter_mut().find(|(k, _)| k == key) {
            Some((_, slot)) => *slot = value,
            None => entries.push((key.to_string(), value)),
        }
    }

    /// Sets a value at a dotted path (e.g. `montecarlo.runs`),
    /// creating intermediate tables as needed.
    ///
    /// Returns an error if an intermediate segment exists but is not a
    /// table.
    pub fn set_path(&mut self, path: &str, value: Value) -> Result<(), String> {
        let mut cursor = self;
        let segments: Vec<&str> = path.split('.').collect();
        for (i, segment) in segments.iter().enumerate() {
            if segment.is_empty() {
                return Err(format!("empty segment in path `{path}`"));
            }
            if i + 1 == segments.len() {
                if !matches!(cursor, Value::Table(_)) {
                    return Err(format!("`{path}`: parent is not a table"));
                }
                cursor.set(segment, value);
                return Ok(());
            }
            if cursor.get(segment).is_none() {
                cursor.set(segment, Value::table());
            }
            let Value::Table(entries) = cursor else { unreachable!() };
            let (_, next) = entries.iter_mut().find(|(k, _)| k == segment).expect("just inserted");
            if !matches!(next, Value::Table(_)) {
                return Err(format!("`{path}`: segment `{segment}` is not a table"));
            }
            cursor = next;
        }
        Err("empty path".to_string())
    }

    /// Renders this value as a TOML document (the value must be a
    /// table). Scalar and array entries come first, then sub-tables as
    /// `[section]` blocks (nested sub-tables become dotted headers).
    ///
    /// # Panics
    ///
    /// Panics if `self` is not a table or contains a table nested inside
    /// an array (outside this module's TOML subset).
    pub fn to_toml(&self) -> String {
        let mut out = String::new();
        self.write_toml_table(&mut out, "");
        out
    }

    fn write_toml_table(&self, out: &mut String, path: &str) {
        let entries = self.as_table().expect("to_toml requires a table");
        let mut sections: Vec<(&str, &Value)> = Vec::new();
        for (key, value) in entries {
            if matches!(value, Value::Table(_)) {
                sections.push((key, value));
            } else {
                let _ = writeln!(out, "{key} = {}", fmt_toml_value(value));
            }
        }
        for (key, value) in sections {
            let sub_path = if path.is_empty() { key.to_string() } else { format!("{path}.{key}") };
            if !out.is_empty() {
                out.push('\n');
            }
            let _ = writeln!(out, "[{sub_path}]");
            value.write_toml_table(out, &sub_path);
        }
    }

    /// Renders this value as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_json(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent + 1);
        let close_pad = "  ".repeat(indent);
        match self {
            Value::Str(s) => out.push_str(&quote_string(s)),
            Value::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Value::Float(f) => out.push_str(&fmt_float(*f)),
            Value::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                let scalar_only =
                    items.iter().all(|v| !matches!(v, Value::Array(_) | Value::Table(_)));
                if scalar_only {
                    out.push('[');
                    for (i, item) in items.iter().enumerate() {
                        if i > 0 {
                            out.push_str(", ");
                        }
                        item.write_json(out, indent);
                    }
                    out.push(']');
                } else {
                    out.push_str("[\n");
                    for (i, item) in items.iter().enumerate() {
                        out.push_str(&pad);
                        item.write_json(out, indent + 1);
                        if i + 1 < items.len() {
                            out.push(',');
                        }
                        out.push('\n');
                    }
                    out.push_str(&close_pad);
                    out.push(']');
                }
            }
            Value::Table(entries) => {
                if entries.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (key, value)) in entries.iter().enumerate() {
                    out.push_str(&pad);
                    out.push_str(&quote_string(key));
                    out.push_str(": ");
                    value.write_json(out, indent + 1);
                    if i + 1 < entries.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&close_pad);
                out.push('}');
            }
        }
    }
}

/// Formats a float so it re-parses as a float (never as an integer).
fn fmt_float(f: f64) -> String {
    debug_assert!(f.is_finite(), "non-finite float in value tree");
    let s = format!("{f}");
    if s.contains('.') || s.contains('e') || s.contains('E') {
        s
    } else {
        format!("{s}.0")
    }
}

fn fmt_toml_value(value: &Value) -> String {
    match value {
        Value::Str(s) => quote_string(s),
        Value::Int(i) => format!("{i}"),
        Value::Float(f) => fmt_float(*f),
        Value::Bool(b) => format!("{b}"),
        Value::Array(items) => {
            let inner: Vec<String> = items.iter().map(fmt_toml_value).collect();
            format!("[{}]", inner.join(", "))
        }
        Value::Table(_) => panic!("tables inside arrays are outside the TOML subset"),
    }
}

fn quote_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Character-cursor shared by the two parsers.
struct Cursor<'a> {
    text: &'a [u8],
    pos: usize,
    line: usize,
}

impl<'a> Cursor<'a> {
    fn new(text: &'a str) -> Self {
        Cursor { text: text.as_bytes(), pos: 0, line: 1 }
    }

    fn err(&self, msg: impl Into<String>) -> String {
        format!("line {}: {}", self.line, msg.into())
    }

    fn peek(&self) -> Option<u8> {
        self.text.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
        }
        Some(c)
    }

    /// Skips spaces and tabs (not newlines).
    fn skip_inline_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r')) {
            self.pos += 1;
        }
    }

    /// Skips whitespace including newlines, plus `#` comments.
    fn skip_ws_and_comments(&mut self) {
        loop {
            match self.peek() {
                Some(b' ' | b'\t' | b'\r') => {
                    self.pos += 1;
                }
                Some(b'\n') => {
                    self.bump();
                }
                Some(b'#') => {
                    while !matches!(self.peek(), None | Some(b'\n')) {
                        self.pos += 1;
                    }
                }
                _ => break,
            }
        }
    }

    fn parse_quoted_string(&mut self) -> Result<String, String> {
        // The opening-quote consumption must not live inside a
        // `debug_assert!` — release builds compile those away, and the
        // un-consumed quote would make every string parse as empty.
        let opening = self.bump();
        debug_assert_eq!(opening, Some(b'"'));
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'/') => out.push('/'),
                    Some(b'u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self.bump().ok_or_else(|| self.err("truncated \\u escape"))?;
                            let d = (d as char)
                                .to_digit(16)
                                .ok_or_else(|| self.err("bad hex digit in \\u escape"))?;
                            code = code * 16 + d;
                        }
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| self.err("invalid \\u code point"))?,
                        );
                    }
                    _ => return Err(self.err("unknown string escape")),
                },
                Some(c) if c < 0x80 => out.push(c as char),
                Some(first) => {
                    // Re-decode the UTF-8 sequence that starts here.
                    let len = match first {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let start = self.pos - 1;
                    let end = (start + len).min(self.text.len());
                    let chunk = std::str::from_utf8(&self.text[start..end])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    let c = chunk.chars().next().ok_or_else(|| self.err("empty UTF-8 chunk"))?;
                    out.push(c);
                    self.pos = start + c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9' | b'+' | b'-' | b'.' | b'e' | b'E' | b'_')) {
            self.pos += 1;
        }
        let raw: String = std::str::from_utf8(&self.text[start..self.pos])
            .expect("ascii digits")
            .replace('_', "");
        if raw.contains('.') || raw.contains('e') || raw.contains('E') {
            raw.parse::<f64>().map(Value::Float).map_err(|_| self.err(format!("bad float `{raw}`")))
        } else {
            raw.parse::<i64>().map(Value::Int).map_err(|_| self.err(format!("bad integer `{raw}`")))
        }
    }

    fn starts_with_word(&self, word: &str) -> bool {
        let end = self.pos + word.len();
        end <= self.text.len()
            && &self.text[self.pos..end] == word.as_bytes()
            && !matches!(self.text.get(end), Some(c) if c.is_ascii_alphanumeric())
    }
}

// ---------------------------------------------------------------- TOML

/// Parses a TOML-subset document into a [`Value::Table`].
///
/// # Example
///
/// ```
/// use swim_exp::value::parse_toml;
///
/// let doc = parse_toml("runs = 25\n[device]\nsigmas = [0.1, 0.2]\n").unwrap();
/// assert_eq!(doc.get("runs").unwrap().as_int(), Some(25));
/// assert_eq!(doc.get("device").unwrap().get("sigmas").unwrap().as_array().unwrap().len(), 2);
/// ```
pub fn parse_toml(text: &str) -> Result<Value, String> {
    let mut cursor = Cursor::new(text);
    let mut root = Value::table();
    let mut section: Vec<String> = Vec::new();
    loop {
        cursor.skip_ws_and_comments();
        let Some(c) = cursor.peek() else { break };
        if c == b'[' {
            cursor.bump();
            cursor.skip_inline_ws();
            let mut path = Vec::new();
            loop {
                let key = parse_key(&mut cursor)?;
                path.push(key);
                cursor.skip_inline_ws();
                match cursor.bump() {
                    Some(b'.') => {
                        cursor.skip_inline_ws();
                    }
                    Some(b']') => break,
                    _ => return Err(cursor.err("expected `.` or `]` in section header")),
                }
            }
            // A section may be opened at most once.
            let mut probe = &root;
            let mut exists = true;
            for seg in &path {
                match probe.get(seg) {
                    Some(v) => probe = v,
                    None => {
                        exists = false;
                        break;
                    }
                }
            }
            if exists {
                return Err(cursor.err(format!("duplicate section [{}]", path.join("."))));
            }
            root.set_path(&path.join("."), Value::table()).map_err(|e| cursor.err(e))?;
            section = path;
        } else {
            let key = parse_key(&mut cursor)?;
            cursor.skip_inline_ws();
            if cursor.bump() != Some(b'=') {
                return Err(cursor.err(format!("expected `=` after key `{key}`")));
            }
            cursor.skip_inline_ws();
            let value = parse_toml_value(&mut cursor)?;
            cursor.skip_inline_ws();
            if let Some(c) = cursor.peek() {
                if c != b'\n' && c != b'#' {
                    return Err(cursor.err(format!("trailing characters after value for `{key}`")));
                }
            }
            let mut full = section.clone();
            full.push(key.clone());
            let path = full.join(".");
            // Reject duplicate keys.
            let mut probe = &root;
            let mut dup = true;
            for seg in &full {
                match probe.get(seg) {
                    Some(v) => probe = v,
                    None => {
                        dup = false;
                        break;
                    }
                }
            }
            if dup {
                return Err(cursor.err(format!("duplicate key `{path}`")));
            }
            root.set_path(&path, value).map_err(|e| cursor.err(e))?;
        }
    }
    Ok(root)
}

fn parse_key(cursor: &mut Cursor) -> Result<String, String> {
    if cursor.peek() == Some(b'"') {
        return cursor.parse_quoted_string();
    }
    let start = cursor.pos;
    while matches!(cursor.peek(), Some(c) if c.is_ascii_alphanumeric() || c == b'_' || c == b'-') {
        cursor.pos += 1;
    }
    if cursor.pos == start {
        return Err(cursor.err("expected a key"));
    }
    Ok(std::str::from_utf8(&cursor.text[start..cursor.pos]).expect("ascii key").to_string())
}

fn parse_toml_value(cursor: &mut Cursor) -> Result<Value, String> {
    match cursor.peek() {
        None => Err(cursor.err("expected a value")),
        Some(b'"') => cursor.parse_quoted_string().map(Value::Str),
        Some(b'[') => {
            cursor.bump();
            let mut items = Vec::new();
            loop {
                cursor.skip_ws_and_comments();
                if cursor.peek() == Some(b']') {
                    cursor.bump();
                    return Ok(Value::Array(items));
                }
                items.push(parse_toml_value(cursor)?);
                cursor.skip_ws_and_comments();
                match cursor.peek() {
                    Some(b',') => {
                        cursor.bump();
                    }
                    Some(b']') => {}
                    _ => return Err(cursor.err("expected `,` or `]` in array")),
                }
            }
        }
        Some(b't') if cursor.starts_with_word("true") => {
            cursor.pos += 4;
            Ok(Value::Bool(true))
        }
        Some(b'f') if cursor.starts_with_word("false") => {
            cursor.pos += 5;
            Ok(Value::Bool(false))
        }
        Some(b'0'..=b'9' | b'+' | b'-' | b'.') => cursor.parse_number(),
        Some(c) => Err(cursor.err(format!("unexpected character `{}` in value", c as char))),
    }
}

// ---------------------------------------------------------------- JSON

/// Parses a JSON document (`null` is rejected — the spec format has no
/// use for it).
///
/// # Example
///
/// ```
/// use swim_exp::value::parse_json;
///
/// let doc = parse_json(r#"{"runs": 3, "grid": [0.0, 0.5]}"#).unwrap();
/// assert_eq!(doc.get("runs").unwrap().as_int(), Some(3));
/// ```
pub fn parse_json(text: &str) -> Result<Value, String> {
    let mut cursor = Cursor::new(text);
    cursor.skip_ws_and_comments();
    let value = parse_json_value(&mut cursor)?;
    cursor.skip_ws_and_comments();
    if cursor.peek().is_some() {
        return Err(cursor.err("trailing characters after JSON document"));
    }
    Ok(value)
}

fn parse_json_value(cursor: &mut Cursor) -> Result<Value, String> {
    cursor.skip_ws_and_comments();
    match cursor.peek() {
        None => Err(cursor.err("expected a JSON value")),
        Some(b'"') => cursor.parse_quoted_string().map(Value::Str),
        Some(b'{') => {
            cursor.bump();
            let mut entries: Vec<(String, Value)> = Vec::new();
            cursor.skip_ws_and_comments();
            if cursor.peek() == Some(b'}') {
                cursor.bump();
                return Ok(Value::Table(entries));
            }
            loop {
                cursor.skip_ws_and_comments();
                if cursor.peek() != Some(b'"') {
                    return Err(cursor.err("expected a quoted object key"));
                }
                let key = cursor.parse_quoted_string()?;
                if entries.iter().any(|(k, _)| *k == key) {
                    return Err(cursor.err(format!("duplicate key `{key}`")));
                }
                cursor.skip_ws_and_comments();
                if cursor.bump() != Some(b':') {
                    return Err(cursor.err("expected `:` after object key"));
                }
                let value = parse_json_value(cursor)?;
                entries.push((key, value));
                cursor.skip_ws_and_comments();
                match cursor.bump() {
                    Some(b',') => {}
                    Some(b'}') => return Ok(Value::Table(entries)),
                    _ => return Err(cursor.err("expected `,` or `}` in object")),
                }
            }
        }
        Some(b'[') => {
            cursor.bump();
            let mut items = Vec::new();
            cursor.skip_ws_and_comments();
            if cursor.peek() == Some(b']') {
                cursor.bump();
                return Ok(Value::Array(items));
            }
            loop {
                items.push(parse_json_value(cursor)?);
                cursor.skip_ws_and_comments();
                match cursor.bump() {
                    Some(b',') => {}
                    Some(b']') => return Ok(Value::Array(items)),
                    _ => return Err(cursor.err("expected `,` or `]` in array")),
                }
            }
        }
        Some(b't') if cursor.starts_with_word("true") => {
            cursor.pos += 4;
            Ok(Value::Bool(true))
        }
        Some(b'f') if cursor.starts_with_word("false") => {
            cursor.pos += 5;
            Ok(Value::Bool(false))
        }
        Some(b'n') if cursor.starts_with_word("null") => Err(cursor.err("`null` is not supported")),
        Some(b'0'..=b'9' | b'+' | b'-' | b'.') => cursor.parse_number(),
        Some(c) => Err(cursor.err(format!("unexpected character `{}`", c as char))),
    }
}

// --------------------------------------------------------------- reader

/// Strict, consume-tracking reader over a [`Value::Table`].
///
/// [`Reader::take`] marks keys as consumed; [`Reader::finish`] rejects
/// whatever was not consumed, naming its full dotted path — the
/// mechanism behind the spec parser's and the results-schema parser's
/// unknown-key errors. The `*_or` accessors fall back to a default when
/// the key is absent; [`Reader::require`] demands presence.
///
/// # Example
///
/// ```
/// use swim_exp::value::{parse_toml, Reader};
///
/// let doc = parse_toml("runs = 3\nbogus = 1\n").unwrap();
/// let mut r = Reader::new("", &doc).unwrap();
/// assert_eq!(r.usize_or("runs", 25).unwrap(), 3);
/// let err = r.finish().unwrap_err();
/// assert!(err.contains("unknown key `bogus`"));
/// ```
pub struct Reader<'a> {
    path: &'a str,
    entries: &'a [(String, Value)],
    seen: Vec<bool>,
}

fn display_path(path: &str) -> &str {
    if path.is_empty() {
        "<root>"
    } else {
        path
    }
}

impl<'a> Reader<'a> {
    /// Wraps a table value; `path` is the dotted prefix used in error
    /// messages (empty for the document root).
    pub fn new(path: &'a str, value: &'a Value) -> Result<Self, String> {
        let entries =
            value.as_table().ok_or_else(|| format!("`{}` must be a table", display_path(path)))?;
        Ok(Reader { path, entries, seen: vec![false; entries.len()] })
    }

    /// The full dotted path of `key` under this reader's prefix.
    pub fn full_key(&self, key: &str) -> String {
        if self.path.is_empty() {
            key.to_string()
        } else {
            format!("{}.{key}", self.path)
        }
    }

    /// Consumes and returns `key`, if present.
    pub fn take(&mut self, key: &str) -> Option<&'a Value> {
        for (i, (k, v)) in self.entries.iter().enumerate() {
            if k == key {
                self.seen[i] = true;
                return Some(v);
            }
        }
        None
    }

    /// Consumes and returns `key`, erroring when absent.
    pub fn require(&mut self, key: &str) -> Result<&'a Value, String> {
        self.take(key).ok_or_else(|| format!("missing key `{}`", self.full_key(key)))
    }

    /// Errors on the first never-consumed key, with its full path.
    pub fn finish(self) -> Result<(), String> {
        for (i, (k, _)) in self.entries.iter().enumerate() {
            if !self.seen[i] {
                return Err(format!("unknown key `{}`", self.full_key(k)));
            }
        }
        Ok(())
    }

    /// String value of `key`, or `default` when absent.
    pub fn string_or(&mut self, key: &str, default: &str) -> Result<String, String> {
        match self.take(key) {
            None => Ok(default.to_string()),
            Some(v) => v
                .as_str()
                .map(|s| s.to_string())
                .ok_or_else(|| format!("`{}` must be a string", self.full_key(key))),
        }
    }

    /// String value of `key`, required.
    pub fn string_req(&mut self, key: &str) -> Result<String, String> {
        let full = self.full_key(key);
        self.require(key)?
            .as_str()
            .map(|s| s.to_string())
            .ok_or_else(|| format!("`{full}` must be a string"))
    }

    /// `usize` value of `key`, or `default` when absent.
    pub fn usize_or(&mut self, key: &str, default: usize) -> Result<usize, String> {
        match self.take(key) {
            None => Ok(default),
            Some(v) => v
                .as_int()
                .and_then(|i| usize::try_from(i).ok())
                .ok_or_else(|| format!("`{}` must be a non-negative integer", self.full_key(key))),
        }
    }

    /// `u64` value of `key`, or `default` when absent.
    pub fn u64_or(&mut self, key: &str, default: u64) -> Result<u64, String> {
        match self.take(key) {
            None => Ok(default),
            Some(v) => v
                .as_int()
                .and_then(|i| u64::try_from(i).ok())
                .ok_or_else(|| format!("`{}` must be a non-negative integer", self.full_key(key))),
        }
    }

    /// `u64` value of `key`, required.
    pub fn u64_req(&mut self, key: &str) -> Result<u64, String> {
        let full = self.full_key(key);
        self.require(key)?
            .as_int()
            .and_then(|i| u64::try_from(i).ok())
            .ok_or_else(|| format!("`{full}` must be a non-negative integer"))
    }

    /// `f64` value of `key` (integers coerce), or `default` when absent.
    pub fn f64_or(&mut self, key: &str, default: f64) -> Result<f64, String> {
        match self.take(key) {
            None => Ok(default),
            Some(v) => {
                v.as_float().ok_or_else(|| format!("`{}` must be a number", self.full_key(key)))
            }
        }
    }

    /// `f64` value of `key`, required.
    pub fn f64_req(&mut self, key: &str) -> Result<f64, String> {
        let full = self.full_key(key);
        self.require(key)?.as_float().ok_or_else(|| format!("`{full}` must be a number"))
    }

    /// `f32` value of `key`, or `default` when absent.
    pub fn f32_or(&mut self, key: &str, default: f32) -> Result<f32, String> {
        self.f64_or(key, default as f64).map(|v| v as f32)
    }

    /// Boolean value of `key`, or `default` when absent.
    pub fn bool_or(&mut self, key: &str, default: bool) -> Result<bool, String> {
        match self.take(key) {
            None => Ok(default),
            Some(v) => {
                v.as_bool().ok_or_else(|| format!("`{}` must be a boolean", self.full_key(key)))
            }
        }
    }

    /// Optional `f64` value of `key` (`None` when absent).
    pub fn f64_opt(&mut self, key: &str) -> Result<Option<f64>, String> {
        match self.take(key) {
            None => Ok(None),
            Some(v) => v
                .as_float()
                .map(Some)
                .ok_or_else(|| format!("`{}` must be a number", self.full_key(key))),
        }
    }

    /// Optional `usize` value of `key` (`None` when absent).
    pub fn usize_opt(&mut self, key: &str) -> Result<Option<usize>, String> {
        match self.take(key) {
            None => Ok(None),
            Some(v) => {
                v.as_int().and_then(|i| usize::try_from(i).ok()).map(Some).ok_or_else(|| {
                    format!("`{}` must be a non-negative integer", self.full_key(key))
                })
            }
        }
    }

    /// Optional `u32` value of `key` (`None` when absent).
    pub fn u32_opt(&mut self, key: &str) -> Result<Option<u32>, String> {
        match self.take(key) {
            None => Ok(None),
            Some(v) => {
                v.as_int().and_then(|i| u32::try_from(i).ok()).map(Some).ok_or_else(|| {
                    format!("`{}` must be a non-negative integer", self.full_key(key))
                })
            }
        }
    }

    /// `f64` array value of `key`, or `default` when absent.
    pub fn f64_list_or(&mut self, key: &str, default: &[f64]) -> Result<Vec<f64>, String> {
        match self.take(key) {
            None => Ok(default.to_vec()),
            Some(v) => {
                let full = self.full_key(key);
                let items = v.as_array().ok_or_else(|| format!("`{full}` must be an array"))?;
                items
                    .iter()
                    .map(|item| {
                        item.as_float().ok_or_else(|| format!("`{full}` must contain numbers"))
                    })
                    .collect()
            }
        }
    }

    /// String array value of `key`, or `default` when absent.
    pub fn string_list_or(&mut self, key: &str, default: &[String]) -> Result<Vec<String>, String> {
        match self.take(key) {
            None => Ok(default.to_vec()),
            Some(v) => {
                let full = self.full_key(key);
                let items = v.as_array().ok_or_else(|| format!("`{full}` must be an array"))?;
                items
                    .iter()
                    .map(|item| {
                        item.as_str()
                            .map(|s| s.to_string())
                            .ok_or_else(|| format!("`{full}` must contain strings"))
                    })
                    .collect()
            }
        }
    }
}

/// Parses a scalar or array from loose CLI text (`--set key=value`).
///
/// Tries boolean, number, quoted string, and `[...]` array syntax; a
/// bare comma-separated list becomes an array; anything else is a
/// string.
///
/// # Example
///
/// ```
/// use swim_exp::value::{parse_loose, Value};
///
/// assert_eq!(parse_loose("25"), Value::Int(25));
/// assert_eq!(parse_loose("0.1,0.2"),
///            Value::Array(vec![Value::Float(0.1), Value::Float(0.2)]));
/// assert_eq!(parse_loose("lenet-mnist"), Value::Str("lenet-mnist".into()));
/// ```
pub fn parse_loose(raw: &str) -> Value {
    let trimmed = raw.trim();
    if trimmed.contains(',') && !trimmed.starts_with('[') && !trimmed.starts_with('"') {
        return Value::Array(trimmed.split(',').map(parse_loose).collect());
    }
    let mut cursor = Cursor::new(trimmed);
    let parsed = parse_toml_value(&mut cursor);
    match parsed {
        Ok(v) if cursor.pos == trimmed.len() => v,
        _ => Value::Str(trimmed.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn toml_scalars_and_sections() {
        let doc = parse_toml(
            "# top comment\nname = \"table1\"  # trailing\nseed = 7\nquick = false\n\n\
             [training]\nlr = 0.05\nepochs = 6\n",
        )
        .unwrap();
        assert_eq!(doc.get("name").unwrap().as_str(), Some("table1"));
        assert_eq!(doc.get("seed").unwrap().as_int(), Some(7));
        assert_eq!(doc.get("quick").unwrap().as_bool(), Some(false));
        let training = doc.get("training").unwrap();
        assert_eq!(training.get("lr").unwrap().as_float(), Some(0.05));
        assert_eq!(training.get("epochs").unwrap().as_int(), Some(6));
    }

    #[test]
    fn toml_multiline_arrays() {
        let doc =
            parse_toml("fractions = [\n  0.0, # none\n  0.5,\n  1.0,\n]\nnames = [\"a\", \"b\"]\n")
                .unwrap();
        let fr = doc.get("fractions").unwrap().as_array().unwrap();
        assert_eq!(fr.len(), 3);
        assert_eq!(fr[1].as_float(), Some(0.5));
        let names = doc.get("names").unwrap().as_array().unwrap();
        assert_eq!(names[1].as_str(), Some("b"));
    }

    #[test]
    fn toml_dotted_sections() {
        let doc = parse_toml("[a.b]\nx = 1\n").unwrap();
        assert_eq!(doc.get("a").unwrap().get("b").unwrap().get("x").unwrap().as_int(), Some(1));
    }

    #[test]
    fn toml_rejects_duplicates_and_junk() {
        assert!(parse_toml("a = 1\na = 2\n").unwrap_err().contains("duplicate key"));
        assert!(parse_toml("[s]\nx = 1\n[s]\ny = 2\n").unwrap_err().contains("duplicate section"));
        assert!(parse_toml("a = 1 junk\n").unwrap_err().contains("trailing"));
        assert!(parse_toml("a = \n").is_err());
        let err = parse_toml("ok = 1\nbad = @\n").unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
    }

    #[test]
    fn toml_round_trip() {
        let mut root = Value::table();
        root.set("name", Value::Str("fig2a".into()));
        root.set("seed", Value::Int(1));
        let mut device = Value::table();
        device.set("sigmas", Value::Array(vec![Value::Float(0.1), Value::Float(0.15)]));
        device.set("tech", Value::Str("rram".into()));
        root.set("device", device);
        let text = root.to_toml();
        let back = parse_toml(&text).unwrap();
        assert_eq!(back, root);
    }

    #[test]
    fn float_formatting_survives_round_trip() {
        // 1.0 must not collapse to the integer 1.
        let mut root = Value::table();
        root.set("w", Value::Float(1.0));
        root.set("n", Value::Int(1));
        let back = parse_toml(&root.to_toml()).unwrap();
        assert_eq!(back.get("w").unwrap(), &Value::Float(1.0));
        assert_eq!(back.get("n").unwrap(), &Value::Int(1));
    }

    #[test]
    fn json_round_trip() {
        let mut root = Value::table();
        root.set("s", Value::Str("a \"quoted\" line\nnext".into()));
        root.set("xs", Value::Array(vec![Value::Int(1), Value::Float(2.5), Value::Bool(true)]));
        let mut nested = Value::table();
        nested.set("empty_array", Value::Array(vec![]));
        nested.set("empty_table", Value::table());
        root.set("nested", nested);
        let text = root.to_json();
        let back = parse_json(&text).unwrap();
        assert_eq!(back, root);
    }

    #[test]
    fn json_rejects_null_and_trailing() {
        assert!(parse_json("null").unwrap_err().contains("null"));
        assert!(parse_json("{} extra").unwrap_err().contains("trailing"));
        assert!(parse_json(r#"{"a": 1, "a": 2}"#).unwrap_err().contains("duplicate"));
    }

    #[test]
    fn set_path_creates_and_overwrites() {
        let mut root = Value::table();
        root.set_path("montecarlo.runs", Value::Int(10)).unwrap();
        root.set_path("montecarlo.runs", Value::Int(25)).unwrap();
        assert_eq!(root.get("montecarlo").unwrap().get("runs").unwrap().as_int(), Some(25));
        root.set_path("seed", Value::Int(3)).unwrap();
        assert_eq!(root.get("seed").unwrap().as_int(), Some(3));
        // A scalar segment cannot be traversed.
        assert!(root.set_path("seed.sub", Value::Int(1)).is_err());
    }

    #[test]
    fn loose_parsing() {
        assert_eq!(parse_loose("true"), Value::Bool(true));
        assert_eq!(parse_loose("-3"), Value::Int(-3));
        assert_eq!(parse_loose("2.5"), Value::Float(2.5));
        assert_eq!(parse_loose("[1, 2]"), Value::Array(vec![Value::Int(1), Value::Int(2)]));
        assert_eq!(
            parse_loose("a,b"),
            Value::Array(vec![Value::Str("a".into()), Value::Str("b".into())])
        );
        assert_eq!(parse_loose("\"quoted\""), Value::Str("quoted".into()));
        assert_eq!(parse_loose("resnet18-tiny"), Value::Str("resnet18-tiny".into()));
    }
}
