//! Portable-SIMD kernel layer with runtime dispatch.
//!
//! The Monte Carlo sweep is thousands of noisy forward passes; the GEMM
//! microkernel and the elementwise hot paths (ReLU, batchnorm
//! normalization, fake-quant, the per-weight device-programming loop)
//! dominate its cost. This module gives them hand-vectorized bodies
//! without giving up the workspace's reproducibility contract:
//!
//! * [`Backend`] names one instruction-set implementation: `scalar`
//!   (the reference), `avx2` (+FMA), `avx512` (AVX-512F), or `neon`.
//! * The active backend is selected **once**, lazily, from the
//!   `SWIM_SIMD` environment variable if set (`scalar`, `avx2`,
//!   `avx512`, `neon`; unknown or unsupported values abort with a clear
//!   message) and otherwise by runtime feature detection in preference
//!   order `avx512` > `avx2` > `scalar` on x86-64 and `neon` > `scalar`
//!   on AArch64. [`set_backend`] overrides it programmatically (the
//!   `--simd` / `[run] simd` experiment knob routes through it).
//! * Kernels are written once as generic bodies over the [`SimdLane`]
//!   trait and monomorphized per backend behind `#[target_feature]`
//!   wrappers, so a binary built for baseline x86-64 still runs AVX-512
//!   code when (and only when) the CPU has it.
//!
//! # Drift policy
//!
//! The scalar backend is the reference implementation; every vector
//! backend is pinned against it by `crates/tensor/tests/simd_vs_scalar.rs`:
//!
//! * **Elementwise kernels are bit-identical across backends.** They
//!   evaluate the same expression per element with the same rounding
//!   steps (no FMA contraction), so lane width cannot change a single
//!   bit. This includes NaN/±∞ handling and the ties-away-from-zero
//!   rounding of the fake-quant paths ([`SimdLane::round_ties_away`]
//!   emulates `f32::round` exactly on backends whose native rounding is
//!   ties-to-even).
//! * **The device-programming kernel ([`scale_add_f64`]) is
//!   bit-identical across backends**: `target + sigma * z` with an
//!   explicit multiply then add, never an FMA, in stream order.
//! * **GEMM drifts within [`GEMM_DRIFT_TOL`].** The vector microkernels
//!   accumulate `LANES` columns in parallel with fused multiply-adds;
//!   each output element still sums in strictly increasing `k` order,
//!   so every backend is deterministic (and bit-stable across thread
//!   counts and block sizes), but the fused rounding differs from the
//!   scalar two-rounding reference by ~1 ulp per `k` step.
//!
//! Results documents record the active backend in their `simd` header
//! so any artifact can be traced to the code path that produced it;
//! committed golden fixtures are scalar-reference artifacts and the
//! tests that compare against them force `Backend::Scalar` via
//! [`with_backend`].

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Mutex;

/// Per-element relative tolerance pinned for GEMM outputs of a vector
/// backend against the scalar reference (see the module docs: the FMA
/// accumulation differs by ~1 ulp per `k` step, so the drift for the
/// `k ≤ 4096` shapes this workspace runs is far below this bound).
///
/// Compared as `|a − b| ≤ GEMM_DRIFT_TOL · max(1, |a|, |b|)`.
pub const GEMM_DRIFT_TOL: f32 = 1e-4;

/// One SIMD instruction-set implementation of the kernel layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Backend {
    /// Plain scalar Rust: the reference implementation, available
    /// everywhere.
    Scalar = 1,
    /// AVX2 + FMA (x86-64), 8 `f32` lanes.
    Avx2 = 2,
    /// AVX-512F (x86-64), 16 `f32` lanes.
    Avx512 = 3,
    /// NEON (AArch64), 4 `f32` lanes.
    Neon = 4,
}

impl Backend {
    /// Every backend this build knows about, in detection-preference
    /// order (strongest first), ending with the scalar reference.
    pub const ALL: [Backend; 4] = [Backend::Avx512, Backend::Avx2, Backend::Neon, Backend::Scalar];

    /// The lowercase name used by `SWIM_SIMD`, `--simd`, and the
    /// results-document `simd` header.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Avx2 => "avx2",
            Backend::Avx512 => "avx512",
            Backend::Neon => "neon",
        }
    }

    /// Parses a backend name (the inverse of [`Backend::name`]).
    pub fn parse(name: &str) -> Option<Backend> {
        match name {
            "scalar" => Some(Backend::Scalar),
            "avx2" => Some(Backend::Avx2),
            "avx512" => Some(Backend::Avx512),
            "neon" => Some(Backend::Neon),
            _ => None,
        }
    }

    /// Whether the running CPU (and this build's architecture) can
    /// execute this backend.
    pub fn is_supported(self) -> bool {
        match self {
            Backend::Scalar => true,
            #[cfg(target_arch = "x86_64")]
            Backend::Avx2 => {
                std::arch::is_x86_feature_detected!("avx2")
                    && std::arch::is_x86_feature_detected!("fma")
            }
            #[cfg(target_arch = "x86_64")]
            Backend::Avx512 => std::arch::is_x86_feature_detected!("avx512f"),
            #[cfg(target_arch = "aarch64")]
            Backend::Neon => std::arch::is_aarch64_feature_detected!("neon"),
            #[allow(unreachable_patterns)]
            _ => false,
        }
    }

    fn from_u8(v: u8) -> Backend {
        match v {
            1 => Backend::Scalar,
            2 => Backend::Avx2,
            3 => Backend::Avx512,
            4 => Backend::Neon,
            _ => unreachable!("invalid backend repr {v}"),
        }
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The backend runtime feature detection would pick on this host,
/// ignoring `SWIM_SIMD` and any [`set_backend`] override.
pub fn detected_backend() -> Backend {
    *Backend::ALL.iter().find(|b| b.is_supported()).expect("scalar backend is always supported")
}

/// Every backend the running host supports, strongest first (always
/// ends with [`Backend::Scalar`]).
pub fn available_backends() -> Vec<Backend> {
    Backend::ALL.iter().copied().filter(|b| b.is_supported()).collect()
}

/// The active backend; `0` means "not yet initialized".
static ACTIVE: AtomicU8 = AtomicU8::new(0);

/// Serializes [`with_backend`] scopes: the active backend is process
/// global, so concurrent overriders (parallel tests) must take turns.
static OVERRIDE_LOCK: Mutex<()> = Mutex::new(());

/// The active SIMD backend, initializing it on first use.
///
/// First use reads `SWIM_SIMD` (panicking on unknown or unsupported
/// values — a silently ignored override would be worse) and falls back
/// to [`detected_backend`]. Hot kernels call this per invocation; after
/// initialization it is a single relaxed atomic load.
pub fn backend() -> Backend {
    match ACTIVE.load(Ordering::Relaxed) {
        0 => {
            // A racing second initializer computes the same value, so
            // the unsynchronized double-store is benign.
            let b = initial_backend();
            ACTIVE.store(b as u8, Ordering::Relaxed);
            b
        }
        v => Backend::from_u8(v),
    }
}

fn initial_backend() -> Backend {
    match std::env::var("SWIM_SIMD") {
        Ok(name) => {
            let b = Backend::parse(&name).unwrap_or_else(|| {
                panic!("SWIM_SIMD={name}: unknown backend (expected scalar, avx2, avx512, or neon)")
            });
            assert!(
                b.is_supported(),
                "SWIM_SIMD={name}: backend not supported on this host (available: {})",
                available_names()
            );
            b
        }
        Err(_) => detected_backend(),
    }
}

fn available_names() -> String {
    available_backends().iter().map(|b| b.name()).collect::<Vec<_>>().join(", ")
}

/// Sets the active backend for the rest of the process.
///
/// Overrides both autodetection and `SWIM_SIMD`; the `--simd` / `[run]
/// simd` experiment knob routes through here. Fails (leaving the active
/// backend unchanged) if the host cannot execute `b`.
pub fn set_backend(b: Backend) -> Result<(), String> {
    if !b.is_supported() {
        return Err(format!(
            "SIMD backend '{}' is not supported on this host (available: {})",
            b.name(),
            available_names()
        ));
    }
    ACTIVE.store(b as u8, Ordering::Relaxed);
    Ok(())
}

/// Runs `f` with `b` as the active backend, restoring the previous
/// backend afterwards (also on panic).
///
/// The backend is process-global, so scopes are serialized by an
/// internal mutex — this is the only safe way for tests and benches to
/// iterate backends while the rest of the suite runs in parallel
/// threads. Fails without running `f` if `b` is unsupported.
pub fn with_backend<R>(b: Backend, f: impl FnOnce() -> R) -> Result<R, String> {
    if !b.is_supported() {
        return Err(format!(
            "SIMD backend '{}' is not supported on this host (available: {})",
            b.name(),
            available_names()
        ));
    }
    let _guard = OVERRIDE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    struct Restore(Backend);
    impl Drop for Restore {
        fn drop(&mut self) {
            ACTIVE.store(self.0 as u8, Ordering::Relaxed);
        }
    }
    let restore = Restore(backend());
    ACTIVE.store(b as u8, Ordering::Relaxed);
    let out = f();
    drop(restore);
    Ok(out)
}

/// The widest lane count any backend uses (AVX-512), sized for
/// fixed-size stack staging buffers in generic kernel bodies.
const MAX_LANES: usize = 16;

/// One backend's `f32` vector operations.
///
/// Kernel bodies are written once, generically over this trait, with
/// `#[inline(always)]` all the way down; each backend's public entry
/// point is a `#[target_feature]` wrapper that monomorphizes the body,
/// so the intrinsics inline into a function that is allowed to use
/// them. All methods are `unsafe` because the caller must guarantee the
/// instruction set is actually available (the dispatcher only selects
/// backends that passed feature detection) and that raw-pointer
/// loads/stores cover `LANES` valid elements.
pub trait SimdLane {
    /// `f32` elements per vector.
    const LANES: usize;
    /// The vector register type.
    type V: Copy;
    /// Broadcasts one value to every lane.
    ///
    /// # Safety
    /// The backend's instruction set must be available.
    unsafe fn splat(x: f32) -> Self::V;
    /// Loads `LANES` consecutive values (unaligned).
    ///
    /// # Safety
    /// Instruction set available; `ptr..ptr+LANES` readable.
    unsafe fn load(ptr: *const f32) -> Self::V;
    /// Stores `LANES` consecutive values (unaligned).
    ///
    /// # Safety
    /// Instruction set available; `ptr..ptr+LANES` writable.
    unsafe fn store(ptr: *mut f32, v: Self::V);
    /// Lanewise `a + b`.
    ///
    /// # Safety
    /// The backend's instruction set must be available.
    unsafe fn add(a: Self::V, b: Self::V) -> Self::V;
    /// Lanewise `a - b`.
    ///
    /// # Safety
    /// The backend's instruction set must be available.
    unsafe fn sub(a: Self::V, b: Self::V) -> Self::V;
    /// Lanewise `a * b`.
    ///
    /// # Safety
    /// The backend's instruction set must be available.
    unsafe fn mul(a: Self::V, b: Self::V) -> Self::V;
    /// Lanewise `a / b`.
    ///
    /// # Safety
    /// The backend's instruction set must be available.
    unsafe fn div(a: Self::V, b: Self::V) -> Self::V;
    /// Lanewise round-to-nearest with ties away from zero — exactly
    /// `f32::round` per lane, including `-0.0`, ±∞, and NaN.
    ///
    /// # Safety
    /// The backend's instruction set must be available.
    unsafe fn round_ties_away(v: Self::V) -> Self::V;
    /// Lanewise `if a > b { t } else { f }` (an unordered compare with
    /// NaN selects `f`).
    ///
    /// # Safety
    /// The backend's instruction set must be available.
    unsafe fn select_gt(a: Self::V, b: Self::V, t: Self::V, f: Self::V) -> Self::V;
    /// Lanewise `if a == b { t } else { f }` (NaN compares unequal, so
    /// `select_eq(v, v, ..)` is a NaN filter).
    ///
    /// # Safety
    /// The backend's instruction set must be available.
    unsafe fn select_eq(a: Self::V, b: Self::V, t: Self::V, f: Self::V) -> Self::V;
    /// Bit `t` of the result is set iff lane `t` is `> 0.0`.
    ///
    /// # Safety
    /// The backend's instruction set must be available.
    unsafe fn gt_zero_bits(v: Self::V) -> u32;
}

/// The reference lane: plain scalar Rust, one element at a time.
#[derive(Debug, Clone, Copy)]
pub struct ScalarLane;

impl SimdLane for ScalarLane {
    const LANES: usize = 1;
    type V = f32;
    #[inline(always)]
    unsafe fn splat(x: f32) -> f32 {
        x
    }
    #[inline(always)]
    unsafe fn load(ptr: *const f32) -> f32 {
        unsafe { *ptr }
    }
    #[inline(always)]
    unsafe fn store(ptr: *mut f32, v: f32) {
        unsafe { *ptr = v }
    }
    #[inline(always)]
    unsafe fn add(a: f32, b: f32) -> f32 {
        a + b
    }
    #[inline(always)]
    unsafe fn sub(a: f32, b: f32) -> f32 {
        a - b
    }
    #[inline(always)]
    unsafe fn mul(a: f32, b: f32) -> f32 {
        a * b
    }
    #[inline(always)]
    unsafe fn div(a: f32, b: f32) -> f32 {
        a / b
    }
    #[inline(always)]
    unsafe fn round_ties_away(v: f32) -> f32 {
        v.round()
    }
    #[inline(always)]
    unsafe fn select_gt(a: f32, b: f32, t: f32, f: f32) -> f32 {
        if a > b {
            t
        } else {
            f
        }
    }
    #[inline(always)]
    unsafe fn select_eq(a: f32, b: f32, t: f32, f: f32) -> f32 {
        if a == b {
            t
        } else {
            f
        }
    }
    #[inline(always)]
    unsafe fn gt_zero_bits(v: f32) -> u32 {
        (v > 0.0) as u32
    }
}

// ---------------------------------------------------------------------
// Generic kernel bodies. Each is `#[inline(always)]` so it flattens
// into the `#[target_feature]` wrapper that monomorphizes it; the
// scalar tails use the same expressions as the `ScalarLane` lane ops,
// so every backend computes identical bits on the remainder.
// ---------------------------------------------------------------------

/// `x[i] = max(x[i], 0)` (NaN and `-0.0` map to `+0.0`) while recording
/// `x[i] > 0.0` into `mask`.
#[inline(always)]
unsafe fn relu_forward_body<L: SimdLane>(x: &mut [f32], mask: &mut Vec<bool>) {
    mask.reserve(x.len());
    let n = x.len();
    let ptr = x.as_mut_ptr();
    unsafe {
        let zero = L::splat(0.0);
        let mut i = 0;
        while i + L::LANES <= n {
            let v = L::load(ptr.add(i));
            let bits = L::gt_zero_bits(v);
            L::store(ptr.add(i), L::select_gt(v, zero, v, zero));
            for t in 0..L::LANES {
                mask.push(bits >> t & 1 == 1);
            }
            i += L::LANES;
        }
        while i < n {
            let v = *ptr.add(i);
            let keep = v > 0.0;
            mask.push(keep);
            *ptr.add(i) = if keep { v } else { 0.0 };
            i += 1;
        }
    }
}

/// `g[i] = if mask[i] { g[i] } else { 0.0 }` (the ReLU backward gate).
#[inline(always)]
unsafe fn relu_mask_body<L: SimdLane>(g: &mut [f32], mask: &[bool]) {
    let n = g.len();
    let ptr = g.as_mut_ptr();
    unsafe {
        let zero = L::splat(0.0);
        let mut lanes = [0.0f32; MAX_LANES];
        let mut i = 0;
        while i + L::LANES <= n {
            for (t, lane) in lanes[..L::LANES].iter_mut().enumerate() {
                *lane = mask[i + t] as u32 as f32;
            }
            let m = L::load(lanes.as_ptr());
            let v = L::load(ptr.add(i));
            L::store(ptr.add(i), L::select_gt(m, zero, v, zero));
            i += L::LANES;
        }
        while i < n {
            if !mask[i] {
                *ptr.add(i) = 0.0;
            }
            i += 1;
        }
    }
}

/// One batchnorm plane: `x_hat[i] = (input[i] - mean) * inv_std` and
/// `out[i] = gamma * x_hat[i] + beta` (separate multiply and add — no
/// FMA — so every backend produces identical bits).
#[inline(always)]
unsafe fn batchnorm_body<L: SimdLane>(
    input: &[f32],
    mean: f32,
    inv_std: f32,
    gamma: f32,
    beta: f32,
    x_hat: &mut [f32],
    out: &mut [f32],
) {
    let n = input.len();
    let ip = input.as_ptr();
    let xp = x_hat.as_mut_ptr();
    let op = out.as_mut_ptr();
    unsafe {
        let m = L::splat(mean);
        let is = L::splat(inv_std);
        let g = L::splat(gamma);
        let b = L::splat(beta);
        let mut i = 0;
        while i + L::LANES <= n {
            let v = L::load(ip.add(i));
            let xn = L::mul(L::sub(v, m), is);
            L::store(xp.add(i), xn);
            L::store(op.add(i), L::add(L::mul(g, xn), b));
            i += L::LANES;
        }
        while i < n {
            let xn = (*ip.add(i) - mean) * inv_std;
            *xp.add(i) = xn;
            *op.add(i) = gamma * xn + beta;
            i += 1;
        }
    }
}

/// Signed fake-quant round trip, the float-domain equivalent of the
/// integer-code reference
/// `(((x/scale).round() as i64).clamp(-m, m) as i32 as f32) * scale`:
/// NaN quantizes to code 0 (Rust's saturating float→int cast), ±∞
/// clamps to ±`max_code`, and the `+ 0.0` normalizes the `-0.0` a
/// negative zero code would otherwise produce (the integer path yields
/// `+0.0`). Exact as long as `max_code` is an integer below 2²⁴, which
/// every quantizer bit width in this workspace satisfies.
#[inline(always)]
unsafe fn fake_quant_signed_body<L: SimdLane>(x: &mut [f32], scale: f32, max_code: f32) {
    let n = x.len();
    let ptr = x.as_mut_ptr();
    unsafe {
        let s = L::splat(scale);
        let hi = L::splat(max_code);
        let lo = L::splat(-max_code);
        let zero = L::splat(0.0);
        let mut i = 0;
        while i + L::LANES <= n {
            let v = L::load(ptr.add(i));
            let d = L::div(v, s);
            let r = L::round_ties_away(d);
            let floor = L::select_gt(r, lo, r, lo);
            let c = L::select_gt(floor, hi, hi, floor);
            let deq = L::add(L::mul(c, s), zero);
            L::store(ptr.add(i), L::select_eq(d, d, deq, zero));
            i += L::LANES;
        }
        while i < n {
            let d = *ptr.add(i) / scale;
            let r = d.round();
            let floor = if r > -max_code { r } else { -max_code };
            let c = if floor > max_code { max_code } else { floor };
            // `!d.is_nan()` is the scalar spelling of the lane path's
            // `select_eq(d, d, ...)` NaN gate above.
            *ptr.add(i) = if d.is_nan() { 0.0 } else { c * scale + 0.0 };
            i += 1;
        }
    }
}

/// Unsigned (activation) fake-quant round trip, the vector form of
/// `((x.max(0.0) / scale).round().min(levels)) * scale` (NaN → 0).
#[inline(always)]
unsafe fn fake_quant_unsigned_body<L: SimdLane>(x: &mut [f32], scale: f32, levels: f32) {
    let n = x.len();
    let ptr = x.as_mut_ptr();
    unsafe {
        let s = L::splat(scale);
        let lv = L::splat(levels);
        let zero = L::splat(0.0);
        let mut i = 0;
        while i + L::LANES <= n {
            let v = L::load(ptr.add(i));
            let d = L::div(L::select_gt(v, zero, v, zero), s);
            let r = L::round_ties_away(d);
            let c = L::select_gt(r, lv, lv, r);
            L::store(ptr.add(i), L::mul(c, s));
            i += L::LANES;
        }
        while i < n {
            let v = *ptr.add(i);
            let d = if v > 0.0 { v } else { 0.0 } / scale;
            let r = d.round();
            let c = if r > levels { levels } else { r };
            *ptr.add(i) = c * scale;
            i += 1;
        }
    }
}

// ---------------------------------------------------------------------
// x86-64 wrappers.
// ---------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::*;
    use core::arch::x86_64::*;

    /// 8 × `f32` in a `ymm` register (AVX2 + FMA hosts).
    #[derive(Debug, Clone, Copy)]
    pub struct Avx2Lane;

    impl SimdLane for Avx2Lane {
        const LANES: usize = 8;
        type V = __m256;
        #[inline(always)]
        unsafe fn splat(x: f32) -> __m256 {
            unsafe { _mm256_set1_ps(x) }
        }
        #[inline(always)]
        unsafe fn load(ptr: *const f32) -> __m256 {
            unsafe { _mm256_loadu_ps(ptr) }
        }
        #[inline(always)]
        unsafe fn store(ptr: *mut f32, v: __m256) {
            unsafe { _mm256_storeu_ps(ptr, v) }
        }
        #[inline(always)]
        unsafe fn add(a: __m256, b: __m256) -> __m256 {
            unsafe { _mm256_add_ps(a, b) }
        }
        #[inline(always)]
        unsafe fn sub(a: __m256, b: __m256) -> __m256 {
            unsafe { _mm256_sub_ps(a, b) }
        }
        #[inline(always)]
        unsafe fn mul(a: __m256, b: __m256) -> __m256 {
            unsafe { _mm256_mul_ps(a, b) }
        }
        #[inline(always)]
        unsafe fn div(a: __m256, b: __m256) -> __m256 {
            unsafe { _mm256_div_ps(a, b) }
        }
        #[inline(always)]
        unsafe fn round_ties_away(v: __m256) -> __m256 {
            // The hardware rounds ties to even; fix the ties up to
            // ties-away: a tie is exactly `v - rne == copysign(0.5, v)`
            // (exact because |v - rne| <= 0.5 subtractions are exact),
            // and the fix adds copysign(1.0, v) to the even result.
            // ±∞/NaN make the compare false and pass through untouched.
            unsafe {
                let rne = _mm256_round_ps::<0x08>(v); // nearest-even, no exceptions
                let sign = _mm256_and_ps(v, _mm256_set1_ps(-0.0));
                let half = _mm256_or_ps(sign, _mm256_set1_ps(0.5));
                let one = _mm256_or_ps(sign, _mm256_set1_ps(1.0));
                let tie = _mm256_cmp_ps::<_CMP_EQ_OQ>(_mm256_sub_ps(v, rne), half);
                _mm256_blendv_ps(rne, _mm256_add_ps(rne, one), tie)
            }
        }
        #[inline(always)]
        unsafe fn select_gt(a: __m256, b: __m256, t: __m256, f: __m256) -> __m256 {
            unsafe { _mm256_blendv_ps(f, t, _mm256_cmp_ps::<_CMP_GT_OQ>(a, b)) }
        }
        #[inline(always)]
        unsafe fn select_eq(a: __m256, b: __m256, t: __m256, f: __m256) -> __m256 {
            unsafe { _mm256_blendv_ps(f, t, _mm256_cmp_ps::<_CMP_EQ_OQ>(a, b)) }
        }
        #[inline(always)]
        unsafe fn gt_zero_bits(v: __m256) -> u32 {
            unsafe {
                _mm256_movemask_ps(_mm256_cmp_ps::<_CMP_GT_OQ>(v, _mm256_setzero_ps())) as u32
            }
        }
    }

    /// 16 × `f32` in a `zmm` register (AVX-512F hosts).
    #[derive(Debug, Clone, Copy)]
    pub struct Avx512Lane;

    impl SimdLane for Avx512Lane {
        const LANES: usize = 16;
        type V = __m512;
        #[inline(always)]
        unsafe fn splat(x: f32) -> __m512 {
            unsafe { _mm512_set1_ps(x) }
        }
        #[inline(always)]
        unsafe fn load(ptr: *const f32) -> __m512 {
            unsafe { _mm512_loadu_ps(ptr) }
        }
        #[inline(always)]
        unsafe fn store(ptr: *mut f32, v: __m512) {
            unsafe { _mm512_storeu_ps(ptr, v) }
        }
        #[inline(always)]
        unsafe fn add(a: __m512, b: __m512) -> __m512 {
            unsafe { _mm512_add_ps(a, b) }
        }
        #[inline(always)]
        unsafe fn sub(a: __m512, b: __m512) -> __m512 {
            unsafe { _mm512_sub_ps(a, b) }
        }
        #[inline(always)]
        unsafe fn mul(a: __m512, b: __m512) -> __m512 {
            unsafe { _mm512_mul_ps(a, b) }
        }
        #[inline(always)]
        unsafe fn div(a: __m512, b: __m512) -> __m512 {
            unsafe { _mm512_div_ps(a, b) }
        }
        #[inline(always)]
        unsafe fn round_ties_away(v: __m512) -> __m512 {
            // Same tie fix as the AVX2 lane; bitwise sign ops go through
            // the integer domain because `_mm512_and_ps` needs AVX-512DQ
            // and this backend only requires AVX-512F.
            unsafe {
                let rne = _mm512_roundscale_ps::<0x08>(v); // nearest-even, no exceptions
                let sign = _mm512_and_si512(_mm512_castps_si512(v), _mm512_set1_epi32(i32::MIN));
                let half = _mm512_castsi512_ps(_mm512_or_si512(
                    sign,
                    _mm512_castps_si512(_mm512_set1_ps(0.5)),
                ));
                let one = _mm512_castsi512_ps(_mm512_or_si512(
                    sign,
                    _mm512_castps_si512(_mm512_set1_ps(1.0)),
                ));
                let tie = _mm512_cmp_ps_mask::<_CMP_EQ_OQ>(_mm512_sub_ps(v, rne), half);
                _mm512_mask_blend_ps(tie, rne, _mm512_add_ps(rne, one))
            }
        }
        #[inline(always)]
        unsafe fn select_gt(a: __m512, b: __m512, t: __m512, f: __m512) -> __m512 {
            unsafe { _mm512_mask_blend_ps(_mm512_cmp_ps_mask::<_CMP_GT_OQ>(a, b), f, t) }
        }
        #[inline(always)]
        unsafe fn select_eq(a: __m512, b: __m512, t: __m512, f: __m512) -> __m512 {
            unsafe { _mm512_mask_blend_ps(_mm512_cmp_ps_mask::<_CMP_EQ_OQ>(a, b), f, t) }
        }
        #[inline(always)]
        unsafe fn gt_zero_bits(v: __m512) -> u32 {
            unsafe { _mm512_cmp_ps_mask::<_CMP_GT_OQ>(v, _mm512_setzero_ps()) as u32 }
        }
    }

    macro_rules! x86_wrappers {
        ($feature:literal, $relu:ident, $mask:ident, $bn:ident, $fqs:ident, $fqu:ident, $lane:ty) => {
            #[target_feature(enable = $feature)]
            pub unsafe fn $relu(x: &mut [f32], mask: &mut Vec<bool>) {
                unsafe { relu_forward_body::<$lane>(x, mask) }
            }
            #[target_feature(enable = $feature)]
            pub unsafe fn $mask(g: &mut [f32], mask: &[bool]) {
                unsafe { relu_mask_body::<$lane>(g, mask) }
            }
            #[target_feature(enable = $feature)]
            #[allow(clippy::too_many_arguments)]
            pub unsafe fn $bn(
                input: &[f32],
                mean: f32,
                inv_std: f32,
                gamma: f32,
                beta: f32,
                x_hat: &mut [f32],
                out: &mut [f32],
            ) {
                unsafe { batchnorm_body::<$lane>(input, mean, inv_std, gamma, beta, x_hat, out) }
            }
            #[target_feature(enable = $feature)]
            pub unsafe fn $fqs(x: &mut [f32], scale: f32, max_code: f32) {
                unsafe { fake_quant_signed_body::<$lane>(x, scale, max_code) }
            }
            #[target_feature(enable = $feature)]
            pub unsafe fn $fqu(x: &mut [f32], scale: f32, levels: f32) {
                unsafe { fake_quant_unsigned_body::<$lane>(x, scale, levels) }
            }
        };
    }

    x86_wrappers!(
        "avx2",
        relu_forward_avx2,
        relu_mask_avx2,
        batchnorm_avx2,
        fake_quant_signed_avx2,
        fake_quant_unsigned_avx2,
        Avx2Lane
    );
    x86_wrappers!(
        "avx512f",
        relu_forward_avx512,
        relu_mask_avx512,
        batchnorm_avx512,
        fake_quant_signed_avx512,
        fake_quant_unsigned_avx512,
        Avx512Lane
    );

    /// `inout[i] = targets[i] + sigma * inout[i]`, 4 × `f64` lanes,
    /// explicit multiply then add (no FMA contraction).
    #[target_feature(enable = "avx2")]
    pub unsafe fn scale_add_f64_avx2(targets: &[f64], sigma: f64, inout: &mut [f64]) {
        let n = inout.len();
        let tp = targets.as_ptr();
        let op = inout.as_mut_ptr();
        unsafe {
            let s = _mm256_set1_pd(sigma);
            let mut i = 0;
            while i + 4 <= n {
                let z = _mm256_loadu_pd(op.add(i));
                let t = _mm256_loadu_pd(tp.add(i));
                _mm256_storeu_pd(op.add(i), _mm256_add_pd(t, _mm256_mul_pd(s, z)));
                i += 4;
            }
            while i < n {
                *op.add(i) = *tp.add(i) + sigma * *op.add(i);
                i += 1;
            }
        }
    }

    /// `inout[i] = targets[i] + sigma * inout[i]`, 8 × `f64` lanes.
    #[target_feature(enable = "avx512f")]
    pub unsafe fn scale_add_f64_avx512(targets: &[f64], sigma: f64, inout: &mut [f64]) {
        let n = inout.len();
        let tp = targets.as_ptr();
        let op = inout.as_mut_ptr();
        unsafe {
            let s = _mm512_set1_pd(sigma);
            let mut i = 0;
            while i + 8 <= n {
                let z = _mm512_loadu_pd(op.add(i));
                let t = _mm512_loadu_pd(tp.add(i));
                _mm512_storeu_pd(op.add(i), _mm512_add_pd(t, _mm512_mul_pd(s, z)));
                i += 8;
            }
            while i < n {
                *op.add(i) = *tp.add(i) + sigma * *op.add(i);
                i += 1;
            }
        }
    }
}

#[cfg(target_arch = "x86_64")]
pub use x86::{Avx2Lane, Avx512Lane};

// ---------------------------------------------------------------------
// AArch64 wrappers.
// ---------------------------------------------------------------------

#[cfg(target_arch = "aarch64")]
mod neon {
    use super::*;
    use core::arch::aarch64::*;

    /// 4 × `f32` in a NEON `q` register.
    #[derive(Debug, Clone, Copy)]
    pub struct NeonLane;

    impl SimdLane for NeonLane {
        const LANES: usize = 4;
        type V = float32x4_t;
        #[inline(always)]
        unsafe fn splat(x: f32) -> float32x4_t {
            unsafe { vdupq_n_f32(x) }
        }
        #[inline(always)]
        unsafe fn load(ptr: *const f32) -> float32x4_t {
            unsafe { vld1q_f32(ptr) }
        }
        #[inline(always)]
        unsafe fn store(ptr: *mut f32, v: float32x4_t) {
            unsafe { vst1q_f32(ptr, v) }
        }
        #[inline(always)]
        unsafe fn add(a: float32x4_t, b: float32x4_t) -> float32x4_t {
            unsafe { vaddq_f32(a, b) }
        }
        #[inline(always)]
        unsafe fn sub(a: float32x4_t, b: float32x4_t) -> float32x4_t {
            unsafe { vsubq_f32(a, b) }
        }
        #[inline(always)]
        unsafe fn mul(a: float32x4_t, b: float32x4_t) -> float32x4_t {
            unsafe { vmulq_f32(a, b) }
        }
        #[inline(always)]
        unsafe fn div(a: float32x4_t, b: float32x4_t) -> float32x4_t {
            unsafe { vdivq_f32(a, b) }
        }
        #[inline(always)]
        unsafe fn round_ties_away(v: float32x4_t) -> float32x4_t {
            // FRINTA rounds ties away from zero natively.
            unsafe { vrndaq_f32(v) }
        }
        #[inline(always)]
        unsafe fn select_gt(
            a: float32x4_t,
            b: float32x4_t,
            t: float32x4_t,
            f: float32x4_t,
        ) -> float32x4_t {
            unsafe { vbslq_f32(vcgtq_f32(a, b), t, f) }
        }
        #[inline(always)]
        unsafe fn select_eq(
            a: float32x4_t,
            b: float32x4_t,
            t: float32x4_t,
            f: float32x4_t,
        ) -> float32x4_t {
            unsafe { vbslq_f32(vceqq_f32(a, b), t, f) }
        }
        #[inline(always)]
        unsafe fn gt_zero_bits(v: float32x4_t) -> u32 {
            unsafe {
                let m = vcgtq_f32(v, vdupq_n_f32(0.0));
                (vgetq_lane_u32::<0>(m) & 1)
                    | ((vgetq_lane_u32::<1>(m) & 1) << 1)
                    | ((vgetq_lane_u32::<2>(m) & 1) << 2)
                    | ((vgetq_lane_u32::<3>(m) & 1) << 3)
            }
        }
    }

    #[target_feature(enable = "neon")]
    pub unsafe fn relu_forward_neon(x: &mut [f32], mask: &mut Vec<bool>) {
        unsafe { relu_forward_body::<NeonLane>(x, mask) }
    }
    #[target_feature(enable = "neon")]
    pub unsafe fn relu_mask_neon(g: &mut [f32], mask: &[bool]) {
        unsafe { relu_mask_body::<NeonLane>(g, mask) }
    }
    #[target_feature(enable = "neon")]
    #[allow(clippy::too_many_arguments)]
    pub unsafe fn batchnorm_neon(
        input: &[f32],
        mean: f32,
        inv_std: f32,
        gamma: f32,
        beta: f32,
        x_hat: &mut [f32],
        out: &mut [f32],
    ) {
        unsafe { batchnorm_body::<NeonLane>(input, mean, inv_std, gamma, beta, x_hat, out) }
    }
    #[target_feature(enable = "neon")]
    pub unsafe fn fake_quant_signed_neon(x: &mut [f32], scale: f32, max_code: f32) {
        unsafe { fake_quant_signed_body::<NeonLane>(x, scale, max_code) }
    }
    #[target_feature(enable = "neon")]
    pub unsafe fn fake_quant_unsigned_neon(x: &mut [f32], scale: f32, levels: f32) {
        unsafe { fake_quant_unsigned_body::<NeonLane>(x, scale, levels) }
    }

    /// `inout[i] = targets[i] + sigma * inout[i]`, 2 × `f64` lanes,
    /// explicit multiply then add (no FMA contraction).
    #[target_feature(enable = "neon")]
    pub unsafe fn scale_add_f64_neon(targets: &[f64], sigma: f64, inout: &mut [f64]) {
        let n = inout.len();
        let tp = targets.as_ptr();
        let op = inout.as_mut_ptr();
        unsafe {
            let s = vdupq_n_f64(sigma);
            let mut i = 0;
            while i + 2 <= n {
                let z = vld1q_f64(op.add(i));
                let t = vld1q_f64(tp.add(i));
                vst1q_f64(op.add(i), vaddq_f64(t, vmulq_f64(s, z)));
                i += 2;
            }
            while i < n {
                *op.add(i) = *tp.add(i) + sigma * *op.add(i);
                i += 1;
            }
        }
    }
}

#[cfg(target_arch = "aarch64")]
pub use neon::NeonLane;

// ---------------------------------------------------------------------
// Public dispatched kernels.
// ---------------------------------------------------------------------

macro_rules! dispatch {
    ($scalar:expr, $avx2:expr, $avx512:expr, $neon:expr) => {
        match backend() {
            Backend::Scalar => $scalar,
            #[cfg(target_arch = "x86_64")]
            Backend::Avx2 => $avx2,
            #[cfg(target_arch = "x86_64")]
            Backend::Avx512 => $avx512,
            #[cfg(target_arch = "aarch64")]
            Backend::Neon => $neon,
            #[allow(unreachable_patterns)]
            _ => unreachable!("active SIMD backend unsupported on this architecture"),
        }
    };
}

/// ReLU forward: clamps `x` to `max(x, 0)` in place (NaN and `-0.0`
/// become `+0.0`) and appends each element's pre-clamp `> 0` flag to
/// `mask` (cleared capacity is reused, so the steady state allocates
/// nothing once `mask` has grown to the layer's size).
///
/// Bit-identical across backends.
#[allow(unused_variables)]
pub fn relu_forward_inplace(x: &mut [f32], mask: &mut Vec<bool>) {
    dispatch!(
        unsafe { relu_forward_body::<ScalarLane>(x, mask) },
        unsafe { x86::relu_forward_avx2(x, mask) },
        unsafe { x86::relu_forward_avx512(x, mask) },
        unsafe { neon::relu_forward_neon(x, mask) }
    )
}

/// ReLU backward: zeroes `g[i]` wherever `mask[i]` is false, in place.
///
/// Bit-identical across backends.
///
/// # Panics
///
/// Panics if `g` and `mask` lengths differ.
#[allow(unused_variables)]
pub fn relu_apply_mask(g: &mut [f32], mask: &[bool]) {
    assert_eq!(g.len(), mask.len(), "relu_apply_mask: gradient/mask length mismatch");
    dispatch!(
        unsafe { relu_mask_body::<ScalarLane>(g, mask) },
        unsafe { x86::relu_mask_avx2(g, mask) },
        unsafe { x86::relu_mask_avx512(g, mask) },
        unsafe { neon::relu_mask_neon(g, mask) }
    )
}

/// Batchnorm normalize for one plane (one `(item, channel)` slab):
/// `x_hat = (input - mean) * inv_std`, `out = gamma * x_hat + beta`.
///
/// Bit-identical across backends (no FMA contraction).
///
/// # Panics
///
/// Panics if the three slices differ in length.
#[allow(unused_variables)]
pub fn batchnorm_normalize(
    input: &[f32],
    mean: f32,
    inv_std: f32,
    gamma: f32,
    beta: f32,
    x_hat: &mut [f32],
    out: &mut [f32],
) {
    assert_eq!(input.len(), x_hat.len(), "batchnorm_normalize: x_hat length mismatch");
    assert_eq!(input.len(), out.len(), "batchnorm_normalize: out length mismatch");
    dispatch!(
        unsafe { batchnorm_body::<ScalarLane>(input, mean, inv_std, gamma, beta, x_hat, out) },
        unsafe { x86::batchnorm_avx2(input, mean, inv_std, gamma, beta, x_hat, out) },
        unsafe { x86::batchnorm_avx512(input, mean, inv_std, gamma, beta, x_hat, out) },
        unsafe { neon::batchnorm_neon(input, mean, inv_std, gamma, beta, x_hat, out) }
    )
}

/// Symmetric signed fake-quant round trip in place:
/// `x = clamp(round(x / scale), -max_code, max_code) * scale`, with NaN
/// mapping to `0.0` exactly like the integer-code reference.
///
/// Bit-identical across backends. `scale` must be positive and
/// `max_code` a nonnegative integer below 2²⁴ (the float-domain clamp
/// is only exact for exactly-representable codes).
#[allow(unused_variables)]
pub fn fake_quant_signed_inplace(x: &mut [f32], scale: f32, max_code: f32) {
    debug_assert!(scale > 0.0, "fake_quant_signed_inplace: scale must be positive");
    debug_assert!(
        max_code >= 0.0 && max_code < (1 << 24) as f32 && max_code.fract() == 0.0,
        "fake_quant_signed_inplace: max_code must be an integer below 2^24"
    );
    dispatch!(
        unsafe { fake_quant_signed_body::<ScalarLane>(x, scale, max_code) },
        unsafe { x86::fake_quant_signed_avx2(x, scale, max_code) },
        unsafe { x86::fake_quant_signed_avx512(x, scale, max_code) },
        unsafe { neon::fake_quant_signed_neon(x, scale, max_code) }
    )
}

/// Unsigned (activation) fake-quant round trip in place:
/// `x = min(round(max(x, 0) / scale), levels) * scale` (NaN → `0.0`).
///
/// Bit-identical across backends. `scale` must be positive and
/// `levels` a nonnegative integer below 2²⁴.
#[allow(unused_variables)]
pub fn fake_quant_unsigned_inplace(x: &mut [f32], scale: f32, levels: f32) {
    debug_assert!(scale > 0.0, "fake_quant_unsigned_inplace: scale must be positive");
    debug_assert!(
        levels >= 0.0 && levels < (1 << 24) as f32 && levels.fract() == 0.0,
        "fake_quant_unsigned_inplace: levels must be an integer below 2^24"
    );
    dispatch!(
        unsafe { fake_quant_unsigned_body::<ScalarLane>(x, scale, levels) },
        unsafe { x86::fake_quant_unsigned_avx2(x, scale, levels) },
        unsafe { x86::fake_quant_unsigned_avx512(x, scale, levels) },
        unsafe { neon::fake_quant_unsigned_neon(x, scale, levels) }
    )
}

fn scale_add_f64_scalar(targets: &[f64], sigma: f64, inout: &mut [f64]) {
    for (o, &t) in inout.iter_mut().zip(targets) {
        *o = t + sigma * *o;
    }
}

/// Device-programming kernel: `inout[i] = targets[i] + sigma *
/// inout[i]`, where `inout` holds pre-drawn standard-normal samples on
/// entry and the programmed conductances on exit.
///
/// Bit-identical across backends: the multiply and add round separately
/// (never an FMA), matching `Prng::normal(target, sigma)` which returns
/// exactly `target + sigma * z`.
///
/// # Panics
///
/// Panics if the slice lengths differ.
#[allow(unused_variables)]
pub fn scale_add_f64(targets: &[f64], sigma: f64, inout: &mut [f64]) {
    assert_eq!(targets.len(), inout.len(), "scale_add_f64: length mismatch");
    dispatch!(
        scale_add_f64_scalar(targets, sigma, inout),
        unsafe { x86::scale_add_f64_avx2(targets, sigma, inout) },
        unsafe { x86::scale_add_f64_avx512(targets, sigma, inout) },
        unsafe { neon::scale_add_f64_neon(targets, sigma, inout) }
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_name_parse_round_trips() {
        for b in Backend::ALL {
            assert_eq!(Backend::parse(b.name()), Some(b));
        }
        assert_eq!(Backend::parse("sse9"), None);
    }

    #[test]
    fn detection_always_yields_a_supported_backend() {
        let b = detected_backend();
        assert!(b.is_supported());
        let avail = available_backends();
        assert!(avail.contains(&Backend::Scalar));
        assert!(avail.contains(&b));
    }

    #[test]
    fn with_backend_restores_previous_backend() {
        let before = backend();
        let ran = with_backend(Backend::Scalar, || {
            assert_eq!(backend(), Backend::Scalar);
            42
        })
        .unwrap();
        assert_eq!(ran, 42);
        assert_eq!(backend(), before);
    }

    #[test]
    fn with_backend_restores_on_panic() {
        let before = backend();
        let result = std::panic::catch_unwind(|| {
            let _ = with_backend(Backend::Scalar, || panic!("boom"));
        });
        assert!(result.is_err());
        assert_eq!(backend(), before);
    }

    #[test]
    fn unsupported_backend_is_rejected() {
        #[cfg(target_arch = "x86_64")]
        let foreign = Backend::Neon;
        #[cfg(not(target_arch = "x86_64"))]
        let foreign = Backend::Avx2;
        assert!(!foreign.is_supported());
        assert!(set_backend(foreign).is_err());
        assert!(with_backend(foreign, || ()).is_err());
    }

    /// The tie-fix emulation of `f32::round` must match it exactly on
    /// every backend, across ties, near-ties, signed zeros, huge
    /// values, infinities, and NaN.
    #[test]
    fn round_ties_away_matches_f32_round_on_every_backend() {
        let cases: Vec<f32> = vec![
            0.0,
            -0.0,
            0.25,
            0.5,
            -0.5,
            0.49999997,
            1.5,
            2.5,
            -2.5,
            3.5,
            -3.5,
            7.499_999_5, // one ulp below 7.5: a near-tie that must round down
            100.5,
            -100.5,
            8388607.5, // 2^23 - 0.5: largest f32 with a fractional part tie
            8388608.0, // 2^23: integers from here on
            1e30,
            -1e30,
            f32::INFINITY,
            f32::NEG_INFINITY,
            f32::NAN,
            f32::MIN_POSITIVE,
            -f32::MIN_POSITIVE,
            1e-40, // subnormal
        ];
        // Exercise the rounding through the signed fake-quant kernel
        // with scale 1 and a huge clamp, which reduces to `round` for
        // finite in-range values.
        for b in available_backends() {
            let mut got: Vec<f32> = cases.clone();
            with_backend(b, || fake_quant_signed_inplace(&mut got, 1.0, 16_777_215.0)).unwrap();
            for (&x, &g) in cases.iter().zip(&got) {
                let want = if x.is_nan() {
                    0.0
                } else {
                    x.round().clamp(-16_777_215.0, 16_777_215.0) + 0.0
                };
                assert_eq!(
                    g.to_bits(),
                    want.to_bits(),
                    "backend {b}: round({x}) = {g}, want {want}"
                );
            }
        }
    }

    #[test]
    fn elementwise_kernels_bit_identical_across_backends() {
        let input: Vec<f32> = (0..67)
            .map(|i| (i as f32 - 33.0) * 0.37)
            .chain([f32::NAN, f32::INFINITY, f32::NEG_INFINITY, -0.0, 1e-40])
            .collect();

        let reference = with_backend(Backend::Scalar, || {
            let mut x = input.clone();
            let mut mask = Vec::new();
            relu_forward_inplace(&mut x, &mut mask);
            let mut g = input.clone();
            relu_apply_mask(&mut g, &mask);
            let mut q = input.clone();
            fake_quant_signed_inplace(&mut q, 0.1, 127.0);
            let mut u = input.clone();
            fake_quant_unsigned_inplace(&mut u, 0.1, 255.0);
            let (mut xh, mut out) = (vec![0.0f32; input.len()], vec![0.0f32; input.len()]);
            batchnorm_normalize(&input, 0.3, 1.7, 1.1, -0.2, &mut xh, &mut out);
            (x, mask, g, q, u, xh, out)
        })
        .unwrap();

        for b in available_backends() {
            let got = with_backend(b, || {
                let mut x = input.clone();
                let mut mask = Vec::new();
                relu_forward_inplace(&mut x, &mut mask);
                let mut g = input.clone();
                relu_apply_mask(&mut g, &mask);
                let mut q = input.clone();
                fake_quant_signed_inplace(&mut q, 0.1, 127.0);
                let mut u = input.clone();
                fake_quant_unsigned_inplace(&mut u, 0.1, 255.0);
                let (mut xh, mut out) = (vec![0.0f32; input.len()], vec![0.0f32; input.len()]);
                batchnorm_normalize(&input, 0.3, 1.7, 1.1, -0.2, &mut xh, &mut out);
                (x, mask, g, q, u, xh, out)
            })
            .unwrap();
            let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&got.0), bits(&reference.0), "relu forward, backend {b}");
            assert_eq!(got.1, reference.1, "relu mask, backend {b}");
            assert_eq!(bits(&got.2), bits(&reference.2), "relu backward, backend {b}");
            assert_eq!(bits(&got.3), bits(&reference.3), "fake quant signed, backend {b}");
            assert_eq!(bits(&got.4), bits(&reference.4), "fake quant unsigned, backend {b}");
            assert_eq!(bits(&got.5), bits(&reference.5), "batchnorm x_hat, backend {b}");
            assert_eq!(bits(&got.6), bits(&reference.6), "batchnorm out, backend {b}");
        }
    }

    #[test]
    fn scale_add_f64_bit_identical_across_backends() {
        let targets: Vec<f64> = (0..37).map(|i| i as f64 * 0.71 - 11.0).collect();
        let zs: Vec<f64> = (0..37).map(|i| (i as f64 * 1.37).sin()).collect();
        let reference: Vec<f64> = targets.iter().zip(&zs).map(|(&t, &z)| t + 0.1 * z).collect();
        for b in available_backends() {
            let mut inout = zs.clone();
            with_backend(b, || scale_add_f64(&targets, 0.1, &mut inout)).unwrap();
            let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&inout), bits(&reference), "backend {b}");
        }
    }
}
