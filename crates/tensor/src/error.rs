//! Error types shared by the tensor crate.

use std::error::Error;
use std::fmt;

/// Error produced by fallible tensor operations.
///
/// Most hot-path tensor methods panic on shape mismatch (the mismatch is a
/// programming error, and layers validate their configuration up front);
/// the fallible constructors and reshape entry points return this type so
/// callers building tensors from external data can recover.
///
/// # Example
///
/// ```
/// use swim_tensor::{Tensor, TensorError};
///
/// let err = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[2, 2]).unwrap_err();
/// assert!(matches!(err, TensorError::LengthMismatch { .. }));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The data length does not match the product of the shape dimensions.
    LengthMismatch {
        /// Number of elements provided.
        len: usize,
        /// Shape requested.
        shape: Vec<usize>,
    },
    /// Two tensors were expected to have identical shapes.
    ShapeMismatch {
        /// Shape of the left operand.
        left: Vec<usize>,
        /// Shape of the right operand.
        right: Vec<usize>,
    },
    /// A reshape would change the number of elements.
    ReshapeMismatch {
        /// Element count of the source tensor.
        len: usize,
        /// Shape requested.
        shape: Vec<usize>,
    },
    /// An operation required a tensor of a particular rank.
    RankMismatch {
        /// Rank expected by the operation.
        expected: usize,
        /// Rank of the tensor supplied.
        actual: usize,
    },
    /// An index was out of bounds for the given dimension.
    IndexOutOfBounds {
        /// Axis on which the index was out of range.
        axis: usize,
        /// Offending index.
        index: usize,
        /// Dimension size along that axis.
        size: usize,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::LengthMismatch { len, shape } => {
                write!(f, "data length {len} does not match shape {shape:?}")
            }
            TensorError::ShapeMismatch { left, right } => {
                write!(f, "shape mismatch: {left:?} vs {right:?}")
            }
            TensorError::ReshapeMismatch { len, shape } => {
                write!(f, "cannot reshape {len} elements into {shape:?}")
            }
            TensorError::RankMismatch { expected, actual } => {
                write!(f, "expected rank {expected}, found rank {actual}")
            }
            TensorError::IndexOutOfBounds { axis, index, size } => {
                write!(f, "index {index} out of bounds for axis {axis} of size {size}")
            }
        }
    }
}

impl Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errs = [
            TensorError::LengthMismatch { len: 3, shape: vec![2, 2] },
            TensorError::ShapeMismatch { left: vec![1], right: vec![2] },
            TensorError::ReshapeMismatch { len: 4, shape: vec![3] },
            TensorError::RankMismatch { expected: 2, actual: 3 },
            TensorError::IndexOutOfBounds { axis: 0, index: 5, size: 4 },
        ];
        for e in errs {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
