//! Deterministic, splittable pseudo-random number generation.
//!
//! Every experiment in the SWIM reproduction is a Monte Carlo simulation of
//! device programming noise; the paper reports statistics over 3,000 runs.
//! Reproducibility therefore demands a generator whose stream is stable
//! across program runs, platforms, and dependency upgrades. [`Prng`]
//! implements xoshiro256++ (public-domain algorithm by Blackman & Vigna)
//! seeded through SplitMix64, with:
//!
//! * [`Prng::normal`] — Gaussian sampling via the polar Box–Muller method,
//!   used by the device variation model (paper Eq. 16);
//! * [`Prng::fork`] — independent child streams so Monte Carlo runs can be
//!   farmed out to threads while remaining deterministic regardless of
//!   scheduling order.

/// Deterministic xoshiro256++ pseudo-random number generator.
///
/// # Example
///
/// ```
/// use swim_tensor::Prng;
///
/// let mut a = Prng::seed_from_u64(42);
/// let mut b = Prng::seed_from_u64(42);
/// assert_eq!(a.next_u64(), b.next_u64());
///
/// // Forked streams are independent of the parent's subsequent draws.
/// let mut child = a.fork(0);
/// let x: f64 = child.normal(0.0, 1.0);
/// assert!(x.is_finite());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Prng {
    state: [u64; 4],
    /// Cached second output of the last Box–Muller pair.
    spare_normal: Option<f64>,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Prng {
    /// Creates a generator from a 64-bit seed.
    ///
    /// The full 256-bit state is expanded from the seed with SplitMix64, as
    /// recommended by the xoshiro authors.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let state =
            [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)];
        Prng { state, spare_normal: None }
    }

    /// Next raw 64-bit output of xoshiro256++.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f32` in `[0, 1)`.
    pub fn uniform_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }

    /// Uniform `f64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo <= hi, "uniform_range requires lo <= hi");
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)` using Lemire's unbiased method.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below requires n > 0");
        let n = n as u64;
        // Lemire's multiply-shift rejection method.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut l = m as u64;
        if l < n {
            let t = n.wrapping_neg() % n;
            while l < t {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                l = m as u64;
            }
        }
        (m >> 64) as usize
    }

    /// Gaussian sample with the given mean and standard deviation.
    ///
    /// Uses the polar Box–Muller transform; the second value of each pair is
    /// cached, so consecutive calls cost one transform per two samples.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        if let Some(z) = self.spare_normal.take() {
            return mean + std_dev * z;
        }
        loop {
            let u = 2.0 * self.uniform() - 1.0;
            let v = 2.0 * self.uniform() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                let factor = (-2.0 * s.ln() / s).sqrt();
                self.spare_normal = Some(v * factor);
                return mean + std_dev * (u * factor);
            }
        }
    }

    /// Gaussian sample as `f32`.
    pub fn normal_f32(&mut self, mean: f32, std_dev: f32) -> f32 {
        self.normal(mean as f64, std_dev as f64) as f32
    }

    /// Creates an independent child generator.
    ///
    /// The child stream is a pure function of the parent's *current* state
    /// and `stream`, so forking the same parent with distinct stream ids
    /// yields decorrelated generators; the parent's own stream is not
    /// advanced.
    pub fn fork(&self, stream: u64) -> Prng {
        // Mix the parent state with the stream id through SplitMix64 to
        // decorrelate children from each other and from the parent.
        let mut sm =
            self.state.iter().fold(stream.wrapping_mul(0xA076_1D64_78BD_642F), |acc, &s| {
                acc.rotate_left(17) ^ s.wrapping_mul(0xE703_7ED1_A0B4_28DB)
            });
        let state =
            [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)];
        Prng { state, spare_normal: None }
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below(i + 1);
            slice.swap(i, j);
        }
    }

    /// Draws `k` distinct indices from `[0, n)` (a uniform sample without
    /// replacement), in random order.
    ///
    /// # Panics
    ///
    /// Panics if `k > n`.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} distinct values from {n}");
        // Partial Fisher-Yates over an index vector.
        let mut idx: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = i + self.below(n - i);
            idx.swap(i, j);
        }
        idx.truncate(k);
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_stream() {
        let mut a = Prng::seed_from_u64(123);
        let mut b = Prng::seed_from_u64(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Prng::seed_from_u64(1);
        let mut b = Prng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut rng = Prng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.uniform();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn uniform_mean_near_half() {
        let mut rng = Prng::seed_from_u64(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.uniform()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn normal_moments() {
        let mut rng = Prng::seed_from_u64(5);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal(2.0, 3.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.05, "mean {mean}");
        assert!((var - 9.0).abs() < 0.2, "var {var}");
    }

    #[test]
    fn normal_tail_fractions() {
        // ~4.55% of mass lies beyond 2 sigma for a Gaussian.
        let mut rng = Prng::seed_from_u64(17);
        let n = 200_000;
        let beyond = (0..n).filter(|_| rng.normal(0.0, 1.0).abs() > 2.0).count() as f64 / n as f64;
        assert!((beyond - 0.0455).abs() < 0.005, "tail {beyond}");
    }

    #[test]
    fn below_is_unbiased_small_n() {
        let mut rng = Prng::seed_from_u64(9);
        let mut counts = [0usize; 3];
        for _ in 0..90_000 {
            counts[rng.below(3)] += 1;
        }
        for &c in &counts {
            assert!((c as i64 - 30_000).abs() < 1_500, "counts {counts:?}");
        }
    }

    #[test]
    fn fork_streams_decorrelated() {
        let parent = Prng::seed_from_u64(99);
        let mut c0 = parent.fork(0);
        let mut c1 = parent.fork(1);
        let matches = (0..64).filter(|_| c0.next_u64() == c1.next_u64()).count();
        assert_eq!(matches, 0);
    }

    #[test]
    fn fork_is_deterministic() {
        let parent = Prng::seed_from_u64(4);
        let mut a = parent.fork(10);
        let mut b = parent.fork(10);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Prng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn sample_indices_distinct() {
        let mut rng = Prng::seed_from_u64(21);
        let sample = rng.sample_indices(50, 20);
        assert_eq!(sample.len(), 20);
        let mut sorted = sample.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 20);
        assert!(sorted.iter().all(|&i| i < 50));
    }

    #[test]
    #[should_panic(expected = "n > 0")]
    fn below_zero_panics() {
        Prng::seed_from_u64(0).below(0);
    }
}
