//! Tensor shapes and row-major stride arithmetic.

use std::fmt;

/// The extents of a tensor along each axis, in row-major order.
///
/// `Shape` is a thin, validated wrapper over a `Vec<usize>` providing the
/// stride arithmetic shared by every indexing operation in the crate.
///
/// # Example
///
/// ```
/// use swim_tensor::Shape;
///
/// let s = Shape::new(&[2, 3, 4]);
/// assert_eq!(s.len(), 24);
/// assert_eq!(s.strides(), vec![12, 4, 1]);
/// assert_eq!(s.offset(&[1, 2, 3]), 23);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Creates a shape from a slice of dimension extents.
    ///
    /// A zero-length slice denotes a scalar; zero-sized dimensions are
    /// permitted (the tensor is then empty).
    pub fn new(dims: &[usize]) -> Self {
        Shape(dims.to_vec())
    }

    /// Number of axes (the tensor's rank).
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Total number of elements: the product of all extents.
    pub fn len(&self) -> usize {
        self.0.iter().product()
    }

    /// Returns `true` if the shape contains no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The extents as a slice.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Extent along `axis`.
    ///
    /// # Panics
    ///
    /// Panics if `axis >= rank`.
    pub fn dim(&self, axis: usize) -> usize {
        self.0[axis]
    }

    /// Row-major strides: element distance between consecutive indices on
    /// each axis.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.0.len()];
        for i in (0..self.0.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.0[i + 1];
        }
        strides
    }

    /// Linear offset of a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if `idx.len() != rank` or any index is out of range.
    pub fn offset(&self, idx: &[usize]) -> usize {
        assert_eq!(
            idx.len(),
            self.0.len(),
            "index rank {} does not match shape rank {}",
            idx.len(),
            self.0.len()
        );
        let mut off = 0usize;
        let mut stride = 1usize;
        for axis in (0..self.0.len()).rev() {
            let i = idx[axis];
            let d = self.0[axis];
            assert!(i < d, "index {i} out of bounds for axis {axis} of size {d}");
            off += i * stride;
            stride *= d;
        }
        off
    }

    /// Whether two shapes have identical extents.
    pub fn same_as(&self, other: &Shape) -> bool {
        self.0 == other.0
    }

    /// Replaces the extents in place, reusing the existing allocation.
    ///
    /// This is the allocation-free counterpart of `Shape::new` used by
    /// buffer-recycling hot paths (the activation arena): once the
    /// backing vector has grown to the deepest rank seen, later calls
    /// perform no heap allocation.
    pub fn set_dims(&mut self, dims: &[usize]) {
        self.0.clear();
        self.0.extend_from_slice(dims);
    }

    /// Overwrites the extent of one axis.
    ///
    /// # Panics
    ///
    /// Panics if `axis >= rank`.
    pub fn set_dim(&mut self, axis: usize, extent: usize) {
        self.0[axis] = extent;
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape(dims)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, "x")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_shape() {
        let s = Shape::new(&[]);
        assert_eq!(s.rank(), 0);
        assert_eq!(s.len(), 1);
        assert_eq!(s.offset(&[]), 0);
    }

    #[test]
    fn strides_row_major() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.strides(), vec![12, 4, 1]);
        assert_eq!(s.offset(&[0, 0, 0]), 0);
        assert_eq!(s.offset(&[1, 0, 0]), 12);
        assert_eq!(s.offset(&[0, 2, 1]), 9);
    }

    #[test]
    fn zero_dim_is_empty() {
        let s = Shape::new(&[3, 0, 2]);
        assert_eq!(s.len(), 0);
        assert!(s.is_empty());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn offset_checks_bounds() {
        Shape::new(&[2, 2]).offset(&[2, 0]);
    }

    #[test]
    #[should_panic(expected = "rank")]
    fn offset_checks_rank() {
        Shape::new(&[2, 2]).offset(&[0]);
    }

    #[test]
    fn display_format() {
        assert_eq!(Shape::new(&[2, 3]).to_string(), "[2x3]");
        assert_eq!(Shape::new(&[]).to_string(), "[]");
    }

    #[test]
    fn conversions() {
        let from_slice: Shape = (&[1usize, 2][..]).into();
        let from_vec: Shape = vec![1usize, 2].into();
        assert!(from_slice.same_as(&from_vec));
    }

    #[test]
    fn set_dims_replaces_in_place() {
        let mut s = Shape::new(&[2, 3, 4]);
        s.set_dims(&[6, 2]);
        assert_eq!(s.dims(), &[6, 2]);
        assert_eq!(s.len(), 12);
        s.set_dims(&[]);
        assert_eq!(s.rank(), 0);
        assert_eq!(s.len(), 1); // scalar
    }

    #[test]
    fn set_dim_overwrites_one_axis() {
        let mut s = Shape::new(&[5, 7]);
        s.set_dim(0, 2);
        assert_eq!(s.dims(), &[2, 7]);
    }

    #[test]
    #[should_panic]
    fn set_dim_checks_axis() {
        Shape::new(&[2]).set_dim(1, 3);
    }
}
