//! Dense `f32` tensor math substrate for the SWIM reproduction.
//!
//! The SWIM paper ([Yan et al., DAC 2022]) evaluates on PyTorch; this crate
//! is the from-scratch replacement for the numerical kernels that the rest
//! of the workspace builds on:
//!
//! * [`Tensor`] — contiguous, row-major, n-dimensional `f32` array with
//!   shape-checked elementwise algebra and reductions.
//! * [`linalg`] — GEMM-style matrix products used by fully connected and
//!   (via [`conv`] im2col lowering) convolution layers.
//! * [`conv`] — im2col/col2im lowering so convolutions can be "cast in the
//!   same form as FC layers", exactly the property the paper's
//!   second-derivative backpropagation relies on (§3.3).
//! * [`rng`] — a deterministic, splittable xoshiro256++ PRNG with Gaussian
//!   sampling (Box–Muller). Device-variation experiments are Monte Carlo
//!   simulations; bit-exact reproducibility across runs and platforms is a
//!   requirement, which is why this crate owns its PRNG instead of relying
//!   on an external generator whose stream may change between versions.
//! * [`stats`] — `f64`-accumulated summary statistics and the Pearson
//!   correlation used by the Fig. 1 sensitivity-correlation experiment.
//! * [`simd`] — the portable-SIMD kernel layer (AVX2/AVX-512/NEON with a
//!   scalar reference, selected once at startup via runtime feature
//!   detection, overridable via `SWIM_SIMD`) that the GEMM microkernel
//!   and the workspace's elementwise hot paths dispatch through.
//! * [`tune`] — the unified [`tune::KernelTuning`] configuration and the
//!   shape-keyed autotuner behind every kernel performance knob (GEMM
//!   threads/blocking/threading threshold, conv im2col chunk cap), with
//!   an optional host-fingerprinted on-disk winner cache. Timing-only by
//!   contract: tuning never changes result bytes.
//!
//! # Example
//!
//! ```
//! use swim_tensor::{Tensor, rng::Prng};
//!
//! let mut rng = Prng::seed_from_u64(7);
//! let a = Tensor::randn(&[4, 3], &mut rng);
//! let b = Tensor::randn(&[3, 2], &mut rng);
//! let c = swim_tensor::linalg::matmul(&a, &b);
//! assert_eq!(c.shape(), &[4, 2]);
//! ```
//!
//! [Yan et al., DAC 2022]: https://arxiv.org/abs/2202.08395

#![warn(missing_docs)]

pub mod conv;
pub mod error;
pub mod linalg;
pub mod rng;
pub mod shape;
pub mod simd;
pub mod stats;
pub mod tensor;
pub mod tune;

pub use error::TensorError;
pub use rng::Prng;
pub use shape::Shape;
pub use tensor::Tensor;
