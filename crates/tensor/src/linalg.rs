//! Matrix products.
//!
//! Fully connected layers, and convolutions lowered through
//! [`crate::conv::im2col`], reduce to the three GEMM variants here. The
//! kernels use an `i-k-j` loop order so the innermost loop streams over
//! contiguous rows, which the compiler auto-vectorizes; accumulation is in
//! `f32` (matching the precision a CiM accelerator's digital periphery
//! would use).

use crate::tensor::Tensor;

/// `C = A · B` for rank-2 tensors `A: [m, k]`, `B: [k, n]`.
///
/// # Panics
///
/// Panics if either operand is not rank 2 or the inner dimensions differ.
///
/// # Example
///
/// ```
/// use swim_tensor::{Tensor, linalg::matmul};
///
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
/// let i = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2])?;
/// assert_eq!(matmul(&a, &i), a);
/// # Ok::<(), swim_tensor::TensorError>(())
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.rank(), 2, "matmul: left operand must be rank 2");
    assert_eq!(b.rank(), 2, "matmul: right operand must be rank 2");
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let (kb, n) = (b.shape()[0], b.shape()[1]);
    assert_eq!(k, kb, "matmul: inner dimensions {k} vs {kb}");

    let mut out = vec![0.0f32; m * n];
    let ad = a.data();
    let bd = b.data();
    for i in 0..m {
        let arow = &ad[i * k..(i + 1) * k];
        let orow = &mut out[i * n..(i + 1) * n];
        for (p, &aval) in arow.iter().enumerate() {
            if aval == 0.0 {
                continue;
            }
            let brow = &bd[p * n..(p + 1) * n];
            for (o, &bval) in orow.iter_mut().zip(brow) {
                *o += aval * bval;
            }
        }
    }
    Tensor::from_vec(out, &[m, n]).expect("matmul output shape is consistent")
}

/// `C = Aᵀ · B` for `A: [k, m]`, `B: [k, n]`, without materializing `Aᵀ`.
///
/// Used by backpropagation to form weight gradients (`∂f/∂W = δᵀ·P` style
/// products).
///
/// # Panics
///
/// Panics on rank or inner-dimension mismatch.
pub fn matmul_at(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.rank(), 2, "matmul_at: left operand must be rank 2");
    assert_eq!(b.rank(), 2, "matmul_at: right operand must be rank 2");
    let (k, m) = (a.shape()[0], a.shape()[1]);
    let (kb, n) = (b.shape()[0], b.shape()[1]);
    assert_eq!(k, kb, "matmul_at: inner dimensions {k} vs {kb}");

    let mut out = vec![0.0f32; m * n];
    let ad = a.data();
    let bd = b.data();
    for p in 0..k {
        let arow = &ad[p * m..(p + 1) * m];
        let brow = &bd[p * n..(p + 1) * n];
        for (i, &aval) in arow.iter().enumerate() {
            if aval == 0.0 {
                continue;
            }
            let orow = &mut out[i * n..(i + 1) * n];
            for (o, &bval) in orow.iter_mut().zip(brow) {
                *o += aval * bval;
            }
        }
    }
    Tensor::from_vec(out, &[m, n]).expect("matmul_at output shape is consistent")
}

/// `C = A · Bᵀ` for `A: [m, k]`, `B: [n, k]`, without materializing `Bᵀ`.
///
/// Used by backpropagation to push gradients through a layer
/// (`∂f/∂P = δ·W` style products).
///
/// # Panics
///
/// Panics on rank or inner-dimension mismatch.
pub fn matmul_bt(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.rank(), 2, "matmul_bt: left operand must be rank 2");
    assert_eq!(b.rank(), 2, "matmul_bt: right operand must be rank 2");
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let (n, kb) = (b.shape()[0], b.shape()[1]);
    assert_eq!(k, kb, "matmul_bt: inner dimensions {k} vs {kb}");

    let mut out = vec![0.0f32; m * n];
    let ad = a.data();
    let bd = b.data();
    for i in 0..m {
        let arow = &ad[i * k..(i + 1) * k];
        let orow = &mut out[i * n..(i + 1) * n];
        for (j, o) in orow.iter_mut().enumerate() {
            let brow = &bd[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (&x, &y) in arow.iter().zip(brow) {
                acc += x * y;
            }
            *o = acc;
        }
    }
    Tensor::from_vec(out, &[m, n]).expect("matmul_bt output shape is consistent")
}

/// Matrix–vector product `y = A · x` for `A: [m, n]`, `x: [n]`.
///
/// # Panics
///
/// Panics on rank or dimension mismatch.
pub fn matvec(a: &Tensor, x: &Tensor) -> Tensor {
    assert_eq!(a.rank(), 2, "matvec: matrix must be rank 2");
    assert_eq!(x.rank(), 1, "matvec: vector must be rank 1");
    let (m, n) = (a.shape()[0], a.shape()[1]);
    assert_eq!(n, x.shape()[0], "matvec: dimensions {n} vs {}", x.shape()[0]);
    let ad = a.data();
    let xd = x.data();
    let mut out = vec![0.0f32; m];
    for (i, o) in out.iter_mut().enumerate() {
        let row = &ad[i * n..(i + 1) * n];
        let mut acc = 0.0f32;
        for (&a, &b) in row.iter().zip(xd) {
            acc += a * b;
        }
        *o = acc;
    }
    Tensor::from_vec(out, &[m]).expect("matvec output shape is consistent")
}

/// Outer product `C = x · yᵀ` for vectors `x: [m]`, `y: [n]`.
///
/// # Panics
///
/// Panics if either operand is not rank 1.
pub fn outer(x: &Tensor, y: &Tensor) -> Tensor {
    assert_eq!(x.rank(), 1, "outer: left operand must be rank 1");
    assert_eq!(y.rank(), 1, "outer: right operand must be rank 1");
    let (m, n) = (x.shape()[0], y.shape()[0]);
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        let xv = x.data()[i];
        for j in 0..n {
            out[i * n + j] = xv * y.data()[j];
        }
    }
    Tensor::from_vec(out, &[m, n]).expect("outer output shape is consistent")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Prng;

    fn naive_matmul(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.shape()[0], a.shape()[1]);
        let n = b.shape()[1];
        let mut out = Tensor::zeros(&[m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for p in 0..k {
                    acc += a[[i, p]] * b[[p, j]];
                }
                out[[i, j]] = acc;
            }
        }
        out
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let eye = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2]).unwrap();
        assert_eq!(matmul(&a, &eye), a);
        assert_eq!(matmul(&eye, &a), a);
    }

    #[test]
    fn matmul_matches_naive() {
        let mut rng = Prng::seed_from_u64(2);
        let a = Tensor::randn(&[7, 5], &mut rng);
        let b = Tensor::randn(&[5, 9], &mut rng);
        assert!(matmul(&a, &b).allclose(&naive_matmul(&a, &b), 1e-4));
    }

    #[test]
    fn matmul_at_equals_transpose_then_matmul() {
        let mut rng = Prng::seed_from_u64(3);
        let a = Tensor::randn(&[6, 4], &mut rng);
        let b = Tensor::randn(&[6, 5], &mut rng);
        let expected = matmul(&a.transposed(), &b);
        assert!(matmul_at(&a, &b).allclose(&expected, 1e-4));
    }

    #[test]
    fn matmul_bt_equals_matmul_with_transpose() {
        let mut rng = Prng::seed_from_u64(4);
        let a = Tensor::randn(&[3, 8], &mut rng);
        let b = Tensor::randn(&[5, 8], &mut rng);
        let expected = matmul(&a, &b.transposed());
        assert!(matmul_bt(&a, &b).allclose(&expected, 1e-4));
    }

    #[test]
    fn matvec_matches_matmul() {
        let mut rng = Prng::seed_from_u64(5);
        let a = Tensor::randn(&[4, 6], &mut rng);
        let x = Tensor::randn(&[6], &mut rng);
        let as_mat = x.clone().reshaped(&[6, 1]);
        let expected = matmul(&a, &as_mat).reshaped(&[4]);
        assert!(matvec(&a, &x).allclose(&expected, 1e-5));
    }

    #[test]
    fn outer_rank_one_structure() {
        let x = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let y = Tensor::from_vec(vec![3.0, 4.0, 5.0], &[3]).unwrap();
        let o = outer(&x, &y);
        assert_eq!(o.shape(), &[2, 3]);
        assert_eq!(o.data(), &[3.0, 4.0, 5.0, 6.0, 8.0, 10.0]);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn matmul_dim_mismatch_panics() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        matmul(&a, &b);
    }

    #[test]
    fn zero_sized_matmul() {
        let a = Tensor::zeros(&[0, 3]);
        let b = Tensor::zeros(&[3, 2]);
        let c = matmul(&a, &b);
        assert_eq!(c.shape(), &[0, 2]);
    }
}
