//! Matrix products.
//!
//! Fully connected layers, and convolutions lowered through
//! [`crate::conv::im2col`], reduce to the three GEMM variants here. All
//! three route through one blocked, register-tiled kernel ([`MR`]×[`NR`]
//! accumulator tiles over a packed right-hand operand), with a
//! multithreaded row-panel path above [`PARALLEL_MIN_FLOPS`].
//!
//! # Determinism contract
//!
//! Every output element is accumulated in strictly increasing `k` order
//! starting from `0.0`, exactly like the reference `i-k-j` triple loop —
//! register tiling changes *which* elements are in flight, never the
//! per-element summation order, and the threaded path assigns each thread
//! a disjoint row range computed identically to the serial path. Results
//! are therefore **bit-identical** across block sizes and `--threads`
//! settings, which the Monte Carlo harness relies on for reproducibility.
//!
//! Relative to [`matmul_reference`] (the un-fused `i-k-j` loop) the
//! blocked kernel is *tolerance-identical*: on targets with hardware FMA
//! each multiply-accumulate fuses with a single rounding, so outputs can
//! differ from the two-rounding reference by ~1 ulp per `k` step (the
//! fused result is the more accurate one). On targets without FMA the
//! kernels are bit-identical. See [`mac`].
//!
//! Accumulation is in `f32` (matching the precision a CiM accelerator's
//! digital periphery would use). Non-finite inputs propagate per IEEE-754:
//! unlike the pre-workspace kernel, `0.0` entries are *not* skipped, so
//! `0.0 × NaN` and `0.0 × ∞` contribute `NaN` as true GEMM requires.

use crate::tensor::Tensor;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Rows per microkernel register tile.
pub const MR: usize = 4;
/// Columns per packed panel (and per microkernel register tile).
pub const NR: usize = 32;
/// Minimum multiply count (`m·n·k`) before the row-panel threaded path
/// engages; below it, thread-spawn overhead dominates.
pub const PARALLEL_MIN_FLOPS: usize = 1 << 22;

/// Worker threads for large GEMMs; 0 = auto (`available_parallelism`).
static GEMM_THREADS: AtomicUsize = AtomicUsize::new(0);
/// Column-block width for packing; 0 = auto (sized to keep the packed
/// panel within a few hundred KiB).
static GEMM_BLOCK_COLS: AtomicUsize = AtomicUsize::new(0);

/// Sets the worker-thread count for large matrix products.
///
/// `0` restores the default (one thread per available core). The setting
/// is process-global; results are bit-identical for every value.
pub fn set_gemm_threads(threads: usize) {
    GEMM_THREADS.store(threads, Ordering::Relaxed);
}

/// The worker-thread count large products will use.
pub fn gemm_threads() -> usize {
    match GEMM_THREADS.load(Ordering::Relaxed) {
        0 => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        n => n,
    }
}

/// Sets the cache-blocking width (columns per packed panel group).
///
/// `0` restores the automatic choice. Rounded up to a multiple of
/// [`NR`]; purely a performance knob — results are bit-identical for
/// every value.
pub fn set_gemm_block_cols(cols: usize) {
    GEMM_BLOCK_COLS.store(cols, Ordering::Relaxed);
}

/// The effective column-block width for an `m×k · k×n` product.
pub fn gemm_block_cols(k: usize, n: usize) -> usize {
    let requested = GEMM_BLOCK_COLS.load(Ordering::Relaxed);
    let cols = if requested == 0 {
        // Keep the active packed block near 128 KiB so it stays cache
        // resident while a row panel sweeps it.
        let budget = (128 * 1024) / (4 * k.max(1));
        budget.clamp(NR, 4096)
    } else {
        requested
    };
    cols.next_multiple_of(NR).min(n.next_multiple_of(NR).max(NR))
}

/// Packs `b` (`k×n`, row-major) into NR-wide column panels.
///
/// Panel `p` holds columns `p·NR .. (p+1)·NR` interleaved so the
/// microkernel streams it contiguously: element `(row, col)` of the panel
/// lives at `panel_base + row·NR + col`. The tail panel is zero-padded;
/// padded lanes are computed and discarded, never stored.
fn pack_b(b: &[f32], k: usize, n: usize) -> Vec<f32> {
    let panels = n.div_ceil(NR);
    let mut packed = vec![0.0f32; panels * k * NR];
    for panel in 0..panels {
        let j0 = panel * NR;
        let width = NR.min(n - j0);
        let base = panel * k * NR;
        for p in 0..k {
            let src = &b[p * n + j0..p * n + j0 + width];
            let dst = &mut packed[base + p * NR..base + p * NR + width];
            dst.copy_from_slice(src);
        }
    }
    packed
}

/// One multiply-accumulate step.
///
/// On targets with hardware FMA the multiply and add fuse into a single
/// instruction with a single rounding — about twice the throughput and
/// slightly *more* accurate than the separate `acc + a·b` the reference
/// kernel performs (each partial product skips one rounding). The
/// `cfg!` is a compile-time constant, so targets without FMA keep the
/// plain two-instruction form rather than a libm software fallback.
#[inline(always)]
fn mac(acc: f32, a: f32, b: f32) -> f32 {
    if cfg!(target_feature = "fma") {
        a.mul_add(b, acc)
    } else {
        acc + a * b
    }
}

/// Computes one `4 × NR` register tile: `acc[r][c] = Σ_p a_r[p] ·
/// panel[p·NR + c]`, accumulating in increasing `p` order from `0.0`.
///
/// The zipped iterators make every access bounds-check-free, and the
/// four separate accumulator locals keep the tile in vector registers;
/// one panel row load is amortized over four output rows.
#[inline(always)]
#[allow(clippy::needless_range_loop)]
fn microkernel_4(
    k: usize,
    a0: &[f32],
    a1: &[f32],
    a2: &[f32],
    a3: &[f32],
    panel: &[f32],
) -> [[f32; NR]; 4] {
    let (mut acc0, mut acc1, mut acc2, mut acc3) =
        ([0.0f32; NR], [0.0f32; NR], [0.0f32; NR], [0.0f32; NR]);
    let rows = a0[..k]
        .iter()
        .zip(&a1[..k])
        .zip(&a2[..k])
        .zip(&a3[..k])
        .zip(panel[..k * NR].chunks_exact(NR));
    for ((((&v0, &v1), &v2), &v3), brow) in rows {
        for c in 0..NR {
            acc0[c] = mac(acc0[c], v0, brow[c]);
            acc1[c] = mac(acc1[c], v1, brow[c]);
            acc2[c] = mac(acc2[c], v2, brow[c]);
            acc3[c] = mac(acc3[c], v3, brow[c]);
        }
    }
    [acc0, acc1, acc2, acc3]
}

/// Single-row variant of [`microkernel_4`] for the `m % 4` tail rows.
#[inline(always)]
#[allow(clippy::needless_range_loop)]
fn microkernel_1(k: usize, a0: &[f32], panel: &[f32]) -> [f32; NR] {
    let mut acc = [0.0f32; NR];
    for (&v0, brow) in a0[..k].iter().zip(panel[..k * NR].chunks_exact(NR)) {
        for c in 0..NR {
            acc[c] = mac(acc[c], v0, brow[c]);
        }
    }
    acc
}

/// Computes rows `[row0, row0 + out.len()/n)` of `C = A·B` into `out`,
/// reading the packed panels of `B`.
fn gemm_rows(a: &[f32], packed_b: &[f32], k: usize, n: usize, row0: usize, out: &mut [f32]) {
    let rows = out.len().checked_div(n).unwrap_or(0);
    let panels = n.div_ceil(NR);
    let block_cols = gemm_block_cols(k, n);
    let panels_per_block = (block_cols / NR).max(1);

    let mut panel0 = 0;
    while panel0 < panels {
        let panel1 = (panel0 + panels_per_block).min(panels);
        let mut r = 0;
        while r + MR <= rows {
            let gr = row0 + r;
            let a0 = &a[gr * k..(gr + 1) * k];
            let a1 = &a[(gr + 1) * k..(gr + 2) * k];
            let a2 = &a[(gr + 2) * k..(gr + 3) * k];
            let a3 = &a[(gr + 3) * k..(gr + 4) * k];
            for panel in panel0..panel1 {
                let pan = &packed_b[panel * k * NR..(panel + 1) * k * NR];
                let acc = microkernel_4(k, a0, a1, a2, a3, pan);
                let j0 = panel * NR;
                let width = NR.min(n - j0);
                for (t, tile) in acc.iter().enumerate() {
                    let orow = &mut out[(r + t) * n + j0..(r + t) * n + j0 + width];
                    orow.copy_from_slice(&tile[..width]);
                }
            }
            r += MR;
        }
        while r < rows {
            let gr = row0 + r;
            let a0 = &a[gr * k..(gr + 1) * k];
            for panel in panel0..panel1 {
                let pan = &packed_b[panel * k * NR..(panel + 1) * k * NR];
                let acc = microkernel_1(k, a0, pan);
                let j0 = panel * NR;
                let width = NR.min(n - j0);
                out[r * n + j0..r * n + j0 + width].copy_from_slice(&acc[..width]);
            }
            r += 1;
        }
        panel0 = panel1;
    }
}

/// Shared kernel: `C = A·B` for row-major `a: m×k`, `b: k×n`, with an
/// explicit thread count (`0` = the global setting).
fn gemm(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, threads: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; m * n];
    if m == 0 || n == 0 {
        return out;
    }
    if k == 0 {
        return out; // all-zero by definition; nothing to accumulate
    }
    let packed = pack_b(b, k, n);
    let resolved = if threads == 0 { gemm_threads() } else { threads };
    let workers = if m.saturating_mul(n).saturating_mul(k) < PARALLEL_MIN_FLOPS {
        1
    } else {
        resolved.min(m).max(1)
    };
    if workers == 1 {
        gemm_rows(a, &packed, k, n, 0, &mut out);
    } else {
        // Disjoint row chunks; each worker runs the identical serial
        // routine on its range, so the split cannot affect values.
        let chunk_rows = m.div_ceil(workers);
        let packed_ref = &packed;
        std::thread::scope(|scope| {
            for (ci, out_chunk) in out.chunks_mut(chunk_rows * n).enumerate() {
                scope.spawn(move || {
                    gemm_rows(a, packed_ref, k, n, ci * chunk_rows, out_chunk);
                });
            }
        });
    }
    out
}

fn transpose_flat(src: &[f32], rows: usize, cols: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; src.len()];
    for i in 0..rows {
        for j in 0..cols {
            out[j * rows + i] = src[i * cols + j];
        }
    }
    out
}

/// `C = A · B` for rank-2 tensors `A: [m, k]`, `B: [k, n]`.
///
/// # Panics
///
/// Panics if either operand is not rank 2 or the inner dimensions differ.
///
/// # Example
///
/// ```
/// use swim_tensor::{Tensor, linalg::matmul};
///
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
/// let i = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2])?;
/// assert_eq!(matmul(&a, &i), a);
/// # Ok::<(), swim_tensor::TensorError>(())
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.rank(), 2, "matmul: left operand must be rank 2");
    assert_eq!(b.rank(), 2, "matmul: right operand must be rank 2");
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let (kb, n) = (b.shape()[0], b.shape()[1]);
    assert_eq!(k, kb, "matmul: inner dimensions {k} vs {kb}");
    let out = gemm(a.data(), b.data(), m, k, n, 0);
    Tensor::from_vec(out, &[m, n]).expect("matmul output shape is consistent")
}

/// `C = Aᵀ · B` for `A: [k, m]`, `B: [k, n]`, without materializing `Aᵀ`
/// at the caller.
///
/// Used by backpropagation to form weight gradients (`∂f/∂W = δᵀ·P` style
/// products). Internally the kernel packs `Aᵀ` row panels, so the cost
/// matches [`matmul`] plus one `O(k·m)` transpose pass.
///
/// # Panics
///
/// Panics on rank or inner-dimension mismatch.
pub fn matmul_at(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.rank(), 2, "matmul_at: left operand must be rank 2");
    assert_eq!(b.rank(), 2, "matmul_at: right operand must be rank 2");
    let (k, m) = (a.shape()[0], a.shape()[1]);
    let (kb, n) = (b.shape()[0], b.shape()[1]);
    assert_eq!(k, kb, "matmul_at: inner dimensions {k} vs {kb}");
    let at = transpose_flat(a.data(), k, m);
    let out = gemm(&at, b.data(), m, k, n, 0);
    Tensor::from_vec(out, &[m, n]).expect("matmul_at output shape is consistent")
}

/// `C = A · Bᵀ` for `A: [m, k]`, `B: [n, k]`, without materializing `Bᵀ`
/// at the caller.
///
/// Used by backpropagation to push gradients through a layer
/// (`∂f/∂P = δ·W` style products). Internally the kernel packs `Bᵀ`
/// column panels, so the cost matches [`matmul`] plus one `O(n·k)`
/// transpose pass.
///
/// # Panics
///
/// Panics on rank or inner-dimension mismatch.
pub fn matmul_bt(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.rank(), 2, "matmul_bt: left operand must be rank 2");
    assert_eq!(b.rank(), 2, "matmul_bt: right operand must be rank 2");
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let (n, kb) = (b.shape()[0], b.shape()[1]);
    assert_eq!(k, kb, "matmul_bt: inner dimensions {k} vs {kb}");
    let bt = transpose_flat(b.data(), n, k);
    let out = gemm(a.data(), &bt, m, k, n, 0);
    Tensor::from_vec(out, &[m, n]).expect("matmul_bt output shape is consistent")
}

/// The reference `i-k-j` triple loop (un-fused multiply-adds), kept as
/// the accuracy oracle for the blocked kernel — bit-identical on targets
/// without hardware FMA, ulp-tolerance otherwise; see the module docs —
/// and as the baseline in the `kernels` bench.
pub fn matmul_reference(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.rank(), 2, "matmul_reference: left operand must be rank 2");
    assert_eq!(b.rank(), 2, "matmul_reference: right operand must be rank 2");
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let (kb, n) = (b.shape()[0], b.shape()[1]);
    assert_eq!(k, kb, "matmul_reference: inner dimensions {k} vs {kb}");
    let mut out = vec![0.0f32; m * n];
    let ad = a.data();
    let bd = b.data();
    for i in 0..m {
        let arow = &ad[i * k..(i + 1) * k];
        let orow = &mut out[i * n..(i + 1) * n];
        for (p, &aval) in arow.iter().enumerate() {
            let brow = &bd[p * n..(p + 1) * n];
            for (o, &bval) in orow.iter_mut().zip(brow) {
                *o += aval * bval;
            }
        }
    }
    Tensor::from_vec(out, &[m, n]).expect("matmul_reference output shape is consistent")
}

/// `matmul` with an explicit thread count, exposed for the `kernels`
/// bench and determinism tests; `threads = 1` forces the serial path even
/// above [`PARALLEL_MIN_FLOPS`].
pub fn matmul_with_threads(a: &Tensor, b: &Tensor, threads: usize) -> Tensor {
    assert_eq!(a.rank(), 2, "matmul: left operand must be rank 2");
    assert_eq!(b.rank(), 2, "matmul: right operand must be rank 2");
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let (kb, n) = (b.shape()[0], b.shape()[1]);
    assert_eq!(k, kb, "matmul: inner dimensions {k} vs {kb}");
    let out = gemm(a.data(), b.data(), m, k, n, threads.max(1));
    Tensor::from_vec(out, &[m, n]).expect("matmul output shape is consistent")
}

/// Matrix–vector product `y = A · x` for `A: [m, n]`, `x: [n]`.
///
/// # Panics
///
/// Panics on rank or dimension mismatch.
pub fn matvec(a: &Tensor, x: &Tensor) -> Tensor {
    assert_eq!(a.rank(), 2, "matvec: matrix must be rank 2");
    assert_eq!(x.rank(), 1, "matvec: vector must be rank 1");
    let (m, n) = (a.shape()[0], a.shape()[1]);
    assert_eq!(n, x.shape()[0], "matvec: dimensions {n} vs {}", x.shape()[0]);
    let ad = a.data();
    let xd = x.data();
    let mut out = vec![0.0f32; m];
    for (i, o) in out.iter_mut().enumerate() {
        let row = &ad[i * n..(i + 1) * n];
        let mut acc = 0.0f32;
        for (&a, &b) in row.iter().zip(xd) {
            acc += a * b;
        }
        *o = acc;
    }
    Tensor::from_vec(out, &[m]).expect("matvec output shape is consistent")
}

/// Outer product `C = x · yᵀ` for vectors `x: [m]`, `y: [n]`.
///
/// # Panics
///
/// Panics if either operand is not rank 1.
pub fn outer(x: &Tensor, y: &Tensor) -> Tensor {
    assert_eq!(x.rank(), 1, "outer: left operand must be rank 1");
    assert_eq!(y.rank(), 1, "outer: right operand must be rank 1");
    let (m, n) = (x.shape()[0], y.shape()[0]);
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        let xv = x.data()[i];
        for j in 0..n {
            out[i * n + j] = xv * y.data()[j];
        }
    }
    Tensor::from_vec(out, &[m, n]).expect("outer output shape is consistent")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Prng;

    fn naive_matmul(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.shape()[0], a.shape()[1]);
        let n = b.shape()[1];
        let mut out = Tensor::zeros(&[m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for p in 0..k {
                    acc += a[[i, p]] * b[[p, j]];
                }
                out[[i, j]] = acc;
            }
        }
        out
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let eye = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2]).unwrap();
        assert_eq!(matmul(&a, &eye), a);
        assert_eq!(matmul(&eye, &a), a);
    }

    #[test]
    fn matmul_matches_naive() {
        let mut rng = Prng::seed_from_u64(2);
        let a = Tensor::randn(&[7, 5], &mut rng);
        let b = Tensor::randn(&[5, 9], &mut rng);
        assert!(matmul(&a, &b).allclose(&naive_matmul(&a, &b), 1e-4));
    }

    /// The blocked kernel must match the reference `i-k-j` loop on
    /// awkward (non-multiple-of-tile) shapes: bit-identical without
    /// hardware FMA, within ulp-level tolerance with it (the fused
    /// multiply-add skips one rounding per `k` step; see [`mac`]).
    #[test]
    fn blocked_kernel_matches_reference() {
        let mut rng = Prng::seed_from_u64(11);
        for &(m, k, n) in &[(1, 1, 1), (3, 7, 5), (33, 17, 29), (64, 64, 64), (13, 128, 47)] {
            let a = Tensor::randn(&[m, k], &mut rng);
            let b = Tensor::randn(&[k, n], &mut rng);
            let blocked = matmul(&a, &b);
            let reference = matmul_reference(&a, &b);
            if cfg!(target_feature = "fma") {
                assert!(blocked.allclose(&reference, 1e-4), "shape {m}x{k}x{n}");
            } else {
                assert_eq!(blocked.data(), reference.data(), "shape {m}x{k}x{n}");
            }
        }
    }

    /// Thread count must not change a single bit of the result, even on
    /// products large enough to take the parallel path.
    #[test]
    fn threaded_kernel_bit_identical_across_thread_counts() {
        let mut rng = Prng::seed_from_u64(12);
        // 192·96·256 = 4.7M multiplies ≥ PARALLEL_MIN_FLOPS.
        let a = Tensor::randn(&[192, 96], &mut rng);
        let b = Tensor::randn(&[96, 256], &mut rng);
        const { assert!(192 * 96 * 256 >= PARALLEL_MIN_FLOPS) };
        let serial = matmul_with_threads(&a, &b, 1);
        for threads in [2, 3, 8] {
            let parallel = matmul_with_threads(&a, &b, threads);
            assert_eq!(serial.data(), parallel.data(), "threads = {threads}");
        }
        assert!(serial.allclose(&matmul_reference(&a, &b), 1e-3));
    }

    /// Block size is a pure performance knob: any setting gives the same
    /// bits.
    #[test]
    fn block_cols_knob_does_not_change_results() {
        let mut rng = Prng::seed_from_u64(13);
        let a = Tensor::randn(&[24, 70], &mut rng);
        let b = Tensor::randn(&[70, 90], &mut rng);
        let baseline = matmul(&a, &b);
        for cols in [NR, 32, 64, 4096] {
            set_gemm_block_cols(cols);
            assert_eq!(matmul(&a, &b).data(), baseline.data(), "block_cols = {cols}");
        }
        set_gemm_block_cols(0);
    }

    /// Regression for the zero-skip unsoundness: the old kernel skipped
    /// `a == 0.0` terms, silently dropping `0·NaN` and `0·∞`
    /// contributions. True GEMM propagates them.
    #[test]
    fn zero_times_nan_and_inf_propagate() {
        // Row of A is all zeros; B carries a NaN in the first column and
        // +∞ in the second. C[0,0] and C[0,1] must both be NaN.
        let a = Tensor::from_vec(vec![0.0, 0.0, 1.0, 2.0], &[2, 2]).unwrap();
        let b = Tensor::from_vec(vec![f32::NAN, f32::INFINITY, 3.0, 4.0], &[2, 2]).unwrap();
        let c = matmul(&a, &b);
        assert!(c.data()[0].is_nan(), "0·NaN must contribute NaN");
        assert!(c.data()[1].is_nan(), "0·∞ must contribute NaN (0·∞ = NaN)");
        // The second row has no zero entries: NaN/∞ flow through normally.
        assert!(c.data()[2].is_nan());
        assert!(c.data()[3].is_infinite() && c.data()[3] > 0.0);

        // Same property through the transposed variants.
        let c_at = matmul_at(&a.transposed(), &b);
        assert!(c_at.data()[0].is_nan());
        let c_bt = matmul_bt(&a, &b.transposed());
        assert!(c_bt.data()[0].is_nan());
    }

    #[test]
    fn matmul_at_equals_transpose_then_matmul() {
        let mut rng = Prng::seed_from_u64(3);
        let a = Tensor::randn(&[6, 4], &mut rng);
        let b = Tensor::randn(&[6, 5], &mut rng);
        let expected = matmul(&a.transposed(), &b);
        assert!(matmul_at(&a, &b).allclose(&expected, 1e-4));
    }

    #[test]
    fn matmul_bt_equals_matmul_with_transpose() {
        let mut rng = Prng::seed_from_u64(4);
        let a = Tensor::randn(&[3, 8], &mut rng);
        let b = Tensor::randn(&[5, 8], &mut rng);
        let expected = matmul(&a, &b.transposed());
        assert!(matmul_bt(&a, &b).allclose(&expected, 1e-4));
    }

    #[test]
    fn matvec_matches_matmul() {
        let mut rng = Prng::seed_from_u64(5);
        let a = Tensor::randn(&[4, 6], &mut rng);
        let x = Tensor::randn(&[6], &mut rng);
        let as_mat = x.clone().reshaped(&[6, 1]);
        let expected = matmul(&a, &as_mat).reshaped(&[4]);
        assert!(matvec(&a, &x).allclose(&expected, 1e-5));
    }

    #[test]
    fn outer_rank_one_structure() {
        let x = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let y = Tensor::from_vec(vec![3.0, 4.0, 5.0], &[3]).unwrap();
        let o = outer(&x, &y);
        assert_eq!(o.shape(), &[2, 3]);
        assert_eq!(o.data(), &[3.0, 4.0, 5.0, 6.0, 8.0, 10.0]);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn matmul_dim_mismatch_panics() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        matmul(&a, &b);
    }

    #[test]
    fn zero_sized_matmul() {
        let a = Tensor::zeros(&[0, 3]);
        let b = Tensor::zeros(&[3, 2]);
        let c = matmul(&a, &b);
        assert_eq!(c.shape(), &[0, 2]);
        let a = Tensor::zeros(&[2, 0]);
        let b = Tensor::zeros(&[0, 3]);
        let c = matmul(&a, &b);
        assert_eq!(c.shape(), &[2, 3]);
        assert!(c.data().iter().all(|&v| v == 0.0));
    }
}
