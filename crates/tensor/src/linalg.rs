//! Matrix products.
//!
//! Fully connected layers, and convolutions lowered through
//! [`crate::conv::im2col`], reduce to the three GEMM variants here. All
//! three route through one blocked, register-tiled kernel ([`MR`]×[`NR`]
//! accumulator tiles over a packed right-hand operand), with a
//! multithreaded row-panel path above [`PARALLEL_MIN_FLOPS`] (tunable via
//! [`set_gemm_parallel_min_flops`]). The transposed variants
//! ([`matmul_at`], [`matmul_bt`]) pack their panels *directly from the
//! strided source layout* — no transposed copy is ever materialized — and
//! the `*_into` entry points ([`matmul_into`], [`matmul_at_into`],
//! [`matmul_bt_into`]) write into caller-owned buffers so hot paths can
//! run without per-call allocation (the packed-B scratch is thread-local
//! and reused across products).
//!
//! # Determinism contract
//!
//! Every output element is accumulated in strictly increasing `k` order
//! starting from `0.0`, exactly like the reference `i-k-j` triple loop —
//! register tiling changes *which* elements are in flight, never the
//! per-element summation order, and the threaded path assigns each thread
//! a disjoint row range computed identically to the serial path. Results
//! are therefore **bit-identical** across block sizes and `--threads`
//! settings *within one SIMD backend*, which the Monte Carlo harness
//! relies on for reproducibility.
//!
//! The microkernel dispatches on [`crate::simd::backend`]: the scalar
//! backend runs the portable tile below (the reference), while the
//! AVX2/AVX-512/NEON backends run hand-vectorized tiles that fuse each
//! multiply-accumulate (single rounding per `k` step). A vector backend
//! therefore drifts from the scalar reference by ~1 ulp per `k` step —
//! pinned to [`crate::simd::GEMM_DRIFT_TOL`] by
//! `tests/simd_vs_scalar.rs` — but stays fully deterministic on a given
//! backend. Relative to [`matmul_reference`] (the un-fused `i-k-j`
//! loop) the scalar blocked kernel is bit-identical on builds without
//! hardware FMA and ulp-tolerance-identical otherwise; see the private
//! `mac` helper.
//!
//! Accumulation is in `f32` (matching the precision a CiM accelerator's
//! digital periphery would use). Non-finite inputs propagate per IEEE-754:
//! unlike the pre-workspace kernel, `0.0` entries are *not* skipped, so
//! `0.0 × NaN` and `0.0 × ∞` contribute `NaN` as true GEMM requires.

use crate::simd::{self, Backend};
use crate::tensor::Tensor;
use crate::tune::{self, GemmKind, GemmPlan};

/// Rows per microkernel register tile.
pub const MR: usize = 4;
/// Columns per packed panel (and per microkernel register tile).
pub const NR: usize = 32;
/// Default minimum multiply count (`m·n·k`) before the row-panel
/// threaded path engages; below it, thread-spawn overhead dominates.
/// Override at runtime via [`crate::tune::KernelTuning`] (or the
/// [`set_gemm_parallel_min_flops`] compatibility alias).
///
/// The default was chosen by measuring the spawn+join cost of the scoped
/// worker threads (~15–40 µs per spawn on the benchmarked hosts) against
/// the kernel's single-core throughput (several GFLOP/s): at `2²²`
/// multiplies a serial product runs ≈1 ms, so the fixed threading cost
/// stays in the low single-digit percents. Re-measured 2026-08 (see
/// `BENCH_sweep.json`'s `autotune` group and `docs/autotune.md`): still
/// the best fixed threshold on the measured hosts, and under
/// `tune.mode = on` the autotuner refines the serial/threaded decision
/// per shape anyway.
pub const PARALLEL_MIN_FLOPS: usize = 1 << 22;

/// Sets the worker-thread count for large matrix products.
///
/// Deprecated alias for installing a [`crate::tune::KernelTuning`] with
/// `gemm_threads` set; kept so pre-tune callers keep compiling. `0`
/// restores the default (one thread per available core). The setting is
/// process-global; results are bit-identical for every value.
pub fn set_gemm_threads(threads: usize) {
    tune::pin_gemm_threads(threads);
}

/// The worker-thread count large products will use.
pub fn gemm_threads() -> usize {
    tune::gemm_threads()
}

/// Sets the cache-blocking width (columns per packed panel group).
///
/// Deprecated alias for [`crate::tune::KernelTuning::gemm_block_cols`].
/// `0` restores the automatic choice. Rounded up to a multiple of
/// [`NR`]; purely a performance knob — results are bit-identical for
/// every value.
pub fn set_gemm_block_cols(cols: usize) {
    tune::pin_gemm_block_cols(cols);
}

/// Sets the minimum multiply count (`m·n·k`) above which products go
/// multithreaded.
///
/// Deprecated alias for [`crate::tune::KernelTuning::gemm_min_flops`].
/// `0` restores the [`PARALLEL_MIN_FLOPS`] default; `1` makes every
/// product eligible. Like the other knobs this is process-global and
/// purely a performance setting — results are bit-identical for every
/// value.
pub fn set_gemm_parallel_min_flops(flops: usize) {
    tune::pin_gemm_min_flops(flops);
}

/// The threading threshold large products currently use.
pub fn gemm_parallel_min_flops() -> usize {
    tune::gemm_min_flops()
}

/// The effective column-block width for an `m×k · k×n` product under
/// the pinned/heuristic path (shape-keyed autotuned products may pick a
/// different width; see [`crate::tune::gemm_plan`]).
pub fn gemm_block_cols(k: usize, n: usize) -> usize {
    tune::gemm_block_cols(k, n)
}

/// Strided view of a rank-2 operand: logical element `(i, j)` lives at
/// `data[i·row_stride + j·col_stride]`.
///
/// This is what lets [`matmul_at`]/[`matmul_bt`] feed the kernel the
/// *transposed* interpretation of an operand without materializing a
/// transposed copy: a row-major `k×m` matrix read as its `m×k` transpose
/// is just `row_stride = 1, col_stride = m`.
#[derive(Debug, Clone, Copy)]
struct Strides {
    row: usize,
    col: usize,
}

impl Strides {
    /// Row-major (contiguous) layout for a matrix with `cols` columns.
    fn contiguous(cols: usize) -> Strides {
        Strides { row: cols, col: 1 }
    }

    /// The transpose of a row-major matrix that had `cols` columns.
    fn transposed(cols: usize) -> Strides {
        Strides { row: 1, col: cols }
    }
}

/// Packs the logical `k×n` matrix `(b, strides)` into NR-wide column
/// panels inside `packed` (resized, contents reused across calls).
///
/// Panel `p` holds columns `p·NR .. (p+1)·NR` interleaved so the
/// microkernel streams it contiguously: element `(row, col)` of the panel
/// lives at `panel_base + row·NR + col`. The tail panel is zero-padded;
/// padded lanes are computed and discarded, never stored. The packed
/// layout is identical for both source layouts, so downstream arithmetic
/// cannot depend on which one the caller had.
fn pack_panels(b: &[f32], strides: Strides, k: usize, n: usize, packed: &mut Vec<f32>) {
    let panels = n.div_ceil(NR);
    packed.clear();
    packed.resize(panels * k * NR, 0.0);
    for panel in 0..panels {
        let j0 = panel * NR;
        let width = NR.min(n - j0);
        let base = panel * k * NR;
        if strides.col == 1 {
            for p in 0..k {
                let src = &b[p * strides.row + j0..p * strides.row + j0 + width];
                packed[base + p * NR..base + p * NR + width].copy_from_slice(src);
            }
        } else {
            // Transposed source: a panel row gathers a strided sweep.
            for p in 0..k {
                let row0 = p * strides.row;
                let dst = &mut packed[base + p * NR..base + p * NR + width];
                for (c, d) in dst.iter_mut().enumerate() {
                    *d = b[row0 + (j0 + c) * strides.col];
                }
            }
        }
    }
}

/// Packs logical rows `[row0, row0 + rows)` of the `(a, strides)` matrix
/// into `dst` as a contiguous row-major `rows×k` panel.
///
/// For a transposed source (`row_stride == 1`) the sweep runs `k`-outer,
/// so the rows being gathered at each `k` step are *adjacent* floats —
/// one cache-line read feeds many output rows, which is what makes this
/// integrated packing cheaper than the `transpose_flat` pre-pass it
/// replaced (and it reuses a thread-local buffer instead of allocating).
fn pack_a_panel(a: &[f32], strides: Strides, k: usize, row0: usize, rows: usize, dst: &mut [f32]) {
    debug_assert!(dst.len() >= rows * k);
    // Process MR rows at a time so the gather keeps a bounded number of
    // write streams while still sharing each source cache line across
    // the group (the group's rows are adjacent floats when row_stride
    // is 1).
    let mut r = 0;
    while r < rows {
        let group = MR.min(rows - r);
        let gbase = (row0 + r) * strides.row;
        for p in 0..k {
            let base = gbase + p * strides.col;
            for t in 0..group {
                dst[(r + t) * k + p] = a[base + t * strides.row];
            }
        }
        r += group;
    }
}

/// One multiply-accumulate step of the scalar reference kernel.
///
/// Deliberately the unfused two-rounding form, *never* `mul_add`: the
/// scalar backend is the pinned reference whose bytes must not depend
/// on build flags or the build host's CPU, and `mul_add` would fuse (one
/// rounding) exactly when the target has hardware FMA. The vector
/// backends opt into fusion explicitly via FMA intrinsics, which is
/// where their (pinned, bounded) drift against this reference comes
/// from — see `simd::GEMM_DRIFT_TOL` and `docs/simd.md`.
#[inline(always)]
fn mac(acc: f32, a: f32, b: f32) -> f32 {
    acc + a * b
}

/// Computes one `4 × NR` register tile: `acc[r][c] = Σ_p a_r[p] ·
/// panel[p·NR + c]`, accumulating in increasing `p` order from `0.0`.
///
/// The zipped iterators make every access bounds-check-free, and the
/// four separate accumulator locals keep the tile in vector registers;
/// one panel row load is amortized over four output rows.
#[inline(always)]
#[allow(clippy::needless_range_loop)]
fn microkernel_4(
    k: usize,
    a0: &[f32],
    a1: &[f32],
    a2: &[f32],
    a3: &[f32],
    panel: &[f32],
) -> [[f32; NR]; 4] {
    let (mut acc0, mut acc1, mut acc2, mut acc3) =
        ([0.0f32; NR], [0.0f32; NR], [0.0f32; NR], [0.0f32; NR]);
    let rows = a0[..k]
        .iter()
        .zip(&a1[..k])
        .zip(&a2[..k])
        .zip(&a3[..k])
        .zip(panel[..k * NR].chunks_exact(NR));
    for ((((&v0, &v1), &v2), &v3), brow) in rows {
        for c in 0..NR {
            acc0[c] = mac(acc0[c], v0, brow[c]);
            acc1[c] = mac(acc1[c], v1, brow[c]);
            acc2[c] = mac(acc2[c], v2, brow[c]);
            acc3[c] = mac(acc3[c], v3, brow[c]);
        }
    }
    [acc0, acc1, acc2, acc3]
}

/// Single-row variant of [`microkernel_4`] for the `m % 4` tail rows.
#[inline(always)]
#[allow(clippy::needless_range_loop)]
fn microkernel_1(k: usize, a0: &[f32], panel: &[f32]) -> [f32; NR] {
    let mut acc = [0.0f32; NR];
    for (&v0, brow) in a0[..k].iter().zip(panel[..k * NR].chunks_exact(NR)) {
        for c in 0..NR {
            acc[c] = mac(acc[c], v0, brow[c]);
        }
    }
    acc
}

/// Hand-vectorized x86-64 microkernels (AVX2+FMA and AVX-512F).
///
/// Same contract as the scalar tiles: every output column accumulates
/// in strictly increasing `k` order from `0.0`, so each backend is
/// deterministic across block sizes and thread counts. The FMA fuses
/// the multiply-accumulate into one rounding, which is where the
/// (pinned) drift against the scalar reference comes from.
#[cfg(target_arch = "x86_64")]
mod kernels_x86 {
    use super::NR;
    use core::arch::x86_64::*;

    /// 4×[`NR`] tile over two 16-column half-panels: 8 `ymm`
    /// accumulators, two panel loads and four broadcasts per `k` step.
    ///
    /// # Safety
    ///
    /// AVX2+FMA must be available; `a0..a3` must each hold `k` readable
    /// elements and `panel` at least `k * NR`.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn microkernel_4_avx2(
        k: usize,
        a0: &[f32],
        a1: &[f32],
        a2: &[f32],
        a3: &[f32],
        panel: &[f32],
        out: &mut [[f32; NR]; 4],
    ) {
        debug_assert!(panel.len() >= k * NR);
        unsafe {
            let pp = panel.as_ptr();
            for half in 0..2 {
                let off = half * 16;
                let (mut c00, mut c01) = (_mm256_setzero_ps(), _mm256_setzero_ps());
                let (mut c10, mut c11) = (_mm256_setzero_ps(), _mm256_setzero_ps());
                let (mut c20, mut c21) = (_mm256_setzero_ps(), _mm256_setzero_ps());
                let (mut c30, mut c31) = (_mm256_setzero_ps(), _mm256_setzero_ps());
                for p in 0..k {
                    let bp = pp.add(p * NR + off);
                    let b0 = _mm256_loadu_ps(bp);
                    let b1 = _mm256_loadu_ps(bp.add(8));
                    let a = _mm256_set1_ps(*a0.get_unchecked(p));
                    c00 = _mm256_fmadd_ps(a, b0, c00);
                    c01 = _mm256_fmadd_ps(a, b1, c01);
                    let a = _mm256_set1_ps(*a1.get_unchecked(p));
                    c10 = _mm256_fmadd_ps(a, b0, c10);
                    c11 = _mm256_fmadd_ps(a, b1, c11);
                    let a = _mm256_set1_ps(*a2.get_unchecked(p));
                    c20 = _mm256_fmadd_ps(a, b0, c20);
                    c21 = _mm256_fmadd_ps(a, b1, c21);
                    let a = _mm256_set1_ps(*a3.get_unchecked(p));
                    c30 = _mm256_fmadd_ps(a, b0, c30);
                    c31 = _mm256_fmadd_ps(a, b1, c31);
                }
                _mm256_storeu_ps(out[0].as_mut_ptr().add(off), c00);
                _mm256_storeu_ps(out[0].as_mut_ptr().add(off + 8), c01);
                _mm256_storeu_ps(out[1].as_mut_ptr().add(off), c10);
                _mm256_storeu_ps(out[1].as_mut_ptr().add(off + 8), c11);
                _mm256_storeu_ps(out[2].as_mut_ptr().add(off), c20);
                _mm256_storeu_ps(out[2].as_mut_ptr().add(off + 8), c21);
                _mm256_storeu_ps(out[3].as_mut_ptr().add(off), c30);
                _mm256_storeu_ps(out[3].as_mut_ptr().add(off + 8), c31);
            }
        }
    }

    /// Single-row AVX2 tile: 4 `ymm` accumulators cover the full panel.
    ///
    /// # Safety
    ///
    /// AVX2+FMA must be available; `a0` must hold `k` readable elements
    /// and `panel` at least `k * NR`.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn microkernel_1_avx2(k: usize, a0: &[f32], panel: &[f32], out: &mut [f32; NR]) {
        debug_assert!(panel.len() >= k * NR);
        unsafe {
            let pp = panel.as_ptr();
            let mut c0 = _mm256_setzero_ps();
            let mut c1 = _mm256_setzero_ps();
            let mut c2 = _mm256_setzero_ps();
            let mut c3 = _mm256_setzero_ps();
            for p in 0..k {
                let bp = pp.add(p * NR);
                let a = _mm256_set1_ps(*a0.get_unchecked(p));
                c0 = _mm256_fmadd_ps(a, _mm256_loadu_ps(bp), c0);
                c1 = _mm256_fmadd_ps(a, _mm256_loadu_ps(bp.add(8)), c1);
                c2 = _mm256_fmadd_ps(a, _mm256_loadu_ps(bp.add(16)), c2);
                c3 = _mm256_fmadd_ps(a, _mm256_loadu_ps(bp.add(24)), c3);
            }
            _mm256_storeu_ps(out.as_mut_ptr(), c0);
            _mm256_storeu_ps(out.as_mut_ptr().add(8), c1);
            _mm256_storeu_ps(out.as_mut_ptr().add(16), c2);
            _mm256_storeu_ps(out.as_mut_ptr().add(24), c3);
        }
    }

    /// 4×[`NR`] AVX-512F tile: the full 32-column panel in one pass,
    /// 8 `zmm` accumulators.
    ///
    /// # Safety
    ///
    /// AVX-512F must be available; `a0..a3` must each hold `k` readable
    /// elements and `panel` at least `k * NR`.
    #[target_feature(enable = "avx512f")]
    pub unsafe fn microkernel_4_avx512(
        k: usize,
        a0: &[f32],
        a1: &[f32],
        a2: &[f32],
        a3: &[f32],
        panel: &[f32],
        out: &mut [[f32; NR]; 4],
    ) {
        debug_assert!(panel.len() >= k * NR);
        unsafe {
            let pp = panel.as_ptr();
            let (mut c00, mut c01) = (_mm512_setzero_ps(), _mm512_setzero_ps());
            let (mut c10, mut c11) = (_mm512_setzero_ps(), _mm512_setzero_ps());
            let (mut c20, mut c21) = (_mm512_setzero_ps(), _mm512_setzero_ps());
            let (mut c30, mut c31) = (_mm512_setzero_ps(), _mm512_setzero_ps());
            for p in 0..k {
                let bp = pp.add(p * NR);
                let b0 = _mm512_loadu_ps(bp);
                let b1 = _mm512_loadu_ps(bp.add(16));
                let a = _mm512_set1_ps(*a0.get_unchecked(p));
                c00 = _mm512_fmadd_ps(a, b0, c00);
                c01 = _mm512_fmadd_ps(a, b1, c01);
                let a = _mm512_set1_ps(*a1.get_unchecked(p));
                c10 = _mm512_fmadd_ps(a, b0, c10);
                c11 = _mm512_fmadd_ps(a, b1, c11);
                let a = _mm512_set1_ps(*a2.get_unchecked(p));
                c20 = _mm512_fmadd_ps(a, b0, c20);
                c21 = _mm512_fmadd_ps(a, b1, c21);
                let a = _mm512_set1_ps(*a3.get_unchecked(p));
                c30 = _mm512_fmadd_ps(a, b0, c30);
                c31 = _mm512_fmadd_ps(a, b1, c31);
            }
            _mm512_storeu_ps(out[0].as_mut_ptr(), c00);
            _mm512_storeu_ps(out[0].as_mut_ptr().add(16), c01);
            _mm512_storeu_ps(out[1].as_mut_ptr(), c10);
            _mm512_storeu_ps(out[1].as_mut_ptr().add(16), c11);
            _mm512_storeu_ps(out[2].as_mut_ptr(), c20);
            _mm512_storeu_ps(out[2].as_mut_ptr().add(16), c21);
            _mm512_storeu_ps(out[3].as_mut_ptr(), c30);
            _mm512_storeu_ps(out[3].as_mut_ptr().add(16), c31);
        }
    }

    /// Single-row AVX-512F tile: 2 `zmm` accumulators.
    ///
    /// # Safety
    ///
    /// AVX-512F must be available; `a0` must hold `k` readable elements
    /// and `panel` at least `k * NR`.
    #[target_feature(enable = "avx512f")]
    pub unsafe fn microkernel_1_avx512(k: usize, a0: &[f32], panel: &[f32], out: &mut [f32; NR]) {
        debug_assert!(panel.len() >= k * NR);
        unsafe {
            let pp = panel.as_ptr();
            let mut c0 = _mm512_setzero_ps();
            let mut c1 = _mm512_setzero_ps();
            for p in 0..k {
                let bp = pp.add(p * NR);
                let a = _mm512_set1_ps(*a0.get_unchecked(p));
                c0 = _mm512_fmadd_ps(a, _mm512_loadu_ps(bp), c0);
                c1 = _mm512_fmadd_ps(a, _mm512_loadu_ps(bp.add(16)), c1);
            }
            _mm512_storeu_ps(out.as_mut_ptr(), c0);
            _mm512_storeu_ps(out.as_mut_ptr().add(16), c1);
        }
    }
}

/// Hand-vectorized AArch64 NEON microkernels; same contract as
/// [`kernels_x86`].
#[cfg(target_arch = "aarch64")]
mod kernels_neon {
    use super::NR;
    use core::arch::aarch64::*;

    /// 4×[`NR`] tile over four 8-column quarter-panels: 8 `q`
    /// accumulators each pass, FMLA-by-scalar per row.
    ///
    /// # Safety
    ///
    /// `a0..a3` must each hold `k` readable elements and `panel` at
    /// least `k * NR`.
    #[target_feature(enable = "neon")]
    pub unsafe fn microkernel_4_neon(
        k: usize,
        a0: &[f32],
        a1: &[f32],
        a2: &[f32],
        a3: &[f32],
        panel: &[f32],
        out: &mut [[f32; NR]; 4],
    ) {
        debug_assert!(panel.len() >= k * NR);
        unsafe {
            let pp = panel.as_ptr();
            for quarter in 0..4 {
                let off = quarter * 8;
                let (mut c00, mut c01) = (vdupq_n_f32(0.0), vdupq_n_f32(0.0));
                let (mut c10, mut c11) = (vdupq_n_f32(0.0), vdupq_n_f32(0.0));
                let (mut c20, mut c21) = (vdupq_n_f32(0.0), vdupq_n_f32(0.0));
                let (mut c30, mut c31) = (vdupq_n_f32(0.0), vdupq_n_f32(0.0));
                for p in 0..k {
                    let bp = pp.add(p * NR + off);
                    let b0 = vld1q_f32(bp);
                    let b1 = vld1q_f32(bp.add(4));
                    let a = *a0.get_unchecked(p);
                    c00 = vfmaq_n_f32(c00, b0, a);
                    c01 = vfmaq_n_f32(c01, b1, a);
                    let a = *a1.get_unchecked(p);
                    c10 = vfmaq_n_f32(c10, b0, a);
                    c11 = vfmaq_n_f32(c11, b1, a);
                    let a = *a2.get_unchecked(p);
                    c20 = vfmaq_n_f32(c20, b0, a);
                    c21 = vfmaq_n_f32(c21, b1, a);
                    let a = *a3.get_unchecked(p);
                    c30 = vfmaq_n_f32(c30, b0, a);
                    c31 = vfmaq_n_f32(c31, b1, a);
                }
                vst1q_f32(out[0].as_mut_ptr().add(off), c00);
                vst1q_f32(out[0].as_mut_ptr().add(off + 4), c01);
                vst1q_f32(out[1].as_mut_ptr().add(off), c10);
                vst1q_f32(out[1].as_mut_ptr().add(off + 4), c11);
                vst1q_f32(out[2].as_mut_ptr().add(off), c20);
                vst1q_f32(out[2].as_mut_ptr().add(off + 4), c21);
                vst1q_f32(out[3].as_mut_ptr().add(off), c30);
                vst1q_f32(out[3].as_mut_ptr().add(off + 4), c31);
            }
        }
    }

    /// Single-row NEON tile: 8 `q` accumulators cover the full panel.
    ///
    /// # Safety
    ///
    /// `a0` must hold `k` readable elements and `panel` at least
    /// `k * NR`.
    #[target_feature(enable = "neon")]
    pub unsafe fn microkernel_1_neon(k: usize, a0: &[f32], panel: &[f32], out: &mut [f32; NR]) {
        debug_assert!(panel.len() >= k * NR);
        unsafe {
            let pp = panel.as_ptr();
            let mut acc = [vdupq_n_f32(0.0); 8];
            for p in 0..k {
                let bp = pp.add(p * NR);
                let a = *a0.get_unchecked(p);
                for (q, c) in acc.iter_mut().enumerate() {
                    *c = vfmaq_n_f32(*c, vld1q_f32(bp.add(q * 4)), a);
                }
            }
            for (q, c) in acc.iter().enumerate() {
                vst1q_f32(out.as_mut_ptr().add(q * 4), *c);
            }
        }
    }
}

/// One 4-row tile through the backend selected for this product.
///
/// The vector kernels are gated by [`crate::simd::backend`], which only
/// returns a backend that passed runtime feature detection, so the
/// `unsafe` calls are sound; slice preconditions are the same as the
/// scalar tile's.
#[inline(always)]
#[allow(unused_variables)]
#[allow(clippy::too_many_arguments)]
fn tile_4(
    backend: Backend,
    k: usize,
    a0: &[f32],
    a1: &[f32],
    a2: &[f32],
    a3: &[f32],
    panel: &[f32],
    acc: &mut [[f32; NR]; 4],
) {
    match backend {
        Backend::Scalar => *acc = microkernel_4(k, a0, a1, a2, a3, panel),
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => unsafe { kernels_x86::microkernel_4_avx2(k, a0, a1, a2, a3, panel, acc) },
        #[cfg(target_arch = "x86_64")]
        Backend::Avx512 => unsafe {
            kernels_x86::microkernel_4_avx512(k, a0, a1, a2, a3, panel, acc)
        },
        #[cfg(target_arch = "aarch64")]
        Backend::Neon => unsafe { kernels_neon::microkernel_4_neon(k, a0, a1, a2, a3, panel, acc) },
        #[allow(unreachable_patterns)]
        _ => unreachable!("active SIMD backend unsupported on this architecture"),
    }
}

/// Single-row counterpart of [`tile_4`].
#[inline(always)]
#[allow(unused_variables)]
fn tile_1(backend: Backend, k: usize, a0: &[f32], panel: &[f32], acc: &mut [f32; NR]) {
    match backend {
        Backend::Scalar => *acc = microkernel_1(k, a0, panel),
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => unsafe { kernels_x86::microkernel_1_avx2(k, a0, panel, acc) },
        #[cfg(target_arch = "x86_64")]
        Backend::Avx512 => unsafe { kernels_x86::microkernel_1_avx512(k, a0, panel, acc) },
        #[cfg(target_arch = "aarch64")]
        Backend::Neon => unsafe { kernels_neon::microkernel_1_neon(k, a0, panel, acc) },
        #[allow(unreachable_patterns)]
        _ => unreachable!("active SIMD backend unsupported on this architecture"),
    }
}

/// Computes rows `[row0, row0 + out.len()/n)` of `C = A·B` into `out`,
/// reading the packed panels of `B` and contiguous A rows (`row_stride`
/// apart). Strided left operands are packed before this runs (see
/// [`gemm_strided_into`]). The backend is resolved once per product and
/// passed down so one GEMM never mixes microkernel implementations,
/// even if a concurrent test scope flips the process-global selection.
#[allow(clippy::too_many_arguments)]
fn gemm_rows(
    backend: Backend,
    a: &[f32],
    row_stride: usize,
    packed_b: &[f32],
    k: usize,
    n: usize,
    block_cols: usize,
    row0: usize,
    out: &mut [f32],
) {
    let rows = out.len().checked_div(n).unwrap_or(0);
    let panels = n.div_ceil(NR);
    let panels_per_block = (block_cols / NR).max(1);
    let s = row_stride;

    let mut panel0 = 0;
    while panel0 < panels {
        let panel1 = (panel0 + panels_per_block).min(panels);
        let mut r = 0;
        while r + MR <= rows {
            let base = (row0 + r) * s;
            let (a0, a1, a2, a3) =
                (&a[base..base + k], &a[base + s..], &a[base + 2 * s..], &a[base + 3 * s..]);
            for panel in panel0..panel1 {
                let pan = &packed_b[panel * k * NR..(panel + 1) * k * NR];
                let mut acc = [[0.0f32; NR]; MR];
                tile_4(backend, k, a0, a1, a2, a3, pan, &mut acc);
                let j0 = panel * NR;
                let width = NR.min(n - j0);
                for (t, tile) in acc.iter().enumerate() {
                    let orow = &mut out[(r + t) * n + j0..(r + t) * n + j0 + width];
                    orow.copy_from_slice(&tile[..width]);
                }
            }
            r += MR;
        }
        while r < rows {
            let base = (row0 + r) * s;
            let a0 = &a[base..base + k];
            for panel in panel0..panel1 {
                let pan = &packed_b[panel * k * NR..(panel + 1) * k * NR];
                let mut acc = [0.0f32; NR];
                tile_1(backend, k, a0, pan, &mut acc);
                let j0 = panel * NR;
                let width = NR.min(n - j0);
                out[r * n + j0..r * n + j0 + width].copy_from_slice(&acc[..width]);
            }
            r += 1;
        }
        panel0 = panel1;
    }
}

thread_local! {
    /// Per-thread packed-B scratch, reused across products so the
    /// steady-state Monte Carlo eval path performs no packing
    /// allocations after the first product of each shape class.
    static PACKED_B: std::cell::RefCell<Vec<f32>> = const { std::cell::RefCell::new(Vec::new()) };
    /// Per-thread packed-A scratch for the strided (transposed) left
    /// operand, likewise reused across calls.
    static PACKED_A: std::cell::RefCell<Vec<f32>> = const { std::cell::RefCell::new(Vec::new()) };
}

/// Shared kernel: `C = A·B` for logical `a: m×k`, `b: k×n` (each read
/// through its strides), with an explicit thread count (`0` = the global
/// setting), written into `out` (`m·n`, fully overwritten).
///
/// The execution plan — worker count and block width, both byte-neutral —
/// is resolved once per product through [`crate::tune::gemm_plan`]
/// (pin/heuristic, or the shape-keyed autotune cache when tuning is on)
/// and passed down, so one GEMM never mixes configs mid-flight.
#[allow(clippy::too_many_arguments)]
fn gemm_strided_into(
    kind: GemmKind,
    a: &[f32],
    a_strides: Strides,
    b: &[f32],
    b_strides: Strides,
    m: usize,
    k: usize,
    n: usize,
    threads: usize,
    out: &mut [f32],
) {
    assert_eq!(out.len(), m * n, "gemm output buffer must hold m·n elements");
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        out.fill(0.0); // all-zero by definition; nothing to accumulate
        return;
    }
    let plan = tune::gemm_plan(kind, m, k, n, threads);
    gemm_with_plan(a, a_strides, b, b_strides, m, k, n, plan, out);
}

/// [`gemm_strided_into`] below the plan resolution: executes one product
/// under an explicit, already-chosen [`GemmPlan`]. Also the entry the
/// autotuner's timing loop uses — candidates are forced here directly,
/// so tuning a shape can never recurse back into the tuner.
#[allow(clippy::too_many_arguments)]
fn gemm_with_plan(
    a: &[f32],
    a_strides: Strides,
    b: &[f32],
    b_strides: Strides,
    m: usize,
    k: usize,
    n: usize,
    plan: GemmPlan,
    out: &mut [f32],
) {
    // A strided (transposed) left operand is panel-packed once, on the
    // calling thread, into the reused thread-local scratch — the row
    // sweep and any worker threads then read contiguous rows, so the
    // threaded path performs no per-worker packing or allocation. The
    // microkernel sees identical values in identical order for both
    // layouts, so they are bit-identical.
    if a_strides.col != 1 {
        return PACKED_A.with(|cell| {
            let mut buf = cell.borrow_mut();
            buf.clear();
            buf.resize(m * k, 0.0);
            pack_a_panel(a, a_strides, k, 0, m, &mut buf);
            gemm_with_plan(&buf, Strides::contiguous(k), b, b_strides, m, k, n, plan, out);
        });
    }
    PACKED_B.with(|cell| {
        let mut packed = cell.borrow_mut();
        pack_panels(b, b_strides, k, n, &mut packed);
        let backend = simd::backend();
        let block_cols = plan.block_cols.max(NR);
        let workers = plan.workers.min(m).max(1);
        if workers == 1 {
            gemm_rows(backend, a, a_strides.row, &packed, k, n, block_cols, 0, out);
        } else {
            // Disjoint row chunks; each worker runs the identical serial
            // routine on its range, so the split cannot affect values.
            let chunk_rows = m.div_ceil(workers);
            let packed_ref = &packed[..];
            std::thread::scope(|scope| {
                for (ci, out_chunk) in out.chunks_mut(chunk_rows * n).enumerate() {
                    scope.spawn(move || {
                        gemm_rows(
                            backend,
                            a,
                            a_strides.row,
                            packed_ref,
                            k,
                            n,
                            block_cols,
                            ci * chunk_rows,
                            out_chunk,
                        );
                    });
                }
            });
        }
    });
}

/// Contiguous `C = A·B` under a forced [`GemmPlan`] — the autotuner's
/// timing-loop entry (bypasses plan resolution entirely).
pub(crate) fn gemm_forced(
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    plan: GemmPlan,
    out: &mut [f32],
) {
    assert_eq!(out.len(), m * n, "gemm output buffer must hold m·n elements");
    if m == 0 || n == 0 || k == 0 {
        out.fill(0.0);
        return;
    }
    gemm_with_plan(a, Strides::contiguous(k), b, Strides::contiguous(n), m, k, n, plan, out);
}

/// `C = A·B` on raw row-major slices, written into `out`.
///
/// The allocation-free entry point behind [`matmul`]: layers that keep
/// their own scratch buffers (conv lowering, the Monte Carlo eval path)
/// call this directly. `out` is fully overwritten.
///
/// # Panics
///
/// Panics if any slice length disagrees with `m`, `k`, `n`.
pub fn matmul_into(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
    assert_eq!(a.len(), m * k, "matmul_into: left operand length");
    assert_eq!(b.len(), k * n, "matmul_into: right operand length");
    gemm_strided_into(
        GemmKind::MM,
        a,
        Strides::contiguous(k),
        b,
        Strides::contiguous(n),
        m,
        k,
        n,
        0,
        out,
    );
}

/// `C = Aᵀ·B` on raw slices (`a` stored row-major as `k×m`), written into
/// `out`, packing `Aᵀ` row groups directly from the strided source.
///
/// # Panics
///
/// Panics if any slice length disagrees with `m`, `k`, `n`.
pub fn matmul_at_into(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
    assert_eq!(a.len(), k * m, "matmul_at_into: left operand length");
    assert_eq!(b.len(), k * n, "matmul_at_into: right operand length");
    gemm_strided_into(
        GemmKind::AT,
        a,
        Strides::transposed(m),
        b,
        Strides::contiguous(n),
        m,
        k,
        n,
        0,
        out,
    );
}

/// `C = A·Bᵀ` on raw slices (`b` stored row-major as `n×k`), written into
/// `out`, packing `Bᵀ` column panels directly from the strided source.
///
/// # Panics
///
/// Panics if any slice length disagrees with `m`, `k`, `n`.
pub fn matmul_bt_into(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
    assert_eq!(a.len(), m * k, "matmul_bt_into: left operand length");
    assert_eq!(b.len(), n * k, "matmul_bt_into: right operand length");
    gemm_strided_into(
        GemmKind::BT,
        a,
        Strides::contiguous(k),
        b,
        Strides::transposed(k),
        m,
        k,
        n,
        0,
        out,
    );
}

/// `C = A · B` for rank-2 tensors `A: [m, k]`, `B: [k, n]`.
///
/// # Panics
///
/// Panics if either operand is not rank 2 or the inner dimensions differ.
///
/// # Example
///
/// ```
/// use swim_tensor::{Tensor, linalg::matmul};
///
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
/// let i = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2])?;
/// assert_eq!(matmul(&a, &i), a);
/// # Ok::<(), swim_tensor::TensorError>(())
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.rank(), 2, "matmul: left operand must be rank 2");
    assert_eq!(b.rank(), 2, "matmul: right operand must be rank 2");
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let (kb, n) = (b.shape()[0], b.shape()[1]);
    assert_eq!(k, kb, "matmul: inner dimensions {k} vs {kb}");
    let mut out = vec![0.0f32; m * n];
    matmul_into(a.data(), b.data(), m, k, n, &mut out);
    Tensor::from_vec(out, &[m, n]).expect("matmul output shape is consistent")
}

/// `C = Aᵀ · B` for `A: [k, m]`, `B: [k, n]`, without materializing `Aᵀ`
/// anywhere.
///
/// Used by backpropagation to form weight gradients (`∂f/∂W = δᵀ·P` style
/// products). The kernel packs `Aᵀ` row groups directly from the strided
/// source (bounded `MR·k` scratch), so the cost matches [`matmul`] —
/// there is no `O(k·m)` transpose pass or full-size transposed copy. The
/// result is bit-identical to `matmul(&a.transposed(), b)`.
///
/// # Panics
///
/// Panics on rank or inner-dimension mismatch.
pub fn matmul_at(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.rank(), 2, "matmul_at: left operand must be rank 2");
    assert_eq!(b.rank(), 2, "matmul_at: right operand must be rank 2");
    let (k, m) = (a.shape()[0], a.shape()[1]);
    let (kb, n) = (b.shape()[0], b.shape()[1]);
    assert_eq!(k, kb, "matmul_at: inner dimensions {k} vs {kb}");
    let mut out = vec![0.0f32; m * n];
    matmul_at_into(a.data(), b.data(), m, k, n, &mut out);
    Tensor::from_vec(out, &[m, n]).expect("matmul_at output shape is consistent")
}

/// `C = A · Bᵀ` for `A: [m, k]`, `B: [n, k]`, without materializing `Bᵀ`
/// anywhere.
///
/// Used by backpropagation to push gradients through a layer
/// (`∂f/∂P = δ·W` style products) and by the conv lowering (`cols · Wᵀ`).
/// The kernel packs `Bᵀ` column panels directly from the strided source,
/// so the cost matches [`matmul`] — there is no `O(n·k)` transpose pass.
/// The result is bit-identical to `matmul(a, &b.transposed())`.
///
/// # Panics
///
/// Panics on rank or inner-dimension mismatch.
pub fn matmul_bt(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.rank(), 2, "matmul_bt: left operand must be rank 2");
    assert_eq!(b.rank(), 2, "matmul_bt: right operand must be rank 2");
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let (n, kb) = (b.shape()[0], b.shape()[1]);
    assert_eq!(k, kb, "matmul_bt: inner dimensions {k} vs {kb}");
    let mut out = vec![0.0f32; m * n];
    matmul_bt_into(a.data(), b.data(), m, k, n, &mut out);
    Tensor::from_vec(out, &[m, n]).expect("matmul_bt output shape is consistent")
}

/// The reference `i-k-j` triple loop (un-fused multiply-adds), kept as
/// the accuracy oracle for the blocked kernel — bit-identical on targets
/// without hardware FMA, ulp-tolerance otherwise; see the module docs —
/// and as the baseline in the `kernels` bench.
pub fn matmul_reference(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.rank(), 2, "matmul_reference: left operand must be rank 2");
    assert_eq!(b.rank(), 2, "matmul_reference: right operand must be rank 2");
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let (kb, n) = (b.shape()[0], b.shape()[1]);
    assert_eq!(k, kb, "matmul_reference: inner dimensions {k} vs {kb}");
    let mut out = vec![0.0f32; m * n];
    let ad = a.data();
    let bd = b.data();
    for i in 0..m {
        let arow = &ad[i * k..(i + 1) * k];
        let orow = &mut out[i * n..(i + 1) * n];
        for (p, &aval) in arow.iter().enumerate() {
            let brow = &bd[p * n..(p + 1) * n];
            for (o, &bval) in orow.iter_mut().zip(brow) {
                *o += aval * bval;
            }
        }
    }
    Tensor::from_vec(out, &[m, n]).expect("matmul_reference output shape is consistent")
}

/// `matmul` with an explicit thread count, exposed for the `kernels`
/// bench and determinism tests; `threads = 1` forces the serial path even
/// above [`PARALLEL_MIN_FLOPS`].
pub fn matmul_with_threads(a: &Tensor, b: &Tensor, threads: usize) -> Tensor {
    assert_eq!(a.rank(), 2, "matmul: left operand must be rank 2");
    assert_eq!(b.rank(), 2, "matmul: right operand must be rank 2");
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let (kb, n) = (b.shape()[0], b.shape()[1]);
    assert_eq!(k, kb, "matmul: inner dimensions {k} vs {kb}");
    let mut out = vec![0.0f32; m * n];
    gemm_strided_into(
        GemmKind::MM,
        a.data(),
        Strides::contiguous(k),
        b.data(),
        Strides::contiguous(n),
        m,
        k,
        n,
        threads.max(1),
        &mut out,
    );
    Tensor::from_vec(out, &[m, n]).expect("matmul output shape is consistent")
}

/// Matrix–vector product `y = A · x` for `A: [m, n]`, `x: [n]`.
///
/// # Panics
///
/// Panics on rank or dimension mismatch.
pub fn matvec(a: &Tensor, x: &Tensor) -> Tensor {
    assert_eq!(a.rank(), 2, "matvec: matrix must be rank 2");
    assert_eq!(x.rank(), 1, "matvec: vector must be rank 1");
    let (m, n) = (a.shape()[0], a.shape()[1]);
    assert_eq!(n, x.shape()[0], "matvec: dimensions {n} vs {}", x.shape()[0]);
    let ad = a.data();
    let xd = x.data();
    let mut out = vec![0.0f32; m];
    for (i, o) in out.iter_mut().enumerate() {
        let row = &ad[i * n..(i + 1) * n];
        let mut acc = 0.0f32;
        for (&a, &b) in row.iter().zip(xd) {
            acc += a * b;
        }
        *o = acc;
    }
    Tensor::from_vec(out, &[m]).expect("matvec output shape is consistent")
}

/// Outer product `C = x · yᵀ` for vectors `x: [m]`, `y: [n]`.
///
/// # Panics
///
/// Panics if either operand is not rank 1.
pub fn outer(x: &Tensor, y: &Tensor) -> Tensor {
    assert_eq!(x.rank(), 1, "outer: left operand must be rank 1");
    assert_eq!(y.rank(), 1, "outer: right operand must be rank 1");
    let (m, n) = (x.shape()[0], y.shape()[0]);
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        let xv = x.data()[i];
        for j in 0..n {
            out[i * n + j] = xv * y.data()[j];
        }
    }
    Tensor::from_vec(out, &[m, n]).expect("outer output shape is consistent")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Prng;

    fn naive_matmul(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.shape()[0], a.shape()[1]);
        let n = b.shape()[1];
        let mut out = Tensor::zeros(&[m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for p in 0..k {
                    acc += a[[i, p]] * b[[p, j]];
                }
                out[[i, j]] = acc;
            }
        }
        out
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let eye = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2]).unwrap();
        assert_eq!(matmul(&a, &eye), a);
        assert_eq!(matmul(&eye, &a), a);
    }

    #[test]
    fn matmul_matches_naive() {
        let mut rng = Prng::seed_from_u64(2);
        let a = Tensor::randn(&[7, 5], &mut rng);
        let b = Tensor::randn(&[5, 9], &mut rng);
        assert!(matmul(&a, &b).allclose(&naive_matmul(&a, &b), 1e-4));
    }

    /// The blocked kernel must match the reference `i-k-j` loop on
    /// awkward (non-multiple-of-tile) shapes. On the scalar backend it
    /// is bit-identical on *every* build (the `mac` helper never fuses,
    /// so build flags cannot change its rounding); on the vector
    /// backends it drifts only within the pinned
    /// [`simd::GEMM_DRIFT_TOL`] (the fused multiply-add skips one
    /// rounding per `k` step).
    #[test]
    fn blocked_kernel_matches_reference() {
        let mut rng = Prng::seed_from_u64(11);
        for &(m, k, n) in &[(1, 1, 1), (3, 7, 5), (33, 17, 29), (64, 64, 64), (13, 128, 47)] {
            let a = Tensor::randn(&[m, k], &mut rng);
            let b = Tensor::randn(&[k, n], &mut rng);
            let reference = matmul_reference(&a, &b);
            let scalar = simd::with_backend(simd::Backend::Scalar, || matmul(&a, &b)).unwrap();
            assert_eq!(scalar.data(), reference.data(), "shape {m}x{k}x{n}");
            for backend in simd::available_backends() {
                let blocked = simd::with_backend(backend, || matmul(&a, &b)).unwrap();
                assert!(
                    blocked.allclose(&reference, simd::GEMM_DRIFT_TOL),
                    "shape {m}x{k}x{n}, backend {backend}"
                );
            }
        }
    }

    /// Thread count must not change a single bit of the result on any
    /// backend, even on products large enough to take the parallel path.
    #[test]
    fn threaded_kernel_bit_identical_across_thread_counts() {
        let mut rng = Prng::seed_from_u64(12);
        // 192·96·256 = 4.7M multiplies ≥ PARALLEL_MIN_FLOPS.
        let a = Tensor::randn(&[192, 96], &mut rng);
        let b = Tensor::randn(&[96, 256], &mut rng);
        const { assert!(192 * 96 * 256 >= PARALLEL_MIN_FLOPS) };
        for backend in simd::available_backends() {
            simd::with_backend(backend, || {
                let serial = matmul_with_threads(&a, &b, 1);
                for threads in [2, 3, 8] {
                    let parallel = matmul_with_threads(&a, &b, threads);
                    assert_eq!(
                        serial.data(),
                        parallel.data(),
                        "threads = {threads}, backend {backend}"
                    );
                }
                assert!(serial.allclose(&matmul_reference(&a, &b), 1e-3));
            })
            .unwrap();
        }
    }

    /// Block size is a pure performance knob: any setting gives the same
    /// bits.
    #[test]
    fn block_cols_knob_does_not_change_results() {
        let mut rng = Prng::seed_from_u64(13);
        let a = Tensor::randn(&[24, 70], &mut rng);
        let b = Tensor::randn(&[70, 90], &mut rng);
        let baseline = matmul(&a, &b);
        for cols in [NR, 32, 64, 4096] {
            set_gemm_block_cols(cols);
            assert_eq!(matmul(&a, &b).data(), baseline.data(), "block_cols = {cols}");
        }
        set_gemm_block_cols(0);
    }

    /// Regression for the zero-skip unsoundness: the old kernel skipped
    /// `a == 0.0` terms, silently dropping `0·NaN` and `0·∞`
    /// contributions. True GEMM propagates them.
    #[test]
    fn zero_times_nan_and_inf_propagate() {
        // Row of A is all zeros; B carries a NaN in the first column and
        // +∞ in the second. C[0,0] and C[0,1] must both be NaN.
        let a = Tensor::from_vec(vec![0.0, 0.0, 1.0, 2.0], &[2, 2]).unwrap();
        let b = Tensor::from_vec(vec![f32::NAN, f32::INFINITY, 3.0, 4.0], &[2, 2]).unwrap();
        let c = matmul(&a, &b);
        assert!(c.data()[0].is_nan(), "0·NaN must contribute NaN");
        assert!(c.data()[1].is_nan(), "0·∞ must contribute NaN (0·∞ = NaN)");
        // The second row has no zero entries: NaN/∞ flow through normally.
        assert!(c.data()[2].is_nan());
        assert!(c.data()[3].is_infinite() && c.data()[3] > 0.0);

        // Same property through the transposed variants.
        let c_at = matmul_at(&a.transposed(), &b);
        assert!(c_at.data()[0].is_nan());
        let c_bt = matmul_bt(&a, &b.transposed());
        assert!(c_bt.data()[0].is_nan());
    }

    /// The strided A-packing path must reproduce `matmul` of the
    /// explicitly transposed operand *bit for bit* — the packed values
    /// and accumulation order are identical, only the copy is gone.
    #[test]
    fn matmul_at_bit_identical_to_transpose_then_matmul() {
        let mut rng = Prng::seed_from_u64(3);
        for &(k, m, n) in &[(6, 4, 5), (1, 1, 1), (33, 17, 29), (64, 13, 47), (128, 96, 70)] {
            let a = Tensor::randn(&[k, m], &mut rng);
            let b = Tensor::randn(&[k, n], &mut rng);
            let expected = matmul(&a.transposed(), &b);
            assert_eq!(matmul_at(&a, &b).data(), expected.data(), "shape {k}x{m}x{n}");
        }
    }

    /// Same contract for the strided B-packing path.
    #[test]
    fn matmul_bt_bit_identical_to_matmul_with_transpose() {
        let mut rng = Prng::seed_from_u64(4);
        for &(m, k, n) in &[(3, 8, 5), (1, 1, 1), (29, 17, 33), (13, 64, 47), (96, 70, 128)] {
            let a = Tensor::randn(&[m, k], &mut rng);
            let b = Tensor::randn(&[n, k], &mut rng);
            let expected = matmul(&a, &b.transposed());
            assert_eq!(matmul_bt(&a, &b).data(), expected.data(), "shape {m}x{k}x{n}");
        }
    }

    /// The `_into` entry points are the same kernels on caller buffers.
    #[test]
    fn into_variants_match_tensor_variants() {
        let mut rng = Prng::seed_from_u64(14);
        let a = Tensor::randn(&[9, 7], &mut rng);
        let b = Tensor::randn(&[7, 11], &mut rng);
        let mut out = vec![0.0f32; 9 * 11];
        matmul_into(a.data(), b.data(), 9, 7, 11, &mut out);
        assert_eq!(out, matmul(&a, &b).data());

        let at = Tensor::randn(&[7, 9], &mut rng);
        matmul_at_into(at.data(), b.data(), 9, 7, 11, &mut out);
        assert_eq!(out, matmul_at(&at, &b).data());

        let bt = Tensor::randn(&[11, 7], &mut rng);
        matmul_bt_into(a.data(), bt.data(), 9, 7, 11, &mut out);
        assert_eq!(out, matmul_bt(&a, &bt).data());

        // Buffer reuse: a second call fully overwrites stale contents.
        let zero = Tensor::zeros(&[9, 7]);
        matmul_into(zero.data(), b.data(), 9, 7, 11, &mut out);
        assert!(out.iter().all(|&v| v == 0.0));
    }

    /// The threading threshold is a pure performance knob.
    #[test]
    fn min_flops_knob_does_not_change_results() {
        let mut rng = Prng::seed_from_u64(15);
        let a = Tensor::randn(&[40, 30], &mut rng);
        let b = Tensor::randn(&[30, 50], &mut rng);
        let baseline = matmul(&a, &b);
        set_gemm_parallel_min_flops(1); // force the threaded path
        let forced = matmul(&a, &b);
        set_gemm_parallel_min_flops(0);
        assert_eq!(forced.data(), baseline.data());
        assert_eq!(gemm_parallel_min_flops(), PARALLEL_MIN_FLOPS);
    }

    #[test]
    fn matvec_matches_matmul() {
        let mut rng = Prng::seed_from_u64(5);
        let a = Tensor::randn(&[4, 6], &mut rng);
        let x = Tensor::randn(&[6], &mut rng);
        let as_mat = x.clone().reshaped(&[6, 1]);
        let expected = matmul(&a, &as_mat).reshaped(&[4]);
        assert!(matvec(&a, &x).allclose(&expected, 1e-5));
    }

    #[test]
    fn outer_rank_one_structure() {
        let x = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let y = Tensor::from_vec(vec![3.0, 4.0, 5.0], &[3]).unwrap();
        let o = outer(&x, &y);
        assert_eq!(o.shape(), &[2, 3]);
        assert_eq!(o.data(), &[3.0, 4.0, 5.0, 6.0, 8.0, 10.0]);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn matmul_dim_mismatch_panics() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        matmul(&a, &b);
    }

    #[test]
    fn zero_sized_matmul() {
        let a = Tensor::zeros(&[0, 3]);
        let b = Tensor::zeros(&[3, 2]);
        let c = matmul(&a, &b);
        assert_eq!(c.shape(), &[0, 2]);
        let a = Tensor::zeros(&[2, 0]);
        let b = Tensor::zeros(&[0, 3]);
        let c = matmul(&a, &b);
        assert_eq!(c.shape(), &[2, 3]);
        assert!(c.data().iter().all(|&v| v == 0.0));
    }
}
