//! The dense, row-major `f32` tensor type.

use crate::error::TensorError;
use crate::rng::Prng;
use crate::shape::Shape;
use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

/// A contiguous, row-major, n-dimensional array of `f32`.
///
/// `Tensor` is the workhorse value type of the workspace: network
/// activations, weights, gradients, and the per-weight second derivatives
/// SWIM ranks by are all tensors. Elementwise algebra is shape-checked and
/// panics on mismatch (mismatches indicate layer-wiring bugs, not
/// recoverable conditions); constructors that take external data are
/// fallible and return [`TensorError`].
///
/// # Example
///
/// ```
/// use swim_tensor::Tensor;
///
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
/// let b = Tensor::full(&[2, 2], 0.5);
/// let c = &a + &b;
/// assert_eq!(c[[1, 1]], 4.5);
/// # Ok::<(), swim_tensor::TensorError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    data: Vec<f32>,
    shape: Shape,
}

impl Tensor {
    // ---------------------------------------------------------------- ctors

    /// Creates a tensor of zeros.
    pub fn zeros(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        Tensor { data: vec![0.0; shape.len()], shape }
    }

    /// Creates a tensor of ones.
    pub fn ones(dims: &[usize]) -> Self {
        Tensor::full(dims, 1.0)
    }

    /// Creates a tensor filled with `value`.
    pub fn full(dims: &[usize], value: f32) -> Self {
        let shape = Shape::new(dims);
        Tensor { data: vec![value; shape.len()], shape }
    }

    /// Creates a rank-0 tensor holding a single value.
    pub fn scalar(value: f32) -> Self {
        Tensor { data: vec![value], shape: Shape::new(&[]) }
    }

    /// Creates a tensor from existing data.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if `data.len()` differs from
    /// the product of `dims`.
    pub fn from_vec(data: Vec<f32>, dims: &[usize]) -> Result<Self, TensorError> {
        let shape = Shape::new(dims);
        if data.len() != shape.len() {
            return Err(TensorError::LengthMismatch { len: data.len(), shape: dims.to_vec() });
        }
        Ok(Tensor { data, shape })
    }

    /// Creates a tensor by evaluating `f` at every linear index.
    pub fn from_fn(dims: &[usize], mut f: impl FnMut(usize) -> f32) -> Self {
        let shape = Shape::new(dims);
        let data = (0..shape.len()).map(&mut f).collect();
        Tensor { data, shape }
    }

    /// Creates a tensor of standard-normal samples.
    pub fn randn(dims: &[usize], rng: &mut Prng) -> Self {
        Tensor::from_fn(dims, |_| rng.normal_f32(0.0, 1.0))
    }

    /// Creates a tensor of uniform samples in `[lo, hi)`.
    pub fn rand_uniform(dims: &[usize], lo: f32, hi: f32, rng: &mut Prng) -> Self {
        Tensor::from_fn(dims, |_| lo + (hi - lo) * rng.uniform_f32())
    }

    // ------------------------------------------------------------ accessors

    /// The dimension extents.
    pub fn shape(&self) -> &[usize] {
        self.shape.dims()
    }

    /// The shape object (strides, offsets).
    pub fn shape_obj(&self) -> &Shape {
        &self.shape
    }

    /// Number of axes.
    pub fn rank(&self) -> usize {
        self.shape.rank()
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The underlying data in row-major order.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its data buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if the index rank or any component is out of range.
    pub fn at(&self, idx: &[usize]) -> f32 {
        self.data[self.shape.offset(idx)]
    }

    /// Mutable element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if the index rank or any component is out of range.
    pub fn at_mut(&mut self, idx: &[usize]) -> &mut f32 {
        let off = self.shape.offset(idx);
        &mut self.data[off]
    }

    // ------------------------------------------------------------- reshape

    /// Returns a tensor with the same data and a new shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ReshapeMismatch`] if the element count would
    /// change.
    pub fn reshape(&self, dims: &[usize]) -> Result<Tensor, TensorError> {
        let shape = Shape::new(dims);
        if shape.len() != self.data.len() {
            return Err(TensorError::ReshapeMismatch {
                len: self.data.len(),
                shape: dims.to_vec(),
            });
        }
        Ok(Tensor { data: self.data.clone(), shape })
    }

    /// Infallible reshape for internal hot paths.
    ///
    /// # Panics
    ///
    /// Panics if the element count would change.
    pub fn reshaped(mut self, dims: &[usize]) -> Tensor {
        let shape = Shape::new(dims);
        assert_eq!(
            shape.len(),
            self.data.len(),
            "cannot reshape {} elements into {:?}",
            self.data.len(),
            dims
        );
        self.shape = shape;
        self
    }

    /// Flattens to rank 1.
    pub fn flattened(self) -> Tensor {
        let n = self.data.len();
        self.reshaped(&[n])
    }

    /// Reshapes this tensor in place to `dims`, zero-filled.
    ///
    /// Unlike constructing a fresh [`Tensor::zeros`], both the data and
    /// the shape vectors reuse their existing capacity, so recycling a
    /// buffer through shapes no larger than previously seen performs no
    /// heap allocation. The result is indistinguishable from
    /// `Tensor::zeros(dims)`.
    pub fn reset_zeroed(&mut self, dims: &[usize]) {
        self.shape.set_dims(dims);
        let len = self.shape.len();
        self.data.clear();
        self.data.resize(len, 0.0);
    }

    /// Makes this tensor a copy of `other` (shape and data), reusing the
    /// existing allocations when capacity suffices.
    pub fn copy_from(&mut self, other: &Tensor) {
        self.shape.set_dims(other.shape());
        self.data.clear();
        self.data.extend_from_slice(&other.data);
    }

    // ------------------------------------------------------- elementwise ops

    /// Applies `f` to every element, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor { data: self.data.iter().map(|&x| f(x)).collect(), shape: self.shape.clone() }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Combines two tensors elementwise with `f`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn zip_map(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        self.assert_same_shape(other);
        Tensor {
            data: self.data.iter().zip(&other.data).map(|(&a, &b)| f(a, b)).collect(),
            shape: self.shape.clone(),
        }
    }

    /// `self += other` elementwise.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn add_assign_t(&mut self, other: &Tensor) {
        self.assert_same_shape(other);
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// `self -= other` elementwise.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn sub_assign_t(&mut self, other: &Tensor) {
        self.assert_same_shape(other);
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a -= b;
        }
    }

    /// `self *= other` elementwise (Hadamard product).
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn mul_assign_t(&mut self, other: &Tensor) {
        self.assert_same_shape(other);
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a *= b;
        }
    }

    /// `self += alpha * other` (BLAS `axpy`).
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) {
        self.assert_same_shape(other);
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Multiplies every element by `alpha` in place.
    pub fn scale(&mut self, alpha: f32) {
        for x in &mut self.data {
            *x *= alpha;
        }
    }

    /// Adds `alpha` to every element in place.
    pub fn add_scalar(&mut self, alpha: f32) {
        for x in &mut self.data {
            *x += alpha;
        }
    }

    /// Sets every element to zero.
    pub fn fill(&mut self, value: f32) {
        self.data.fill(value);
    }

    // ------------------------------------------------------------ reductions

    /// Sum of all elements, accumulated in `f64`.
    pub fn sum(&self) -> f64 {
        self.data.iter().map(|&x| x as f64).sum()
    }

    /// Mean of all elements.
    ///
    /// Returns `0.0` for an empty tensor.
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f64
        }
    }

    /// Maximum element, or `f32::NEG_INFINITY` when empty.
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element, or `f32::INFINITY` when empty.
    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Index of the maximum element (first on ties).
    ///
    /// # Panics
    ///
    /// Panics if the tensor is empty.
    pub fn argmax(&self) -> usize {
        assert!(!self.data.is_empty(), "argmax of empty tensor");
        let mut best = 0;
        for (i, &x) in self.data.iter().enumerate() {
            if x > self.data[best] {
                best = i;
            }
        }
        best
    }

    /// Per-row argmax of a rank-2 tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2 or has zero columns.
    pub fn argmax_rows(&self) -> Vec<usize> {
        assert_eq!(self.rank(), 2, "argmax_rows requires rank 2");
        let (rows, cols) = (self.shape.dim(0), self.shape.dim(1));
        assert!(cols > 0, "argmax_rows requires at least one column");
        (0..rows)
            .map(|r| {
                let row = &self.data[r * cols..(r + 1) * cols];
                let mut best = 0;
                for (i, &x) in row.iter().enumerate() {
                    if x > row[best] {
                        best = i;
                    }
                }
                best
            })
            .collect()
    }

    /// Sum over axis 0 of a rank-2 tensor, yielding one value per column.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2.
    pub fn sum_axis0(&self) -> Tensor {
        assert_eq!(self.rank(), 2, "sum_axis0 requires rank 2");
        let (rows, cols) = (self.shape.dim(0), self.shape.dim(1));
        let mut out = vec![0.0f32; cols];
        for r in 0..rows {
            let row = &self.data[r * cols..(r + 1) * cols];
            for (o, &x) in out.iter_mut().zip(row) {
                *o += x;
            }
        }
        Tensor { data: out, shape: Shape::new(&[cols]) }
    }

    /// Squared L2 norm, accumulated in `f64`.
    pub fn norm_sq(&self) -> f64 {
        self.data.iter().map(|&x| (x as f64) * (x as f64)).sum()
    }

    /// Dot product with another tensor of identical shape.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn dot(&self, other: &Tensor) -> f64 {
        self.assert_same_shape(other);
        self.data.iter().zip(&other.data).map(|(&a, &b)| a as f64 * b as f64).sum()
    }

    // ------------------------------------------------------------- 2-D views

    /// Transpose of a rank-2 tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2.
    pub fn transposed(&self) -> Tensor {
        assert_eq!(self.rank(), 2, "transpose requires rank 2");
        let (rows, cols) = (self.shape.dim(0), self.shape.dim(1));
        let mut out = vec![0.0f32; rows * cols];
        for r in 0..rows {
            for c in 0..cols {
                out[c * rows + r] = self.data[r * cols + c];
            }
        }
        Tensor { data: out, shape: Shape::new(&[cols, rows]) }
    }

    /// Copies a contiguous range of entries along axis 0 into a new tensor.
    ///
    /// For a `[N, ...]` tensor this extracts items `start..end` of the
    /// batch dimension.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is rank 0 or `start > end` or `end` exceeds the
    /// first dimension.
    pub fn slice_axis0(&self, start: usize, end: usize) -> Tensor {
        assert!(self.rank() >= 1, "slice_axis0 requires rank >= 1");
        let n = self.shape.dim(0);
        assert!(
            start <= end && end <= n,
            "slice {start}..{end} out of bounds for axis of size {n}"
        );
        let inner: usize = self.shape.dims()[1..].iter().product();
        let data = self.data[start * inner..end * inner].to_vec();
        let mut dims = self.shape.dims().to_vec();
        dims[0] = end - start;
        Tensor { data, shape: Shape::new(&dims) }
    }

    /// [`Tensor::slice_axis0`] into a caller-owned tensor, reusing its
    /// allocations — the batching primitive of the allocation-free eval
    /// loop. `out` is completely overwritten (shape and data).
    ///
    /// # Panics
    ///
    /// Panics if the tensor is rank 0 or `start > end` or `end` exceeds
    /// the first dimension.
    pub fn slice_axis0_into(&self, start: usize, end: usize, out: &mut Tensor) {
        assert!(self.rank() >= 1, "slice_axis0 requires rank >= 1");
        let n = self.shape.dim(0);
        assert!(
            start <= end && end <= n,
            "slice {start}..{end} out of bounds for axis of size {n}"
        );
        let inner: usize = self.shape.dims()[1..].iter().product();
        out.shape.set_dims(self.shape.dims());
        out.shape.set_dim(0, end - start);
        out.data.clear();
        out.data.extend_from_slice(&self.data[start * inner..end * inner]);
    }

    /// Gathers rows of axis 0 by index into a new tensor.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds or the tensor is rank 0.
    pub fn gather_axis0(&self, indices: &[usize]) -> Tensor {
        assert!(self.rank() >= 1, "gather_axis0 requires rank >= 1");
        let n = self.shape.dim(0);
        let inner: usize = self.shape.dims()[1..].iter().product();
        let mut data = Vec::with_capacity(indices.len() * inner);
        for &i in indices {
            assert!(i < n, "gather index {i} out of bounds for axis of size {n}");
            data.extend_from_slice(&self.data[i * inner..(i + 1) * inner]);
        }
        let mut dims = self.shape.dims().to_vec();
        dims[0] = indices.len();
        Tensor { data, shape: Shape::new(&dims) }
    }

    // ------------------------------------------------------------- utilities

    /// Whether all elements are within `tol` of `other`'s.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn allclose(&self, other: &Tensor, tol: f32) -> bool {
        self.assert_same_shape(other);
        self.data.iter().zip(&other.data).all(|(&a, &b)| (a - b).abs() <= tol)
    }

    fn assert_same_shape(&self, other: &Tensor) {
        assert!(
            self.shape.same_as(&other.shape),
            "shape mismatch: {} vs {}",
            self.shape,
            other.shape
        );
    }
}

impl Index<[usize; 2]> for Tensor {
    type Output = f32;
    fn index(&self, idx: [usize; 2]) -> &f32 {
        &self.data[self.shape.offset(&idx)]
    }
}

impl IndexMut<[usize; 2]> for Tensor {
    fn index_mut(&mut self, idx: [usize; 2]) -> &mut f32 {
        let off = self.shape.offset(&idx);
        &mut self.data[off]
    }
}

impl Index<[usize; 4]> for Tensor {
    type Output = f32;
    fn index(&self, idx: [usize; 4]) -> &f32 {
        &self.data[self.shape.offset(&idx)]
    }
}

impl IndexMut<[usize; 4]> for Tensor {
    fn index_mut(&mut self, idx: [usize; 4]) -> &mut f32 {
        let off = self.shape.offset(&idx);
        &mut self.data[off]
    }
}

impl Add for &Tensor {
    type Output = Tensor;
    fn add(self, rhs: &Tensor) -> Tensor {
        self.zip_map(rhs, |a, b| a + b)
    }
}

impl Sub for &Tensor {
    type Output = Tensor;
    fn sub(self, rhs: &Tensor) -> Tensor {
        self.zip_map(rhs, |a, b| a - b)
    }
}

impl Mul for &Tensor {
    type Output = Tensor;
    fn mul(self, rhs: &Tensor) -> Tensor {
        self.zip_map(rhs, |a, b| a * b)
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{} n={}", self.shape, self.len())?;
        if self.len() <= 8 {
            write!(f, " {:?}", self.data)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        assert_eq!(t.shape(), &[2, 3]);
        assert_eq!(t[[0, 0]], 1.0);
        assert_eq!(t[[1, 2]], 6.0);
        assert_eq!(t.at(&[1, 0]), 4.0);
    }

    #[test]
    fn from_vec_length_check() {
        assert!(Tensor::from_vec(vec![1.0; 5], &[2, 3]).is_err());
    }

    #[test]
    fn reset_zeroed_matches_fresh_zeros() {
        let mut t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        t.reset_zeroed(&[3, 1]);
        assert_eq!(t, Tensor::zeros(&[3, 1]));
        // Growing past the old length also zero-fills everything.
        t.reset_zeroed(&[2, 4]);
        assert_eq!(t, Tensor::zeros(&[2, 4]));
    }

    #[test]
    fn reset_zeroed_reuses_capacity() {
        let mut t = Tensor::zeros(&[8, 8]);
        let ptr = t.data().as_ptr();
        t.reset_zeroed(&[2, 3]);
        t.reset_zeroed(&[4, 4]);
        assert_eq!(t.data().as_ptr(), ptr);
    }

    #[test]
    fn copy_from_replicates_shape_and_data() {
        let src = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[3, 2]).unwrap();
        let mut dst = Tensor::zeros(&[10]);
        dst.copy_from(&src);
        assert_eq!(dst, src);
    }

    #[test]
    fn slice_axis0_into_matches_slice_axis0() {
        let t = Tensor::from_fn(&[5, 2, 3], |i| i as f32);
        let mut out = Tensor::zeros(&[0]);
        t.slice_axis0_into(1, 4, &mut out);
        assert_eq!(out, t.slice_axis0(1, 4));
        // Reuse with a different window, including an empty one.
        t.slice_axis0_into(0, 2, &mut out);
        assert_eq!(out, t.slice_axis0(0, 2));
        t.slice_axis0_into(5, 5, &mut out);
        assert_eq!(out.shape(), &[0, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_axis0_into_checks_bounds() {
        let t = Tensor::zeros(&[2, 2]);
        let mut out = Tensor::zeros(&[0]);
        t.slice_axis0_into(1, 3, &mut out);
    }

    #[test]
    fn elementwise_algebra() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let b = Tensor::from_vec(vec![10.0, 20.0], &[2]).unwrap();
        assert_eq!((&a + &b).data(), &[11.0, 22.0]);
        assert_eq!((&b - &a).data(), &[9.0, 18.0]);
        assert_eq!((&a * &b).data(), &[10.0, 40.0]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn add_shape_mismatch_panics() {
        let a = Tensor::zeros(&[2]);
        let b = Tensor::zeros(&[3]);
        let _ = &a + &b;
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = Tensor::ones(&[3]);
        let b = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).unwrap();
        a.axpy(2.0, &b);
        assert_eq!(a.data(), &[3.0, 5.0, 7.0]);
        a.scale(0.5);
        assert_eq!(a.data(), &[1.5, 2.5, 3.5]);
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec(vec![1.0, -2.0, 3.0, 0.5], &[4]).unwrap();
        assert_eq!(t.sum(), 2.5);
        assert_eq!(t.max(), 3.0);
        assert_eq!(t.min(), -2.0);
        assert_eq!(t.argmax(), 2);
        assert!((t.mean() - 0.625).abs() < 1e-9);
    }

    #[test]
    fn argmax_rows_ties_take_first() {
        let t = Tensor::from_vec(vec![1.0, 1.0, 0.0, 0.0, 2.0, 2.0], &[2, 3]).unwrap();
        assert_eq!(t.argmax_rows(), vec![0, 1]);
    }

    #[test]
    fn sum_axis0_matches_manual() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        assert_eq!(t.sum_axis0().data(), &[5.0, 7.0, 9.0]);
    }

    #[test]
    fn transpose_round_trip() {
        let t = Tensor::from_vec((0..12).map(|x| x as f32).collect(), &[3, 4]).unwrap();
        let tt = t.transposed();
        assert_eq!(tt.shape(), &[4, 3]);
        assert_eq!(tt[[0, 1]], t[[1, 0]]);
        assert_eq!(tt.transposed(), t);
    }

    #[test]
    fn reshape_checks_size() {
        let t = Tensor::zeros(&[2, 3]);
        assert!(t.reshape(&[6]).is_ok());
        assert!(t.reshape(&[5]).is_err());
    }

    #[test]
    fn slice_axis0_copies_batch_entries() {
        let t = Tensor::from_vec((0..12).map(|x| x as f32).collect(), &[3, 4]).unwrap();
        let s = t.slice_axis0(1, 3);
        assert_eq!(s.shape(), &[2, 4]);
        assert_eq!(s[[0, 0]], 4.0);
        assert_eq!(s[[1, 3]], 11.0);
    }

    #[test]
    fn gather_axis0_reorders() {
        let t = Tensor::from_vec((0..6).map(|x| x as f32).collect(), &[3, 2]).unwrap();
        let g = t.gather_axis0(&[2, 0]);
        assert_eq!(g.data(), &[4.0, 5.0, 0.0, 1.0]);
    }

    #[test]
    fn dot_and_norm() {
        let a = Tensor::from_vec(vec![3.0, 4.0], &[2]).unwrap();
        assert_eq!(a.norm_sq(), 25.0);
        let b = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        assert_eq!(a.dot(&b), 11.0);
    }

    #[test]
    fn randn_statistics() {
        let mut rng = Prng::seed_from_u64(1);
        let t = Tensor::randn(&[10_000], &mut rng);
        assert!(t.mean().abs() < 0.05);
        let var = t.data().iter().map(|&x| (x as f64).powi(2)).sum::<f64>() / 10_000.0;
        assert!((var - 1.0).abs() < 0.1);
    }

    #[test]
    fn allclose_tolerance() {
        let a = Tensor::ones(&[3]);
        let mut b = Tensor::ones(&[3]);
        b.data_mut()[1] = 1.0005;
        assert!(a.allclose(&b, 1e-3));
        assert!(!a.allclose(&b, 1e-4));
    }

    #[test]
    fn display_summarizes() {
        let t = Tensor::zeros(&[100]);
        let s = t.to_string();
        assert!(s.contains("[100]"));
    }
}
