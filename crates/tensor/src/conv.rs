//! im2col / col2im lowering for convolution.
//!
//! The SWIM paper's second-derivative backpropagation (§3.3) relies on
//! convolution layers being "cast in the same form as FC layers". That is
//! literally how this workspace implements them: [`im2col`] unrolls input
//! patches into a matrix so a convolution becomes one GEMM, and [`col2im`]
//! scatters column-space gradients back to image space for the backward
//! passes (first *and* second order — the second-order pass pushes squared
//! quantities through the identical index mapping).

use crate::tensor::Tensor;

/// Geometry of a 2-D convolution or pooling window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvGeometry {
    /// Input channel count.
    pub in_channels: usize,
    /// Input height.
    pub in_h: usize,
    /// Input width.
    pub in_w: usize,
    /// Kernel height.
    pub kernel_h: usize,
    /// Kernel width.
    pub kernel_w: usize,
    /// Vertical and horizontal stride.
    pub stride: usize,
    /// Symmetric zero padding on each border.
    pub padding: usize,
}

impl ConvGeometry {
    /// Output height after the convolution.
    pub fn out_h(&self) -> usize {
        (self.in_h + 2 * self.padding - self.kernel_h) / self.stride + 1
    }

    /// Output width after the convolution.
    pub fn out_w(&self) -> usize {
        (self.in_w + 2 * self.padding - self.kernel_w) / self.stride + 1
    }

    /// Rows of the im2col matrix: one per output spatial position.
    pub fn col_rows(&self) -> usize {
        self.out_h() * self.out_w()
    }

    /// Columns of the im2col matrix: one per kernel element.
    pub fn col_cols(&self) -> usize {
        self.in_channels * self.kernel_h * self.kernel_w
    }

    /// Validates that the geometry produces at least one output position.
    ///
    /// Returns `false` when the kernel (after padding) does not fit in the
    /// input.
    pub fn is_valid(&self) -> bool {
        self.in_h + 2 * self.padding >= self.kernel_h
            && self.in_w + 2 * self.padding >= self.kernel_w
            && self.stride > 0
            && self.kernel_h > 0
            && self.kernel_w > 0
    }
}

/// Unrolls one image `[C, H, W]` into a patch matrix
/// `[outH*outW, C*kh*kw]`.
///
/// Out-of-bounds (padding) taps contribute zeros.
///
/// # Panics
///
/// Panics if `image` is not rank 3 or does not match `geom`.
///
/// # Example
///
/// ```
/// use swim_tensor::{Tensor, conv::{ConvGeometry, im2col}};
///
/// let geom = ConvGeometry {
///     in_channels: 1, in_h: 3, in_w: 3,
///     kernel_h: 2, kernel_w: 2, stride: 1, padding: 0,
/// };
/// let img = Tensor::from_fn(&[1, 3, 3], |i| i as f32);
/// let cols = im2col(&img, &geom);
/// assert_eq!(cols.shape(), &[4, 4]);
/// // First patch is the top-left 2x2 block.
/// assert_eq!(&cols.data()[..4], &[0.0, 1.0, 3.0, 4.0]);
/// ```
pub fn im2col(image: &Tensor, geom: &ConvGeometry) -> Tensor {
    assert_eq!(image.rank(), 3, "im2col expects a [C, H, W] image");
    assert_eq!(
        image.shape(),
        &[geom.in_channels, geom.in_h, geom.in_w],
        "image does not match geometry"
    );
    assert!(geom.is_valid(), "invalid convolution geometry {geom:?}");

    let (out_h, out_w) = (geom.out_h(), geom.out_w());
    let cols = geom.col_cols();
    let mut out = vec![0.0f32; out_h * out_w * cols];
    let data = image.data();
    let (ih, iw) = (geom.in_h as isize, geom.in_w as isize);

    for oy in 0..out_h {
        for ox in 0..out_w {
            let row = oy * out_w + ox;
            let base = row * cols;
            let origin_y = (oy * geom.stride) as isize - geom.padding as isize;
            let origin_x = (ox * geom.stride) as isize - geom.padding as isize;
            let mut col = 0usize;
            for c in 0..geom.in_channels {
                let cbase = c * geom.in_h * geom.in_w;
                for ky in 0..geom.kernel_h {
                    let y = origin_y + ky as isize;
                    for kx in 0..geom.kernel_w {
                        let x = origin_x + kx as isize;
                        if y >= 0 && y < ih && x >= 0 && x < iw {
                            out[base + col] = data[cbase + y as usize * geom.in_w + x as usize];
                        }
                        col += 1;
                    }
                }
            }
        }
    }
    Tensor::from_vec(out, &[out_h * out_w, cols]).expect("im2col shape is consistent")
}

/// Scatters a patch matrix `[outH*outW, C*kh*kw]` back into an image
/// `[C, H, W]`, accumulating overlapping contributions.
///
/// This is the adjoint of [`im2col`]: positions that fell in the padding
/// are dropped.
///
/// # Panics
///
/// Panics if `cols` is not rank 2 or does not match `geom`.
pub fn col2im(cols: &Tensor, geom: &ConvGeometry) -> Tensor {
    assert_eq!(cols.rank(), 2, "col2im expects a rank-2 patch matrix");
    assert_eq!(
        cols.shape(),
        &[geom.col_rows(), geom.col_cols()],
        "patch matrix does not match geometry"
    );

    let (out_h, out_w) = (geom.out_h(), geom.out_w());
    let ncols = geom.col_cols();
    let mut image = vec![0.0f32; geom.in_channels * geom.in_h * geom.in_w];
    let data = cols.data();
    let (ih, iw) = (geom.in_h as isize, geom.in_w as isize);

    for oy in 0..out_h {
        for ox in 0..out_w {
            let row = oy * out_w + ox;
            let base = row * ncols;
            let origin_y = (oy * geom.stride) as isize - geom.padding as isize;
            let origin_x = (ox * geom.stride) as isize - geom.padding as isize;
            let mut col = 0usize;
            for c in 0..geom.in_channels {
                let cbase = c * geom.in_h * geom.in_w;
                for ky in 0..geom.kernel_h {
                    let y = origin_y + ky as isize;
                    for kx in 0..geom.kernel_w {
                        let x = origin_x + kx as isize;
                        if y >= 0 && y < ih && x >= 0 && x < iw {
                            image[cbase + y as usize * geom.in_w + x as usize] += data[base + col];
                        }
                        col += 1;
                    }
                }
            }
        }
    }
    Tensor::from_vec(image, &[geom.in_channels, geom.in_h, geom.in_w])
        .expect("col2im shape is consistent")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linalg::matmul;
    use crate::rng::Prng;

    fn geom(c: usize, h: usize, w: usize, k: usize, s: usize, p: usize) -> ConvGeometry {
        ConvGeometry {
            in_channels: c,
            in_h: h,
            in_w: w,
            kernel_h: k,
            kernel_w: k,
            stride: s,
            padding: p,
        }
    }

    /// Direct (definition-level) convolution for cross-checking.
    fn naive_conv(image: &Tensor, weight: &Tensor, g: &ConvGeometry) -> Tensor {
        let out_c = weight.shape()[0];
        let (oh, ow) = (g.out_h(), g.out_w());
        let mut out = Tensor::zeros(&[out_c, oh, ow]);
        for oc in 0..out_c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = 0.0f32;
                    for c in 0..g.in_channels {
                        for ky in 0..g.kernel_h {
                            for kx in 0..g.kernel_w {
                                let y = (oy * g.stride + ky) as isize - g.padding as isize;
                                let x = (ox * g.stride + kx) as isize - g.padding as isize;
                                if y >= 0
                                    && (y as usize) < g.in_h
                                    && x >= 0
                                    && (x as usize) < g.in_w
                                {
                                    let iv = image.at(&[c, y as usize, x as usize]);
                                    let wv = weight.at(&[oc, c, ky, kx]);
                                    acc += iv * wv;
                                }
                            }
                        }
                    }
                    *out.at_mut(&[oc, oy, ox]) = acc;
                }
            }
        }
        out
    }

    #[test]
    fn geometry_output_sizes() {
        let g = geom(3, 32, 32, 3, 1, 1);
        assert_eq!((g.out_h(), g.out_w()), (32, 32));
        let g = geom(1, 28, 28, 5, 1, 0);
        assert_eq!((g.out_h(), g.out_w()), (24, 24));
        let g = geom(16, 8, 8, 2, 2, 0);
        assert_eq!((g.out_h(), g.out_w()), (4, 4));
    }

    #[test]
    fn invalid_geometry_detected() {
        assert!(!geom(1, 2, 2, 5, 1, 0).is_valid());
        assert!(geom(1, 2, 2, 5, 1, 2).is_valid());
        let mut g = geom(1, 4, 4, 3, 1, 0);
        g.stride = 0;
        assert!(!g.is_valid());
    }

    #[test]
    fn im2col_then_gemm_matches_naive_conv() {
        let mut rng = Prng::seed_from_u64(10);
        for (g, oc) in [
            (geom(1, 6, 6, 3, 1, 0), 2),
            (geom(3, 8, 8, 3, 1, 1), 4),
            (geom(2, 7, 7, 3, 2, 1), 3),
            (geom(4, 5, 5, 1, 1, 0), 2),
        ] {
            let image = Tensor::randn(&[g.in_channels, g.in_h, g.in_w], &mut rng);
            let weight = Tensor::randn(&[oc, g.in_channels, g.kernel_h, g.kernel_w], &mut rng);
            let cols = im2col(&image, &g);
            let wmat = weight.clone().reshaped(&[oc, g.col_cols()]);
            // GEMM result: [rows, oc] -> transpose to [oc, rows] -> reshape.
            let gemm = matmul(&cols, &wmat.transposed());
            let gemm = gemm.transposed().reshaped(&[oc, g.out_h(), g.out_w()]);
            let naive = naive_conv(&image, &weight, &g);
            assert!(gemm.allclose(&naive, 1e-4), "mismatch for geometry {g:?}");
        }
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> must hold for the backward pass
        // to be a correct gradient.
        let mut rng = Prng::seed_from_u64(11);
        let g = geom(2, 6, 6, 3, 2, 1);
        let x = Tensor::randn(&[2, 6, 6], &mut rng);
        let y = Tensor::randn(&[g.col_rows(), g.col_cols()], &mut rng);
        let lhs = im2col(&x, &g).dot(&y);
        let rhs = x.dot(&col2im(&y, &g));
        assert!((lhs - rhs).abs() < 1e-3, "adjoint mismatch {lhs} vs {rhs}");
    }

    #[test]
    fn padding_contributes_zeros() {
        let g = geom(1, 2, 2, 3, 1, 1);
        let img = Tensor::ones(&[1, 2, 2]);
        let cols = im2col(&img, &g);
        // Top-left output position: only bottom-right 2x2 of the kernel
        // overlaps the image.
        let first_patch = &cols.data()[..9];
        assert_eq!(first_patch, &[0.0, 0.0, 0.0, 0.0, 1.0, 1.0, 0.0, 1.0, 1.0]);
    }

    #[test]
    fn stride_skips_positions() {
        let g = geom(1, 4, 4, 2, 2, 0);
        let img = Tensor::from_fn(&[1, 4, 4], |i| i as f32);
        let cols = im2col(&img, &g);
        assert_eq!(cols.shape(), &[4, 4]);
        // Second patch starts at column 2 of row 0.
        assert_eq!(&cols.data()[4..8], &[2.0, 3.0, 6.0, 7.0]);
    }
}
