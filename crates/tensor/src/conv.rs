//! im2col / col2im lowering for convolution.
//!
//! The SWIM paper's second-derivative backpropagation (§3.3) relies on
//! convolution layers being "cast in the same form as FC layers". That is
//! literally how this workspace implements them: [`im2col`] unrolls input
//! patches into a matrix so a convolution becomes one GEMM, and [`col2im`]
//! scatters column-space gradients back to image space for the backward
//! passes (first *and* second order — the second-order pass pushes squared
//! quantities through the identical index mapping).

use crate::tensor::Tensor;

/// Geometry of a 2-D convolution or pooling window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvGeometry {
    /// Input channel count.
    pub in_channels: usize,
    /// Input height.
    pub in_h: usize,
    /// Input width.
    pub in_w: usize,
    /// Kernel height.
    pub kernel_h: usize,
    /// Kernel width.
    pub kernel_w: usize,
    /// Vertical and horizontal stride.
    pub stride: usize,
    /// Symmetric zero padding on each border.
    pub padding: usize,
}

impl ConvGeometry {
    /// Output height after the convolution.
    pub fn out_h(&self) -> usize {
        (self.in_h + 2 * self.padding - self.kernel_h) / self.stride + 1
    }

    /// Output width after the convolution.
    pub fn out_w(&self) -> usize {
        (self.in_w + 2 * self.padding - self.kernel_w) / self.stride + 1
    }

    /// Rows of the im2col matrix: one per output spatial position.
    pub fn col_rows(&self) -> usize {
        self.out_h() * self.out_w()
    }

    /// Columns of the im2col matrix: one per kernel element.
    pub fn col_cols(&self) -> usize {
        self.in_channels * self.kernel_h * self.kernel_w
    }

    /// Validates that the geometry produces at least one output position.
    ///
    /// Returns `false` when the kernel (after padding) does not fit in the
    /// input.
    pub fn is_valid(&self) -> bool {
        self.in_h + 2 * self.padding >= self.kernel_h
            && self.in_w + 2 * self.padding >= self.kernel_w
            && self.stride > 0
            && self.kernel_h > 0
            && self.kernel_w > 0
    }
}

/// Unrolls one image `[C, H, W]` into a patch matrix
/// `[outH*outW, C*kh*kw]`.
///
/// Out-of-bounds (padding) taps contribute zeros.
///
/// # Panics
///
/// Panics if `image` is not rank 3 or does not match `geom`.
///
/// # Example
///
/// ```
/// use swim_tensor::{Tensor, conv::{ConvGeometry, im2col}};
///
/// let geom = ConvGeometry {
///     in_channels: 1, in_h: 3, in_w: 3,
///     kernel_h: 2, kernel_w: 2, stride: 1, padding: 0,
/// };
/// let img = Tensor::from_fn(&[1, 3, 3], |i| i as f32);
/// let cols = im2col(&img, &geom);
/// assert_eq!(cols.shape(), &[4, 4]);
/// // First patch is the top-left 2x2 block.
/// assert_eq!(&cols.data()[..4], &[0.0, 1.0, 3.0, 4.0]);
/// ```
pub fn im2col(image: &Tensor, geom: &ConvGeometry) -> Tensor {
    assert_eq!(image.rank(), 3, "im2col expects a [C, H, W] image");
    assert_eq!(
        image.shape(),
        &[geom.in_channels, geom.in_h, geom.in_w],
        "image does not match geometry"
    );
    let mut out = Vec::new();
    im2col_batch_into(image.data(), 1, geom, &mut out);
    Tensor::from_vec(out, &[geom.col_rows(), geom.col_cols()]).expect("im2col shape is consistent")
}

/// Unrolls a batch of `items` images (flat `[items, C, H, W]` data) into
/// the patch matrix `[items · outH·outW, C·kh·kw]` inside `out`.
///
/// `out` is cleared and resized — its capacity is reused across calls,
/// which is what makes the conv layers' lowering allocation-free in
/// steady state. Each patch row is filled with *contiguous span copies*
/// (one per `(channel, kernel-row)` pair) instead of per-tap scalar
/// stores; out-of-bounds (padding) taps stay zero from the resize fill.
/// Values are bit-identical to per-image [`im2col`] stacked row-wise.
///
/// # Panics
///
/// Panics if `input.len()` differs from `items · C · H · W` or the
/// geometry is invalid.
pub fn im2col_batch_into(input: &[f32], items: usize, geom: &ConvGeometry, out: &mut Vec<f32>) {
    assert!(geom.is_valid(), "invalid convolution geometry {geom:?}");
    let image_len = geom.in_channels * geom.in_h * geom.in_w;
    assert_eq!(input.len(), items * image_len, "input does not match geometry times items");

    let (out_h, out_w) = (geom.out_h(), geom.out_w());
    let cols = geom.col_cols();
    let rows_per_item = out_h * out_w;
    out.clear();
    out.resize(items * rows_per_item * cols, 0.0);

    let (kh, kw) = (geom.kernel_h, geom.kernel_w);
    let (ih, iw) = (geom.in_h, geom.in_w);
    for item in 0..items {
        let data = &input[item * image_len..(item + 1) * image_len];
        let item_base = item * rows_per_item * cols;
        for oy in 0..out_h {
            let origin_y = (oy * geom.stride) as isize - geom.padding as isize;
            for ox in 0..out_w {
                let base = item_base + (oy * out_w + ox) * cols;
                let origin_x = (ox * geom.stride) as isize - geom.padding as isize;
                // Clip the kernel's x-span against the image once per
                // patch: taps kx ∈ [x_lo, x_hi) are in bounds.
                let x_lo = (-origin_x).clamp(0, kw as isize) as usize;
                let x_hi = (iw as isize - origin_x).clamp(0, kw as isize) as usize;
                if x_lo >= x_hi {
                    continue; // whole patch falls in horizontal padding
                }
                let src_x0 = (origin_x + x_lo as isize) as usize;
                for c in 0..geom.in_channels {
                    let cbase = c * ih * iw;
                    let col0 = base + c * kh * kw;
                    for ky in 0..kh {
                        let y = origin_y + ky as isize;
                        if y < 0 || y >= ih as isize {
                            continue;
                        }
                        let src0 = cbase + y as usize * iw + src_x0;
                        let dst0 = col0 + ky * kw + x_lo;
                        out[dst0..dst0 + (x_hi - x_lo)]
                            .copy_from_slice(&data[src0..src0 + (x_hi - x_lo)]);
                    }
                }
            }
        }
    }
}

/// Scatters a patch matrix `[outH*outW, C*kh*kw]` back into an image
/// `[C, H, W]`, accumulating overlapping contributions.
///
/// This is the adjoint of [`im2col`]: positions that fell in the padding
/// are dropped.
///
/// # Panics
///
/// Panics if `cols` is not rank 2 or does not match `geom`.
pub fn col2im(cols: &Tensor, geom: &ConvGeometry) -> Tensor {
    assert_eq!(cols.rank(), 2, "col2im expects a rank-2 patch matrix");
    assert_eq!(
        cols.shape(),
        &[geom.col_rows(), geom.col_cols()],
        "patch matrix does not match geometry"
    );
    let mut image = vec![0.0f32; geom.in_channels * geom.in_h * geom.in_w];
    col2im_accumulate(cols.data(), geom, &mut image);
    Tensor::from_vec(image, &[geom.in_channels, geom.in_h, geom.in_w])
        .expect("col2im shape is consistent")
}

/// Scatter-accumulates one image's patch matrix (flat
/// `[outH·outW, C·kh·kw]` data) into `image` (flat `[C, H, W]`, `+=`).
///
/// The buffer-level core of [`col2im`]: the conv backward passes call it
/// directly on slices of a batched gradient, so no per-item image tensor
/// is ever allocated. The scatter order matches [`col2im`] exactly, so
/// accumulating into a zeroed slice is bit-identical to `col2im` + add.
///
/// # Panics
///
/// Panics if either slice length disagrees with `geom`.
pub fn col2im_accumulate(cols: &[f32], geom: &ConvGeometry, image: &mut [f32]) {
    assert_eq!(cols.len(), geom.col_rows() * geom.col_cols(), "patch matrix length");
    assert_eq!(image.len(), geom.in_channels * geom.in_h * geom.in_w, "image length");

    let (out_h, out_w) = (geom.out_h(), geom.out_w());
    let ncols = geom.col_cols();
    let (kh, kw) = (geom.kernel_h, geom.kernel_w);
    let (ih, iw) = (geom.in_h, geom.in_w);

    for oy in 0..out_h {
        let origin_y = (oy * geom.stride) as isize - geom.padding as isize;
        for ox in 0..out_w {
            let base = (oy * out_w + ox) * ncols;
            let origin_x = (ox * geom.stride) as isize - geom.padding as isize;
            let x_lo = (-origin_x).clamp(0, kw as isize) as usize;
            let x_hi = (iw as isize - origin_x).clamp(0, kw as isize) as usize;
            if x_lo >= x_hi {
                continue;
            }
            let src_x0 = (origin_x + x_lo as isize) as usize;
            for c in 0..geom.in_channels {
                let cbase = c * ih * iw;
                let col0 = base + c * kh * kw;
                for ky in 0..kh {
                    let y = origin_y + ky as isize;
                    if y < 0 || y >= ih as isize {
                        continue;
                    }
                    let dst0 = cbase + y as usize * iw + src_x0;
                    let src0 = col0 + ky * kw + x_lo;
                    for (d, &s) in image[dst0..dst0 + (x_hi - x_lo)]
                        .iter_mut()
                        .zip(&cols[src0..src0 + (x_hi - x_lo)])
                    {
                        *d += s;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linalg::matmul;
    use crate::rng::Prng;

    fn geom(c: usize, h: usize, w: usize, k: usize, s: usize, p: usize) -> ConvGeometry {
        ConvGeometry {
            in_channels: c,
            in_h: h,
            in_w: w,
            kernel_h: k,
            kernel_w: k,
            stride: s,
            padding: p,
        }
    }

    /// Direct (definition-level) convolution for cross-checking.
    fn naive_conv(image: &Tensor, weight: &Tensor, g: &ConvGeometry) -> Tensor {
        let out_c = weight.shape()[0];
        let (oh, ow) = (g.out_h(), g.out_w());
        let mut out = Tensor::zeros(&[out_c, oh, ow]);
        for oc in 0..out_c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = 0.0f32;
                    for c in 0..g.in_channels {
                        for ky in 0..g.kernel_h {
                            for kx in 0..g.kernel_w {
                                let y = (oy * g.stride + ky) as isize - g.padding as isize;
                                let x = (ox * g.stride + kx) as isize - g.padding as isize;
                                if y >= 0
                                    && (y as usize) < g.in_h
                                    && x >= 0
                                    && (x as usize) < g.in_w
                                {
                                    let iv = image.at(&[c, y as usize, x as usize]);
                                    let wv = weight.at(&[oc, c, ky, kx]);
                                    acc += iv * wv;
                                }
                            }
                        }
                    }
                    *out.at_mut(&[oc, oy, ox]) = acc;
                }
            }
        }
        out
    }

    #[test]
    fn geometry_output_sizes() {
        let g = geom(3, 32, 32, 3, 1, 1);
        assert_eq!((g.out_h(), g.out_w()), (32, 32));
        let g = geom(1, 28, 28, 5, 1, 0);
        assert_eq!((g.out_h(), g.out_w()), (24, 24));
        let g = geom(16, 8, 8, 2, 2, 0);
        assert_eq!((g.out_h(), g.out_w()), (4, 4));
    }

    #[test]
    fn invalid_geometry_detected() {
        assert!(!geom(1, 2, 2, 5, 1, 0).is_valid());
        assert!(geom(1, 2, 2, 5, 1, 2).is_valid());
        let mut g = geom(1, 4, 4, 3, 1, 0);
        g.stride = 0;
        assert!(!g.is_valid());
    }

    #[test]
    fn im2col_then_gemm_matches_naive_conv() {
        let mut rng = Prng::seed_from_u64(10);
        for (g, oc) in [
            (geom(1, 6, 6, 3, 1, 0), 2),
            (geom(3, 8, 8, 3, 1, 1), 4),
            (geom(2, 7, 7, 3, 2, 1), 3),
            (geom(4, 5, 5, 1, 1, 0), 2),
        ] {
            let image = Tensor::randn(&[g.in_channels, g.in_h, g.in_w], &mut rng);
            let weight = Tensor::randn(&[oc, g.in_channels, g.kernel_h, g.kernel_w], &mut rng);
            let cols = im2col(&image, &g);
            let wmat = weight.clone().reshaped(&[oc, g.col_cols()]);
            // GEMM result: [rows, oc] -> transpose to [oc, rows] -> reshape.
            let gemm = matmul(&cols, &wmat.transposed());
            let gemm = gemm.transposed().reshaped(&[oc, g.out_h(), g.out_w()]);
            let naive = naive_conv(&image, &weight, &g);
            assert!(gemm.allclose(&naive, 1e-4), "mismatch for geometry {g:?}");
        }
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> must hold for the backward pass
        // to be a correct gradient.
        let mut rng = Prng::seed_from_u64(11);
        let g = geom(2, 6, 6, 3, 2, 1);
        let x = Tensor::randn(&[2, 6, 6], &mut rng);
        let y = Tensor::randn(&[g.col_rows(), g.col_cols()], &mut rng);
        let lhs = im2col(&x, &g).dot(&y);
        let rhs = x.dot(&col2im(&y, &g));
        assert!((lhs - rhs).abs() < 1e-3, "adjoint mismatch {lhs} vs {rhs}");
    }

    #[test]
    fn padding_contributes_zeros() {
        let g = geom(1, 2, 2, 3, 1, 1);
        let img = Tensor::ones(&[1, 2, 2]);
        let cols = im2col(&img, &g);
        // Top-left output position: only bottom-right 2x2 of the kernel
        // overlaps the image.
        let first_patch = &cols.data()[..9];
        assert_eq!(first_patch, &[0.0, 0.0, 0.0, 0.0, 1.0, 1.0, 0.0, 1.0, 1.0]);
    }

    /// The batched lowering must be the per-image lowering stacked
    /// row-wise, bit for bit, across stride/padding edge cases.
    #[test]
    fn im2col_batch_matches_stacked_per_image() {
        let mut rng = Prng::seed_from_u64(21);
        for g in [
            geom(1, 5, 5, 3, 1, 0),
            geom(3, 6, 7, 3, 2, 1),
            geom(2, 4, 4, 3, 1, 2),
            geom(1, 2, 2, 5, 1, 2), // kernel larger than image, pad rescues it
            geom(2, 5, 3, 1, 3, 0), // 1x1 kernel, stride 3
        ] {
            let items = 3;
            let batch = Tensor::randn(&[items, g.in_channels, g.in_h, g.in_w], &mut rng);
            let mut batched = Vec::new();
            im2col_batch_into(batch.data(), items, &g, &mut batched);
            let image_len = g.in_channels * g.in_h * g.in_w;
            let per_item = g.col_rows() * g.col_cols();
            for item in 0..items {
                let image = Tensor::from_vec(
                    batch.data()[item * image_len..(item + 1) * image_len].to_vec(),
                    &[g.in_channels, g.in_h, g.in_w],
                )
                .unwrap();
                let single = im2col(&image, &g);
                assert_eq!(
                    &batched[item * per_item..(item + 1) * per_item],
                    single.data(),
                    "item {item} of geometry {g:?}"
                );
            }
            // Reused buffer: a second, smaller call must not keep stale rows.
            im2col_batch_into(&batch.data()[..image_len], 1, &g, &mut batched);
            assert_eq!(batched.len(), per_item);
        }
    }

    /// Accumulating into a zeroed slice is exactly `col2im`; a second
    /// accumulation doubles it.
    #[test]
    fn col2im_accumulate_matches_col2im() {
        let mut rng = Prng::seed_from_u64(22);
        let g = geom(2, 6, 6, 3, 2, 1);
        let cols = Tensor::randn(&[g.col_rows(), g.col_cols()], &mut rng);
        let reference = col2im(&cols, &g);
        let mut image = vec![0.0f32; 2 * 6 * 6];
        col2im_accumulate(cols.data(), &g, &mut image);
        assert_eq!(&image, reference.data());
        // A second pass accumulates on top (scatter order differs from a
        // single `r + r`, so compare with tolerance).
        col2im_accumulate(cols.data(), &g, &mut image);
        for (acc, &r) in image.iter().zip(reference.data()) {
            assert!((acc - 2.0 * r).abs() < 1e-5, "{acc} vs {}", 2.0 * r);
        }
    }

    #[test]
    fn stride_skips_positions() {
        let g = geom(1, 4, 4, 2, 2, 0);
        let img = Tensor::from_fn(&[1, 4, 4], |i| i as f32);
        let cols = im2col(&img, &g);
        assert_eq!(cols.shape(), &[4, 4]);
        // Second patch starts at column 2 of row 0.
        assert_eq!(&cols.data()[4..8], &[2.0, 3.0, 6.0, 7.0]);
    }
}
