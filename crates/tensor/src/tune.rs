//! Shape-keyed kernel autotuning behind the unified [`KernelTuning`]
//! configuration.
//!
//! Every hot-path constant the kernels used to hard-code — the GEMM
//! worker-thread count, the packed-panel block width, the
//! [`crate::linalg::PARALLEL_MIN_FLOPS`] threading threshold, and the
//! conv im2col scratch cap — now resolves through this module. One
//! [`KernelTuning`] value is resolved per run (the experiment engine
//! composes spec `[tune]` > CLI flags > environment > built-in default)
//! and installed process-wide with [`install`]; the kernels then consult
//! it through the cheap atomic accessors ([`gemm_plan`],
//! [`im2col_cap_elems`]).
//!
//! # Autotune mode
//!
//! With [`TuneMode::On`], the first time a `(kernel, shape, backend,
//! thread-count)` key is seen, a small candidate set of configs is
//! benchmarked with a median-of-[`TUNE_REPS`] timing loop and the winner
//! is cached in-process; [`set_cache_dir`] additionally persists winners
//! to an on-disk cache keyed by a host fingerprint (CPU brand + SIMD
//! feature set + core count), so later processes on the same host skip
//! the timing loop. Chosen configs are exposed via [`choice_records`]
//! and recorded in the results-document provenance (`tuning` section).
//!
//! # Timing-only contract
//!
//! Tuning is **timing-only**: every candidate config changes *speed*,
//! never *bytes*. Block width, worker count, threading threshold, and
//! im2col chunking are all pinned byte-neutral by the determinism tests
//! in [`crate::linalg`] (per-element increasing-`k` accumulation,
//! thread-count independence), so an autotuned run's results document is
//! byte-identical to a default-config run apart from wall time and the
//! `tuning` provenance section.
//!
//! # Precedence
//!
//! `spec [tune]` > CLI flags > environment (`SWIM_TUNE`,
//! `SWIM_TUNE_CACHE`, `SWIM_TUNE_BLOCK`, `SWIM_TUNE_MIN_FLOPS`,
//! `SWIM_TUNE_IM2COL`) > on-disk cache > autotune > built-in default.
//! A pinned knob (non-zero) always wins over cache and autotune; `0`
//! means "auto" everywhere, exactly like the legacy setters.

use crate::linalg::{NR, PARALLEL_MIN_FLOPS};
use crate::simd::{self, Backend};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock, RwLock};
use std::time::{Duration, Instant};

/// Default im2col scratch cap in `f32` elements (~16 MiB), the value
/// `swim_nn`'s conv lowering used as a hard constant before tuning.
pub const DEFAULT_IM2COL_CAP_ELEMS: usize = 1 << 22;

/// Timing repetitions per candidate; the median is compared, so one
/// scheduler hiccup cannot crown the wrong config.
pub const TUNE_REPS: usize = 3;

/// Products below this multiply count are never autotuned: the timing
/// loop would cost more than any block-width choice could recover, and
/// the built-in heuristic is already within noise at these sizes.
pub const TUNE_MIN_FLOPS: usize = 1 << 20;

/// Whether the shape-keyed autotuner is consulted at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TuneMode {
    /// Built-in defaults / explicit pins only (the legacy behavior).
    #[default]
    Off,
    /// Benchmark candidate configs per shape key and cache the winner.
    On,
}

impl TuneMode {
    /// The canonical spelling (`off` / `on`).
    pub fn name(self) -> &'static str {
        match self {
            TuneMode::Off => "off",
            TuneMode::On => "on",
        }
    }

    /// Parses a mode name (the inverse of [`TuneMode::name`]).
    pub fn parse(name: &str) -> Option<TuneMode> {
        match name {
            "off" => Some(TuneMode::Off),
            "on" => Some(TuneMode::On),
            _ => None,
        }
    }
}

impl std::fmt::Display for TuneMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The unified kernel-tuning configuration, resolved once per run.
///
/// Every numeric knob uses `0` for "auto": the built-in heuristic when
/// tuning is off, the autotuned winner when it is on. Non-zero values
/// are explicit pins that beat both the cache and the autotuner.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct KernelTuning {
    /// Whether the shape-keyed autotuner runs (default off).
    pub mode: TuneMode,
    /// GEMM worker threads (`0` = one per available core).
    pub gemm_threads: usize,
    /// GEMM packed-panel block width (`0` = heuristic / autotuned).
    pub gemm_block_cols: usize,
    /// Threading threshold in multiplies (`0` =
    /// [`PARALLEL_MIN_FLOPS`]).
    pub gemm_min_flops: usize,
    /// im2col scratch cap in elements (`0` =
    /// [`DEFAULT_IM2COL_CAP_ELEMS`]).
    pub im2col_cap_elems: usize,
    /// On-disk winner cache directory (`None` = in-process only).
    pub cache_dir: Option<PathBuf>,
}

impl KernelTuning {
    /// The built-in default configuration with the `SWIM_TUNE*`
    /// environment overrides applied on top.
    ///
    /// # Panics
    ///
    /// Panics on a malformed override (unknown `SWIM_TUNE` mode or a
    /// non-numeric knob) — a misspelled explicit request must not
    /// silently fall back, mirroring `SWIM_SIMD`.
    pub fn from_env() -> KernelTuning {
        let mut t = KernelTuning::default();
        if let Ok(v) = std::env::var("SWIM_TUNE") {
            t.mode = TuneMode::parse(v.trim())
                .unwrap_or_else(|| panic!("SWIM_TUNE: unknown tuning mode `{v}` (off, on)"));
        }
        if let Ok(v) = std::env::var("SWIM_TUNE_CACHE") {
            if !v.trim().is_empty() {
                t.cache_dir = Some(PathBuf::from(v.trim()));
            }
        }
        let knob = |name: &str| -> Option<usize> {
            std::env::var(name).ok().map(|v| {
                v.trim()
                    .parse::<usize>()
                    .unwrap_or_else(|_| panic!("{name}: `{v}` is not a non-negative integer"))
            })
        };
        if let Some(v) = knob("SWIM_TUNE_BLOCK") {
            t.gemm_block_cols = v;
        }
        if let Some(v) = knob("SWIM_TUNE_MIN_FLOPS") {
            t.gemm_min_flops = v;
        }
        if let Some(v) = knob("SWIM_TUNE_IM2COL") {
            t.im2col_cap_elems = v;
        }
        t
    }
}

// ---------------------------------------------------------------- state

/// `MODE` holds `TuneMode as u8 + 1`; `0` means "not yet initialized
/// from the environment".
static MODE: AtomicU8 = AtomicU8::new(0);
static PIN_THREADS: AtomicUsize = AtomicUsize::new(0);
static PIN_BLOCK: AtomicUsize = AtomicUsize::new(0);
static PIN_MIN_FLOPS: AtomicUsize = AtomicUsize::new(0);
static PIN_IM2COL: AtomicUsize = AtomicUsize::new(0);

fn mode_to_u8(m: TuneMode) -> u8 {
    match m {
        TuneMode::Off => 1,
        TuneMode::On => 2,
    }
}

fn mode_from_u8(v: u8) -> TuneMode {
    match v {
        2 => TuneMode::On,
        _ => TuneMode::Off,
    }
}

fn init_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

/// First-use initialization from the environment (no-op afterwards).
fn ensure_init() {
    if MODE.load(Ordering::Acquire) != 0 {
        return;
    }
    let _guard = init_lock().lock().unwrap_or_else(|e| e.into_inner());
    if MODE.load(Ordering::Acquire) != 0 {
        return;
    }
    let t = KernelTuning::from_env();
    store(&t);
}

/// Writes `t` into the global knobs; `MODE` last, so concurrent
/// first-use readers never observe a half-written config.
fn store(t: &KernelTuning) {
    PIN_THREADS.store(t.gemm_threads, Ordering::Relaxed);
    PIN_BLOCK.store(t.gemm_block_cols, Ordering::Relaxed);
    PIN_MIN_FLOPS.store(t.gemm_min_flops, Ordering::Relaxed);
    PIN_IM2COL.store(t.im2col_cap_elems, Ordering::Relaxed);
    set_cache_dir(t.cache_dir.as_deref());
    MODE.store(mode_to_u8(t.mode), Ordering::Release);
}

/// Installs `t` as the process-wide kernel-tuning configuration.
///
/// The experiment engine calls this once per run after composing the
/// precedence chain (spec `[tune]` > flags > environment > default).
/// Timing-only: installing a different config never changes result
/// bytes, so a mid-process re-install is always safe.
pub fn install(t: &KernelTuning) {
    let _guard = init_lock().lock().unwrap_or_else(|e| e.into_inner());
    store(t);
}

/// A snapshot of the installed configuration (environment-initialized
/// on first use).
pub fn current() -> KernelTuning {
    ensure_init();
    KernelTuning {
        mode: mode(),
        gemm_threads: PIN_THREADS.load(Ordering::Relaxed),
        gemm_block_cols: PIN_BLOCK.load(Ordering::Relaxed),
        gemm_min_flops: PIN_MIN_FLOPS.load(Ordering::Relaxed),
        im2col_cap_elems: PIN_IM2COL.load(Ordering::Relaxed),
        cache_dir: disk().lock().unwrap_or_else(|e| e.into_inner()).dir.clone(),
    }
}

/// Runs `f` with `t` temporarily installed, restoring the previous
/// configuration afterwards (panic-safe, serialized across threads).
pub fn with_tuning<R>(t: &KernelTuning, f: impl FnOnce() -> R) -> R {
    static OVERRIDE_LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    let _guard =
        OVERRIDE_LOCK.get_or_init(|| Mutex::new(())).lock().unwrap_or_else(|e| e.into_inner());
    let previous = current();
    struct Restore(KernelTuning);
    impl Drop for Restore {
        fn drop(&mut self) {
            install(&self.0);
        }
    }
    let _restore = Restore(previous);
    install(t);
    f()
}

/// The active tuning mode.
pub fn mode() -> TuneMode {
    ensure_init();
    mode_from_u8(MODE.load(Ordering::Relaxed))
}

/// Pins the GEMM worker-thread count (`0` = auto). Compatibility shim
/// behind [`crate::linalg::set_gemm_threads`].
pub fn pin_gemm_threads(threads: usize) {
    ensure_init();
    PIN_THREADS.store(threads, Ordering::Relaxed);
}

/// Pins the GEMM block width (`0` = auto). Compatibility shim behind
/// [`crate::linalg::set_gemm_block_cols`].
pub fn pin_gemm_block_cols(cols: usize) {
    ensure_init();
    PIN_BLOCK.store(cols, Ordering::Relaxed);
}

/// Pins the threading threshold (`0` = default). Compatibility shim
/// behind [`crate::linalg::set_gemm_parallel_min_flops`].
pub fn pin_gemm_min_flops(flops: usize) {
    ensure_init();
    PIN_MIN_FLOPS.store(flops, Ordering::Relaxed);
}

/// `available_parallelism`, detected once and cached.
///
/// The std call is not free — on Linux it re-reads the cgroup CPU quota
/// files, allocating in the process — and the GEMM entry points consult
/// the thread count on *every* product; the cached value keeps the
/// steady-state eval loop allocation-free (enforced by `swim-core`'s
/// `tests/alloc_free.rs`).
pub fn detected_parallelism() -> usize {
    static DETECTED: AtomicUsize = AtomicUsize::new(0);
    match DETECTED.load(Ordering::Relaxed) {
        0 => {
            let n = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
            DETECTED.store(n, Ordering::Relaxed);
            n
        }
        n => n,
    }
}

/// The worker-thread count large products will use.
pub fn gemm_threads() -> usize {
    ensure_init();
    match PIN_THREADS.load(Ordering::Relaxed) {
        0 => detected_parallelism(),
        n => n,
    }
}

/// The threading threshold large products currently use.
pub fn gemm_min_flops() -> usize {
    ensure_init();
    match PIN_MIN_FLOPS.load(Ordering::Relaxed) {
        0 => PARALLEL_MIN_FLOPS,
        n => n,
    }
}

/// The effective column-block width for an `m×k · k×n` product under
/// the *pin/heuristic* path (no shape-keyed lookup).
pub fn gemm_block_cols(k: usize, n: usize) -> usize {
    ensure_init();
    let requested = PIN_BLOCK.load(Ordering::Relaxed);
    let cols = if requested == 0 { block_cols_heuristic(k) } else { requested };
    clamp_block(cols, n)
}

/// The cache-resident block-width heuristic: keep the active packed
/// block near 128 KiB so it stays cache resident while a row panel
/// sweeps it. Re-measured on this repo's bench hosts (see
/// `BENCH_sweep.json`, `autotune` group): the 128 KiB budget remains
/// the best fixed choice at the acceptance shapes, which is why the
/// constant survived the autotuner's arrival as the mode-off default.
fn block_cols_heuristic(k: usize) -> usize {
    let budget = (128 * 1024) / (4 * k.max(1));
    budget.clamp(NR, 4096)
}

/// Rounds a block width up to a panel multiple and caps it at the
/// (rounded) output width.
fn clamp_block(cols: usize, n: usize) -> usize {
    cols.next_multiple_of(NR).min(n.next_multiple_of(NR).max(NR))
}

/// The im2col scratch cap in `f32` elements the conv lowering should
/// honor.
pub fn im2col_cap_elems() -> usize {
    ensure_init();
    match PIN_IM2COL.load(Ordering::Relaxed) {
        0 => DEFAULT_IM2COL_CAP_ELEMS,
        n => n,
    }
}

// ------------------------------------------------------- keys + choices

/// Which GEMM entry point a tuning key describes (the transposed
/// variants pack differently, so their winners are cached separately).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GemmKind {
    /// `matmul` (both operands row-major).
    MM,
    /// `matmul_at` (left operand read transposed).
    AT,
    /// `matmul_bt` (right operand read transposed).
    BT,
}

impl GemmKind {
    fn name(self) -> &'static str {
        match self {
            GemmKind::MM => "mm",
            GemmKind::AT => "at",
            GemmKind::BT => "bt",
        }
    }
}

/// A shape key the autotuner caches winners under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TuneKey {
    /// A GEMM product: kind, shape, SIMD backend, worker threads.
    Gemm {
        /// Entry-point flavor.
        kind: GemmKind,
        /// Output rows.
        m: usize,
        /// Reduction length.
        k: usize,
        /// Output columns.
        n: usize,
        /// SIMD backend the product dispatches through.
        backend: Backend,
        /// Resolved worker-thread budget.
        threads: usize,
    },
    /// A caller-defined knob (e.g. the conv im2col chunk), keyed by a
    /// static tag and up to four shape dimensions.
    Custom {
        /// Static tag naming the knob (e.g. `im2col`).
        tag: &'static str,
        /// Shape dimensions identifying the call site's workload.
        dims: [usize; 4],
    },
}

impl TuneKey {
    /// Renders the key in the stable textual form used by the on-disk
    /// cache and the results-document provenance.
    pub fn render(&self) -> String {
        match self {
            TuneKey::Gemm { kind, m, k, n, backend, threads } => {
                format!("gemm-{}:{m}x{k}x{n}:{}:t{threads}", kind.name(), backend.name())
            }
            TuneKey::Custom { tag, dims } => {
                format!("{tag}:{}x{}x{}x{}", dims[0], dims[1], dims[2], dims[3])
            }
        }
    }
}

/// Where a cached winner came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChoiceSource {
    /// Benchmarked in this process.
    Autotune,
    /// Loaded from the host-fingerprinted on-disk cache.
    DiskCache,
}

impl ChoiceSource {
    /// The provenance spelling (`autotune` / `disk-cache`).
    pub fn name(self) -> &'static str {
        match self {
            ChoiceSource::Autotune => "autotune",
            ChoiceSource::DiskCache => "disk-cache",
        }
    }
}

/// A cached winning config: `value` is the block width for GEMM keys
/// and the knob value for custom keys; `workers` is the chosen worker
/// count (`0` for custom keys).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Choice {
    /// Block width (GEMM) or knob value (custom).
    pub value: usize,
    /// Chosen worker count (GEMM only; `0` otherwise).
    pub workers: usize,
    /// Provenance of the choice.
    pub source: ChoiceSource,
}

/// One provenance record for the results document: the rendered key,
/// the chosen config, and where it came from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChoiceRecord {
    /// Rendered [`TuneKey`].
    pub key: String,
    /// Rendered winning config (e.g. `block=128 workers=1`).
    pub config: String,
    /// [`ChoiceSource`] name.
    pub source: String,
}

fn winners() -> &'static RwLock<HashMap<TuneKey, Choice>> {
    static WINNERS: OnceLock<RwLock<HashMap<TuneKey, Choice>>> = OnceLock::new();
    WINNERS.get_or_init(|| RwLock::new(HashMap::new()))
}

/// Every winner chosen so far (in-process + adopted disk entries),
/// sorted by rendered key — the `tuning.choices` provenance section.
pub fn choice_records() -> Vec<ChoiceRecord> {
    let map = winners().read().unwrap_or_else(|e| e.into_inner());
    let mut records: Vec<ChoiceRecord> = map
        .iter()
        .map(|(key, choice)| ChoiceRecord {
            key: key.render(),
            config: match key {
                TuneKey::Gemm { .. } => {
                    format!("block={} workers={}", choice.value, choice.workers)
                }
                TuneKey::Custom { .. } => format!("value={}", choice.value),
            },
            source: choice.source.name().to_string(),
        })
        .collect();
    records.sort_by(|a, b| a.key.cmp(&b.key));
    records
}

/// Drops every cached winner (tests and `swim tune --reset`).
pub fn clear_winners() {
    winners().write().unwrap_or_else(|e| e.into_inner()).clear();
}

// ------------------------------------------------------------ gemm plan

/// The per-product execution plan [`gemm_plan`] hands the kernel:
/// worker count and block width, both byte-neutral.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GemmPlan {
    /// Threads the row-panel split uses (`1` = serial).
    pub workers: usize,
    /// Packed-panel block width (multiple of [`NR`]).
    pub block_cols: usize,
}

/// Resolves the execution plan for one `m×k·k×n` product.
///
/// `threads_req` is the caller's explicit thread count (`0` = the
/// installed/auto setting). With tuning off (or any explicit block
/// pin), this is the legacy heuristic; with tuning on, the shape key is
/// looked up in the winner cache, then the on-disk cache, and finally
/// autotuned with a median-of-[`TUNE_REPS`] timing loop.
pub fn gemm_plan(kind: GemmKind, m: usize, k: usize, n: usize, threads_req: usize) -> GemmPlan {
    ensure_init();
    let threads = if threads_req == 0 { gemm_threads() } else { threads_req };
    let flops = m.saturating_mul(n).saturating_mul(k);
    let default_workers = if flops < gemm_min_flops() { 1 } else { threads.min(m).max(1) };
    let pinned_block = PIN_BLOCK.load(Ordering::Relaxed);
    let default_plan = GemmPlan {
        workers: default_workers,
        block_cols: if pinned_block == 0 {
            clamp_block(block_cols_heuristic(k), n)
        } else {
            clamp_block(pinned_block, n)
        },
    };
    if mode() == TuneMode::Off || pinned_block != 0 || flops < TUNE_MIN_FLOPS {
        return default_plan;
    }

    let key = TuneKey::Gemm { kind, m, k, n, backend: simd::backend(), threads };
    if let Some(choice) = winners().read().unwrap_or_else(|e| e.into_inner()).get(&key) {
        return GemmPlan { workers: choice.workers.max(1), block_cols: choice.value };
    }
    if let Some(choice) = disk_lookup(&key) {
        adopt(key, choice);
        return GemmPlan { workers: choice.workers.max(1), block_cols: choice.value };
    }

    let plan = autotune_gemm(m, k, n, default_plan);
    adopt(
        key,
        Choice { value: plan.block_cols, workers: plan.workers, source: ChoiceSource::Autotune },
    );
    persist(&key, plan.block_cols, plan.workers);
    plan
}

/// Inserts a winner into the in-process cache.
fn adopt(key: TuneKey, choice: Choice) {
    winners().write().unwrap_or_else(|e| e.into_inner()).insert(key, choice);
}

/// Benchmarks the candidate grid for one GEMM shape on synthetic data
/// and returns the fastest plan. Candidates only ever change speed —
/// the kernel's accumulation order is identical for every block width
/// and worker count — so the winner can be cached and reused freely.
fn autotune_gemm(m: usize, k: usize, n: usize, default_plan: GemmPlan) -> GemmPlan {
    // Deterministic synthetic operands: the timing loop must not
    // perturb any caller-visible PRNG stream.
    let fill = |len: usize, salt: u32| -> Vec<f32> {
        (0..len)
            .map(|i| {
                let h = (i as u32).wrapping_mul(2654435761).wrapping_add(salt);
                (h >> 8) as f32 / (1u32 << 24) as f32 - 0.5
            })
            .collect()
    };
    let a = fill(m * k, 0x9e37);
    let b = fill(k * n, 0x85eb);
    let mut out = vec![0.0f32; m * n];

    let mut block_candidates: Vec<usize> = [default_plan.block_cols, 64, 128, 256, 512, 1024]
        .iter()
        .map(|&c| clamp_block(c, n))
        .collect();
    block_candidates.sort_unstable();
    block_candidates.dedup();

    let mut worker_candidates = vec![default_plan.workers];
    if default_plan.workers > 1 {
        // Let the timing loop demote a borderline product back to the
        // serial path — the per-shape answer to the global
        // `PARALLEL_MIN_FLOPS` threshold.
        worker_candidates.push(1);
    }

    let mut best = default_plan;
    let mut best_time = Duration::MAX;
    for &workers in &worker_candidates {
        for &block_cols in &block_candidates {
            let plan = GemmPlan { workers, block_cols };
            let elapsed = median_time(TUNE_REPS, || {
                crate::linalg::gemm_forced(&a, &b, m, k, n, plan, &mut out);
            });
            if elapsed < best_time {
                best_time = elapsed;
                best = plan;
            }
        }
    }
    best
}

/// Times `f` `reps` times and returns the median.
fn median_time(reps: usize, mut f: impl FnMut()) -> Duration {
    let mut times: Vec<Duration> = (0..reps.max(1))
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed()
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

/// Resolves a caller-defined knob (e.g. the conv im2col chunk) through
/// the same cache + autotune machinery.
///
/// With tuning off, returns `default`. With tuning on, the key is
/// looked up (in-process, then disk) and otherwise each candidate is
/// timed with `bench` (median of [`TUNE_REPS`]); the winner is cached
/// and persisted. `bench` must be byte-neutral: candidates may only
/// change how fast the work runs, never what it computes.
pub fn resolve_custom(
    tag: &'static str,
    dims: [usize; 4],
    default: usize,
    candidates: &[usize],
    mut bench: impl FnMut(usize),
) -> usize {
    ensure_init();
    if mode() == TuneMode::Off || candidates.is_empty() {
        return default;
    }
    let key = TuneKey::Custom { tag, dims };
    if let Some(choice) = winners().read().unwrap_or_else(|e| e.into_inner()).get(&key) {
        return choice.value;
    }
    if let Some(choice) = disk_lookup(&key) {
        adopt(key, choice);
        return choice.value;
    }
    let mut best = default;
    let mut best_time = Duration::MAX;
    for &candidate in candidates {
        let elapsed = median_time(TUNE_REPS, || bench(candidate));
        if elapsed < best_time {
            best_time = elapsed;
            best = candidate;
        }
    }
    adopt(key, Choice { value: best, workers: 0, source: ChoiceSource::Autotune });
    persist(&key, best, 0);
    best
}

// ---------------------------------------------------------- disk cache

/// On-disk cache format version; bumped on any layout change (old
/// files are then ignored and re-tuned, never misread).
const CACHE_FORMAT: &str = "swim-tune-cache v1";

struct DiskCache {
    dir: Option<PathBuf>,
    entries: HashMap<String, (usize, usize)>,
}

fn disk() -> &'static Mutex<DiskCache> {
    static DISK: OnceLock<Mutex<DiskCache>> = OnceLock::new();
    DISK.get_or_init(|| Mutex::new(DiskCache { dir: None, entries: HashMap::new() }))
}

/// The host fingerprint on-disk winners are keyed by: CPU brand, SIMD
/// feature set, and core count. A cache written on any other host is
/// ignored (and re-tuned) rather than trusted.
pub fn host_fingerprint() -> String {
    let brand = cpu_brand();
    let features: Vec<&str> = simd::available_backends().iter().map(|b| b.name()).collect();
    format!("{brand}|{}|{}cores", features.join("+"), detected_parallelism())
}

/// The first `model name` line of `/proc/cpuinfo`, squashed to
/// single-space tokens; the target architecture elsewhere.
fn cpu_brand() -> String {
    if let Ok(text) = std::fs::read_to_string("/proc/cpuinfo") {
        for line in text.lines() {
            if let Some((key, value)) = line.split_once(':') {
                if key.trim() == "model name" {
                    return value.split_whitespace().collect::<Vec<_>>().join(" ");
                }
            }
        }
    }
    std::env::consts::ARCH.to_string()
}

/// FNV-1a 64-bit, the short stable hash used in cache file names.
fn fnv1a64(text: &str) -> u64 {
    let mut hash: u64 = 0xcbf29ce484222325;
    for byte in text.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

/// The cache file path for this host under `dir`.
pub fn cache_file(dir: &Path) -> PathBuf {
    dir.join(format!("swim-tune-{:016x}.cache", fnv1a64(&host_fingerprint())))
}

/// Points the on-disk winner cache at `dir` (`None` disables
/// persistence) and loads any existing entries for this host.
///
/// Loading is *tolerant*: a missing, truncated, corrupt, wrong-version,
/// or other-host file is ignored with a warning on stderr — the shapes
/// simply re-tune — never a panic or a failed run.
pub fn set_cache_dir(dir: Option<&Path>) {
    let mut cache = disk().lock().unwrap_or_else(|e| e.into_inner());
    cache.entries.clear();
    cache.dir = dir.map(Path::to_path_buf);
    let Some(dir) = dir else { return };
    let path = cache_file(dir);
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return,
        Err(e) => {
            eprintln!("[swim] tune cache {}: {e}; re-tuning", path.display());
            return;
        }
    };
    match parse_cache(&text) {
        Ok(entries) => cache.entries = entries,
        Err(reason) => {
            eprintln!("[swim] tune cache {}: {reason}; ignoring it and re-tuning", path.display());
        }
    }
}

/// Parses the line-based cache format; any irregularity rejects the
/// whole file (the autotuner re-measures — a winner is cheap to
/// rediscover, a misread one is not).
fn parse_cache(text: &str) -> Result<HashMap<String, (usize, usize)>, String> {
    let mut lines = text.lines();
    match lines.next() {
        Some(header) if header == CACHE_FORMAT => {}
        Some(header) => return Err(format!("unsupported header `{header}`")),
        None => return Err("empty file".to_string()),
    }
    match lines.next() {
        Some(host) if host.strip_prefix("host ") == Some(&host_fingerprint()) => {}
        Some(host) => {
            return Err(format!(
                "written on another host (`{}` vs this host `{}`)",
                host.strip_prefix("host ").unwrap_or(host),
                host_fingerprint()
            ))
        }
        None => return Err("truncated file (missing host line)".to_string()),
    }
    let mut entries = HashMap::new();
    for (i, line) in lines.enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let parse_entry = || -> Option<(String, usize, usize)> {
            let (key, config) = line.split_once(' ')?;
            let (value, workers) = config.split_once(',')?;
            Some((key.to_string(), value.parse().ok()?, workers.parse().ok()?))
        };
        match parse_entry() {
            Some((key, value, workers)) => {
                entries.insert(key, (value, workers));
            }
            None => return Err(format!("corrupt entry on line {}", i + 3)),
        }
    }
    Ok(entries)
}

/// Looks a key up in the loaded on-disk entries.
fn disk_lookup(key: &TuneKey) -> Option<Choice> {
    let cache = disk().lock().unwrap_or_else(|e| e.into_inner());
    cache.dir.as_ref()?;
    cache.entries.get(&key.render()).map(|&(value, workers)| Choice {
        value,
        workers,
        source: ChoiceSource::DiskCache,
    })
}

/// Records a freshly-tuned winner in the on-disk cache (no-op without
/// a cache dir). Write failures only warn: tuning persistence is an
/// optimization, never a correctness requirement.
fn persist(key: &TuneKey, value: usize, workers: usize) {
    let mut cache = disk().lock().unwrap_or_else(|e| e.into_inner());
    let Some(dir) = cache.dir.clone() else { return };
    cache.entries.insert(key.render(), (value, workers));
    let mut body = format!("{CACHE_FORMAT}\nhost {}\n", host_fingerprint());
    let mut keys: Vec<&String> = cache.entries.keys().collect();
    keys.sort();
    for k in keys {
        let (v, w) = cache.entries[k];
        body.push_str(&format!("{k} {v},{w}\n"));
    }
    if let Err(e) = write_atomic(&cache_file(&dir), body.as_bytes()) {
        eprintln!("[swim] tune cache {}: {e} (winners stay in-process)", dir.display());
    }
}

/// Temp-file + rename write so a crash never leaves a truncated cache
/// (which the tolerant loader would then discard anyway).
fn write_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let tmp = path.with_extension("cache.tmp");
    std::fs::write(&tmp, bytes)?;
    std::fs::rename(&tmp, path)
}

/// The number of on-disk entries loaded for this host (for `swim tune`
/// / `swim list` cache inspection).
pub fn disk_entry_count() -> usize {
    disk().lock().unwrap_or_else(|e| e.into_inner()).entries.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that touch the process-global tuning state.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        LOCK.get_or_init(|| Mutex::new(())).lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn mode_round_trips_names() {
        for mode in [TuneMode::Off, TuneMode::On] {
            assert_eq!(TuneMode::parse(mode.name()), Some(mode));
        }
        assert_eq!(TuneMode::parse("fast"), None);
    }

    #[test]
    fn install_and_current_round_trip() {
        let _guard = lock();
        let t = KernelTuning {
            mode: TuneMode::On,
            gemm_threads: 3,
            gemm_block_cols: 64,
            gemm_min_flops: 1234,
            im2col_cap_elems: 99,
            cache_dir: None,
        };
        with_tuning(&t, || {
            assert_eq!(current(), t);
            assert_eq!(gemm_threads(), 3);
            assert_eq!(gemm_min_flops(), 1234);
            assert_eq!(im2col_cap_elems(), 99);
        });
        // Restored afterwards.
        assert_eq!(im2col_cap_elems(), current().im2col_cap_elems.max(DEFAULT_IM2COL_CAP_ELEMS));
    }

    #[test]
    fn plan_defaults_match_legacy_heuristic() {
        let _guard = lock();
        with_tuning(&KernelTuning::default(), || {
            let plan = gemm_plan(GemmKind::MM, 8, 70, 90, 1);
            assert_eq!(plan.workers, 1, "below the flops threshold");
            assert_eq!(plan.block_cols, gemm_block_cols(70, 90));
        });
    }

    #[test]
    fn autotune_caches_winner_per_key() {
        let _guard = lock();
        clear_winners();
        let t = KernelTuning { mode: TuneMode::On, ..Default::default() };
        with_tuning(&t, || {
            let plan1 = gemm_plan(GemmKind::MM, 128, 128, 128, 1);
            let records = choice_records();
            assert_eq!(records.len(), 1, "{records:?}");
            assert!(records[0].key.starts_with("gemm-mm:128x128x128:"), "{}", records[0].key);
            assert_eq!(records[0].source, "autotune");
            // Second call is a cache hit returning the same plan.
            let plan2 = gemm_plan(GemmKind::MM, 128, 128, 128, 1);
            assert_eq!(plan1, plan2);
            assert_eq!(choice_records().len(), 1);
        });
        clear_winners();
    }

    #[test]
    fn tiny_products_skip_the_timing_loop() {
        let _guard = lock();
        clear_winners();
        let t = KernelTuning { mode: TuneMode::On, ..Default::default() };
        with_tuning(&t, || {
            let _ = gemm_plan(GemmKind::MM, 4, 4, 4, 1);
            assert!(choice_records().is_empty(), "tiny shapes must not be tuned");
        });
    }

    #[test]
    fn resolve_custom_respects_mode_and_caches() {
        let _guard = lock();
        clear_winners();
        // Off: default wins, bench never runs.
        let mut ran = false;
        let v = resolve_custom("test-knob", [1, 2, 3, 4], 42, &[1, 2], |_| ran = true);
        assert_eq!(v, 42);
        assert!(!ran);
        // On: candidates are timed once, then cached.
        let t = KernelTuning { mode: TuneMode::On, ..Default::default() };
        with_tuning(&t, || {
            let mut calls = 0;
            let v = resolve_custom("test-knob", [1, 2, 3, 4], 42, &[7, 8], |_| calls += 1);
            assert!(v == 7 || v == 8);
            assert_eq!(calls, 2 * TUNE_REPS);
            let mut calls2 = 0;
            let v2 = resolve_custom("test-knob", [1, 2, 3, 4], 42, &[7, 8], |_| calls2 += 1);
            assert_eq!(v2, v);
            assert_eq!(calls2, 0, "cache hit must not re-bench");
        });
        clear_winners();
    }

    #[test]
    fn disk_cache_round_trips_bit_exactly() {
        let _guard = lock();
        clear_winners();
        let dir = std::env::temp_dir().join(format!("swim-tune-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let t =
            KernelTuning { mode: TuneMode::On, cache_dir: Some(dir.clone()), ..Default::default() };
        with_tuning(&t, || {
            let plan = gemm_plan(GemmKind::MM, 128, 128, 128, 1);
            let written = std::fs::read_to_string(cache_file(&dir)).unwrap();
            assert!(written.starts_with(CACHE_FORMAT));
            // A fresh process (simulated: clear in-memory winners,
            // reload the dir) must adopt the identical choice.
            clear_winners();
            set_cache_dir(Some(&dir));
            let reloaded = gemm_plan(GemmKind::MM, 128, 128, 128, 1);
            assert_eq!(reloaded, plan);
            let records = choice_records();
            assert_eq!(records[0].source, "disk-cache");
            // And the reloaded state re-persists byte-identically.
            let rewritten = std::fs::read_to_string(cache_file(&dir)).unwrap();
            assert_eq!(rewritten, written);
        });
        let _ = std::fs::remove_dir_all(&dir);
        clear_winners();
    }

    #[test]
    fn corrupt_truncated_and_foreign_caches_are_ignored() {
        let _guard = lock();
        let dir = std::env::temp_dir().join(format!("swim-tune-corrupt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = cache_file(&dir);
        for bad in [
            "",                                               // empty
            "swim-tune-cache v999\nhost x\n",                 // wrong version
            CACHE_FORMAT,                                     // truncated: no host line
            &format!("{CACHE_FORMAT}\nhost somebody-else\n"), // foreign host
            &format!(
                "{CACHE_FORMAT}\nhost {}\ngemm-mm:1x1x1:scalar:t1 not-a-number\n",
                host_fingerprint()
            ), // corrupt entry
            &format!("{CACHE_FORMAT}\nhost {}\nmissing-config-field\n", host_fingerprint()),
        ] {
            std::fs::write(&path, bad).unwrap();
            set_cache_dir(Some(&dir)); // must warn, never panic
            assert_eq!(disk_entry_count(), 0, "bad cache {bad:?} must load zero entries");
        }
        set_cache_dir(None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fingerprint_is_stable_and_cache_file_is_keyed_by_it() {
        assert_eq!(host_fingerprint(), host_fingerprint());
        assert!(host_fingerprint().contains("cores"));
        let f = cache_file(Path::new("/x"));
        assert!(f.to_string_lossy().contains("swim-tune-"));
    }

    #[test]
    fn clamp_block_rounds_to_panels() {
        assert_eq!(clamp_block(1, 1024), NR);
        assert_eq!(clamp_block(100, 1024), 128);
        assert_eq!(clamp_block(4096, 64), 64);
    }
}
