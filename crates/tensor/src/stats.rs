//! Summary statistics with `f64` accumulation.
//!
//! The evaluation section of the paper reports `mean ± std` over thousands
//! of Monte Carlo runs (Table 1, Fig. 2) and a Pearson correlation
//! coefficient between per-weight sensitivity metrics and measured accuracy
//! drops (Fig. 1b, r ≈ 0.83). These helpers provide those quantities.

/// Running mean/variance accumulator (Welford's algorithm).
///
/// Numerically stable for long Monte Carlo streams; all state is `f64`.
///
/// # Example
///
/// ```
/// use swim_tensor::stats::Running;
///
/// let mut acc = Running::new();
/// for x in [1.0, 2.0, 3.0, 4.0] {
///     acc.push(x);
/// }
/// assert_eq!(acc.mean(), 2.5);
/// assert!((acc.sample_std() - 1.2909944).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Running {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Running {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Running::default()
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Mean of the observations (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (denominator `n`).
    pub fn variance(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn std(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Sample standard deviation (denominator `n - 1`; 0 when `n < 2`).
    pub fn sample_std(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / (self.n - 1) as f64).sqrt()
        }
    }

    /// Merges another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &Running) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n as f64;
        let m2 = self.m2 + other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n as f64;
        *self = Running { n, mean, m2 };
    }
}

/// Mean of a slice (0 when empty), `f64` accumulation.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population standard deviation of a slice.
pub fn std(xs: &[f64]) -> f64 {
    let m = mean(xs);
    if xs.is_empty() {
        return 0.0;
    }
    (xs.iter().map(|&x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Pearson correlation coefficient between two equal-length samples.
///
/// Returns 0 when either sample has zero variance or fewer than two points
/// (no linear relationship can be estimated).
///
/// # Panics
///
/// Panics if the slices have different lengths.
///
/// # Example
///
/// ```
/// use swim_tensor::stats::pearson;
///
/// let x = [1.0, 2.0, 3.0, 4.0];
/// let y = [2.0, 4.0, 6.0, 8.0];
/// assert!((pearson(&x, &y) - 1.0).abs() < 1e-12);
/// ```
pub fn pearson(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "pearson requires equal-length samples");
    let n = x.len();
    if n < 2 {
        return 0.0;
    }
    let mx = mean(x);
    let my = mean(y);
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for i in 0..n {
        let dx = x[i] - mx;
        let dy = y[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx == 0.0 || syy == 0.0 {
        return 0.0;
    }
    sxy / (sxx * syy).sqrt()
}

/// Spearman rank correlation: Pearson correlation of the rank transforms.
///
/// Ties receive their average rank. Useful as a robustness check on the
/// Fig. 1 correlation claims because it is invariant to monotone scaling.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn spearman(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "spearman requires equal-length samples");
    pearson(&ranks(x), &ranks(y))
}

/// Average ranks (1-based) with ties sharing their mean rank.
fn ranks(xs: &[f64]) -> Vec<f64> {
    let n = xs.len();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| xs[a].partial_cmp(&xs[b]).unwrap_or(std::cmp::Ordering::Equal));
    let mut out = vec![0.0f64; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && xs[idx[j + 1]] == xs[idx[i]] {
            j += 1;
        }
        let avg_rank = (i + j) as f64 / 2.0 + 1.0;
        for k in i..=j {
            out[idx[k]] = avg_rank;
        }
        i = j + 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_matches_batch() {
        let xs = [0.5, 1.5, -2.0, 4.25, 3.0, -0.75];
        let mut acc = Running::new();
        for &x in &xs {
            acc.push(x);
        }
        assert!((acc.mean() - mean(&xs)).abs() < 1e-12);
        assert!((acc.std() - std(&xs)).abs() < 1e-12);
        assert_eq!(acc.count(), xs.len() as u64);
    }

    #[test]
    fn running_merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64) * 0.37 - 5.0).collect();
        let mut whole = Running::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut left = Running::new();
        let mut right = Running::new();
        for &x in &xs[..37] {
            left.push(x);
        }
        for &x in &xs[37..] {
            right.push(x);
        }
        left.merge(&right);
        assert!((left.mean() - whole.mean()).abs() < 1e-10);
        assert!((left.variance() - whole.variance()).abs() < 1e-10);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Running::new();
        a.push(2.0);
        a.push(4.0);
        let before = a;
        a.merge(&Running::new());
        assert_eq!(a, before);
        let mut empty = Running::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn pearson_perfect_and_inverse() {
        let x = [1.0, 2.0, 3.0];
        assert!((pearson(&x, &[10.0, 20.0, 30.0]) - 1.0).abs() < 1e-12);
        assert!((pearson(&x, &[3.0, 2.0, 1.0]) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_zero_variance_is_zero() {
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
    }

    #[test]
    fn pearson_uncorrelated_near_zero() {
        // Symmetric cloud with no linear trend.
        let x = [-2.0, -1.0, 0.0, 1.0, 2.0];
        let y = [4.0, 1.0, 0.0, 1.0, 4.0];
        assert!(pearson(&x, &y).abs() < 1e-12);
    }

    #[test]
    fn spearman_monotone_invariance() {
        let x = [0.1f64, 0.5, 0.9, 2.0, 7.5];
        let y: Vec<f64> = x.iter().map(|&v| v.exp()).collect();
        assert!((spearman(&x, &y) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ranks_handle_ties() {
        let r = ranks(&[1.0, 2.0, 2.0, 3.0]);
        assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
    }
}
