//! The SIMD drift contract, pinned as a differential suite: every
//! vector backend the host can run is compared against the scalar
//! reference on the same inputs.
//!
//! * **Elementwise kernels and the device-programming kernel must be
//!   bit-identical** to scalar — including NaN, ±∞, signed zeros, and
//!   subnormals, and on every lane-remainder length.
//! * **GEMM may drift within [`GEMM_DRIFT_TOL`]** (the vector
//!   microkernels fuse multiply-adds; accumulation order is unchanged),
//!   and must stay bit-identical to *itself* across thread counts
//!   within one backend.
//!
//! Each case iterates [`available_backends`], so on an AVX-512 host the
//! same binary exercises avx512, avx2, and scalar; on AArch64 it
//! exercises neon and scalar; on a bare host it degenerates to
//! scalar-vs-scalar rather than silently passing.

use proptest::prelude::*;
use swim_tensor::linalg::{matmul, matmul_at, matmul_bt, matmul_with_threads};
use swim_tensor::simd::{
    available_backends, batchnorm_normalize, fake_quant_signed_inplace,
    fake_quant_unsigned_inplace, relu_apply_mask, relu_forward_inplace, scale_add_f64,
    with_backend, Backend, GEMM_DRIFT_TOL,
};
use swim_tensor::{Prng, Tensor};

/// Lengths that straddle every backend's lane width (1, 4, 8, 16):
/// empty, single element, one-below/at/one-above each width, and a
/// couple of longer odd lengths so the vector loop runs several times
/// before the scalar tail.
const EDGE_LENGTHS: [usize; 13] = [0, 1, 3, 4, 5, 7, 8, 9, 15, 16, 17, 33, 100];

/// The GEMM drift predicate from the module docs:
/// `|a − b| ≤ GEMM_DRIFT_TOL · max(1, |a|, |b|)`.
fn gemm_close(a: f32, b: f32) -> bool {
    (a - b).abs() <= GEMM_DRIFT_TOL * a.abs().max(b.abs()).max(1.0)
}

fn assert_gemm_close(got: &Tensor, want: &Tensor, context: &str) {
    assert_eq!(got.shape(), want.shape(), "{context}: shape");
    for (i, (&g, &w)) in got.data().iter().zip(want.data().iter()).enumerate() {
        assert!(gemm_close(g, w), "{context}: element {i}: {g} vs scalar {w}");
    }
}

fn bits32(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

fn bits64(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// A float soup that hits every special-value branch: ordinary values,
/// ties (k + 0.5), signed zeros, infinities, NaN, and subnormals.
fn soup(len: usize, seed: u64) -> Vec<f32> {
    let specials = [
        f32::NAN,
        f32::INFINITY,
        f32::NEG_INFINITY,
        0.0,
        -0.0,
        1e-40,
        -1e-40,
        f32::MIN_POSITIVE,
        2.5,
        -2.5,
        0.5,
        -0.5,
    ];
    let mut rng = Prng::seed_from_u64(seed);
    (0..len)
        .map(|i| {
            if i % 5 == 3 {
                specials[(seed as usize + i) % specials.len()]
            } else {
                (rng.normal(0.0, 4.0)) as f32
            }
        })
        .collect()
}

/// Runs every elementwise kernel on one input and returns everything
/// they produced, for whole-pipeline bit comparison.
#[allow(clippy::type_complexity)]
fn elementwise_outputs(
    input: &[f32],
    scale: f32,
    max_code: f32,
) -> (Vec<f32>, Vec<bool>, Vec<f32>, Vec<f32>, Vec<f32>, Vec<f32>, Vec<f32>) {
    let mut relu = input.to_vec();
    let mut mask = Vec::new();
    relu_forward_inplace(&mut relu, &mut mask);
    let mut grad = input.to_vec();
    relu_apply_mask(&mut grad, &mask);
    let mut signed = input.to_vec();
    fake_quant_signed_inplace(&mut signed, scale, max_code);
    let mut unsigned = input.to_vec();
    fake_quant_unsigned_inplace(&mut unsigned, scale, max_code);
    let mut x_hat = vec![0.0f32; input.len()];
    let mut out = vec![0.0f32; input.len()];
    batchnorm_normalize(input, 0.37, 2.9, 1.3, -0.11, &mut x_hat, &mut out);
    (relu, mask, grad, signed, unsigned, x_hat, out)
}

#[test]
fn elementwise_kernels_bit_identical_on_every_edge_length() {
    for &len in &EDGE_LENGTHS {
        let input = soup(len, len as u64 + 1);
        let reference =
            with_backend(Backend::Scalar, || elementwise_outputs(&input, 0.043, 127.0)).unwrap();
        for b in available_backends() {
            let got = with_backend(b, || elementwise_outputs(&input, 0.043, 127.0)).unwrap();
            assert_eq!(bits32(&got.0), bits32(&reference.0), "relu, len {len}, backend {b}");
            assert_eq!(got.1, reference.1, "relu mask, len {len}, backend {b}");
            assert_eq!(bits32(&got.2), bits32(&reference.2), "relu grad, len {len}, backend {b}");
            assert_eq!(bits32(&got.3), bits32(&reference.3), "fq signed, len {len}, backend {b}");
            assert_eq!(bits32(&got.4), bits32(&reference.4), "fq unsigned, len {len}, backend {b}");
            assert_eq!(bits32(&got.5), bits32(&reference.5), "bn x_hat, len {len}, backend {b}");
            assert_eq!(bits32(&got.6), bits32(&reference.6), "bn out, len {len}, backend {b}");
        }
    }
}

#[test]
fn scale_add_f64_bit_identical_on_every_edge_length() {
    for &len in &EDGE_LENGTHS {
        let targets: Vec<f64> = (0..len).map(|i| (i as f64 * 0.83).cos() * 7.0).collect();
        let zs: Vec<f64> = (0..len)
            .map(|i| match i % 9 {
                7 => f64::INFINITY,
                8 => f64::NAN,
                _ => (i as f64 * 1.31).sin() * 3.0,
            })
            .collect();
        let reference = {
            let mut inout = zs.clone();
            with_backend(Backend::Scalar, || scale_add_f64(&targets, 0.07, &mut inout)).unwrap();
            inout
        };
        for b in available_backends() {
            let mut inout = zs.clone();
            with_backend(b, || scale_add_f64(&targets, 0.07, &mut inout)).unwrap();
            assert_eq!(bits64(&inout), bits64(&reference), "len {len}, backend {b}");
        }
    }
}

/// GEMM across shapes that exercise both microkernels (4-row tiles and
/// the 1-row remainder), the k loop, and empty-ish extremes.
#[test]
fn gemm_shapes_drift_within_tolerance_of_scalar() {
    let shapes: [(usize, usize, usize); 8] = [
        (1, 1, 1),
        (1, 7, 5),
        (3, 16, 2),
        (4, 4, 4),
        (5, 33, 17),
        (8, 100, 9),
        (13, 27, 31),
        (64, 64, 64),
    ];
    let mut rng = Prng::seed_from_u64(99);
    for &(m, k, n) in &shapes {
        let a = Tensor::randn(&[m, k], &mut rng);
        let b = Tensor::randn(&[k, n], &mut rng);
        let want = with_backend(Backend::Scalar, || matmul(&a, &b)).unwrap();
        for backend in available_backends() {
            let got = with_backend(backend, || matmul(&a, &b)).unwrap();
            assert_gemm_close(&got, &want, &format!("matmul {m}x{k}x{n}, backend {backend}"));
        }
    }
}

/// The transpose-flavored entry points dispatch through the same
/// microkernels; pin them too so a refactor cannot quietly route one of
/// them around the backend switch.
#[test]
fn gemm_transpose_variants_drift_within_tolerance_of_scalar() {
    let mut rng = Prng::seed_from_u64(7);
    let (m, k, n) = (6, 19, 11);
    let at = Tensor::randn(&[k, m], &mut rng);
    let b = Tensor::randn(&[k, n], &mut rng);
    let c = Tensor::randn(&[m, k], &mut rng);
    let dt = Tensor::randn(&[n, k], &mut rng);
    let (want_at, want_bt) =
        with_backend(Backend::Scalar, || (matmul_at(&at, &b), matmul_bt(&c, &dt))).unwrap();
    for backend in available_backends() {
        let (got_at, got_bt) =
            with_backend(backend, || (matmul_at(&at, &b), matmul_bt(&c, &dt))).unwrap();
        assert_gemm_close(&got_at, &want_at, &format!("matmul_at, backend {backend}"));
        assert_gemm_close(&got_bt, &want_bt, &format!("matmul_bt, backend {backend}"));
    }
}

/// Within one backend, GEMM is bit-stable across thread counts — the
/// accumulation order per output element never depends on the split.
#[test]
fn gemm_bit_identical_across_thread_counts_per_backend() {
    let mut rng = Prng::seed_from_u64(41);
    let a = Tensor::randn(&[17, 48], &mut rng);
    let b = Tensor::randn(&[48, 23], &mut rng);
    for backend in available_backends() {
        let reference = with_backend(backend, || matmul_with_threads(&a, &b, 1)).unwrap();
        for threads in [2, 3, 8] {
            let got = with_backend(backend, || matmul_with_threads(&a, &b, threads)).unwrap();
            assert_eq!(
                bits32(got.data()),
                bits32(reference.data()),
                "backend {backend}, {threads} threads"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random shapes and values: vector GEMM stays within the pinned
    /// drift tolerance of the scalar reference.
    #[test]
    fn prop_gemm_drift_bounded(
        m in 1usize..20,
        k in 1usize..40,
        n in 1usize..20,
        seed in 0u64..1000,
    ) {
        let mut rng = Prng::seed_from_u64(seed);
        let a = Tensor::randn(&[m, k], &mut rng);
        let b = Tensor::randn(&[k, n], &mut rng);
        let want = with_backend(Backend::Scalar, || matmul(&a, &b)).unwrap();
        for backend in available_backends() {
            let got = with_backend(backend, || matmul(&a, &b)).unwrap();
            for (&g, &w) in got.data().iter().zip(want.data().iter()) {
                prop_assert!(
                    gemm_close(g, w),
                    "{m}x{k}x{n} backend {}: {} vs {}", backend, g, w
                );
            }
        }
    }

    /// Random lengths and float soups: the elementwise layer is exactly
    /// the scalar reference, bit for bit, on every backend.
    #[test]
    fn prop_elementwise_bit_identical(
        len in 0usize..200,
        seed in 0u64..1000,
        scale in 1e-3f32..2.0,
    ) {
        let input = soup(len, seed);
        let reference =
            with_backend(Backend::Scalar, || elementwise_outputs(&input, scale, 255.0)).unwrap();
        for b in available_backends() {
            let got = with_backend(b, || elementwise_outputs(&input, scale, 255.0)).unwrap();
            assert_eq!(bits32(&got.0), bits32(&reference.0), "relu, backend {b}");
            assert_eq!(got.1, reference.1, "relu mask, backend {b}");
            assert_eq!(bits32(&got.2), bits32(&reference.2), "relu grad, backend {b}");
            assert_eq!(bits32(&got.3), bits32(&reference.3), "fq signed, backend {b}");
            assert_eq!(bits32(&got.4), bits32(&reference.4), "fq unsigned, backend {b}");
            assert_eq!(bits32(&got.5), bits32(&reference.5), "bn x_hat, backend {b}");
            assert_eq!(bits32(&got.6), bits32(&reference.6), "bn out, backend {b}");
        }
    }

    /// The device-programming kernel is exactly `t + sigma * z` per
    /// element on every backend.
    #[test]
    fn prop_scale_add_f64_bit_identical(
        len in 0usize..150,
        seed in 0u64..1000,
        sigma in 0.0f64..0.5,
    ) {
        let mut rng = Prng::seed_from_u64(seed);
        let targets: Vec<f64> = (0..len).map(|_| rng.normal(0.0, 5.0)).collect();
        let zs: Vec<f64> = (0..len).map(|_| rng.normal(0.0, 1.0)).collect();
        let want: Vec<f64> = targets.iter().zip(&zs).map(|(&t, &z)| t + sigma * z).collect();
        for b in available_backends() {
            let mut inout = zs.clone();
            with_backend(b, || scale_add_f64(&targets, sigma, &mut inout)).unwrap();
            assert_eq!(bits64(&inout), bits64(&want), "backend {b}");
        }
    }
}
