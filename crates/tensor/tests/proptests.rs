//! Property-based tests for tensor algebra invariants.

use proptest::prelude::*;
use swim_tensor::conv::{im2col, ConvGeometry};
use swim_tensor::linalg::{matmul, matmul_at, matmul_bt};
use swim_tensor::stats::{pearson, spearman, Running};
use swim_tensor::{Prng, Tensor};

fn tensor_strategy(max_dim: usize) -> impl Strategy<Value = Tensor> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-10.0f32..10.0, r * c)
            .prop_map(move |v| Tensor::from_vec(v, &[r, c]).expect("sized to shape"))
    })
}

proptest! {
    #[test]
    fn add_commutes(a in tensor_strategy(6)) {
        let b = a.map(|x| x * 0.5 - 1.0);
        prop_assert!((&a + &b).allclose(&(&b + &a), 1e-6));
    }

    #[test]
    fn add_sub_round_trips(a in tensor_strategy(6)) {
        let b = a.map(|x| x.sin() * 3.0);
        let back = &(&a + &b) - &b;
        prop_assert!(back.allclose(&a, 1e-4));
    }

    #[test]
    fn scale_distributes_over_add(a in tensor_strategy(5)) {
        let b = a.map(|x| x + 1.0);
        let mut lhs = &a + &b;
        lhs.scale(2.0);
        let mut a2 = a.clone();
        a2.scale(2.0);
        let mut b2 = b.clone();
        b2.scale(2.0);
        prop_assert!(lhs.allclose(&(&a2 + &b2), 1e-4));
    }

    #[test]
    fn transpose_involution(a in tensor_strategy(8)) {
        prop_assert_eq!(a.transposed().transposed(), a);
    }

    #[test]
    fn matmul_associates_with_identity(a in tensor_strategy(5)) {
        let n = a.shape()[1];
        let eye = Tensor::from_fn(&[n, n], |i| if i / n == i % n { 1.0 } else { 0.0 });
        prop_assert!(matmul(&a, &eye).allclose(&a, 1e-5));
    }

    #[test]
    fn matmul_transpose_variants_consistent(seed in 0u64..1000) {
        let mut rng = Prng::seed_from_u64(seed);
        let m = 2 + (seed % 5) as usize;
        let k = 2 + (seed % 3) as usize;
        let n = 2 + (seed % 4) as usize;
        let a = Tensor::randn(&[k, m], &mut rng);
        let b = Tensor::randn(&[k, n], &mut rng);
        let fast = matmul_at(&a, &b);
        let slow = matmul(&a.transposed(), &b);
        prop_assert!(fast.allclose(&slow, 1e-4));

        let c = Tensor::randn(&[m, k], &mut rng);
        let d = Tensor::randn(&[n, k], &mut rng);
        let fast = matmul_bt(&c, &d);
        let slow = matmul(&c, &d.transposed());
        prop_assert!(fast.allclose(&slow, 1e-4));
    }

    #[test]
    fn sum_axis0_matches_total(a in tensor_strategy(7)) {
        let total: f64 = a.sum_axis0().sum();
        prop_assert!((total - a.sum()).abs() < 1e-3);
    }

    #[test]
    fn im2col_col2im_adjoint(seed in 0u64..300) {
        let mut rng = Prng::seed_from_u64(seed);
        let c = 1 + (seed % 3) as usize;
        let h = 4 + (seed % 4) as usize;
        let k = 1 + (seed % 3) as usize;
        let pad = (seed % 2) as usize;
        let stride = 1 + (seed % 2) as usize;
        let geom = ConvGeometry {
            in_channels: c, in_h: h, in_w: h,
            kernel_h: k, kernel_w: k, stride, padding: pad,
        };
        prop_assume!(geom.is_valid());
        let x = Tensor::randn(&[c, h, h], &mut rng);
        let y = Tensor::randn(&[geom.col_rows(), geom.col_cols()], &mut rng);
        let lhs = im2col(&x, &geom).dot(&y);
        let rhs = x.dot(&swim_tensor::conv::col2im(&y, &geom));
        prop_assert!((lhs - rhs).abs() < 1e-2 * (1.0 + lhs.abs()));
    }

    #[test]
    fn running_stats_match_direct(xs in proptest::collection::vec(-100.0f64..100.0, 1..50)) {
        let mut acc = Running::new();
        for &x in &xs {
            acc.push(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        prop_assert!((acc.mean() - mean).abs() < 1e-9);
    }

    #[test]
    fn pearson_bounded(
        xs in proptest::collection::vec(-10.0f64..10.0, 3..30),
    ) {
        let ys: Vec<f64> = xs.iter().map(|&x| x * x - x).collect();
        let r = pearson(&xs, &ys);
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r));
    }

    #[test]
    fn spearman_invariant_under_monotone_map(
        xs in proptest::collection::vec(-5.0f64..5.0, 3..30),
    ) {
        let ys: Vec<f64> = xs.iter().map(|&x| x.tanh()).collect();
        let direct = spearman(&xs, &xs);
        let mapped = spearman(&xs, &ys);
        prop_assert!((direct - mapped).abs() < 1e-9);
    }

    #[test]
    fn prng_normal_is_finite(seed in 0u64..5000) {
        let mut rng = Prng::seed_from_u64(seed);
        for _ in 0..64 {
            let x = rng.normal(0.0, 2.0);
            prop_assert!(x.is_finite());
        }
    }

    #[test]
    fn sample_indices_always_distinct(seed in 0u64..1000, n in 1usize..40) {
        let mut rng = Prng::seed_from_u64(seed);
        let k = n / 2;
        let mut s = rng.sample_indices(n, k);
        s.sort_unstable();
        s.dedup();
        prop_assert_eq!(s.len(), k);
    }
}
