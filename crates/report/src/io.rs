//! Crash-safe file output.
//!
//! Every results/report/checkpoint file the tools write goes through
//! [`write_atomic`]: the bytes land in a `<path>.tmp` sibling, are
//! fsynced, and the file is renamed into place. A crash mid-write can
//! leave a stale `.tmp` behind but never a truncated document at the
//! destination — which is what lets `swim run --resume` trust whatever
//! checkpoint journal it finds on disk.

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::Path;

/// Writes `contents` to `path` atomically: write to `<path>.tmp`, fsync,
/// rename over `path`. The error message names the path and stage.
pub fn write_atomic(path: &Path, contents: &[u8]) -> Result<(), String> {
    let tmp = tmp_sibling(path);
    let mut file = OpenOptions::new()
        .write(true)
        .create(true)
        .truncate(true)
        .open(&tmp)
        .map_err(|e| format!("{}: create: {e}", tmp.display()))?;
    file.write_all(contents).map_err(|e| format!("{}: write: {e}", tmp.display()))?;
    // Flush file contents to stable storage *before* the rename makes
    // them visible under the final name.
    file.sync_all().map_err(|e| format!("{}: fsync: {e}", tmp.display()))?;
    drop(file);
    std::fs::rename(&tmp, path)
        .map_err(|e| format!("{} -> {}: rename: {e}", tmp.display(), path.display()))?;
    // Persist the directory entry too, so the rename itself survives a
    // crash. Best-effort: directory fsync is not supported everywhere.
    let dir = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    };
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(())
}

fn tmp_sibling(path: &Path) -> std::path::PathBuf {
    let mut name = path.file_name().map(|n| n.to_os_string()).unwrap_or_default();
    name.push(".tmp");
    path.with_file_name(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_and_replaces_without_leaving_tmp() {
        let dir = std::env::temp_dir().join(format!("swim-io-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("doc.json");
        write_atomic(&path, b"first").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        write_atomic(&path, b"second").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second");
        assert!(!dir.join("doc.json.tmp").exists(), "tmp sibling left behind");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn errors_name_the_path() {
        let path = Path::new("/nonexistent-dir-swim/doc.json");
        let e = write_atomic(path, b"x").unwrap_err();
        assert!(e.contains("doc.json.tmp"), "{e}");
    }
}
