//! Cross-run aggregation — the engine behind `swim summarize dir/`.
//!
//! Flattens any number of results documents into one table with a row
//! per (run, device model, sigma, method), anchored at the operating
//! points the paper argues about: by default no write-verify at all
//! (fraction 0), the headline NWC ≈ 0.1 point, and full write-verify
//! (fraction 1). The anchor list is caller-configurable (`swim
//! summarize --anchors`). That makes multi-run sweeps — e.g.
//! layer-balanced vs plain SWIM across sigmas, or a device-model grid —
//! readable at a glance without opening each document.
//!
//! Beyond the per-anchor means, two tail-risk columns report the
//! worst-case and 5th-percentile accuracy at the *headline* anchor (the
//! anchor nearest fraction 0.1 — SWIM's "10% of the writes" operating
//! point), the place where a deployment actually cares about the floor.
//! A grid-independent `AUC` column (normalized area under the
//! accuracy-vs-fraction curve) keeps rows comparable when a run used a
//! non-paper fraction grid that misses every anchor.

use crate::schema::{MethodCurveDoc, ResultsDoc};
use swim_core::report::Table;

/// The default fraction anchors summarized as columns.
pub const DEFAULT_ANCHORS: [f64; 3] = [0.0, 0.1, 1.0];

/// How far a curve point may sit from an anchor and still fill its
/// column (half the paper grid's 0.1→0.3 gap).
const ANCHOR_TOL: f64 = 0.075;

/// The nearest in-tolerance point of a method's curve to `anchor`.
fn anchor_point(method: &MethodCurveDoc, anchor: f64) -> Option<&crate::schema::CurvePoint> {
    method
        .points
        .iter()
        .map(|p| (p, (p.fraction - anchor).abs()))
        .filter(|(_, d)| *d <= ANCHOR_TOL)
        .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
        .map(|(p, _)| p)
}

/// The cell for one method at one anchor: the nearest in-tolerance
/// point's `mean ± std`, or `-` when the grid has no such point.
fn anchor_cell(method: &MethodCurveDoc, anchor: f64) -> String {
    match anchor_point(method, anchor) {
        Some(p) => format!("{:.2} ± {:.2}", p.accuracy_mean, p.accuracy_std),
        None => "-".to_string(),
    }
}

/// The column header for one anchor. The exact grid endpoints 0 and 1
/// keep the historical `f=` form; interior anchors are matched with
/// tolerance and say so (`f≈`).
fn anchor_header(anchor: f64) -> String {
    if anchor == 0.0 || anchor == 1.0 {
        format!("acc @ f={anchor}")
    } else {
        format!("acc @ f≈{anchor}")
    }
}

/// Normalized area under a method's accuracy-vs-fraction curve:
/// trapezoidal `∫ accuracy df` divided by the fraction span, i.e. the
/// curve's mean accuracy over the swept range. Unlike the anchor
/// columns this needs no grid point near any particular fraction, so
/// it stays meaningful on non-paper grids (`--set fractions=...`)
/// where every anchor cell would read `-`. Returns `None` for curves
/// with fewer than two distinct fractions (no area to integrate).
fn curve_auc(method: &MethodCurveDoc) -> Option<f64> {
    let mut pts: Vec<(f64, f64)> =
        method.points.iter().map(|p| (p.fraction, p.accuracy_mean)).collect();
    pts.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
    let span = pts.last()?.0 - pts.first()?.0;
    if span <= 0.0 {
        return None;
    }
    let area: f64 = pts.windows(2).map(|w| (w[1].0 - w[0].0) * (w[0].1 + w[1].1) / 2.0).sum();
    Some(area / span)
}

/// Index of the headline anchor: the one nearest fraction 0.1 (ties go
/// to the earlier anchor).
fn headline_index(anchors: &[f64]) -> usize {
    let mut best = 0;
    for (i, a) in anchors.iter().enumerate() {
        if (a - 0.1).abs() < (anchors[best] - 0.1).abs() {
            best = i;
        }
    }
    best
}

/// Aggregates many `(label, document)` pairs into one cross-run table
/// at the default anchors (`f = 0`, `f ≈ 0.1`, `f = 1`).
pub fn summarize(runs: &[(String, ResultsDoc)]) -> Table {
    summarize_with(runs, &DEFAULT_ANCHORS)
}

/// Aggregates many `(label, document)` pairs into one cross-run table
/// with one accuracy column per entry of `anchors`, plus worst-case and
/// 5th-percentile columns at the headline anchor (nearest 0.1) and the
/// grid-independent normalized curve AUC.
///
/// Rows are emitted in input order, then the document's own sweep-block
/// order (device model × sigma), then its method order; the in-situ
/// baseline (whose axis is NWC rather than a selection fraction)
/// contributes its first/last checkpoints under the first/last anchor
/// columns and carries no tail statistics (`-`).
///
/// # Panics
///
/// Panics if `anchors` is empty; the CLI rejects an empty `--anchors`
/// list before calling this.
pub fn summarize_with(runs: &[(String, ResultsDoc)], anchors: &[f64]) -> Table {
    assert!(!anchors.is_empty(), "summarize_with needs at least one anchor");
    let headline = headline_index(anchors);
    let mut headers: Vec<String> =
        vec!["run".into(), "scenario".into(), "model".into(), "sigma".into(), "method".into()];
    for &a in anchors {
        headers.push(anchor_header(a));
    }
    headers.push(format!("min @ f≈{}", anchors[headline]));
    headers.push(format!("p05 @ f≈{}", anchors[headline]));
    headers.push("AUC".into());
    headers.push("runs".into());
    let header_refs: Vec<&str> = headers.iter().map(|h| h.as_str()).collect();
    let mut table =
        Table::new(format!("cross-run summary ({} document(s))", runs.len()), &header_refs);
    for (label, doc) in runs {
        let scenario = doc.spec.scenario.model.key().to_string();
        // A shard document's rows aggregate only its own seed range;
        // say so instead of quoting the full-run budget.
        let mc_runs = match &doc.shard {
            Some(s) => format!("{}..{} (shard {}/{})", s.run_start, s.run_end, s.index, s.count),
            None => doc.spec.montecarlo.runs.to_string(),
        };
        for sweep in &doc.sweeps {
            for method in &sweep.methods {
                let mut row = vec![
                    label.clone(),
                    scenario.clone(),
                    sweep.device_model.clone(),
                    format!("{}", sweep.sigma),
                    method.name.clone(),
                ];
                for &a in anchors {
                    row.push(anchor_cell(method, a));
                }
                match anchor_point(method, anchors[headline]) {
                    Some(p) => {
                        row.push(format!("{:.2}", p.accuracy_min));
                        row.push(format!("{:.2}", p.accuracy_p05));
                    }
                    None => {
                        row.push("-".into());
                        row.push("-".into());
                    }
                }
                row.push(match curve_auc(method) {
                    Some(auc) => format!("{auc:.2}"),
                    None => "-".into(),
                });
                row.push(mc_runs.clone());
                table.push_row_owned(row);
            }
            if let (Some(first), Some(last)) = (sweep.insitu.first(), sweep.insitu.last()) {
                let mut row = vec![
                    label.clone(),
                    scenario.clone(),
                    sweep.device_model.clone(),
                    format!("{}", sweep.sigma),
                    "In-situ".to_string(),
                ];
                for (i, _) in anchors.iter().enumerate() {
                    row.push(if i == 0 {
                        format!("{:.2} ± {:.2}", first.accuracy_mean, first.accuracy_std)
                    } else if i == anchors.len() - 1 {
                        format!("{:.2} ± {:.2}", last.accuracy_mean, last.accuracy_std)
                    } else {
                        "-".to_string()
                    });
                }
                // The in-situ axis is NWC, not a selection fraction, so
                // neither the tail columns nor the fraction-AUC apply.
                row.push("-".into());
                row.push("-".into());
                row.push("-".into());
                row.push(mc_runs.clone());
                table.push_row_owned(row);
            }
        }
    }
    table
}

/// Loaded `(file-stem label, document)` pairs, in scan order.
pub type LoadedRuns = Vec<(String, ResultsDoc)>;

/// Loads every `.json` results document under `paths` (files are taken
/// as-is; directories are scanned one level deep, sorted by file name).
///
/// Returns the loaded `(file name, document)` pairs plus a warning line
/// per `.json` file that did not parse as a results document (other
/// extensions are ignored silently).
pub fn load_runs(paths: &[std::path::PathBuf]) -> Result<(LoadedRuns, Vec<String>), String> {
    let mut files: Vec<std::path::PathBuf> = Vec::new();
    for path in paths {
        if path.is_dir() {
            let mut entries: Vec<_> = std::fs::read_dir(path)
                .map_err(|e| format!("{}: {e}", path.display()))?
                .filter_map(|e| e.ok())
                .map(|e| e.path())
                .filter(|p| p.extension().and_then(|e| e.to_str()) == Some("json"))
                .collect();
            entries.sort();
            files.extend(entries);
        } else {
            files.push(path.clone());
        }
    }
    let mut runs = Vec::new();
    let mut warnings = Vec::new();
    for file in files {
        let label = file.file_stem().and_then(|s| s.to_str()).unwrap_or("run").to_string();
        match ResultsDoc::load(&file) {
            Ok(doc) => runs.push((label, doc)),
            Err(e) => warnings.push(format!("skipping {}: {}", file.display(), e.0)),
        }
    }
    Ok((runs, warnings))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{CurvePoint, InsituPoint, SweepDoc};

    fn doc(methods: &[&str]) -> ResultsDoc {
        let spec = swim_exp::preset("table1", true).unwrap();
        let mut doc = ResultsDoc::new(spec, 1.0);
        doc.sweeps.push(SweepDoc {
            device_model: "rram-gaussian".into(),
            sigma: 0.15,
            float_accuracy: 99.0,
            quant_accuracy: 98.5,
            methods: methods
                .iter()
                .map(|name| MethodCurveDoc {
                    name: name.to_string(),
                    points: vec![
                        CurvePoint {
                            fraction: 0.0,
                            nwc: 0.0,
                            accuracy_mean: 90.0,
                            accuracy_std: 1.0,
                            accuracy_min: 87.0,
                            accuracy_p05: 87.5,
                        },
                        CurvePoint {
                            fraction: 0.1,
                            nwc: 0.09,
                            accuracy_mean: 96.0,
                            accuracy_std: 0.5,
                            accuracy_min: 94.5,
                            accuracy_p05: 94.8,
                        },
                        CurvePoint {
                            fraction: 1.0,
                            nwc: 1.0,
                            accuracy_mean: 98.0,
                            accuracy_std: 0.2,
                            accuracy_min: 97.6,
                            accuracy_p05: 97.7,
                        },
                    ],
                })
                .collect(),
            insitu: vec![InsituPoint { nwc: 0.5, accuracy_mean: 94.0, accuracy_std: 0.6 }],
            raw: None,
        });
        doc
    }

    #[test]
    fn one_row_per_run_sigma_method() {
        let runs = vec![
            ("a".to_string(), doc(&["SWIM", "LayerBalanced"])),
            ("b".to_string(), doc(&["SWIM"])),
        ];
        let table = summarize(&runs);
        // 2 methods + insitu for `a`, 1 method + insitu for `b`.
        assert_eq!(table.len(), 5);
        let firsts: Vec<&str> = table.rows().iter().map(|r| r[0].as_str()).collect();
        assert_eq!(firsts, vec!["a", "a", "a", "b", "b"]);
        let cells = &table.rows()[0];
        assert_eq!(cells[2], "rram-gaussian");
        assert_eq!(cells[4], "SWIM");
        assert_eq!(cells[5], "90.00 ± 1.00");
        assert_eq!(cells[6], "96.00 ± 0.50");
        assert_eq!(cells[7], "98.00 ± 0.20");
        // Tail columns sit at the headline (≈0.1) anchor.
        assert_eq!(cells[8], "94.50");
        assert_eq!(cells[9], "94.80");
        // Trapezoid over (0, 90), (0.1, 96), (1, 98): 9.3 + 87.3 = 96.6.
        assert_eq!(cells[10], "96.60");
    }

    #[test]
    fn insitu_row_has_no_tail_statistics() {
        let table = summarize(&[("x".to_string(), doc(&["SWIM"]))]);
        let insitu = table.rows().iter().find(|r| r[4] == "In-situ").unwrap();
        assert_eq!(insitu[5], "94.00 ± 0.60");
        assert_eq!(insitu[6], "-");
        assert_eq!(insitu[7], "94.00 ± 0.60");
        assert_eq!(insitu[8], "-");
        assert_eq!(insitu[9], "-");
        assert_eq!(insitu[10], "-");
    }

    #[test]
    fn missing_anchor_renders_dash() {
        let mut d = doc(&["SWIM"]);
        // Drop the ≈0.1 point — the mean column AND the tail columns
        // anchored there all go blank.
        d.sweeps[0].methods[0].points.remove(1);
        let table = summarize(&[("x".to_string(), d)]);
        assert_eq!(table.rows()[0][6], "-");
        assert_eq!(table.rows()[0][8], "-");
        assert_eq!(table.rows()[0][9], "-");
        // The AUC column survives the missing anchor — that's its job:
        // trapezoid over the remaining (0, 90), (1, 98) grid.
        assert_eq!(table.rows()[0][10], "94.00");
    }

    #[test]
    fn auc_needs_a_fraction_span() {
        let mut d = doc(&["SWIM"]);
        d.sweeps[0].methods[0].points.truncate(1);
        let table = summarize(&[("x".to_string(), d)]);
        assert_eq!(table.rows()[0][10], "-");
    }

    #[test]
    fn custom_anchors_reshape_the_columns() {
        let table = summarize_with(&[("x".to_string(), doc(&["SWIM"]))], &[0.0, 1.0]);
        assert_eq!(
            table.headers(),
            &[
                "run",
                "scenario",
                "model",
                "sigma",
                "method",
                "acc @ f=0",
                "acc @ f=1",
                "min @ f≈0",
                "p05 @ f≈0",
                "AUC",
                "runs"
            ]
        );
        let cells = &table.rows()[0];
        assert_eq!(cells[5], "90.00 ± 1.00");
        assert_eq!(cells[6], "98.00 ± 0.20");
        // Headline anchor is the one nearest 0.1 — here f=0.
        assert_eq!(cells[7], "87.00");
        assert_eq!(cells[8], "87.50");
    }

    #[test]
    fn headline_anchor_is_nearest_to_one_tenth() {
        assert_eq!(headline_index(&[0.0, 0.1, 1.0]), 1);
        assert_eq!(headline_index(&[0.0, 1.0]), 0);
        assert_eq!(headline_index(&[0.5, 0.2, 0.05]), 2);
        assert_eq!(headline_index(&[1.0]), 0);
    }

    #[test]
    fn shard_documents_annotate_the_runs_column() {
        let mut d = doc(&["SWIM"]);
        d.spec.run.shard = Some((0, 2));
        let shard = crate::schema::ResultsDoc::new(d.spec.clone(), 1.0);
        let mut d = doc(&["SWIM"]);
        d.spec = shard.spec.clone();
        d.shard = shard.shard;
        let table = summarize(&[("x".to_string(), d.clone())]);
        let runs_col = table.headers().len() - 1;
        let (lo, hi) = d.spec.shard_run_range();
        assert_eq!(table.rows()[0][runs_col], format!("{lo}..{hi} (shard 0/2)"));
    }

    #[test]
    fn load_runs_scans_directories_and_warns_on_junk() {
        let dir = std::env::temp_dir().join(format!("swim_summary_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("good.json"), doc(&["SWIM"]).to_json()).unwrap();
        std::fs::write(dir.join("junk.json"), "{\"not\": \"a results doc\"}").unwrap();
        std::fs::write(dir.join("ignored.txt"), "plain text").unwrap();
        let (runs, warnings) = load_runs(std::slice::from_ref(&dir)).unwrap();
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].0, "good");
        assert_eq!(warnings.len(), 1);
        assert!(warnings[0].contains("junk.json"), "{}", warnings[0]);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
