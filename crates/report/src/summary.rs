//! Cross-run aggregation — the engine behind `swim summarize dir/`.
//!
//! Flattens any number of results documents into one table with a row
//! per (run, sigma, method), anchored at the operating points the paper
//! argues about: no write-verify at all (fraction 0), the headline
//! NWC ≈ 0.1 point, and full write-verify (fraction 1). That makes
//! multi-run sweeps — e.g. layer-balanced vs plain SWIM across sigmas —
//! readable at a glance without opening each document.

use crate::schema::{MethodCurveDoc, ResultsDoc};
use swim_core::report::Table;

/// The fraction anchors summarized as columns.
const ANCHORS: [f64; 3] = [0.0, 0.1, 1.0];

/// How far a curve point may sit from an anchor and still fill its
/// column (half the paper grid's 0.1→0.3 gap).
const ANCHOR_TOL: f64 = 0.075;

/// The cell for one method at one anchor: the nearest in-tolerance
/// point's `mean ± std`, or `-` when the grid has no such point.
fn anchor_cell(method: &MethodCurveDoc, anchor: f64) -> String {
    let best = method
        .points
        .iter()
        .map(|p| (p, (p.fraction - anchor).abs()))
        .filter(|(_, d)| *d <= ANCHOR_TOL)
        .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
    match best {
        Some((p, _)) => format!("{:.2} ± {:.2}", p.accuracy_mean, p.accuracy_std),
        None => "-".to_string(),
    }
}

/// Aggregates many `(label, document)` pairs into one cross-run table.
///
/// Rows are emitted in input order, then sigma order, then the
/// document's own method order; the in-situ baseline (whose axis is NWC
/// rather than a selection fraction) contributes its first/last
/// checkpoints under the fraction-0/fraction-1 columns.
pub fn summarize(runs: &[(String, ResultsDoc)]) -> Table {
    let mut table = Table::new(
        format!("cross-run summary ({} document(s))", runs.len()),
        &["run", "scenario", "sigma", "method", "acc @ f=0", "acc @ f≈0.1", "acc @ f=1", "runs"],
    );
    for (label, doc) in runs {
        let scenario = doc.spec.scenario.model.key().to_string();
        let mc_runs = doc.spec.montecarlo.runs.to_string();
        for sweep in &doc.sweeps {
            for method in &sweep.methods {
                table.push_row_owned(vec![
                    label.clone(),
                    scenario.clone(),
                    format!("{}", sweep.sigma),
                    method.name.clone(),
                    anchor_cell(method, ANCHORS[0]),
                    anchor_cell(method, ANCHORS[1]),
                    anchor_cell(method, ANCHORS[2]),
                    mc_runs.clone(),
                ]);
            }
            if let (Some(first), Some(last)) = (sweep.insitu.first(), sweep.insitu.last()) {
                table.push_row_owned(vec![
                    label.clone(),
                    scenario.clone(),
                    format!("{}", sweep.sigma),
                    "In-situ".to_string(),
                    format!("{:.2} ± {:.2}", first.accuracy_mean, first.accuracy_std),
                    "-".to_string(),
                    format!("{:.2} ± {:.2}", last.accuracy_mean, last.accuracy_std),
                    mc_runs.clone(),
                ]);
            }
        }
    }
    table
}

/// Loaded `(file-stem label, document)` pairs, in scan order.
pub type LoadedRuns = Vec<(String, ResultsDoc)>;

/// Loads every `.json` results document under `paths` (files are taken
/// as-is; directories are scanned one level deep, sorted by file name).
///
/// Returns the loaded `(file name, document)` pairs plus a warning line
/// per `.json` file that did not parse as a results document (other
/// extensions are ignored silently).
pub fn load_runs(paths: &[std::path::PathBuf]) -> Result<(LoadedRuns, Vec<String>), String> {
    let mut files: Vec<std::path::PathBuf> = Vec::new();
    for path in paths {
        if path.is_dir() {
            let mut entries: Vec<_> = std::fs::read_dir(path)
                .map_err(|e| format!("{}: {e}", path.display()))?
                .filter_map(|e| e.ok())
                .map(|e| e.path())
                .filter(|p| p.extension().and_then(|e| e.to_str()) == Some("json"))
                .collect();
            entries.sort();
            files.extend(entries);
        } else {
            files.push(path.clone());
        }
    }
    let mut runs = Vec::new();
    let mut warnings = Vec::new();
    for file in files {
        let label = file.file_stem().and_then(|s| s.to_str()).unwrap_or("run").to_string();
        match ResultsDoc::load(&file) {
            Ok(doc) => runs.push((label, doc)),
            Err(e) => warnings.push(format!("skipping {}: {}", file.display(), e.0)),
        }
    }
    Ok((runs, warnings))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{CurvePoint, InsituPoint, SweepDoc};

    fn doc(methods: &[&str]) -> ResultsDoc {
        let spec = swim_exp::preset("table1", true).unwrap();
        let mut doc = ResultsDoc::new(spec, 1.0);
        doc.sweeps.push(SweepDoc {
            sigma: 0.15,
            float_accuracy: 99.0,
            quant_accuracy: 98.5,
            methods: methods
                .iter()
                .map(|name| MethodCurveDoc {
                    name: name.to_string(),
                    points: vec![
                        CurvePoint {
                            fraction: 0.0,
                            nwc: 0.0,
                            accuracy_mean: 90.0,
                            accuracy_std: 1.0,
                        },
                        CurvePoint {
                            fraction: 0.1,
                            nwc: 0.09,
                            accuracy_mean: 96.0,
                            accuracy_std: 0.5,
                        },
                        CurvePoint {
                            fraction: 1.0,
                            nwc: 1.0,
                            accuracy_mean: 98.0,
                            accuracy_std: 0.2,
                        },
                    ],
                })
                .collect(),
            insitu: vec![InsituPoint { nwc: 0.5, accuracy_mean: 94.0, accuracy_std: 0.6 }],
        });
        doc
    }

    #[test]
    fn one_row_per_run_sigma_method() {
        let runs = vec![
            ("a".to_string(), doc(&["SWIM", "LayerBalanced"])),
            ("b".to_string(), doc(&["SWIM"])),
        ];
        let table = summarize(&runs);
        // 2 methods + insitu for `a`, 1 method + insitu for `b`.
        assert_eq!(table.len(), 5);
        let firsts: Vec<&str> = table.rows().iter().map(|r| r[0].as_str()).collect();
        assert_eq!(firsts, vec!["a", "a", "a", "b", "b"]);
        let cells = &table.rows()[0];
        assert_eq!(cells[3], "SWIM");
        assert_eq!(cells[4], "90.00 ± 1.00");
        assert_eq!(cells[5], "96.00 ± 0.50");
        assert_eq!(cells[6], "98.00 ± 0.20");
    }

    #[test]
    fn missing_anchor_renders_dash() {
        let mut d = doc(&["SWIM"]);
        // Drop the ≈0.1 point.
        d.sweeps[0].methods[0].points.remove(1);
        let table = summarize(&[("x".to_string(), d)]);
        assert_eq!(table.rows()[0][5], "-");
    }

    #[test]
    fn load_runs_scans_directories_and_warns_on_junk() {
        let dir = std::env::temp_dir().join(format!("swim_summary_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("good.json"), doc(&["SWIM"]).to_json()).unwrap();
        std::fs::write(dir.join("junk.json"), "{\"not\": \"a results doc\"}").unwrap();
        std::fs::write(dir.join("ignored.txt"), "plain text").unwrap();
        let (runs, warnings) = load_runs(std::slice::from_ref(&dir)).unwrap();
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].0, "good");
        assert_eq!(warnings.len(), 1);
        assert!(warnings[0].contains("junk.json"), "{}", warnings[0]);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
