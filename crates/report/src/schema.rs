//! The typed, versioned schema of the JSON results document.
//!
//! [`ResultsDoc`] is the single definition of what `swim run --out`
//! writes and what `swim diff` / `swim report` / `swim summarize` read:
//! the experiment engine builds a `ResultsDoc` and serializes it with
//! [`ResultsDoc::to_value`], the analysis commands re-parse it with
//! [`ResultsDoc::from_value`], and a round-trip test pins the two
//! together — the write path and the read path cannot drift apart.
//!
//! Parsing is *strict*: unknown keys are rejected with their full
//! dotted path (like spec files), required keys must be present, and
//! the embedded spec echo must itself parse and validate. The
//! denormalized convenience copies (`name`, `kind`, `seed` at the top
//! level) are checked against the spec echo so a hand-edited document
//! cannot claim to be an experiment it is not.
//!
//! Versioning: [`RESULTS_VERSION`] is bumped on **any** schema change
//! (strict readers make even additive changes observable); the tools in
//! this crate read exactly the version they were built for. See
//! `docs/results-schema.md` for the field-by-field reference and the
//! compatibility policy.

use swim_core::report::Table;
use swim_exp::spec::{ExperimentKind, ExperimentSpec};
use swim_exp::value::{parse_json, Reader, Value};

/// The results-document schema version this crate reads and writes.
///
/// Version history: 1 = original schema; 2 = `CurvePoint` gained the
/// tail-risk columns `accuracy_min` / `accuracy_p05` and `SweepDoc`
/// gained `device_model`; 3 = the partial-document flavor behind
/// `swim merge` and `swim run --resume` (`shard` provenance, the
/// `completed` checkpoint block list, per-block `raw` Monte Carlo
/// matrices in shard documents, the `faults` section for isolated run
/// panics, and `[montecarlo] on_panic` in the spec echo); 4 = the
/// top-level `simd` backend provenance field and `[run] simd` in the
/// spec echo; 5 = the top-level `tuning` kernel-autotuning provenance
/// block (requested pins plus every shape-keyed choice the tuner made)
/// and the `[tune]` section in the spec echo.
pub const RESULTS_VERSION: i64 = 5;

/// A results-document parsing/validation error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchemaError(pub String);

impl std::fmt::Display for SchemaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "results document error: {}", self.0)
    }
}

impl std::error::Error for SchemaError {}

impl From<String> for SchemaError {
    fn from(msg: String) -> Self {
        SchemaError(msg)
    }
}

fn err(msg: impl Into<String>) -> SchemaError {
    SchemaError(msg.into())
}

/// One swept point of a selection method's accuracy-vs-NWC curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CurvePoint {
    /// Write-verified weight fraction (the sweep-grid coordinate).
    pub fraction: f64,
    /// Normalized write cycles actually spent at this point.
    pub nwc: f64,
    /// Mean accuracy over the Monte Carlo runs (percent).
    pub accuracy_mean: f64,
    /// Accuracy standard deviation over the Monte Carlo runs (percent).
    pub accuracy_std: f64,
    /// Worst accuracy over the Monte Carlo runs (percent) — the
    /// tail-risk floor a deployment would actually ship.
    pub accuracy_min: f64,
    /// 5th-percentile accuracy over the Monte Carlo runs (percent),
    /// linearly interpolated between sorted ranks.
    pub accuracy_p05: f64,
}

/// One checkpoint of the in-situ training baseline (no selection
/// fraction — NWC itself is the axis).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InsituPoint {
    /// Normalized write cycles spent up to this checkpoint.
    pub nwc: f64,
    /// Mean accuracy over the Monte Carlo runs (percent).
    pub accuracy_mean: f64,
    /// Accuracy standard deviation over the Monte Carlo runs (percent).
    pub accuracy_std: f64,
}

/// One selection method's full curve, keyed by display name.
#[derive(Debug, Clone, PartialEq)]
pub struct MethodCurveDoc {
    /// Selector display name (e.g. `SWIM`, `Magnitude`).
    pub name: String,
    /// The swept points, one per sweep-grid fraction.
    pub points: Vec<CurvePoint>,
}

/// One sigma block of a sweep-kind experiment: every method's curve at
/// one device-variation level.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepDoc {
    /// Registry key of the device model the block ran on (e.g.
    /// `rram-gaussian`).
    pub device_model: String,
    /// Device variation level the block ran at.
    pub sigma: f64,
    /// Accuracy of the un-quantized trained network (percent).
    pub float_accuracy: f64,
    /// Accuracy of the quantized clean-mapped model (percent).
    pub quant_accuracy: f64,
    /// One curve per selection method, in table row order.
    pub methods: Vec<MethodCurveDoc>,
    /// In-situ baseline checkpoints (empty when the baseline was off).
    pub insitu: Vec<InsituPoint>,
    /// Raw per-run matrices, present only in shard documents so
    /// `swim merge` can rebuild the unsharded statistics bit-exactly.
    pub raw: Option<RawSweepDoc>,
}

impl SweepDoc {
    /// The curve of a method by display name.
    pub fn method(&self, name: &str) -> Option<&MethodCurveDoc> {
        self.methods.iter().find(|m| m.name == name)
    }
}

/// Shard provenance of a partial (seed-range-sharded) document —
/// denormalized from the spec echo's `[run] shard`, cross-checked on
/// parse.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardDoc {
    /// Shard index in `[0, count)`.
    pub index: usize,
    /// Total shards in the partition.
    pub count: usize,
    /// First global Monte Carlo run this shard covers (also the PRNG
    /// fork stream of its first run).
    pub run_start: usize,
    /// One past the last global run covered.
    pub run_end: usize,
}

/// Identifies one completed `(device model, sigma)` block of a
/// checkpoint journal.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockKey {
    /// Device-model registry key.
    pub device_model: String,
    /// Device variation level.
    pub sigma: f64,
}

/// One Monte Carlo run that panicked under `[montecarlo] on_panic =
/// "isolate"`; the surviving statistics exclude it.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultDoc {
    /// Device-model registry key of the block the run belonged to.
    pub device_model: String,
    /// Device variation level of the block.
    pub sigma: f64,
    /// Selection method display name.
    pub method: String,
    /// Global run index — the PRNG fork stream id, so the failure
    /// replays in isolation regardless of sharding or thread count.
    pub run: usize,
    /// Base seed the run's stream was forked from.
    pub seed: u64,
    /// Rendered panic payload.
    pub message: String,
}

/// Raw per-run Monte Carlo data of one selection method (present only
/// in shard documents, where it makes the block mergeable).
#[derive(Debug, Clone, PartialEq)]
pub struct RawMethodDoc {
    /// Selector display name, matching the aggregated curve's.
    pub name: String,
    /// One row per local run, one `(accuracy %, nwc)` pair per sweep
    /// fraction, exactly as the run produced them.
    pub rows: Vec<Vec<(f64, f64)>>,
}

/// Raw per-run data of one sweep block (present only in shard
/// documents).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RawSweepDoc {
    /// Per-method raw matrices, in table row order.
    pub methods: Vec<RawMethodDoc>,
    /// Per-run in-situ trajectories: one `(nwc, accuracy fraction)`
    /// pair per checkpoint. Empty when the baseline was off.
    pub insitu_runs: Vec<Vec<(f64, f64)>>,
}

/// One shape-keyed kernel-config decision recorded by the autotuner.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TuningChoiceDoc {
    /// Rendered tune key (kernel, shape, SIMD backend, thread count).
    pub key: String,
    /// Rendered winning config (e.g. `block=128 workers=1`).
    pub config: String,
    /// Where the winner came from (`autotune` or `disk-cache`).
    pub source: String,
}

/// Kernel-tuning provenance: the *requested* tuning configuration
/// (mode and pins exactly as resolved from spec/CLI/env — `0` means
/// "auto", never a host-resolved value, so documents stay byte-stable
/// across hosts) plus every shape-keyed choice the tuner made during
/// the run. Tuning is timing-only — it can never change result bytes —
/// so this block is attribution, not part of the numeric payload;
/// `swim diff` reports tuning differences structurally.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TuningDoc {
    /// Tuning mode the run executed under (`off` or `on`).
    pub mode: String,
    /// Requested GEMM block-width pin (`0` = heuristic / autotuned).
    pub gemm_block_cols: usize,
    /// Requested threading-threshold pin in multiplies (`0` = default).
    pub gemm_min_flops: usize,
    /// Requested im2col scratch-cap pin in elements (`0` = default).
    pub im2col_cap_elems: usize,
    /// The tuner's shape-keyed decisions, sorted by key. Empty when
    /// the mode is `off`.
    pub choices: Vec<TuningChoiceDoc>,
}

impl TuningDoc {
    /// Captures the process-installed tuning config and (when tuning
    /// is on) the winner cache as it stands.
    pub fn capture() -> TuningDoc {
        use swim_tensor::tune;
        let t = tune::current();
        let choices = if t.mode == tune::TuneMode::On {
            tune::choice_records()
                .into_iter()
                .map(|r| TuningChoiceDoc { key: r.key, config: r.config, source: r.source })
                .collect()
        } else {
            Vec::new()
        };
        TuningDoc {
            mode: t.mode.name().to_string(),
            gemm_block_cols: t.gemm_block_cols,
            gemm_min_flops: t.gemm_min_flops,
            im2col_cap_elems: t.im2col_cap_elems,
            choices,
        }
    }
}

impl Default for TuningDoc {
    /// The forced-default configuration: tuning off, nothing pinned,
    /// no choices.
    fn default() -> Self {
        TuningDoc {
            mode: swim_tensor::tune::TuneMode::Off.name().to_string(),
            gemm_block_cols: 0,
            gemm_min_flops: 0,
            im2col_cap_elems: 0,
            choices: Vec::new(),
        }
    }
}

/// Fig. 1 correlation summary (present only for `fig1`-kind runs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Correlations {
    /// Pearson r of |w| vs accuracy drop.
    pub magnitude: f64,
    /// Pearson r of the diagonal second derivative vs accuracy drop.
    pub sensitivity: f64,
}

/// A parsed, validated JSON results document.
///
/// # Example
///
/// ```
/// use swim_report::schema::ResultsDoc;
///
/// let spec = swim_exp::preset("fig2a", true).unwrap();
/// let doc = ResultsDoc::new(spec, 1.5);
/// let json = doc.to_json();
/// let back = ResultsDoc::parse_str(&json).unwrap();
/// assert_eq!(back, doc);
/// assert_eq!(back.name(), "Fig. 2a");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ResultsDoc {
    /// The spec echo: the exact experiment that produced this document.
    /// `name`/`kind`/`seed` accessors read through to it.
    pub spec: ExperimentSpec,
    /// Per-sigma sweep blocks (empty for non-sweep kinds).
    pub sweeps: Vec<SweepDoc>,
    /// Fig. 1 correlation summary, when the kind produces one.
    pub correlations: Option<Correlations>,
    /// Every table the run printed, in print order.
    pub tables: Vec<Table>,
    /// Shard provenance — `Some` exactly when the spec echo carries
    /// `[run] shard`; this is a partial document covering only that
    /// seed range.
    pub shard: Option<ShardDoc>,
    /// Checkpoint-journal flavor: the `(model, sigma)` blocks already
    /// completed, in grid order. `None` for final documents.
    pub completed: Option<Vec<BlockKey>>,
    /// Runs that panicked under the isolate policy (empty otherwise;
    /// omitted from the JSON when empty).
    pub faults: Vec<FaultDoc>,
    /// SIMD backend the run's kernels dispatched through (`scalar`,
    /// `avx2`, `avx512`, or `neon`) — elementwise results are
    /// bit-identical across backends, GEMM is tolerance-equal, so this
    /// records which flavor produced the bytes.
    pub simd: String,
    /// Kernel-tuning provenance: requested mode/pins plus the tuner's
    /// shape-keyed choices. Timing-only — never affects result bytes.
    pub tuning: TuningDoc,
    /// Wall-clock duration of the run in seconds.
    pub wall_time_s: f64,
}

impl ResultsDoc {
    /// An empty document shell for `spec` (no sweeps/tables yet). The
    /// shard provenance is derived from the spec echo.
    pub fn new(spec: ExperimentSpec, wall_time_s: f64) -> Self {
        let shard = spec.run.shard.map(|(index, count)| {
            let (run_start, run_end) = spec.shard_run_range();
            ShardDoc { index, count, run_start, run_end }
        });
        ResultsDoc {
            spec,
            sweeps: Vec::new(),
            correlations: None,
            tables: Vec::new(),
            shard,
            completed: None,
            faults: Vec::new(),
            simd: swim_tensor::simd::backend().name().to_string(),
            tuning: TuningDoc::capture(),
            wall_time_s,
        }
    }

    /// The experiment's display name (from the spec echo).
    pub fn name(&self) -> &str {
        &self.spec.name
    }

    /// The experiment kind (from the spec echo).
    pub fn kind(&self) -> ExperimentKind {
        self.spec.kind
    }

    /// The base RNG seed (from the spec echo).
    pub fn seed(&self) -> u64 {
        self.spec.seed
    }

    /// The first sweep block at a given sigma (exact match). With a
    /// device-model grid several blocks can share a sigma; use
    /// [`ResultsDoc::sweep_block`] to pick one by model as well.
    pub fn sweep_at(&self, sigma: f64) -> Option<&SweepDoc> {
        self.sweeps.iter().find(|s| s.sigma == sigma)
    }

    /// The sweep block for a given (device model, sigma) pair.
    pub fn sweep_block(&self, device_model: &str, sigma: f64) -> Option<&SweepDoc> {
        self.sweeps.iter().find(|s| s.device_model == device_model && s.sigma == sigma)
    }

    // ----------------------------------------------------- writing

    /// Renders the document as a [`Value`] tree in the stable key order
    /// (`swim_results_version` first, `wall_time_s` last).
    pub fn to_value(&self) -> Value {
        let mut doc = Value::table();
        doc.set("swim_results_version", Value::Int(RESULTS_VERSION));
        doc.set("name", Value::Str(self.spec.name.clone()));
        doc.set("kind", Value::Str(self.spec.kind.key().to_string()));
        doc.set("seed", Value::Int(self.spec.seed as i64));
        doc.set("simd", Value::Str(self.simd.clone()));
        doc.set("tuning", tuning_to_value(&self.tuning));
        doc.set("spec", self.spec.to_value());
        if let Some(s) = &self.shard {
            let mut sv = Value::table();
            sv.set("index", Value::Int(s.index as i64));
            sv.set("count", Value::Int(s.count as i64));
            sv.set("run_start", Value::Int(s.run_start as i64));
            sv.set("run_end", Value::Int(s.run_end as i64));
            doc.set("shard", sv);
        }
        if let Some(completed) = &self.completed {
            doc.set(
                "completed",
                Value::Array(
                    completed
                        .iter()
                        .map(|b| {
                            let mut bv = Value::table();
                            bv.set("device_model", Value::Str(b.device_model.clone()));
                            bv.set("sigma", Value::Float(b.sigma));
                            bv
                        })
                        .collect(),
                ),
            );
        }
        if !self.sweeps.is_empty() {
            doc.set("sweeps", Value::Array(self.sweeps.iter().map(sweep_to_value).collect()));
        }
        if let Some(c) = &self.correlations {
            let mut cv = Value::table();
            cv.set("magnitude", Value::Float(c.magnitude));
            cv.set("sensitivity", Value::Float(c.sensitivity));
            doc.set("correlations", cv);
        }
        if !self.faults.is_empty() {
            doc.set(
                "faults",
                Value::Array(
                    self.faults
                        .iter()
                        .map(|f| {
                            let mut fv = Value::table();
                            fv.set("device_model", Value::Str(f.device_model.clone()));
                            fv.set("sigma", Value::Float(f.sigma));
                            fv.set("method", Value::Str(f.method.clone()));
                            fv.set("run", Value::Int(f.run as i64));
                            fv.set("seed", Value::Int(f.seed as i64));
                            fv.set("message", Value::Str(f.message.clone()));
                            fv
                        })
                        .collect(),
                ),
            );
        }
        doc.set("tables", Value::Array(self.tables.iter().map(table_to_value).collect()));
        doc.set("wall_time_s", Value::Float(self.wall_time_s));
        doc
    }

    /// Renders the document as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        self.to_value().to_json()
    }

    // ----------------------------------------------------- reading

    /// Parses a JSON results document string.
    pub fn parse_str(text: &str) -> Result<Self, SchemaError> {
        let root = parse_json(text).map_err(err)?;
        Self::from_value(&root)
    }

    /// Reads and parses a results document file; the error names the
    /// path.
    pub fn load(path: &std::path::Path) -> Result<Self, SchemaError> {
        let text =
            std::fs::read_to_string(path).map_err(|e| err(format!("{}: {e}", path.display())))?;
        Self::parse_str(&text).map_err(|e| err(format!("{}: {}", path.display(), e.0)))
    }

    /// Builds a document from a parsed [`Value`] tree, rejecting
    /// unknown keys, missing required keys, an unsupported version, and
    /// top-level `name`/`kind`/`seed` that contradict the spec echo.
    pub fn from_value(root: &Value) -> Result<Self, SchemaError> {
        let mut r = Reader::new("", root)?;

        let version = r
            .require("swim_results_version")?
            .as_int()
            .ok_or_else(|| err("`swim_results_version` must be an integer"))?;
        if version != RESULTS_VERSION {
            return Err(err(format!(
                "unsupported results version {version} (this build reads version \
                 {RESULTS_VERSION}; re-run the experiment or use a matching `swim` build)"
            )));
        }

        let name = r.string_req("name")?;
        let kind_key = r.string_req("kind")?;
        let kind = ExperimentKind::parse(&kind_key)
            .ok_or_else(|| err(format!("unknown kind `{kind_key}`")))?;
        let seed = r.u64_req("seed")?;
        let simd = r.string_req("simd")?;
        if swim_tensor::simd::Backend::parse(&simd).is_none() {
            return Err(err(format!("unknown SIMD backend `{simd}`")));
        }

        let tuning = tuning_from_value("tuning", r.require("tuning")?)?;

        let spec = ExperimentSpec::from_value(r.require("spec")?)
            .map_err(|e| err(format!("spec echo: {}", e.0)))?;
        // The top-level copies are denormalized convenience; a document
        // whose header disagrees with its own spec echo is corrupt.
        if name != spec.name || kind != spec.kind || seed != spec.seed {
            return Err(err(format!(
                "document header (name `{name}`, kind `{}`, seed {seed}) contradicts its spec \
                 echo (name `{}`, kind `{}`, seed {})",
                kind.key(),
                spec.name,
                spec.kind.key(),
                spec.seed
            )));
        }
        // A spec echo that pinned `[run] simd` must agree with the
        // backend the document says it ran on.
        if let Some(requested) = &spec.run.simd {
            if *requested != simd {
                return Err(err(format!(
                    "document `simd` (`{simd}`) contradicts its spec echo's `run.simd` \
                     (`{requested}`)"
                )));
            }
        }
        // Likewise, `tuning` is denormalized from the spec echo's
        // `[tune]` section wherever the spec pinned a value.
        if let Some(mode) = &spec.tune.mode {
            if *mode != tuning.mode {
                return Err(err(format!(
                    "document `tuning.mode` (`{}`) contradicts its spec echo's `tune.mode` \
                     (`{mode}`)",
                    tuning.mode
                )));
            }
        }
        let tune_pins = [
            ("gemm_block", spec.tune.gemm_block, tuning.gemm_block_cols, "gemm_block_cols"),
            ("gemm_min_flops", spec.tune.gemm_min_flops, tuning.gemm_min_flops, "gemm_min_flops"),
            ("im2col_cap", spec.tune.im2col_cap, tuning.im2col_cap_elems, "im2col_cap_elems"),
        ];
        for (spec_key, requested, recorded, doc_key) in tune_pins {
            if let Some(requested) = requested {
                if requested != recorded {
                    return Err(err(format!(
                        "document `tuning.{doc_key}` ({recorded}) contradicts its spec echo's \
                         `tune.{spec_key}` ({requested})"
                    )));
                }
            }
        }

        let shard = match r.take("shard") {
            None => None,
            Some(v) => {
                let mut s = Reader::new("shard", v)?;
                let out = ShardDoc {
                    index: s.u64_req("index")? as usize,
                    count: s.u64_req("count")? as usize,
                    run_start: s.u64_req("run_start")? as usize,
                    run_end: s.u64_req("run_end")? as usize,
                };
                s.finish()?;
                Some(out)
            }
        };
        // Like `name`/`kind`/`seed`, `shard` is a denormalized copy of
        // the spec echo's `[run] shard`; the two must agree exactly.
        let expected_shard = spec.run.shard.map(|(index, count)| {
            let (run_start, run_end) = spec.shard_run_range();
            ShardDoc { index, count, run_start, run_end }
        });
        if shard != expected_shard {
            return Err(err(format!(
                "document `shard` ({shard:?}) contradicts its spec echo ({expected_shard:?})"
            )));
        }

        let completed = match r.take("completed") {
            None => None,
            Some(v) => {
                let items = v.as_array().ok_or_else(|| err("`completed` must be an array"))?;
                let blocks = items
                    .iter()
                    .enumerate()
                    .map(|(i, item)| {
                        let bpath = format!("completed[{i}]");
                        let mut b = Reader::new(&bpath, item)?;
                        let out = BlockKey {
                            device_model: b.string_req("device_model")?,
                            sigma: b.f64_req("sigma")?,
                        };
                        b.finish()?;
                        Ok(out)
                    })
                    .collect::<Result<Vec<_>, SchemaError>>()?;
                Some(blocks)
            }
        };

        let sweeps = match r.take("sweeps") {
            None => Vec::new(),
            Some(v) => {
                let items = v.as_array().ok_or_else(|| err("`sweeps` must be an array"))?;
                items
                    .iter()
                    .enumerate()
                    .map(|(i, item)| sweep_from_value(&format!("sweeps[{i}]"), item))
                    .collect::<Result<Vec<_>, _>>()?
            }
        };

        let faults = match r.take("faults") {
            None => Vec::new(),
            Some(v) => {
                let items = v.as_array().ok_or_else(|| err("`faults` must be an array"))?;
                items
                    .iter()
                    .enumerate()
                    .map(|(i, item)| {
                        let fpath = format!("faults[{i}]");
                        let mut f = Reader::new(&fpath, item)?;
                        let out = FaultDoc {
                            device_model: f.string_req("device_model")?,
                            sigma: f.f64_req("sigma")?,
                            method: f.string_req("method")?,
                            run: f.u64_req("run")? as usize,
                            seed: f.u64_req("seed")?,
                            message: f.string_req("message")?,
                        };
                        f.finish()?;
                        Ok(out)
                    })
                    .collect::<Result<Vec<_>, SchemaError>>()?
            }
        };

        let correlations = match r.take("correlations") {
            None => None,
            Some(v) => {
                let mut c = Reader::new("correlations", v)?;
                let out = Correlations {
                    magnitude: c.f64_req("magnitude")?,
                    sensitivity: c.f64_req("sensitivity")?,
                };
                c.finish()?;
                Some(out)
            }
        };

        let tables = {
            let v = r.require("tables")?;
            let items = v.as_array().ok_or_else(|| err("`tables` must be an array"))?;
            items
                .iter()
                .enumerate()
                .map(|(i, item)| table_from_value(&format!("tables[{i}]"), item))
                .collect::<Result<Vec<_>, _>>()?
        };

        let wall_time_s = r.f64_req("wall_time_s")?;
        r.finish()?;

        Ok(ResultsDoc {
            spec,
            sweeps,
            correlations,
            tables,
            shard,
            completed,
            faults,
            simd,
            tuning,
            wall_time_s,
        })
    }
}

// ------------------------------------------------------------- tuning

fn tuning_to_value(tuning: &TuningDoc) -> Value {
    let mut v = Value::table();
    v.set("mode", Value::Str(tuning.mode.clone()));
    v.set("gemm_block_cols", Value::Int(tuning.gemm_block_cols as i64));
    v.set("gemm_min_flops", Value::Int(tuning.gemm_min_flops as i64));
    v.set("im2col_cap_elems", Value::Int(tuning.im2col_cap_elems as i64));
    v.set(
        "choices",
        Value::Array(
            tuning
                .choices
                .iter()
                .map(|c| {
                    let mut cv = Value::table();
                    cv.set("key", Value::Str(c.key.clone()));
                    cv.set("config", Value::Str(c.config.clone()));
                    cv.set("source", Value::Str(c.source.clone()));
                    cv
                })
                .collect(),
        ),
    );
    v
}

fn tuning_from_value(path: &str, value: &Value) -> Result<TuningDoc, SchemaError> {
    let mut r = Reader::new(path, value)?;
    let mode = r.string_req("mode")?;
    if swim_tensor::tune::TuneMode::parse(&mode).is_none() {
        return Err(err(format!("unknown tuning mode `{mode}` in `{path}.mode`")));
    }
    let gemm_block_cols = r.u64_req("gemm_block_cols")? as usize;
    let gemm_min_flops = r.u64_req("gemm_min_flops")? as usize;
    let im2col_cap_elems = r.u64_req("im2col_cap_elems")? as usize;
    let choices = {
        let v = r.require("choices")?;
        let items =
            v.as_array().ok_or_else(|| err(format!("`{path}.choices` must be an array")))?;
        items
            .iter()
            .enumerate()
            .map(|(i, item)| {
                let cpath = format!("{path}.choices[{i}]");
                let mut c = Reader::new(&cpath, item)?;
                let out = TuningChoiceDoc {
                    key: c.string_req("key")?,
                    config: c.string_req("config")?,
                    source: c.string_req("source")?,
                };
                c.finish()?;
                Ok(out)
            })
            .collect::<Result<Vec<_>, SchemaError>>()?
    };
    r.finish()?;
    // Tuning off means no decisions were made; a document claiming
    // otherwise is corrupt.
    if mode == swim_tensor::tune::TuneMode::Off.name() && !choices.is_empty() {
        return Err(err(format!(
            "`{path}` has mode `off` but records {} tuner choice(s)",
            choices.len()
        )));
    }
    Ok(TuningDoc { mode, gemm_block_cols, gemm_min_flops, im2col_cap_elems, choices })
}

// ------------------------------------------------------- sweep blocks

fn sweep_to_value(sweep: &SweepDoc) -> Value {
    let mut v = Value::table();
    v.set("device_model", Value::Str(sweep.device_model.clone()));
    v.set("sigma", Value::Float(sweep.sigma));
    v.set("float_accuracy", Value::Float(sweep.float_accuracy));
    v.set("quant_accuracy", Value::Float(sweep.quant_accuracy));
    let methods = sweep
        .methods
        .iter()
        .map(|m| {
            let mut mv = Value::table();
            mv.set("name", Value::Str(m.name.clone()));
            mv.set(
                "points",
                Value::Array(
                    m.points
                        .iter()
                        .map(|p| {
                            let mut pv = Value::table();
                            pv.set("fraction", Value::Float(p.fraction));
                            pv.set("nwc", Value::Float(p.nwc));
                            pv.set("accuracy_mean", Value::Float(p.accuracy_mean));
                            pv.set("accuracy_std", Value::Float(p.accuracy_std));
                            pv.set("accuracy_min", Value::Float(p.accuracy_min));
                            pv.set("accuracy_p05", Value::Float(p.accuracy_p05));
                            pv
                        })
                        .collect(),
                ),
            );
            mv
        })
        .collect();
    v.set("methods", Value::Array(methods));
    let insitu = sweep
        .insitu
        .iter()
        .map(|p| {
            let mut pv = Value::table();
            pv.set("nwc", Value::Float(p.nwc));
            pv.set("accuracy_mean", Value::Float(p.accuracy_mean));
            pv.set("accuracy_std", Value::Float(p.accuracy_std));
            pv
        })
        .collect();
    v.set("insitu", Value::Array(insitu));
    if let Some(raw) = &sweep.raw {
        v.set("raw", raw_to_value(raw));
    }
    v
}

fn pair_to_value(p: (f64, f64)) -> Value {
    Value::Array(vec![Value::Float(p.0), Value::Float(p.1)])
}

fn pairs_to_value(pairs: &[(f64, f64)]) -> Value {
    Value::Array(pairs.iter().map(|&p| pair_to_value(p)).collect())
}

fn raw_to_value(raw: &RawSweepDoc) -> Value {
    let mut v = Value::table();
    let methods = raw
        .methods
        .iter()
        .map(|m| {
            let mut mv = Value::table();
            mv.set("name", Value::Str(m.name.clone()));
            mv.set("rows", Value::Array(m.rows.iter().map(|row| pairs_to_value(row)).collect()));
            mv
        })
        .collect();
    v.set("methods", Value::Array(methods));
    v.set(
        "insitu_runs",
        Value::Array(raw.insitu_runs.iter().map(|run| pairs_to_value(run)).collect()),
    );
    v
}

fn pair_from_value(path: &str, value: &Value) -> Result<(f64, f64), SchemaError> {
    let items = value
        .as_array()
        .filter(|items| items.len() == 2)
        .ok_or_else(|| err(format!("`{path}` must be a 2-element number array")))?;
    let a = items[0].as_float().ok_or_else(|| err(format!("`{path}[0]` must be a number")))?;
    let b = items[1].as_float().ok_or_else(|| err(format!("`{path}[1]` must be a number")))?;
    Ok((a, b))
}

fn pairs_from_value(path: &str, value: &Value) -> Result<Vec<(f64, f64)>, SchemaError> {
    let items = value.as_array().ok_or_else(|| err(format!("`{path}` must be an array")))?;
    items.iter().enumerate().map(|(i, p)| pair_from_value(&format!("{path}[{i}]"), p)).collect()
}

fn raw_from_value(path: &str, value: &Value) -> Result<RawSweepDoc, SchemaError> {
    let mut r = Reader::new(path, value)?;
    let methods = {
        let v = r.require("methods")?;
        let items =
            v.as_array().ok_or_else(|| err(format!("`{path}.methods` must be an array")))?;
        items
            .iter()
            .enumerate()
            .map(|(i, item)| {
                let mpath = format!("{path}.methods[{i}]");
                let mut m = Reader::new(&mpath, item)?;
                let name = m.string_req("name")?;
                let rows = {
                    let v = m.require("rows")?;
                    let rows = v
                        .as_array()
                        .ok_or_else(|| err(format!("`{mpath}.rows` must be an array")))?;
                    rows.iter()
                        .enumerate()
                        .map(|(j, row)| pairs_from_value(&format!("{mpath}.rows[{j}]"), row))
                        .collect::<Result<Vec<_>, _>>()?
                };
                m.finish()?;
                Ok(RawMethodDoc { name, rows })
            })
            .collect::<Result<Vec<_>, SchemaError>>()?
    };
    let insitu_runs = {
        let v = r.require("insitu_runs")?;
        let runs =
            v.as_array().ok_or_else(|| err(format!("`{path}.insitu_runs` must be an array")))?;
        runs.iter()
            .enumerate()
            .map(|(i, run)| pairs_from_value(&format!("{path}.insitu_runs[{i}]"), run))
            .collect::<Result<Vec<_>, _>>()?
    };
    r.finish()?;
    Ok(RawSweepDoc { methods, insitu_runs })
}

fn sweep_from_value(path: &str, value: &Value) -> Result<SweepDoc, SchemaError> {
    let mut r = Reader::new(path, value)?;
    let device_model = r.string_req("device_model")?;
    let sigma = r.f64_req("sigma")?;
    let float_accuracy = r.f64_req("float_accuracy")?;
    let quant_accuracy = r.f64_req("quant_accuracy")?;

    let methods = {
        let v = r.require("methods")?;
        let items =
            v.as_array().ok_or_else(|| err(format!("`{path}.methods` must be an array")))?;
        items
            .iter()
            .enumerate()
            .map(|(i, item)| {
                let mpath = format!("{path}.methods[{i}]");
                let mut m = Reader::new(&mpath, item)?;
                let name = m.string_req("name")?;
                let points = {
                    let v = m.require("points")?;
                    let pts = v
                        .as_array()
                        .ok_or_else(|| err(format!("`{mpath}.points` must be an array")))?;
                    pts.iter()
                        .enumerate()
                        .map(|(j, p)| {
                            let ppath = format!("{mpath}.points[{j}]");
                            let mut pr = Reader::new(&ppath, p)?;
                            let out = CurvePoint {
                                fraction: pr.f64_req("fraction")?,
                                nwc: pr.f64_req("nwc")?,
                                accuracy_mean: pr.f64_req("accuracy_mean")?,
                                accuracy_std: pr.f64_req("accuracy_std")?,
                                accuracy_min: pr.f64_req("accuracy_min")?,
                                accuracy_p05: pr.f64_req("accuracy_p05")?,
                            };
                            pr.finish()?;
                            Ok(out)
                        })
                        .collect::<Result<Vec<_>, SchemaError>>()?
                };
                m.finish()?;
                Ok(MethodCurveDoc { name, points })
            })
            .collect::<Result<Vec<_>, SchemaError>>()?
    };

    let insitu = match r.take("insitu") {
        None => Vec::new(),
        Some(v) => {
            let items =
                v.as_array().ok_or_else(|| err(format!("`{path}.insitu` must be an array")))?;
            items
                .iter()
                .enumerate()
                .map(|(i, p)| {
                    let ppath = format!("{path}.insitu[{i}]");
                    let mut pr = Reader::new(&ppath, p)?;
                    let out = InsituPoint {
                        nwc: pr.f64_req("nwc")?,
                        accuracy_mean: pr.f64_req("accuracy_mean")?,
                        accuracy_std: pr.f64_req("accuracy_std")?,
                    };
                    pr.finish()?;
                    Ok(out)
                })
                .collect::<Result<Vec<_>, SchemaError>>()?
        }
    };

    let raw = match r.take("raw") {
        None => None,
        Some(v) => Some(raw_from_value(&format!("{path}.raw"), v)?),
    };

    r.finish()?;
    Ok(SweepDoc { device_model, sigma, float_accuracy, quant_accuracy, methods, insitu, raw })
}

// ------------------------------------------------------------- tables

/// A printed [`Table`] as a results-document value (`{title, headers,
/// rows}`).
pub fn table_to_value(table: &Table) -> Value {
    let mut v = Value::table();
    v.set("title", Value::Str(table.title().to_string()));
    v.set("headers", Value::Array(table.headers().iter().map(|h| Value::Str(h.clone())).collect()));
    v.set(
        "rows",
        Value::Array(
            table
                .rows()
                .iter()
                .map(|row| Value::Array(row.iter().map(|c| Value::Str(c.clone())).collect()))
                .collect(),
        ),
    );
    v
}

/// Parses a `{title, headers, rows}` value back into a [`Table`],
/// checking that every row has exactly one cell per header.
pub fn table_from_value(path: &str, value: &Value) -> Result<Table, SchemaError> {
    let mut r = Reader::new(path, value)?;
    let title = r.string_req("title")?;
    let headers = r.string_list_or("headers", &[])?;
    if headers.is_empty() {
        return Err(err(format!("`{path}.headers` must be a non-empty string array")));
    }
    let rows = {
        let v = r.require("rows")?;
        let items = v.as_array().ok_or_else(|| err(format!("`{path}.rows` must be an array")))?;
        items
            .iter()
            .enumerate()
            .map(|(i, row)| {
                let cells = row
                    .as_array()
                    .ok_or_else(|| err(format!("`{path}.rows[{i}]` must be an array")))?;
                if cells.len() != headers.len() {
                    return Err(err(format!(
                        "`{path}.rows[{i}]` has {} cells, table has {} columns",
                        cells.len(),
                        headers.len()
                    )));
                }
                cells
                    .iter()
                    .map(|c| {
                        c.as_str()
                            .map(|s| s.to_string())
                            .ok_or_else(|| err(format!("`{path}.rows[{i}]` must contain strings")))
                    })
                    .collect::<Result<Vec<_>, _>>()
            })
            .collect::<Result<Vec<_>, _>>()?
    };
    r.finish()?;
    let header_refs: Vec<&str> = headers.iter().map(|h| h.as_str()).collect();
    let mut table = Table::new(title, &header_refs);
    for row in rows {
        table.push_row_owned(row);
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_doc() -> ResultsDoc {
        let spec = swim_exp::preset("table1", true).unwrap();
        let mut doc = ResultsDoc::new(spec, 2.5);
        let mut table = Table::new("demo", &["method", "acc"]);
        table.push_row(&["SWIM", "98.50 ± 0.10"]);
        doc.tables.push(table);
        doc.sweeps.push(SweepDoc {
            device_model: "rram-gaussian".into(),
            sigma: 0.15,
            float_accuracy: 99.0,
            quant_accuracy: 98.5,
            methods: vec![MethodCurveDoc {
                name: "SWIM".into(),
                points: vec![
                    CurvePoint {
                        fraction: 0.0,
                        nwc: 0.0,
                        accuracy_mean: 90.0,
                        accuracy_std: 1.0,
                        accuracy_min: 88.0,
                        accuracy_p05: 88.4,
                    },
                    CurvePoint {
                        fraction: 1.0,
                        nwc: 1.0,
                        accuracy_mean: 98.0,
                        accuracy_std: 0.2,
                        accuracy_min: 97.5,
                        accuracy_p05: 97.6,
                    },
                ],
            }],
            insitu: vec![InsituPoint { nwc: 0.5, accuracy_mean: 95.0, accuracy_std: 0.4 }],
            raw: None,
        });
        doc
    }

    /// A shard-flavored document: `[run] shard` in the spec echo, shard
    /// provenance, a checkpoint `completed` list, raw matrices, and an
    /// isolated fault.
    fn shard_doc() -> ResultsDoc {
        let mut spec = swim_exp::preset("table1", true).unwrap();
        spec.run.shard = Some((1, 2));
        let mut doc = ResultsDoc::new(spec, 1.25);
        let mut sweep = sample_doc().sweeps[0].clone();
        sweep.raw = Some(RawSweepDoc {
            methods: vec![RawMethodDoc {
                name: "SWIM".into(),
                rows: vec![vec![(90.0, 0.0), (98.0, 1.0)], vec![(91.5, 0.0), (97.25, 1.0)]],
            }],
            insitu_runs: vec![vec![(0.5, 0.95)]],
        });
        doc.sweeps.push(sweep);
        doc.completed = Some(vec![BlockKey { device_model: "rram-gaussian".into(), sigma: 0.15 }]);
        doc.faults.push(FaultDoc {
            device_model: "rram-gaussian".into(),
            sigma: 0.15,
            method: "SWIM".into(),
            run: 3,
            seed: 1,
            message: "boom".into(),
        });
        doc
    }

    #[test]
    fn round_trips_through_json() {
        let doc = sample_doc();
        let back = ResultsDoc::parse_str(&doc.to_json()).unwrap();
        assert_eq!(back, doc);
        assert_eq!(back.name(), "table1");
        assert_eq!(back.seed(), 1);
        assert_eq!(back.sweep_at(0.15).unwrap().method("SWIM").unwrap().points.len(), 2);
    }

    #[test]
    fn sweep_block_keys_on_model_and_sigma() {
        let mut doc = sample_doc();
        let mut other = doc.sweeps[0].clone();
        other.device_model = "mram-stochastic".into();
        other.float_accuracy = 42.0;
        doc.sweeps.push(other);
        let back = ResultsDoc::parse_str(&doc.to_json()).unwrap();
        assert_eq!(back.sweep_block("rram-gaussian", 0.15).unwrap().float_accuracy, 99.0);
        assert_eq!(back.sweep_block("mram-stochastic", 0.15).unwrap().float_accuracy, 42.0);
        assert!(back.sweep_block("sram-vt", 0.15).is_none());
    }

    #[test]
    fn rejects_points_missing_tail_columns() {
        // A version-1 document (no accuracy_min/p05) must fail loudly,
        // not silently default the tail statistics.
        let mut root = sample_doc().to_value();
        let Some(Value::Array(sweeps)) = root.get("sweeps").cloned() else { unreachable!() };
        let mut sweeps = sweeps;
        let Some(Value::Array(methods)) = sweeps[0].get("methods").cloned() else { unreachable!() };
        let mut methods = methods;
        let Some(Value::Array(points)) = methods[0].get("points").cloned() else { unreachable!() };
        let pruned: Vec<Value> = points
            .into_iter()
            .map(|p| {
                let Value::Table(entries) = p else { unreachable!() };
                Value::Table(entries.into_iter().filter(|(k, _)| k != "accuracy_min").collect())
            })
            .collect();
        methods[0].set("points", Value::Array(pruned));
        sweeps[0].set("methods", Value::Array(methods));
        root.set("sweeps", Value::Array(sweeps));
        let e = ResultsDoc::from_value(&root).unwrap_err();
        assert!(e.0.contains("accuracy_min"), "{e}");
    }

    #[test]
    fn correlations_round_trip() {
        let spec = swim_exp::preset("fig1", true).unwrap();
        let mut doc = ResultsDoc::new(spec, 0.1);
        doc.correlations = Some(Correlations { magnitude: 0.12, sensitivity: 0.83 });
        let back = ResultsDoc::parse_str(&doc.to_json()).unwrap();
        assert_eq!(back, doc);
    }

    #[test]
    fn rejects_wrong_version() {
        let mut root = sample_doc().to_value();
        root.set("swim_results_version", Value::Int(99));
        let e = ResultsDoc::from_value(&root).unwrap_err();
        assert!(e.0.contains("unsupported results version 99"), "{e}");
    }

    #[test]
    fn rejects_unknown_keys_with_path() {
        let mut root = sample_doc().to_value();
        root.set("bogus", Value::Int(1));
        let e = ResultsDoc::from_value(&root).unwrap_err();
        assert!(e.0.contains("unknown key `bogus`"), "{e}");
    }

    #[test]
    fn rejects_missing_required_keys() {
        let doc = sample_doc();
        let Value::Table(entries) = doc.to_value() else { unreachable!() };
        let pruned: Vec<(String, Value)> =
            entries.into_iter().filter(|(k, _)| k != "wall_time_s").collect();
        let e = ResultsDoc::from_value(&Value::Table(pruned)).unwrap_err();
        assert!(e.0.contains("missing key `wall_time_s`"), "{e}");
    }

    #[test]
    fn rejects_header_contradicting_spec_echo() {
        let mut root = sample_doc().to_value();
        root.set("seed", Value::Int(777));
        let e = ResultsDoc::from_value(&root).unwrap_err();
        assert!(e.0.contains("contradicts its spec echo"), "{e}");
    }

    #[test]
    fn rejects_ragged_table_rows() {
        let mut root = sample_doc().to_value();
        // Break the first table's first row.
        let tables = root.get("tables").unwrap().clone();
        let Value::Array(mut tv) = tables else { unreachable!() };
        tv[0].set("rows", Value::Array(vec![Value::Array(vec![Value::Str("only-one".into())])]));
        root.set("tables", Value::Array(tv));
        let e = ResultsDoc::from_value(&root).unwrap_err();
        assert!(e.0.contains("has 1 cells, table has 2 columns"), "{e}");
    }

    #[test]
    fn shard_document_round_trips() {
        let doc = shard_doc();
        let runs = doc.spec.montecarlo.runs;
        assert_eq!(
            doc.shard,
            Some(ShardDoc { index: 1, count: 2, run_start: runs / 2, run_end: runs })
        );
        let back = ResultsDoc::parse_str(&doc.to_json()).unwrap();
        assert_eq!(back, doc);
        let raw = back.sweeps[0].raw.as_ref().unwrap();
        assert_eq!(raw.methods[0].rows[1][1], (97.25, 1.0));
        assert_eq!(raw.insitu_runs[0][0], (0.5, 0.95));
        assert_eq!(back.completed.as_ref().unwrap().len(), 1);
        assert_eq!(back.faults[0].run, 3);
    }

    #[test]
    fn rejects_shard_contradicting_spec_echo() {
        // Tamper with the denormalized shard block only; the spec echo
        // still says shard 1/2.
        let mut root = shard_doc().to_value();
        let mut sv = root.get("shard").unwrap().clone();
        sv.set("index", Value::Int(0));
        sv.set("run_start", Value::Int(0));
        sv.set("run_end", Value::Int(1500));
        root.set("shard", sv);
        let e = ResultsDoc::from_value(&root).unwrap_err();
        assert!(e.0.contains("contradicts its spec echo"), "{e}");
    }

    #[test]
    fn rejects_shard_block_missing_from_sharded_spec() {
        let Value::Table(entries) = shard_doc().to_value() else { unreachable!() };
        let pruned: Vec<(String, Value)> =
            entries.into_iter().filter(|(k, _)| k != "shard").collect();
        let e = ResultsDoc::from_value(&Value::Table(pruned)).unwrap_err();
        assert!(e.0.contains("contradicts its spec echo"), "{e}");
    }

    #[test]
    fn rejects_malformed_raw_pairs() {
        let mut root = shard_doc().to_value();
        root.set_path(
            "sweeps",
            Value::Array({
                let Some(Value::Array(sweeps)) = root.get("sweeps").cloned() else {
                    unreachable!()
                };
                let mut sweeps = sweeps;
                let mut raw = sweeps[0].get("raw").unwrap().clone();
                raw.set(
                    "insitu_runs",
                    Value::Array(vec![Value::Array(vec![Value::Array(vec![Value::Float(1.0)])])]),
                );
                sweeps[0].set("raw", raw);
                sweeps
            }),
        )
        .unwrap();
        let e = ResultsDoc::from_value(&root).unwrap_err();
        assert!(e.0.contains("2-element number array"), "{e}");
    }

    #[test]
    fn tuning_block_round_trips() {
        let mut doc = sample_doc();
        doc.tuning = TuningDoc {
            mode: "on".into(),
            gemm_block_cols: 0,
            gemm_min_flops: 0,
            im2col_cap_elems: 1 << 20,
            choices: vec![TuningChoiceDoc {
                key: "gemm-mm:256x256x256:scalar:t1".into(),
                config: "block=128 workers=1".into(),
                source: "autotune".into(),
            }],
        };
        let back = ResultsDoc::parse_str(&doc.to_json()).unwrap();
        assert_eq!(back, doc);
        assert_eq!(back.tuning.choices[0].source, "autotune");
    }

    #[test]
    fn rejects_tuning_irregularities() {
        // Unknown mode.
        let mut doc = sample_doc();
        doc.tuning.mode = "sometimes".into();
        let e = ResultsDoc::parse_str(&doc.to_json()).unwrap_err();
        assert!(e.0.contains("unknown tuning mode `sometimes`"), "{e}");

        // Choices recorded under mode off.
        let mut doc = sample_doc();
        doc.tuning.choices.push(TuningChoiceDoc {
            key: "gemm-mm:8x8x8:scalar:t1".into(),
            config: "block=32 workers=1".into(),
            source: "autotune".into(),
        });
        let e = ResultsDoc::parse_str(&doc.to_json()).unwrap_err();
        assert!(e.0.contains("mode `off` but records 1 tuner choice"), "{e}");

        // Missing block entirely (a v4-shaped document).
        let Value::Table(entries) = sample_doc().to_value() else { unreachable!() };
        let pruned: Vec<(String, Value)> =
            entries.into_iter().filter(|(k, _)| k != "tuning").collect();
        let e = ResultsDoc::from_value(&Value::Table(pruned)).unwrap_err();
        assert!(e.0.contains("missing key `tuning`"), "{e}");
    }

    #[test]
    fn rejects_tuning_contradicting_spec_echo() {
        // The spec echo pins `tune.mode = "on"`, the document header
        // says the run executed with tuning off.
        let mut doc = sample_doc();
        doc.spec.tune.mode = Some("on".into());
        doc.tuning.mode = "on".into();
        let good = ResultsDoc::parse_str(&doc.to_json()).unwrap();
        assert_eq!(good.tuning.mode, "on");

        doc.tuning.mode = "off".into();
        let e = ResultsDoc::parse_str(&doc.to_json()).unwrap_err();
        assert!(e.0.contains("contradicts its spec echo's `tune.mode`"), "{e}");

        // A pinned knob must match, too.
        let mut doc = sample_doc();
        doc.spec.tune.gemm_block = Some(256);
        doc.tuning.gemm_block_cols = 128;
        let e = ResultsDoc::parse_str(&doc.to_json()).unwrap_err();
        assert!(e.0.contains("contradicts its spec echo's `tune.gemm_block`"), "{e}");
    }

    #[test]
    fn table_round_trip_preserves_structure() {
        let mut t = Table::new("t", &["a", "b"]);
        t.push_row(&["1", "2"]);
        t.push_row(&["x, y", "say \"hi\""]);
        let back = table_from_value("tables[0]", &table_to_value(&t)).unwrap();
        assert_eq!(back, t);
    }
}
