//! Dependency-free ASCII line plots for accuracy-vs-NWC curves.
//!
//! Good enough to eyeball curve shape and method ordering directly in a
//! terminal or a Markdown code fence; the numeric tables next to each
//! plot carry the exact values.

/// One named curve: `(x, y)` points in ascending-x order.
#[derive(Debug, Clone, Copy)]
pub struct Series<'a> {
    /// Legend label.
    pub label: &'a str,
    /// The polyline's points.
    pub points: &'a [(f64, f64)],
}

/// Marker characters assigned to series in order.
const MARKERS: &[char] = &['*', 'o', '+', 'x', '#', '@', '%', '&', '=', '~'];

/// Renders the series into a `width`×`height` character plot with
/// y-axis labels, an x-axis ruler, and a marker legend.
///
/// Series are drawn in order, later ones overwriting earlier ones where
/// cells collide; segments between points are linearly interpolated.
/// Empty input (or all-empty series) renders a placeholder line.
///
/// # Example
///
/// ```
/// use swim_report::plot::{ascii_plot, Series};
///
/// let swim = [(0.0, 90.0), (0.5, 97.0), (1.0, 98.0)];
/// let text = ascii_plot(&[Series { label: "SWIM", points: &swim }], 40, 10);
/// assert!(text.contains("* SWIM"));
/// assert!(text.contains("98.00"));
/// ```
pub fn ascii_plot(series: &[Series], width: usize, height: usize) -> String {
    let width = width.max(16);
    let height = height.max(4);
    let points: Vec<(f64, f64)> = series.iter().flat_map(|s| s.points.iter().copied()).collect();
    if points.is_empty() {
        return "(no points to plot)\n".to_string();
    }

    let (mut x_min, mut x_max) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y_min, mut y_max) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y) in &points {
        x_min = x_min.min(x);
        x_max = x_max.max(x);
        y_min = y_min.min(y);
        y_max = y_max.max(y);
    }
    // Flat ranges still need a nonzero span to map onto the grid.
    if x_max - x_min < 1e-12 {
        x_min -= 0.5;
        x_max += 0.5;
    }
    if y_max - y_min < 1e-12 {
        y_min -= 0.5;
        y_max += 0.5;
    }

    let mut grid = vec![vec![' '; width]; height];
    let col_of = |x: f64| -> usize {
        (((x - x_min) / (x_max - x_min) * (width - 1) as f64).round() as usize).min(width - 1)
    };
    let row_of = |y: f64| -> usize {
        let r = ((y_max - y) / (y_max - y_min) * (height - 1) as f64).round() as usize;
        r.min(height - 1)
    };

    for (si, s) in series.iter().enumerate() {
        let marker = MARKERS[si % MARKERS.len()];
        for pair in s.points.windows(2) {
            let (x0, y0) = pair[0];
            let (x1, y1) = pair[1];
            let (c0, c1) = (col_of(x0), col_of(x1));
            // The row index depends on the interpolated y at each
            // column, so this is a coordinate walk, not a slice scan.
            #[allow(clippy::needless_range_loop)]
            for c in c0.min(c1)..=c0.max(c1) {
                let t =
                    if c1 == c0 { 0.0 } else { (c as f64 - c0 as f64) / (c1 as f64 - c0 as f64) };
                let y = y0 + t * (y1 - y0);
                grid[row_of(y)][c] = marker;
            }
        }
        for &(x, y) in s.points {
            grid[row_of(y)][col_of(x)] = marker;
        }
    }

    let mut out = String::new();
    for (r, row) in grid.iter().enumerate() {
        let label = if r == 0 {
            format!("{y_max:8.2} |")
        } else if r == height - 1 {
            format!("{y_min:8.2} |")
        } else {
            "         |".to_string()
        };
        out.push_str(&label);
        let line: String = row.iter().collect();
        out.push_str(line.trim_end());
        out.push('\n');
    }
    out.push_str("         +");
    out.push_str(&"-".repeat(width));
    out.push('\n');
    let x_left = format!("{x_min:<.2}");
    let x_right = format!("{x_max:.2}");
    let pad = width.saturating_sub(x_left.len() + x_right.len());
    out.push_str(&format!("          {x_left}{}{x_right}\n", " ".repeat(pad)));
    for (si, s) in series.iter().enumerate() {
        out.push_str(&format!("          {} {}\n", MARKERS[si % MARKERS.len()], s.label));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plots_every_series_marker() {
        let a = [(0.0, 90.0), (1.0, 98.0)];
        let b = [(0.0, 85.0), (1.0, 97.0)];
        let text = ascii_plot(
            &[Series { label: "SWIM", points: &a }, Series { label: "Random", points: &b }],
            40,
            12,
        );
        assert!(text.contains("* SWIM"));
        assert!(text.contains("o Random"));
        assert!(text.contains('*') && text.contains('o'));
        // Axis labels carry the data range.
        assert!(text.contains("98.00"), "{text}");
        assert!(text.contains("85.00"), "{text}");
        assert!(text.contains("0.00") && text.contains("1.00"));
    }

    #[test]
    fn empty_input_is_a_placeholder() {
        assert_eq!(ascii_plot(&[], 40, 10), "(no points to plot)\n");
        let empty: [(f64, f64); 0] = [];
        let text = ascii_plot(&[Series { label: "none", points: &empty }], 40, 10);
        assert!(text.contains("no points"));
    }

    #[test]
    fn flat_series_does_not_panic() {
        let flat = [(0.0, 50.0), (1.0, 50.0)];
        let text = ascii_plot(&[Series { label: "flat", points: &flat }], 30, 8);
        assert!(text.contains("flat"));
    }

    #[test]
    fn single_point_does_not_panic() {
        let one = [(0.5, 42.0)];
        let text = ascii_plot(&[Series { label: "dot", points: &one }], 30, 8);
        assert!(text.contains('*'));
    }
}
