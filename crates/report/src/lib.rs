//! Results-document analysis for the SWIM reproduction: load, validate,
//! compare, and publish experiment results.
//!
//! `swim run --out r.json` emits a versioned JSON results document;
//! this crate is its consumer side, closing the run → compare → read
//! loop:
//!
//! * [`schema`] — the typed, versioned [`schema::ResultsDoc`] that both
//!   the experiment engine (write path) and every command here (read
//!   path) go through, with a strict unknown-key-rejecting parser over
//!   the `swim_exp::value` layer;
//! * [`diff`] — method-by-method, point-by-point comparison with
//!   configurable absolute/relative tolerances and spec-echo diffing
//!   (`swim diff a.json b.json`);
//! * [`markdown`] — self-contained Markdown reports with spec summary,
//!   per-method curve tables, and ASCII plots (`swim report run.json`);
//! * [`summary`] — many runs flattened into one cross-run table
//!   (`swim summarize dir/`);
//! * [`plot`] — the dependency-free ASCII line-plot renderer.
//!
//! # Example
//!
//! ```
//! use swim_report::diff::{diff_docs, DiffOptions};
//! use swim_report::schema::ResultsDoc;
//!
//! let doc = ResultsDoc::new(swim_exp::preset("fig2a", true).unwrap(), 0.5);
//! let echo = ResultsDoc::parse_str(&doc.to_json()).unwrap();
//! let report = diff_docs(&doc, &echo, &DiffOptions::default());
//! assert!(report.clean());
//! ```

#![warn(missing_docs)]

pub mod diff;
pub mod io;
pub mod markdown;
pub mod plot;
pub mod schema;
pub mod summary;

pub use diff::{diff_docs, DiffOptions, DiffReport};
pub use markdown::{render_report, sweep_plot};
pub use schema::{ResultsDoc, SchemaError, RESULTS_VERSION};
pub use summary::summarize;
