//! Method-by-method, point-by-point comparison of two results
//! documents — the engine behind `swim diff`.
//!
//! A diff separates three classes of difference:
//!
//! * **spec** — the two documents' spec echoes describe different
//!   experiments (different seed, budget, grid, …). Reported with the
//!   full dotted spec path; suppressible with
//!   [`DiffOptions::ignore_spec`] for deliberate cross-experiment
//!   comparisons.
//! * **structure** — the numeric payloads are not comparable: a sigma
//!   block, method, or curve point exists on one side only, or the
//!   grids disagree.
//! * **drift** — a comparable numeric value differs beyond the
//!   configured tolerance (`|a − b| > abs_tol + rel_tol · max(|a|,
//!   |b|)`).
//!
//! `wall_time_s` never participates (it differs between any two real
//! runs). The formatted `tables` are compared structurally (titles,
//! headers, row counts); their *cells* are additionally compared
//! byte-for-byte — but only when the documents carry no `sweeps` /
//! `correlations` payload (the `calibration` and `ablation` kinds,
//! where the tables ARE the results). When a numeric payload exists,
//! the cells are just a rendering of values already compared with
//! tolerance, and cell-exact comparison would defeat `--abs-tol`.

use crate::schema::ResultsDoc;
use swim_exp::value::Value;

/// Tolerances and scope switches for [`diff_docs`].
#[derive(Debug, Clone, Copy)]
pub struct DiffOptions {
    /// Absolute tolerance on every numeric comparison.
    pub abs_tol: f64,
    /// Relative tolerance (scaled by the larger magnitude).
    pub rel_tol: f64,
    /// Skip the spec-echo comparison (deliberate cross-experiment
    /// diffs).
    pub ignore_spec: bool,
    /// Skip the kernel-tuning provenance comparison (deliberate
    /// autotuned-vs-default comparisons; tuning is timing-only, so the
    /// numeric payload must still agree).
    pub ignore_tuning: bool,
}

impl Default for DiffOptions {
    fn default() -> Self {
        // Bit-identical reproduction is the product contract, so the
        // default tolerance only forgives float-formatting noise.
        DiffOptions { abs_tol: 1e-9, rel_tol: 0.0, ignore_spec: false, ignore_tuning: false }
    }
}

/// One observed difference.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffEntry {
    /// Where (a human-readable path naming sigma/method/point).
    pub path: String,
    /// The left document's value at `path`.
    pub left: String,
    /// The right document's value at `path`.
    pub right: String,
    /// `left − right` for numeric drift entries.
    pub delta: Option<f64>,
}

impl DiffEntry {
    fn new(path: impl Into<String>, left: impl Into<String>, right: impl Into<String>) -> Self {
        DiffEntry { path: path.into(), left: left.into(), right: right.into(), delta: None }
    }
}

/// The full outcome of comparing two documents.
#[derive(Debug, Clone, Default)]
pub struct DiffReport {
    /// Spec-echo differences (empty under `ignore_spec`).
    pub spec: Vec<DiffEntry>,
    /// Structural differences (payloads not comparable).
    pub structure: Vec<DiffEntry>,
    /// Numeric values that differ beyond tolerance.
    pub drift: Vec<DiffEntry>,
    /// Values compared, matching ones included (numeric payload, plus
    /// table cells when the tables are the only payload).
    pub values_compared: usize,
    /// Largest absolute numeric difference seen (drifting or not).
    pub max_delta: f64,
}

impl DiffReport {
    /// Whether the two documents agree (no spec, structure, or drift
    /// differences).
    pub fn clean(&self) -> bool {
        self.spec.is_empty() && self.structure.is_empty() && self.drift.is_empty()
    }

    /// Renders the human-readable comparison summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let mut section = |title: &str, entries: &[DiffEntry]| {
            if entries.is_empty() {
                return;
            }
            out.push_str(&format!("{title} ({}):\n", entries.len()));
            for e in entries {
                match e.delta {
                    Some(d) => out.push_str(&format!(
                        "  {}: {} vs {} (delta {:+.6})\n",
                        e.path, e.left, e.right, d
                    )),
                    None => out.push_str(&format!("  {}: {} vs {}\n", e.path, e.left, e.right)),
                }
            }
        };
        section("spec differences", &self.spec);
        section("structural differences", &self.structure);
        section("drift", &self.drift);
        if self.clean() {
            out.push_str(&format!(
                "no drift: {} values compared, max |delta| {:.3e}\n",
                self.values_compared, self.max_delta
            ));
        } else {
            out.push_str(&format!(
                "DRIFT: {} spec, {} structural, {} numeric difference(s) over {} compared \
                 values (max |delta| {:.6})\n",
                self.spec.len(),
                self.structure.len(),
                self.drift.len(),
                self.values_compared,
                self.max_delta
            ));
        }
        out
    }
}

/// State threaded through the numeric comparisons.
struct Cmp<'a> {
    opts: &'a DiffOptions,
    report: DiffReport,
}

impl Cmp<'_> {
    fn number(&mut self, path: &str, a: f64, b: f64) {
        self.report.values_compared += 1;
        let delta = a - b;
        if delta.abs() > self.report.max_delta {
            self.report.max_delta = delta.abs();
        }
        let tol = self.opts.abs_tol + self.opts.rel_tol * a.abs().max(b.abs());
        if delta.abs() > tol {
            self.report.drift.push(DiffEntry {
                path: path.to_string(),
                left: format!("{a}"),
                right: format!("{b}"),
                delta: Some(delta),
            });
        }
    }
}

/// Compares two results documents. See the module docs for what counts
/// as spec / structure / drift.
pub fn diff_docs(a: &ResultsDoc, b: &ResultsDoc, opts: &DiffOptions) -> DiffReport {
    let mut cmp = Cmp { opts, report: DiffReport::default() };

    if !opts.ignore_spec {
        diff_values("spec", &a.spec.to_value(), &b.spec.to_value(), &mut cmp.report.spec);
    }

    // Different SIMD backends are a different provenance, not drift —
    // GEMM results are only tolerance-equal across backends, so any
    // numeric deltas below should be read in that light.
    if a.simd != b.simd {
        cmp.report.structure.push(DiffEntry::new("simd", a.simd.clone(), b.simd.clone()));
    }

    // Different tuning configs are likewise provenance, not drift:
    // tuning is timing-only, so two runs that differ *only* here must
    // still produce identical payloads — but the config drift itself
    // is worth flagging structurally (suppressible for deliberate
    // autotuned-vs-default comparisons).
    if !opts.ignore_tuning && a.tuning != b.tuning {
        cmp.report.structure.push(DiffEntry::new(
            "tuning",
            render_tuning(&a.tuning),
            render_tuning(&b.tuning),
        ));
    }

    // ------------------------------------------------- sweep blocks
    // Blocks are keyed by (device model, sigma): a model grid produces
    // several blocks per sigma, and comparing across models would be a
    // category error, not drift.
    for sa in &a.sweeps {
        let Some(sb) = b.sweep_block(&sa.device_model, sa.sigma) else {
            cmp.report.structure.push(DiffEntry::new(
                format!("sweeps[{}, sigma={}]", sa.device_model, sa.sigma),
                "present",
                "missing",
            ));
            continue;
        };
        let sp = format!("sweeps[{}, sigma={}]", sa.device_model, sa.sigma);
        cmp.number(&format!("{sp}.float_accuracy"), sa.float_accuracy, sb.float_accuracy);
        cmp.number(&format!("{sp}.quant_accuracy"), sa.quant_accuracy, sb.quant_accuracy);

        for ma in &sa.methods {
            let Some(mb) = sb.method(&ma.name) else {
                cmp.report.structure.push(DiffEntry::new(
                    format!("{sp}.{}", ma.name),
                    "present",
                    "missing",
                ));
                continue;
            };
            if ma.points.len() != mb.points.len() {
                cmp.report.structure.push(DiffEntry::new(
                    format!("{sp}.{}", ma.name),
                    format!("{} points", ma.points.len()),
                    format!("{} points", mb.points.len()),
                ));
                continue;
            }
            for (pa, pb) in ma.points.iter().zip(&mb.points) {
                if pa.fraction != pb.fraction {
                    cmp.report.structure.push(DiffEntry::new(
                        format!("{sp}.{}", ma.name),
                        format!("fraction {}", pa.fraction),
                        format!("fraction {}", pb.fraction),
                    ));
                    continue;
                }
                let pp = format!("{sp}.{} @ fraction {}", ma.name, pa.fraction);
                cmp.number(&format!("{pp}: nwc"), pa.nwc, pb.nwc);
                cmp.number(&format!("{pp}: accuracy_mean"), pa.accuracy_mean, pb.accuracy_mean);
                cmp.number(&format!("{pp}: accuracy_std"), pa.accuracy_std, pb.accuracy_std);
                cmp.number(&format!("{pp}: accuracy_min"), pa.accuracy_min, pb.accuracy_min);
                cmp.number(&format!("{pp}: accuracy_p05"), pa.accuracy_p05, pb.accuracy_p05);
            }
        }
        for mb in &sb.methods {
            if sa.method(&mb.name).is_none() {
                cmp.report.structure.push(DiffEntry::new(
                    format!("{sp}.{}", mb.name),
                    "missing",
                    "present",
                ));
            }
        }

        if sa.insitu.len() != sb.insitu.len() {
            cmp.report.structure.push(DiffEntry::new(
                format!("{sp}.In-situ"),
                format!("{} points", sa.insitu.len()),
                format!("{} points", sb.insitu.len()),
            ));
        } else {
            for (i, (pa, pb)) in sa.insitu.iter().zip(&sb.insitu).enumerate() {
                let pp = format!("{sp}.In-situ[{i}]");
                cmp.number(&format!("{pp}: nwc"), pa.nwc, pb.nwc);
                cmp.number(&format!("{pp}: accuracy_mean"), pa.accuracy_mean, pb.accuracy_mean);
                cmp.number(&format!("{pp}: accuracy_std"), pa.accuracy_std, pb.accuracy_std);
            }
        }
    }
    for sb in &b.sweeps {
        if a.sweep_block(&sb.device_model, sb.sigma).is_none() {
            cmp.report.structure.push(DiffEntry::new(
                format!("sweeps[{}, sigma={}]", sb.device_model, sb.sigma),
                "missing",
                "present",
            ));
        }
    }

    // ------------------------------------------------- correlations
    match (&a.correlations, &b.correlations) {
        (Some(ca), Some(cb)) => {
            cmp.number("correlations.magnitude", ca.magnitude, cb.magnitude);
            cmp.number("correlations.sensitivity", ca.sensitivity, cb.sensitivity);
        }
        (Some(_), None) => {
            cmp.report.structure.push(DiffEntry::new("correlations", "present", "missing"));
        }
        (None, Some(_)) => {
            cmp.report.structure.push(DiffEntry::new("correlations", "missing", "present"));
        }
        (None, None) => {}
    }

    // ------------------------------------- partial-document flavor
    // A shard document, a checkpoint journal, and a final document are
    // different *shapes*, not different numbers. The raw matrices are
    // not compared: every statistic derived from them already is.
    match (&a.shard, &b.shard) {
        (Some(sa), Some(sb)) if sa != sb => {
            cmp.report.structure.push(DiffEntry::new(
                "shard",
                format!("shard {}/{} (runs {}..{})", sa.index, sa.count, sa.run_start, sa.run_end),
                format!("shard {}/{} (runs {}..{})", sb.index, sb.count, sb.run_start, sb.run_end),
            ));
        }
        (Some(sa), None) => {
            cmp.report.structure.push(DiffEntry::new(
                "shard",
                format!("partial (shard {}/{})", sa.index, sa.count),
                "full document",
            ));
        }
        (None, Some(sb)) => {
            cmp.report.structure.push(DiffEntry::new(
                "shard",
                "full document",
                format!("partial (shard {}/{})", sb.index, sb.count),
            ));
        }
        _ => {}
    }
    match (&a.completed, &b.completed) {
        (Some(ca), Some(cb)) if ca != cb => {
            cmp.report.structure.push(DiffEntry::new(
                "completed",
                format!("{} checkpointed block(s)", ca.len()),
                format!("{} checkpointed block(s)", cb.len()),
            ));
        }
        (Some(ca), None) => {
            cmp.report.structure.push(DiffEntry::new(
                "completed",
                format!("checkpoint journal ({} block(s))", ca.len()),
                "final document",
            ));
        }
        (None, Some(cb)) => {
            cmp.report.structure.push(DiffEntry::new(
                "completed",
                "final document",
                format!("checkpoint journal ({} block(s))", cb.len()),
            ));
        }
        _ => {}
    }
    if a.faults != b.faults {
        cmp.report.structure.push(DiffEntry::new(
            "faults",
            format!("{} isolated fault(s)", a.faults.len()),
            format!("{} isolated fault(s)", b.faults.len()),
        ));
    }

    // ------------------------------------------------------- tables
    // For kinds whose only results are their tables (calibration,
    // ablation — no sweeps/correlations payload on either side), the
    // cells themselves must match byte-for-byte or the diff would be
    // vacuous. Otherwise the cells are presentation over the payload
    // compared above, and only the structure is checked.
    let tables_are_payload = a.sweeps.is_empty()
        && b.sweeps.is_empty()
        && a.correlations.is_none()
        && b.correlations.is_none();
    if a.tables.len() != b.tables.len() {
        cmp.report.structure.push(DiffEntry::new(
            "tables",
            format!("{} tables", a.tables.len()),
            format!("{} tables", b.tables.len()),
        ));
    } else {
        for (i, (ta, tb)) in a.tables.iter().zip(&b.tables).enumerate() {
            if ta.title() != tb.title() {
                cmp.report.structure.push(DiffEntry::new(
                    format!("tables[{i}].title"),
                    format!("`{}`", ta.title()),
                    format!("`{}`", tb.title()),
                ));
            } else if ta.headers() != tb.headers() {
                cmp.report.structure.push(DiffEntry::new(
                    format!("tables[{i}] (`{}`)", ta.title()),
                    format!("headers {:?}", ta.headers()),
                    format!("headers {:?}", tb.headers()),
                ));
            } else if ta.len() != tb.len() {
                cmp.report.structure.push(DiffEntry::new(
                    format!("tables[{i}] (`{}`)", ta.title()),
                    format!("{} rows", ta.len()),
                    format!("{} rows", tb.len()),
                ));
            } else if tables_are_payload {
                for (r, (ra, rb)) in ta.rows().iter().zip(tb.rows()).enumerate() {
                    for (c, (ca, cb)) in ra.iter().zip(rb).enumerate() {
                        cmp.report.values_compared += 1;
                        if ca != cb {
                            cmp.report.drift.push(DiffEntry::new(
                                format!(
                                    "tables[{i}] (`{}`) row {r} `{}`: {}",
                                    ta.title(),
                                    ra.first().map(String::as_str).unwrap_or(""),
                                    ta.headers()[c],
                                ),
                                format!("`{ca}`"),
                                format!("`{cb}`"),
                            ));
                        }
                    }
                }
            }
        }
    }

    cmp.report
}

/// One-line summary of a tuning block for the structural diff entry.
fn render_tuning(t: &crate::schema::TuningDoc) -> String {
    let mut out = format!("mode={}", t.mode);
    for (name, v) in [
        ("block", t.gemm_block_cols),
        ("min_flops", t.gemm_min_flops),
        ("im2col", t.im2col_cap_elems),
    ] {
        if v != 0 {
            out.push_str(&format!(" {name}={v}"));
        }
    }
    if !t.choices.is_empty() {
        out.push_str(&format!(" ({} choice(s))", t.choices.len()));
    }
    out
}

/// Recursively records differing leaves of two [`Value`] trees.
fn diff_values(path: &str, a: &Value, b: &Value, out: &mut Vec<DiffEntry>) {
    match (a, b) {
        (Value::Table(ea), Value::Table(eb)) => {
            for (k, va) in ea {
                match b.get(k) {
                    Some(vb) => diff_values(&format!("{path}.{k}"), va, vb, out),
                    None => {
                        out.push(DiffEntry::new(format!("{path}.{k}"), render_leaf(va), "missing"))
                    }
                }
            }
            for (k, vb) in eb {
                if a.get(k).is_none() {
                    out.push(DiffEntry::new(format!("{path}.{k}"), "missing", render_leaf(vb)));
                }
            }
        }
        (Value::Array(ia), Value::Array(ib)) if ia.len() == ib.len() => {
            for (i, (va, vb)) in ia.iter().zip(ib).enumerate() {
                diff_values(&format!("{path}[{i}]"), va, vb, out);
            }
        }
        _ if a == b => {}
        _ => out.push(DiffEntry::new(path, render_leaf(a), render_leaf(b))),
    }
}

fn render_leaf(v: &Value) -> String {
    match v {
        Value::Str(s) => format!("`{s}`"),
        Value::Int(i) => format!("{i}"),
        Value::Float(f) => format!("{f}"),
        Value::Bool(b) => format!("{b}"),
        Value::Array(items) => format!("[{} items]", items.len()),
        Value::Table(entries) => format!("{{{} keys}}", entries.len()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{CurvePoint, InsituPoint, MethodCurveDoc, SweepDoc};

    fn doc() -> ResultsDoc {
        let spec = swim_exp::preset("table1", true).unwrap();
        let mut doc = ResultsDoc::new(spec, 1.0);
        doc.sweeps.push(SweepDoc {
            device_model: "rram-gaussian".into(),
            sigma: 0.15,
            float_accuracy: 99.0,
            quant_accuracy: 98.5,
            methods: vec![
                MethodCurveDoc {
                    name: "SWIM".into(),
                    points: vec![
                        CurvePoint {
                            fraction: 0.0,
                            nwc: 0.0,
                            accuracy_mean: 90.0,
                            accuracy_std: 1.0,
                            accuracy_min: 88.0,
                            accuracy_p05: 88.2,
                        },
                        CurvePoint {
                            fraction: 0.5,
                            nwc: 0.45,
                            accuracy_mean: 97.0,
                            accuracy_std: 0.3,
                            accuracy_min: 96.2,
                            accuracy_p05: 96.4,
                        },
                    ],
                },
                MethodCurveDoc {
                    name: "Random".into(),
                    points: vec![CurvePoint {
                        fraction: 0.0,
                        nwc: 0.0,
                        accuracy_mean: 90.0,
                        accuracy_std: 1.0,
                        accuracy_min: 88.0,
                        accuracy_p05: 88.2,
                    }],
                },
            ],
            insitu: vec![InsituPoint { nwc: 0.5, accuracy_mean: 95.0, accuracy_std: 0.4 }],
            raw: None,
        });
        doc
    }

    #[test]
    fn identical_docs_are_clean() {
        let a = doc();
        let report = diff_docs(&a, &a.clone(), &DiffOptions::default());
        assert!(report.clean(), "{}", report.render());
        assert!(report.values_compared > 5);
        assert!(report.render().contains("no drift"));
    }

    #[test]
    fn wall_time_never_drifts() {
        let a = doc();
        let mut b = doc();
        b.wall_time_s = 999.0;
        assert!(diff_docs(&a, &b, &DiffOptions::default()).clean());
    }

    #[test]
    fn perturbed_point_is_named() {
        let a = doc();
        let mut b = doc();
        b.sweeps[0].methods[0].points[1].accuracy_mean += 0.75;
        let report = diff_docs(&a, &b, &DiffOptions::default());
        assert!(!report.clean());
        assert_eq!(report.drift.len(), 1);
        let entry = &report.drift[0];
        assert!(entry.path.contains("SWIM"), "{}", entry.path);
        assert!(entry.path.contains("fraction 0.5"), "{}", entry.path);
        assert!(entry.path.contains("accuracy_mean"), "{}", entry.path);
        assert!((entry.delta.unwrap() + 0.75).abs() < 1e-12);
        // A loose tolerance forgives it again.
        let loose = DiffOptions { abs_tol: 1.0, ..Default::default() };
        assert!(diff_docs(&a, &b, &loose).clean());
    }

    #[test]
    fn tail_columns_participate_in_drift() {
        let a = doc();
        let mut b = doc();
        b.sweeps[0].methods[0].points[1].accuracy_p05 += 0.5;
        let report = diff_docs(&a, &b, &DiffOptions::default());
        assert_eq!(report.drift.len(), 1, "{}", report.render());
        assert!(report.drift[0].path.contains("accuracy_p05"), "{}", report.drift[0].path);
    }

    #[test]
    fn differing_device_model_is_structural() {
        let a = doc();
        let mut b = doc();
        b.sweeps[0].device_model = "mram-stochastic".into();
        let report = diff_docs(&a, &b, &DiffOptions::default());
        assert!(!report.clean());
        assert!(
            report.structure.iter().any(|e| e.path.contains("rram-gaussian")
                && e.path.contains("sigma=0.15")
                && e.left == "present"),
            "{}",
            report.render()
        );
        assert!(
            report
                .structure
                .iter()
                .any(|e| e.path.contains("mram-stochastic") && e.left == "missing"),
            "{}",
            report.render()
        );
    }

    #[test]
    fn spec_difference_is_reported_and_suppressible() {
        let a = doc();
        let mut b = doc();
        b.spec.seed = 42;
        let report = diff_docs(&a, &b, &DiffOptions::default());
        assert!(!report.clean());
        assert!(report.spec.iter().any(|e| e.path == "spec.seed"), "{}", report.render());
        let opts = DiffOptions { ignore_spec: true, ..Default::default() };
        assert!(diff_docs(&a, &b, &opts).clean());
    }

    #[test]
    fn missing_method_is_structural() {
        let a = doc();
        let mut b = doc();
        b.sweeps[0].methods.pop();
        let report = diff_docs(&a, &b, &DiffOptions::default());
        assert!(report.structure.iter().any(|e| e.path.contains("Random")), "{}", report.render());
    }

    #[test]
    fn missing_sigma_block_is_structural() {
        let a = doc();
        let mut b = doc();
        b.sweeps.clear();
        let report = diff_docs(&a, &b, &DiffOptions::default());
        assert!(
            report.structure.iter().any(|e| e.path.contains("sigma=0.15")),
            "{}",
            report.render()
        );
    }

    /// Calibration/ablation-kind documents have no sweeps — their
    /// tables ARE the payload, so cell edits must count as drift (a
    /// structure-only table check would make `swim diff` vacuous for
    /// those kinds).
    #[test]
    fn table_cells_drift_when_tables_are_the_payload() {
        use swim_core::report::Table;
        let spec = swim_exp::preset("calibration", false).unwrap();
        let mut a = ResultsDoc::new(spec, 1.0);
        let mut t = Table::new("write-verify statistics", &["config", "avg cycles"]);
        t.push_row(&["RRAM", "9.77"]);
        a.tables.push(t);
        let clean = diff_docs(&a, &a.clone(), &DiffOptions::default());
        assert!(clean.clean());
        assert_eq!(clean.values_compared, 2, "cells are compared for table-only kinds");

        let mut b = a.clone();
        b.tables[0] = {
            let mut t = Table::new("write-verify statistics", &["config", "avg cycles"]);
            t.push_row(&["RRAM", "12.01"]);
            t
        };
        let report = diff_docs(&a, &b, &DiffOptions::default());
        assert_eq!(report.drift.len(), 1, "{}", report.render());
        assert!(report.drift[0].path.contains("avg cycles"), "{}", report.drift[0].path);

        // With a sweeps payload present, the same cell edit is treated
        // as presentation and does not drift.
        let mut a2 = doc();
        let mut t = Table::new("t", &["x"]);
        t.push_row(&["1"]);
        a2.tables.push(t);
        let mut b2 = a2.clone();
        b2.tables[0] = {
            let mut t = Table::new("t", &["x"]);
            t.push_row(&["2"]);
            t
        };
        assert!(diff_docs(&a2, &b2, &DiffOptions::default()).clean());
    }

    #[test]
    fn partial_document_flavor_is_structural() {
        use crate::schema::{BlockKey, FaultDoc};
        let a = doc();

        // Shard vs full.
        let mut b = doc();
        b.spec.run.shard = Some((0, 2));
        let b = ResultsDoc::new(b.spec, 1.0);
        let report = diff_docs(&a, &b, &DiffOptions { ignore_spec: true, ..Default::default() });
        assert!(
            report.structure.iter().any(|e| e.path == "shard" && e.right.contains("0/2")),
            "{}",
            report.render()
        );

        // Checkpoint journal vs final.
        let mut c = doc();
        c.completed = Some(vec![BlockKey { device_model: "rram-gaussian".into(), sigma: 0.15 }]);
        let report = diff_docs(&a, &c, &DiffOptions::default());
        assert!(
            report.structure.iter().any(|e| e.path == "completed" && e.left == "final document"),
            "{}",
            report.render()
        );

        // Isolated faults on one side only.
        let mut d = doc();
        d.faults.push(FaultDoc {
            device_model: "rram-gaussian".into(),
            sigma: 0.15,
            method: "SWIM".into(),
            run: 7,
            seed: 1,
            message: "boom".into(),
        });
        let report = diff_docs(&a, &d, &DiffOptions::default());
        assert!(
            report.structure.iter().any(|e| e.path == "faults" && e.right.contains("1")),
            "{}",
            report.render()
        );
    }

    /// A tuning-config difference is structural (never drift — tuning
    /// is timing-only) and suppressible with `--ignore-tuning` so the
    /// autotune byte-identity check can compare the payloads alone.
    #[test]
    fn tuning_difference_is_structural_and_suppressible() {
        use crate::schema::{TuningChoiceDoc, TuningDoc};
        let a = doc();
        let mut b = doc();
        b.tuning = TuningDoc {
            mode: "on".into(),
            choices: vec![TuningChoiceDoc {
                key: "gemm-mm:256x256x256:scalar:t1".into(),
                config: "block=128 workers=1".into(),
                source: "autotune".into(),
            }],
            ..TuningDoc::default()
        };
        let report = diff_docs(&a, &b, &DiffOptions::default());
        assert!(!report.clean());
        assert!(report.drift.is_empty(), "{}", report.render());
        let entry = report.structure.iter().find(|e| e.path == "tuning").unwrap();
        assert_eq!(entry.left, "mode=off");
        assert!(entry.right.contains("mode=on") && entry.right.contains("1 choice"), "{entry:?}");

        let opts = DiffOptions { ignore_tuning: true, ..Default::default() };
        assert!(diff_docs(&a, &b, &opts).clean());
    }

    #[test]
    fn relative_tolerance_scales() {
        let a = doc();
        let mut b = doc();
        // 0.5% relative change on a ~97 value.
        b.sweeps[0].methods[0].points[1].accuracy_mean *= 1.005;
        assert!(!diff_docs(&a, &b, &DiffOptions::default()).clean());
        let opts = DiffOptions { rel_tol: 0.01, ..Default::default() };
        assert!(diff_docs(&a, &b, &opts).clean());
    }
}
